//===- bench/bench_ablation_interconnect.cpp - Interconnect ablation ------===//
//
// Sect. 4.1 of the paper frames the two parallelization scenarios as a
// trade-off governed by the machine: replicated computation (scenario 2)
// pays off on "powerful computing resources with relatively less efficient
// interconnects", while halo exchange (scenario 1) suits "systems with
// more efficient networks". This ablation sweeps the interconnect quality
// of the UV 2000 model and reports how the islands-of-cores advantage over
// the pure (3+1)D decomposition responds.
//
// Expected shape: S_pr at P=14 shrinks monotonically as the interconnect
// (and cross-socket synchronization) gets faster — with a dramatically
// better network the exchange-based (3+1)D catches up.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

int main() {
  std::printf("=== Ablation: interconnect quality vs the "
              "computation/communication trade-off ===\n");
  std::printf("1024x512x64, 50 steps, P=14; scaling NUMAlink bandwidth and "
              "cross-socket sync cost together\n\n");

  MpdataProgram M = buildMpdataProgram();

  TablePrinter Table({"link scale", "link GB/s", "(3+1)D [s]",
                      "islands [s]", "S_pr"});
  double PrevSPr = 1e9;
  bool Monotone = true;
  double FirstSPr = 0.0, LastSPr = 0.0;
  for (double Scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    MachineModel Uv = makeSgiUv2000();
    Uv.LinkBandwidth *= Scale;
    // A better interconnect also lowers cross-socket coherence costs.
    Uv.BarrierPerSocket /= Scale;
    Uv.BarrierQuadratic /= Scale;
    double Blocked =
        simulatePaperRun(M, Uv, Strategy::Block31D, 14).TotalSeconds;
    double Isl =
        simulatePaperRun(M, Uv, Strategy::IslandsOfCores, 14).TotalSeconds;
    double SPr = Blocked / Isl;
    Table.addRow({formatString("%.2fx", Scale),
                  formatString("%.1f", Uv.LinkBandwidth / 1e9),
                  formatString("%.2f", Blocked), formatString("%.2f", Isl),
                  formatString("%.2f", SPr)});
    if (SPr > PrevSPr * 1.001)
      Monotone = false;
    PrevSPr = SPr;
    if (FirstSPr == 0.0)
      FirstSPr = SPr;
    LastSPr = SPr;
  }
  Table.print(outs());

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += shapeCheck(Monotone,
                         "islands advantage shrinks as the interconnect "
                         "improves (scenario trade-off)");
  Failures += shapeCheck(FirstSPr > 10.0,
                         "slow interconnect: replication wins by >10x");
  Failures += shapeCheck(LastSPr < 4.0,
                         "16x faster interconnect: exchange-based (3+1)D "
                         "within 4x");
  return Failures == 0 ? 0 : 1;
}
