//===- bench/BenchUtil.cpp - Shared benchmark-harness helpers -------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

// Table 1 / Table 3 of the paper (seconds for 50 steps, P = 1..14).
const std::array<double, 14> icores::bench::PaperOriginalSerialInit = {
    30.4, 44.5, 58.2, 61.5, 64.3, 70.1, 71.6,
    73.7, 75.4, 77.6, 78.4, 78.2, 80.6, 82.2};
const std::array<double, 14> icores::bench::PaperOriginalFirstTouch = {
    30.4, 15.4, 10.5, 7.87, 6.55, 5.61, 4.95,
    4.27, 4.01, 3.58, 3.31, 3.14, 2.95, 2.81};
const std::array<double, 14> icores::bench::PaperBlock31D = {
    9.00, 8.20, 7.38, 7.98, 7.06, 7.22, 7.26,
    7.69, 9.11, 9.48, 10.2, 10.1, 10.3, 10.4};
const std::array<double, 14> icores::bench::PaperIslands = {
    9.00, 5.62, 4.17, 2.93, 2.34, 1.97, 1.72,
    1.49, 1.36, 1.25, 1.12, 1.06, 1.05, 1.01};

// Table 2 of the paper (percent extra elements).
const std::array<double, 14> icores::bench::PaperExtraVariantA = {
    0.00, 0.25, 0.49, 0.74, 0.99, 1.24, 1.48,
    1.73, 1.98, 2.22, 2.47, 2.72, 2.96, 3.21};
const std::array<double, 14> icores::bench::PaperExtraVariantB = {
    0.00, 0.49, 0.99, 1.48, 1.98, 2.47, 2.96,
    3.46, 3.95, 4.45, 4.94, 5.43, 5.93, 6.42};

// Table 4 of the paper (Gflop/s; the paper omits P=13, interpolated here).
const std::array<double, 14> icores::bench::PaperSustainedGflops = {
    42.7,  68.5,  92.5,  131.9, 165.5, 197.0, 226.1,
    261.4, 287.0, 325.9, 349.8, 370.3, 380.0, 390.1};

SimResult icores::bench::simulatePaperRun(const MpdataProgram &M,
                                          const MachineModel &Uv,
                                          Strategy Strat, int Sockets,
                                          PagePlacement Placement,
                                          PartitionVariant Variant) {
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Sockets;
  Config.Placement = Placement;
  Config.Variant = Variant;
  Box3 Grid = Box3::fromExtents(PaperNI, PaperNJ, PaperNK);
  ExecutionPlan Plan = buildPlan(M.Program, Grid, Uv, Config);
  return simulate(Plan, M.Program, Uv, PaperSteps);
}

int icores::bench::shapeCheck(bool Ok, const char *Description) {
  std::printf("  [%s] %s\n", Ok ? "PASS" : "FAIL", Description);
  return Ok ? 0 : 1;
}
