//===- bench/BenchUtil.cpp - Shared benchmark-harness helpers -------------===//

#include "BenchUtil.h"

#include "exec/PlanExecutor.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/Format.h"
#include "support/OStream.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace icores;
using namespace icores::bench;

namespace {

/// The toy machine both sides of the model check target: enough sockets
/// for the requested island count, host-friendly team sizes.
MachineModel hostCheckMachine(int Islands) {
  MachineModel M = makeToyMachine();
  M.NumSockets = Islands;
  return M;
}

ExecutionPlan hostCheckPlan(const MpdataProgram &M, Strategy Strat,
                            int Islands, const Box3 &Grid) {
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Islands;
  return buildPlan(M.Program, Grid, hostCheckMachine(Islands), Config);
}

} // namespace

// Table 1 / Table 3 of the paper (seconds for 50 steps, P = 1..14).
const std::array<double, 14> icores::bench::PaperOriginalSerialInit = {
    30.4, 44.5, 58.2, 61.5, 64.3, 70.1, 71.6,
    73.7, 75.4, 77.6, 78.4, 78.2, 80.6, 82.2};
const std::array<double, 14> icores::bench::PaperOriginalFirstTouch = {
    30.4, 15.4, 10.5, 7.87, 6.55, 5.61, 4.95,
    4.27, 4.01, 3.58, 3.31, 3.14, 2.95, 2.81};
const std::array<double, 14> icores::bench::PaperBlock31D = {
    9.00, 8.20, 7.38, 7.98, 7.06, 7.22, 7.26,
    7.69, 9.11, 9.48, 10.2, 10.1, 10.3, 10.4};
const std::array<double, 14> icores::bench::PaperIslands = {
    9.00, 5.62, 4.17, 2.93, 2.34, 1.97, 1.72,
    1.49, 1.36, 1.25, 1.12, 1.06, 1.05, 1.01};

// Table 2 of the paper (percent extra elements).
const std::array<double, 14> icores::bench::PaperExtraVariantA = {
    0.00, 0.25, 0.49, 0.74, 0.99, 1.24, 1.48,
    1.73, 1.98, 2.22, 2.47, 2.72, 2.96, 3.21};
const std::array<double, 14> icores::bench::PaperExtraVariantB = {
    0.00, 0.49, 0.99, 1.48, 1.98, 2.47, 2.96,
    3.46, 3.95, 4.45, 4.94, 5.43, 5.93, 6.42};

// Table 4 of the paper (Gflop/s; the paper omits P=13, interpolated here).
const std::array<double, 14> icores::bench::PaperSustainedGflops = {
    42.7,  68.5,  92.5,  131.9, 165.5, 197.0, 226.1,
    261.4, 287.0, 325.9, 349.8, 370.3, 380.0, 390.1};

SimResult icores::bench::simulatePaperRun(const MpdataProgram &M,
                                          const MachineModel &Uv,
                                          Strategy Strat, int Sockets,
                                          PagePlacement Placement,
                                          PartitionVariant Variant) {
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Sockets;
  Config.Placement = Placement;
  Config.Variant = Variant;
  Box3 Grid = Box3::fromExtents(PaperNI, PaperNJ, PaperNK);
  ExecutionPlan Plan = buildPlan(M.Program, Grid, Uv, Config);
  return simulate(Plan, M.Program, Uv, PaperSteps);
}

SimResult icores::bench::simulateOptimizedPaperRun(
    const MpdataProgram &M, const MachineModel &Uv, Strategy Strat,
    int Sockets, ScheduleOptimizerReport *Report) {
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Sockets;
  Box3 Grid = Box3::fromExtents(PaperNI, PaperNJ, PaperNK);
  ExecutionPlan Plan = buildPlan(M.Program, Grid, Uv, Config);
  ScheduleOptimizerReport R = optimizeBarriers(M.Program, Plan);
  if (Report)
    *Report = R;
  return simulate(Plan, M.Program, Uv, PaperSteps);
}

int icores::bench::shapeCheck(bool Ok, const char *Description) {
  std::printf("  [%s] %s\n", Ok ? "PASS" : "FAIL", Description);
  return Ok ? 0 : 1;
}

std::string
icores::bench::writeBenchJson(const std::string &BenchName,
                              const std::vector<BenchJsonRow> &Rows) {
  const char *Dir = std::getenv("ICORES_BENCH_DIR");
  std::string Path = formatString("%s/BENCH_%s.json", Dir ? Dir : ".",
                                  BenchName.c_str());
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::printf("note: could not write %s\n", Path.c_str());
    return std::string();
  }
  std::fprintf(F, "{\n  \"schema\": \"icores.bench.v1\",\n");
  std::fprintf(F, "  \"bench\": \"%s\",\n", BenchName.c_str());
  std::fprintf(F, "  \"rows\": [");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const BenchJsonRow &R = Rows[I];
    std::fprintf(F, "%s\n    {\"strategy\": \"%s\", \"p\": %d, "
                 "\"seconds\": %.9g, \"barrier_share\": %.9g, "
                 "\"total_barriers\": %lld, \"elided_barriers\": %lld, "
                 "\"optimized_seconds\": %.9g, \"gflops\": %.9g}",
                 I ? "," : "", R.Strategy.c_str(), R.P, R.Seconds,
                 R.BarrierShare, static_cast<long long>(R.TotalBarriers),
                 static_cast<long long>(R.ElidedBarriers),
                 R.OptimizedSeconds, R.Gflops);
  }
  std::fprintf(F, "\n  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
  return Path;
}

std::string icores::bench::writeKernelBenchJson(
    const std::string &BenchName,
    const std::vector<KernelBenchJsonRow> &Rows) {
  const char *Dir = std::getenv("ICORES_BENCH_DIR");
  std::string Path = formatString("%s/BENCH_%s.json", Dir ? Dir : ".",
                                  BenchName.c_str());
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::printf("note: could not write %s\n", Path.c_str());
    return std::string();
  }
  std::fprintf(F, "{\n  \"schema\": \"icores.bench.v1\",\n");
  std::fprintf(F, "  \"bench\": \"%s\",\n", BenchName.c_str());
  std::fprintf(F, "  \"rows\": [");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const KernelBenchJsonRow &R = Rows[I];
    std::fprintf(F,
                 "%s\n    {\"variant\": \"%s\", \"stage\": \"%s\", "
                 "\"region\": \"%s\", \"seconds\": %.9g, "
                 "\"gflops\": %.9g, \"gbps\": %.9g}",
                 I ? "," : "", R.Variant.c_str(), R.Stage.c_str(),
                 R.Region.c_str(), R.Seconds, R.Gflops, R.GBps);
  }
  std::fprintf(F, "\n  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
  return Path;
}

std::string icores::bench::writeTemporalBenchJson(
    const std::string &BenchName,
    const std::vector<TemporalBenchJsonRow> &Rows) {
  const char *Dir = std::getenv("ICORES_BENCH_DIR");
  std::string Path = formatString("%s/BENCH_%s.json", Dir ? Dir : ".",
                                  BenchName.c_str());
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::printf("note: could not write %s\n", Path.c_str());
    return std::string();
  }
  std::fprintf(F, "{\n  \"schema\": \"icores.bench.v2\",\n");
  std::fprintf(F, "  \"bench\": \"%s\",\n", BenchName.c_str());
  std::fprintf(F, "  \"rows\": [");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const TemporalBenchJsonRow &R = Rows[I];
    std::fprintf(F,
                 "%s\n    {\"workload\": \"%s\", \"strategy\": \"%s\", "
                 "\"temporal_depth\": %d, "
                 "\"measured_bytes_per_step\": %lld, "
                 "\"projected_bytes_per_step\": %lld, "
                 "\"seconds\": %.9g}",
                 I ? "," : "", R.Workload.c_str(), R.Strategy.c_str(),
                 R.TemporalDepth,
                 static_cast<long long>(R.MeasuredBytesPerStep),
                 static_cast<long long>(R.ProjectedBytesPerStep),
                 R.Seconds);
  }
  std::fprintf(F, "\n  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
  return Path;
}

std::string icores::bench::writeNumaBenchJson(
    const std::string &BenchName,
    const std::vector<NumaBenchJsonRow> &Rows) {
  const char *Dir = std::getenv("ICORES_BENCH_DIR");
  std::string Path = formatString("%s/BENCH_%s.json", Dir ? Dir : ".",
                                  BenchName.c_str());
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::printf("note: could not write %s\n", Path.c_str());
    return std::string();
  }
  std::fprintf(F, "{\n  \"schema\": \"icores.bench.v2\",\n");
  std::fprintf(F, "  \"bench\": \"%s\",\n", BenchName.c_str());
  std::fprintf(F, "  \"rows\": [");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const NumaBenchJsonRow &R = Rows[I];
    std::fprintf(F,
                 "%s\n    {\"workload\": \"%s\", \"strategy\": \"%s\", "
                 "\"temporal_depth\": %d, \"placement\": \"%s\", "
                 "\"remote_bytes_per_step\": %lld, "
                 "\"projected_remote_bytes_per_step\": %lld, "
                 "\"pages_first_touched\": %lld, "
                 "\"pin_failures\": %lld, "
                 "\"seconds\": %.9g}",
                 I ? "," : "", R.Workload.c_str(), R.Strategy.c_str(),
                 R.TemporalDepth, R.Placement.c_str(),
                 static_cast<long long>(R.RemoteBytesPerStep),
                 static_cast<long long>(R.ProjectedRemoteBytesPerStep),
                 static_cast<long long>(R.PagesFirstTouched),
                 static_cast<long long>(R.PinFailures), R.Seconds);
  }
  std::fprintf(F, "\n  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
  return Path;
}

std::string icores::bench::writeBalanceBenchJson(
    const std::string &BenchName,
    const std::vector<BalanceBenchJsonRow> &Rows) {
  const char *Dir = std::getenv("ICORES_BENCH_DIR");
  std::string Path = formatString("%s/BENCH_%s.json", Dir ? Dir : ".",
                                  BenchName.c_str());
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::printf("note: could not write %s\n", Path.c_str());
    return std::string();
  }
  std::fprintf(F, "{\n  \"schema\": \"icores.bench.v2\",\n");
  std::fprintf(F, "  \"bench\": \"%s\",\n", BenchName.c_str());
  std::fprintf(F, "  \"rows\": [");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const BalanceBenchJsonRow &R = Rows[I];
    std::fprintf(F,
                 "%s\n    {\"workload\": \"%s\", \"balance\": \"%s\", "
                 "\"stealing\": %s, "
                 "\"temporal_depth\": %d, \"islands\": %d, "
                 "\"predicted_skew_sim\": %.9g, "
                 "\"predicted_skew_exec\": %.9g, "
                 "\"measured_skew\": %.9g, \"max_imbalance\": %.9g, "
                 "\"steals\": %lld, \"steal_failures\": %lld, "
                 "\"idle_seconds\": %.9g, \"seconds\": %.9g}",
                 I ? "," : "", R.Workload.c_str(), R.Balance.c_str(),
                 R.Stealing ? "true" : "false", R.TemporalDepth, R.Islands,
                 R.PredictedSkewSim, R.PredictedSkewExec, R.MeasuredSkew,
                 R.MaxImbalance, static_cast<long long>(R.Steals),
                 static_cast<long long>(R.StealFailures), R.IdleSeconds,
                 R.Seconds);
  }
  std::fprintf(F, "\n  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path.c_str());
  return Path;
}

MeasuredProfile icores::bench::measureHostRun(const MpdataProgram &M,
                                              Strategy Strat, int Islands,
                                              int NI, int NJ, int NK,
                                              int Steps, bool Optimize) {
  Domain Dom(NI, NJ, NK, mpdataHaloDepth());
  ExecutionPlan Plan = hostCheckPlan(M, Strat, Islands, Dom.coreBox());
  if (Optimize)
    optimizeBarriers(M.Program, Plan);
  PlanExecutor Exec(Dom, std::move(Plan));
  fillRandomPositive(Exec.stateIn(), Dom, 42, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Dom, 0.25, -0.2, 0.15);
  Exec.prepareCoefficients();
  Exec.enableProfiling(true);
  Exec.run(Steps);

  const ExecStats &Stats = Exec.stats();
  MeasuredProfile P;
  P.KernelSeconds = Stats.kernelSeconds();
  P.TeamBarrierWaitSeconds = Stats.teamBarrierWaitSeconds();
  P.WallSeconds = Stats.WallSeconds;
  P.ThreadsSpawned = Stats.ThreadsSpawned;
  P.RunCalls = Stats.RunCalls;
  P.ElidedBarriers = Stats.barriersElided();
  P.SpinWakes = Stats.spinWakes();
  P.SleepWakes = Stats.sleepWakes();
  return P;
}

SimResult icores::bench::simulateHostRun(const MpdataProgram &M,
                                         Strategy Strat, int Islands,
                                         int NI, int NJ, int NK, int Steps,
                                         bool Optimize) {
  ExecutionPlan Plan =
      hostCheckPlan(M, Strat, Islands, Box3::fromExtents(NI, NJ, NK));
  if (Optimize)
    optimizeBarriers(M.Program, Plan);
  return simulate(Plan, M.Program, hostCheckMachine(Islands), Steps);
}

int icores::bench::printBarrierShareModelCheck(const MpdataProgram &M,
                                               int Islands, int Steps) {
  constexpr int NI = 64, NJ = 32, NK = 16;
  std::printf("\nmodel check: predicted vs measured barrier share "
              "(real executor, %dx%dx%d, %d steps, %d islands on this "
              "host)\n",
              NI, NJ, NK, Steps, Islands);
  unsigned HostThreads = std::thread::hardware_concurrency();
  int PlanThreads = Islands * hostCheckMachine(Islands).CoresPerSocket;
  if (HostThreads != 0 && PlanThreads > static_cast<int>(HostThreads))
    std::printf("note: plan runs %d threads on %u hardware threads — "
                "oversubscription inflates the measured share\n",
                PlanThreads, HostThreads);
  std::vector<ModelCompareRow> Rows;
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    for (bool Optimize : {false, true}) {
      SimResult Predicted =
          simulateHostRun(M, Strat, Islands, NI, NJ, NK, Steps, Optimize);
      MeasuredProfile Measured =
          measureHostRun(M, Strat, Islands, NI, NJ, NK, Steps, Optimize);
      ModelCompareRow Row;
      Row.Label = Optimize
                      ? formatString("%s+elide", strategyName(Strat))
                      : std::string(strategyName(Strat));
      Row.Comparison = compareBarrierShare(Predicted.CriticalIsland,
                                           Measured.KernelSeconds,
                                           Measured.TeamBarrierWaitSeconds);
      Rows.push_back(Row);
    }
  }
  printModelCompareTable(Rows, outs());
  return static_cast<int>(Rows.size());
}
