//===- bench/bench_fig2.cpp - Reproduce Figure 2 --------------------------===//
//
// Figure 2: (a) execution-time curves of the three MPDATA versions over
// P = 1..14, and (b) the partial (S_pr) and overall (S_ov) speedup curves
// of the islands-of-cores approach. Emits the series as CSV so the plot
// can be regenerated directly, plus an ASCII rendering of the trends.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace icores;
using namespace icores::bench;

namespace {

/// Minimal ASCII bar chart: one row per P, proportional bar for value.
void asciiSeries(const char *Name, const std::array<double, 14> &Values) {
  double Max = *std::max_element(Values.begin(), Values.end());
  std::printf("%s\n", Name);
  for (int P = 1; P <= PaperMaxCpus; ++P) {
    int Bars = static_cast<int>(Values[P - 1] / Max * 50.0 + 0.5);
    std::printf("  P=%2d %7.2f |%s\n", P, Values[P - 1],
                std::string(static_cast<size_t>(Bars), '#').c_str());
  }
}

} // namespace

int main() {
  std::printf("=== Figure 2: performance curves (1024x512x64, 50 steps) "
              "===\n\n");

  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();

  std::array<double, 14> Orig{}, Blocked{}, Isl{}, SPr{}, SOv{};
  for (int P = 1; P <= PaperMaxCpus; ++P) {
    Orig[P - 1] = simulatePaperRun(M, Uv, Strategy::Original, P).TotalSeconds;
    Blocked[P - 1] =
        simulatePaperRun(M, Uv, Strategy::Block31D, P).TotalSeconds;
    Isl[P - 1] =
        simulatePaperRun(M, Uv, Strategy::IslandsOfCores, P).TotalSeconds;
    SPr[P - 1] = Blocked[P - 1] / Isl[P - 1];
    SOv[P - 1] = Orig[P - 1] / Isl[P - 1];
  }

  std::printf("--- Fig. 2(a) series (CSV) ---\n");
  std::printf("P,original,31d,islands\n");
  for (int P = 1; P <= PaperMaxCpus; ++P)
    std::printf("%d,%.3f,%.3f,%.3f\n", P, Orig[P - 1], Blocked[P - 1],
                Isl[P - 1]);

  std::printf("\n--- Fig. 2(b) series (CSV) ---\n");
  std::printf("P,S_pr,S_ov\n");
  for (int P = 1; P <= PaperMaxCpus; ++P)
    std::printf("%d,%.3f,%.3f\n", P, SPr[P - 1], SOv[P - 1]);

  std::printf("\n");
  asciiSeries("execution time: original [s]", Orig);
  asciiSeries("execution time: (3+1)D [s]", Blocked);
  asciiSeries("execution time: islands-of-cores [s]", Isl);
  asciiSeries("partial speedup S_pr", SPr);
  asciiSeries("overall speedup S_ov", SOv);

  std::printf("\nshape checks:\n");
  int Failures = 0;
  bool SPrGrows = true;
  for (int P = 2; P <= PaperMaxCpus; ++P)
    if (SPr[P - 1] <= SPr[P - 2] * 0.9)
      SPrGrows = false;
  Failures += shapeCheck(SPrGrows,
                         "S_pr grows (near-monotonically) with P");
  Failures += shapeCheck(SPr[13] > 8.0, "S_pr exceeds ~10x at P=14");
  double SOvSpread =
      *std::max_element(SOv.begin() + 1, SOv.end()) /
      *std::min_element(SOv.begin() + 1, SOv.end());
  Failures += shapeCheck(SOvSpread < 1.5,
                         "S_ov flat across P (spread < 1.5x)");
  return Failures == 0 ? 0 : 1;
}
