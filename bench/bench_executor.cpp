//===- bench/bench_executor.cpp - Host timings of the real executors ------===//
//
// google-benchmark timings of the threaded PlanExecutor on this host for
// the three strategies. On a small host these numbers demonstrate the real
// code path end-to-end (the paper-scale numbers come from the simulator);
// on a genuine multi-socket machine they become direct measurements.
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "exec/PlanExecutor.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace icores;

namespace {

/// Builds a toy machine shaped like this host: all hardware threads in
/// one or more model sockets.
MachineModel hostMachine(int Sockets) {
  MachineModel M = makeToyMachine();
  M.NumSockets = Sockets;
  unsigned Hw = std::thread::hardware_concurrency();
  M.CoresPerSocket =
      static_cast<int>(Hw == 0 ? 1 : (Hw + Sockets - 1) / Sockets);
  return M;
}

void runStrategy(benchmark::State &BState, Strategy Strat, int Sockets) {
  MachineModel Machine = hostMachine(Sockets);
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(32, 24, 16, mpdataHaloDepth());
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Sockets;
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  PlanExecutor Exec(Dom, std::move(Plan));
  fillRandomPositive(Exec.stateIn(), Dom, 5, 0.1, 1.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Dom, 0.25, -0.2, 0.15);
  Exec.prepareCoefficients();

  for (auto _ : BState)
    Exec.run(1);
  BState.SetItemsProcessed(BState.iterations() * Dom.numCells());
}

void BM_ExecOriginal(benchmark::State &S) {
  runStrategy(S, Strategy::Original, 1);
}
void BM_ExecBlock31D(benchmark::State &S) {
  runStrategy(S, Strategy::Block31D, 1);
}
void BM_ExecIslands1(benchmark::State &S) {
  runStrategy(S, Strategy::IslandsOfCores, 1);
}
void BM_ExecIslands2(benchmark::State &S) {
  runStrategy(S, Strategy::IslandsOfCores, 2);
}

void BM_ReferenceSolver(benchmark::State &BState) {
  ReferenceSolver Solver(32, 24, 16);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 5, 0.1, 1.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.25, -0.2, 0.15);
  Solver.prepareCoefficients();
  for (auto _ : BState)
    Solver.run(1);
  BState.SetItemsProcessed(BState.iterations() *
                           Solver.domain().numCells());
}

} // namespace

BENCHMARK(BM_ReferenceSolver)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecOriginal)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecBlock31D)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecIslands1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecIslands2)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
