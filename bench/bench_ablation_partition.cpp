//===- bench/bench_ablation_partition.cpp - Partitioning ablation ---------===//
//
// Ablation over the island partitioning scheme: the paper's 1D variants A
// and B (Table 2 / Sect. 5) plus the 2D island grids it defers to future
// work. Reports redundant work and simulated time per configuration.
//
// Expected shape: variant A beats variant B everywhere (smaller boundary
// cross-section on the 1024x512 grid); 2D grids pay more redundant work at
// these island counts and do not beat 1D-A on this aspect ratio.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Partition.h"
#include "stencil/ExtraElements.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

namespace {

struct CaseResult {
  double ExtraPercent = 0.0;
  double Seconds = 0.0;
};

CaseResult runCase(const MpdataProgram &M, const MachineModel &Uv,
                   int Sockets, PartitionVariant Variant, int GridI,
                   int GridJ) {
  Box3 Grid = Box3::fromExtents(PaperNI, PaperNJ, PaperNK);
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = Sockets;
  Config.Variant = Variant;
  Config.GridPartsI = GridI;
  Config.GridPartsJ = GridJ;
  ExecutionPlan Plan = buildPlan(M.Program, Grid, Uv, Config);

  std::vector<Box3> Parts;
  for (const IslandPlan &Island : Plan.Islands)
    Parts.push_back(Island.Part);
  CaseResult R;
  R.ExtraPercent =
      countExtraElements(M.Program, Grid, Parts).extraFraction() * 100.0;
  R.Seconds = simulate(Plan, M.Program, Uv, PaperSteps).TotalSeconds;
  return R;
}

} // namespace

int main() {
  std::printf("=== Ablation: island partitioning (1D-A vs 1D-B vs 2D "
              "grids) ===\n");
  std::printf("1024x512x64, 50 steps, SGI UV 2000 model\n\n");

  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();

  TablePrinter Table({"#islands", "1D-A extra[%]", "1D-A time[s]",
                      "1D-B extra[%]", "1D-B time[s]", "2D grid",
                      "2D extra[%]", "2D time[s]"});
  int Failures = 0;
  for (int P : {2, 4, 6, 8, 12, 14}) {
    CaseResult A = runCase(M, Uv, P, PartitionVariant::A, 0, 0);
    CaseResult B = runCase(M, Uv, P, PartitionVariant::B, 0, 0);
    auto [Gi, Gj] = factorForGrid(P);
    CaseResult G = runCase(M, Uv, P, PartitionVariant::A, Gi, Gj);
    Table.addRow({formatString("%d", P),
                  formatString("%.2f", A.ExtraPercent),
                  formatString("%.3f", A.Seconds),
                  formatString("%.2f", B.ExtraPercent),
                  formatString("%.3f", B.Seconds),
                  formatString("%dx%d", Gi, Gj),
                  formatString("%.2f", G.ExtraPercent),
                  formatString("%.3f", G.Seconds)});
    if (A.ExtraPercent >= B.ExtraPercent)
      ++Failures;
    if (A.Seconds > B.Seconds * 1.001)
      ++Failures;
  }
  Table.print(outs());

  std::printf("\nshape checks:\n");
  Failures += shapeCheck(Failures == 0,
                         "variant A cheaper than B in both redundant work "
                         "and simulated time at every island count");
  return Failures == 0 ? 0 : 1;
}
