//===- bench/bench_temporal.cpp - Temporal-blocking traffic study ---------===//
//
// Quantifies what temporal blocking buys: fusing T time steps into one
// cache-resident epoch re-reads the step inputs once per epoch instead of
// once per step, cutting the DRAM traffic between the islands and shared
// memory roughly by 1/T (minus the halo widening of the import cones).
//
// For each strategy and T in {1, 2, 4} the bench runs the real threaded
// executor on a host-sized grid, records its per-step shared-memory
// transfer accounting, and compares it against the simulator's projection
// computed from the plan alone. Results land in BENCH_temporal.json
// (schema icores.bench.v2; see bench/validate_bench_json.py).
//
// Shape checks:
//   - every T > 1 run stays bit-identical to the T = 1 run,
//   - measured traffic per step at T = 4 is lower than at T = 1,
//   - the simulator projection is within 20% of the measured traffic.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exec/PlanExecutor.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <chrono>
#include <cmath>
#include <cstdio>

using namespace icores;
using namespace icores::bench;

namespace {

// Large enough that the core dominates the halo-widened import cones
// (temporal reuse loses on tiny grids where the cones double the box),
// small enough to finish in seconds on any host.
constexpr int NI = 64, NJ = 48, NK = 48;
constexpr int Steps = 8;
constexpr int Islands = 2;

struct RunResult {
  Array3D State;
  int64_t MeasuredBytesPerStep = 0;
  double Seconds = 0.0;
};

RunResult runOnce(const MpdataProgram &M, Strategy Strat, int Depth) {
  Domain Dom(NI, NJ, NK, mpdataHaloDepth());
  MachineModel Host = makeToyMachine();
  Host.NumSockets = Islands;
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Strat == Strategy::Original ? 1 : Islands;
  Config.TemporalDepth = Depth;
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Host, Config);
  optimizeBarriers(M.Program, Plan);

  PlanExecutor Exec(Dom, std::move(Plan));
  fillRandomPositive(Exec.stateIn(), Dom, 42, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Dom, 0.25, -0.2, 0.15);
  Exec.prepareCoefficients();
  auto Begin = std::chrono::steady_clock::now();
  Exec.run(Steps);
  auto End = std::chrono::steady_clock::now();

  RunResult R;
  R.State = Exec.state();
  R.MeasuredBytesPerStep = Exec.executor().sharedBytesPerStep();
  R.Seconds = std::chrono::duration<double>(End - Begin).count();
  return R;
}

int64_t projectOnce(const MpdataProgram &M, Strategy Strat, int Depth) {
  MachineModel Host = makeToyMachine();
  Host.NumSockets = Islands;
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Strat == Strategy::Original ? 1 : Islands;
  Config.TemporalDepth = Depth;
  Box3 Grid = Box3::fromExtents(NI, NJ, NK);
  ExecutionPlan Plan = buildPlan(M.Program, Grid, Host, Config);
  optimizeBarriers(M.Program, Plan);
  return projectedSharedBytesPerStep(Plan, M.Program);
}

} // namespace

int main() {
  std::printf("Temporal blocking: DRAM traffic per step, measured vs "
              "projected (%dx%dx%d, %d steps, %d islands)\n\n",
              NI, NJ, NK, Steps, Islands);
  MpdataProgram M = buildMpdataProgram();

  const std::pair<const char *, Strategy> Strategies[] = {
      {"31d", Strategy::Block31D},
      {"islands", Strategy::IslandsOfCores}};
  const int Depths[] = {1, 2, 4};

  TablePrinter Table({"strategy", "T", "measured/step", "projected/step",
                      "vs T=1", "bit-exact"});
  std::vector<TemporalBenchJsonRow> Rows;
  int Failures = 0;
  for (const auto &S : Strategies) {
    RunResult Base;
    for (int Depth : Depths) {
      RunResult R = runOnce(M, S.second, Depth);
      int64_t Projected = projectOnce(M, S.second, Depth);
      bool Exact = true;
      if (Depth == 1) {
        Base = R;
      } else {
        Box3 Core = Box3::fromExtents(NI, NJ, NK);
        Exact = R.State.maxAbsDiff(Base.State, Core) == 0.0;
      }
      double Ratio = static_cast<double>(R.MeasuredBytesPerStep) /
                     static_cast<double>(Base.MeasuredBytesPerStep);
      Table.addRow(
          {S.first, formatString("%d", Depth),
           formatBytes(static_cast<uint64_t>(R.MeasuredBytesPerStep)),
           formatBytes(static_cast<uint64_t>(Projected)),
           formatString("%.2fx", Ratio), Exact ? "yes" : "NO"});
      Rows.push_back({strategyName(S.second), Depth,
                      R.MeasuredBytesPerStep, Projected, R.Seconds});
      Failures += shapeCheck(
          Exact, formatString("%s T=%d bit-identical to T=1", S.first,
                              Depth)
                     .c_str());
      double Err = std::abs(static_cast<double>(Projected) -
                            static_cast<double>(R.MeasuredBytesPerStep)) /
                   static_cast<double>(R.MeasuredBytesPerStep);
      Failures += shapeCheck(
          Err <= 0.2,
          formatString("%s T=%d projection within 20%% of measured "
                       "(err %.1f%%)",
                       S.first, Depth, Err * 100.0)
              .c_str());
      if (Depth == 4)
        Failures += shapeCheck(
            R.MeasuredBytesPerStep < Base.MeasuredBytesPerStep,
            formatString("%s T=4 moves less DRAM traffic per step than "
                         "T=1 (%.2fx)",
                         S.first, Ratio)
                .c_str());
    }
  }
  std::printf("\n");
  Table.print(outs());
  writeTemporalBenchJson("temporal", Rows);
  return Failures == 0 ? 0 : 1;
}
