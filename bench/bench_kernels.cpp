//===- bench/bench_kernels.cpp - Kernel-backend roofline comparison -------===//
//
// Times all 17 MPDATA stage kernels for every backend (Reference /
// Optimized / Simd) on this host, on two regions:
//
//   hot  — small enough that the touched arrays stay cache-resident, so
//          the numbers approach the per-core compute roofline;
//   cold — large enough that every sweep streams from main memory, so
//          the numbers approach the bandwidth roofline.
//
// Gflop/s uses the IR's FlopsPerPoint; GB/s charges the *logical*
// (unpadded) bytes of the IR access pattern — the same accounting the
// traffic model uses — even though the arrays are allocated with the
// vector-padded layout. Per-stage and aggregate rows are written to
// BENCH_kernels.json (schema icores.bench.v1, kernel-row shape) so the
// perf trajectory of the backends is machine-tracked. The shape checks
// assert the point of the Simd backend: aggregate hot-cache Gflop/s at
// least 1.5x the Reference kernels.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/FieldStore.h"
#include "support/Random.h"

#include <chrono>
#include <cstdio>

using namespace icores;
using namespace icores::bench;

namespace {

/// One benchmark configuration: the stage sweep target and the store
/// holding vector-padded, randomly filled arrays covering it.
struct BenchSetup {
  const MpdataProgram &M;
  Box3 Target;
  FieldStore Fields;

  BenchSetup(const MpdataProgram &M, const Box3 &Target)
      : M(M), Target(Target), Fields(M.Program.numArrays()) {
    Box3 Alloc = Target.grownAll(4);
    SplitMix64 Rng(7);
    for (unsigned A = 0; A != M.Program.numArrays(); ++A) {
      Fields.allocateOwned(static_cast<ArrayId>(A), Alloc,
                           Array3D::VectorPadK);
      Array3D &Arr = Fields.get(static_cast<ArrayId>(A));
      for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I)
        for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J)
          for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K)
            Arr.at(I, J, K) = Rng.nextInRange(0.1, 1.0);
    }
    // Velocities must be small Courant numbers for realistic branches.
    for (ArrayId Vel : {M.U1, M.U2, M.U3}) {
      Array3D &Arr = Fields.get(Vel);
      for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I)
        for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J)
          for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K)
            Arr.at(I, J, K) = Rng.nextInRange(-0.3, 0.3);
    }
  }
};

/// Logical IR bytes one sweep of \p Stage over \p Region moves: reads of
/// the declared input windows plus writes of the outputs, unpadded.
int64_t stageLogicalBytes(const StencilProgram &Program, StageId Stage,
                          const Box3 &Region) {
  const StageDef &S = Program.stage(Stage);
  int64_t Bytes = 0;
  for (const StageInput &In : S.Inputs)
    Bytes += In.readRegion(Region).numPoints() *
             Program.array(In.Array).ElementBytes;
  for (ArrayId Out : S.Outputs)
    Bytes += Region.numPoints() * Program.array(Out).ElementBytes;
  return Bytes;
}

/// Best-of-reps seconds for one sweep of \p Stage with \p Variant. Each
/// sample batches enough sweeps to be comfortably above timer
/// granularity.
double timeStage(BenchSetup &S, StageId Stage, KernelVariant Variant) {
  using Clock = std::chrono::steady_clock;
  // Warm up (page in, prime caches and branch predictors).
  runMpdataStage(S.M, S.Fields, Stage, S.Target, Variant);

  double TargetSampleSeconds = 2e-3;
  int Batch = 1;
  double Best = 1e100;
  for (int Sample = 0; Sample != 4; ++Sample) {
    Clock::time_point T0 = Clock::now();
    for (int R = 0; R != Batch; ++R)
      runMpdataStage(S.M, S.Fields, Stage, S.Target, Variant);
    double Seconds = std::chrono::duration<double>(Clock::now() - T0).count();
    double PerSweep = Seconds / Batch;
    if (Sample > 0 && PerSweep < Best)
      Best = PerSweep; // Sample 0 only sizes the batch.
    if (Sample == 0) {
      Best = PerSweep;
      if (Seconds < TargetSampleSeconds)
        Batch = static_cast<int>(TargetSampleSeconds / PerSweep) + 1;
    }
  }
  return Best;
}

struct VariantAggregate {
  double Seconds = 0.0;
  int64_t Flops = 0;
  int64_t Bytes = 0;

  double gflops() const { return Seconds > 0 ? Flops / Seconds / 1e9 : 0; }
};

} // namespace

int main() {
  MpdataProgram M = buildMpdataProgram();
  const KernelVariant Variants[] = {KernelVariant::Reference,
                                    KernelVariant::Optimized,
                                    KernelVariant::Simd};
  // hot: every touched array row set (~10 x 32 KiB) stays cache-resident
  // between sweeps. cold: each array is ~6 MiB, so consecutive sweeps
  // evict each other and the kernels stream from memory.
  const struct {
    const char *Name;
    Box3 Target;
  } Regions[] = {{"hot", Box3::fromExtents(8, 8, 64)},
                 {"cold", Box3::fromExtents(128, 96, 64)}};

  std::vector<KernelBenchJsonRow> Rows;
  double HotAggGflops[3] = {0, 0, 0};

  for (const auto &Region : Regions) {
    std::printf("\n== %s region %s ==\n", Region.Name,
                Region.Target.str().c_str());
    std::printf("%-10s %6s %6s %6s   %6s %6s %6s  (Gflop/s | GB/s)\n",
                "stage", "ref", "opt", "simd", "ref", "opt", "simd");
    std::vector<BenchSetup> Setups;
    Setups.reserve(3);
    for (int V = 0; V != 3; ++V)
      Setups.emplace_back(M, Region.Target);

    VariantAggregate Agg[3];
    for (unsigned Stage = 0; Stage != M.Program.numStages(); ++Stage) {
      StageId Id = static_cast<StageId>(Stage);
      int64_t Flops =
          Region.Target.numPoints() * M.Program.stage(Id).FlopsPerPoint;
      int64_t Bytes = stageLogicalBytes(M.Program, Id, Region.Target);
      double Gflops[3], GBps[3];
      for (int V = 0; V != 3; ++V) {
        double Seconds = timeStage(Setups[V], Id, Variants[V]);
        Gflops[V] = Flops / Seconds / 1e9;
        GBps[V] = Bytes / Seconds / 1e9;
        Agg[V].Seconds += Seconds;
        Agg[V].Flops += Flops;
        Agg[V].Bytes += Bytes;
        Rows.push_back({kernelVariantName(Variants[V]),
                        M.Program.stage(Id).Name, Region.Name, Seconds,
                        Gflops[V], GBps[V]});
      }
      std::printf("%-10s %6.2f %6.2f %6.2f   %6.2f %6.2f %6.2f\n",
                  M.Program.stage(Id).Name.c_str(), Gflops[0], Gflops[1],
                  Gflops[2], GBps[0], GBps[1], GBps[2]);
    }

    std::printf("%-10s %6.2f %6.2f %6.2f   %6.2f %6.2f %6.2f\n", "all",
                Agg[0].gflops(), Agg[1].gflops(), Agg[2].gflops(),
                Agg[0].Bytes / Agg[0].Seconds / 1e9,
                Agg[1].Bytes / Agg[1].Seconds / 1e9,
                Agg[2].Bytes / Agg[2].Seconds / 1e9);
    for (int V = 0; V != 3; ++V) {
      Rows.push_back({kernelVariantName(Variants[V]), "all", Region.Name,
                      Agg[V].Seconds, Agg[V].gflops(),
                      Agg[V].Bytes / Agg[V].Seconds / 1e9});
      if (std::string(Region.Name) == "hot")
        HotAggGflops[V] = Agg[V].gflops();
    }
  }

  std::printf("\nsim calibration: kernelThroughputFactor ref %.2f, "
              "opt %.2f, simd 1.00 (normalized hot aggregate)\n",
              HotAggGflops[0] / HotAggGflops[2],
              HotAggGflops[1] / HotAggGflops[2]);

  std::printf("\n");
  int Failures = 0;
  Failures += shapeCheck(HotAggGflops[2] >= 1.5 * HotAggGflops[0],
                         "Simd aggregate hot-cache Gflop/s >= 1.5x "
                         "Reference");
  Failures += shapeCheck(HotAggGflops[2] >= 0.9 * HotAggGflops[1],
                         "Simd aggregate hot-cache Gflop/s not behind "
                         "Optimized (>= 0.9x)");
  writeKernelBenchJson("kernels", Rows);
  return Failures;
}
