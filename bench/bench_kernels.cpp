//===- bench/bench_kernels.cpp - Host microbenchmarks of the kernels ------===//
//
// google-benchmark timings of the 17 MPDATA stage kernels on this host
// (real execution, not simulation). Useful for checking the relative flop
// weights assigned in the IR against measured per-point costs.
//
//===----------------------------------------------------------------------===//

#include "stencil/FieldStore.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace icores;

namespace {

/// Shared setup: one field store with all arrays allocated and filled.
struct KernelBenchState {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = Box3::fromExtents(48, 48, 48);
  FieldStore Fields{M.Program.numArrays()};

  KernelBenchState() {
    Box3 Alloc = Target.grownAll(4);
    SplitMix64 Rng(7);
    for (unsigned A = 0; A != M.Program.numArrays(); ++A) {
      Fields.allocateOwned(static_cast<ArrayId>(A), Alloc);
      Array3D &Arr = Fields.get(static_cast<ArrayId>(A));
      for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I)
        for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J)
          for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K)
            Arr.at(I, J, K) = Rng.nextInRange(0.1, 1.0);
    }
    // Velocities must be small Courant numbers for realistic branches.
    for (ArrayId Vel : {M.U1, M.U2, M.U3}) {
      Array3D &Arr = Fields.get(Vel);
      for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I)
        for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J)
          for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K)
            Arr.at(I, J, K) = Rng.nextInRange(-0.3, 0.3);
    }
  }
};

KernelBenchState &state() {
  static KernelBenchState S;
  return S;
}

void runStageBench(benchmark::State &BState, KernelVariant Variant) {
  KernelBenchState &S = state();
  StageId Stage = static_cast<StageId>(BState.range(0));
  for (auto _ : BState) {
    runMpdataStage(S.M, S.Fields, Stage, S.Target, Variant);
    benchmark::ClobberMemory();
  }
  BState.SetItemsProcessed(BState.iterations() * S.Target.numPoints());
  BState.SetLabel(S.M.Program.stage(Stage).Name);
}

void BM_Stage(benchmark::State &BState) {
  runStageBench(BState, KernelVariant::Reference);
}

void BM_StageOpt(benchmark::State &BState) {
  runStageBench(BState, KernelVariant::Optimized);
}

void runFullStepBench(benchmark::State &BState, KernelVariant Variant) {
  KernelBenchState &S = state();
  for (auto _ : BState) {
    for (unsigned Stage = 0; Stage != S.M.Program.numStages(); ++Stage)
      runMpdataStage(S.M, S.Fields, static_cast<StageId>(Stage), S.Target,
                     Variant);
    benchmark::ClobberMemory();
  }
  BState.SetItemsProcessed(BState.iterations() * S.Target.numPoints());
}

void BM_FullStep(benchmark::State &BState) {
  runFullStepBench(BState, KernelVariant::Reference);
}

void BM_FullStepOpt(benchmark::State &BState) {
  runFullStepBench(BState, KernelVariant::Optimized);
}

} // namespace

BENCHMARK(BM_Stage)->DenseRange(0, 16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StageOpt)->DenseRange(0, 16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullStep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullStepOpt)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
