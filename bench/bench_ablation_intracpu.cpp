//===- bench/bench_ablation_intracpu.cpp - Intra-CPU islands ablation -----===//
//
// The paper's future work: "the proposed islands-of-cores approach can be
// applied to optimize computations within every multicore CPU (or manycore
// accelerator)". This ablation sweeps islands-per-socket on two machine
// models:
//
//  - SGI UV 2000 (8-core CPUs, cheap intra-socket barrier): sub-socket
//    islands change little — one island per CPU is already near-optimal;
//  - Xeon Phi KNC (60 cores, expensive all-thread barrier): intra-chip
//    islands pay off clearly, validating the future-work hypothesis.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

namespace {

double timeWithIslandsPerSocket(const MpdataProgram &M,
                                const MachineModel &Machine, int Sockets,
                                int PerSocket) {
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = Sockets;
  Config.IslandsPerSocket = PerSocket;
  Box3 Grid = Box3::fromExtents(PaperNI, PaperNJ, PaperNK);
  ExecutionPlan Plan = buildPlan(M.Program, Grid, Machine, Config);
  return simulate(Plan, M.Program, Machine, PaperSteps).TotalSeconds;
}

} // namespace

int main() {
  std::printf("=== Ablation: islands *within* each CPU (future work, "
              "Sect. 6) ===\n");
  std::printf("1024x512x64, 50 steps\n\n");

  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();
  MachineModel Knc = makeXeonPhiKnc();

  TablePrinter Table({"islands/CPU", "UV 2000, P=14 [s]",
                      "Xeon Phi KNC [s]"});
  double UvBase = 0.0, UvBest = 1e300;
  double KncBase = 0.0, KncBest = 1e300;
  for (int PerSocket : {1, 2, 4}) {
    double UvTime = timeWithIslandsPerSocket(M, Uv, 14, PerSocket);
    double KncTime = timeWithIslandsPerSocket(M, Knc, 1, PerSocket);
    Table.addRow({formatString("%d", PerSocket),
                  formatString("%.3f", UvTime),
                  formatString("%.3f", KncTime)});
    if (PerSocket == 1) {
      UvBase = UvTime;
      KncBase = KncTime;
    }
    UvBest = std::min(UvBest, UvTime);
    KncBest = std::min(KncBest, KncTime);
  }
  // KNC has more divisors worth trying.
  for (int PerSocket : {6, 10, 12}) {
    double KncTime = timeWithIslandsPerSocket(M, Knc, 1, PerSocket);
    Table.addRow({formatString("%d", PerSocket), "-",
                  formatString("%.3f", KncTime)});
    KncBest = std::min(KncBest, KncTime);
  }
  Table.print(outs());

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += shapeCheck(KncBest < KncBase / 1.5,
                         "intra-chip islands win clearly on the manycore "
                         "KNC (>1.5x)");
  Failures += shapeCheck(UvBest > UvBase * 0.7,
                         "on 8-core CPUs sub-socket islands change little "
                         "(<1.4x either way)");
  return Failures == 0 ? 0 : 1;
}
