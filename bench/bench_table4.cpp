//===- bench/bench_table4.cpp - Reproduce Table 4 -------------------------===//
//
// Table 4: sustained performance (Gflop/s) of the islands-of-cores
// approach, utilization relative to theoretical peak, and parallel
// efficiency, for P = 1..14 processors of the SGI UV 2000.
//
// Note on the efficiency row: the paper's "% of linear scaling" numbers
// coincide exactly with the *original* version's time-based scaling
// efficiency (e.g. 30.4/(14*2.81) = 77.3%); we print both that definition
// (to mirror the paper) and the honest islands-based definition.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

int main() {
  std::printf("=== Table 4: sustained performance of islands-of-cores "
              "(1024x512x64, 50 steps) ===\n");
  std::printf("paper values in parentheses\n\n");

  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();

  TablePrinter Table({"#CPUs", "Peak Gflop/s", "Sustained Gflop/s",
                      "Utilization [%]", "Efficiency (paper def.) [%]",
                      "Efficiency (islands) [%]"});
  std::array<double, 14> Sustained{}, Util{};
  std::array<double, 14> OrigTimes{}, IslTimes{};
  for (int P = 1; P <= PaperMaxCpus; ++P) {
    SimResult R = simulatePaperRun(M, Uv, Strategy::IslandsOfCores, P);
    OrigTimes[P - 1] =
        simulatePaperRun(M, Uv, Strategy::Original, P).TotalSeconds;
    IslTimes[P - 1] = R.TotalSeconds;
    Sustained[P - 1] = R.sustainedGflops();
    Util[P - 1] = Sustained[P - 1] * 1e9 / Uv.peakFlops(P);
    double EffPaperDef =
        OrigTimes[0] / (P * OrigTimes[P - 1]) * 100.0;
    double EffIslands = IslTimes[0] / (P * IslTimes[P - 1]) * 100.0;
    Table.addRow({formatString("%d", P),
                  formatString("%.1f", Uv.peakFlops(P) / 1e9),
                  formatString("%.1f (%.1f)", Sustained[P - 1],
                               PaperSustainedGflops[P - 1]),
                  formatString("%.1f", Util[P - 1] * 100.0),
                  formatString("%.1f", EffPaperDef),
                  formatString("%.1f", EffIslands)});
  }
  Table.print(outs());
  std::printf("\nnote: our kernels count %lld flops/point/step; the "
              "authors' count is ~229, so sustained figures scale "
              "accordingly\n",
              static_cast<long long>(M.Program.totalFlopsPerPoint()));

  std::printf("\nshape checks:\n");
  int Failures = 0;
  bool SustainedMonotone = true;
  for (int P = 2; P <= PaperMaxCpus; ++P)
    if (Sustained[P - 1] <= Sustained[P - 2])
      SustainedMonotone = false;
  Failures += shapeCheck(SustainedMonotone,
                         "sustained Gflop/s grows with every added CPU");
  Failures += shapeCheck(Sustained[13] > 300.0,
                         "hundreds of Gflop/s at P=14 (paper: 390)");
  bool UtilBand = true;
  for (int P = 2; P <= PaperMaxCpus; ++P)
    if (Util[P - 1] < 0.20 || Util[P - 1] > 0.55)
      UtilBand = false;
  Failures += shapeCheck(UtilBand,
                         "utilization stays in the paper's ~26-40% band "
                         "(ours ~28-37%)");
  Failures += shapeCheck(Util[13] < Util[1],
                         "utilization declines at the largest "
                         "configuration");

  // Machine-readable rows (BENCH_table4.json): sustained Gflop/s plus
  // the barrier-elision savings for the islands strategy at every P.
  std::vector<BenchJsonRow> JsonRows;
  for (int P = 1; P <= PaperMaxCpus; ++P) {
    SimResult Plain = simulatePaperRun(M, Uv, Strategy::IslandsOfCores, P);
    ScheduleOptimizerReport Report;
    SimResult Opt =
        simulateOptimizedPaperRun(M, Uv, Strategy::IslandsOfCores, P,
                                  &Report);
    BenchJsonRow Row;
    Row.Strategy = strategyName(Strategy::IslandsOfCores);
    Row.P = P;
    Row.Seconds = Plain.TotalSeconds;
    Row.BarrierShare =
        Plain.CriticalIsland.total() > 0.0
            ? Plain.CriticalIsland.Barrier / Plain.CriticalIsland.total()
            : 0.0;
    Row.TotalBarriers = Report.TotalPasses;
    Row.ElidedBarriers = Report.ElidedBarriers;
    Row.OptimizedSeconds = Opt.TotalSeconds;
    Row.Gflops = Plain.sustainedGflops();
    JsonRows.push_back(Row);
  }
  writeBenchJson("table4", JsonRows);

  // Model-error column against the real executor (see bench_table3 for
  // the strategy sweep; here the islands count varies instead), covering
  // both the stock and the barrier-elision-optimized schedules.
  std::printf("\nmodel check: predicted vs measured barrier share for "
              "islands-of-cores (real executor, 64x32x16, 5 steps)\n");
  std::vector<ModelCompareRow> Rows;
  for (int Islands : {1, 2, 4}) {
    for (bool Optimize : {false, true}) {
      SimResult Predicted = simulateHostRun(M, Strategy::IslandsOfCores,
                                            Islands, 64, 32, 16, 5, Optimize);
      MeasuredProfile Measured = measureHostRun(M, Strategy::IslandsOfCores,
                                                Islands, 64, 32, 16, 5,
                                                Optimize);
      ModelCompareRow Row;
      Row.Label = formatString(Optimize ? "islands P=%d+elide"
                                        : "islands P=%d",
                               Islands);
      Row.Comparison = compareBarrierShare(Predicted.CriticalIsland,
                                           Measured.KernelSeconds,
                                           Measured.TeamBarrierWaitSeconds);
      Rows.push_back(Row);
    }
  }
  printModelCompareTable(Rows, outs());

  return Failures == 0 ? 0 : 1;
}
