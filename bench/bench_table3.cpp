//===- bench/bench_table3.cpp - Reproduce Table 3 -------------------------===//
//
// Table 3: execution times for the original version, the pure (3+1)D
// decomposition and the islands-of-cores approach, plus the partial
// speedup S_pr (islands vs (3+1)D) and overall speedup S_ov (islands vs
// original), for P = 1..14 processors.
//
// Headline shape: S_pr grows with P and exceeds 10x at P=14, while S_ov
// stays roughly constant (~2.7-3) — the islands approach preserves the
// (3+1)D cache gain at every machine size.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

int main() {
  std::printf("=== Table 3: strategy comparison on SGI UV 2000 "
              "(1024x512x64, 50 steps) ===\n");
  std::printf("paper values in parentheses; simulated seconds\n\n");

  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();

  TablePrinter Table({"#CPUs", "Original", "(3+1)D", "Islands", "S_pr",
                      "S_ov"});
  std::array<double, 14> Orig{}, Blocked{}, Isl{};
  for (int P = 1; P <= PaperMaxCpus; ++P) {
    Orig[P - 1] = simulatePaperRun(M, Uv, Strategy::Original, P).TotalSeconds;
    Blocked[P - 1] =
        simulatePaperRun(M, Uv, Strategy::Block31D, P).TotalSeconds;
    Isl[P - 1] =
        simulatePaperRun(M, Uv, Strategy::IslandsOfCores, P).TotalSeconds;
    double SPr = Blocked[P - 1] / Isl[P - 1];
    double SOv = Orig[P - 1] / Isl[P - 1];
    double PaperSPr = PaperBlock31D[P - 1] / PaperIslands[P - 1];
    double PaperSOv = PaperOriginalFirstTouch[P - 1] / PaperIslands[P - 1];
    Table.addRow(
        {formatString("%d", P),
         formatString("%5.2f (%5.2f)", Orig[P - 1],
                      PaperOriginalFirstTouch[P - 1]),
         formatString("%5.2f (%5.2f)", Blocked[P - 1], PaperBlock31D[P - 1]),
         formatString("%5.2f (%5.2f)", Isl[P - 1], PaperIslands[P - 1]),
         formatString("%5.2f (%5.2f)", SPr, PaperSPr),
         formatString("%5.2f (%5.2f)", SOv, PaperSOv)});
  }
  Table.print(outs());

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += shapeCheck(Isl[0] == Blocked[0],
                         "islands == (3+1)D at P=1 (same plan)");
  bool Monotone = true;
  for (int P = 2; P <= PaperMaxCpus; ++P)
    if (Isl[P - 1] >= Isl[P - 2])
      Monotone = false;
  Failures += shapeCheck(Monotone, "islands times fall monotonically in P");
  bool FastestEverywhere = true;
  for (int P = 2; P <= PaperMaxCpus; ++P)
    if (Isl[P - 1] >= Orig[P - 1] || Isl[P - 1] >= Blocked[P - 1])
      FastestEverywhere = false;
  Failures += shapeCheck(FastestEverywhere,
                         "islands fastest of the three for all P >= 2");
  double SPr14 = Blocked[13] / Isl[13];
  Failures += shapeCheck(SPr14 > 8.0,
                         "S_pr approaches the paper's >10x at P=14");
  double SOvMin = 1e9, SOvMax = 0.0;
  for (int P = 2; P <= PaperMaxCpus; ++P) {
    double SOv = Orig[P - 1] / Isl[P - 1];
    SOvMin = SOv < SOvMin ? SOv : SOvMin;
    SOvMax = SOv > SOvMax ? SOv : SOvMax;
  }
  Failures += shapeCheck(SOvMax / SOvMin < 1.5,
                         "S_ov roughly constant across P (within 1.5x)");

  // --- Barrier elision: the schedule optimizer's per-step savings -------
  // The optimizer clears provably redundant BarrierAfter bits; the
  // simulator charges only the barriers that remain. Machine-readable
  // rows for every (strategy, P) go to BENCH_table3.json so the perf
  // trajectory is tracked across PRs.
  std::printf("\nbarrier elision (schedule optimizer, team barriers per "
              "step):\n");
  TablePrinter ETable({"strategy", "#CPUs", "barriers", "elided",
                       "remaining", "seconds", "optimized"});
  std::vector<BenchJsonRow> JsonRows;
  int64_t Elided31D14 = 0, Total31D14 = 0;
  bool OptimizedNoSlower = true, EveryStrategyElides = true;
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    for (int P = 1; P <= PaperMaxCpus; ++P) {
      SimResult Plain = simulatePaperRun(M, Uv, Strat, P);
      ScheduleOptimizerReport Report;
      SimResult Opt = simulateOptimizedPaperRun(M, Uv, Strat, P, &Report);
      BenchJsonRow Row;
      Row.Strategy = strategyName(Strat);
      Row.P = P;
      Row.Seconds = Plain.TotalSeconds;
      Row.BarrierShare =
          Plain.CriticalIsland.total() > 0.0
              ? Plain.CriticalIsland.Barrier / Plain.CriticalIsland.total()
              : 0.0;
      Row.TotalBarriers = Report.TotalPasses;
      Row.ElidedBarriers = Report.ElidedBarriers;
      Row.OptimizedSeconds = Opt.TotalSeconds;
      JsonRows.push_back(Row);
      if (Opt.TotalSeconds > Plain.TotalSeconds + 1e-12)
        OptimizedNoSlower = false;
      if (P == PaperMaxCpus && Report.ElidedBarriers == 0)
        EveryStrategyElides = false;
      if (Strat == Strategy::Block31D && P == PaperMaxCpus) {
        Elided31D14 = Report.ElidedBarriers;
        Total31D14 = Report.TotalPasses;
      }
      if (P == 2 || P == PaperMaxCpus)
        ETable.addRow(
            {strategyName(Strat), formatString("%d", P),
             formatString("%lld", static_cast<long long>(Report.TotalPasses)),
             formatString("%lld",
                          static_cast<long long>(Report.ElidedBarriers)),
             formatString("%lld",
                          static_cast<long long>(Report.remainingBarriers())),
             formatString("%5.2f", Plain.TotalSeconds),
             formatString("%5.2f", Opt.TotalSeconds)});
    }
  }
  ETable.print(outs());
  std::printf("\nelision shape checks:\n");
  Failures += shapeCheck(
      Elided31D14 > 0 && Total31D14 > 0 &&
          static_cast<double>(Elided31D14) / static_cast<double>(Total31D14) >=
              0.3,
      "(3+1)D at P=14: at least 30% of per-step barriers elided");
  Failures += shapeCheck(EveryStrategyElides,
                         "every strategy elides some barriers at P=14");
  Failures += shapeCheck(OptimizedNoSlower,
                         "optimized schedules never slower in the model");
  writeBenchJson("table3", JsonRows);

  // Close the loop against the real executor: the barrier share the
  // simulator predicts for each strategy vs the share ExecStats measures
  // on this host (informational; host timings vary run to run).
  printBarrierShareModelCheck(M, /*Islands=*/2, /*Steps=*/5);

  return Failures == 0 ? 0 : 1;
}
