//===- bench/bench_cluster.cpp - Multi-node scaling (future work) ---------===//
//
// The paper's future work: "we plan to study the usage of MPI for
// extending the scalability of our approach for much larger system
// configurations". This bench scales the islands-of-cores approach across
// a cluster of UV 2000 IRUs with explicit per-step halo messages, for both
// the paper's grid and an 8x larger one.
//
// Expected shape: the paper's grid saturates quickly — 1D islands become
// slivers and the redundant cone work blows up (quantified in the last
// column), motivating the 2D decomposition the paper also defers to future
// work. The larger grid keeps scaling further.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "dist/ClusterSim.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

int main() {
  std::printf("=== Future work: cluster of UV 2000 nodes (MPI-style halo "
              "exchange) ===\n\n");

  MpdataProgram M = buildMpdataProgram();
  ClusterModel Cluster;
  Cluster.Node = makeSgiUv2000();

  int Failures = 0;
  for (const Box3 &Grid : {Box3::fromExtents(1024, 512, 64),
                           Box3::fromExtents(4096, 1024, 64)}) {
    std::printf("grid %dx%dx%d, 50 steps:\n", Grid.extent(0),
                Grid.extent(1), Grid.extent(2));
    TablePrinter Table({"nodes", "sockets", "time [s]", "Gflop/s",
                        "comm/step", "redundant work [%]"});
    double FirstGflops = 0.0;
    double PrevTime = 1e300;
    bool Monotone = true;
    int64_t UsefulFlops = 0;
    for (int Nodes : {1, 2, 4, 8, 16}) {
      Cluster.NumNodes = Nodes;
      ClusterSimResult R =
          simulateCluster(M.Program, Grid, Cluster, 14, PaperSteps);
      if (UsefulFlops == 0)
        UsefulFlops = R.FlopsPerStep; // Nodes=1 still has 14 islands.
      double Redundant =
          (static_cast<double>(R.FlopsPerStep) / UsefulFlops - 1.0) * 100.0;
      Table.addRow({formatString("%d", Nodes),
                    formatString("%d", Nodes * 14),
                    formatString("%.3f", R.TotalSeconds),
                    formatString("%.0f", R.sustainedGflops()),
                    formatSeconds(R.CommSecondsPerStep),
                    formatString("%.1f", Redundant)});
      if (FirstGflops == 0.0)
        FirstGflops = R.sustainedGflops();
      if (R.TotalSeconds > PrevTime)
        Monotone = false;
      PrevTime = R.TotalSeconds;
    }
    Table.print(outs());
    Failures += shapeCheck(Monotone, "time keeps falling as nodes grow");
    std::printf("\n");
  }

  // --- 1D vs 2D node grids at 16 nodes ---------------------------------
  std::printf("1D vs 2D node decomposition at 16 nodes (square "
              "1024x1024x64 grid):\n");
  Box3 Square = Box3::fromExtents(1024, 1024, 64);
  Cluster.NumNodes = 16;
  ClusterSimResult R1D =
      simulateCluster(M.Program, Square, Cluster, 14, PaperSteps);
  ClusterSimResult R2D =
      simulateCluster2D(M.Program, Square, Cluster, 4, 4, 14, PaperSteps);
  TablePrinter Grid2D({"decomposition", "time [s]", "Gflop/s",
                       "flops/step (redundancy included)"});
  Grid2D.addRow({"16x1 (1D slabs)", formatString("%.3f", R1D.TotalSeconds),
                 formatString("%.0f", R1D.sustainedGflops()),
                 formatString("%.2fe9", R1D.FlopsPerStep / 1e9)});
  Grid2D.addRow({"4x4 (2D grid)", formatString("%.3f", R2D.TotalSeconds),
                 formatString("%.0f", R2D.sustainedGflops()),
                 formatString("%.2fe9", R2D.FlopsPerStep / 1e9)});
  Grid2D.print(outs());
  Failures += shapeCheck(R2D.TotalSeconds < R1D.TotalSeconds,
                         "2D node grid beats 1D slabs at 16 nodes "
                         "(the sliver fix)");
  return Failures == 0 ? 0 : 1;
}
