//===- bench/BenchUtil.h - Shared benchmark-harness helpers -----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table-reproduction benchmarks: the paper's
/// published numbers (for side-by-side printing), a one-call wrapper that
/// plans and simulates a strategy on the UV 2000 model, and shape checks
/// that flag regressions in the reproduced trends.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_BENCH_BENCHUTIL_H
#define ICORES_BENCH_BENCHUTIL_H

#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/Simulator.h"

#include <array>

namespace icores {
namespace bench {

/// The paper's benchmark configuration: grid 1024x512x64, 50 time steps.
inline constexpr int PaperNI = 1024;
inline constexpr int PaperNJ = 512;
inline constexpr int PaperNK = 64;
inline constexpr int PaperSteps = 50;
inline constexpr int PaperMaxCpus = 14;

/// Published numbers, indexed by P-1 (Tables 1, 3 and 4 of the paper).
extern const std::array<double, 14> PaperOriginalSerialInit;
extern const std::array<double, 14> PaperOriginalFirstTouch;
extern const std::array<double, 14> PaperBlock31D;
extern const std::array<double, 14> PaperIslands;
extern const std::array<double, 14> PaperExtraVariantA; // Table 2, percent.
extern const std::array<double, 14> PaperExtraVariantB;
extern const std::array<double, 14> PaperSustainedGflops; // Table 4 (P=13
                                                          // interpolated).

/// One-call wrapper: builds the plan for (Strat, Sockets, Placement) on
/// the paper's grid and simulates 50 steps on the UV 2000 model.
SimResult simulatePaperRun(const MpdataProgram &M, const MachineModel &Uv,
                           Strategy Strat, int Sockets,
                           PagePlacement Placement =
                               PagePlacement::FirstTouch,
                           PartitionVariant Variant = PartitionVariant::A);

/// Prints a "shape check" verdict line: PASS/FAIL with a description.
/// Returns 0 for pass, 1 for fail (accumulate into main's exit code).
int shapeCheck(bool Ok, const char *Description);

} // namespace bench
} // namespace icores

#endif // ICORES_BENCH_BENCHUTIL_H
