//===- bench/BenchUtil.h - Shared benchmark-harness helpers -----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table-reproduction benchmarks: the paper's
/// published numbers (for side-by-side printing), a one-call wrapper that
/// plans and simulates a strategy on the UV 2000 model, and shape checks
/// that flag regressions in the reproduced trends.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_BENCH_BENCHUTIL_H
#define ICORES_BENCH_BENCHUTIL_H

#include "core/PlanBuilder.h"
#include "core/ScheduleOptimizer.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/ModelCompare.h"
#include "sim/Simulator.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace icores {
namespace bench {

/// The paper's benchmark configuration: grid 1024x512x64, 50 time steps.
inline constexpr int PaperNI = 1024;
inline constexpr int PaperNJ = 512;
inline constexpr int PaperNK = 64;
inline constexpr int PaperSteps = 50;
inline constexpr int PaperMaxCpus = 14;

/// Published numbers, indexed by P-1 (Tables 1, 3 and 4 of the paper).
extern const std::array<double, 14> PaperOriginalSerialInit;
extern const std::array<double, 14> PaperOriginalFirstTouch;
extern const std::array<double, 14> PaperBlock31D;
extern const std::array<double, 14> PaperIslands;
extern const std::array<double, 14> PaperExtraVariantA; // Table 2, percent.
extern const std::array<double, 14> PaperExtraVariantB;
extern const std::array<double, 14> PaperSustainedGflops; // Table 4 (P=13
                                                          // interpolated).

/// One-call wrapper: builds the plan for (Strat, Sockets, Placement) on
/// the paper's grid and simulates 50 steps on the UV 2000 model.
SimResult simulatePaperRun(const MpdataProgram &M, const MachineModel &Uv,
                           Strategy Strat, int Sockets,
                           PagePlacement Placement =
                               PagePlacement::FirstTouch,
                           PartitionVariant Variant = PartitionVariant::A);

/// simulatePaperRun() with the barrier-elision optimizer applied to the
/// plan first. The optimizer's report (total/elided barrier counts) is
/// returned through \p Report when non-null.
SimResult simulateOptimizedPaperRun(
    const MpdataProgram &M, const MachineModel &Uv, Strategy Strat,
    int Sockets, ScheduleOptimizerReport *Report = nullptr);

/// Prints a "shape check" verdict line: PASS/FAIL with a description.
/// Returns 0 for pass, 1 for fail (accumulate into main's exit code).
int shapeCheck(bool Ok, const char *Description);

/// One row of a machine-readable bench record (schema icores.bench.v1),
/// written so the perf trajectory can be tracked across PRs.
struct BenchJsonRow {
  std::string Strategy;
  int P = 0;
  double Seconds = 0.0;      ///< Simulated seconds for the paper run.
  double BarrierShare = 0.0; ///< Predicted critical-island barrier share.
  int64_t TotalBarriers = 0; ///< Per-step team barriers before elision.
  int64_t ElidedBarriers = 0; ///< Per-step barriers the optimizer removed.
  double OptimizedSeconds = 0.0; ///< Same run under the optimized plan.
  double Gflops = 0.0; ///< Sustained Gflop/s (0 when not tracked).
};

/// Writes BENCH_<name>.json into the directory named by $ICORES_BENCH_DIR
/// (default: the current directory). Returns the path written, or "" when
/// the file could not be created.
std::string writeBenchJson(const std::string &BenchName,
                           const std::vector<BenchJsonRow> &Rows);

/// One row of the per-stage kernel-roofline record (the second row shape
/// of schema icores.bench.v1, distinguished by the "variant" field; see
/// bench/validate_bench_json.py). Stage "all" rows carry the aggregate
/// over a full 17-stage sweep.
struct KernelBenchJsonRow {
  std::string Variant; ///< "ref", "opt" or "simd".
  std::string Stage;   ///< IR stage name, or "all" for the aggregate.
  std::string Region;  ///< "hot" (cache-resident) or "cold" (streaming).
  double Seconds = 0.0; ///< Best-of-reps seconds for one sweep.
  double Gflops = 0.0;  ///< IR flops / Seconds / 1e9.
  double GBps = 0.0;    ///< Logical (unpadded) IR bytes / Seconds / 1e9.
};

/// writeBenchJson() for kernel-roofline rows.
std::string
writeKernelBenchJson(const std::string &BenchName,
                     const std::vector<KernelBenchJsonRow> &Rows);

/// One row of the temporal-blocking traffic record (schema
/// icores.bench.v2): per (strategy, temporal depth), the DRAM traffic per
/// time step between the islands and shared memory — once measured by the
/// real executor's transfer accounting, once projected by the simulator
/// from the plan alone — plus the measured wall time of the run.
struct TemporalBenchJsonRow {
  std::string Strategy;        ///< strategyName() of the plan.
  int TemporalDepth = 1;       ///< Fused steps per epoch (T).
  int64_t MeasuredBytesPerStep = 0;  ///< Executor sharedBytesPerStep().
  int64_t ProjectedBytesPerStep = 0; ///< Simulator projection.
  double Seconds = 0.0;        ///< Measured wall seconds for the run.
  std::string Workload = "mpdata"; ///< Registered workload name.
};

/// writeBenchJson() for temporal-blocking rows (schema icores.bench.v2).
std::string
writeTemporalBenchJson(const std::string &BenchName,
                       const std::vector<TemporalBenchJsonRow> &Rows);

/// One row of the NUMA-placement study (schema icores.bench.v2,
/// distinguished from the temporal rows by the "placement" field): per
/// (strategy, temporal depth, placement policy), the remote-socket DRAM
/// traffic per time step — once from the executor's placement map (the
/// "measured" side: the estimate armed in the real run, validated by the
/// placed() invariant), once from the simulator's projection — plus the
/// first-touch page count, pin failures, and wall time.
struct NumaBenchJsonRow {
  std::string Strategy;         ///< strategyName() of the plan.
  int TemporalDepth = 1;        ///< Fused steps per epoch (T).
  std::string Placement;        ///< placementPolicyName() of the policy.
  int64_t RemoteBytesPerStep = 0; ///< Executor remoteBytesPerStep().
  int64_t ProjectedRemoteBytesPerStep = 0; ///< Simulator projection.
  int64_t PagesFirstTouched = 0; ///< Pages zeroed by the init epoch.
  int64_t PinFailures = 0;       ///< sched_setaffinity rejections.
  double Seconds = 0.0;          ///< Measured wall seconds for the run.
  std::string Workload = "mpdata"; ///< Registered workload name.
};

/// writeBenchJson() for NUMA-placement rows (schema icores.bench.v2).
std::string writeNumaBenchJson(const std::string &BenchName,
                               const std::vector<NumaBenchJsonRow> &Rows);

/// One row of the load-balance study (schema icores.bench.v2,
/// distinguished from the other v2 rows by the "balance" field): per
/// (balance policy, stealing flag, temporal depth), the predicted island
/// skew — from the simulator and from the executor, equal by
/// construction (core/BalanceModel.h) — the measured skew and per-team
/// imbalance, the steal counters, and the wall time.
struct BalanceBenchJsonRow {
  std::string Balance;     ///< balancePolicyName() of the plan.
  bool Stealing = false;   ///< Work-stealing block scheduler armed.
  int TemporalDepth = 1;   ///< Fused steps per epoch (T).
  int Islands = 0;         ///< Island count of the plan.
  double PredictedSkewSim = 1.0;  ///< Simulator predictedIslandSkew().
  double PredictedSkewExec = 1.0; ///< Executor's ExecStats copy.
  double MeasuredSkew = 1.0;      ///< ExecStats measuredIslandSkew().
  double MaxImbalance = 1.0; ///< Max per-island team imbalance().
  int64_t Steals = 0;        ///< Chunks claimed from teammates.
  int64_t StealFailures = 0; ///< Lost steal races.
  double IdleSeconds = 0.0;  ///< Out-of-work seconds, all threads.
  double Seconds = 0.0;      ///< Measured wall seconds for the run.
  std::string Workload = "mpdata"; ///< Registered workload name.
};

/// writeBenchJson() for load-balance rows (schema icores.bench.v2).
std::string
writeBalanceBenchJson(const std::string &BenchName,
                      const std::vector<BalanceBenchJsonRow> &Rows);

/// Aggregate timings measured by running the real threaded executor with
/// profiling enabled (exec/ExecStats) on this host.
struct MeasuredProfile {
  double KernelSeconds = 0.0;
  double TeamBarrierWaitSeconds = 0.0;
  double WallSeconds = 0.0;
  int64_t ThreadsSpawned = 0;
  int64_t RunCalls = 0;
  int64_t ElidedBarriers = 0; ///< Team-level elided pass barriers.
  int64_t SpinWakes = 0;
  int64_t SleepWakes = 0;
};

/// Plans (Strat, Islands) on a toy host-sized machine over a small
/// NIxNJxNK grid, runs \p Steps real threaded steps with profiling on,
/// and returns the measured aggregates. The same plan simulated on the
/// same toy machine gives the predicted side for compareBarrierShare().
/// With \p Optimize set, the plan is barrier-elision optimized first.
MeasuredProfile measureHostRun(const MpdataProgram &M, Strategy Strat,
                               int Islands, int NI, int NJ, int NK,
                               int Steps, bool Optimize = false);

/// Simulates the same toy-machine configuration measureHostRun() ran,
/// returning the predicted per-step breakdown of the critical island.
SimResult simulateHostRun(const MpdataProgram &M, Strategy Strat,
                          int Islands, int NI, int NJ, int NK, int Steps,
                          bool Optimize = false);

/// Prints the predicted-vs-measured barrier-share table for the three
/// strategies on a small host grid — each both stock and barrier-elision
/// optimized ("+elide" rows) — so the sim-vs-measured comparison covers
/// the optimized schedules too. The "model error" column quantifies sim/
/// drift against the real executor. Purely informational (host timings
/// are noisy); returns the number of rows printed.
int printBarrierShareModelCheck(const MpdataProgram &M, int Islands,
                                int Steps);

} // namespace bench
} // namespace icores

#endif // ICORES_BENCH_BENCHUTIL_H
