//===- bench/bench_traffic.cpp - Reproduce the Sect. 3.2 traffic study ----===//
//
// Sect. 3.2 of the paper: on a single Intel Xeon E5-2660v2 with the
// 256x256x64 grid and 50 time steps, the (3+1)D decomposition reduces the
// main-memory traffic from 133 GB to 30 GB (measured with likwid-perfctr)
// and accelerates the computation about 2.8x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Format.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

int main() {
  std::printf("=== Sect. 3.2: DRAM traffic study (E5-2660v2, 256x256x64, "
              "50 steps) ===\n\n");

  MpdataProgram M = buildMpdataProgram();
  MachineModel Xeon = makeXeonE5_2660v2();
  Box3 Grid = Box3::fromExtents(256, 256, 64);

  auto runCase = [&](Strategy Strat) {
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = 1;
    ExecutionPlan Plan = buildPlan(M.Program, Grid, Xeon, Config);
    return simulate(Plan, M.Program, Xeon, 50);
  };

  SimResult Orig = runCase(Strategy::Original);
  SimResult Blocked = runCase(Strategy::Block31D);

  double OrigGB = static_cast<double>(Orig.totalDramBytes()) / 1e9;
  double BlockedGB = static_cast<double>(Blocked.totalDramBytes()) / 1e9;
  double Speedup = Orig.TotalSeconds / Blocked.TotalSeconds;

  std::printf("main-memory traffic, original:  %6.1f GB  (paper: 133 GB)\n",
              OrigGB);
  std::printf("main-memory traffic, (3+1)D:    %6.1f GB  (paper:  30 GB)\n",
              BlockedGB);
  std::printf("traffic reduction:              %6.2fx (paper: ~4.4x)\n",
              OrigGB / BlockedGB);
  std::printf("execution time, original:       %6.2f s\n", Orig.TotalSeconds);
  std::printf("execution time, (3+1)D:         %6.2f s\n",
              Blocked.TotalSeconds);
  std::printf("speedup:                        %6.2fx (paper: ~2.8x)\n\n",
              Speedup);

  std::printf("per-step breakdown (original):  compute %s, dram %s\n",
              formatSeconds(Orig.CriticalIsland.Compute).c_str(),
              formatSeconds(Orig.CriticalIsland.Dram).c_str());
  std::printf("per-step breakdown ((3+1)D):    compute %s, dram %s, "
              "barrier %s\n\n",
              formatSeconds(Blocked.CriticalIsland.Compute).c_str(),
              formatSeconds(Blocked.CriticalIsland.Dram).c_str(),
              formatSeconds(Blocked.CriticalIsland.Barrier).c_str());

  std::printf("shape checks:\n");
  int Failures = 0;
  Failures += shapeCheck(OrigGB > 100.0 && OrigGB < 170.0,
                         "original traffic in the paper's ~133 GB range");
  Failures += shapeCheck(BlockedGB > 15.0 && BlockedGB < 45.0,
                         "(3+1)D traffic in the paper's ~30 GB range");
  Failures += shapeCheck(Speedup > 2.0 && Speedup < 4.0,
                         "speedup near the paper's ~2.8x");
  Failures += shapeCheck(Orig.CriticalIsland.Dram >
                             Orig.CriticalIsland.Compute,
                         "original is memory-bound");
  Failures += shapeCheck(Blocked.CriticalIsland.Compute >
                             Blocked.CriticalIsland.Dram,
                         "(3+1)D is compute-bound");
  return Failures == 0 ? 0 : 1;
}
