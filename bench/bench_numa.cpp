//===- bench/bench_numa.cpp - NUMA data-placement study -------------------===//
//
// Quantifies what page placement buys on a NUMA machine: with per-island
// first-touch arenas each island streams its partition from the local
// socket and only the halo margins cross the interconnect; with OS page
// interleaving (or a serial init that homes everything on node 0) a fixed
// fraction of every stream is remote. The paper's Table 1 measures this
// as the serial-init vs parallel-init gap on the UV 2000.
//
// For each strategy, temporal depth and placement policy the bench runs
// the real threaded executor with the placement init epoch armed (workers
// pinned best-effort; rejections are counted, never fatal), records the
// executor's remote-traffic estimate from its placement map, and compares
// it against the simulator's projection for the same plan. Results land
// in BENCH_numa.json (schema icores.bench.v2, "placement" rows; see
// bench/validate_bench_json.py).
//
// Shape checks:
//   - every policy stays bit-identical to the serial-init (none) run,
//   - executor estimate == simulator projection (parity by construction:
//     both sides price the same placement map),
//   - first-touch arenas cross the interconnect less than interleaved
//     pages, and the measured vs projected first-touch-vs-interleave
//     delta agrees within 15%,
//   - on a single-node plan every policy projects exactly zero remote
//     bytes (the graceful fallback).
//
// `--quick` restricts the matrix to islands T=1 (plus the single-node
// fallback) for CI smoke runs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exec/Affinity.h"
#include "exec/PlanExecutor.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace icores;
using namespace icores::bench;

namespace {

// Same host-sized grid as bench_temporal: large enough that the island
// partitions dominate the halo margins, small enough for CI.
constexpr int NI = 64, NJ = 48, NK = 48;
constexpr int Steps = 8;
constexpr int Islands = 2;

struct RunResult {
  Array3D State;
  int64_t RemoteBytesPerStep = 0;
  int64_t PagesFirstTouched = 0;
  int64_t PinFailures = 0;
  double Seconds = 0.0;
};

ExecutionPlan makePlan(const MpdataProgram &M, Strategy Strat, int Depth,
                       PlacementPolicy Place, int NumIslands,
                       MachineModel &Host) {
  Host = makeToyMachine();
  Host.NumSockets = NumIslands;
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = NumIslands;
  Config.TemporalDepth = Depth;
  Config.Placement = Place;
  ExecutionPlan Plan =
      buildPlan(M.Program, Box3::fromExtents(NI, NJ, NK), Host, Config);
  optimizeBarriers(M.Program, Plan);
  return Plan;
}

RunResult runOnce(const MpdataProgram &M, Strategy Strat, int Depth,
                  PlacementPolicy Place, int NumIslands) {
  Domain Dom(NI, NJ, NK, mpdataHaloDepth());
  MachineModel Host;
  ExecutionPlan Plan = makePlan(M, Strat, Depth, Place, NumIslands, Host);
  ExecutorOptions Opts;
  Opts.Placement = Place;
  if (Place != PlacementPolicy::None)
    Opts.Pinning = computeThreadPlacement(Plan, Host);
  PlanExecutor Exec(Dom, std::move(Plan), KernelVariant::Reference, Opts);
  fillRandomPositive(Exec.stateIn(), Dom, 42, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Dom, 0.25, -0.2, 0.15);
  Exec.prepareCoefficients();
  auto Begin = std::chrono::steady_clock::now();
  Exec.run(Steps);
  auto End = std::chrono::steady_clock::now();

  RunResult R;
  R.State = Exec.state();
  R.RemoteBytesPerStep = Exec.executor().remoteBytesPerStep();
  R.PagesFirstTouched = Exec.stats().PagesFirstTouched;
  R.PinFailures = Exec.stats().PinFailures;
  R.Seconds = std::chrono::duration<double>(End - Begin).count();
  return R;
}

int64_t projectOnce(const MpdataProgram &M, Strategy Strat, int Depth,
                    PlacementPolicy Place, int NumIslands) {
  MachineModel Host;
  ExecutionPlan Plan = makePlan(M, Strat, Depth, Place, NumIslands, Host);
  return simulate(Plan, M.Program, Host, Steps).PlacementRemoteBytesPerStep;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
  std::printf("NUMA placement: remote DRAM traffic per step, executor vs "
              "simulator (%dx%dx%d, %d steps, %d islands%s)\n\n",
              NI, NJ, NK, Steps, Islands, Quick ? ", quick" : "");
  MpdataProgram M = buildMpdataProgram();

  const std::pair<const char *, Strategy> AllStrategies[] = {
      {"31d", Strategy::Block31D},
      {"islands", Strategy::IslandsOfCores}};
  const PlacementPolicy Policies[] = {PlacementPolicy::None,
                                      PlacementPolicy::FirstTouch,
                                      PlacementPolicy::Interleave};

  TablePrinter Table({"strategy", "T", "placement", "remote/step",
                      "projected", "pages", "bit-exact"});
  std::vector<NumaBenchJsonRow> Rows;
  int Failures = 0;
  for (const auto &S : AllStrategies) {
    if (Quick && S.second != Strategy::IslandsOfCores)
      continue;
    for (int Depth : {1, 2}) {
      if (Quick && Depth != 1)
        continue;
      RunResult Baseline;
      int64_t RemoteByPolicy[3] = {0, 0, 0};
      for (size_t P = 0; P != 3; ++P) {
        PlacementPolicy Place = Policies[P];
        RunResult R = runOnce(M, S.second, Depth, Place, Islands);
        int64_t Projected =
            projectOnce(M, S.second, Depth, Place, Islands);
        RemoteByPolicy[P] = R.RemoteBytesPerStep;
        bool Exact = true;
        if (Place == PlacementPolicy::None)
          Baseline = R;
        else
          Exact = R.State.maxAbsDiff(Baseline.State,
                                     Box3::fromExtents(NI, NJ, NK)) == 0.0;
        Table.addRow(
            {S.first, formatString("%d", Depth),
             placementPolicyName(Place),
             formatBytes(static_cast<uint64_t>(R.RemoteBytesPerStep)),
             formatBytes(static_cast<uint64_t>(Projected)),
             formatString("%lld",
                          static_cast<long long>(R.PagesFirstTouched)),
             Exact ? "yes" : "NO"});
        Rows.push_back({strategyName(S.second), Depth,
                        placementPolicyName(Place), R.RemoteBytesPerStep,
                        Projected, R.PagesFirstTouched, R.PinFailures,
                        R.Seconds});
        Failures += shapeCheck(
            Exact,
            formatString("%s T=%d %s bit-identical to serial init",
                         S.first, Depth, placementPolicyName(Place))
                .c_str());
        Failures += shapeCheck(
            R.RemoteBytesPerStep == Projected,
            formatString("%s T=%d %s executor estimate matches simulator "
                         "projection exactly",
                         S.first, Depth, placementPolicyName(Place))
                .c_str());
      }
      // First-touch arenas only cross the interconnect on the halo
      // margins; interleaved pages put 1 - 1/S of every stream remote.
      Failures += shapeCheck(
          RemoteByPolicy[1] < RemoteByPolicy[2],
          formatString("%s T=%d first-touch moves less remote traffic "
                       "than interleave (%s < %s)",
                       S.first, Depth,
                       formatBytes(static_cast<uint64_t>(RemoteByPolicy[1]))
                           .c_str(),
                       formatBytes(static_cast<uint64_t>(RemoteByPolicy[2]))
                           .c_str())
              .c_str());
      int64_t MeasuredDelta = RemoteByPolicy[2] - RemoteByPolicy[1];
      int64_t ProjectedDelta =
          projectOnce(M, S.second, Depth, PlacementPolicy::Interleave,
                      Islands) -
          projectOnce(M, S.second, Depth, PlacementPolicy::FirstTouch,
                      Islands);
      double DeltaErr =
          MeasuredDelta == 0
              ? (ProjectedDelta == 0 ? 0.0 : 1.0)
              : std::abs(static_cast<double>(ProjectedDelta) -
                         static_cast<double>(MeasuredDelta)) /
                    static_cast<double>(MeasuredDelta);
      Failures += shapeCheck(
          DeltaErr <= 0.15,
          formatString("%s T=%d projected first-touch-vs-interleave delta "
                       "within 15%% of measured (err %.1f%%)",
                       S.first, Depth, DeltaErr * 100.0)
              .c_str());
    }
  }

  // Single-node fallback: with one island there is no remote socket, so
  // every policy must degrade to exactly zero remote bytes — on the
  // executor and the simulator alike.
  for (PlacementPolicy Place : Policies) {
    RunResult R =
        runOnce(M, Strategy::IslandsOfCores, 1, Place, /*NumIslands=*/1);
    int64_t Projected =
        projectOnce(M, Strategy::IslandsOfCores, 1, Place, 1);
    Rows.push_back({strategyName(Strategy::IslandsOfCores), 1,
                    placementPolicyName(Place), R.RemoteBytesPerStep,
                    Projected, R.PagesFirstTouched, R.PinFailures,
                    R.Seconds});
    Failures += shapeCheck(
        R.RemoteBytesPerStep == 0 && Projected == 0,
        formatString("single-node fallback: %s remote bytes exactly zero",
                     placementPolicyName(Place))
            .c_str());
  }

  std::printf("\n");
  Table.print(outs());
  writeNumaBenchJson("numa", Rows);
  return Failures == 0 ? 0 : 1;
}
