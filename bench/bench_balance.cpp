//===- bench/bench_balance.cpp - Cost-balanced partitioning study ---------===//
//
// Quantifies what cost-balanced island cuts and the work-stealing block
// scheduler buy on a skewed plan. Under temporal blocking the interior
// islands' dependence cones widen on *both* sides while the boundary
// islands widen on one, so equal-extent (uniform) cuts hand the interior
// islands strictly more redundant work — and the one-barrier-per-step
// structure means the slowest island gates every step. Cost balancing
// (core/BalanceModel.h) shrinks the interior slabs until predicted
// per-island seconds equalize; stealing then smooths the residual
// intra-island imbalance at run time.
//
// For each (balance policy, stealing, temporal depth) the bench runs the
// real threaded executor with profiling on, records the measured island
// skew (max island kernel seconds / mean) and the per-team imbalance, and
// compares the executor's predicted skew against the simulator's — equal
// by construction, since both call the same predictedIslandSkew().
// Results land in BENCH_balance.json (schema icores.bench.v2, "balance"
// rows; see bench/validate_bench_json.py).
//
// Shape checks:
//   - every configuration stays bit-identical to the uniform/static run,
//   - executor predicted skew == simulator predicted skew (exact),
//   - the cost-balanced plan passes the plan verifier (cuts tile the
//     domain, every island keeps the minimum extent),
//   - cost cuts predict strictly less island skew than uniform cuts on
//     the skewed (T>1) configurations,
//   - cost cuts + stealing *measure* less island skew than uniform/static
//     on the T=4 configuration (the paper-motivating case). Measured
//     skew is wall-clock-based, so this check is hard only when the host
//     has at least as many hardware threads as the plan spawns; on an
//     oversubscribed host (CI containers are often 1-2 vCPUs) the
//     kernel timings measure OS scheduling, not work, and the line is
//     reported informationally instead. Each configuration accumulates
//     kernel seconds over several repetitions to damp the residual noise.
//
// Wall-clock is recorded in the JSON and the table but not shape-checked:
// CI hosts are too noisy for a hard latency assertion.
//
// `--quick` restricts the matrix to T=4 uniform/static vs cost/steal for
// CI smoke runs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/BalanceModel.h"
#include "core/PlanVerifier.h"
#include "exec/PlanExecutor.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

using namespace icores;
using namespace icores::bench;

namespace {

// Many islands along i and a deep epoch: the interior cones' redundant
// work is what the uniform cuts mis-assign.
constexpr int NI = 96, NJ = 32, NK = 16;
constexpr int Steps = 8;
constexpr int Islands = 4;

struct RunResult {
  Array3D State; ///< State after the first Steps steps (rep 1).
  double PredictedSkewExec = 1.0;
  double MeasuredSkew = 1.0;
  double MaxImbalance = 1.0;
  int64_t Steals = 0;
  int64_t StealFailures = 0;
  double IdleSeconds = 0.0;
  double Seconds = 0.0; ///< Wall seconds of the first repetition.
  size_t Threads = 0;   ///< Worker threads the plan spawned.
};

ExecutionPlan makePlan(const MpdataProgram &M, BalancePolicy Balance,
                       int Depth, int NumIslands, MachineModel &Host) {
  Host = makeToyMachine();
  Host.NumSockets = NumIslands;
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = NumIslands;
  Config.TemporalDepth = Depth;
  Config.Balance = Balance;
  ExecutionPlan Plan =
      buildPlan(M.Program, Box3::fromExtents(NI, NJ, NK), Host, Config);
  optimizeBarriers(M.Program, Plan);
  return Plan;
}

RunResult runOnce(const MpdataProgram &M, BalancePolicy Balance, bool Steal,
                  int Depth, int NumIslands, int Reps) {
  Domain Dom(NI, NJ, NK, mpdataHaloDepth());
  MachineModel Host;
  ExecutionPlan Plan = makePlan(M, Balance, Depth, NumIslands, Host);
  ExecutorOptions Opts;
  Opts.Stealing = Steal;
  Opts.Machine = &Host;
  PlanExecutor Exec(Dom, std::move(Plan), KernelVariant::Reference, Opts);
  Exec.enableProfiling(true);
  fillRandomPositive(Exec.stateIn(), Dom, 42, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Dom, 0.25, -0.2, 0.15);
  Exec.prepareCoefficients();
  auto Begin = std::chrono::steady_clock::now();
  Exec.run(Steps);
  auto End = std::chrono::steady_clock::now();

  RunResult R;
  R.State = Exec.state();
  R.Seconds = std::chrono::duration<double>(End - Begin).count();
  // Extra repetitions keep evolving the state (still deterministic) while
  // the profile accumulates, so the skew is measured over Reps * Steps
  // steps instead of one noisy sample.
  for (int Rep = 1; Rep < Reps; ++Rep)
    Exec.run(Steps);

  const ExecStats &Stats = Exec.stats();
  R.PredictedSkewExec = Stats.PredictedIslandSkew;
  R.MeasuredSkew = Stats.measuredIslandSkew();
  for (const IslandStat &Island : Stats.Islands) {
    R.MaxImbalance = std::max(R.MaxImbalance, Island.imbalance());
    R.Threads += static_cast<size_t>(Island.NumThreads);
  }
  R.Steals = Stats.steals();
  R.StealFailures = Stats.stealFailures();
  R.IdleSeconds = Stats.idleSeconds();
  return R;
}

double simSkew(const MpdataProgram &M, BalancePolicy Balance, int Depth,
               int NumIslands) {
  MachineModel Host;
  ExecutionPlan Plan = makePlan(M, Balance, Depth, NumIslands, Host);
  return simulate(Plan, M.Program, Host, Steps).PredictedIslandSkew;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
  std::printf("load balance: island skew under uniform vs cost-balanced "
              "cuts, static vs stealing (%dx%dx%d, %d steps, %d "
              "islands%s)\n\n",
              NI, NJ, NK, Steps, Islands, Quick ? ", quick" : "");
  MpdataProgram M = buildMpdataProgram();

  struct Cell {
    BalancePolicy Balance;
    bool Steal;
  };
  const Cell FullMatrix[] = {{BalancePolicy::Uniform, false},
                             {BalancePolicy::Uniform, true},
                             {BalancePolicy::Cost, false},
                             {BalancePolicy::Cost, true}};
  const Cell QuickMatrix[] = {{BalancePolicy::Uniform, false},
                              {BalancePolicy::Cost, true}};

  TablePrinter Table({"balance", "steal", "T", "pred skew", "meas skew",
                      "max imbal", "steals", "seconds", "bit-exact"});
  std::vector<BalanceBenchJsonRow> Rows;
  int Failures = 0;
  for (int Depth : {2, 4}) {
    if (Quick && Depth != 4)
      continue;
    // The cost-balanced plan must still tile the domain exactly.
    {
      MachineModel Host;
      ExecutionPlan CostPlan =
          makePlan(M, BalancePolicy::Cost, Depth, Islands, Host);
      PlanVerification V = verifyPlan(CostPlan, M.Program);
      Failures += shapeCheck(
          V.Ok, formatString("T=%d cost-balanced plan passes the verifier "
                             "(cuts tile, min extent)%s%s",
                             Depth, V.Ok ? "" : ": ",
                             V.Ok ? "" : V.FirstError.c_str())
                    .c_str());
    }

    RunResult Baseline;
    RunResult ByCell[4];
    size_t NumCells = Quick ? 2 : 4;
    const Cell *Matrix = Quick ? QuickMatrix : FullMatrix;
    for (size_t C = 0; C != NumCells; ++C) {
      const Cell &Cfg = Matrix[C];
      RunResult R =
          runOnce(M, Cfg.Balance, Cfg.Steal, Depth, Islands, Quick ? 2 : 3);
      double SkewSim = simSkew(M, Cfg.Balance, Depth, Islands);
      bool Exact = true;
      if (C == 0)
        Baseline = R;
      else
        Exact = R.State.maxAbsDiff(Baseline.State,
                                   Box3::fromExtents(NI, NJ, NK)) == 0.0;
      ByCell[C] = R;
      Table.addRow({balancePolicyName(Cfg.Balance),
                    Cfg.Steal ? "yes" : "no", formatString("%d", Depth),
                    formatString("%.4f", R.PredictedSkewExec),
                    formatString("%.4f", R.MeasuredSkew),
                    formatString("%.4f", R.MaxImbalance),
                    formatString("%lld", static_cast<long long>(R.Steals)),
                    formatString("%.3f", R.Seconds),
                    Exact ? "yes" : "NO"});
      Rows.push_back({balancePolicyName(Cfg.Balance), Cfg.Steal, Depth,
                      Islands, SkewSim, R.PredictedSkewExec, R.MeasuredSkew,
                      R.MaxImbalance, R.Steals, R.StealFailures,
                      R.IdleSeconds, R.Seconds});
      Failures += shapeCheck(
          Exact, formatString("%s%s T=%d bit-identical to uniform/static",
                              balancePolicyName(Cfg.Balance),
                              Cfg.Steal ? "+steal" : "", Depth)
                     .c_str());
      Failures += shapeCheck(
          R.PredictedSkewExec == SkewSim,
          formatString("%s%s T=%d executor predicted skew matches "
                       "simulator exactly (%.6f)",
                       balancePolicyName(Cfg.Balance),
                       Cfg.Steal ? "+steal" : "", Depth, SkewSim)
              .c_str());
    }
    // Uniform cuts mis-assign the interior cones; cost cuts must predict
    // strictly less skew, and must measure less on the real run.
    const RunResult &Uniform = ByCell[0];
    const RunResult &CostSteal = ByCell[NumCells - 1];
    Failures += shapeCheck(
        CostSteal.PredictedSkewExec < Uniform.PredictedSkewExec,
        formatString("T=%d cost cuts predict less island skew than "
                     "uniform (%.4f < %.4f)",
                     Depth, CostSteal.PredictedSkewExec,
                     Uniform.PredictedSkewExec)
            .c_str());
    // Measured skew is wall-clock-based: only a hard check when the host
    // can actually run the team in parallel. Oversubscribed (CI) hosts
    // measure OS scheduling, not work, so the line turns informational.
    if (Depth == 4) {
      bool Parallel =
          std::thread::hardware_concurrency() >= Uniform.Threads;
      if (Parallel)
        Failures += shapeCheck(
            CostSteal.MeasuredSkew < Uniform.MeasuredSkew,
            formatString("T=%d cost+steal measures less island skew than "
                         "uniform/static (%.4f < %.4f)",
                         Depth, CostSteal.MeasuredSkew,
                         Uniform.MeasuredSkew)
                .c_str());
      else
        std::printf("  [info] T=%d cost+steal measured skew %.4f vs "
                    "uniform/static %.4f (host has %u hardware threads "
                    "for %zu workers; not checked)\n",
                    Depth, CostSteal.MeasuredSkew, Uniform.MeasuredSkew,
                    std::thread::hardware_concurrency(), Uniform.Threads);
    }
  }

  // Single-island fallback: nothing to balance, skew pinned to 1.0 on
  // both the simulator and the executor.
  {
    RunResult R = runOnce(M, BalancePolicy::Cost, /*Steal=*/true,
                          /*Depth=*/1, /*NumIslands=*/1, /*Reps=*/1);
    double SkewSim = simSkew(M, BalancePolicy::Cost, 1, 1);
    Rows.push_back({balancePolicyName(BalancePolicy::Cost), true, 1, 1,
                    SkewSim, R.PredictedSkewExec, R.MeasuredSkew,
                    R.MaxImbalance, R.Steals, R.StealFailures,
                    R.IdleSeconds, R.Seconds});
    Failures += shapeCheck(
        SkewSim == 1.0 && R.PredictedSkewExec == 1.0 &&
            R.MeasuredSkew == 1.0,
        "single-island fallback: predicted and measured skew exactly 1.0");
  }

  std::printf("\n");
  Table.print(outs());
  writeBalanceBenchJson("balance", Rows);
  return Failures == 0 ? 0 : 1;
}
