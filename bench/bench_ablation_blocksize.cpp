//===- bench/bench_ablation_blocksize.cpp - Cache-budget ablation ---------===//
//
// Ablation over the (3+1)D block sizing: the cache budget fraction drives
// the slab thickness, trading per-pass synchronization count against
// cache-resident working-set size (modeled as spill traffic once the
// budget exceeds the LLC). Reports islands-of-cores times at P=14 and
// single-socket (3+1)D times across budgets.
//
// Expected shape: very small budgets cost barriers (many thin blocks);
// times improve with thickness and flatten once block overheads are
// amortized.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/BlockPlanner.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

int main() {
  std::printf("=== Ablation: (3+1)D cache budget / block thickness ===\n");
  std::printf("1024x512x64, 50 steps, SGI UV 2000 model\n\n");

  MpdataProgram M = buildMpdataProgram();
  Box3 Grid = Box3::fromExtents(PaperNI, PaperNJ, PaperNK);

  TablePrinter Table({"budget fraction", "thickness (1 socket)",
                      "(3+1)D P=1 [s]", "islands P=14 [s]"});
  double First = 0.0, Last = 0.0;
  for (double Fraction : {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    MachineModel Uv = makeSgiUv2000();
    Uv.CacheBudgetFraction = Fraction;
    int Thickness = blockThickness(
        M.Program, Grid,
        static_cast<int64_t>(static_cast<double>(Uv.LlcBytesPerSocket) *
                             Fraction));
    double Blocked1 =
        simulatePaperRun(M, Uv, Strategy::Block31D, 1).TotalSeconds;
    double Isl14 =
        simulatePaperRun(M, Uv, Strategy::IslandsOfCores, 14).TotalSeconds;
    Table.addRow({formatString("%.4f", Fraction),
                  formatString("%d", Thickness),
                  formatString("%.2f", Blocked1),
                  formatString("%.3f", Isl14)});
    if (First == 0.0)
      First = Blocked1;
    Last = Blocked1;
  }
  Table.print(outs());

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += shapeCheck(First > Last,
                         "tiny budgets pay barrier overhead: the smallest "
                         "budget is slower than the largest");
  return Failures == 0 ? 0 : 1;
}
