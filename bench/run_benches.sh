#!/usr/bin/env bash
# Runs the table-reproduction benches and collects their machine-readable
# BENCH_*.json records (schema icores.bench.v1) into one directory, then
# validates them against the schema. Usage:
#
#   bench/run_benches.sh [BUILD_DIR] [OUT_DIR]
#
# BUILD_DIR defaults to ./build (must already be built); OUT_DIR defaults
# to ./bench-results. Exits nonzero if any bench's shape checks fail or a
# JSON record does not validate.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-bench-results}
SCRIPT_DIR=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")" && pwd)

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build the project first" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
export ICORES_BENCH_DIR=$OUT_DIR

STATUS=0
for BENCH in bench_table1 bench_table2 bench_table3 bench_table4 \
             bench_kernels bench_temporal bench_numa bench_balance; do
  BIN=$BUILD_DIR/bench/$BENCH
  [ -x "$BIN" ] || continue
  LOG=$OUT_DIR/$BENCH.log
  echo "== $BENCH (log: $LOG)"
  if ! "$BIN" > "$LOG" 2>&1; then
    echo "   FAILED — tail of $LOG:"
    tail -5 "$LOG"
    STATUS=1
  fi
done

# Smoke slice: a short temporally blocked execute run must stay bit-exact
# and its --profile record (exec_stats v3 with temporal_depth) must
# validate with everything else below.
CLI=$BUILD_DIR/tools/mpdata_cli
if [ -x "$CLI" ]; then
  echo "== temporal smoke (mpdata_cli execute --temporal=2)"
  if ! "$CLI" execute --strategy=islands --islands=2 --steps=4 \
       --temporal=2 --profile="$OUT_DIR/exec_stats_temporal.json" \
       > "$OUT_DIR/temporal_smoke.log" 2>&1; then
    echo "   FAILED — tail of $OUT_DIR/temporal_smoke.log:"
    tail -5 "$OUT_DIR/temporal_smoke.log"
    STATUS=1
  fi

  # NUMA smoke: a first-touch placed run must stay bit-exact and its
  # --profile record (exec_stats v4 with the placement fields) must
  # validate with everything else below.
  echo "== numa smoke (mpdata_cli execute --place=firsttouch)"
  if ! "$CLI" execute --strategy=islands --islands=2 --steps=4 \
       --place=firsttouch --profile="$OUT_DIR/exec_stats_numa.json" \
       > "$OUT_DIR/numa_smoke.log" 2>&1; then
    echo "   FAILED — tail of $OUT_DIR/numa_smoke.log:"
    tail -5 "$OUT_DIR/numa_smoke.log"
    STATUS=1
  fi

  # Balance smoke: cost cuts plus work stealing must stay bit-exact and
  # the --profile record (exec_stats v5 with the balance fields) must
  # validate with everything else below.
  echo "== balance smoke (mpdata_cli execute --balance=cost --steal)"
  if ! "$CLI" execute --strategy=islands --islands=4 --steps=4 \
       --temporal=2 --balance=cost --steal \
       --profile="$OUT_DIR/exec_stats_balance.json" \
       > "$OUT_DIR/balance_smoke.log" 2>&1; then
    echo "   FAILED — tail of $OUT_DIR/balance_smoke.log:"
    tail -5 "$OUT_DIR/balance_smoke.log"
    STATUS=1
  fi
fi

# The workload manifest pins every bench row's "workload" field to a
# name the CLI actually registers.
MANIFEST_ARGS=()
if [ -x "$CLI" ] && "$CLI" list-workloads > "$OUT_DIR/workloads.txt" 2>&1; then
  MANIFEST_ARGS=(--manifest="$OUT_DIR/workloads.txt")
fi

JSONS=("$OUT_DIR"/BENCH_*.json "$OUT_DIR"/exec_stats_*.json)
JSONS=($(ls "${JSONS[@]}" 2> /dev/null || true))
if [ -e "${JSONS[0]}" ]; then
  if command -v python3 > /dev/null 2>&1; then
    python3 "$SCRIPT_DIR/validate_bench_json.py" "${MANIFEST_ARGS[@]}" \
      "${JSONS[@]}" || STATUS=1
  else
    echo "note: python3 not found; skipping BENCH_*.json schema validation"
  fi
else
  echo "error: no BENCH_*.json produced in $OUT_DIR" >&2
  STATUS=1
fi

exit $STATUS
