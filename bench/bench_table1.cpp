//===- bench/bench_table1.cpp - Reproduce Table 1 -------------------------===//
//
// Table 1: execution times of 50 MPDATA steps on the 1024x512x64 grid for
// the original version with serial initialization, the original version
// with first-touch parallel initialization, and the pure (3+1)D
// decomposition, for P = 1..14 processors of the SGI UV 2000.
//
// The paper's headline observations this run must reproduce:
//  - serial-init original gets *slower* as processors are added;
//  - first-touch original scales;
//  - pure (3+1)D beats the original only for P <= ~3 and is beaten for
//    larger P.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;
using namespace icores::bench;

int main() {
  std::printf("=== Table 1: original vs (3+1)D on SGI UV 2000 "
              "(1024x512x64, 50 steps) ===\n");
  std::printf("paper values in parentheses; simulated seconds\n\n");

  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();

  TablePrinter Table({"#CPUs", "Original (serial init)",
                      "Original (first touch)", "(3+1)D"});
  std::array<double, 14> Serial{}, FirstTouch{}, Blocked{};
  for (int P = 1; P <= PaperMaxCpus; ++P) {
    Serial[P - 1] = simulatePaperRun(M, Uv, Strategy::Original, P,
                                     PagePlacement::None)
                        .TotalSeconds;
    FirstTouch[P - 1] =
        simulatePaperRun(M, Uv, Strategy::Original, P).TotalSeconds;
    Blocked[P - 1] =
        simulatePaperRun(M, Uv, Strategy::Block31D, P).TotalSeconds;
    Table.addRow({formatString("%d", P),
                  formatString("%5.1f (%5.1f)", Serial[P - 1],
                               PaperOriginalSerialInit[P - 1]),
                  formatString("%5.2f (%5.2f)", FirstTouch[P - 1],
                               PaperOriginalFirstTouch[P - 1]),
                  formatString("%5.2f (%5.2f)", Blocked[P - 1],
                               PaperBlock31D[P - 1])});
  }
  Table.print(outs());

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += shapeCheck(Serial[13] > Serial[0] * 2.0,
                         "serial-init original degrades with P "
                         "(>2x slower at P=14)");
  Failures += shapeCheck(FirstTouch[13] < FirstTouch[0] / 8.0,
                         "first-touch original scales (>8x at P=14)");
  Failures += shapeCheck(Blocked[0] < FirstTouch[0] / 2.0,
                         "(3+1)D wins clearly at P=1");
  Failures += shapeCheck(Blocked[13] > FirstTouch[13] * 2.0,
                         "(3+1)D loses clearly at P=14");
  bool CrossoverFound = false;
  for (int P = 2; P <= PaperMaxCpus; ++P)
    if (Blocked[P - 1] > FirstTouch[P - 1] && Blocked[P - 2] <=
        FirstTouch[P - 2])
      CrossoverFound = true;
  Failures += shapeCheck(CrossoverFound,
                         "original/(3+1)D crossover exists at small P");
  return Failures == 0 ? 0 : 1;
}
