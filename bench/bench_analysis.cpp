//===- bench/bench_analysis.cpp - Host timings of planning/analysis -------===//
//
// google-benchmark timings of the compile-time-style machinery: backward
// halo analysis, extra-element accounting, block planning and full plan
// construction. These all sit on the application's startup path, so they
// should be microseconds-to-milliseconds even at paper scale.
//
//===----------------------------------------------------------------------===//

#include "core/BlockPlanner.h"
#include "core/PlanBuilder.h"
#include "core/Partition.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/Simulator.h"
#include "stencil/ExtraElements.h"
#include "stencil/HaloAnalysis.h"

#include <benchmark/benchmark.h>

using namespace icores;

namespace {

const Box3 PaperGrid = Box3::fromExtents(1024, 512, 64);

void BM_BuildProgram(benchmark::State &S) {
  for (auto _ : S) {
    MpdataProgram M = buildMpdataProgram();
    benchmark::DoNotOptimize(M);
  }
}

void BM_ComputeRequirements(benchmark::State &S) {
  MpdataProgram M = buildMpdataProgram();
  for (auto _ : S) {
    RegionRequirements R = computeRequirements(M.Program, PaperGrid);
    benchmark::DoNotOptimize(R);
  }
}

void BM_ExtraElements14(benchmark::State &S) {
  MpdataProgram M = buildMpdataProgram();
  std::vector<Box3> Parts = partition1D(PaperGrid, 14, 0);
  for (auto _ : S) {
    ExtraElementsReport R = countExtraElements(M.Program, PaperGrid, Parts);
    benchmark::DoNotOptimize(R);
  }
}

void BM_PlanIslandBlocks(benchmark::State &S) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Part = partition1D(PaperGrid, 14, 0)[6];
  for (auto _ : S) {
    std::vector<BlockTask> Blocks =
        planIslandBlocks(M.Program, Part, PaperGrid, 2);
    benchmark::DoNotOptimize(Blocks);
  }
}

void BM_BuildFullPlan(benchmark::State &S) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 14;
  for (auto _ : S) {
    ExecutionPlan Plan = buildPlan(M.Program, PaperGrid, Uv, Config);
    benchmark::DoNotOptimize(Plan);
  }
}

void BM_SimulateStep(benchmark::State &S) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 14;
  ExecutionPlan Plan = buildPlan(M.Program, PaperGrid, Uv, Config);
  for (auto _ : S) {
    SimResult R = simulate(Plan, M.Program, Uv, 50);
    benchmark::DoNotOptimize(R);
  }
}

} // namespace

BENCHMARK(BM_BuildProgram);
BENCHMARK(BM_ComputeRequirements);
BENCHMARK(BM_ExtraElements14);
BENCHMARK(BM_PlanIslandBlocks);
BENCHMARK(BM_BuildFullPlan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateStep)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
