//===- bench/bench_table2.cpp - Reproduce Table 2 -------------------------===//
//
// Table 2: total redundantly computed elements (percent of the original
// version's work) for mapping the 1024x512x64 MPDATA grid onto 1D island
// grids along the first (variant A) or second (variant B) dimension, for
// 1..14 islands. This is a pure dependence-analysis result — no simulation
// involved — computed exactly from the 17-stage stencil IR.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Partition.h"
#include "stencil/ExtraElements.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>

using namespace icores;
using namespace icores::bench;

int main() {
  std::printf("=== Table 2: redundant elements of the islands-of-cores "
              "approach (1024x512x64) ===\n");
  std::printf("percent extra vs original; paper values in parentheses\n\n");

  MpdataProgram M = buildMpdataProgram();
  Box3 Grid = Box3::fromExtents(PaperNI, PaperNJ, PaperNK);

  TablePrinter Table({"# islands", "Variant A [%]", "Variant B [%]"});
  std::array<double, 14> A{}, B{};
  for (int Islands = 1; Islands <= PaperMaxCpus; ++Islands) {
    A[Islands - 1] = countExtraElements(M.Program, Grid,
                                        partition1D(Grid, Islands, 0))
                         .extraFraction() *
                     100.0;
    B[Islands - 1] = countExtraElements(M.Program, Grid,
                                        partition1D(Grid, Islands, 1))
                         .extraFraction() *
                     100.0;
    Table.addRow({formatString("%d", Islands),
                  formatString("%.2f (%.2f)", A[Islands - 1],
                               PaperExtraVariantA[Islands - 1]),
                  formatString("%.2f (%.2f)", B[Islands - 1],
                               PaperExtraVariantB[Islands - 1])});
  }
  Table.print(outs());

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += shapeCheck(A[0] == 0.0 && B[0] == 0.0,
                         "one island computes nothing extra");
  bool LinearA = true;
  for (int Islands = 3; Islands <= PaperMaxCpus; ++Islands) {
    double PerBoundary = A[Islands - 1] / (Islands - 1);
    if (std::fabs(PerBoundary - A[1]) > 1e-9)
      LinearA = false;
  }
  Failures += shapeCheck(LinearA, "variant A grows linearly per boundary");
  bool ALessB = true;
  for (int Islands = 2; Islands <= PaperMaxCpus; ++Islands)
    if (A[Islands - 1] >= B[Islands - 1])
      ALessB = false;
  Failures += shapeCheck(ALessB,
                         "variant A always cheaper than variant B");
  Failures += shapeCheck(std::fabs(B[1] / A[1] - 2.0) < 0.05,
                         "variant B/A ratio ~2 (boundary-area ratio)");
  Failures += shapeCheck(A[13] > 1.0 && A[13] < 6.0,
                         "variant A at 14 islands in the paper's "
                         "few-percent range");
  return Failures == 0 ? 0 : 1;
}
