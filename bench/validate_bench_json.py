#!/usr/bin/env python3
"""Validates icores JSON records, dispatching on their "schema" field.

Usage: validate_bench_json.py [--manifest=FILE] FILE [FILE...]

Every icores.bench.v2 row may carry an optional "workload" field naming
the registered workload the row was measured on (BenchUtil emits it;
older records without it stay valid). With --manifest=FILE — a file
holding the output of `mpdata_cli list-workloads`, whose first token
per line is a workload name — any "workload" value not in the manifest
is a validation failure, so bench records can never claim a workload
the binary does not register.

Accepted schemas:

  icores.bench.v1 (bench/BenchUtil.cpp writeBenchJson and
  writeKernelBenchJson):
  {
    "schema": "icores.bench.v1",
    "bench": "<name>",
    "rows": [...]
  }

  icores.bench.v2 (bench/BenchUtil.cpp writeTemporalBenchJson,
  writeNumaBenchJson and writeBalanceBenchJson): same envelope, with
  three row shapes distinguished by field presence ("balance" marks a
  load-balance row, else "placement" marks a NUMA row).
  Every v2 row additionally accepts an optional "workload": str
  (checked against the manifest under --manifest).
  Temporal-blocking traffic rows:
      {"strategy": str, "temporal_depth": int >= 1,
       "measured_bytes_per_step": int > 0,
       "projected_bytes_per_step": int > 0, "seconds": float > 0}
  NUMA-placement rows (bench_numa):
      {"strategy": str, "temporal_depth": int >= 1,
       "placement": "none"|"firsttouch"|"interleave",
       "remote_bytes_per_step": int >= 0,
       "projected_remote_bytes_per_step": int >= 0,
       "pages_first_touched": int >= 0, "pin_failures": int >= 0,
       "seconds": float > 0}
  Load-balance rows (bench_balance):
      {"balance": "uniform"|"cost", "stealing": bool,
       "temporal_depth": int >= 1, "islands": int >= 1,
       "predicted_skew_sim": float >= 1 (== predicted_skew_exec: both
       sides call the same predictedIslandSkew()),
       "predicted_skew_exec": float >= 1, "measured_skew": float >= 1,
       "max_imbalance": float >= 1, "steals": int >= 0,
       "steal_failures": int >= 0, "idle_seconds": float >= 0,
       "seconds": float > 0}

  icores.exec_stats.v2 .. icores.exec_stats.v5
  (--profile output of mpdata_cli, src/exec/ExecStats.cpp writeJson). v3
  extends v2 with the fault-injection counters "faults_injected",
  "retries", "timeouts" and "recovered" (ints >= 0); v2 documents remain
  valid without them. v4 adds the NUMA placement fields "placement"
  (none/firsttouch/interleave), "remote_bytes_est", "pages_first_touched"
  and "pin_failures" (ints >= 0). v5 adds the load-balance fields
  "balance" (uniform/cost), "stealing" (bool), "steals",
  "steal_failures" (ints >= 0), "idle_seconds" (float >= 0),
  "predicted_island_skew" and "measured_island_skew" (floats; >= 1 or
  exactly 0 when unpriced), plus per-island "imbalance_per_step" lists
  and per-thread "steals"/"steal_failures"/"idle_seconds".

  icores.prove.v1 (src/verify/ProofDriver.cpp writeProveJson; emitted by
  tools/icores_verify and `mpdata_cli verify`):
  {
    "schema": "icores.prove.v1",
    "grid": str, "time_steps": int >= 1,
    "plans": [{"label": str, "workload": str, "strategy": str,
               "teams": int >= 1, "temporal_depth": int >= 1,
               "elide": bool, "verdict": "proved"|"pruned"|"violated",
               "errors": int >= 0,
               optional "prune_reason"/"witness": str}, ...],
    "protocol": {"barrier": [...], "barrier_mutants": [...],
                 "comm": [...], "comm_mutants": [...]},
    "mutation": {"classes": [{"class": str, "kill_id": str,
                              "mutants": int, "killed": int}, ...],
                 "kill_rate": float in [0, 1]},
    "summary": {"plans", "proved", "pruned", "violated" (ints),
                "protocol_ok": bool, "kill_rate": float, "ok": bool}
  }
  Cross-checks: summary counts must match the plans list, and every
  protocol mutant must be caught when summary.ok is true.

Two row shapes share the schema, distinguished by which field leads:

  strategy rows (bench_table3/4):
      {"strategy": str, "p": int >= 1, "seconds": float > 0,
       "barrier_share": float in [0, 1], "total_barriers": int >= 0,
       "elided_barriers": int >= 0 (<= total_barriers),
       "optimized_seconds": float >= 0, "gflops": float >= 0}

  kernel-roofline rows (bench_kernels; has a "variant" field):
      {"variant": "ref"|"opt"|"simd", "stage": str,
       "region": "hot"|"cold", "seconds": float > 0,
       "gflops": float >= 0, "gbps": float >= 0}

Exits nonzero listing every violation found.
"""

import json
import sys

ROW_FIELDS = {
    "strategy": str,
    "p": int,
    "seconds": (int, float),
    "barrier_share": (int, float),
    "total_barriers": int,
    "elided_barriers": int,
    "optimized_seconds": (int, float),
    "gflops": (int, float),
}

KERNEL_ROW_FIELDS = {
    "variant": str,
    "stage": str,
    "region": str,
    "seconds": (int, float),
    "gflops": (int, float),
    "gbps": (int, float),
}


# Common to exec_stats v2 and v3; v3 adds the fault counters.
EXEC_STATS_FIELDS = {
    "enabled": bool,
    "steps": int,
    "run_calls": int,
    "wall_seconds": (int, float),
    "kernel_seconds": (int, float),
    "team_barrier_wait_seconds": (int, float),
    "barrier_share": (int, float),
    "elided_barriers": int,
    "spin_wakes": int,
    "sleep_wakes": int,
    "islands": list,
}

EXEC_STATS_V3_FAULT_FIELDS = ("faults_injected", "retries", "timeouts",
                              "recovered")

# v4 adds the NUMA placement fields (additive; see src/exec/ExecStats.cpp).
EXEC_STATS_V4_PLACEMENT_FIELDS = ("remote_bytes_est", "pages_first_touched",
                                  "pin_failures")

# v5 adds the load-balance fields (additive).
EXEC_STATS_V5_COUNTER_FIELDS = ("steals", "steal_failures")
EXEC_STATS_V5_SKEW_FIELDS = ("predicted_island_skew", "measured_island_skew")

TEMPORAL_ROW_FIELDS = {
    "strategy": str,
    "temporal_depth": int,
    "measured_bytes_per_step": int,
    "projected_bytes_per_step": int,
    "seconds": (int, float),
}

NUMA_ROW_FIELDS = {
    "strategy": str,
    "temporal_depth": int,
    "placement": str,
    "remote_bytes_per_step": int,
    "projected_remote_bytes_per_step": int,
    "pages_first_touched": int,
    "pin_failures": int,
    "seconds": (int, float),
}

PLACEMENT_NAMES = ("none", "firsttouch", "interleave")

BALANCE_NAMES = ("uniform", "cost")

BALANCE_ROW_FIELDS = {
    "balance": str,
    "stealing": bool,
    "temporal_depth": int,
    "islands": int,
    "predicted_skew_sim": (int, float),
    "predicted_skew_exec": (int, float),
    "measured_skew": (int, float),
    "max_imbalance": (int, float),
    "steals": int,
    "steal_failures": int,
    "idle_seconds": (int, float),
    "seconds": (int, float),
}


# Workload manifest loaded from --manifest=FILE (None: accept any name).
MANIFEST = None


def validate_workload_field(where, row):
    """The optional v2 "workload" field: a non-empty string, and — when a
    manifest was supplied — one of the names the CLI registers."""
    if "workload" not in row:
        return []
    workload = row["workload"]
    if not isinstance(workload, str) or not workload:
        return ["%s: 'workload' must be a non-empty string" % where]
    if MANIFEST is not None and workload not in MANIFEST:
        return ["%s: workload = %r not in the manifest (%s)"
                % (where, workload, ", ".join(sorted(MANIFEST)))]
    return []


def validate_balance_row(where, row):
    errors = validate_workload_field(where, row)
    for field, types in BALANCE_ROW_FIELDS.items():
        if field not in row:
            errors.append("%s: missing field %r" % (where, field))
        elif not isinstance(row[field], types) or (
                types is not bool and isinstance(row[field], bool)):
            errors.append("%s: field %r has type %s"
                          % (where, field, type(row[field]).__name__))
    if errors:
        return errors
    if row["balance"] not in BALANCE_NAMES:
        errors.append("%s: balance = %r not in %s"
                      % (where, row["balance"], "/".join(BALANCE_NAMES)))
    if row["temporal_depth"] < 1:
        errors.append("%s: temporal_depth = %d < 1"
                      % (where, row["temporal_depth"]))
    if row["islands"] < 1:
        errors.append("%s: islands = %d < 1" % (where, row["islands"]))
    # Skews and imbalances are max/mean ratios: >= 1 by construction.
    for field in ("predicted_skew_sim", "predicted_skew_exec",
                  "measured_skew", "max_imbalance"):
        if row[field] < 1:
            errors.append("%s: %s = %g < 1" % (where, field, row[field]))
    # Parity by construction: both sides call the same model function.
    if row["predicted_skew_sim"] != row["predicted_skew_exec"]:
        errors.append("%s: predicted_skew_sim %g != predicted_skew_exec %g"
                      % (where, row["predicted_skew_sim"],
                         row["predicted_skew_exec"]))
    for field in ("steals", "steal_failures"):
        if row[field] < 0:
            errors.append("%s: %s = %d < 0" % (where, field, row[field]))
    if not row["stealing"] and row["steals"]:
        errors.append("%s: steals = %d with stealing disabled"
                      % (where, row["steals"]))
    if row["idle_seconds"] < 0:
        errors.append("%s: idle_seconds = %g < 0"
                      % (where, row["idle_seconds"]))
    if row["seconds"] <= 0:
        errors.append("%s: seconds = %g <= 0" % (where, row["seconds"]))
    return errors


def validate_numa_row(where, row):
    errors = validate_workload_field(where, row)
    for field, types in NUMA_ROW_FIELDS.items():
        if field not in row:
            errors.append("%s: missing field %r" % (where, field))
        elif not isinstance(row[field], types) or isinstance(
                row[field], bool):
            errors.append("%s: field %r has type %s"
                          % (where, field, type(row[field]).__name__))
    if errors:
        return errors
    if not row["strategy"]:
        errors.append("%s: empty strategy name" % where)
    if row["temporal_depth"] < 1:
        errors.append("%s: temporal_depth = %d < 1"
                      % (where, row["temporal_depth"]))
    if row["placement"] not in PLACEMENT_NAMES:
        errors.append("%s: placement = %r not in %s"
                      % (where, row["placement"],
                         "/".join(PLACEMENT_NAMES)))
    for field in ("remote_bytes_per_step",
                  "projected_remote_bytes_per_step",
                  "pages_first_touched", "pin_failures"):
        if row[field] < 0:
            errors.append("%s: %s = %d < 0" % (where, field, row[field]))
    if row["seconds"] <= 0:
        errors.append("%s: seconds = %g <= 0" % (where, row["seconds"]))
    return errors


def validate_temporal_row(where, row):
    errors = validate_workload_field(where, row)
    for field, types in TEMPORAL_ROW_FIELDS.items():
        if field not in row:
            errors.append("%s: missing field %r" % (where, field))
        elif not isinstance(row[field], types) or isinstance(
                row[field], bool):
            errors.append("%s: field %r has type %s"
                          % (where, field, type(row[field]).__name__))
    if errors:
        return errors
    if not row["strategy"]:
        errors.append("%s: empty strategy name" % where)
    if row["temporal_depth"] < 1:
        errors.append("%s: temporal_depth = %d < 1"
                      % (where, row["temporal_depth"]))
    for field in ("measured_bytes_per_step", "projected_bytes_per_step"):
        if row[field] <= 0:
            errors.append("%s: %s = %d <= 0" % (where, field, row[field]))
    if row["seconds"] <= 0:
        errors.append("%s: seconds = %g <= 0" % (where, row["seconds"]))
    return errors


def validate_temporal(path, doc):
    errors = []
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("%s: missing or empty 'bench' name" % path)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("%s: 'rows' must be a non-empty list" % path)
        return errors
    for i, row in enumerate(rows):
        where = "%s: rows[%d]" % (path, i)
        if not isinstance(row, dict):
            errors.append("%s: not an object" % where)
            continue
        if "balance" in row:
            errors.extend(validate_balance_row(where, row))
        elif "placement" in row:
            errors.extend(validate_numa_row(where, row))
        else:
            errors.extend(validate_temporal_row(where, row))
    return errors


def validate_exec_stats(path, doc):
    version = doc.get("schema").rsplit(".", 1)[1]
    errors = []
    for field, types in EXEC_STATS_FIELDS.items():
        if field not in doc:
            errors.append("%s: missing field %r" % (path, field))
        elif not isinstance(doc[field], types) or (
                types is not bool and isinstance(doc[field], bool)):
            errors.append("%s: field %r has type %s"
                          % (path, field, type(doc[field]).__name__))
    for field in EXEC_STATS_V3_FAULT_FIELDS:
        if version == "v2":
            continue  # v2 predates the fault counters.
        if field not in doc:
            errors.append("%s: v3 requires field %r" % (path, field))
        elif not isinstance(doc[field], int) or isinstance(doc[field], bool):
            errors.append("%s: field %r must be an int"
                          % (path, field))
        elif doc[field] < 0:
            errors.append("%s: field %r = %d < 0" % (path, field, doc[field]))
    if version in ("v4", "v5"):
        placement = doc.get("placement")
        if placement not in PLACEMENT_NAMES:
            errors.append("%s: %s requires 'placement' in %s, got %r"
                          % (path, version, "/".join(PLACEMENT_NAMES),
                             placement))
        for field in EXEC_STATS_V4_PLACEMENT_FIELDS:
            if field not in doc:
                errors.append("%s: %s requires field %r"
                              % (path, version, field))
            elif not isinstance(doc[field], int) or isinstance(
                    doc[field], bool) or doc[field] < 0:
                errors.append("%s: field %r must be an int >= 0"
                              % (path, field))
    if version == "v5":
        if doc.get("balance") not in BALANCE_NAMES:
            errors.append("%s: v5 requires 'balance' in %s, got %r"
                          % (path, "/".join(BALANCE_NAMES),
                             doc.get("balance")))
        if not isinstance(doc.get("stealing"), bool):
            errors.append("%s: v5 requires a bool 'stealing'" % path)
        for field in EXEC_STATS_V5_COUNTER_FIELDS:
            if not isinstance(doc.get(field), int) or isinstance(
                    doc.get(field), bool) or doc.get(field, 0) < 0:
                errors.append("%s: v5 requires %r as an int >= 0"
                              % (path, field))
        if not isinstance(doc.get("idle_seconds"), (int, float)) \
                or isinstance(doc.get("idle_seconds"), bool) \
                or doc.get("idle_seconds", 0) < 0:
            errors.append("%s: v5 requires 'idle_seconds' >= 0" % path)
        # Skews are max/mean ratios (>= 1), except the unpriced
        # predicted skew which the executor reports as exactly 0 when no
        # machine model was supplied.
        for field in EXEC_STATS_V5_SKEW_FIELDS:
            value = doc.get(field)
            if not isinstance(value, (int, float)) or isinstance(
                    value, bool) or (value < 1 and value != 0):
                errors.append("%s: v5 requires %r >= 1 (or 0 when "
                              "unpriced)" % (path, field))
    if errors:
        return errors
    if not 0 <= doc["barrier_share"] <= 1:
        errors.append("%s: barrier_share = %g outside [0, 1]"
                      % (path, doc["barrier_share"]))
    for field in ("steps", "run_calls", "elided_barriers", "spin_wakes",
                  "sleep_wakes"):
        if doc[field] < 0:
            errors.append("%s: field %r = %d < 0" % (path, field, doc[field]))
    # Additive v3 fields from the temporal-blocking work: optional, but
    # when present they must be sane.
    if "temporal_depth" in doc and (
            not isinstance(doc["temporal_depth"], int)
            or isinstance(doc["temporal_depth"], bool)
            or doc["temporal_depth"] < 1):
        errors.append("%s: temporal_depth must be an int >= 1" % path)
    for field in ("shared_read_bytes", "shared_written_bytes"):
        if field in doc and (not isinstance(doc[field], int)
                             or isinstance(doc[field], bool)
                             or doc[field] < 0):
            errors.append("%s: %s must be an int >= 0" % (path, field))
    for i, island in enumerate(doc["islands"]):
        where = "%s: islands[%d]" % (path, i)
        if not isinstance(island, dict):
            errors.append("%s: not an object" % where)
            continue
        for field in ("island", "num_threads", "stages"):
            if field not in island:
                errors.append("%s: missing field %r" % (where, field))
        if version == "v5":
            steps = island.get("imbalance_per_step")
            if not isinstance(steps, list) or not all(
                    isinstance(s, (int, float)) and not isinstance(s, bool)
                    and (s >= 1 or s == 0) for s in steps):
                errors.append("%s: v5 requires 'imbalance_per_step' as a "
                              "list of ratios >= 1 (or 0)" % where)
            for t, thread in enumerate(island.get("threads", [])):
                twhere = "%s: threads[%d]" % (where, t)
                if not isinstance(thread, dict):
                    errors.append("%s: not an object" % twhere)
                    continue
                for field in ("steals", "steal_failures"):
                    if not isinstance(thread.get(field), int) or isinstance(
                            thread.get(field), bool) \
                            or thread.get(field, 0) < 0:
                        errors.append("%s: v5 requires %r as an int >= 0"
                                      % (twhere, field))
                if not isinstance(thread.get("idle_seconds"),
                                  (int, float)) or isinstance(
                        thread.get("idle_seconds"), bool) \
                        or thread.get("idle_seconds", 0) < 0:
                    errors.append("%s: v5 requires 'idle_seconds' >= 0"
                                  % twhere)
    return errors


PROVE_PLAN_FIELDS = {
    "label": str,
    "workload": str,
    "strategy": str,
    "teams": int,
    "temporal_depth": int,
    "elide": bool,
    "verdict": str,
    "errors": int,
}

PROVE_MUTATION_CLASS_FIELDS = {
    "class": str,
    "kill_id": str,
    "mutants": int,
    "killed": int,
}


def validate_prove(path, doc):
    errors = []
    if not isinstance(doc.get("grid"), str) or not doc.get("grid"):
        errors.append("%s: missing or empty 'grid'" % path)
    if not isinstance(doc.get("time_steps"), int) or doc.get(
            "time_steps", 0) < 1:
        errors.append("%s: time_steps must be an int >= 1" % path)

    plans = doc.get("plans")
    if not isinstance(plans, list) or not plans:
        errors.append("%s: 'plans' must be a non-empty list" % path)
        plans = []
    verdicts = {"proved": 0, "pruned": 0, "violated": 0}
    labels = set()
    for i, plan in enumerate(plans):
        where = "%s: plans[%d]" % (path, i)
        if not isinstance(plan, dict):
            errors.append("%s: not an object" % where)
            continue
        for field, types in PROVE_PLAN_FIELDS.items():
            if field not in plan:
                errors.append("%s: missing field %r" % (where, field))
            elif not isinstance(plan[field], types) or (
                    types is not bool and isinstance(plan[field], bool)):
                errors.append("%s: field %r has type %s"
                              % (where, field, type(plan[field]).__name__))
        if errors and errors[-1].startswith(where):
            continue
        if plan["verdict"] not in verdicts:
            errors.append("%s: verdict = %r not in proved/pruned/violated"
                          % (where, plan["verdict"]))
            continue
        verdicts[plan["verdict"]] += 1
        if plan["label"] in labels:
            errors.append("%s: duplicate label %r" % (where, plan["label"]))
        labels.add(plan["label"])
        if plan["teams"] < 1 or plan["temporal_depth"] < 1:
            errors.append("%s: teams/temporal_depth must be >= 1" % where)
        if plan["verdict"] == "pruned" and not plan.get("prune_reason"):
            errors.append("%s: pruned plan without 'prune_reason'" % where)
        if plan["verdict"] == "violated" and plan["errors"] < 1:
            errors.append("%s: violated plan with errors = 0" % where)

    protocol = doc.get("protocol")
    if not isinstance(protocol, dict):
        errors.append("%s: missing 'protocol' object" % path)
        protocol = {}
    for section in ("barrier", "comm"):
        runs = protocol.get(section)
        if not isinstance(runs, list) or not runs:
            errors.append("%s: protocol.%s must be a non-empty list"
                          % (path, section))
            continue
        for i, run in enumerate(runs):
            if not isinstance(run, dict) or not isinstance(
                    run.get("ok"), bool):
                errors.append("%s: protocol.%s[%d] needs a bool 'ok'"
                              % (path, section, i))
    uncaught = []
    for section in ("barrier_mutants", "comm_mutants"):
        for mutant in protocol.get(section, []):
            if not isinstance(mutant, dict) or not isinstance(
                    mutant.get("caught"), bool):
                errors.append("%s: protocol.%s entries need a bool 'caught'"
                              % (path, section))
            elif not mutant["caught"]:
                uncaught.append(mutant.get("mutant", "?"))

    mutation = doc.get("mutation")
    if not isinstance(mutation, dict):
        errors.append("%s: missing 'mutation' object" % path)
        mutation = {}
    for i, cls in enumerate(mutation.get("classes", [])):
        where = "%s: mutation.classes[%d]" % (path, i)
        if not isinstance(cls, dict):
            errors.append("%s: not an object" % where)
            continue
        for field, types in PROVE_MUTATION_CLASS_FIELDS.items():
            if not isinstance(cls.get(field), types) or isinstance(
                    cls.get(field), bool):
                errors.append("%s: field %r missing or mistyped"
                              % (where, field))
        if isinstance(cls.get("killed"), int) and isinstance(
                cls.get("mutants"), int) and cls["killed"] > cls["mutants"]:
            errors.append("%s: killed %d > mutants %d"
                          % (where, cls["killed"], cls["mutants"]))
    rate = mutation.get("kill_rate")
    if not isinstance(rate, (int, float)) or isinstance(
            rate, bool) or not 0 <= rate <= 1:
        errors.append("%s: mutation.kill_rate must be in [0, 1]" % path)

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        errors.append("%s: missing 'summary' object" % path)
        return errors
    for field in ("plans", "proved", "pruned", "violated"):
        if not isinstance(summary.get(field), int) or isinstance(
                summary.get(field), bool):
            errors.append("%s: summary.%s must be an int" % (path, field))
    for field in ("protocol_ok", "ok"):
        if not isinstance(summary.get(field), bool):
            errors.append("%s: summary.%s must be a bool" % (path, field))
    if errors:
        return errors
    if summary["plans"] != len(plans):
        errors.append("%s: summary.plans = %d but plans list has %d"
                      % (path, summary["plans"], len(plans)))
    for verdict in ("proved", "pruned", "violated"):
        if summary[verdict] != verdicts[verdict]:
            errors.append("%s: summary.%s = %d but counted %d"
                          % (path, verdict, summary[verdict],
                             verdicts[verdict]))
    if summary["ok"] and (summary["violated"] or not summary["protocol_ok"]):
        errors.append("%s: summary.ok contradicts violations/protocol" % path)
    if summary["ok"] and uncaught:
        errors.append("%s: summary.ok with uncaught protocol mutants: %s"
                      % (path, ", ".join(uncaught)))
    return errors


def validate(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["%s: unreadable or invalid JSON: %s" % (path, e)]

    schema = doc.get("schema")
    if schema in ("icores.exec_stats.v2", "icores.exec_stats.v3",
                  "icores.exec_stats.v4", "icores.exec_stats.v5"):
        return validate_exec_stats(path, doc)
    if schema == "icores.bench.v2":
        return validate_temporal(path, doc)
    if schema == "icores.prove.v1":
        return validate_prove(path, doc)
    if schema != "icores.bench.v1":
        errors.append("%s: schema is %r, want 'icores.bench.v1', "
                      "'icores.bench.v2', 'icores.prove.v1' or "
                      "'icores.exec_stats.v2'/'v3'/'v4'/'v5'"
                      % (path, schema))
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("%s: missing or empty 'bench' name" % path)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("%s: 'rows' must be a non-empty list" % path)
        return errors

    for i, row in enumerate(rows):
        where = "%s: rows[%d]" % (path, i)
        if not isinstance(row, dict):
            errors.append("%s: not an object" % where)
            continue
        if "variant" in row:
            errors.extend(validate_kernel_row(where, row))
            continue
        for field, types in ROW_FIELDS.items():
            if field not in row:
                errors.append("%s: missing field %r" % (where, field))
            elif not isinstance(row[field], types) or isinstance(
                    row[field], bool):
                errors.append("%s: field %r has type %s"
                              % (where, field, type(row[field]).__name__))
        if errors and errors[-1].startswith(where):
            continue
        if row["p"] < 1:
            errors.append("%s: p = %d < 1" % (where, row["p"]))
        if row["seconds"] <= 0:
            errors.append("%s: seconds = %g <= 0" % (where, row["seconds"]))
        if not 0 <= row["barrier_share"] <= 1:
            errors.append("%s: barrier_share = %g outside [0, 1]"
                          % (where, row["barrier_share"]))
        if row["total_barriers"] < 0 or row["elided_barriers"] < 0:
            errors.append("%s: negative barrier count" % where)
        if row["elided_barriers"] > row["total_barriers"]:
            errors.append("%s: elided_barriers %d > total_barriers %d"
                          % (where, row["elided_barriers"],
                         row["total_barriers"]))
        if row["optimized_seconds"] < 0 or row["gflops"] < 0:
            errors.append("%s: negative optimized_seconds/gflops" % where)
    return errors


def validate_kernel_row(where, row):
    errors = []
    for field, types in KERNEL_ROW_FIELDS.items():
        if field not in row:
            errors.append("%s: missing field %r" % (where, field))
        elif not isinstance(row[field], types) or isinstance(
                row[field], bool):
            errors.append("%s: field %r has type %s"
                          % (where, field, type(row[field]).__name__))
    if errors:
        return errors
    if row["variant"] not in ("ref", "opt", "simd"):
        errors.append("%s: variant = %r not in ref/opt/simd"
                      % (where, row["variant"]))
    if row["region"] not in ("hot", "cold"):
        errors.append("%s: region = %r not in hot/cold"
                      % (where, row["region"]))
    if not row["stage"]:
        errors.append("%s: empty stage name" % where)
    if row["seconds"] <= 0:
        errors.append("%s: seconds = %g <= 0" % (where, row["seconds"]))
    if row["gflops"] < 0 or row["gbps"] < 0:
        errors.append("%s: negative gflops/gbps" % where)
    return errors


def load_manifest(path):
    """Workload names from `mpdata_cli list-workloads` output: the first
    whitespace-separated token of every non-empty line."""
    try:
        with open(path) as f:
            names = {line.split()[0] for line in f if line.split()}
    except OSError as e:
        print("FAIL %s: unreadable manifest: %s" % (path, e))
        return None
    if not names:
        print("FAIL %s: empty workload manifest" % path)
        return None
    return names


def main(argv):
    global MANIFEST
    files = []
    for arg in argv[1:]:
        if arg.startswith("--manifest="):
            MANIFEST = load_manifest(arg[len("--manifest="):])
            if MANIFEST is None:
                return 1
        else:
            files.append(arg)
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        errors = validate(path)
        if errors:
            failures += 1
            for e in errors:
                print("FAIL " + e)
        else:
            print("OK   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
