#!/usr/bin/env python3
"""Validates icores JSON records, dispatching on their "schema" field.

Usage: validate_bench_json.py FILE [FILE...]

Accepted schemas:

  icores.bench.v1 (bench/BenchUtil.cpp writeBenchJson and
  writeKernelBenchJson):
  {
    "schema": "icores.bench.v1",
    "bench": "<name>",
    "rows": [...]
  }

  icores.bench.v2 (bench/BenchUtil.cpp writeTemporalBenchJson): same
  envelope, with temporal-blocking traffic rows:
      {"strategy": str, "temporal_depth": int >= 1,
       "measured_bytes_per_step": int > 0,
       "projected_bytes_per_step": int > 0, "seconds": float > 0}

  icores.exec_stats.v2 / icores.exec_stats.v3 (--profile output of
  mpdata_cli, src/exec/ExecStats.cpp writeJson). v3 extends v2 with the
  fault-injection counters "faults_injected", "retries", "timeouts" and
  "recovered" (ints >= 0); v2 documents remain valid without them.

Two row shapes share the schema, distinguished by which field leads:

  strategy rows (bench_table3/4):
      {"strategy": str, "p": int >= 1, "seconds": float > 0,
       "barrier_share": float in [0, 1], "total_barriers": int >= 0,
       "elided_barriers": int >= 0 (<= total_barriers),
       "optimized_seconds": float >= 0, "gflops": float >= 0}

  kernel-roofline rows (bench_kernels; has a "variant" field):
      {"variant": "ref"|"opt"|"simd", "stage": str,
       "region": "hot"|"cold", "seconds": float > 0,
       "gflops": float >= 0, "gbps": float >= 0}

Exits nonzero listing every violation found.
"""

import json
import sys

ROW_FIELDS = {
    "strategy": str,
    "p": int,
    "seconds": (int, float),
    "barrier_share": (int, float),
    "total_barriers": int,
    "elided_barriers": int,
    "optimized_seconds": (int, float),
    "gflops": (int, float),
}

KERNEL_ROW_FIELDS = {
    "variant": str,
    "stage": str,
    "region": str,
    "seconds": (int, float),
    "gflops": (int, float),
    "gbps": (int, float),
}


# Common to exec_stats v2 and v3; v3 adds the fault counters.
EXEC_STATS_FIELDS = {
    "enabled": bool,
    "steps": int,
    "run_calls": int,
    "wall_seconds": (int, float),
    "kernel_seconds": (int, float),
    "team_barrier_wait_seconds": (int, float),
    "barrier_share": (int, float),
    "elided_barriers": int,
    "spin_wakes": int,
    "sleep_wakes": int,
    "islands": list,
}

EXEC_STATS_V3_FAULT_FIELDS = ("faults_injected", "retries", "timeouts",
                              "recovered")

TEMPORAL_ROW_FIELDS = {
    "strategy": str,
    "temporal_depth": int,
    "measured_bytes_per_step": int,
    "projected_bytes_per_step": int,
    "seconds": (int, float),
}


def validate_temporal_row(where, row):
    errors = []
    for field, types in TEMPORAL_ROW_FIELDS.items():
        if field not in row:
            errors.append("%s: missing field %r" % (where, field))
        elif not isinstance(row[field], types) or isinstance(
                row[field], bool):
            errors.append("%s: field %r has type %s"
                          % (where, field, type(row[field]).__name__))
    if errors:
        return errors
    if not row["strategy"]:
        errors.append("%s: empty strategy name" % where)
    if row["temporal_depth"] < 1:
        errors.append("%s: temporal_depth = %d < 1"
                      % (where, row["temporal_depth"]))
    for field in ("measured_bytes_per_step", "projected_bytes_per_step"):
        if row[field] <= 0:
            errors.append("%s: %s = %d <= 0" % (where, field, row[field]))
    if row["seconds"] <= 0:
        errors.append("%s: seconds = %g <= 0" % (where, row["seconds"]))
    return errors


def validate_temporal(path, doc):
    errors = []
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("%s: missing or empty 'bench' name" % path)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("%s: 'rows' must be a non-empty list" % path)
        return errors
    for i, row in enumerate(rows):
        where = "%s: rows[%d]" % (path, i)
        if not isinstance(row, dict):
            errors.append("%s: not an object" % where)
            continue
        errors.extend(validate_temporal_row(where, row))
    return errors


def validate_exec_stats(path, doc):
    version = doc.get("schema").rsplit(".", 1)[1]
    errors = []
    for field, types in EXEC_STATS_FIELDS.items():
        if field not in doc:
            errors.append("%s: missing field %r" % (path, field))
        elif not isinstance(doc[field], types) or (
                types is not bool and isinstance(doc[field], bool)):
            errors.append("%s: field %r has type %s"
                          % (path, field, type(doc[field]).__name__))
    for field in EXEC_STATS_V3_FAULT_FIELDS:
        if version == "v2":
            continue  # v2 predates the fault counters.
        if field not in doc:
            errors.append("%s: v3 requires field %r" % (path, field))
        elif not isinstance(doc[field], int) or isinstance(doc[field], bool):
            errors.append("%s: field %r must be an int"
                          % (path, field))
        elif doc[field] < 0:
            errors.append("%s: field %r = %d < 0" % (path, field, doc[field]))
    if errors:
        return errors
    if not 0 <= doc["barrier_share"] <= 1:
        errors.append("%s: barrier_share = %g outside [0, 1]"
                      % (path, doc["barrier_share"]))
    for field in ("steps", "run_calls", "elided_barriers", "spin_wakes",
                  "sleep_wakes"):
        if doc[field] < 0:
            errors.append("%s: field %r = %d < 0" % (path, field, doc[field]))
    # Additive v3 fields from the temporal-blocking work: optional, but
    # when present they must be sane.
    if "temporal_depth" in doc and (
            not isinstance(doc["temporal_depth"], int)
            or isinstance(doc["temporal_depth"], bool)
            or doc["temporal_depth"] < 1):
        errors.append("%s: temporal_depth must be an int >= 1" % path)
    for field in ("shared_read_bytes", "shared_written_bytes"):
        if field in doc and (not isinstance(doc[field], int)
                             or isinstance(doc[field], bool)
                             or doc[field] < 0):
            errors.append("%s: %s must be an int >= 0" % (path, field))
    for i, island in enumerate(doc["islands"]):
        where = "%s: islands[%d]" % (path, i)
        if not isinstance(island, dict):
            errors.append("%s: not an object" % where)
            continue
        for field in ("island", "num_threads", "stages"):
            if field not in island:
                errors.append("%s: missing field %r" % (where, field))
    return errors


def validate(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["%s: unreadable or invalid JSON: %s" % (path, e)]

    schema = doc.get("schema")
    if schema in ("icores.exec_stats.v2", "icores.exec_stats.v3"):
        return validate_exec_stats(path, doc)
    if schema == "icores.bench.v2":
        return validate_temporal(path, doc)
    if schema != "icores.bench.v1":
        errors.append("%s: schema is %r, want 'icores.bench.v1', "
                      "'icores.bench.v2' or "
                      "'icores.exec_stats.v2'/'icores.exec_stats.v3'"
                      % (path, schema))
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("%s: missing or empty 'bench' name" % path)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("%s: 'rows' must be a non-empty list" % path)
        return errors

    for i, row in enumerate(rows):
        where = "%s: rows[%d]" % (path, i)
        if not isinstance(row, dict):
            errors.append("%s: not an object" % where)
            continue
        if "variant" in row:
            errors.extend(validate_kernel_row(where, row))
            continue
        for field, types in ROW_FIELDS.items():
            if field not in row:
                errors.append("%s: missing field %r" % (where, field))
            elif not isinstance(row[field], types) or isinstance(
                    row[field], bool):
                errors.append("%s: field %r has type %s"
                              % (where, field, type(row[field]).__name__))
        if errors and errors[-1].startswith(where):
            continue
        if row["p"] < 1:
            errors.append("%s: p = %d < 1" % (where, row["p"]))
        if row["seconds"] <= 0:
            errors.append("%s: seconds = %g <= 0" % (where, row["seconds"]))
        if not 0 <= row["barrier_share"] <= 1:
            errors.append("%s: barrier_share = %g outside [0, 1]"
                          % (where, row["barrier_share"]))
        if row["total_barriers"] < 0 or row["elided_barriers"] < 0:
            errors.append("%s: negative barrier count" % where)
        if row["elided_barriers"] > row["total_barriers"]:
            errors.append("%s: elided_barriers %d > total_barriers %d"
                          % (where, row["elided_barriers"],
                         row["total_barriers"]))
        if row["optimized_seconds"] < 0 or row["gflops"] < 0:
            errors.append("%s: negative optimized_seconds/gflops" % where)
    return errors


def validate_kernel_row(where, row):
    errors = []
    for field, types in KERNEL_ROW_FIELDS.items():
        if field not in row:
            errors.append("%s: missing field %r" % (where, field))
        elif not isinstance(row[field], types) or isinstance(
                row[field], bool):
            errors.append("%s: field %r has type %s"
                          % (where, field, type(row[field]).__name__))
    if errors:
        return errors
    if row["variant"] not in ("ref", "opt", "simd"):
        errors.append("%s: variant = %r not in ref/opt/simd"
                      % (where, row["variant"]))
    if row["region"] not in ("hot", "cold"):
        errors.append("%s: region = %r not in hot/cold"
                      % (where, row["region"]))
    if not row["stage"]:
        errors.append("%s: empty stage name" % where)
    if row["seconds"] <= 0:
        errors.append("%s: seconds = %g <= 0" % (where, row["seconds"]))
    if row["gflops"] < 0 or row["gbps"] < 0:
        errors.append("%s: negative gflops/gbps" % where)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        errors = validate(path)
        if errors:
            failures += 1
            for e in errors:
                print("FAIL " + e)
        else:
            print("OK   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
