//===- tests/mpdata_program_test.cpp - MPDATA IR structure tests ----------===//

#include "mpdata/MpdataProgram.h"

#include <gtest/gtest.h>

using namespace icores;

TEST(MpdataProgramTest, HasSeventeenStages) {
  MpdataProgram M = buildMpdataProgram();
  EXPECT_EQ(M.Program.numStages(), 17u);
}

TEST(MpdataProgramTest, Validates) {
  MpdataProgram M = buildMpdataProgram();
  std::string Error;
  EXPECT_TRUE(M.Program.validate(Error)) << Error;
}

TEST(MpdataProgramTest, FiveInputsOneOutput) {
  // The paper (Sect. 3.1): a step loads five 3D input arrays and saves one
  // output array.
  MpdataProgram M = buildMpdataProgram();
  EXPECT_EQ(M.Program.stepInputs().size(), 5u);
  EXPECT_EQ(M.Program.stepOutputs().size(), 1u);
  EXPECT_EQ(M.Program.stepOutputs()[0], M.XOut);
}

TEST(MpdataProgramTest, StageOrder) {
  MpdataProgram M = buildMpdataProgram();
  EXPECT_EQ(M.SFlux1, 0);
  EXPECT_EQ(M.SUpwind, 3);
  EXPECT_EQ(M.SMinMax, 4);
  EXPECT_EQ(M.SVel1, 5);
  EXPECT_EQ(M.SCp, 8);
  EXPECT_EQ(M.SLim1, 10);
  EXPECT_EQ(M.SGFlux1, 13);
  EXPECT_EQ(M.SOut, 16);
}

TEST(MpdataProgramTest, MinMaxIsTheFusedMultiOutputStage) {
  MpdataProgram M = buildMpdataProgram();
  const StageDef &S = M.Program.stage(M.SMinMax);
  ASSERT_EQ(S.Outputs.size(), 2u);
  EXPECT_EQ(M.Program.producerOf(M.Mx), M.SMinMax);
  EXPECT_EQ(M.Program.producerOf(M.Mn), M.SMinMax);
}

TEST(MpdataProgramTest, HeterogeneousPatterns) {
  // "Heterogeneous stencils": the stages genuinely differ in reach.
  MpdataProgram M = buildMpdataProgram();
  const StageDef &Flux = M.Program.stage(M.SFlux1);
  const StageDef &Vel = M.Program.stage(M.SVel1);
  // flux1 reads xIn at {-1,0} along i only.
  EXPECT_EQ(Flux.Inputs[0].MinOff, (std::array<int, 3>{-1, 0, 0}));
  EXPECT_EQ(Flux.Inputs[0].MaxOff, (std::array<int, 3>{0, 0, 0}));
  // pseudoVel1 reads actual across all three dimensions.
  EXPECT_EQ(Vel.Inputs[0].MinOff, (std::array<int, 3>{-1, -1, -1}));
  EXPECT_EQ(Vel.Inputs[0].MaxOff, (std::array<int, 3>{0, 1, 1}));
}

TEST(MpdataProgramTest, FlopWeightsArePositiveAndSubstantial) {
  MpdataProgram M = buildMpdataProgram();
  for (unsigned S = 0; S != M.Program.numStages(); ++S)
    EXPECT_GT(M.Program.stage(static_cast<StageId>(S)).FlopsPerPoint, 0);
  // MPDATA with the non-oscillatory option is flop-heavy: a couple of
  // hundred flops per point per step.
  EXPECT_GE(M.Program.totalFlopsPerPoint(), 150);
  EXPECT_LE(M.Program.totalFlopsPerPoint(), 400);
}

TEST(MpdataProgramTest, DimensionSymmetry) {
  // The three flux stages are permutations of each other.
  MpdataProgram M = buildMpdataProgram();
  for (int D = 0; D != 3; ++D) {
    StageId Id = D == 0 ? M.SFlux1 : (D == 1 ? M.SFlux2 : M.SFlux3);
    const StageDef &S = M.Program.stage(Id);
    EXPECT_EQ(S.Inputs[0].MinOff[D], -1);
    EXPECT_EQ(S.Inputs[0].MaxOff[D], 0);
    EXPECT_EQ(S.FlopsPerPoint, M.Program.stage(M.SFlux1).FlopsPerPoint);
  }
}
