//===- tests/property_test.cpp - Randomized invariant sweeps --------------===//
//
// Property-style tests over randomized inputs: Box3 algebra laws, halo
// analysis and high-water-mark planner invariants under random shapes,
// extra-element monotonicity, and simulator monotonicity in machine
// parameters.
//
//===----------------------------------------------------------------------===//

#include "core/BlockPlanner.h"
#include "core/Partition.h"
#include "core/PlanBuilder.h"
#include "core/PlanVerifier.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/Simulator.h"
#include "stencil/ExtraElements.h"
#include "stencil/HaloAnalysis.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace icores;

namespace {

/// The sweep seed: each test's default, unless ICORES_PROPERTY_SEED is
/// set, which overrides every sweep for deterministic reproduction of a
/// reported failure. Pair with seedTrace() below so a failing assertion
/// always names the seed that produced it.
uint64_t propertySeed(uint64_t Default) {
  if (const char *Env = std::getenv("ICORES_PROPERTY_SEED"))
    return std::strtoull(Env, nullptr, 0);
  return Default;
}

/// "seed=N (rerun with ICORES_PROPERTY_SEED=N)" for SCOPED_TRACE, so any
/// failure inside the sweep prints how to reproduce it.
std::string seedTrace(uint64_t Seed) {
  return "seed=" + std::to_string(Seed) +
         " (rerun with ICORES_PROPERTY_SEED=" + std::to_string(Seed) + ")";
}

Box3 randomBox(SplitMix64 &Rng, int Span) {
  Box3 B;
  for (int D = 0; D != 3; ++D) {
    int Lo = static_cast<int>(Rng.nextBounded(static_cast<uint64_t>(Span))) -
             Span / 2;
    int Extent = static_cast<int>(Rng.nextBounded(8));
    B.Lo[D] = Lo;
    B.Hi[D] = Lo + Extent;
  }
  return B;
}

} // namespace

TEST(BoxProperties, IntersectionLaws) {
  uint64_t Seed = propertySeed(101);
  SCOPED_TRACE(seedTrace(Seed));
  SplitMix64 Rng(Seed);
  for (int Trial = 0; Trial != 500; ++Trial) {
    Box3 A = randomBox(Rng, 12);
    Box3 B = randomBox(Rng, 12);
    Box3 C = randomBox(Rng, 12);
    // Commutativity (on point counts; empty representations differ).
    EXPECT_EQ(A.intersect(B).numPoints(), B.intersect(A).numPoints());
    // Associativity.
    EXPECT_EQ(A.intersect(B).intersect(C).numPoints(),
              A.intersect(B.intersect(C)).numPoints());
    // Intersection is contained in both (when non-empty).
    Box3 I = A.intersect(B);
    if (!I.empty()) {
      EXPECT_TRUE(A.containsBox(I));
      EXPECT_TRUE(B.containsBox(I));
    }
    // Idempotence.
    EXPECT_EQ(A.intersect(A), A);
  }
}

TEST(BoxProperties, UnionBounds) {
  uint64_t Seed = propertySeed(202);
  SCOPED_TRACE(seedTrace(Seed));
  SplitMix64 Rng(Seed);
  for (int Trial = 0; Trial != 500; ++Trial) {
    Box3 A = randomBox(Rng, 12);
    Box3 B = randomBox(Rng, 12);
    Box3 U = A.unionWith(B);
    if (!A.empty()) {
      EXPECT_TRUE(U.containsBox(A));
    }
    if (!B.empty()) {
      EXPECT_TRUE(U.containsBox(B));
    }
    // The bounding box is at least as big as each operand.
    EXPECT_GE(U.numPoints(), std::max(A.numPoints(), B.numPoints()));
  }
}

TEST(BoxProperties, GrowShrinkRoundTrip) {
  uint64_t Seed = propertySeed(303);
  SCOPED_TRACE(seedTrace(Seed));
  SplitMix64 Rng(Seed);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Box3 A = randomBox(Rng, 10);
    if (A.empty())
      continue;
    int M = static_cast<int>(Rng.nextBounded(3)) + 1;
    EXPECT_EQ(A.grownAll(M).grownAll(-M), A);
  }
}

TEST(HaloProperties, RequirementsMonotoneInTarget) {
  // A larger target never needs smaller stage regions.
  MpdataProgram M = buildMpdataProgram();
  uint64_t Seed = propertySeed(404);
  SCOPED_TRACE(seedTrace(Seed));
  SplitMix64 Rng(Seed);
  for (int Trial = 0; Trial != 50; ++Trial) {
    int NI = 8 + static_cast<int>(Rng.nextBounded(24));
    int NJ = 8 + static_cast<int>(Rng.nextBounded(24));
    int NK = 8 + static_cast<int>(Rng.nextBounded(24));
    Box3 Small = Box3::fromExtents(NI, NJ, NK);
    Box3 Large = Small.grownAll(static_cast<int>(Rng.nextBounded(4)) + 1);
    RegionRequirements RS = computeRequirements(M.Program, Small);
    RegionRequirements RL = computeRequirements(M.Program, Large);
    for (unsigned S = 0; S != M.Program.numStages(); ++S)
      EXPECT_TRUE(RL.StageRegion[S].containsBox(RS.StageRegion[S]));
  }
}

TEST(HaloProperties, RequirementsTranslationInvariant) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Base = Box3::fromExtents(16, 12, 8);
  RegionRequirements R0 = computeRequirements(M.Program, Base);
  uint64_t Seed = propertySeed(505);
  SCOPED_TRACE(seedTrace(Seed));
  SplitMix64 Rng(Seed);
  for (int Trial = 0; Trial != 20; ++Trial) {
    int DI = static_cast<int>(Rng.nextBounded(20)) - 10;
    int DJ = static_cast<int>(Rng.nextBounded(20)) - 10;
    int DK = static_cast<int>(Rng.nextBounded(20)) - 10;
    RegionRequirements RT =
        computeRequirements(M.Program, Base.shifted(DI, DJ, DK));
    for (unsigned S = 0; S != M.Program.numStages(); ++S)
      EXPECT_EQ(RT.StageRegion[S], R0.StageRegion[S].shifted(DI, DJ, DK));
  }
}

TEST(ExtraElementProperties, MonotoneInPartCount) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = Box3::fromExtents(96, 48, 16);
  int64_t Prev = -1;
  for (int Parts = 1; Parts <= 12; ++Parts) {
    ExtraElementsReport R = countExtraElements(
        M.Program, Target, partition1D(Target, Parts, 0));
    EXPECT_GT(R.extraPoints(), Prev);
    Prev = R.extraPoints();
  }
}

TEST(ExtraElementProperties, IndependentOfUnsplitExtent) {
  // Boundary overhead scales with the boundary area, not with the extent
  // along the split dimension: doubling NI leaves the per-boundary extra
  // count unchanged.
  MpdataProgram M = buildMpdataProgram();
  Box3 Short = Box3::fromExtents(64, 32, 16);
  Box3 Long = Box3::fromExtents(128, 32, 16);
  int64_t ExtraShort =
      countExtraElements(M.Program, Short, partition1D(Short, 2, 0))
          .extraPoints();
  int64_t ExtraLong =
      countExtraElements(M.Program, Long, partition1D(Long, 2, 0))
          .extraPoints();
  EXPECT_EQ(ExtraShort, ExtraLong);
}

TEST(PlannerProperties, RandomPlansAlwaysVerify) {
  MpdataProgram M = buildMpdataProgram();
  uint64_t Seed = propertySeed(606);
  SCOPED_TRACE(seedTrace(Seed));
  SplitMix64 Rng(Seed);
  for (int Trial = 0; Trial != 30; ++Trial) {
    MachineModel Machine = makeToyMachine();
    Machine.NumSockets = 1 + static_cast<int>(Rng.nextBounded(6));
    Machine.LlcBytesPerSocket =
        (1ll << 18) << Rng.nextBounded(6); // 256 KiB .. 8 MiB.
    int NI = 16 + static_cast<int>(Rng.nextBounded(48));
    int NJ = 8 + static_cast<int>(Rng.nextBounded(24));
    int NK = 4 + static_cast<int>(Rng.nextBounded(12));
    Box3 Target = Box3::fromExtents(NI, NJ, NK);

    PlanConfig Config;
    Config.Strat = static_cast<Strategy>(Rng.nextBounded(3));
    Config.Sockets = 1 + static_cast<int>(Rng.nextBounded(
                             static_cast<uint64_t>(Machine.NumSockets)));
    Config.Variant = Rng.nextBounded(2) ? PartitionVariant::A
                                        : PartitionVariant::B;
    if (Config.Strat == Strategy::IslandsOfCores &&
        Config.Sockets > Target.extent(partitionDim(Config.Variant)))
      continue;
    ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
    PlanVerification V = verifyPlan(Plan, M.Program);
    EXPECT_TRUE(V.Ok) << "trial " << Trial << " strategy "
                      << strategyName(Config.Strat) << ": " << V.FirstError;
  }
}

TEST(SimProperties, FasterHardwareNeverHurts) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Grid = Box3::fromExtents(512, 256, 32);
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 8;

  MachineModel Base = makeSgiUv2000();
  ExecutionPlan Plan = buildPlan(M.Program, Grid, Base, Config);
  double BaseTime = simulate(Plan, M.Program, Base, 10).TotalSeconds;

  auto timeWith = [&](auto Mutate) {
    MachineModel Machine = makeSgiUv2000();
    Mutate(Machine);
    // Plans depend only on cache budget; rebuild to stay consistent.
    ExecutionPlan P = buildPlan(M.Program, Grid, Machine, Config);
    return simulate(P, M.Program, Machine, 10).TotalSeconds;
  };

  EXPECT_LE(timeWith([](MachineModel &Machine) {
              Machine.DramBandwidthPerSocket *= 2.0;
            }),
            BaseTime + 1e-12);
  EXPECT_LE(timeWith([](MachineModel &Machine) { Machine.FreqGHz *= 2.0; }),
            BaseTime + 1e-12);
  EXPECT_LE(timeWith([](MachineModel &Machine) {
              Machine.BarrierBase /= 4.0;
              Machine.BarrierPerSocket /= 4.0;
              Machine.BarrierQuadratic /= 4.0;
            }),
            BaseTime + 1e-12);
  EXPECT_LE(timeWith([](MachineModel &Machine) {
              Machine.LinkBandwidth *= 4.0;
            }),
            BaseTime + 1e-12);
}

TEST(SimProperties, BiggerGridsTakeLonger) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeSgiUv2000();
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 4;
  double Prev = 0.0;
  for (int Scale : {1, 2, 4}) {
    Box3 Grid = Box3::fromExtents(128 * Scale, 64, 32);
    ExecutionPlan Plan = buildPlan(M.Program, Grid, Machine, Config);
    double T = simulate(Plan, M.Program, Machine, 10).TotalSeconds;
    EXPECT_GT(T, Prev);
    Prev = T;
  }
}

TEST(SimProperties, WriteAllocateCostsTraffic) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Grid = Box3::fromExtents(256, 128, 32);
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 1;
  MachineModel NonTemporal = makeSgiUv2000();
  MachineModel WriteAllocate = makeSgiUv2000();
  WriteAllocate.NonTemporalStores = false;
  ExecutionPlan Plan = buildPlan(M.Program, Grid, NonTemporal, Config);
  SimResult A = simulate(Plan, M.Program, NonTemporal, 10);
  SimResult B = simulate(Plan, M.Program, WriteAllocate, 10);
  EXPECT_GT(B.DramBytesPerStep, A.DramBytesPerStep);
  EXPECT_GE(B.TotalSeconds, A.TotalSeconds);
}
