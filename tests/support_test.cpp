//===- tests/support_test.cpp - Support-library unit tests ----------------===//

#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/MathUtil.h"
#include "support/OStream.h"
#include "support/Random.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace icores;

TEST(Format, FormatString) {
  EXPECT_EQ(formatString("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(formatString("%s", "plain"), "plain");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(Format, FormatFixed) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(10.0, 0), "10");
  EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
}

TEST(Format, FormatPercent) {
  EXPECT_EQ(formatPercent(0.254, 1), "25.4");
  EXPECT_EQ(formatPercent(1.0, 0), "100");
  EXPECT_EQ(formatPercent(0.0, 2), "0.00");
}

TEST(Format, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(1536), "1.50 KiB");
  EXPECT_EQ(formatBytes(3ull << 30), "3.00 GiB");
}

TEST(Format, FormatSeconds) {
  EXPECT_EQ(formatSeconds(9.0), "9.00 s");
  EXPECT_EQ(formatSeconds(0.0031), "3.10 ms");
  EXPECT_EQ(formatSeconds(2.5e-6), "2.50 us");
}

TEST(OStreamTest, StringSink) {
  std::string Buf;
  StringOStream OS(Buf);
  OS << "x=" << 42 << ", f=" << 1.5 << ", b=" << true << '\n';
  EXPECT_EQ(Buf, "x=42, f=1.5, b=true\n");
}

TEST(OStreamTest, IntegerWidths) {
  std::string Buf;
  StringOStream OS(Buf);
  OS << static_cast<int64_t>(-5) << ' ' << static_cast<uint64_t>(7) << ' '
     << 123u << ' ' << 9l;
  EXPECT_EQ(Buf, "-5 7 123 9");
}

TEST(TableTest, AlignedRendering) {
  TablePrinter Table({"name", "value"});
  Table.addRow({"a", "1"});
  Table.addRow({"longer", "22"});
  std::string Out = Table.toString();
  EXPECT_NE(Out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(Out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(Table.numRows(), 2u);
  EXPECT_EQ(Table.numColumns(), 2u);
}

TEST(TableTest, CsvRendering) {
  TablePrinter Table({"a", "b"});
  Table.addRow({"1", "2"});
  std::string Buf;
  StringOStream OS(Buf);
  Table.printCsv(OS);
  EXPECT_EQ(Buf, "a,b\n1,2\n");
}

namespace {

/// Minimal RFC 4180 parser: splits \p Csv into rows of unescaped fields.
std::vector<std::vector<std::string>> parseCsv(const std::string &Csv) {
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::string> Row;
  std::string Field;
  bool Quoted = false;
  for (size_t I = 0; I != Csv.size(); ++I) {
    char C = Csv[I];
    if (Quoted) {
      if (C == '"') {
        if (I + 1 != Csv.size() && Csv[I + 1] == '"') {
          Field += '"';
          ++I;
        } else {
          Quoted = false;
        }
      } else {
        Field += C;
      }
    } else if (C == '"') {
      Quoted = true;
    } else if (C == ',') {
      Row.push_back(std::move(Field));
      Field.clear();
    } else if (C == '\n') {
      Row.push_back(std::move(Field));
      Field.clear();
      Rows.push_back(std::move(Row));
      Row.clear();
    } else {
      Field += C;
    }
  }
  return Rows;
}

} // namespace

TEST(TableTest, CsvQuotesAndEscapesSpecialCells) {
  // Cells with commas, quotes and newlines must round-trip through a
  // compliant CSV parser; the emitter used to print them verbatim, which
  // shifted every following column.
  TablePrinter Table({"label", "note", "plain"});
  Table.addRow({"islands, 2 per socket", "says \"hi\"", "ok"});
  Table.addRow({"line\nbreak", ",,,", "\""});
  std::string Buf;
  StringOStream OS(Buf);
  Table.printCsv(OS);

  auto Rows = parseCsv(Buf);
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Rows[0],
            (std::vector<std::string>{"label", "note", "plain"}));
  EXPECT_EQ(Rows[1], (std::vector<std::string>{"islands, 2 per socket",
                                               "says \"hi\"", "ok"}));
  EXPECT_EQ(Rows[2], (std::vector<std::string>{"line\nbreak", ",,,", "\""}));
  // Unquoted simple cells stay verbatim.
  EXPECT_EQ(Buf.substr(0, Buf.find('\n')), "label,note,plain");
}

TEST(TableTest, IncrementalRows) {
  TablePrinter Table({"c1", "c2", "c3"});
  Table.startRow();
  Table.appendCell("x");
  Table.appendCell("y");
  Table.appendCell("z");
  EXPECT_EQ(Table.numRows(), 1u);
}

TEST(CommandLineTest, ParsesKeyValues) {
  CommandLine CL;
  const char *Argv[] = {"prog", "--steps=50", "--grid=big", "--flag",
                        "positional"};
  std::string Error;
  ASSERT_TRUE(CL.parse(5, Argv, Error)) << Error;
  EXPECT_EQ(CL.getInt("steps", 0), 50);
  EXPECT_EQ(CL.getString("grid", ""), "big");
  EXPECT_TRUE(CL.getBool("flag", false));
  EXPECT_EQ(CL.getInt("missing", 7), 7);
  ASSERT_EQ(CL.positionalArgs().size(), 1u);
  EXPECT_EQ(CL.positionalArgs()[0], "positional");
}

TEST(CommandLineTest, RejectsUnknownRegisteredOptions) {
  CommandLine CL;
  CL.registerOption("known", "a known option");
  const char *Argv[] = {"prog", "--unknown=1"};
  std::string Error;
  EXPECT_FALSE(CL.parse(2, Argv, Error));
  EXPECT_NE(Error.find("unknown"), std::string::npos);
}

TEST(CommandLineTest, BoolParsing) {
  CommandLine CL;
  const char *Argv[] = {"prog", "--a=false", "--b=0", "--c=yes"};
  std::string Error;
  ASSERT_TRUE(CL.parse(4, Argv, Error));
  EXPECT_FALSE(CL.getBool("a", true));
  EXPECT_FALSE(CL.getBool("b", true));
  EXPECT_TRUE(CL.getBool("c", false));
}

TEST(CommandLineTest, DoubleParsing) {
  CommandLine CL;
  const char *Argv[] = {"prog", "--x=2.5"};
  std::string Error;
  ASSERT_TRUE(CL.parse(2, Argv, Error));
  EXPECT_DOUBLE_EQ(CL.getDouble("x", 0.0), 2.5);
}

TEST(RandomTest, DeterministicStream) {
  SplitMix64 A(42);
  SplitMix64 B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DoublesInUnitInterval) {
  SplitMix64 Rng(7);
  for (int I = 0; I != 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, RangeRespected) {
  SplitMix64 Rng(11);
  for (int I = 0; I != 1000; ++I) {
    double D = Rng.nextInRange(2.0, 5.0);
    EXPECT_GE(D, 2.0);
    EXPECT_LT(D, 5.0);
  }
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(ceilDiv(10, 3), 4);
  EXPECT_EQ(ceilDiv(9, 3), 3);
  EXPECT_EQ(ceilDiv(1, 5), 1);
  EXPECT_EQ(ceilDiv(0, 5), 0);
}

TEST(MathUtilTest, ChunkPartitionCoversExactly) {
  for (int Total : {1, 7, 16, 100})
    for (int Parts : {1, 2, 3, 7}) {
      if (Parts > Total)
        continue;
      int64_t Sum = 0;
      for (int P = 0; P != Parts; ++P) {
        EXPECT_EQ(chunkBegin(Total, Parts, P) + chunkSize(Total, Parts, P),
                  chunkBegin(Total, Parts, P + 1));
        Sum += chunkSize(Total, Parts, P);
      }
      EXPECT_EQ(Sum, Total);
    }
}

TEST(MathUtilTest, ChunkSizesNearlyEqual) {
  for (int P = 0; P != 5; ++P) {
    int64_t Size = chunkSize(17, 5, P);
    EXPECT_TRUE(Size == 3 || Size == 4);
  }
}
