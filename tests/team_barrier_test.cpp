//===- tests/team_barrier_test.cpp - Combining-tree barrier tests ---------===//
//
// Correctness of exec/TeamBarrier under every wait policy: rendezvous
// semantics (no thread passes until all arrive, memory effects visible
// after release), immediate reusability across many rounds, uneven tree
// shapes (team sizes that do not fill the arity-4 nodes), and the wake
// reporting that feeds ExecStats' spin-vs-sleep counters.
//
//===----------------------------------------------------------------------===//

#include "exec/TeamBarrier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

using namespace icores;

namespace {

struct PolicyCase {
  TeamBarrier::WaitPolicy Policy;
  int SpinLimit;
  const char *Name;
};

class TeamBarrierPolicy : public ::testing::TestWithParam<PolicyCase> {};

} // namespace

TEST_P(TeamBarrierPolicy, SingleThreadReturnsImmediately) {
  TeamBarrier B(1, GetParam().Policy, GetParam().SpinLimit);
  for (int Round = 0; Round != 100; ++Round)
    EXPECT_EQ(B.arriveAndWait(0), TeamBarrier::Wake::Spin)
        << "the sole arriver publishes the epoch itself";
}

TEST_P(TeamBarrierPolicy, RendezvousIsCorrectAcrossRounds) {
  // Team sizes straddling the arity-4 node boundaries: 2 (one partial
  // leaf), 5 (two leaves, one singleton), 13 (two tree levels, last leaf
  // holding a single thread).
  for (int N : {2, 5, 13}) {
    // Pure spinners on an oversubscribed host progress only by
    // preemption; keep their round count modest.
    const int Rounds =
        GetParam().Policy == TeamBarrier::WaitPolicy::Spin ? 25 : 200;
    TeamBarrier B(N, GetParam().Policy, GetParam().SpinLimit);
    std::vector<int64_t> Values(static_cast<size_t>(N), 0);
    std::atomic<int> Mismatches{0};

    auto Body = [&](int T) {
      for (int64_t Round = 0; Round != Rounds; ++Round) {
        // Phase 1: publish this thread's contribution; the barrier must
        // make it visible to everyone before phase 2 reads it.
        Values[static_cast<size_t>(T)] = Round * N + T;
        B.arriveAndWait(T);
        int64_t Sum = 0;
        for (int I = 0; I != N; ++I)
          Sum += Values[static_cast<size_t>(I)];
        int64_t Want = Round * N * N + N * (N - 1) / 2;
        if (Sum != Want)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
        // Phase 2 barrier: nobody starts the next round's writes while a
        // straggler still sums this round's values.
        B.arriveAndWait(T);
      }
    };
    std::vector<std::thread> Threads;
    for (int T = 0; T != N; ++T)
      Threads.emplace_back(Body, T);
    for (std::thread &Th : Threads)
      Th.join();
    EXPECT_EQ(Mismatches.load(), 0) << "team size " << N;
  }
}

TEST_P(TeamBarrierPolicy, WakeReportingIsConsistent) {
  constexpr int N = 4, Rounds = 50;
  TeamBarrier B(N, GetParam().Policy, GetParam().SpinLimit);
  std::atomic<int64_t> SpinWakes{0}, SleepWakes{0};
  auto Body = [&](int T) {
    for (int Round = 0; Round != Rounds; ++Round) {
      if (B.arriveAndWait(T) == TeamBarrier::Wake::Spin)
        SpinWakes.fetch_add(1, std::memory_order_relaxed);
      else
        SleepWakes.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> Threads;
  for (int T = 0; T != N; ++T)
    Threads.emplace_back(Body, T);
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(SpinWakes.load() + SleepWakes.load(), int64_t{N} * Rounds);
  if (GetParam().Policy == TeamBarrier::WaitPolicy::Spin) {
    EXPECT_EQ(SleepWakes.load(), 0) << "spin policy never sleeps";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, TeamBarrierPolicy,
    ::testing::Values(
        PolicyCase{TeamBarrier::WaitPolicy::Spin,
                   TeamBarrier::DefaultSpinLimit, "spin"},
        PolicyCase{TeamBarrier::WaitPolicy::Hybrid,
                   TeamBarrier::DefaultSpinLimit, "hybrid"},
        // A tiny spin budget forces the futex path to actually run.
        PolicyCase{TeamBarrier::WaitPolicy::Hybrid, 4, "hybrid_spin4"},
        PolicyCase{TeamBarrier::WaitPolicy::Block,
                   TeamBarrier::DefaultSpinLimit, "block"}),
    [](const ::testing::TestParamInfo<PolicyCase> &Info) {
      return Info.param.Name;
    });

TEST(TeamBarrierTest, StaggeredArrivalsStillRelease) {
  // One deliberately slow thread per round: everyone else must reach the
  // sleep path (hybrid, tiny spin budget) and still be released.
  constexpr int N = 3, Rounds = 20;
  TeamBarrier B(N, TeamBarrier::WaitPolicy::Hybrid, /*SpinLimit=*/1);
  std::atomic<int> Released{0};
  auto Body = [&](int T) {
    for (int Round = 0; Round != Rounds; ++Round) {
      if (T == Round % N)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      B.arriveAndWait(T);
      Released.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> Threads;
  for (int T = 0; T != N; ++T)
    Threads.emplace_back(Body, T);
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Released.load(), N * Rounds);
}

TEST(TeamBarrierTest, PolicyNamesRoundTrip) {
  for (TeamBarrier::WaitPolicy P : {TeamBarrier::WaitPolicy::Spin,
                                    TeamBarrier::WaitPolicy::Hybrid,
                                    TeamBarrier::WaitPolicy::Block}) {
    TeamBarrier::WaitPolicy Parsed = TeamBarrier::WaitPolicy::Spin;
    EXPECT_TRUE(parseWaitPolicy(waitPolicyName(P), Parsed));
    EXPECT_EQ(Parsed, P);
  }
  TeamBarrier::WaitPolicy Out = TeamBarrier::WaitPolicy::Hybrid;
  EXPECT_FALSE(parseWaitPolicy("busy", Out));
  EXPECT_EQ(Out, TeamBarrier::WaitPolicy::Hybrid) << "unknown name leaves "
                                                     "Out alone";
}
