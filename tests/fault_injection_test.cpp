//===- tests/fault_injection_test.cpp - Chaos subsystem tests -------------===//
//
// The chaos/property harness of the fault-injection subsystem (src/fault):
// plan determinism, spec parsing, and the two runtime contracts — a
// recoverable fault plan must leave a distributed run bit-identical to the
// fault-free run, and an unrecoverable one must end in a structured
// icores::Error naming the injected fault, never in a deadlock (every
// blocking scenario runs under a Watchdog).
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "dist/DistributedSolver.h"
#include "exec/PlanExecutor.h"
#include "fault/FaultInjector.h"
#include "fault/Watchdog.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/Error.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace icores;

namespace {

/// Tight retry budget for chaos runs: the retransmit log answers a
/// re-request on the first timeout tick, so recoverable runs stay far
/// from exhaustion while lethal ones fail in well under a second.
CommTimeouts tightTimeouts() {
  CommTimeouts T;
  T.InitialBackoffSeconds = 2e-4;
  T.MaxBackoffSeconds = 4e-3;
  T.MaxRetries = 120;
  return T;
}

/// Small distributed workload shared by the property tests.
struct ChaosWorkload {
  int PI = 2, PJ = 1;
  int NI = 14, NJ = 8, NK = 4;
  int Steps = 1;

  DistributedInit init() const {
    DistributedInit Init;
    Init.State = [](int I, int J, int K) {
      SplitMix64 Rng(static_cast<uint64_t>(I * 7919 + J * 131 + K + 5));
      return Rng.nextInRange(0.2, 1.8);
    };
    Init.U1 = [](int, int, int) { return 0.3; };
    Init.U2 = [](int, int, int) { return -0.2; };
    Init.U3 = [](int, int, int) { return 0.15; };
    Init.H = [](int, int, int) { return 1.0; };
    return Init;
  }

  Box3 core() const { return Box3::fromExtents(NI, NJ, NK); }

  DistChaosResult run(FaultInjector *Injector) const {
    return runDistributedMpdataChaos(PI, PJ, NI, NJ, NK, Steps, init(),
                                     Injector,
                                     Injector ? tightTimeouts()
                                              : CommTimeouts());
  }
};

/// A random recoverable plan: every rate a pure function of the seed.
FaultPlan randomRecoverablePlan(uint64_t Seed) {
  FaultPlan Plan;
  Plan.Seed = Seed;
  SplitMix64 Rng(Seed ^ 0xfa017ULL);
  Plan.DropRate = Rng.nextInRange(0.0, 0.2);
  Plan.DelayRate = Rng.nextInRange(0.0, 0.2);
  Plan.DuplicateRate = Rng.nextInRange(0.0, 0.2);
  Plan.CorruptRate = Rng.nextInRange(0.0, 0.2);
  Plan.MaxDelaySeconds = 5e-4;
  return Plan;
}

std::vector<std::string> sortedTrace(const FaultInjector &Injector) {
  std::vector<std::string> T = Injector.trace();
  std::sort(T.begin(), T.end());
  return T;
}

bool mentions(const std::vector<std::string> &Entries, const char *What) {
  for (const std::string &E : Entries)
    if (E.find(What) != std::string::npos)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// FaultPlan: pure, seeded decisions.
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, DecisionsArePureFunctionsOfSeedAndSite) {
  FaultPlan Plan;
  Plan.Seed = 42;
  Plan.DropRate = Plan.DelayRate = Plan.DuplicateRate = Plan.CorruptRate =
      Plan.LoseRate = 0.3;
  Plan.StallRate = Plan.WakeRate = 0.3;
  for (uint64_t Seq = 0; Seq != 200; ++Seq) {
    MessageFaultDecision A = Plan.messageFaults(0, 1, 7, Seq, 16);
    MessageFaultDecision B = Plan.messageFaults(0, 1, 7, Seq, 16);
    EXPECT_EQ(A.Lose, B.Lose);
    EXPECT_EQ(A.Drop, B.Drop);
    EXPECT_EQ(A.Duplicate, B.Duplicate);
    EXPECT_EQ(A.CorruptBit, B.CorruptBit);
    EXPECT_EQ(A.DelaySeconds, B.DelaySeconds);
    EXPECT_EQ(Plan.workerStall(0, 1, 2, static_cast<int>(Seq)),
              Plan.workerStall(0, 1, 2, static_cast<int>(Seq)));
    EXPECT_EQ(Plan.spuriousWake(1, 0, Seq), Plan.spuriousWake(1, 0, Seq));
  }
}

TEST(FaultPlanTest, DifferentSeedsGiveDifferentFaultSets) {
  FaultPlan A, B;
  A.Seed = 1;
  B.Seed = 2;
  A.DropRate = B.DropRate = 0.5;
  int Differences = 0;
  for (uint64_t Seq = 0; Seq != 64; ++Seq)
    if (A.messageFaults(0, 1, 0, Seq, 8).Drop !=
        B.messageFaults(0, 1, 0, Seq, 8).Drop)
      ++Differences;
  EXPECT_GT(Differences, 0);
}

TEST(FaultPlanTest, AtMostOneMessageFaultClassPerSite) {
  FaultPlan Plan;
  Plan.Seed = 99;
  Plan.DropRate = Plan.DelayRate = Plan.DuplicateRate = Plan.CorruptRate =
      Plan.LoseRate = 0.9;
  for (uint64_t Seq = 0; Seq != 200; ++Seq) {
    MessageFaultDecision D = Plan.messageFaults(1, 0, 3, Seq, 8);
    int Classes = (D.Lose ? 1 : 0) + (D.Drop ? 1 : 0) +
                  (D.Duplicate ? 1 : 0) + (D.CorruptBit >= 0 ? 1 : 0) +
                  (D.DelaySeconds > 0 ? 1 : 0);
    EXPECT_LE(Classes, 1) << "seq " << Seq;
  }
}

TEST(FaultPlanTest, CorruptionSkipsEmptyPayloads) {
  FaultPlan Plan;
  Plan.Seed = 7;
  Plan.CorruptRate = 1.0;
  for (uint64_t Seq = 0; Seq != 32; ++Seq)
    EXPECT_EQ(Plan.messageFaults(0, 1, 0, Seq, 0).CorruptBit, -1);
  // And the bit index always lands inside the payload.
  for (uint64_t Seq = 0; Seq != 64; ++Seq) {
    int Bit = Plan.messageFaults(0, 1, 0, Seq, 3).CorruptBit;
    EXPECT_GE(Bit, 0);
    EXPECT_LT(Bit, 3 * 64);
  }
}

TEST(FaultPlanTest, InactivePlanInjectsNothing) {
  FaultPlan Plan;
  Plan.Seed = 5;
  EXPECT_FALSE(Plan.active());
  for (uint64_t Seq = 0; Seq != 32; ++Seq) {
    EXPECT_FALSE(Plan.messageFaults(0, 1, 0, Seq, 8).any());
    EXPECT_EQ(Plan.workerStall(0, 0, 0, static_cast<int>(Seq)), 0.0);
    EXPECT_FALSE(Plan.spuriousWake(0, 0, Seq));
  }
}

//===----------------------------------------------------------------------===//
// --chaos= spec parsing.
//===----------------------------------------------------------------------===//

TEST(FaultSpecTest, BareSeedArmsDefaultMixedPlan) {
  FaultPlan Plan;
  std::string Err;
  ASSERT_TRUE(parseFaultSpec("123", Plan, Err)) << Err;
  EXPECT_EQ(Plan.Seed, 123u);
  EXPECT_TRUE(Plan.active());
  EXPECT_EQ(Plan.LoseRate, 0.0); // Defaults stay recoverable.
}

TEST(FaultSpecTest, ExplicitRatesParse) {
  FaultPlan Plan;
  std::string Err;
  ASSERT_TRUE(parseFaultSpec("7,drop=0.5,corrupt=0.25,stall=0.1,"
                             "maxstall=0.002",
                             Plan, Err))
      << Err;
  EXPECT_EQ(Plan.Seed, 7u);
  EXPECT_EQ(Plan.DropRate, 0.5);
  EXPECT_EQ(Plan.CorruptRate, 0.25);
  EXPECT_EQ(Plan.StallRate, 0.1);
  EXPECT_EQ(Plan.MaxStallSeconds, 0.002);
  EXPECT_EQ(Plan.DelayRate, 0.0); // Explicit keys disable the defaults.
}

TEST(FaultSpecTest, MalformedSpecsAreRejected) {
  FaultPlan Plan;
  std::string Err;
  EXPECT_FALSE(parseFaultSpec("", Plan, Err));
  EXPECT_FALSE(parseFaultSpec("notanumber", Plan, Err));
  EXPECT_FALSE(parseFaultSpec("1,bogus=0.5", Plan, Err));
  EXPECT_FALSE(parseFaultSpec("1,drop", Plan, Err));
  EXPECT_FALSE(parseFaultSpec("1,drop=1.5", Plan, Err));
  EXPECT_FALSE(parseFaultSpec("1,drop=-0.5", Plan, Err));
}

TEST(FaultSpecTest, UnknownKeysNameTheValidOnes) {
  // A typo'd key must fail the whole parse (no "clean run reported as
  // chaos-enabled") and the error should teach the valid spelling.
  FaultPlan Plan;
  std::string Err;
  ASSERT_FALSE(parseFaultSpec("1,dorp=0.5", Plan, Err));
  EXPECT_NE(Err.find("unknown chaos field 'dorp'"), std::string::npos) << Err;
  EXPECT_NE(Err.find("drop"), std::string::npos) << Err;
}

TEST(FaultSpecTest, LatencyBoundsAloneKeepDefaultMixedPlan) {
  // maxdelay/maxstall only bound injected latencies; they are not rates.
  // A spec giving only bounds used to suppress the bare-seed defaults,
  // yielding an all-zero plan that injected nothing while the run banner
  // still said chaos was on.
  FaultPlan Plan;
  std::string Err;
  ASSERT_TRUE(parseFaultSpec("9,maxstall=0.001,maxdelay=0.004", Plan, Err))
      << Err;
  EXPECT_TRUE(Plan.active());
  EXPECT_EQ(Plan.DropRate, 0.05);
  EXPECT_EQ(Plan.StallRate, 0.05);
  EXPECT_EQ(Plan.MaxStallSeconds, 0.001);
  EXPECT_EQ(Plan.MaxDelaySeconds, 0.004);
}

TEST(FaultSpecTest, DuplicateKeysAreRejected) {
  FaultPlan Plan;
  std::string Err;
  ASSERT_FALSE(parseFaultSpec("1,drop=0.5,drop=0", Plan, Err));
  EXPECT_NE(Err.find("duplicate chaos field 'drop'"), std::string::npos)
      << Err;
  ASSERT_FALSE(parseFaultSpec("1,maxstall=0.1,maxstall=0.2", Plan, Err));
  EXPECT_NE(Err.find("duplicate"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Property: recovered distributed runs are bit-identical to fault-free.
//===----------------------------------------------------------------------===//

TEST(FaultInjectionProperty, HundredRandomPlansRecoverBitExactly) {
  Watchdog Dog(120.0, "fault_injection_test: 100-plan property sweep");
  ChaosWorkload W;
  DistChaosResult Baseline = W.run(nullptr);
  ASSERT_TRUE(Baseline.Ok);

  for (uint64_t Seed = 0; Seed != 100; ++Seed) {
    FaultPlan Plan = randomRecoverablePlan(Seed * 2654435761ULL + 17);
    FaultInjector Injector(Plan);
    DistChaosResult R = W.run(&Injector);
    ASSERT_TRUE(R.Ok) << "seed " << Seed << ": "
                      << R.RankErrors.front();
    ASSERT_EQ(R.State.maxAbsDiff(Baseline.State, W.core()), 0.0)
        << "seed " << Seed << " diverged under recoverable faults";
  }
}

TEST(FaultInjectionProperty, SameSeedReplaysIdenticalFaultMultiset) {
  Watchdog Dog(60.0, "fault_injection_test: replay determinism");
  ChaosWorkload W;
  for (uint64_t Seed : {3u, 17u, 4242u}) {
    FaultPlan Plan = randomRecoverablePlan(Seed);
    FaultInjector A(Plan), B(Plan);
    DistChaosResult RA = W.run(&A);
    DistChaosResult RB = W.run(&B);
    ASSERT_TRUE(RA.Ok && RB.Ok) << "seed " << Seed;
    EXPECT_EQ(sortedTrace(A), sortedTrace(B)) << "seed " << Seed;
    EXPECT_GT(A.stats().Injected, 0) << "seed " << Seed;
  }
}

TEST(FaultInjectionTest, UnrecoverableLossFailsStructurally) {
  Watchdog Dog(60.0, "fault_injection_test: lose-armed run");
  ChaosWorkload W;
  FaultPlan Plan;
  Plan.Seed = 11;
  Plan.LoseRate = 1.0; // Every message dies: exhaustion is certain.
  FaultInjector Injector(Plan);
  DistChaosResult R = W.run(&Injector);
  ASSERT_FALSE(R.Ok);
  ASSERT_FALSE(R.RankErrors.empty());
  EXPECT_NE(R.RankErrors.front().find("exhausted"), std::string::npos)
      << R.RankErrors.front();
  ASSERT_FALSE(R.ErrorTrace.empty());
  EXPECT_TRUE(mentions(R.ErrorTrace, "lose"));
  EXPECT_GT(R.Faults.Retries, 0);
}

TEST(FaultInjectionTest, PartialLossEitherRecoversOrNamesTheFault) {
  // The acceptance contract of tools/chaos_runner, in miniature: at a
  // moderate lose rate a run either completes bit-exactly or dies with a
  // structured error whose trace names a lost message.
  Watchdog Dog(60.0, "fault_injection_test: partial loss");
  ChaosWorkload W;
  DistChaosResult Baseline = W.run(nullptr);
  ASSERT_TRUE(Baseline.Ok);
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.DropRate = 0.1;
    Plan.LoseRate = 0.1;
    FaultInjector Injector(Plan);
    DistChaosResult R = W.run(&Injector);
    if (R.Ok)
      EXPECT_EQ(R.State.maxAbsDiff(Baseline.State, W.core()), 0.0)
          << "seed " << Seed;
    else
      EXPECT_TRUE(mentions(R.ErrorTrace, "lose")) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Executor chaos: stalls and spurious wakeups perturb timing, not data.
//===----------------------------------------------------------------------===//

namespace {

Array3D executorChaosRun(FaultInjector *Chaos,
                         TeamBarrier::WaitPolicy Policy) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 6, mpdataHaloDepth());
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = 2;
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  ExecutionPlan Plan =
      buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  ExecutorOptions Opts;
  Opts.BarrierPolicy = Policy;
  Opts.BarrierSpinLimit = 64; // Reach the sleep path quickly.
  Opts.Chaos = Chaos;
  PlanExecutor Exec(Dom, std::move(Plan), KernelVariant::Reference, Opts);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 77, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1),
                      Exec.velocity(2), Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(3);
  Array3D Result(Exec.domain().allocBox());
  Result.copyRegionFrom(Exec.state(), Exec.domain().coreBox());
  return Result;
}

} // namespace

TEST(FaultInjectionTest, ExecutorChaosStaysBitExact) {
  Watchdog Dog(60.0, "fault_injection_test: executor chaos");
  Array3D Clean =
      executorChaosRun(nullptr, TeamBarrier::WaitPolicy::Hybrid);
  FaultPlan Plan;
  Plan.Seed = 21;
  Plan.StallRate = 0.3;
  Plan.WakeRate = 0.5;
  Plan.MaxStallSeconds = 5e-4;
  Plan.StallTimeoutSeconds = 1e-4; // Injected stalls trip the detector.
  FaultInjector Injector(Plan);
  Array3D Chaotic =
      executorChaosRun(&Injector, TeamBarrier::WaitPolicy::Hybrid);
  EXPECT_EQ(Chaotic.maxAbsDiff(Clean, Box3::fromExtents(16, 12, 6)), 0.0);
  FaultStats FS = Injector.stats();
  EXPECT_GT(FS.Injected, 0);
  EXPECT_TRUE(mentions(Injector.trace(), "stall"));
}

TEST(FaultInjectionTest, SpuriousWakesSurviveEveryWaitPolicy) {
  Watchdog Dog(60.0, "fault_injection_test: spurious wakes");
  for (TeamBarrier::WaitPolicy Policy :
       {TeamBarrier::WaitPolicy::Spin, TeamBarrier::WaitPolicy::Hybrid,
        TeamBarrier::WaitPolicy::Block}) {
    Array3D Clean = executorChaosRun(nullptr, Policy);
    FaultPlan Plan;
    Plan.Seed = 31;
    Plan.WakeRate = 1.0; // Every crossing forces a spurious notify.
    FaultInjector Injector(Plan);
    Array3D Chaotic = executorChaosRun(&Injector, Policy);
    EXPECT_EQ(Chaotic.maxAbsDiff(Clean, Box3::fromExtents(16, 12, 6)),
              0.0)
        << waitPolicyName(Policy);
    EXPECT_TRUE(mentions(Injector.trace(), "wake"))
        << waitPolicyName(Policy);
  }
}

TEST(FaultInjectionTest, ExecutorMirrorsFaultCountersIntoStatsV5) {
  Watchdog Dog(60.0, "fault_injection_test: stats v3 mirror");
  FaultPlan Plan;
  Plan.Seed = 13;
  Plan.StallRate = 0.5;
  Plan.MaxStallSeconds = 5e-4;
  Plan.StallTimeoutSeconds = 1e-4;
  FaultInjector Injector(Plan);

  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 6, mpdataHaloDepth());
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = 2;
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  ExecutionPlan Plan2 =
      buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  ExecutorOptions Opts;
  Opts.Chaos = &Injector;
  PlanExecutor Exec(Dom, std::move(Plan2), KernelVariant::Reference, Opts);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 77, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1),
                      Exec.velocity(2), Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(2);

  const ExecStats &Stats = Exec.stats();
  EXPECT_EQ(Stats.FaultsInjected, Injector.stats().Injected);
  EXPECT_GT(Stats.FaultsInjected, 0);
  std::string Json = Stats.toJsonString();
  EXPECT_NE(Json.find("\"schema\": \"icores.exec_stats.v5\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"faults_injected\""), std::string::npos);
  EXPECT_NE(Json.find("\"timeouts\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Watchdog: disarms cleanly when the guarded scope finishes.
//===----------------------------------------------------------------------===//

TEST(WatchdogTest, DisarmsWhenScopeExitsInTime) {
  // A hang here would abort the whole process, which *is* the assertion.
  Watchdog Dog(30.0, "watchdog self-test");
  SUCCEED();
}
