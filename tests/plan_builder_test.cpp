//===- tests/plan_builder_test.cpp - Strategy plan construction tests -----===//

#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/ExtraElements.h"
#include "core/Partition.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

struct PlanFixture : public ::testing::Test {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = Box3::fromExtents(64, 32, 8);
  MachineModel Machine = makeToyMachine();
};

} // namespace

TEST_F(PlanFixture, OriginalIsOneIslandOneBlock) {
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  ASSERT_EQ(Plan.Islands.size(), 1u);
  EXPECT_EQ(Plan.Islands[0].NumSockets, 2);
  EXPECT_EQ(Plan.Islands[0].NumThreads, 4);
  ASSERT_EQ(Plan.Islands[0].Blocks.size(), 1u);
  EXPECT_EQ(Plan.Islands[0].Blocks[0].Passes.size(), 17u);
}

TEST_F(PlanFixture, Block31DIsOneIslandManyBlocks) {
  PlanConfig Config;
  Config.Strat = Strategy::Block31D;
  Config.Sockets = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  ASSERT_EQ(Plan.Islands.size(), 1u);
  EXPECT_GT(Plan.Islands[0].Blocks.size(), 1u);
}

TEST_F(PlanFixture, IslandsMakeOneIslandPerSocket) {
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  ASSERT_EQ(Plan.Islands.size(), 2u);
  for (int P = 0; P != 2; ++P) {
    EXPECT_EQ(Plan.Islands[static_cast<size_t>(P)].HomeSocket, P);
    EXPECT_EQ(Plan.Islands[static_cast<size_t>(P)].NumSockets, 1);
    EXPECT_EQ(Plan.Islands[static_cast<size_t>(P)].NumThreads, 2);
  }
  // Parts tile the target along dimension 0 (variant A default).
  EXPECT_EQ(Plan.Islands[0].Part.Hi[0], Plan.Islands[1].Part.Lo[0]);
}

TEST_F(PlanFixture, VariantBSplitsSecondDimension) {
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  Config.Variant = PartitionVariant::B;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  EXPECT_EQ(Plan.Islands[0].Part.Hi[1], Plan.Islands[1].Part.Lo[1]);
  EXPECT_EQ(Plan.Islands[0].Part.extent(0), Target.extent(0));
}

TEST_F(PlanFixture, TwoDimensionalIslandGrid) {
  MachineModel Big = makeToyMachine();
  Big.NumSockets = 4;
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 4;
  Config.GridPartsI = 2;
  Config.GridPartsJ = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Big, Config);
  ASSERT_EQ(Plan.Islands.size(), 4u);
  int64_t Sum = 0;
  for (const IslandPlan &Island : Plan.Islands)
    Sum += Island.Part.numPoints();
  EXPECT_EQ(Sum, Target.numPoints());
}

TEST_F(PlanFixture, IslandPlanWorkMatchesExtraElementsAccounting) {
  // The plan's total computed points must agree exactly with the Table 2
  // accounting engine — they share the clipped-cone definition.
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  ExtraElementsReport Report = countExtraElements(
      M.Program, Target, partition1D(Target, 2, 0));
  EXPECT_EQ(Plan.totalPassPoints(), Report.PartitionedPoints);
}

TEST_F(PlanFixture, OriginalWorkMatchesBaseline) {
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 1;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  ExtraElementsReport Report =
      countExtraElements(M.Program, Target, {Target});
  EXPECT_EQ(Plan.totalPassPoints(), Report.BaselinePoints);
}

TEST_F(PlanFixture, Block31DDoesNoRedundantWork) {
  // The skewed high-water-mark schedule makes the blocked plan compute
  // exactly the original's points.
  PlanConfig Config;
  Config.Strat = Strategy::Block31D;
  Config.Sockets = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  ExtraElementsReport Report =
      countExtraElements(M.Program, Target, {Target});
  EXPECT_EQ(Plan.totalPassPoints(), Report.BaselinePoints);
}

TEST_F(PlanFixture, TotalFlopsConsistentWithPoints) {
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 1;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  // Flops bounded by points * max stage weight and at least points * min.
  int64_t Points = Plan.totalPassPoints();
  EXPECT_GT(Plan.totalFlops(M.Program), Points * 4);
  EXPECT_LT(Plan.totalFlops(M.Program), Points * 41);
}

TEST_F(PlanFixture, RejectsTooManySockets) {
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 3; // Toy machine has 2.
  EXPECT_DEATH(buildPlan(M.Program, Target, Machine, Config),
               "socket count");
}

TEST_F(PlanFixture, StrategyNames) {
  EXPECT_STREQ(strategyName(Strategy::Original), "original");
  EXPECT_STREQ(strategyName(Strategy::Block31D), "(3+1)D");
  EXPECT_STREQ(strategyName(Strategy::IslandsOfCores), "islands-of-cores");
}
