//===- tests/balance_test.cpp - Cost-balanced partitioning + stealing -----===//
//
// Covers the load-balance layer end to end: the cost partitioner's cut
// geometry (property-tested over random domains, part counts and temporal
// depths), the agreement of its flop accounting with the established
// ExtraElements engine, bit-exactness of the work-stealing block scheduler
// across strategies, kernel backends and temporal depths, the
// simulator/executor predicted-skew parity (equal by construction: both
// call core/BalanceModel's predictedIslandSkew), the ExecStats imbalance
// edge cases, and the advisor's step-count-derived temporal depths.
//
//===----------------------------------------------------------------------===//

#include "TestMatrix.h"

#include "core/BalanceModel.h"
#include "core/Partition.h"
#include "core/PlanVerifier.h"
#include "exec/ExecStats.h"
#include "exec/PlanExecutor.h"
#include "fault/FaultInjector.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "sim/PlanAdvisor.h"
#include "sim/Simulator.h"
#include "stencil/ExtraElements.h"
#include "stencil/HaloAnalysis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

using namespace icores;

TEST(BalancePartitionTest, CostCutsTileEveryRandomDomain) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Toy = makeToyMachine();
  // A link three orders of magnitude slower than compute makes the
  // boundary-measure halo terms dominate the volume-measure flop terms:
  // the regime where a one-plane interior slab outprices the whole
  // domain and a naive bisection ceiling is infeasible.
  MachineModel SlowLink = makeToyMachine();
  SlowLink.LinkBandwidth *= 1e-3;
  TestRng R(2024);
  for (int Case = 0; Case != 40; ++Case) {
    const MachineModel &Machine = Case % 2 ? SlowLink : Toy;
    const int Parts = R.range(2, 5);
    const int Depth = 1 << R.range(0, 2); // 1, 2 or 4.
    const Box3 Target = randomTarget(R, Parts * MinIslandPlanes + 2);
    const PagePlacement Placement =
        static_cast<PagePlacement>(R.range(0, 2));
    std::vector<Box3> Slabs = partitionCostBalanced(
        M.Program, Target, Parts, /*Dim=*/0, Depth, /*NumThreads=*/2,
        Machine, Placement, /*ActiveSockets=*/Parts);

    ASSERT_EQ(Slabs.size(), static_cast<size_t>(Parts))
        << "case " << Case;
    int64_t Cursor = Target.Lo[0];
    for (int P = 0; P != Parts; ++P) {
      const Box3 &Slab = Slabs[static_cast<size_t>(P)];
      // Slabs are consecutive along the cut dimension (no gap, no
      // overlap) and full-extent along the others.
      EXPECT_EQ(Slab.Lo[0], Cursor) << "case " << Case << " part " << P;
      EXPECT_GE(Slab.extent(0), MinIslandPlanes)
          << "case " << Case << " part " << P;
      for (int D = 1; D != 3; ++D) {
        EXPECT_EQ(Slab.Lo[D], Target.Lo[D]);
        EXPECT_EQ(Slab.Hi[D], Target.Hi[D]);
      }
      Cursor = Slab.Hi[0];
    }
    EXPECT_EQ(Cursor, Target.Hi[0]) << "case " << Case;
    // countExtraElements independently asserts the exact-cover invariant
    // (it ICORES_CHECKs disjoint coverage before counting).
    ExtraElementsReport Report =
        countExtraElements(M.Program, Target, Slabs, Depth);
    EXPECT_GE(Report.extraPoints(), 0) << "case " << Case;
  }
}

TEST(BalancePartitionTest, ConeFlopsMatchExtraElementsRecount) {
  // On a program whose stages all cost 1 flop/point, partConeFlops must
  // equal the ExtraElements per-part point count exactly: both clip the
  // same per-step local cones against the same per-step global cones.
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId A = P.addArray("A", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  StageDef S1;
  S1.Name = "s1";
  S1.Outputs = {A};
  S1.Inputs = {StageInput::alongDim(In, 0, -1, 1)};
  S1.FlopsPerPoint = 1;
  P.addStage(S1);
  StageDef S2;
  S2.Name = "s2";
  S2.Outputs = {Out};
  S2.Inputs = {StageInput::alongDim(A, 1, -1, 1)};
  S2.FlopsPerPoint = 1;
  P.addStage(S2);
  std::string Error;
  ASSERT_TRUE(P.validate(Error)) << Error;

  TestRng R(7);
  for (int Case = 0; Case != 20; ++Case) {
    const int Parts = R.range(2, 4);
    const int Depth = R.range(1, 3);
    const Box3 Target = randomTarget(R, Parts + 2);
    std::vector<Box3> Slabs = partition1D(Target, Parts, 0);
    std::vector<Box3> GlobalSteps = temporalStepTargets(P, Target, Depth);
    ExtraElementsReport Report =
        countExtraElements(P, Target, Slabs, Depth);
    for (int I = 0; I != Parts; ++I)
      EXPECT_EQ(partConeFlops(P, Slabs[static_cast<size_t>(I)], GlobalSteps),
                Report.PartPoints[static_cast<size_t>(I)])
          << "case " << Case << " part " << I;
  }

  // On the real MPDATA program the weights differ per stage, so the flop
  // count is bracketed by the point count times the extreme stage weights.
  MpdataProgram M = buildMpdataProgram();
  int FMin = 0, FMax = 0;
  for (unsigned S = 0; S != M.Program.numStages(); ++S) {
    int F = M.Program.stage(static_cast<StageId>(S)).FlopsPerPoint;
    FMin = S == 0 ? F : std::min(FMin, F);
    FMax = std::max(FMax, F);
  }
  const Box3 Target = Box3::fromExtents(32, 12, 8);
  std::vector<Box3> Slabs = partition1D(Target, 3, 0);
  std::vector<Box3> GlobalSteps =
      temporalStepTargets(M.Program, Target, 2);
  ExtraElementsReport Report =
      countExtraElements(M.Program, Target, Slabs, 2);
  for (size_t I = 0; I != Slabs.size(); ++I) {
    int64_t Flops = partConeFlops(M.Program, Slabs[I], GlobalSteps);
    EXPECT_GE(Flops, FMin * Report.PartPoints[I]);
    EXPECT_LE(Flops, FMax * Report.PartPoints[I]);
  }
}

TEST(BalancePartitionTest, SinglePartReturnsTheWholeTarget) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  const Box3 Target = Box3::fromExtents(24, 10, 6);
  std::vector<Box3> Slabs = partitionCostBalanced(
      M.Program, Target, 1, 0, 2, 2, Machine, PagePlacement::FirstTouch, 1);
  ASSERT_EQ(Slabs.size(), 1u);
  EXPECT_EQ(Slabs[0], Target);
}

TEST(BalancePartitionTest, VerifierAcceptsCostBalancedPlans) {
  MpdataProgram M = buildMpdataProgram();
  for (int Sockets : {2, 4})
    for (int Depth : {1, 2, 4}) {
      MachineModel Machine = makeToyMachine();
      Machine.NumSockets = Sockets;
      PlanConfig Config;
      Config.Strat = Strategy::IslandsOfCores;
      Config.Sockets = Sockets;
      Config.TemporalDepth = Depth;
      Config.Balance = BalancePolicy::Cost;
      ExecutionPlan Plan = buildPlan(
          M.Program, Box3::fromExtents(32, 14, 8), Machine, Config);
      PlanVerification V = verifyPlan(Plan, M.Program);
      EXPECT_TRUE(V.Ok) << "sockets " << Sockets << " depth " << Depth
                        << ": " << V.FirstError;
    }
}

namespace {

constexpr int GridNI = 20;
constexpr int GridNJ = 14;
constexpr int GridNK = 8;
constexpr int TimeSteps = 4;

Array3D referenceResult() {
  ReferenceSolver Solver(GridNI, GridNJ, GridNK);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 1234, 0.1, 2.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, -0.25, 0.2);
  Solver.prepareCoefficients();
  Solver.run(TimeSteps);
  Array3D Result(Solver.domain().allocBox());
  Result.copyRegionFrom(Solver.state(), Solver.domain().coreBox());
  return Result;
}

/// Runs the stealing scheduler over a TestMatrix plan; the plan-building
/// conventions (toy machine, socket raising) live in makeTestPlan.
Array3D stealingResult(Strategy Strat, int Sockets,
                       PartitionVariant Variant, BalancePolicy Balance,
                       int Depth, KernelVariant Kernels,
                       FaultInjector *Chaos = nullptr) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  ExecutionPlan Plan =
      makeTestPlan(M.Program, Dom, Strat, Depth, /*ElideBarriers=*/false,
                   Sockets, Balance, Variant);
  ExecutorOptions Opts;
  Opts.Stealing = true;
  Opts.Chaos = Chaos;
  PlanExecutor Exec(Dom, std::move(Plan), Kernels, Opts);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 1234, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(TimeSteps);
  Array3D Result(Exec.domain().allocBox());
  Result.copyRegionFrom(Exec.state(), Exec.domain().coreBox());
  return Result;
}

} // namespace

TEST(StealingEquivalenceTest, BitExactAcrossStrategiesBackendsAndDepths) {
  const Array3D Reference = referenceResult();
  const Box3 Core = Box3::fromExtents(GridNI, GridNJ, GridNK);
  struct Case {
    Strategy Strat;
    int Sockets;
    PartitionVariant Variant;
    BalancePolicy Balance;
  };
  const Case Cases[] = {
      {Strategy::IslandsOfCores, 4, PartitionVariant::A,
       BalancePolicy::Cost},
      {Strategy::IslandsOfCores, 2, PartitionVariant::B,
       BalancePolicy::Uniform},
      {Strategy::Block31D, 3, PartitionVariant::A, BalancePolicy::Uniform},
  };
  for (const Case &C : Cases)
    for (KernelVariant Kernels :
         {KernelVariant::Reference, KernelVariant::Optimized,
          KernelVariant::Simd})
      for (int Depth : {1, 2, 4}) {
        Array3D Result = stealingResult(C.Strat, C.Sockets, C.Variant,
                                        C.Balance, Depth, Kernels);
        EXPECT_EQ(Result.maxAbsDiff(Reference, Core), 0.0)
            << "strategy " << strategyName(C.Strat) << " sockets "
            << C.Sockets << " kernels " << kernelVariantName(Kernels)
            << " depth " << Depth;
      }
}

TEST(StealingEquivalenceTest, BitExactUnderChaosStalls) {
  // Seeded worker stalls skew the teams hard enough that chunks actually
  // migrate between threads; the result must not move by a single bit.
  const Array3D Reference = referenceResult();
  const Box3 Core = Box3::fromExtents(GridNI, GridNJ, GridNK);
  FaultPlan Plan;
  Plan.Seed = 42;
  Plan.StallRate = 0.3;
  Plan.MaxStallSeconds = 5e-4;
  FaultInjector Chaos(Plan);

  Array3D Result = stealingResult(
      Strategy::IslandsOfCores, /*Sockets=*/4, PartitionVariant::A,
      BalancePolicy::Cost, /*Depth=*/2, KernelVariant::Reference, &Chaos);
  EXPECT_EQ(Result.maxAbsDiff(Reference, Core), 0.0);
}

TEST(BalanceSkewParityTest, SimulatorAndExecutorAgreeExactly) {
  MpdataProgram M = buildMpdataProgram();
  for (BalancePolicy Balance : {BalancePolicy::Uniform, BalancePolicy::Cost}) {
    MachineModel Machine = makeToyMachine();
    Machine.NumSockets = 4;
    PlanConfig Config;
    Config.Strat = Strategy::IslandsOfCores;
    Config.Sockets = 4;
    Config.TemporalDepth = 2;
    Config.Balance = Balance;
    const Box3 Grid = Box3::fromExtents(48, 16, 8);
    ExecutionPlan Plan = buildPlan(M.Program, Grid, Machine, Config);

    SimResult Sim = simulate(Plan, M.Program, Machine, TimeSteps);
    EXPECT_GE(Sim.PredictedIslandSkew, 1.0);

    Domain Dom(48, 16, 8, mpdataHaloDepth());
    ExecutorOptions Opts;
    Opts.Machine = &Machine;
    ExecutionPlan ExecPlan = buildPlan(M.Program, Grid, Machine, Config);
    PlanExecutor Exec(Dom, std::move(ExecPlan), KernelVariant::Reference,
                      Opts);
    // Parity by construction: both sides called predictedIslandSkew() on
    // the same plan, so the values are identical, not merely close.
    EXPECT_EQ(Exec.stats().PredictedIslandSkew, Sim.PredictedIslandSkew)
        << balancePolicyName(Balance);
    EXPECT_EQ(Exec.stats().Balance, balancePolicyName(Balance));
  }
}

TEST(BalanceSkewParityTest, CostCutsPredictLessSkewThanUniform) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = 4;
  const Box3 Grid = Box3::fromExtents(48, 16, 8);
  double Skew[2];
  for (BalancePolicy Balance :
       {BalancePolicy::Uniform, BalancePolicy::Cost}) {
    PlanConfig Config;
    Config.Strat = Strategy::IslandsOfCores;
    Config.Sockets = 4;
    Config.TemporalDepth = 4;
    Config.Balance = Balance;
    ExecutionPlan Plan = buildPlan(M.Program, Grid, Machine, Config);
    Skew[Balance == BalancePolicy::Cost] =
        predictedIslandSkew(Plan, M.Program, Machine);
  }
  EXPECT_GE(Skew[0], 1.0);
  EXPECT_LT(Skew[1], Skew[0]);
}

TEST(BalanceStatsTest, ImbalanceEdgeCasesPinToOne) {
  // A single-thread team cannot be unbalanced.
  IslandStat Single;
  Single.NumThreads = 1;
  Single.Threads.resize(1);
  Single.Threads[0].KernelSeconds = 3.5;
  EXPECT_EQ(Single.imbalance(), 1.0);
  EXPECT_EQ(Single.imbalanceAtStep(0), 1.0);

  // Zero recorded kernel time (profiling off, or an island that never
  // ran) reads as balanced, never "better than perfect".
  IslandStat Idle;
  Idle.NumThreads = 2;
  Idle.Threads.resize(2);
  EXPECT_EQ(Idle.imbalance(), 1.0);
  EXPECT_EQ(Idle.imbalanceAtStep(0), 1.0);

  // The per-step view slices StepKernelSeconds; a step index outside the
  // recorded depth reads as balanced.
  IslandStat Skewed;
  Skewed.NumThreads = 2;
  Skewed.Threads.resize(2);
  Skewed.Threads[0].KernelSeconds = 3.0;
  Skewed.Threads[1].KernelSeconds = 1.0;
  Skewed.Threads[0].StepKernelSeconds = {3.0, 1.0};
  Skewed.Threads[1].StepKernelSeconds = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(Skewed.imbalance(), 1.5);
  EXPECT_DOUBLE_EQ(Skewed.imbalanceAtStep(0), 1.5);
  EXPECT_DOUBLE_EQ(Skewed.imbalanceAtStep(1), 1.0);
  EXPECT_EQ(Skewed.imbalanceAtStep(7), 1.0);
  EXPECT_EQ(Skewed.imbalanceAtStep(-1), 1.0);
}

TEST(BalanceStatsTest, StealCountersSurviveProfiledRuns) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = 2;
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  ExecutorOptions Opts;
  Opts.Stealing = true;
  ExecutionPlan Plan =
      buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  PlanExecutor Exec(Dom, std::move(Plan), KernelVariant::Reference, Opts);
  Exec.enableProfiling(true);
  fillRandomPositive(Exec.stateIn(), Dom, 321, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Dom, 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(2);
  const ExecStats &Stats = Exec.stats();
  EXPECT_TRUE(Stats.Stealing);
  EXPECT_GE(Stats.steals(), 0);
  EXPECT_GE(Stats.stealFailures(), 0);
  EXPECT_GE(Stats.idleSeconds(), 0.0);
  EXPECT_GE(Stats.measuredIslandSkew(), 1.0);
  // The structural fields survive a measurement reset; the counters drop.
  Exec.resetStats();
  EXPECT_TRUE(Exec.stats().Stealing);
  EXPECT_EQ(Exec.stats().steals(), 0);
  EXPECT_EQ(Exec.stats().idleSeconds(), 0.0);
}

TEST(AdvisorBalanceTest, TemporalDepthsDeriveFromTheStepCount) {
  // --steps=6 must price the divisor depths 2 and 3 (not the old
  // hard-coded 4, which does not divide 6), and multi-island candidates
  // must be priced under both balance policies.
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = 2;
  AdvisorReport Report = adviseBestPlan(
      M.Program, Box3::fromExtents(64, 32, 16), Machine, 2, /*TimeSteps=*/6);
  bool SawDepth2 = false, SawDepth3 = false, SawDepth4 = false;
  bool SawCost = false;
  for (const AdvisorCandidate &C : Report.Candidates) {
    SawDepth2 |= C.Label.find("temporal depth 2") != std::string::npos;
    SawDepth3 |= C.Label.find("temporal depth 3") != std::string::npos;
    SawDepth4 |= C.Label.find("temporal depth 4") != std::string::npos;
    SawCost |= C.Label.find("cost-balanced") != std::string::npos;
    EXPECT_EQ(6 % std::max(1, C.Config.TemporalDepth), 0)
        << "non-divisor depth priced: " << C.Label;
  }
  EXPECT_TRUE(SawDepth2);
  EXPECT_TRUE(SawDepth3);
  EXPECT_FALSE(SawDepth4);
  EXPECT_TRUE(SawCost);
}
