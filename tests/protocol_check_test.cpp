//===- tests/protocol_check_test.cpp - Protocol model checking ------------===//
//
// Bounded model checking of the two runtime synchronization protocols:
// the TeamBarrier sense-reversal tree must be deadlock- and
// lost-wakeup-free over every interleaving (and the seeded model mutants
// that notify before publishing or block without the atomic re-check must
// be caught), and the extracted RankComm schedules must terminate with no
// cyclic wait or orphaned message, including when any rank dies mid-run.
//
//===----------------------------------------------------------------------===//

#include "dist/CommSchedule.h"
#include "support/Diagnostics.h"
#include "verify/ProtocolCheck.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

//===----------------------------------------------------------------------===//
// TeamBarrier model
//===----------------------------------------------------------------------===//

TEST(ProtocolCheckTest, BarrierModelIsDeadlockFreeAcrossThreadCounts) {
  for (int N : {1, 2, 3, 4, 5}) {
    BarrierModelOptions Opts;
    Opts.NumThreads = N;
    Opts.Crossings = 2;
    DiagnosticEngine Diags;
    BarrierCheckResult R = checkTeamBarrierProtocol(Opts, Diags);
    EXPECT_TRUE(R.Ok) << N << " threads: " << R.Witness;
    EXPECT_FALSE(R.Deadlock);
    EXPECT_GT(R.StatesExplored, 0);
    EXPECT_EQ(Diags.numErrors(), 0u) << Diags.firstErrorMessage();
  }
}

TEST(ProtocolCheckTest, BarrierModelSurvivesSpuriousWakeups) {
  BarrierModelOptions Opts;
  Opts.NumThreads = 3;
  Opts.Crossings = 2;
  Opts.SpuriousBudget = 2;
  DiagnosticEngine Diags;
  BarrierCheckResult R = checkTeamBarrierProtocol(Opts, Diags);
  EXPECT_TRUE(R.Ok) << R.Witness;
}

TEST(ProtocolCheckTest, NotifyBeforePublishMutantDeadlocks) {
  // The classic lost wakeup: the root wakes sleepers before publishing
  // the new epoch, a sleeper re-checks the stale epoch and goes back to
  // sleep with nobody left to wake it. The model must find the trace.
  BarrierModelOptions Opts;
  Opts.NumThreads = 2;
  Opts.Crossings = 2;
  Opts.MutantNotifyBeforePublish = true;
  DiagnosticEngine Diags;
  BarrierCheckResult R = checkTeamBarrierProtocol(Opts, Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Deadlock);
  EXPECT_FALSE(R.Witness.empty());
  EXPECT_TRUE(Diags.hasFinding("protocol.barrier.deadlock"));
}

TEST(ProtocolCheckTest, BlockWithoutRecheckMutantDeadlocks) {
  BarrierModelOptions Opts;
  Opts.NumThreads = 2;
  Opts.Crossings = 2;
  Opts.MutantBlockWithoutRecheck = true;
  DiagnosticEngine Diags;
  BarrierCheckResult R = checkTeamBarrierProtocol(Opts, Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Deadlock);
}

TEST(ProtocolCheckTest, StateCapFailsExplicitly) {
  BarrierModelOptions Opts;
  Opts.NumThreads = 4;
  Opts.Crossings = 2;
  Opts.MaxStates = 10; // Far below the real state count.
  DiagnosticEngine Diags;
  BarrierCheckResult R = checkTeamBarrierProtocol(Opts, Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.StateCapHit);
  EXPECT_FALSE(R.Deadlock);
  EXPECT_TRUE(Diags.hasFinding("protocol.barrier.state-cap"));
}

//===----------------------------------------------------------------------===//
// RankComm schedules
//===----------------------------------------------------------------------===//

TEST(ProtocolCheckTest, MpdataCommScheduleIsCleanAcrossGrids) {
  for (auto [PI, PJ] : {std::pair<int, int>{1, 1}, {2, 1}, {2, 2}}) {
    std::vector<RankCommSchedule> S =
        buildMpdataCommSchedule(PI, PJ, 16, 16, 8, 2);
    ASSERT_EQ(S.size(), static_cast<size_t>(PI * PJ));
    DiagnosticEngine Diags;
    CommCheckResult R = checkCommSchedule(S, Diags);
    EXPECT_TRUE(R.Ok) << PI << "x" << PJ << ": " << R.Witness;
    EXPECT_EQ(R.OrphanedMessages, 0);
    EXPECT_GT(R.OpsExecuted, 0);
  }
}

TEST(ProtocolCheckTest, EveryRankDeathStillTerminates) {
  std::vector<RankCommSchedule> S =
      buildMpdataCommSchedule(2, 2, 16, 16, 8, 2);
  for (int Dead = 0; Dead != 4; ++Dead) {
    DiagnosticEngine Diags;
    CommCheckResult R = checkCommSchedule(S, Diags, Dead, /*DeathOp=*/1);
    EXPECT_TRUE(R.Ok) << "rank " << Dead << " dying: " << R.Witness;
  }
}

TEST(ProtocolCheckTest, DroppedSendIsACyclicWait) {
  std::vector<RankCommSchedule> S =
      buildMpdataCommSchedule(2, 1, 16, 16, 8, 1);
  // Erase rank 0's first send: its peer's matching recv can never
  // complete, so the run wedges (recvs block, sends are buffered).
  for (size_t I = 0; I != S[0].Ops.size(); ++I)
    if (S[0].Ops[I].K == CommOp::Kind::Send) {
      S[0].Ops.erase(S[0].Ops.begin() + static_cast<long>(I));
      break;
    }
  DiagnosticEngine Diags;
  CommCheckResult R = checkCommSchedule(S, Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Deadlock);
  EXPECT_TRUE(Diags.hasFinding("protocol.comm.deadlock"));
}

TEST(ProtocolCheckTest, DroppedRecvIsAnOrphanedMessage) {
  std::vector<RankCommSchedule> S =
      buildMpdataCommSchedule(2, 1, 16, 16, 8, 1);
  for (size_t I = 0; I != S[1].Ops.size(); ++I)
    if (S[1].Ops[I].K == CommOp::Kind::Recv) {
      S[1].Ops.erase(S[1].Ops.begin() + static_cast<long>(I));
      break;
    }
  DiagnosticEngine Diags;
  CommCheckResult R = checkCommSchedule(S, Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_GT(R.OrphanedMessages, 0);
  EXPECT_TRUE(Diags.hasFinding("protocol.comm.orphan-message"));
}

TEST(ProtocolCheckTest, ShrunkPayloadIsASizeMismatch) {
  std::vector<RankCommSchedule> S =
      buildMpdataCommSchedule(2, 1, 16, 16, 8, 1);
  for (CommOp &Op : S[0].Ops)
    if (Op.K == CommOp::Kind::Send) {
      Op.Count -= 1;
      break;
    }
  DiagnosticEngine Diags;
  CommCheckResult R = checkCommSchedule(S, Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(Diags.hasFinding("protocol.comm.size-mismatch"));
}

} // namespace
