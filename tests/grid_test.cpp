//===- tests/grid_test.cpp - Box3/Array3D/Domain unit tests ---------------===//

#include "grid/Array3D.h"
#include "grid/Box3.h"
#include "grid/Domain.h"

#include <gtest/gtest.h>

using namespace icores;

TEST(Box3Test, ExtentsAndPoints) {
  Box3 B(0, 0, 0, 4, 3, 2);
  EXPECT_EQ(B.extent(0), 4);
  EXPECT_EQ(B.extent(1), 3);
  EXPECT_EQ(B.extent(2), 2);
  EXPECT_EQ(B.numPoints(), 24);
  EXPECT_FALSE(B.empty());
}

TEST(Box3Test, EmptyBoxes) {
  Box3 Default;
  EXPECT_TRUE(Default.empty());
  EXPECT_EQ(Default.numPoints(), 0);
  Box3 Inverted(3, 0, 0, 1, 5, 5);
  EXPECT_TRUE(Inverted.empty());
  EXPECT_EQ(Inverted.numPoints(), 0);
}

TEST(Box3Test, Contains) {
  Box3 B(-2, 0, 0, 2, 4, 4);
  EXPECT_TRUE(B.contains(-2, 0, 0));
  EXPECT_TRUE(B.contains(1, 3, 3));
  EXPECT_FALSE(B.contains(2, 0, 0)); // Hi is exclusive.
  EXPECT_FALSE(B.contains(-3, 0, 0));
}

TEST(Box3Test, ContainsBox) {
  Box3 Outer(0, 0, 0, 10, 10, 10);
  EXPECT_TRUE(Outer.containsBox(Box3(2, 2, 2, 8, 8, 8)));
  EXPECT_TRUE(Outer.containsBox(Outer));
  EXPECT_FALSE(Outer.containsBox(Box3(-1, 0, 0, 5, 5, 5)));
  EXPECT_TRUE(Outer.containsBox(Box3())); // Empty fits everywhere.
}

TEST(Box3Test, Intersect) {
  Box3 A(0, 0, 0, 6, 6, 6);
  Box3 B(4, -2, 3, 10, 4, 9);
  Box3 I = A.intersect(B);
  EXPECT_EQ(I, Box3(4, 0, 3, 6, 4, 6));
  Box3 Disjoint(10, 10, 10, 12, 12, 12);
  EXPECT_TRUE(A.intersect(Disjoint).empty());
}

TEST(Box3Test, UnionWith) {
  Box3 A(0, 0, 0, 2, 2, 2);
  Box3 B(5, 1, 0, 6, 3, 2);
  Box3 U = A.unionWith(B);
  EXPECT_EQ(U, Box3(0, 0, 0, 6, 3, 2));
  EXPECT_EQ(A.unionWith(Box3()), A);
  EXPECT_EQ(Box3().unionWith(B), B);
}

TEST(Box3Test, GrownAndShifted) {
  Box3 B(0, 0, 0, 4, 4, 4);
  EXPECT_EQ(B.grown(0, 2, 3), Box3(-2, 0, 0, 7, 4, 4));
  EXPECT_EQ(B.grownAll(1), Box3(-1, -1, -1, 5, 5, 5));
  EXPECT_EQ(B.shifted(1, -1, 2), Box3(1, -1, 2, 5, 3, 6));
}

TEST(Box3Test, StringRendering) {
  EXPECT_EQ(Box3(0, 1, 2, 3, 4, 5).str(), "[0,3)x[1,4)x[2,5)");
}

TEST(Array3DTest, ZeroInitializedAndWritable) {
  Array3D A(Box3(-1, -1, -1, 3, 3, 3));
  EXPECT_EQ(A.numElements(), 64);
  EXPECT_EQ(A.at(-1, -1, -1), 0.0);
  A.at(2, 2, 2) = 7.5;
  EXPECT_EQ(A.at(2, 2, 2), 7.5);
}

TEST(Array3DTest, NegativeIndexAddressing) {
  Array3D A(Box3(-2, 0, 0, 2, 2, 2));
  A.at(-2, 0, 0) = 1.0;
  A.at(1, 1, 1) = 2.0;
  EXPECT_EQ(A.at(-2, 0, 0), 1.0);
  EXPECT_EQ(A.at(1, 1, 1), 2.0);
  EXPECT_EQ(A.sizeInBytes(), 4 * 2 * 2 * 8);
}

TEST(Array3DTest, FillAndSum) {
  Array3D A(Box3::fromExtents(3, 3, 3));
  A.fill(2.0);
  EXPECT_DOUBLE_EQ(A.sumRegion(Box3::fromExtents(3, 3, 3)), 54.0);
  EXPECT_DOUBLE_EQ(A.sumRegion(Box3(0, 0, 0, 1, 1, 1)), 2.0);
}

TEST(Array3DTest, CopyRegionAndMaxDiff) {
  Box3 Space = Box3::fromExtents(4, 4, 4);
  Array3D A(Space), B(Space);
  A.fill(1.0);
  B.fill(3.0);
  Box3 Inner(1, 1, 1, 3, 3, 3);
  A.copyRegionFrom(B, Inner);
  EXPECT_DOUBLE_EQ(A.at(1, 1, 1), 3.0);
  EXPECT_DOUBLE_EQ(A.at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(A.maxAbsDiff(B, Inner), 0.0);
  EXPECT_DOUBLE_EQ(A.maxAbsDiff(B, Space), 2.0);
}

TEST(Array3DTest, DataIs64ByteAligned) {
  for (const Box3 &Space :
       {Box3::fromExtents(3, 5, 7), Box3(-2, -2, -2, 9, 9, 9)}) {
    Array3D A(Space);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(A.data()) %
                  Array3D::DataAlignment,
              0u);
    Array3D P(Space, Array3D::VectorPadK);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P.data()) %
                  Array3D::DataAlignment,
              0u);
  }
}

TEST(Array3DTest, PaddedStridesAndRowAlignment) {
  // 4 x 3 x 5: rows of 5 doubles pad to 8 (one cache line).
  Box3 Space(-1, -1, -1, 3, 2, 4);
  Array3D A(Space, Array3D::VectorPadK);
  EXPECT_EQ(A.padK(), Array3D::VectorPadK);
  EXPECT_EQ(A.strideJ(), 8);
  EXPECT_EQ(A.strideI(), 3 * 8);
  // Logical sizes ignore padding; paddedBytes() exposes it.
  EXPECT_EQ(A.numElements(), 4 * 3 * 5);
  EXPECT_EQ(A.sizeInBytes(), 4 * 3 * 5 * 8);
  EXPECT_EQ(A.paddedBytes(), 4 * 3 * 8 * 8);
  // Every (i, j, lo-k) row start lands on a 64-byte boundary.
  for (int I = Space.Lo[0]; I != Space.Hi[0]; ++I)
    for (int J = Space.Lo[1]; J != Space.Hi[1]; ++J)
      EXPECT_EQ(reinterpret_cast<uintptr_t>(
                    A.pointerTo(I, J, Space.Lo[2])) %
                    Array3D::DataAlignment,
                0u);
  // Addressing round-trips under the padded layout.
  A.at(2, 1, 3) = 4.5;
  A.at(-1, -1, -1) = 1.5;
  EXPECT_EQ(A.at(2, 1, 3), 4.5);
  EXPECT_EQ(A.at(-1, -1, -1), 1.5);
  // A row that is already a multiple of the pad gains no padding.
  Array3D B(Box3::fromExtents(2, 2, 16), Array3D::VectorPadK);
  EXPECT_EQ(B.strideJ(), 16);
  EXPECT_EQ(B.paddedBytes(), B.sizeInBytes());
}

TEST(Array3DTest, PaddedAndUnpaddedAgree) {
  Box3 Space(-1, 0, -2, 4, 3, 9);
  Array3D A(Space), P(Space, Array3D::VectorPadK);
  double V = 0.0;
  for (int I = Space.Lo[0]; I != Space.Hi[0]; ++I)
    for (int J = Space.Lo[1]; J != Space.Hi[1]; ++J)
      for (int K = Space.Lo[2]; K != Space.Hi[2]; ++K) {
        A.at(I, J, K) = V;
        P.at(I, J, K) = V;
        V += 1.0;
      }
  EXPECT_EQ(A.maxAbsDiff(P, Space), 0.0);
  EXPECT_DOUBLE_EQ(A.sumRegion(Space), P.sumRegion(Space));
}

TEST(Array3DTest, ResetReusesAllocationAndZeroes) {
  Box3 Space = Box3::fromExtents(4, 4, 4);
  Array3D A(Space);
  const double *Before = A.data();
  A.fill(9.0);
  A.reset(Space);
  EXPECT_EQ(A.data(), Before); // Same shape: no reallocation.
  EXPECT_EQ(A.at(3, 3, 3), 0.0);
  A.reset(Box3::fromExtents(2, 2, 2));
  EXPECT_EQ(A.numElements(), 8);
}

TEST(Array3DTest, ResetNoClearKeepsValuesWhenShapeUnchanged) {
  Box3 Space = Box3::fromExtents(3, 3, 3);
  Array3D A(Space, Array3D::VectorPadK);
  A.fill(5.0);
  A.resetNoClear(Space, Array3D::VectorPadK);
  EXPECT_EQ(A.at(2, 2, 2), 5.0); // No redundant zero-assign.
  // Changing shape or padding still reallocates zeroed storage.
  A.resetNoClear(Space, 0);
  EXPECT_EQ(A.padK(), 0);
  EXPECT_EQ(A.at(2, 2, 2), 0.0);
  A.fill(3.0);
  A.resetNoClear(Box3::fromExtents(5, 3, 3), 0);
  EXPECT_EQ(A.at(4, 2, 2), 0.0);
}

TEST(Array3DTest, FillRegionWritesOnlyTheRegion) {
  Array3D A(Box3::fromExtents(4, 4, 4), Array3D::VectorPadK);
  A.fill(1.0);
  A.fillRegion(Box3(1, 1, 1, 3, 3, 3), 8.0);
  EXPECT_EQ(A.at(1, 1, 1), 8.0);
  EXPECT_EQ(A.at(2, 2, 2), 8.0);
  EXPECT_EQ(A.at(0, 0, 0), 1.0);
  EXPECT_EQ(A.at(3, 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(A.sumRegion(Box3::fromExtents(4, 4, 4)),
                   56.0 + 8 * 8.0);
}

TEST(Array3DTest, CopyRegionBetweenPaddedAndUnpadded) {
  Box3 Space = Box3::fromExtents(4, 4, 5);
  Array3D A(Space, Array3D::VectorPadK), B(Space);
  double V = 0.0;
  for (int I = 0; I != 4; ++I)
    for (int J = 0; J != 4; ++J)
      for (int K = 0; K != 5; ++K)
        B.at(I, J, K) = ++V;
  A.copyRegionFrom(B, Space);
  EXPECT_EQ(A.maxAbsDiff(B, Space), 0.0);
  // Self-copy is the identity.
  A.copyRegionFrom(A, Box3(1, 1, 1, 3, 3, 4));
  EXPECT_EQ(A.maxAbsDiff(B, Space), 0.0);
}

TEST(DomainTest, Boxes) {
  Domain D(8, 6, 4, 2);
  EXPECT_EQ(D.coreBox(), Box3::fromExtents(8, 6, 4));
  EXPECT_EQ(D.allocBox(), Box3(-2, -2, -2, 10, 8, 6));
  EXPECT_EQ(D.numCells(), 8 * 6 * 4);
}

TEST(DomainTest, WrapIndex) {
  EXPECT_EQ(Domain::wrapIndex(0, 8), 0);
  EXPECT_EQ(Domain::wrapIndex(-1, 8), 7);
  EXPECT_EQ(Domain::wrapIndex(8, 8), 0);
  EXPECT_EQ(Domain::wrapIndex(-9, 8), 7);
  EXPECT_EQ(Domain::wrapIndex(17, 8), 1);
}

TEST(DomainTest, PeriodicHaloFill) {
  Domain D(4, 4, 4, 2);
  Array3D A(D.allocBox());
  Box3 Core = D.coreBox();
  // Unique value per core cell.
  for (int I = 0; I != 4; ++I)
    for (int J = 0; J != 4; ++J)
      for (int K = 0; K != 4; ++K)
        A.at(I, J, K) = I * 100 + J * 10 + K;
  D.fillHaloPeriodic(A);
  // Every alloc-box cell equals its wrapped core cell.
  Box3 Alloc = D.allocBox();
  for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I)
    for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J)
      for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K)
        EXPECT_EQ(A.at(I, J, K),
                  A.at(Domain::wrapIndex(I, 4), Domain::wrapIndex(J, 4),
                       Domain::wrapIndex(K, 4)));
  (void)Core;
}

TEST(DomainTest, HaloFillPreservesCore) {
  Domain D(5, 3, 3, 1);
  Array3D A(D.allocBox());
  for (int I = 0; I != 5; ++I)
    for (int J = 0; J != 3; ++J)
      for (int K = 0; K != 3; ++K)
        A.at(I, J, K) = 1.0 + I + J + K;
  Array3D Before(D.allocBox());
  Before.copyRegionFrom(A, D.coreBox());
  D.fillHaloPeriodic(A);
  EXPECT_DOUBLE_EQ(A.maxAbsDiff(Before, D.coreBox()), 0.0);
}
