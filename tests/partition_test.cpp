//===- tests/partition_test.cpp - Island partitioning tests ---------------===//

#include "core/Partition.h"

#include <gtest/gtest.h>

using namespace icores;

TEST(Partition, VariantDims) {
  EXPECT_EQ(partitionDim(PartitionVariant::A), 0);
  EXPECT_EQ(partitionDim(PartitionVariant::B), 1);
}

TEST(Partition, OnePartIsIdentity) {
  Box3 T = Box3::fromExtents(16, 8, 4);
  std::vector<Box3> Parts = partition1D(T, 1, 0);
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], T);
}

TEST(Partition, ExactCoverDisjoint) {
  Box3 T(2, -1, 0, 30, 15, 8);
  for (int Dim = 0; Dim != 3; ++Dim) {
    for (int Parts : {2, 3, 5, 7}) {
      std::vector<Box3> Ps = partition1D(T, Parts, Dim);
      ASSERT_EQ(Ps.size(), static_cast<size_t>(Parts));
      int64_t Sum = 0;
      for (size_t I = 0; I != Ps.size(); ++I) {
        Sum += Ps[I].numPoints();
        EXPECT_TRUE(T.containsBox(Ps[I]));
        if (I) { // Consecutive along Dim.
          EXPECT_EQ(Ps[I].Lo[Dim], Ps[I - 1].Hi[Dim]);
        }
      }
      EXPECT_EQ(Sum, T.numPoints());
    }
  }
}

TEST(Partition, NearlyEqualSizes) {
  Box3 T = Box3::fromExtents(100, 10, 10);
  std::vector<Box3> Parts = partition1D(T, 7, 0);
  for (const Box3 &P : Parts) {
    EXPECT_GE(P.extent(0), 14);
    EXPECT_LE(P.extent(0), 15);
  }
}

TEST(Partition, TwoDimensionalGrid) {
  Box3 T = Box3::fromExtents(12, 8, 4);
  std::vector<Box3> Parts = partition2D(T, 3, 2);
  ASSERT_EQ(Parts.size(), 6u);
  int64_t Sum = 0;
  for (const Box3 &P : Parts) {
    Sum += P.numPoints();
    EXPECT_EQ(P.extent(0), 4);
    EXPECT_EQ(P.extent(1), 4);
    EXPECT_EQ(P.extent(2), 4);
  }
  EXPECT_EQ(Sum, T.numPoints());
}

TEST(Partition, GridFactorization) {
  EXPECT_EQ(factorForGrid(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(factorForGrid(4), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(factorForGrid(12), (std::pair<int, int>{4, 3}));
  EXPECT_EQ(factorForGrid(14), (std::pair<int, int>{7, 2}));
  EXPECT_EQ(factorForGrid(13), (std::pair<int, int>{13, 1})); // Prime.
}
