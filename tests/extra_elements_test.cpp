//===- tests/extra_elements_test.cpp - Table 2 accounting tests -----------===//

#include "core/Partition.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/ExtraElements.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

using namespace icores;

namespace {

Box3 paperScaledTarget() {
  // A scaled-down version of the paper's 1024x512x64 grid with the same
  // 2:1 aspect between the first two dimensions.
  return Box3::fromExtents(128, 64, 32);
}

using Cell = std::array<int64_t, 3>;

/// Brute-force backward dataflow: marks required cells one by one instead
/// of reasoning about box corners, so any error in the cone arithmetic
/// (most likely a swapped side of an asymmetric access window) shows up as
/// a count mismatch. Kernels execute each stage over one rectangular
/// region, so a stage's computed set is the bounding box of everything its
/// consumers demand — rectangularize() models exactly that; the window
/// expansion itself stays per-cell.
std::set<Cell> rectangularize(const std::set<Cell> &Cells) {
  if (Cells.empty())
    return {};
  Cell Lo = *Cells.begin(), Hi = *Cells.begin();
  for (const Cell &C : Cells)
    for (int D = 0; D != 3; ++D) {
      Lo[D] = std::min(Lo[D], C[D]);
      Hi[D] = std::max(Hi[D], C[D]);
    }
  std::set<Cell> Box;
  for (int64_t I = Lo[0]; I <= Hi[0]; ++I)
    for (int64_t J = Lo[1]; J <= Hi[1]; ++J)
      for (int64_t K = Lo[2]; K <= Hi[2]; ++K)
        Box.insert({I, J, K});
  return Box;
}

std::vector<std::set<Cell>> bruteStageCells(const StencilProgram &P,
                                            const Box3 &Target) {
  std::vector<std::set<Cell>> ArrayNeed(P.numArrays());
  std::vector<std::set<Cell>> StageNeed(P.numStages());
  for (ArrayId A = 0; A != static_cast<ArrayId>(P.numArrays()); ++A)
    if (P.array(A).Role == ArrayRole::StepOutput)
      for (int64_t I = Target.Lo[0]; I != Target.Hi[0]; ++I)
        for (int64_t J = Target.Lo[1]; J != Target.Hi[1]; ++J)
          for (int64_t K = Target.Lo[2]; K != Target.Hi[2]; ++K)
            ArrayNeed[static_cast<size_t>(A)].insert({I, J, K});
  for (StageId S = static_cast<StageId>(P.numStages()) - 1; S >= 0; --S) {
    const StageDef &D = P.stage(S);
    std::set<Cell> Demanded;
    for (ArrayId Out : D.Outputs)
      Demanded.insert(ArrayNeed[static_cast<size_t>(Out)].begin(),
                      ArrayNeed[static_cast<size_t>(Out)].end());
    std::set<Cell> &Need = StageNeed[static_cast<size_t>(S)];
    Need = rectangularize(Demanded);
    for (const StageInput &In : D.Inputs)
      for (const Cell &C : Need)
        for (int DI = In.MinOff[0]; DI <= In.MaxOff[0]; ++DI)
          for (int DJ = In.MinOff[1]; DJ <= In.MaxOff[1]; ++DJ)
            for (int DK = In.MinOff[2]; DK <= In.MaxOff[2]; ++DK)
              ArrayNeed[static_cast<size_t>(In.Array)].insert(
                  {C[0] + DI, C[1] + DJ, C[2] + DK});
  }
  return StageNeed;
}

/// Per-cell recount of what countExtraElements() tallies with box
/// arithmetic: every part evaluates its own cone, clipped per stage to the
/// global cone.
ExtraElementsReport bruteRecount(const StencilProgram &P, const Box3 &Target,
                                 const std::vector<Box3> &Parts) {
  std::vector<std::set<Cell>> Global = bruteStageCells(P, Target);
  ExtraElementsReport R;
  for (const std::set<Cell> &Cells : Global)
    R.BaselinePoints += static_cast<int64_t>(Cells.size());
  for (const Box3 &Part : Parts) {
    std::vector<std::set<Cell>> Local = bruteStageCells(P, Part);
    int64_t Total = 0;
    for (unsigned S = 0; S != P.numStages(); ++S)
      for (const Cell &C : Local[S])
        if (Global[S].count(C))
          ++Total;
    R.PartPoints.push_back(Total);
    R.PartitionedPoints += Total;
  }
  return R;
}

/// A deliberately lopsided three-stage chain: every access window is
/// one-sided or skewed, on different dimensions per stage, so a symmetric
/// (or side-swapped) overlap formula cannot reproduce the counts.
StencilProgram buildAsymmetricProgram() {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Mid = P.addArray("mid", ArrayRole::Intermediate);
  ArrayId Mid2 = P.addArray("mid2", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  StageDef S0;
  S0.Name = "s0";
  S0.Outputs = {Mid};
  StageInput I0 = StageInput::center(In);
  I0.MinOff = {-2, 0, 0};
  I0.MaxOff = {0, 3, 0};
  S0.Inputs = {I0};
  P.addStage(S0);
  StageDef S1;
  S1.Name = "s1";
  S1.Outputs = {Mid2};
  StageInput I1 = StageInput::center(Mid);
  I1.MinOff = {0, 0, -1};
  I1.MaxOff = {1, 0, 2};
  S1.Inputs = {I1, StageInput::center(In)};
  P.addStage(S1);
  StageDef S2;
  S2.Name = "s2";
  S2.Outputs = {Out};
  S2.Inputs = {StageInput::alongDim(Mid2, 1, -2, 0),
               StageInput::alongDim(Mid, 0, 0, 2)};
  P.addStage(S2);
  return P;
}

} // namespace

TEST(ExtraElements, SinglePartHasNoOverhead) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  ExtraElementsReport R =
      countExtraElements(M.Program, Target, {Target});
  EXPECT_EQ(R.extraPoints(), 0);
  EXPECT_DOUBLE_EQ(R.extraFraction(), 0.0);
  EXPECT_EQ(R.PartitionedPoints, R.BaselinePoints);
}

TEST(ExtraElements, LinearInBoundaryCount) {
  // Table 2's key structure: extra work grows by a fixed amount per added
  // island (one new internal boundary each).
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  std::vector<int64_t> Extra;
  for (int Islands = 1; Islands <= 8; ++Islands) {
    ExtraElementsReport R = countExtraElements(
        M.Program, Target, partition1D(Target, Islands, 0));
    Extra.push_back(R.extraPoints());
  }
  EXPECT_EQ(Extra[0], 0);
  int64_t PerBoundary = Extra[1];
  EXPECT_GT(PerBoundary, 0);
  for (int Islands = 2; Islands <= 8; ++Islands)
    EXPECT_EQ(Extra[static_cast<size_t>(Islands - 1)],
              PerBoundary * (Islands - 1))
        << "islands=" << Islands;
}

TEST(ExtraElements, VariantBCostsMoreThanVariantA) {
  // The paper's grid is wider along i than j, so a variant-B boundary has
  // a larger cross-section: Table 2 reports B ~= 2x A for the 1024x512
  // grid (exactly the boundary-area ratio).
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  ExtraElementsReport A =
      countExtraElements(M.Program, Target, partition1D(Target, 4, 0));
  ExtraElementsReport B =
      countExtraElements(M.Program, Target, partition1D(Target, 4, 1));
  EXPECT_GT(B.extraPoints(), A.extraPoints());
  double Ratio = static_cast<double>(B.extraPoints()) /
                 static_cast<double>(A.extraPoints());
  // Boundary areas: variant A cross-section 64*32, variant B 128*32.
  EXPECT_NEAR(Ratio, 2.0, 0.05);
}

TEST(ExtraElements, FractionMatchesPaperMagnitude) {
  // With the paper's full 1024x512x64 grid, variant A costs a fraction of
  // a percent per boundary (Table 2 reports ~0.25%).
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = Box3::fromExtents(1024, 512, 64);
  ExtraElementsReport R =
      countExtraElements(M.Program, Target, partition1D(Target, 2, 0));
  EXPECT_GT(R.extraFraction(), 0.001);
  EXPECT_LT(R.extraFraction(), 0.006);
}

TEST(ExtraElements, PartPointsSumToTotal) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  ExtraElementsReport R =
      countExtraElements(M.Program, Target, partition1D(Target, 3, 0));
  ASSERT_EQ(R.PartPoints.size(), 3u);
  int64_t Sum = 0;
  for (int64_t P : R.PartPoints)
    Sum += P;
  EXPECT_EQ(Sum, R.PartitionedPoints);
  // Middle part has two boundaries, edge parts one each (clipped at the
  // global region): middle >= edges.
  EXPECT_GE(R.PartPoints[1], R.PartPoints[0] - 1);
}

TEST(ExtraElements, TwoDimensionalGridCombinesBothAxes) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  ExtraElementsReport R2x2 =
      countExtraElements(M.Program, Target, partition2D(Target, 2, 2));
  ExtraElementsReport R4x1 =
      countExtraElements(M.Program, Target, partition1D(Target, 4, 0));
  EXPECT_GT(R2x2.extraPoints(), 0);
  // For this aspect ratio, one i-boundary plus one j-boundary (2x2) costs
  // more than three i-boundaries would per boundary pair, but the total
  // comparison depends on areas; just require both are sane and 2x2 counts
  // boundaries from both axes.
  ExtraElementsReport R2x1 =
      countExtraElements(M.Program, Target, partition1D(Target, 2, 0));
  ExtraElementsReport R1x2 =
      countExtraElements(M.Program, Target, partition1D(Target, 2, 1));
  // A 2x2 grid has one full boundary per axis: its extra work is at least
  // the sum of the two 1D cases (corner regions add a little more).
  EXPECT_GE(R2x2.extraPoints(),
            R2x1.extraPoints() + R1x2.extraPoints());
  EXPECT_GT(R4x1.extraPoints(), 0);
}

TEST(ExtraElements, ToyChainExactCount) {
  // Hand-checkable case: a 2-stage chain with +/-1 reach, split in two.
  // Global: stage1 on [0,N), stage0 on [-1,N+1).
  // Parts [0,N/2) and [N/2,N): stage0 regions [-1,N/2+1) and [N/2-1,N+1)
  // overlap by 2 planes -> extra = 2 * crossSection.
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Mid = P.addArray("mid", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  StageDef S0;
  S0.Name = "s0";
  S0.Outputs = {Mid};
  S0.Inputs = {StageInput::alongDim(In, 0, -1, 1)};
  P.addStage(S0);
  StageDef S1;
  S1.Name = "s1";
  S1.Outputs = {Out};
  S1.Inputs = {StageInput::alongDim(Mid, 0, -1, 1)};
  P.addStage(S1);

  Box3 Target = Box3::fromExtents(16, 4, 4);
  ExtraElementsReport R =
      countExtraElements(P, Target, partition1D(Target, 2, 0));
  EXPECT_EQ(R.extraPoints(), 2 * 4 * 4);
}

TEST(ExtraElements, AsymmetricWindowsMatchPerCellRecount) {
  // Regression for the overlap math on one-sided / skewed access windows:
  // compare the box-arithmetic counts against a brute-force per-cell
  // recount for partitions along every dimension and a 2D grid.
  StencilProgram P = buildAsymmetricProgram();
  Box3 Target = Box3::fromExtents(12, 10, 6);
  std::vector<std::vector<Box3>> Partitions = {
      partition1D(Target, 3, 0), partition1D(Target, 2, 1),
      partition1D(Target, 2, 2), partition2D(Target, 2, 2)};
  for (const std::vector<Box3> &Parts : Partitions) {
    ExtraElementsReport Fast = countExtraElements(P, Target, Parts);
    ExtraElementsReport Slow = bruteRecount(P, Target, Parts);
    EXPECT_EQ(Fast.BaselinePoints, Slow.BaselinePoints);
    EXPECT_EQ(Fast.PartitionedPoints, Slow.PartitionedPoints);
    ASSERT_EQ(Fast.PartPoints.size(), Slow.PartPoints.size());
    for (size_t I = 0; I != Fast.PartPoints.size(); ++I)
      EXPECT_EQ(Fast.PartPoints[I], Slow.PartPoints[I]) << "part " << I;
  }
}

TEST(ExtraElements, OneSidedWindowsOverlapOnTheCorrectSide) {
  // Directed check that each side of the window contributes its own width:
  // a consumer window of [Lo, Hi] along the split dimension makes the left
  // part reach Hi planes past the cut and the right part reach -Lo planes
  // below it, so the overlap is (Hi - Lo) planes — NOT 2*max(|Lo|, Hi).
  auto extraFor = [](int Lo, int Hi) {
    StencilProgram P;
    ArrayId In = P.addArray("in", ArrayRole::StepInput);
    ArrayId Mid = P.addArray("mid", ArrayRole::Intermediate);
    ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
    StageDef S0;
    S0.Name = "s0";
    S0.Outputs = {Mid};
    S0.Inputs = {StageInput::center(In)};
    P.addStage(S0);
    StageDef S1;
    S1.Name = "s1";
    S1.Outputs = {Out};
    S1.Inputs = {StageInput::alongDim(Mid, 0, Lo, Hi)};
    P.addStage(S1);
    Box3 Target = Box3::fromExtents(16, 4, 4);
    return countExtraElements(P, Target, partition1D(Target, 2, 0))
        .extraPoints();
  };
  const int64_t Cs = 4 * 4;
  EXPECT_EQ(extraFor(0, 3), 3 * Cs);
  EXPECT_EQ(extraFor(-2, 0), 2 * Cs);
  EXPECT_EQ(extraFor(-2, 3), 5 * Cs);
}

TEST(ExtraElements, TemporalDepthOneMatchesBaseOverload) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  std::vector<Box3> Parts = partition1D(Target, 4, 0);
  ExtraElementsReport Base = countExtraElements(M.Program, Target, Parts);
  ExtraElementsReport T1 = countExtraElements(M.Program, Target, Parts, 1);
  EXPECT_EQ(T1.BaselinePoints, Base.BaselinePoints);
  EXPECT_EQ(T1.PartitionedPoints, Base.PartitionedPoints);
  EXPECT_EQ(T1.PartPoints, Base.PartPoints);
}

TEST(ExtraElements, TemporalToyFeedbackExactCount) {
  // One +/-1 stage with out->in feedback, fused two steps deep.
  // Baseline (unfused, 2 steps): 2*N points per cross-section column.
  // Fused single part: step 1 on [0,N), step 0 on [-1,N+1) -> 2 extra
  // planes from the epoch's widened first step. Splitting in two adds a
  // 2-plane overlap on step 0's cones at the internal cut.
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  StageDef S0;
  S0.Name = "s0";
  S0.Outputs = {Out};
  S0.Inputs = {StageInput::alongDim(In, 0, -1, 1)};
  P.addStage(S0);
  P.addFeedback(Out, In);

  Box3 Target = Box3::fromExtents(16, 4, 4);
  const int64_t Cs = 4 * 4;
  ExtraElementsReport Whole = countExtraElements(P, Target, {Target}, 2);
  EXPECT_EQ(Whole.BaselinePoints, 2 * 16 * Cs);
  EXPECT_EQ(Whole.extraPoints(), 2 * Cs);
  ExtraElementsReport Split =
      countExtraElements(P, Target, partition1D(Target, 2, 0), 2);
  EXPECT_EQ(Split.extraPoints(), 4 * Cs);
  // Deeper fusion widens every non-final step: extra grows with depth.
  ExtraElementsReport Deep =
      countExtraElements(P, Target, partition1D(Target, 2, 0), 4);
  EXPECT_GT(Deep.extraPoints() , Split.extraPoints());
}
