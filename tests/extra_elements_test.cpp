//===- tests/extra_elements_test.cpp - Table 2 accounting tests -----------===//

#include "core/Partition.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/ExtraElements.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

Box3 paperScaledTarget() {
  // A scaled-down version of the paper's 1024x512x64 grid with the same
  // 2:1 aspect between the first two dimensions.
  return Box3::fromExtents(128, 64, 32);
}

} // namespace

TEST(ExtraElements, SinglePartHasNoOverhead) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  ExtraElementsReport R =
      countExtraElements(M.Program, Target, {Target});
  EXPECT_EQ(R.extraPoints(), 0);
  EXPECT_DOUBLE_EQ(R.extraFraction(), 0.0);
  EXPECT_EQ(R.PartitionedPoints, R.BaselinePoints);
}

TEST(ExtraElements, LinearInBoundaryCount) {
  // Table 2's key structure: extra work grows by a fixed amount per added
  // island (one new internal boundary each).
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  std::vector<int64_t> Extra;
  for (int Islands = 1; Islands <= 8; ++Islands) {
    ExtraElementsReport R = countExtraElements(
        M.Program, Target, partition1D(Target, Islands, 0));
    Extra.push_back(R.extraPoints());
  }
  EXPECT_EQ(Extra[0], 0);
  int64_t PerBoundary = Extra[1];
  EXPECT_GT(PerBoundary, 0);
  for (int Islands = 2; Islands <= 8; ++Islands)
    EXPECT_EQ(Extra[static_cast<size_t>(Islands - 1)],
              PerBoundary * (Islands - 1))
        << "islands=" << Islands;
}

TEST(ExtraElements, VariantBCostsMoreThanVariantA) {
  // The paper's grid is wider along i than j, so a variant-B boundary has
  // a larger cross-section: Table 2 reports B ~= 2x A for the 1024x512
  // grid (exactly the boundary-area ratio).
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  ExtraElementsReport A =
      countExtraElements(M.Program, Target, partition1D(Target, 4, 0));
  ExtraElementsReport B =
      countExtraElements(M.Program, Target, partition1D(Target, 4, 1));
  EXPECT_GT(B.extraPoints(), A.extraPoints());
  double Ratio = static_cast<double>(B.extraPoints()) /
                 static_cast<double>(A.extraPoints());
  // Boundary areas: variant A cross-section 64*32, variant B 128*32.
  EXPECT_NEAR(Ratio, 2.0, 0.05);
}

TEST(ExtraElements, FractionMatchesPaperMagnitude) {
  // With the paper's full 1024x512x64 grid, variant A costs a fraction of
  // a percent per boundary (Table 2 reports ~0.25%).
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = Box3::fromExtents(1024, 512, 64);
  ExtraElementsReport R =
      countExtraElements(M.Program, Target, partition1D(Target, 2, 0));
  EXPECT_GT(R.extraFraction(), 0.001);
  EXPECT_LT(R.extraFraction(), 0.006);
}

TEST(ExtraElements, PartPointsSumToTotal) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  ExtraElementsReport R =
      countExtraElements(M.Program, Target, partition1D(Target, 3, 0));
  ASSERT_EQ(R.PartPoints.size(), 3u);
  int64_t Sum = 0;
  for (int64_t P : R.PartPoints)
    Sum += P;
  EXPECT_EQ(Sum, R.PartitionedPoints);
  // Middle part has two boundaries, edge parts one each (clipped at the
  // global region): middle >= edges.
  EXPECT_GE(R.PartPoints[1], R.PartPoints[0] - 1);
}

TEST(ExtraElements, TwoDimensionalGridCombinesBothAxes) {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = paperScaledTarget();
  ExtraElementsReport R2x2 =
      countExtraElements(M.Program, Target, partition2D(Target, 2, 2));
  ExtraElementsReport R4x1 =
      countExtraElements(M.Program, Target, partition1D(Target, 4, 0));
  EXPECT_GT(R2x2.extraPoints(), 0);
  // For this aspect ratio, one i-boundary plus one j-boundary (2x2) costs
  // more than three i-boundaries would per boundary pair, but the total
  // comparison depends on areas; just require both are sane and 2x2 counts
  // boundaries from both axes.
  ExtraElementsReport R2x1 =
      countExtraElements(M.Program, Target, partition1D(Target, 2, 0));
  ExtraElementsReport R1x2 =
      countExtraElements(M.Program, Target, partition1D(Target, 2, 1));
  // A 2x2 grid has one full boundary per axis: its extra work is at least
  // the sum of the two 1D cases (corner regions add a little more).
  EXPECT_GE(R2x2.extraPoints(),
            R2x1.extraPoints() + R1x2.extraPoints());
  EXPECT_GT(R4x1.extraPoints(), 0);
}

TEST(ExtraElements, ToyChainExactCount) {
  // Hand-checkable case: a 2-stage chain with +/-1 reach, split in two.
  // Global: stage1 on [0,N), stage0 on [-1,N+1).
  // Parts [0,N/2) and [N/2,N): stage0 regions [-1,N/2+1) and [N/2-1,N+1)
  // overlap by 2 planes -> extra = 2 * crossSection.
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Mid = P.addArray("mid", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  StageDef S0;
  S0.Name = "s0";
  S0.Outputs = {Mid};
  S0.Inputs = {StageInput::alongDim(In, 0, -1, 1)};
  P.addStage(S0);
  StageDef S1;
  S1.Name = "s1";
  S1.Outputs = {Out};
  S1.Inputs = {StageInput::alongDim(Mid, 0, -1, 1)};
  P.addStage(S1);

  Box3 Target = Box3::fromExtents(16, 4, 4);
  ExtraElementsReport R =
      countExtraElements(P, Target, partition1D(Target, 2, 0));
  EXPECT_EQ(R.extraPoints(), 2 * 4 * 4);
}
