//===- tests/placement_test.cpp - NUMA data-placement tests ---------------===//
//
// The placement layer's load-bearing guarantees:
//
//  - every placement policy is a pure data-layout change: results stay
//    bit-identical to the serial reference across strategies, kernel
//    backends and temporal depths;
//  - the executor's remote-traffic estimate, the standalone estimator and
//    the simulator's projection are one number (parity by construction);
//  - the first-touch arena segments tile the shared allocation;
//  - ExecStats carries the v4 placement fields, pin failures are counted
//    but never fatal, and Array3D's untouched-allocation/placed-flag
//    machinery behaves as the executor relies on.
//
//===----------------------------------------------------------------------===//

#include "core/PlacementMap.h"
#include "core/PlanBuilder.h"
#include "core/ScheduleOptimizer.h"
#include "exec/Affinity.h"
#include "exec/PlanExecutor.h"
#include "grid/Placement.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

constexpr int GridNI = 20;
constexpr int GridNJ = 14;
constexpr int GridNK = 8;
constexpr int TimeSteps = 4;
constexpr int Islands = 2;

Array3D referenceResult() {
  ReferenceSolver Solver(GridNI, GridNJ, GridNK);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 77, 0.1, 2.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, -0.25, 0.2);
  Solver.prepareCoefficients();
  Solver.run(TimeSteps);
  Array3D Result(Solver.domain().allocBox());
  Result.copyRegionFrom(Solver.state(), Solver.domain().coreBox());
  return Result;
}

ExecutionPlan makePlan(Strategy Strat, int Depth, PlacementPolicy Place,
                       MachineModel &Host, int NumIslands = Islands) {
  Host = makeToyMachine();
  Host.NumSockets = NumIslands;
  MpdataProgram M = buildMpdataProgram();
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = NumIslands;
  Config.TemporalDepth = Depth;
  Config.Placement = Place;
  ExecutionPlan Plan =
      buildPlan(M.Program, Box3::fromExtents(GridNI, GridNJ, GridNK), Host,
                Config);
  optimizeBarriers(M.Program, Plan);
  return Plan;
}

/// Runs the threaded executor with the placement init epoch armed and
/// returns the core-box result (plus the executor for stats inspection
/// via the out-params).
Array3D placedResult(Strategy Strat, int Depth, PlacementPolicy Place,
                     KernelVariant Kernels, ExecStats *StatsOut = nullptr,
                     int64_t *RemotePerStepOut = nullptr) {
  MachineModel Host;
  ExecutionPlan Plan = makePlan(Strat, Depth, Place, Host);
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  ExecutorOptions Opts;
  Opts.Placement = Place;
  if (Place != PlacementPolicy::None)
    Opts.Pinning = computeThreadPlacement(Plan, Host);
  PlanExecutor Exec(Dom, std::move(Plan), Kernels, Opts);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 77, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(TimeSteps);
  if (StatsOut)
    *StatsOut = Exec.stats();
  if (RemotePerStepOut)
    *RemotePerStepOut = Exec.executor().remoteBytesPerStep();
  Array3D Result(Exec.domain().allocBox());
  Result.copyRegionFrom(Exec.state(), Exec.domain().coreBox());
  return Result;
}

Box3 coreBox() { return Box3::fromExtents(GridNI, GridNJ, GridNK); }

} // namespace

TEST(PlacementTest, BitExactAcrossPoliciesStrategiesAndDepths) {
  Array3D Reference = referenceResult();
  for (PlacementPolicy Place :
       {PlacementPolicy::None, PlacementPolicy::FirstTouch,
        PlacementPolicy::Interleave})
    for (Strategy Strat : {Strategy::Block31D, Strategy::IslandsOfCores})
      for (int Depth : {1, 2})
        for (KernelVariant Kernels :
             {KernelVariant::Reference, KernelVariant::Simd}) {
          Array3D Result = placedResult(Strat, Depth, Place, Kernels);
          EXPECT_EQ(Result.maxAbsDiff(Reference, coreBox()), 0.0)
              << placementPolicyName(Place) << " " << strategyName(Strat)
              << " T=" << Depth << " kernels "
              << kernelVariantName(Kernels);
        }
}

TEST(PlacementTest, ExecutorEstimatorAndSimulatorAgreeExactly) {
  MpdataProgram M = buildMpdataProgram();
  for (PlacementPolicy Place :
       {PlacementPolicy::None, PlacementPolicy::FirstTouch,
        PlacementPolicy::Interleave})
    for (int Depth : {1, 2}) {
      MachineModel Host;
      ExecutionPlan Plan =
          makePlan(Strategy::IslandsOfCores, Depth, Place, Host);
      int64_t Estimated =
          estimateRemoteBytesPerStep(Plan, M.Program, Place);
      int64_t Projected = simulate(Plan, M.Program, Host, TimeSteps)
                              .PlacementRemoteBytesPerStep;
      int64_t Measured = 0;
      placedResult(Strategy::IslandsOfCores, Depth, Place,
                   KernelVariant::Reference, nullptr, &Measured);
      EXPECT_EQ(Measured, Estimated)
          << placementPolicyName(Place) << " T=" << Depth;
      EXPECT_EQ(Projected, Estimated)
          << placementPolicyName(Place) << " T=" << Depth;
    }
}

TEST(PlacementTest, FirstTouchMovesLessRemoteTrafficThanAlternatives) {
  int64_t Remote[3] = {0, 0, 0};
  const PlacementPolicy Policies[] = {PlacementPolicy::None,
                                      PlacementPolicy::FirstTouch,
                                      PlacementPolicy::Interleave};
  for (size_t P = 0; P != 3; ++P)
    placedResult(Strategy::IslandsOfCores, 1, Policies[P],
                 KernelVariant::Reference, nullptr, &Remote[P]);
  EXPECT_LT(Remote[1], Remote[0]); // first-touch < serial init
  EXPECT_LT(Remote[1], Remote[2]); // first-touch < interleave
}

TEST(PlacementTest, ArenaSegmentsTileTheSharedAllocation) {
  MachineModel Host;
  ExecutionPlan Plan =
      makePlan(Strategy::IslandsOfCores, 1, PlacementPolicy::FirstTouch,
               Host);
  PlacementMap Map = buildPlacementMap(Plan, PlacementPolicy::FirstTouch);
  ASSERT_EQ(Map.Segments.size(), Plan.Islands.size());
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  Box3 Alloc = Dom.allocBox();
  int64_t Covered = 0;
  for (size_t A = 0; A != Map.Segments.size(); ++A) {
    Box3 SegA = Map.arenaSegment(static_cast<int>(A), Alloc);
    Covered += SegA.numPoints();
    for (size_t B = A + 1; B != Map.Segments.size(); ++B) {
      Box3 SegB = Map.arenaSegment(static_cast<int>(B), Alloc);
      EXPECT_TRUE(SegA.intersect(SegB).empty())
          << "segments " << A << " and " << B << " overlap";
    }
  }
  EXPECT_EQ(Covered, Alloc.numPoints());
  // Per-socket ownership partitions any region.
  int64_t Local = 0;
  for (int Socket : Map.ActiveSockets)
    Local += Map.localPoints(Alloc, Socket);
  EXPECT_EQ(Local, Alloc.numPoints());
  EXPECT_EQ(Map.HomeNode, Plan.Islands[0].HomeSocket);
}

TEST(PlacementTest, SingleIslandFallbackProjectsZeroRemoteBytes) {
  MpdataProgram M = buildMpdataProgram();
  for (PlacementPolicy Place :
       {PlacementPolicy::None, PlacementPolicy::FirstTouch,
        PlacementPolicy::Interleave}) {
    MachineModel Host;
    ExecutionPlan Plan = makePlan(Strategy::IslandsOfCores, 1, Place, Host,
                                  /*NumIslands=*/1);
    EXPECT_EQ(estimateRemoteBytesPerStep(Plan, M.Program, Place), 0)
        << placementPolicyName(Place);
  }
}

TEST(PlacementTest, StatsCarrySchemaV4PlacementFields) {
  ExecStats Stats;
  int64_t RemotePerStep = 0;
  placedResult(Strategy::IslandsOfCores, 1, PlacementPolicy::FirstTouch,
               KernelVariant::Reference, &Stats, &RemotePerStep);
  EXPECT_EQ(Stats.Placement, "firsttouch");
  EXPECT_GT(Stats.PagesFirstTouched, 0);
  EXPECT_GE(Stats.PinFailures, 0);
  EXPECT_EQ(Stats.RemoteBytesEst, RemotePerStep * TimeSteps);

  placedResult(Strategy::IslandsOfCores, 1, PlacementPolicy::None,
               KernelVariant::Reference, &Stats, &RemotePerStep);
  EXPECT_EQ(Stats.Placement, "none");
  EXPECT_EQ(Stats.PagesFirstTouched, 0);
}

TEST(PlacementTest, BogusPinningCountsFailuresAndStaysExact) {
  // Cores far beyond any host: every pin attempt is rejected; the run
  // must count one failure per worker, warn (once), and still reproduce
  // the reference bit-exactly — placement degrades, correctness never.
  MachineModel Host;
  ExecutionPlan Plan = makePlan(Strategy::IslandsOfCores, 1,
                                PlacementPolicy::FirstTouch, Host);
  std::vector<ThreadPlacement> Pinning = computeThreadPlacement(Plan, Host);
  for (size_t T = 0; T != Pinning.size(); ++T)
    Pinning[T].GlobalCore = (1 << 20) + static_cast<int>(T);
  int64_t Workers = static_cast<int64_t>(Pinning.size());

  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  ExecutorOptions Opts;
  Opts.Placement = PlacementPolicy::FirstTouch;
  Opts.Pinning = std::move(Pinning);
  PlanExecutor Exec(Dom, std::move(Plan), KernelVariant::Reference, Opts);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 77, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(TimeSteps);

  EXPECT_EQ(Exec.stats().PinFailures, Workers);
  Array3D Reference = referenceResult();
  EXPECT_EQ(Exec.state().maxAbsDiff(Reference, coreBox()), 0.0);
}

TEST(PlacementTest, HugePageAdviceKeepsResultsExact) {
  MachineModel Host;
  ExecutionPlan Plan = makePlan(Strategy::IslandsOfCores, 1,
                                PlacementPolicy::FirstTouch, Host);
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  ExecutorOptions Opts;
  Opts.Placement = PlacementPolicy::FirstTouch;
  Opts.HugePages = true;
  Opts.Pinning = computeThreadPlacement(Plan, Host);
  PlanExecutor Exec(Dom, std::move(Plan), KernelVariant::Reference, Opts);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 77, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(TimeSteps);
  Array3D Reference = referenceResult();
  EXPECT_EQ(Exec.state().maxAbsDiff(Reference, coreBox()), 0.0);
}

TEST(PlacementTest, ParsePolicyAcceptsAllSpellings) {
  PlacementPolicy P;
  EXPECT_TRUE(parsePlacementPolicy("none", P));
  EXPECT_EQ(P, PlacementPolicy::None);
  EXPECT_TRUE(parsePlacementPolicy("serial", P));
  EXPECT_EQ(P, PlacementPolicy::None);
  EXPECT_TRUE(parsePlacementPolicy("firsttouch", P));
  EXPECT_EQ(P, PlacementPolicy::FirstTouch);
  EXPECT_TRUE(parsePlacementPolicy("first-touch", P));
  EXPECT_EQ(P, PlacementPolicy::FirstTouch);
  EXPECT_TRUE(parsePlacementPolicy("interleave", P));
  EXPECT_EQ(P, PlacementPolicy::Interleave);
  EXPECT_FALSE(parsePlacementPolicy("bogus", P));
}

TEST(Array3DPlacementTest, ResetUntouchedTracksThePlacedFlag) {
  Box3 Space = Box3::fromExtents(8, 8, 8);
  Array3D A;
  A.resetUntouched(Space, Array3D::VectorPadK);
  EXPECT_TRUE(A.allocated());
  EXPECT_FALSE(A.placed());
  A.fill(0.0); // The caller's obligation: zero before reading.
  A.markPlaced();
  EXPECT_TRUE(A.placed());

  // Same-shape reset keeps the allocation — and the placement.
  A.reset(Space, Array3D::VectorPadK);
  EXPECT_TRUE(A.placed());

  // Reallocation (new shape) is the one path that loses residency.
  A.reset(Box3::fromExtents(4, 4, 4));
  EXPECT_FALSE(A.placed());

  A.resetUntouched(Space, Array3D::VectorPadK);
  EXPECT_FALSE(A.placed());
}

TEST(Array3DPlacementTest, HugePageAdviceIsBestEffort) {
  Array3D A;
  A.resetUntouched(Box3::fromExtents(64, 64, 64));
  A.adviseHugePages(); // Must not crash or fail hard, whatever the host.
  A.fill(1.5);
  EXPECT_EQ(A.at(3, 4, 5), 1.5);

  Array3D Tiny;
  Tiny.resetUntouched(Box3::fromExtents(1, 1, 1));
  EXPECT_FALSE(Tiny.adviseHugePages()); // Under a page: advice declined.
}
