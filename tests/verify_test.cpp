//===- tests/verify_test.cpp - Plan-space proof engine tests --------------===//
//
// The plan-space verification engine: enumeration coverage and pruning,
// the proof driver's per-plan verdicts and icores.prove.v1 rendering, the
// temporal coverage model check, and the analysis mutation suite — every
// mutant class must have ground-truth candidates on real plans and be
// killed by exactly the checker it targets.
//
//===----------------------------------------------------------------------===//

#include "apps/Workloads.h"
#include "core/PlanBuilder.h"
#include "core/PlanVerifier.h"
#include "exec/ScheduleCheck.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/WorkloadRegistry.h"
#include "support/Diagnostics.h"
#include "support/OStream.h"
#include "support/Random.h"
#include "verify/Mutator.h"
#include "verify/PlanSpace.h"
#include "verify/ProofDriver.h"

#include <gtest/gtest.h>

#include <set>

using namespace icores;

namespace {

/// Workloads in the built-in registry. Expected point counts derive from
/// this so registering a new workload (the registry contract's whole
/// point) never requires edits here.
size_t numWorkloads() { return builtinWorkloads().size(); }

/// The reduced space most tests use: every registered workload x
/// 3 strategies x {1,2} teams x {1,2} depths x elision = 24 points per
/// workload, all feasible.
PlanSpaceOptions smokeSpace() {
  PlanSpaceOptions Opts;
  Opts.TeamCounts = {1, 2};
  Opts.TemporalDepths = {1, 2};
  return Opts;
}

//===----------------------------------------------------------------------===//
// Plan-space enumeration
//===----------------------------------------------------------------------===//

TEST(PlanSpaceTest, FullSpaceCoversEveryRegisteredWorkload) {
  PlanSpaceEnumeration E = enumeratePlanSpace();
  ASSERT_EQ(E.Workloads.size(), numWorkloads());
  ASSERT_GE(E.Workloads.size(), 3u);
  for (size_t W = 0; W != E.Workloads.size(); ++W)
    EXPECT_EQ(E.Workloads[W].Name,
              builtinWorkloads().workloads()[W].Name);
  // Per workload: 3 strategies x 3 team counts x 3 depths x 2 elision.
  EXPECT_EQ(E.Plans.size(), numWorkloads() * 54u);
  std::set<std::string> Labels;
  for (const EnumeratedPlan &P : E.Plans) {
    EXPECT_TRUE(Labels.insert(P.Point.Label).second)
        << "duplicate label " << P.Point.Label;
    EXPECT_EQ(P.Feasible, P.PruneReason.empty()) << P.Point.Label;
    if (P.Feasible) {
      EXPECT_FALSE(P.Plan.Islands.empty()) << P.Point.Label;
      EXPECT_EQ(P.Plan.TemporalDepth, P.Point.TemporalDepth)
          << P.Point.Label;
    }
  }
  // On the default grid every point is feasible: the prove record set
  // covers the whole space with verdicts, not gaps.
  for (const EnumeratedPlan &P : E.Plans)
    EXPECT_TRUE(P.Feasible) << P.Point.Label << ": " << P.PruneReason;
}

TEST(PlanSpaceTest, ElisionVariantsActuallyElide) {
  PlanSpaceEnumeration E = enumeratePlanSpace(smokeSpace());
  int64_t Elided = 0;
  for (const EnumeratedPlan &P : E.Plans) {
    if (!P.Point.Elide)
      EXPECT_EQ(P.ElidedBarriers, 0) << P.Point.Label;
    else
      Elided += P.ElidedBarriers;
  }
  EXPECT_GT(Elided, 0) << "no elide variant removed any barrier";
}

TEST(PlanSpaceTest, InfeasibleTemporalDepthsArePrunedWithAReason) {
  // On an 8^3 grid the depth-4 MPDATA cone (grown by 18) exceeds the
  // advisor's 2x bound, so every T=4 point must be pruned — same rule,
  // same outcome, visible reason.
  PlanSpaceOptions Opts;
  Opts.NI = Opts.NJ = Opts.NK = 8;
  Opts.TimeSteps = 8;
  PlanSpaceEnumeration E = enumeratePlanSpace(Opts);
  EXPECT_EQ(E.Plans.size(), numWorkloads() * 54u);
  size_t Pruned = 0;
  for (const EnumeratedPlan &P : E.Plans)
    if (P.Point.Workload == "mpdata" && P.Point.TemporalDepth == 4) {
      EXPECT_FALSE(P.Feasible) << P.Point.Label;
      EXPECT_FALSE(P.PruneReason.empty()) << P.Point.Label;
      ++Pruned;
    }
  EXPECT_EQ(Pruned, 18u); // 3 strategies x 3 team counts x 2 elision.
}

TEST(PlanSpaceTest, MachineMapsTeamsOntoSockets) {
  for (int Teams : {1, 2, 4}) {
    MachineModel M = planSpaceMachine(Teams);
    EXPECT_EQ(M.NumSockets, Teams);
  }
  EXPECT_STREQ(strategyKey(Strategy::Original), "original");
  EXPECT_STREQ(strategyKey(Strategy::Block31D), "block31d");
  EXPECT_STREQ(strategyKey(Strategy::IslandsOfCores), "islands");
}

//===----------------------------------------------------------------------===//
// Proof driver
//===----------------------------------------------------------------------===//

TEST(ProofDriverTest, SmokeSuiteProvesEveryPlanAndKillsEveryMutant) {
  ProofOptions Opts;
  Opts.Space = smokeSpace();
  Opts.BarrierThreadCounts = {2, 3};
  Opts.MutantsPerClass = 2;
  ProofReport Report = runProofSuite(Opts);

  EXPECT_EQ(Report.Plans.size(), numWorkloads() * 24u);
  EXPECT_EQ(Report.numWithVerdict("proved"), numWorkloads() * 24u);
  EXPECT_EQ(Report.numWithVerdict("violated"), 0u);
  EXPECT_TRUE(Report.allPlansProved());

  // Protocol: per-N barrier proofs, both model mutants caught, three
  // comm grids in clean and death flavours, all comm mutants caught.
  EXPECT_EQ(Report.Barrier.size(), 2u);
  for (const BarrierProofRecord &R : Report.Barrier)
    EXPECT_TRUE(R.Ok) << R.Threads << " threads: " << R.Witness;
  EXPECT_EQ(Report.BarrierMutants.size(), 2u);
  for (const BarrierMutantRecord &R : Report.BarrierMutants)
    EXPECT_TRUE(R.Caught) << R.Mutant;
  EXPECT_EQ(Report.Comm.size(), 6u);
  for (const CommProofRecord &R : Report.Comm)
    EXPECT_TRUE(R.Ok) << R.PI << "x" << R.PJ << " " << R.Kind;
  for (const CommMutantRecord &R : Report.CommMutants)
    EXPECT_TRUE(R.Caught) << R.Mutant;
  EXPECT_TRUE(Report.protocolOk());

  // Mutation suite: one record per class, full kill rate.
  ASSERT_EQ(Report.Mutation.size(), 5u);
  for (const MutationClassRecord &R : Report.Mutation) {
    EXPECT_GE(R.Mutants, 1) << mutantClassName(R.Class);
    EXPECT_EQ(R.Killed, R.Mutants) << mutantClassName(R.Class);
  }
  EXPECT_DOUBLE_EQ(Report.killRate(), 1.0);
  EXPECT_TRUE(Report.allMutantsKilled());
  EXPECT_TRUE(Report.ok());

  // icores.prove.v1 rendering carries the verdicts and the summary.
  std::string Json;
  StringOStream OS(Json);
  writeProveJson(Report, OS);
  EXPECT_NE(Json.find("\"schema\": \"icores.prove.v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"verdict\": \"proved\""), std::string::npos);
  EXPECT_NE(Json.find("\"kill_rate\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"ok\": true"), std::string::npos);
}

TEST(ProofDriverTest, PrunedPointsGetPrunedVerdicts) {
  ProofOptions Opts;
  Opts.Space.NI = Opts.Space.NJ = Opts.Space.NK = 8;
  Opts.Space.TeamCounts = {1};
  Opts.Space.TemporalDepths = {1, 4};
  Opts.RunMutation = false;
  Opts.BarrierThreadCounts = {2};
  ProofReport Report = runProofSuite(Opts);
  EXPECT_GT(Report.numWithVerdict("pruned"), 0u);
  EXPECT_EQ(Report.numWithVerdict("violated"), 0u);
  EXPECT_TRUE(Report.allPlansProved());
  for (const PlanProofRecord &R : Report.Plans)
    if (R.Verdict == "pruned") {
      EXPECT_FALSE(R.PruneReason.empty()) << R.Point.Label;
    }
  // With mutation off the report must not claim a kill rate of zero.
  EXPECT_DOUBLE_EQ(Report.killRate(), 1.0);
  EXPECT_TRUE(Report.ok());
}

TEST(ProofDriverTest, TemporalCoverageModelHoldsOnBuiltPlans) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = planSpaceMachine(2);
  for (int T : {1, 2, 4}) {
    PlanConfig Config;
    Config.Strat = Strategy::IslandsOfCores;
    Config.Sockets = 2;
    Config.TemporalDepth = T;
    ExecutionPlan Plan = buildPlan(
        M.Program, Box3::fromExtents(48, 32, 32), Machine, Config);
    DiagnosticEngine Diags;
    EXPECT_TRUE(checkTemporalCoverage(M.Program, Plan, Diags))
        << "T=" << T << ": " << Diags.firstErrorMessage();
  }
}

//===----------------------------------------------------------------------===//
// Analysis mutation testing
//===----------------------------------------------------------------------===//

/// Runs the same checkers the proof driver uses on one plan.
void runCheckers(const StencilProgram &Program, const ExecutionPlan &Plan,
                 DiagnosticEngine &Diags) {
  verifyPlan(Plan, Program, Diags);
  checkPlanRaces(Program, Plan, Diags);
}

TEST(MutatorTest, EveryClassIsKilledByItsOwnCheckerAcrossTheSpace) {
  // Sample the same space the proof driver mutates: for each class, every
  // plan with a ground-truth candidate must yield a mutant the matching
  // checker kills, and each class must find candidates somewhere.
  PlanSpaceEnumeration E = enumeratePlanSpace(smokeSpace());
  for (MutantClass Class : AllMutantClasses) {
    int Candidates = 0, Killed = 0;
    for (const EnumeratedPlan &P : E.Plans) {
      if (!P.Feasible)
        continue;
      const StencilProgram &Program =
          E.Workloads[P.Point.WorkloadIndex].Program;
      SplitMix64 Rng(42 + static_cast<uint64_t>(Candidates));
      ExecutionPlan Mutant = P.Plan;
      if (!applyMutation(Mutant, Program, Class, Rng))
        continue;
      ++Candidates;
      DiagnosticEngine Diags;
      runCheckers(Program, Mutant, Diags);
      if (mutantKilled(Class, Diags))
        ++Killed;
      else
        ADD_FAILURE() << mutantClassName(Class) << " survived on "
                      << P.Point.Label << " (kill prefix "
                      << mutantKillIdPrefix(Class)
                      << "): " << Diags.firstErrorMessage();
      if (Candidates == 6)
        break; // A handful per class keeps the test fast.
    }
    EXPECT_GT(Candidates, 0)
        << mutantClassName(Class) << ": no ground-truth candidate in space";
    EXPECT_EQ(Killed, Candidates) << mutantClassName(Class);
  }
}

TEST(MutatorTest, ClassesWithoutCandidatesDeclineUnsuitablePlans) {
  MpdataProgram M = buildMpdataProgram();
  // One socket, one thread per island, depth 1: no second thread to race
  // with and no fused-step boundary to reorder across.
  MachineModel Machine = planSpaceMachine(1);
  Machine.CoresPerSocket = 1;
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 1;
  ExecutionPlan Plan =
      buildPlan(M.Program, Box3::fromExtents(24, 16, 8), Machine, Config);
  ASSERT_EQ(Plan.Islands[0].NumThreads, 1);
  SplitMix64 Rng(7);
  ExecutionPlan Copy = Plan;
  EXPECT_FALSE(
      applyMutation(Copy, M.Program, MutantClass::DropBarrier, Rng));
  EXPECT_FALSE(
      applyMutation(Copy, M.Program, MutantClass::ReorderEpochStep, Rng));
}

TEST(MutatorTest, KillPrefixMatchesTemporalStepSuffixedIds) {
  // The race ids of temporal plans carry a .step<k> suffix; the
  // drop-barrier kill test matches on the "race.intra." prefix, so the
  // suffixed form must still count as a kill.
  DiagnosticEngine Diags;
  Diags.report(Severity::Error, "race.intra.read-write.step2", "seeded");
  EXPECT_TRUE(mutantKilled(MutantClass::DropBarrier, Diags));
  DiagnosticEngine Other;
  Other.report(Severity::Error, "plan.output.coverage", "seeded");
  EXPECT_FALSE(mutantKilled(MutantClass::DropBarrier, Other));
  EXPECT_TRUE(mutantKilled(MutantClass::NarrowWindow, Other));
}

} // namespace
