//===- tests/exec_stats_test.cpp - Executor observability tests -----------===//
//
// Tests of the executor observability layer: the persistent WorkerPool
// (threads spawn once and are reused by every run()), and ExecStats
// (pass/barrier counts match the plan, profiling never perturbs the
// numerics, the JSON/CSV reports are well formed).
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "exec/ExecStats.h"
#include "exec/PlanExecutor.h"
#include "exec/WorkerPool.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/OStream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using namespace icores;

namespace {

constexpr int GridNI = 16;
constexpr int GridNJ = 12;
constexpr int GridNK = 8;

ExecutionPlan makeIslandsPlan(const MpdataProgram &M, int Sockets) {
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = Sockets;
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = Sockets;
  return buildPlan(M.Program,
                   Box3::fromExtents(GridNI, GridNJ, GridNK), Machine,
                   Config);
}

std::unique_ptr<PlanExecutor> makeExecutor(const MpdataProgram &M,
                                           int Sockets) {
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  auto Exec = std::make_unique<PlanExecutor>(Dom, makeIslandsPlan(M, Sockets));
  fillRandomPositive(Exec->stateIn(), Dom, 321, 0.1, 2.0);
  setConstantVelocity(Exec->velocity(0), Exec->velocity(1),
                      Exec->velocity(2), Dom, 0.3, -0.25, 0.2);
  Exec->prepareCoefficients();
  return Exec;
}

/// Passes in one island's schedule, total and per stage.
int64_t planPasses(const IslandPlan &Island) {
  int64_t N = 0;
  for (const BlockTask &Block : Island.Blocks)
    N += static_cast<int64_t>(Block.Passes.size());
  return N;
}

int64_t planPassesOfStage(const IslandPlan &Island, size_t Stage) {
  int64_t N = 0;
  for (const BlockTask &Block : Island.Blocks)
    for (const StagePass &Pass : Block.Passes)
      if (static_cast<size_t>(Pass.Stage) == Stage)
        ++N;
  return N;
}

} // namespace

TEST(WorkerPoolTest, RunsTheJobOnEveryWorkerAndReusesThreads) {
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.spawnedThreads(), 0); // Lazy: nothing spawned yet.

  std::vector<std::atomic<int>> Hits(4);
  for (int Round = 0; Round != 3; ++Round)
    Pool.runOnAll([&](int Worker) { ++Hits[static_cast<size_t>(Worker)]; });

  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 3);
  EXPECT_EQ(Pool.spawnedThreads(), 4); // Spawned once, not per dispatch.
  EXPECT_EQ(Pool.dispatches(), 3);
}

TEST(ExecStatsTest, PassAndBarrierCountsMatchThePlan) {
  constexpr int Steps = 3;
  MpdataProgram M = buildMpdataProgram();
  auto Exec = makeExecutor(M, 2);
  Exec->enableProfiling(true);
  Exec->run(Steps);

  const ExecutionPlan &Plan = Exec->plan();
  const ExecStats &Stats = Exec->stats();
  ASSERT_EQ(Stats.Islands.size(), Plan.Islands.size());
  EXPECT_EQ(Stats.StepsRun, Steps);

  for (size_t I = 0; I != Plan.Islands.size(); ++I) {
    const IslandPlan &IslandP = Plan.Islands[I];
    const IslandStat &IslandS = Stats.Islands[I];
    int64_t Expected = Steps * planPasses(IslandP);

    // Team-level pass executions match the schedule, stage by stage.
    EXPECT_EQ(IslandS.teamPasses(), Expected);
    for (size_t S = 0; S != IslandS.Stages.size(); ++S)
      EXPECT_EQ(IslandS.Stages[S].Passes,
                Steps * planPassesOfStage(IslandP, S))
          << "island " << I << " stage " << S;

    // Every thread visits every pass and crosses one team barrier per
    // pass — the executor's lockstep invariant.
    ASSERT_EQ(IslandS.Threads.size(),
              static_cast<size_t>(IslandP.NumThreads));
    for (const ThreadStat &T : IslandS.Threads) {
      EXPECT_EQ(T.Passes, Expected);
      EXPECT_EQ(T.BarrierWaits, Expected);
    }
  }
}

TEST(ExecStatsTest, PoolSpawnsThreadsOnlyOnceAcrossRuns) {
  MpdataProgram M = buildMpdataProgram();
  auto Exec = makeExecutor(M, 2);
  Exec->enableProfiling(true);

  int TotalThreads = 0;
  for (const IslandPlan &Island : Exec->plan().Islands)
    TotalThreads += Island.NumThreads;

  Exec->run(1);
  Exec->run(2);
  Exec->run(1);

  const ExecStats &Stats = Exec->stats();
  EXPECT_EQ(Stats.RunCalls, 3);
  EXPECT_EQ(Stats.PoolDispatches, 3);
  EXPECT_EQ(Stats.ThreadsSpawned, TotalThreads); // The reuse guarantee.
  EXPECT_EQ(Stats.StepsRun, 4);
}

TEST(ExecStatsTest, ProfilingDoesNotPerturbTheNumerics) {
  constexpr int Steps = 4;
  MpdataProgram M = buildMpdataProgram();
  auto Plain = makeExecutor(M, 2);
  Plain->run(Steps);
  auto Profiled = makeExecutor(M, 2);
  Profiled->enableProfiling(true);
  Profiled->run(Steps);
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  EXPECT_EQ(Profiled->state().maxAbsDiff(Plain->state(), Dom.coreBox()),
            0.0);
}

TEST(ExecStatsTest, DisabledProfilingTakesNoMeasurements) {
  MpdataProgram M = buildMpdataProgram();
  auto Exec = makeExecutor(M, 2);
  Exec->run(2);
  const ExecStats &Stats = Exec->stats();
  EXPECT_FALSE(Stats.Enabled);
  EXPECT_EQ(Stats.kernelSeconds(), 0.0);
  EXPECT_EQ(Stats.WallSeconds, 0.0);
  // Pool bookkeeping is maintained regardless.
  EXPECT_EQ(Stats.RunCalls, 1);
  EXPECT_GT(Stats.ThreadsSpawned, 0);
}

TEST(ExecStatsTest, TimersMeasureSomethingAndImbalanceIsSane) {
  MpdataProgram M = buildMpdataProgram();
  auto Exec = makeExecutor(M, 2);
  Exec->enableProfiling(true);
  Exec->run(3);
  const ExecStats &Stats = Exec->stats();
  EXPECT_GT(Stats.kernelSeconds(), 0.0);
  EXPECT_GT(Stats.WallSeconds, 0.0);
  EXPECT_GE(Stats.teamBarrierWaitSeconds(), 0.0);
  double Share = Stats.barrierShare();
  EXPECT_GE(Share, 0.0);
  EXPECT_LE(Share, 1.0);
  for (const IslandStat &Island : Stats.Islands)
    EXPECT_GE(Island.imbalance(), 1.0); // Max >= mean whenever work ran.
}

TEST(ExecStatsTest, ResetClearsMeasurementsButKeepsThePool) {
  MpdataProgram M = buildMpdataProgram();
  auto Exec = makeExecutor(M, 2);
  Exec->enableProfiling(true);
  Exec->run(2);
  ASSERT_GT(Exec->stats().kernelSeconds(), 0.0);
  int64_t Spawned = Exec->stats().ThreadsSpawned;
  Exec->resetStats();
  EXPECT_EQ(Exec->stats().kernelSeconds(), 0.0);
  EXPECT_EQ(Exec->stats().StepsRun, 0);
  EXPECT_EQ(Exec->stats().ThreadsSpawned, Spawned);

  // Measurements after a reset are well formed again.
  Exec->run(1);
  EXPECT_GT(Exec->stats().kernelSeconds(), 0.0);
}

TEST(ExecStatsTest, JsonReportIsWellFormed) {
  MpdataProgram M = buildMpdataProgram();
  auto Exec = makeExecutor(M, 2);
  Exec->enableProfiling(true);
  Exec->run(2);
  std::string Json = Exec->stats().toJsonString();

  EXPECT_NE(Json.find("\"schema\": \"icores.exec_stats.v5\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"islands\""), std::string::npos);
  EXPECT_NE(Json.find("\"stages\""), std::string::npos);
  EXPECT_NE(Json.find("\"barrier_wait_seconds\""), std::string::npos);
  EXPECT_NE(Json.find("\"threads_spawned\""), std::string::npos);
  EXPECT_NE(Json.find("\"elided_barriers\""), std::string::npos);
  EXPECT_NE(Json.find("\"spin_wakes\""), std::string::npos);
  EXPECT_NE(Json.find("\"sleep_wakes\""), std::string::npos);
  // v3 additions: the fault-injection counters, zero on a clean run.
  EXPECT_NE(Json.find("\"faults_injected\": 0"), std::string::npos);
  EXPECT_NE(Json.find("\"retries\": 0"), std::string::npos);
  EXPECT_NE(Json.find("\"timeouts\": 0"), std::string::npos);
  EXPECT_NE(Json.find("\"recovered\": 0"), std::string::npos);

  // Balanced braces/brackets and no trailing commas before closers.
  int Braces = 0, Brackets = 0;
  for (size_t I = 0; I != Json.size(); ++I) {
    char C = Json[I];
    Braces += C == '{' ? 1 : (C == '}' ? -1 : 0);
    Brackets += C == '[' ? 1 : (C == ']' ? -1 : 0);
    ASSERT_GE(Braces, 0);
    ASSERT_GE(Brackets, 0);
    if (C == ',') {
      size_t Next = Json.find_first_not_of(" \n\r\t", I + 1);
      ASSERT_NE(Next, std::string::npos);
      EXPECT_NE(Json[Next], '}');
      EXPECT_NE(Json[Next], ']');
    }
  }
  EXPECT_EQ(Braces, 0);
  EXPECT_EQ(Brackets, 0);
}

TEST(ExecStatsTest, CheckedInV2GoldenStaysAGenuineV2Document) {
  // bench/validate_bench_json.py keeps accepting exec_stats v2; this
  // guards the checked-in fixture it is tested against: the fixture must
  // keep declaring v2 and must not grow the v3-only fault counters
  // (otherwise the backward-compat path is silently testing v3 twice).
  std::string Path =
      std::string(ICORES_TEST_DATA_DIR) + "/golden/exec_stats.v2.json";
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "missing golden file " << Path;
  std::string Golden;
  char Chunk[4096];
  for (size_t N; (N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0;)
    Golden.append(Chunk, N);
  std::fclose(F);

  EXPECT_NE(Golden.find("\"schema\": \"icores.exec_stats.v2\""),
            std::string::npos);
  EXPECT_EQ(Golden.find("faults_injected"), std::string::npos);
  EXPECT_EQ(Golden.find("\"timeouts\""), std::string::npos);
  // Fields shared by v2 and v3 are present, so the validator's common
  // checks run against real content.
  for (const char *Key :
       {"\"islands\"", "\"barrier_share\"", "\"spin_wakes\"",
        "\"sleep_wakes\"", "\"elided_barriers\""})
    EXPECT_NE(Golden.find(Key), std::string::npos) << Key;
}

TEST(ExecStatsTest, CsvReportHasOneRowPerActiveIslandStage) {
  MpdataProgram M = buildMpdataProgram();
  auto Exec = makeExecutor(M, 2);
  Exec->enableProfiling(true);
  Exec->run(1);

  std::string Csv;
  StringOStream OS(Csv);
  Exec->stats().writeCsv(OS);

  size_t Lines = 0;
  for (char C : Csv)
    Lines += C == '\n';
  size_t ActiveStages = 0;
  for (const IslandStat &Island : Exec->stats().Islands)
    for (const StageStat &Stage : Island.Stages)
      ActiveStages += Stage.Passes > 0;
  EXPECT_EQ(Lines, ActiveStages + 1); // Rows plus the header.
}
