//===- tests/shadow_store_test.cpp - Dynamic shadow race detection --------===//
//
// The shadow race detector, both directions: seeded unordered access
// patterns driven through the direct-drive interface must be flagged
// (single-threaded on purpose — these replay *defective* schedules, which
// must never run as real races under the TSan job), and every execution
// the static ScheduleCheck certifies race-free — all strategies, temporal
// depths 1/2/4, stock and elided — must run clean under the observer
// hooks with the real threaded executor.
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "core/ScheduleOptimizer.h"
#include "exec/ProgramExecutor.h"
#include "exec/RegionSplit.h"
#include "exec/ScheduleCheck.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "mpdata/Solver.h"
#include "support/Diagnostics.h"
#include "support/Random.h"
#include "verify/Mutator.h"
#include "verify/ShadowStore.h"
#include "verify/VectorClock.h"

#include <gtest/gtest.h>

#include <map>

using namespace icores;

namespace {

//===----------------------------------------------------------------------===//
// Vector clocks
//===----------------------------------------------------------------------===//

TEST(VectorClockTest, CoversMergeAndTick) {
  VectorClock A, B;
  A.set(0, 3);
  B.set(1, 2);
  EXPECT_TRUE(A.covers(0, 3));
  EXPECT_FALSE(A.covers(0, 4));
  EXPECT_FALSE(A.covers(1, 1));
  A.merge(B);
  EXPECT_TRUE(A.covers(0, 3));
  EXPECT_TRUE(A.covers(1, 2));
  A.tick(0);
  EXPECT_TRUE(A.covers(0, 4));
  // merge() keeps per-component maxima.
  VectorClock C;
  C.set(0, 10);
  A.merge(C);
  EXPECT_TRUE(A.covers(0, 10));
  EXPECT_TRUE(A.covers(1, 2));
}

//===----------------------------------------------------------------------===//
// Direct-drive seeded positives (single-threaded replays of bad schedules)
//===----------------------------------------------------------------------===//

/// Replays a barrier crossing for workers [0, N) at \p Site.
void crossBarrier(ShadowStore &Shadow, uint64_t Site, int N) {
  for (int W = 0; W != N; ++W)
    Shadow.onBarrierArrive(Site, W, N);
  for (int W = 0; W != N; ++W)
    Shadow.onBarrierDepart(Site, W);
}

TEST(ShadowStoreTest, UnorderedOverlappingWritesAreAWriteWriteRace) {
  Array3D A(Box3::fromExtents(16, 8, 4));
  ShadowStore Shadow;
  Shadow.recordWrite(0, A, Box3::fromExtents(10, 8, 4), "a");
  Shadow.recordWrite(1, A, Box3(6, 0, 0, 16, 8, 4), "a");
  EXPECT_GT(Shadow.raceCount(), 0u);
  DiagnosticEngine Diags;
  Shadow.reportFindings(Diags);
  EXPECT_TRUE(Diags.hasFinding("shadow.race.write-write"));
}

TEST(ShadowStoreTest, BarrierOrdersTheSameWrites) {
  Array3D A(Box3::fromExtents(16, 8, 4));
  ShadowStore Shadow;
  Shadow.recordWrite(0, A, Box3::fromExtents(10, 8, 4), "a");
  crossBarrier(Shadow, 1, 2);
  Shadow.recordWrite(1, A, Box3(6, 0, 0, 16, 8, 4), "a");
  EXPECT_TRUE(Shadow.clean());
  EXPECT_GT(Shadow.accessCount(), 0u);
}

TEST(ShadowStoreTest, UnorderedReadOfAForeignWriteIsAReadWriteRace) {
  Array3D A(Box3::fromExtents(16, 8, 4));
  ShadowStore Shadow;
  Shadow.recordWrite(0, A, Box3::fromExtents(8, 8, 4), "a");
  Shadow.recordRead(1, A, Box3(7, 0, 0, 9, 8, 4), "a");
  EXPECT_EQ(Shadow.raceCount(), 1u * 8 * 4); // The overlapping i=7 plane.
  DiagnosticEngine Diags;
  Shadow.reportFindings(Diags);
  EXPECT_TRUE(Diags.hasFinding("shadow.race.read-write"));
}

TEST(ShadowStoreTest, WriteAfterUnorderedReadIsARace) {
  // The dual direction: worker 1 already read the cells, worker 0's write
  // lands with no barrier in between — the read map must catch it even
  // though the last *writer* is worker 0 itself.
  Array3D A(Box3::fromExtents(8, 4, 2));
  ShadowStore Shadow;
  Shadow.recordWrite(0, A, Box3::fromExtents(8, 4, 2), "a");
  crossBarrier(Shadow, 1, 2);
  Shadow.recordRead(1, A, Box3::fromExtents(8, 4, 2), "a");
  Shadow.recordWrite(0, A, Box3::fromExtents(4, 4, 2), "a");
  EXPECT_GT(Shadow.raceCount(), 0u);
  DiagnosticEngine Diags;
  Shadow.reportFindings(Diags);
  EXPECT_TRUE(Diags.hasFinding("shadow.race.read-write"));
}

TEST(ShadowStoreTest, DistinctArraysNeverCollide) {
  Array3D A(Box3::fromExtents(8, 4, 2)), B(Box3::fromExtents(8, 4, 2));
  ShadowStore Shadow;
  Shadow.recordWrite(0, A, Box3::fromExtents(8, 4, 2), "a");
  Shadow.recordWrite(1, B, Box3::fromExtents(8, 4, 2), "b");
  EXPECT_TRUE(Shadow.clean());
}

TEST(ShadowStoreTest, BarrierGenerationsSurviveReuse) {
  // Three crossings of the same site; accesses between consecutive
  // crossings are ordered, accesses spanning none are not.
  Array3D A(Box3::fromExtents(4, 4, 4));
  ShadowStore Shadow;
  for (int Round = 0; Round != 3; ++Round) {
    Shadow.recordWrite(Round % 2, A, Box3::fromExtents(4, 4, 4), "a");
    crossBarrier(Shadow, 7, 2);
  }
  EXPECT_TRUE(Shadow.clean());
  Shadow.clear();
  EXPECT_EQ(Shadow.accessCount(), 0u);
}

TEST(ShadowStoreTest, WitnessStorageIsCappedButCountingIsNot) {
  ShadowStore::Options Opts;
  Opts.MaxWitnesses = 2;
  ShadowStore Shadow(Opts);
  Array3D A(Box3::fromExtents(8, 8, 8));
  Shadow.recordWrite(0, A, Box3::fromExtents(8, 8, 8), "a");
  Shadow.recordWrite(1, A, Box3::fromExtents(8, 8, 8), "a");
  EXPECT_EQ(Shadow.raceCount(), 8u * 8 * 8);
  DiagnosticEngine Diags;
  Shadow.reportFindings(Diags);
  EXPECT_EQ(Diags.numErrors(), 2u);
  EXPECT_TRUE(Diags.hasFinding("shadow.race.truncated"));
}

//===----------------------------------------------------------------------===//
// Mutated schedules replayed through the shadow store (still one thread)
//===----------------------------------------------------------------------===//

TEST(ShadowStoreTest, DropBarrierMutantIsCaughtInReplay) {
  // Apply the drop-barrier analysis mutation to a real islands plan, then
  // replay island 0's schedule — every thread's reads and writes under
  // the executor's teamSubRegion split, with barrier hooks only where the
  // (mutated) barrier bits say so. The dropped barrier must surface as a
  // shadow race; the unmutated replay must stay clean.
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  ExecutionPlan Plan =
      buildPlan(M.Program, Box3::fromExtents(32, 16, 8), Machine, Config);

  auto replayIsland = [&](const ExecutionPlan &P, size_t Island) {
    ShadowStore Shadow;
    const IslandPlan &IP = P.Islands[Island];
    int N = IP.NumThreads;
    std::map<ArrayId, Array3D> Arrays;
    for (ArrayId A = 0; A != static_cast<ArrayId>(M.Program.numArrays());
         ++A)
      Arrays.emplace(A, Array3D(Box3::fromExtents(32, 16, 8).grownAll(8)));
    std::vector<IslandSchedule> Schedules = buildIslandSchedules(P);
    for (const ScheduledPass &Pass : Schedules[Island].Passes) {
      const StageDef &SD = M.Program.stage(Pass.Stage);
      for (int T = 0; T != N; ++T) {
        Box3 Sub = teamSubRegion(Pass.Region, T, N);
        if (Sub.empty())
          continue;
        for (const StageInput &In : SD.Inputs)
          Shadow.recordRead(T, Arrays.at(In.Array), In.readRegion(Sub),
                            M.Program.array(In.Array).Name);
        for (ArrayId Out : SD.Outputs)
          Shadow.recordWrite(T, Arrays.at(Out), Sub,
                             M.Program.array(Out).Name);
      }
      if (Pass.BarrierAfter)
        crossBarrier(Shadow, Island + 1, N);
    }
    return Shadow.raceCount();
  };

  EXPECT_EQ(replayIsland(Plan, 0), 0u);

  ExecutionPlan Mutant = Plan;
  SplitMix64 Rng(0xC0FFEEu);
  ASSERT_TRUE(
      applyMutation(Mutant, M.Program, MutantClass::DropBarrier, Rng));
  size_t Races = 0;
  for (size_t I = 0; I != Mutant.Islands.size(); ++I)
    Races += replayIsland(Mutant, I);
  EXPECT_GT(Races, 0u);
}

//===----------------------------------------------------------------------===//
// Real-executor cross-check: statically certified ⇒ dynamically clean
//===----------------------------------------------------------------------===//

void initMpdata(ProgramExecutor &E, const MpdataProgram &M,
                const Domain &Dom) {
  GaussianBlob Blob;
  Blob.CenterI = Dom.ni() / 3.0;
  Blob.CenterJ = Dom.nj() / 2.0;
  Blob.CenterK = Dom.nk() / 2.0;
  Blob.Sigma = 2.5;
  fillGaussian(E.array(M.XIn), Dom, Blob);
  E.array(M.U1).fill(0.25);
  E.array(M.U2).fill(-0.2);
  E.array(M.U3).fill(0.1);
  E.array(M.H).fill(1.0);
  E.prepareInputs();
}

TEST(ShadowStoreTest, CertifiedPlansExecuteCleanAcrossDepthsAndElision) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(18, 12, 8, mpdataHaloDepth());
  MachineModel Machine = makeToyMachine();
  const int Steps = 4;
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores})
    for (int T : {1, 2, 4})
      for (bool Elide : {false, true}) {
        PlanConfig Config;
        Config.Strat = Strat;
        Config.Sockets = Strat == Strategy::Original ? 1 : 2;
        Config.TemporalDepth = T;
        ExecutionPlan Plan =
            buildPlan(M.Program, Dom.coreBox(), Machine, Config);
        if (Elide)
          optimizeBarriers(M.Program, Plan);
        // Only statically certified schedules are cross-checked: the
        // claim under test is "ScheduleCheck race-free ⇒ shadow clean".
        DiagnosticEngine Diags;
        ASSERT_TRUE(checkPlanRaces(M.Program, Plan, Diags))
            << strategyName(Strat) << " T=" << T << " elide=" << Elide;

        ShadowStore Shadow;
        ExecutorOptions Opts;
        Opts.Observer = &Shadow;
        ProgramExecutor Exec(M.Program, buildMpdataKernels(), Dom, Plan,
                             Opts);
        initMpdata(Exec, M, Dom);
        Exec.run(Steps);
        EXPECT_GT(Shadow.accessCount(), 0u)
            << "observer hooks did not fire";
        DiagnosticEngine ShadowDiags;
        Shadow.reportFindings(ShadowDiags);
        std::string Witness = ShadowDiags.firstErrorMessage();
        EXPECT_TRUE(Shadow.clean())
            << strategyName(Strat) << " T=" << T << " elide=" << Elide
            << ": " << Shadow.raceCount() << " shadow races, first: "
            << Witness;
      }
}

} // namespace
