//===- tests/machine_test.cpp - Machine model tests -----------------------===//

#include "machine/MachineModel.h"

#include <gtest/gtest.h>

using namespace icores;

TEST(MachineTest, Uv2000MatchesPaperPeaks) {
  MachineModel M = makeSgiUv2000();
  EXPECT_EQ(M.NumSockets, 14);
  EXPECT_EQ(M.totalCores(), 112);
  // Table 4: 105.6 Gflop/s per CPU, 1478.4 Gflop/s for 14.
  EXPECT_NEAR(M.peakFlopsPerSocket() / 1e9, 105.6, 1e-9);
  EXPECT_NEAR(M.peakFlops(14) / 1e9, 1478.4, 1e-6);
}

TEST(MachineTest, HomeNodeContentionSaturates) {
  MachineModel M = makeSgiUv2000();
  double B1 = M.homeNodeBandwidth(1);
  double B2 = M.homeNodeBandwidth(2);
  double B14 = M.homeNodeBandwidth(14);
  EXPECT_DOUBLE_EQ(B1, M.DramBandwidthPerSocket);
  EXPECT_LT(B2, B1);
  EXPECT_LT(B14, B2);
  // Saturating, not collapsing: the 14-socket rate stays within ~4x of
  // the uncontended rate (Table 1's first row degrades ~2.7x).
  EXPECT_GT(B14, B1 / 4.0);
}

TEST(MachineTest, BarrierCostMonotoneInSpan) {
  MachineModel M = makeSgiUv2000();
  double Prev = 0.0;
  for (int S = 1; S <= 14; ++S) {
    double Cost = M.barrierCost(S);
    EXPECT_GT(Cost, Prev);
    Prev = Cost;
  }
}

TEST(MachineTest, TopologyBladePairs) {
  MachineModel M = makeSgiUv2000();
  EXPECT_EQ(M.topologyDistance(0, 0), 0);
  EXPECT_EQ(M.topologyDistance(0, 1), 1);  // Same blade.
  EXPECT_EQ(M.topologyDistance(1, 2), 2);  // Across the backplane.
  EXPECT_EQ(M.topologyDistance(12, 13), 1);
  EXPECT_EQ(M.topologyDistance(0, 13), 2);
  // Symmetry.
  for (int A = 0; A != 14; ++A)
    for (int B = 0; B != 14; ++B)
      EXPECT_EQ(M.topologyDistance(A, B), M.topologyDistance(B, A));
}

TEST(MachineTest, XeonPresetSingleSocket) {
  MachineModel M = makeXeonE5_2660v2();
  EXPECT_EQ(M.NumSockets, 1);
  EXPECT_EQ(M.totalCores(), 10);
  EXPECT_NEAR(M.peakFlopsPerSocket() / 1e9, 88.0, 1e-9);
}

TEST(MachineTest, ToyMachineIsSmall) {
  MachineModel M = makeToyMachine();
  EXPECT_EQ(M.NumSockets, 2);
  EXPECT_EQ(M.CoresPerSocket, 2);
}
