//===- tests/affinity_test.cpp - Thread placement tests -------------------===//

#include "core/PlacementMap.h"
#include "core/PlanBuilder.h"
#include "exec/Affinity.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"

#include <gtest/gtest.h>

#include <set>

#ifdef __linux__
#include <unistd.h>
#endif

using namespace icores;

namespace {

ExecutionPlan makePlan(const MachineModel &M, Strategy Strat, int Sockets,
                       int IslandsPerSocket = 1) {
  MpdataProgram Prog = buildMpdataProgram();
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Sockets;
  Config.IslandsPerSocket = IslandsPerSocket;
  return buildPlan(Prog.Program, Box3::fromExtents(64, 32, 8), M, Config);
}

} // namespace

TEST(AffinityTest, IslandsLandOnTheirHomeSockets) {
  MachineModel M = makeSgiUv2000();
  ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, 14);
  std::vector<ThreadPlacement> P = computeThreadPlacement(Plan, M);
  ASSERT_EQ(P.size(), 112u);
  for (const ThreadPlacement &T : P)
    EXPECT_EQ(T.Socket, Plan.Islands[static_cast<size_t>(T.Island)]
                            .HomeSocket);
}

TEST(AffinityTest, NoCoreUsedTwice) {
  MachineModel M = makeSgiUv2000();
  for (int Sockets : {1, 4, 14}) {
    ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, Sockets);
    std::vector<ThreadPlacement> P = computeThreadPlacement(Plan, M);
    std::set<int> Cores;
    for (const ThreadPlacement &T : P)
      EXPECT_TRUE(Cores.insert(T.GlobalCore).second)
          << "core " << T.GlobalCore << " double-booked";
  }
}

TEST(AffinityTest, SpanningTeamStripesAcrossSockets) {
  MachineModel M = makeSgiUv2000();
  ExecutionPlan Plan = makePlan(M, Strategy::Block31D, 3);
  std::vector<ThreadPlacement> P = computeThreadPlacement(Plan, M);
  ASSERT_EQ(P.size(), 24u);
  // Threads 0..7 on socket 0, 8..15 on socket 1, 16..23 on socket 2.
  for (const ThreadPlacement &T : P)
    EXPECT_EQ(T.Socket, T.ThreadInTeam / 8);
}

TEST(AffinityTest, SubSocketIslandsPackWithinSockets) {
  MachineModel M = makeSgiUv2000();
  ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, 2,
                                /*IslandsPerSocket=*/2);
  std::vector<ThreadPlacement> P = computeThreadPlacement(Plan, M);
  ASSERT_EQ(P.size(), 16u);
  // Islands 0,1 share socket 0; islands 2,3 share socket 1.
  for (const ThreadPlacement &T : P)
    EXPECT_EQ(T.Socket, T.Island / 2);
}

TEST(AffinityTest, NeighbourPartsSitOnAdjacentSockets) {
  // The paper: neighbour parts must be assigned to processors that are
  // closely connected. With the plan builder's island order, consecutive
  // parts land on consecutive sockets: the adjacency cost equals the sum
  // of consecutive-socket distances, which is minimal for a path.
  MachineModel M = makeSgiUv2000();
  ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, 14);
  // Path 0-1 (same blade, 1), 1-2 (backplane, 2), ... alternating.
  EXPECT_EQ(adjacencyCost(Plan, M), 7 * 1 + 6 * 2);
}

TEST(AffinityTest, AdjacencyCostOnSubSocketIslands) {
  // Two islands per socket: consecutive islands within one socket are
  // zero hops apart, so only the one socket-crossing pair (islands 1-2)
  // pays interconnect distance — a blade-local hop on the UV 2000.
  MachineModel M = makeSgiUv2000();
  ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, 2,
                                /*IslandsPerSocket=*/2);
  ASSERT_EQ(Plan.Islands.size(), 4u);
  EXPECT_EQ(Plan.Islands[0].HomeSocket, Plan.Islands[1].HomeSocket);
  EXPECT_EQ(Plan.Islands[2].HomeSocket, Plan.Islands[3].HomeSocket);
  EXPECT_EQ(adjacencyCost(Plan, M),
            M.topologyDistance(Plan.Islands[1].HomeSocket,
                               Plan.Islands[2].HomeSocket));
  EXPECT_EQ(adjacencyCost(Plan, M), 1);
}

TEST(AffinityTest, PlacementSurvivesHostWithFewerCoresThanPlan) {
  // A 14-socket UV 2000 plan on a small host: the placement map is pure
  // plan geometry, so it still tiles the grid per socket, and pinning to
  // the cores the host lacks fails gracefully (false, no crash) — the
  // executor's fallback path counts those as pin failures and continues
  // unpinned.
  MachineModel M = makeSgiUv2000();
  ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, 14);
  PlacementMap Map = buildPlacementMap(Plan, PlacementPolicy::FirstTouch);
  int64_t Local = 0;
  for (int Socket : Map.ActiveSockets)
    Local += Map.localPoints(Plan.GlobalTarget, Socket);
  EXPECT_EQ(Local, Plan.GlobalTarget.numPoints());

  std::vector<ThreadPlacement> P = computeThreadPlacement(Plan, M);
  ASSERT_EQ(P.size(), 112u);
#ifdef __linux__
  long HostCores = sysconf(_SC_NPROCESSORS_ONLN);
  for (const ThreadPlacement &T : P) {
    if (T.GlobalCore >= HostCores) {
      EXPECT_FALSE(pinCurrentThreadToCore(T.GlobalCore));
    }
  }
#endif
}

TEST(AffinityTest, PinningOutOfRangeFailsGracefully) {
  EXPECT_FALSE(pinCurrentThreadToCore(-1));
  EXPECT_FALSE(pinCurrentThreadToCore(1 << 20));
}

TEST(AffinityTest, PinningToCoreZeroWorksOnLinux) {
#ifdef __linux__
  EXPECT_TRUE(pinCurrentThreadToCore(0));
#endif
}
