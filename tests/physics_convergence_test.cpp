//===- tests/physics_convergence_test.cpp - Order-of-accuracy sweeps ------===//
//
// Grid-refinement study: at fixed Courant number (refining the grid and
// the step count together), plain upwind converges at first order while
// the corrected MPDATA scheme approaches second order — the quantitative
// version of "the corrective iteration removes the leading-order error".
// Plus coverage for the workload generators and the distributed mass sum.
//
//===----------------------------------------------------------------------===//

#include "dist/DistributedSolver.h"
#include "dist/RankComm.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/OStream.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

using namespace icores;

namespace {

/// L2 error against the translated analytic blob for an N x N x 8 run at
/// fixed Courant (0.3, 0.2, 0).
double translationError(int N, int Steps, bool FirstOrder) {
  SolverOptions Opts;
  Opts.FirstOrderOnly = FirstOrder;
  ReferenceSolver Solver(N, N, 8, Opts);
  GaussianBlob Blob;
  Blob.CenterI = N / 3.0;
  Blob.CenterJ = N / 2.0;
  Blob.CenterK = 4.0;
  Blob.Sigma = N / 8.0;
  fillGaussian(Solver.stateIn(), Solver.domain(), Blob);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, 0.2, 0.0);
  Solver.prepareCoefficients();
  Solver.run(Steps);
  GaussianBlob Moved = Blob.translated(0.3 * Steps, 0.2 * Steps, 0.0);
  return l2ErrorVsBlob(Solver.state(), Solver.domain(), Moved);
}

} // namespace

TEST(ConvergenceTest, CorrectedSchemeApproachesSecondOrder) {
  double E32 = translationError(32, 16, /*FirstOrder=*/false);
  double E64 = translationError(64, 32, /*FirstOrder=*/false);
  // Second order would give a ratio of 4; we measure ~3.6 on this
  // pre-asymptotic grid and require comfortably more than first order.
  EXPECT_GT(E32 / E64, 3.0);
}

TEST(ConvergenceTest, UpwindStaysFirstOrder) {
  double E32 = translationError(32, 16, /*FirstOrder=*/true);
  double E64 = translationError(64, 32, /*FirstOrder=*/true);
  EXPECT_GT(E32 / E64, 1.3); // Converging...
  EXPECT_LT(E32 / E64, 2.2); // ...but no faster than first order.
}

TEST(ConvergenceTest, CorrectedBeatsUpwindAtEveryResolution) {
  for (int N : {16, 32, 64}) {
    double Upwind = translationError(N, N / 2, true);
    double Corrected = translationError(N, N / 2, false);
    EXPECT_LT(Corrected, Upwind) << "N=" << N;
  }
}

TEST(InitialConditionsTest, BlobIsPeriodic) {
  Domain D(16, 16, 8, 0);
  GaussianBlob Blob;
  Blob.CenterI = 1.0; // Near the edge: the nearest-image logic matters.
  Blob.CenterJ = 8.0;
  Blob.CenterK = 4.0;
  Blob.Sigma = 2.0;
  // Value 2 cells to the left (wrapping) equals value 2 cells right.
  EXPECT_NEAR(Blob.valueAt(15, 8, 4, D), Blob.valueAt(3, 8, 4, D), 1e-15);
  // Peak at the centre.
  EXPECT_GT(Blob.valueAt(1, 8, 4, D), Blob.valueAt(5, 8, 4, D));
}

TEST(InitialConditionsTest, TranslatedBlobShiftsTheField) {
  Domain D(16, 16, 8, 0);
  GaussianBlob Blob;
  Blob.CenterI = 4.0;
  Blob.CenterJ = 4.0;
  Blob.CenterK = 4.0;
  GaussianBlob Moved = Blob.translated(3.0, -1.0, 2.0);
  EXPECT_NEAR(Moved.valueAt(7, 3, 6, D), Blob.valueAt(4, 4, 4, D), 1e-15);
}

TEST(InitialConditionsTest, NormsVanishOnExactField) {
  Domain D(12, 12, 6, 0);
  GaussianBlob Blob;
  Blob.CenterI = 6.0;
  Blob.CenterJ = 6.0;
  Blob.CenterK = 3.0;
  Array3D A(D.coreBox());
  fillGaussian(A, D, Blob);
  EXPECT_LT(l2ErrorVsBlob(A, D, Blob), 1e-15);
  EXPECT_LT(linfErrorVsBlob(A, D, Blob), 1e-15);
}

TEST(InitialConditionsTest, RandomFieldRespectsBounds) {
  Domain D(10, 10, 10, 0);
  Array3D A(D.coreBox());
  fillRandomPositive(A, D, 5, 0.25, 0.75);
  for (int I = 0; I != 10; ++I)
    for (int J = 0; J != 10; ++J)
      for (int K = 0; K != 10; ++K) {
        EXPECT_GE(A.at(I, J, K), 0.25);
        EXPECT_LT(A.at(I, J, K), 0.75);
      }
}

TEST(DistributedMassTest, LocalMassesSumToGlobalAndAreConserved) {
  const int NI = 16, NJ = 12, NK = 6, Ranks = 4;
  DistributedInit Init;
  Init.State = [](int I, int J, int K) {
    return 0.5 + 0.01 * (I + 2 * J + 3 * K);
  };
  Init.U1 = [](int, int, int) { return 0.25; };
  Init.U2 = [](int, int, int) { return 0.1; };
  Init.U3 = [](int, int, int) { return -0.15; };
  Init.H = [](int, int, int) { return 1.0; };

  double ExpectedMass = 0.0;
  for (int I = 0; I != NI; ++I)
    for (int J = 0; J != NJ; ++J)
      for (int K = 0; K != NK; ++K)
        ExpectedMass += Init.State(I, J, K);

  CommWorld World(Ranks);
  std::vector<double> Masses(Ranks, 0.0);
  std::vector<std::thread> Threads;
  for (int R = 0; R != Ranks; ++R)
    Threads.emplace_back([&, R] {
      RankComm Comm(World, R);
      DistributedRank Rank(Comm, NI, NJ, NK, Ranks, 1, Init);
      Rank.prepareCoefficients();
      Rank.run(6);
      Masses[static_cast<size_t>(R)] = Rank.localMass();
    });
  for (std::thread &T : Threads)
    T.join();

  double Total = 0.0;
  for (double M : Masses)
    Total += M;
  EXPECT_NEAR(Total, ExpectedMass, 1e-9 * ExpectedMass);
}

TEST(OStreamTest, FileSinkWritesToTmpFile) {
  std::string Path = ::testing::TempDir() + "/icores_ostream_test.txt";
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    FileOStream OS(F);
    OS << "hello " << 42 << '\n';
    std::fclose(F);
  }
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[32] = {};
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_STREQ(Buf, "hello 42\n");
}
