//===- tests/TestMatrix.h - Shared sweep scaffolding ------------*- C++ -*-===//
//
// The test suite's common harness pieces, extracted so every sweep-style
// test (temporal blocking, balance/stealing, kernel variants, and the
// registry-driven workload conformance matrix) builds plans, oracles and
// comparisons the same way:
//
//  - makeTestPlan: toy-machine plan construction with the suite's
//    conventional socket defaults (1 for Original, 2 otherwise) and
//    optional barrier elision,
//  - serialOracle / makeWorkloadExecutor: registry-driven runner factories
//    seeded through WorkloadSpec::Init so any pair of runners starts
//    bit-identical,
//  - newestStateArrays / maxNewestStateDiff: feedback-aware state
//    comparison — after run() the newest state lives in the feedback
//    Target arrays, plus any step output that is not fed back,
//  - reductionHistoriesMatch: bit-exact per-step reduction comparison,
//  - TestRng / randomTarget: the property tests' inclusive-range integer
//    PRNG and random-domain generator,
//  - fillStorePairRandom: paired (unpadded, vector-padded) field stores
//    filled from one random stream for kernel-equivalence tests.
//
// Header-only and test-only; nothing in src/ includes this.
//
//===----------------------------------------------------------------------===//

#ifndef ICORES_TESTS_TESTMATRIX_H
#define ICORES_TESTS_TESTMATRIX_H

#include "core/PlanBuilder.h"
#include "core/ScheduleOptimizer.h"
#include "exec/ProgramExecutor.h"
#include "machine/MachineModel.h"
#include "stencil/FieldStore.h"
#include "stencil/SerialStepper.h"
#include "stencil/WorkloadRegistry.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace icores {

/// Deterministic PRNG for property tests; a failing case number is a
/// complete reproducer. Thin wrapper adding the inclusive integer range
/// the random-domain generators want.
struct TestRng {
  SplitMix64 Rng;
  explicit TestRng(uint64_t Seed) : Rng(Seed) {}
  uint64_t next() { return Rng.next(); }
  double range(double Lo, double Hi) { return Rng.nextInRange(Lo, Hi); }
  int range(int Lo, int Hi) { // Inclusive bounds.
    return Lo +
           static_cast<int>(next() % static_cast<uint64_t>(Hi - Lo + 1));
  }
};

/// A random target box, not necessarily at the origin: partitioners must
/// place cuts relative to Target.Lo, not absolute plane indices.
inline Box3 randomTarget(TestRng &R, int MinExtent0) {
  Box3 T;
  for (int D = 0; D != 3; ++D) {
    T.Lo[D] = R.range(-4, 4);
    T.Hi[D] = T.Lo[D] + R.range(D == 0 ? MinExtent0 : 3, D == 0 ? 48 : 12);
  }
  return T;
}

/// Builds a plan on the toy machine with the suite's conventional
/// defaults: Sockets == 0 derives 1 for Original and 2 otherwise (the
/// machine's socket count is raised when a case asks for more), and
/// ElideBarriers runs the barrier-elision optimizer on the result.
inline ExecutionPlan
makeTestPlan(const StencilProgram &Program, const Box3 &Target,
             Strategy Strat, int TemporalDepth = 1,
             bool ElideBarriers = false, int Sockets = 0,
             BalancePolicy Balance = BalancePolicy::Uniform,
             PartitionVariant Variant = PartitionVariant::A) {
  MachineModel Machine = makeToyMachine();
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets =
      Sockets > 0 ? Sockets : (Strat == Strategy::Original ? 1 : 2);
  Config.TemporalDepth = TemporalDepth;
  Config.Balance = Balance;
  Config.Variant = Variant;
  Machine.NumSockets = std::max(Machine.NumSockets, Config.Sockets);
  ExecutionPlan Plan = buildPlan(Program, Target, Machine, Config);
  if (ElideBarriers)
    optimizeBarriers(Program, Plan);
  return Plan;
}

inline ExecutionPlan
makeTestPlan(const StencilProgram &Program, const Domain &Dom,
             Strategy Strat, int TemporalDepth = 1,
             bool ElideBarriers = false, int Sockets = 0,
             BalancePolicy Balance = BalancePolicy::Uniform,
             PartitionVariant Variant = PartitionVariant::A) {
  return makeTestPlan(Program, Dom.coreBox(), Strat, TemporalDepth,
                      ElideBarriers, Sockets, Balance, Variant);
}

/// The serial oracle for a registered workload: seeded via the spec's
/// init, advanced \p Steps steps, reduction combiners bound.
inline std::unique_ptr<SerialStepper>
serialOracle(const WorkloadSpec &Spec, const Domain &Dom, int Steps,
             uint64_t Seed = 0,
             KernelVariant Variant = KernelVariant::Reference) {
  auto Stepper = std::make_unique<SerialStepper>(
      Spec.Program, Spec.Kernels(Variant), Dom, Spec.Reductions);
  initWorkload(Spec, *Stepper, Seed);
  if (Steps > 0)
    Stepper->run(Steps);
  return Stepper;
}

/// A threaded executor for a registered workload, seeded exactly like the
/// serial oracle (same Seed => bit-identical start) with the spec's
/// reduction combiners installed. Does not run it.
inline std::unique_ptr<ProgramExecutor>
makeWorkloadExecutor(const WorkloadSpec &Spec, const Domain &Dom,
                     ExecutionPlan Plan,
                     KernelVariant Variant = KernelVariant::Reference,
                     ExecutorOptions Opts = {}, uint64_t Seed = 0) {
  Opts.Reductions = Spec.Reductions;
  auto Exec = std::make_unique<ProgramExecutor>(
      Spec.Program, Spec.Kernels(Variant), Dom, std::move(Plan), Opts);
  initWorkload(Spec, *Exec, Seed);
  return Exec;
}

/// The arrays holding the newest state after run(): each feedback pair's
/// Target (the Source is stale scratch once the step advanced), plus
/// every step output that is not fed back anywhere.
inline std::vector<ArrayId> newestStateArrays(const StencilProgram &Program) {
  std::vector<ArrayId> Ids;
  for (const FeedbackPair &F : Program.feedbacks())
    Ids.push_back(F.Target);
  for (ArrayId Out : Program.stepOutputs()) {
    bool FedBack = false;
    for (const FeedbackPair &F : Program.feedbacks())
      FedBack |= F.Source == Out;
    if (!FedBack)
      Ids.push_back(Out);
  }
  return Ids;
}

/// Max absolute difference of the newest-state arrays of two runners over
/// \p Core. Zero iff the runs are bit-identical where it matters.
template <typename RunnerA, typename RunnerB>
double maxNewestStateDiff(const StencilProgram &Program, RunnerA &A,
                          RunnerB &B, const Box3 &Core) {
  double Diff = 0.0;
  for (ArrayId Id : newestStateArrays(Program))
    Diff = std::max(Diff, A.array(Id).maxAbsDiff(B.array(Id), Core));
  return Diff;
}

/// Copies a runner's newest-state core cells out (snapshot for
/// comparisons that outlive the runner). Single-state programs only.
template <typename Runner>
Array3D copyNewestState(const StencilProgram &Program, Runner &R,
                        const Domain &Dom) {
  std::vector<ArrayId> Ids = newestStateArrays(Program);
  Array3D Out(Dom.allocBox());
  Out.copyRegionFrom(R.array(Ids.front()), Dom.coreBox());
  return Out;
}

/// Bit-exact comparison of the full per-step reduction histories of two
/// runners, for every reduction the program declares.
template <typename RunnerA, typename RunnerB>
::testing::AssertionResult
reductionHistoriesMatch(const StencilProgram &Program, const RunnerA &A,
                        const RunnerB &B) {
  for (size_t R = 0; R != Program.reductions().size(); ++R) {
    const std::vector<double> &HA = A.reductionHistory(R);
    const std::vector<double> &HB = B.reductionHistory(R);
    const std::string &Name = Program.reductions()[R].Name;
    if (HA.size() != HB.size())
      return ::testing::AssertionFailure()
             << "reduction '" << Name << "': " << HA.size() << " vs "
             << HB.size() << " logged steps";
    for (size_t S = 0; S != HA.size(); ++S)
      if (HA[S] != HB[S])
        return ::testing::AssertionFailure()
               << "reduction '" << Name << "' step " << S << ": " << HA[S]
               << " vs " << HB[S] << " (not bit-exact)";
  }
  return ::testing::AssertionSuccess();
}

/// Allocates every program array in two stores — \p A unpadded, \p B with
/// vector-padded k-rows — and fills both identically from one random
/// stream, \p Range mapping each array to its (lo, hi) value range.
/// Proves padding never changes results when the pair is compared.
template <typename RangeFn>
void fillStorePairRandom(const StencilProgram &Program, const Box3 &Alloc,
                         uint64_t Seed, FieldStore &A, FieldStore &B,
                         RangeFn Range) {
  SplitMix64 Rng(Seed);
  for (unsigned Id = 0; Id != Program.numArrays(); ++Id) {
    A.allocateOwned(static_cast<ArrayId>(Id), Alloc);
    B.allocateOwned(static_cast<ArrayId>(Id), Alloc, Array3D::VectorPadK);
    Array3D &ArrA = A.get(static_cast<ArrayId>(Id));
    Array3D &ArrB = B.get(static_cast<ArrayId>(Id));
    std::pair<double, double> Lim = Range(static_cast<ArrayId>(Id));
    for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I)
      for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J)
        for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K) {
          double V = Rng.nextInRange(Lim.first, Lim.second);
          ArrA.at(I, J, K) = V;
          ArrB.at(I, J, K) = V;
        }
  }
}

} // namespace icores

#endif // ICORES_TESTS_TESTMATRIX_H
