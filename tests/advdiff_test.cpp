//===- tests/advdiff_test.cpp - Second-application integration tests ------===//
//
// Exercises the whole library stack — IR, halo analysis, planners,
// verifier, generic serial stepper and generic threaded executor — on a
// program that is NOT MPDATA: the advection-diffusion RK2 app, consumed
// through its WorkloadRegistry registration. This is the "bring your own
// heterogeneous stencils" guarantee; the physics-specific assertions
// (conservation, diffusion contraction, fixed points) that need bespoke
// initial conditions keep their own SerialStepper setups.
//
//===----------------------------------------------------------------------===//

#include "TestMatrix.h"

#include "apps/AdvectionDiffusion.h"
#include "apps/Workloads.h"
#include "core/PlanVerifier.h"
#include "sim/Simulator.h"
#include "stencil/ExtraElements.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace icores;

namespace {

constexpr int NI = 20, NJ = 14, NK = 8;

const WorkloadSpec &advdiff() { return *builtinWorkloads().find("advdiff"); }

Domain makeDomain() { return workloadDomain(advdiff(), NI, NJ, NK); }

} // namespace

TEST(AdvDiffTest, ProgramShape) {
  const WorkloadSpec &Spec = advdiff();
  std::string Error;
  StencilProgram Program = Spec.Program;
  EXPECT_TRUE(Program.validate(Error)) << Error;
  EXPECT_EQ(Program.numStages(), 8u);
  EXPECT_EQ(Program.stepInputs().size(), 5u);
  EXPECT_EQ(Program.stepOutputs().size(), 1u);
  ASSERT_EQ(Program.feedbacks().size(), 1u);
  AdvDiffProgram A = buildAdvDiffProgram();
  EXPECT_EQ(Program.feedbacks()[0].Source, A.PhiOut);
  EXPECT_EQ(Program.feedbacks()[0].Target, A.Phi);
}

TEST(AdvDiffTest, HaloDepthIsTwo) {
  EXPECT_EQ(advDiffHaloDepth(), 2);
  EXPECT_EQ(advdiff().HaloDepth, 2);
}

TEST(AdvDiffTest, KernelsCoverProgram) {
  const WorkloadSpec &Spec = advdiff();
  EXPECT_TRUE(Spec.Kernels(KernelVariant::Reference)
                  .coversProgram(Spec.Program));
}

TEST(AdvDiffTest, ConservesScalarUnderPeriodicBoundaries) {
  const WorkloadSpec &Spec = advdiff();
  AdvDiffProgram A = buildAdvDiffProgram();
  Domain Dom = makeDomain();
  SerialStepper Stepper(Spec.Program, Spec.Kernels(KernelVariant::Reference),
                        Dom);
  initWorkload(Spec, Stepper, /*Seed=*/4242);
  double Before = Stepper.array(A.Phi).sumRegion(Dom.coreBox());
  Stepper.run(10);
  double After = Stepper.array(A.Phi).sumRegion(Dom.coreBox());
  EXPECT_NEAR(After, Before, 1e-10 * std::fabs(Before));
}

TEST(AdvDiffTest, DiffusionContractsTheRange) {
  // Pure diffusion (no advection): max decreases, min increases. Bespoke
  // initial conditions (zero velocity), so not the registered init.
  AdvDiffProgram A = buildAdvDiffProgram();
  Domain Dom = makeDomain();
  SerialStepper Stepper(A.Program, buildAdvDiffKernels(), Dom);
  SplitMix64 Rng(7);
  for (int I = 0; I != NI; ++I)
    for (int J = 0; J != NJ; ++J)
      for (int K = 0; K != NK; ++K)
        Stepper.array(A.Phi).at(I, J, K) = Rng.nextInRange(0.0, 1.0);
  Stepper.array(A.Kappa).fill(0.1);
  Stepper.prepareInputs();

  auto rangeOf = [&](const Array3D &Arr) {
    double Lo = 1e300, Hi = -1e300;
    for (int I = 0; I != NI; ++I)
      for (int J = 0; J != NJ; ++J)
        for (int K = 0; K != NK; ++K) {
          Lo = std::min(Lo, Arr.at(I, J, K));
          Hi = std::max(Hi, Arr.at(I, J, K));
        }
    return std::pair<double, double>{Lo, Hi};
  };
  auto [Lo0, Hi0] = rangeOf(Stepper.array(A.Phi));
  Stepper.run(20);
  auto [Lo1, Hi1] = rangeOf(Stepper.array(A.Phi));
  EXPECT_GT(Lo1, Lo0);
  EXPECT_LT(Hi1, Hi0);
}

TEST(AdvDiffTest, ConstantFieldIsAFixedPoint) {
  AdvDiffProgram A = buildAdvDiffProgram();
  Domain Dom = makeDomain();
  SerialStepper Stepper(A.Program, buildAdvDiffKernels(), Dom);
  Stepper.array(A.Phi).fill(2.5);
  Stepper.array(A.Kappa).fill(0.05);
  Stepper.array(A.U1).fill(0.3);
  Stepper.array(A.U2).fill(0.1);
  Stepper.array(A.U3).fill(-0.2);
  Stepper.prepareInputs();
  Stepper.run(5);
  Box3 Core = Dom.coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        EXPECT_NEAR(Stepper.array(A.Phi).at(I, J, K), 2.5, 1e-13);
}

TEST(AdvDiffTest, AllStrategiesMatchTheSerialOracle) {
  const WorkloadSpec &Spec = advdiff();
  Domain Dom = makeDomain();
  auto Oracle = serialOracle(Spec, Dom, 4, /*Seed=*/4242);
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    ExecutionPlan Plan = makeTestPlan(
        Spec.Program, Dom, Strat, /*TemporalDepth=*/1,
        /*ElideBarriers=*/false,
        /*Sockets=*/Strat == Strategy::IslandsOfCores ? 3 : 2);
    PlanVerification V = verifyPlan(Plan, Spec.Program);
    ASSERT_TRUE(V.Ok) << V.FirstError;

    auto Exec = makeWorkloadExecutor(Spec, Dom, std::move(Plan),
                                     KernelVariant::Reference, {},
                                     /*Seed=*/4242);
    Exec->run(4);
    EXPECT_EQ(
        maxNewestStateDiff(Spec.Program, *Exec, *Oracle, Dom.coreBox()),
        0.0)
        << strategyName(Strat);
  }
}

TEST(AdvDiffTest, ExtraElementsScaleWithTheShallowerCone) {
  // The advection-diffusion cone (depth 2) is shallower than MPDATA's
  // (depth 3): its per-boundary redundancy must be smaller on the same
  // grid.
  const WorkloadSpec &Spec = advdiff();
  Box3 Target = Box3::fromExtents(128, 64, 32);
  ExtraElementsReport R =
      countExtraElements(Spec.Program, Target, partition1D(Target, 4, 0));
  EXPECT_GT(R.extraFraction(), 0.0);
  EXPECT_LT(R.extraFraction(), 0.05);
}

TEST(AdvDiffTest, SimulatorPricesThisProgramToo) {
  const WorkloadSpec &Spec = advdiff();
  MachineModel Uv = makeSgiUv2000();
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  PlanConfig Config;
  Config.Sockets = 14;
  Config.Strat = Strategy::IslandsOfCores;
  ExecutionPlan Islands = buildPlan(Spec.Program, Grid, Uv, Config);
  Config.Strat = Strategy::Original;
  ExecutionPlan Original = buildPlan(Spec.Program, Grid, Uv, Config);
  SimResult RI = simulate(Islands, Spec.Program, Uv, 50);
  SimResult RO = simulate(Original, Spec.Program, Uv, 50);
  // Lower arithmetic intensity than MPDATA, but islands still win.
  EXPECT_LT(RI.TotalSeconds, RO.TotalSeconds);
  EXPECT_GT(RI.FlopsPerStep, 0);
}
