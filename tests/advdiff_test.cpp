//===- tests/advdiff_test.cpp - Second-application integration tests ------===//
//
// Exercises the whole library stack — IR, halo analysis, planners,
// verifier, generic serial stepper and generic threaded executor — on a
// program that is NOT MPDATA: the advection-diffusion RK2 app. This is
// the "bring your own heterogeneous stencils" guarantee.
//
//===----------------------------------------------------------------------===//

#include "apps/AdvectionDiffusion.h"
#include "core/PlanBuilder.h"
#include "core/PlanVerifier.h"
#include "exec/ProgramExecutor.h"
#include "machine/MachineModel.h"
#include "sim/Simulator.h"
#include "stencil/ExtraElements.h"
#include "stencil/SerialStepper.h"
#include "core/Partition.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace icores;

namespace {

constexpr int NI = 20, NJ = 14, NK = 8;

/// Fills the standard workload into any runner exposing array(ArrayId).
template <typename Runner>
void initWorkload(Runner &R, const AdvDiffProgram &A, const Domain &Dom) {
  SplitMix64 Rng(4242);
  Box3 Core = Dom.coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K) {
        R.array(A.Phi).at(I, J, K) = Rng.nextInRange(0.5, 1.5);
        R.array(A.Kappa).at(I, J, K) = Rng.nextInRange(0.02, 0.08);
      }
  R.array(A.U1).fill(0.2);
  R.array(A.U2).fill(-0.15);
  R.array(A.U3).fill(0.1);
  R.prepareInputs();
}

Domain makeDomain() {
  return Domain(NI, NJ, NK, advDiffHaloDepth());
}

/// Serial oracle result after \p Steps steps.
Array3D serialResult(int Steps) {
  AdvDiffProgram A = buildAdvDiffProgram();
  Domain Dom = makeDomain();
  SerialStepper Stepper(A.Program, buildAdvDiffKernels(), Dom);
  initWorkload(Stepper, A, Dom);
  Stepper.run(Steps);
  Array3D Out(Dom.allocBox());
  Out.copyRegionFrom(Stepper.array(A.Phi), Dom.coreBox());
  return Out;
}

} // namespace

TEST(AdvDiffTest, ProgramShape) {
  AdvDiffProgram A = buildAdvDiffProgram();
  std::string Error;
  EXPECT_TRUE(A.Program.validate(Error)) << Error;
  EXPECT_EQ(A.Program.numStages(), 8u);
  EXPECT_EQ(A.Program.stepInputs().size(), 5u);
  EXPECT_EQ(A.Program.stepOutputs().size(), 1u);
  ASSERT_EQ(A.Program.feedbacks().size(), 1u);
  EXPECT_EQ(A.Program.feedbacks()[0].Source, A.PhiOut);
  EXPECT_EQ(A.Program.feedbacks()[0].Target, A.Phi);
}

TEST(AdvDiffTest, HaloDepthIsTwo) { EXPECT_EQ(advDiffHaloDepth(), 2); }

TEST(AdvDiffTest, KernelsCoverProgram) {
  AdvDiffProgram A = buildAdvDiffProgram();
  EXPECT_TRUE(buildAdvDiffKernels().coversProgram(A.Program));
}

TEST(AdvDiffTest, ConservesScalarUnderPeriodicBoundaries) {
  AdvDiffProgram A = buildAdvDiffProgram();
  Domain Dom = makeDomain();
  SerialStepper Stepper(A.Program, buildAdvDiffKernels(), Dom);
  initWorkload(Stepper, A, Dom);
  double Before = Stepper.array(A.Phi).sumRegion(Dom.coreBox());
  Stepper.run(10);
  double After = Stepper.array(A.Phi).sumRegion(Dom.coreBox());
  EXPECT_NEAR(After, Before, 1e-10 * std::fabs(Before));
}

TEST(AdvDiffTest, DiffusionContractsTheRange) {
  // Pure diffusion (no advection): max decreases, min increases.
  AdvDiffProgram A = buildAdvDiffProgram();
  Domain Dom = makeDomain();
  SerialStepper Stepper(A.Program, buildAdvDiffKernels(), Dom);
  SplitMix64 Rng(7);
  Box3 Core = Dom.coreBox();
  for (int I = 0; I != NI; ++I)
    for (int J = 0; J != NJ; ++J)
      for (int K = 0; K != NK; ++K)
        Stepper.array(A.Phi).at(I, J, K) = Rng.nextInRange(0.0, 1.0);
  Stepper.array(A.Kappa).fill(0.1);
  Stepper.prepareInputs();

  auto rangeOf = [&](const Array3D &Arr) {
    double Lo = 1e300, Hi = -1e300;
    for (int I = 0; I != NI; ++I)
      for (int J = 0; J != NJ; ++J)
        for (int K = 0; K != NK; ++K) {
          Lo = std::min(Lo, Arr.at(I, J, K));
          Hi = std::max(Hi, Arr.at(I, J, K));
        }
    return std::pair<double, double>{Lo, Hi};
  };
  auto [Lo0, Hi0] = rangeOf(Stepper.array(A.Phi));
  Stepper.run(20);
  auto [Lo1, Hi1] = rangeOf(Stepper.array(A.Phi));
  EXPECT_GT(Lo1, Lo0);
  EXPECT_LT(Hi1, Hi0);
  (void)Core;
}

TEST(AdvDiffTest, ConstantFieldIsAFixedPoint) {
  AdvDiffProgram A = buildAdvDiffProgram();
  Domain Dom = makeDomain();
  SerialStepper Stepper(A.Program, buildAdvDiffKernels(), Dom);
  Stepper.array(A.Phi).fill(2.5);
  Stepper.array(A.Kappa).fill(0.05);
  Stepper.array(A.U1).fill(0.3);
  Stepper.array(A.U2).fill(0.1);
  Stepper.array(A.U3).fill(-0.2);
  Stepper.prepareInputs();
  Stepper.run(5);
  Box3 Core = Dom.coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        EXPECT_NEAR(Stepper.array(A.Phi).at(I, J, K), 2.5, 1e-13);
}

TEST(AdvDiffTest, AllStrategiesMatchTheSerialOracle) {
  Array3D Reference = serialResult(4);
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    AdvDiffProgram A = buildAdvDiffProgram();
    Domain Dom = makeDomain();
    MachineModel Machine = makeToyMachine();
    Machine.NumSockets = 3;
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = Strat == Strategy::IslandsOfCores ? 3 : 2;
    ExecutionPlan Plan =
        buildPlan(A.Program, Dom.coreBox(), Machine, Config);
    PlanVerification V = verifyPlan(Plan, A.Program);
    ASSERT_TRUE(V.Ok) << V.FirstError;

    ProgramExecutor Exec(A.Program, buildAdvDiffKernels(), Dom,
                         std::move(Plan));
    initWorkload(Exec, A, Dom);
    Exec.run(4);
    EXPECT_EQ(Exec.array(A.Phi).maxAbsDiff(Reference, Dom.coreBox()), 0.0)
        << strategyName(Strat);
  }
}

TEST(AdvDiffTest, ExtraElementsScaleWithTheShallowerCone) {
  // The advection-diffusion cone (depth 2) is shallower than MPDATA's
  // (depth 3): its per-boundary redundancy must be smaller on the same
  // grid.
  AdvDiffProgram A = buildAdvDiffProgram();
  Box3 Target = Box3::fromExtents(128, 64, 32);
  ExtraElementsReport R =
      countExtraElements(A.Program, Target, partition1D(Target, 4, 0));
  EXPECT_GT(R.extraFraction(), 0.0);
  EXPECT_LT(R.extraFraction(), 0.05);
}

TEST(AdvDiffTest, SimulatorPricesThisProgramToo) {
  AdvDiffProgram A = buildAdvDiffProgram();
  MachineModel Uv = makeSgiUv2000();
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  PlanConfig Config;
  Config.Sockets = 14;
  Config.Strat = Strategy::IslandsOfCores;
  ExecutionPlan Islands = buildPlan(A.Program, Grid, Uv, Config);
  Config.Strat = Strategy::Original;
  ExecutionPlan Original = buildPlan(A.Program, Grid, Uv, Config);
  SimResult RI = simulate(Islands, A.Program, Uv, 50);
  SimResult RO = simulate(Original, A.Program, Uv, 50);
  // Lower arithmetic intensity than MPDATA, but islands still win.
  EXPECT_LT(RI.TotalSeconds, RO.TotalSeconds);
  EXPECT_GT(RI.FlopsPerStep, 0);
}
