//===- tests/solver_test.cpp - MPDATA physics validation ------------------===//

#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace icores;

TEST(SolverTest, HaloDepthIsThree) { EXPECT_EQ(mpdataHaloDepth(), 3); }

TEST(SolverTest, ConservesMassUnderConstantVelocity) {
  ReferenceSolver Solver(16, 12, 8);
  GaussianBlob Blob;
  Blob.CenterI = 8.0;
  Blob.CenterJ = 6.0;
  Blob.CenterK = 4.0;
  Blob.Sigma = 2.0;
  fillGaussian(Solver.stateIn(), Solver.domain(), Blob);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.2, -0.15, 0.1);
  Solver.prepareCoefficients();
  double Before = Solver.conservedMass();
  Solver.run(10);
  EXPECT_NEAR(Solver.conservedMass(), Before, 1e-10 * std::fabs(Before));
}

TEST(SolverTest, ConservesWeightedMassWithVariableDensity) {
  ReferenceSolver Solver(12, 12, 6);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 17, 0.2, 1.2);
  // Smooth positive density variation.
  Box3 Core = Solver.domain().coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        Solver.density().at(I, J, K) =
            1.0 + 0.3 * std::sin(2.0 * M_PI * I / 12.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.15, 0.1, -0.1);
  Solver.prepareCoefficients();
  double Before = Solver.conservedMass();
  Solver.run(8);
  EXPECT_NEAR(Solver.conservedMass(), Before, 1e-10 * std::fabs(Before));
}

TEST(SolverTest, PreservesPositivity) {
  // "Positive definite" is MPDATA's defining property.
  ReferenceSolver Solver(16, 8, 8);
  GaussianBlob Blob;
  Blob.CenterI = 4.0;
  Blob.CenterJ = 4.0;
  Blob.CenterK = 4.0;
  Blob.Sigma = 1.5;
  Blob.Background = 0.0; // Sharp blob on a zero background.
  fillGaussian(Solver.stateIn(), Solver.domain(), Blob);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, 0.2, 0.1);
  Solver.prepareCoefficients();
  Solver.run(20);
  Box3 Core = Solver.domain().coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        EXPECT_GE(Solver.state().at(I, J, K), -1e-14);
}

TEST(SolverTest, NonOscillatoryBoundsRespected) {
  // The limited scheme must not produce new extrema: values stay within
  // the initial global min/max.
  ReferenceSolver Solver(12, 12, 8);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 3, 0.5, 2.5);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.25, -0.2, 0.15);
  Solver.prepareCoefficients();
  Solver.run(12);
  Box3 Core = Solver.domain().coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K) {
        EXPECT_GE(Solver.state().at(I, J, K), 0.5 - 1e-12);
        EXPECT_LE(Solver.state().at(I, J, K), 2.5 + 1e-12);
      }
}

TEST(SolverTest, UnitCourantShiftsExactly) {
  // With C = (1,0,0) the donor-cell pass is an exact one-cell shift and
  // the corrective pass degenerates: after N steps the field returns to
  // itself on a ring of size N.
  ReferenceSolver Solver(8, 4, 4);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 23, 0.1, 2.0);
  Array3D Initial(Solver.domain().allocBox());
  Initial.copyRegionFrom(Solver.stateIn(), Solver.domain().coreBox());
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 1.0, 0.0, 0.0);
  Solver.prepareCoefficients();
  Solver.run(8); // Full period around the periodic i-axis.
  EXPECT_LT(Solver.state().maxAbsDiff(Initial, Solver.domain().coreBox()),
            1e-12);
}

TEST(SolverTest, UnitCourantSingleStepShift) {
  ReferenceSolver Solver(8, 4, 4);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 29, 0.1, 2.0);
  Array3D Initial(Solver.domain().allocBox());
  Initial.copyRegionFrom(Solver.stateIn(), Solver.domain().coreBox());
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 1.0, 0.0, 0.0);
  Solver.prepareCoefficients();
  Solver.run(1);
  Box3 Core = Solver.domain().coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        EXPECT_NEAR(Solver.state().at(I, J, K),
                    Initial.at(Domain::wrapIndex(I - 1, 8), J, K), 1e-13);
}

TEST(SolverTest, CorrectedSchemeBeatsFirstOrderUpwind) {
  // The whole point of MPDATA's stages 5..17: the corrective iteration
  // reduces the numerical diffusion of plain upwind.
  const int N = 24;
  const int Steps = 24;
  const double C = 0.5;

  auto runCase = [&](bool FirstOrder) {
    SolverOptions Opts;
    Opts.FirstOrderOnly = FirstOrder;
    ReferenceSolver Solver(N, 8, 8, Opts);
    GaussianBlob Blob;
    Blob.CenterI = 6.0;
    Blob.CenterJ = 4.0;
    Blob.CenterK = 4.0;
    Blob.Sigma = 2.0;
    fillGaussian(Solver.stateIn(), Solver.domain(), Blob);
    setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                        Solver.velocity(2), Solver.domain(), C, 0.0, 0.0);
    Solver.prepareCoefficients();
    Solver.run(Steps);
    GaussianBlob Exact = Blob.translated(C * Steps, 0.0, 0.0);
    return l2ErrorVsBlob(Solver.state(), Solver.domain(), Exact);
  };

  double UpwindError = runCase(true);
  double CorrectedError = runCase(false);
  EXPECT_LT(CorrectedError, 0.7 * UpwindError);
}

TEST(SolverTest, RotationKeepsConstantFieldConstant) {
  // The rotational velocity field is discretely divergence-free, so a
  // constant scalar field is a fixed point of the scheme.
  ReferenceSolver Solver(16, 16, 4);
  Solver.stateIn().fill(1.0);
  setRotationalVelocity(Solver.velocity(0), Solver.velocity(1),
                        Solver.velocity(2), Solver.domain(), 0.02, 8.0, 8.0);
  Solver.prepareCoefficients();
  Solver.run(5);
  Box3 Core = Solver.domain().coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        EXPECT_NEAR(Solver.state().at(I, J, K), 1.0, 1e-12);
}

TEST(SolverTest, ZeroVelocityIsIdentity) {
  ReferenceSolver Solver(10, 10, 6);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 31, 0.5, 1.5);
  Array3D Initial(Solver.domain().allocBox());
  Initial.copyRegionFrom(Solver.stateIn(), Solver.domain().coreBox());
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.0, 0.0, 0.0);
  Solver.prepareCoefficients();
  Solver.run(5);
  EXPECT_LT(Solver.state().maxAbsDiff(Initial, Solver.domain().coreBox()),
            1e-14);
}

TEST(SolverTest, BlobPeakMovesDownstream) {
  const int N = 32;
  ReferenceSolver Solver(N, 8, 8);
  GaussianBlob Blob;
  Blob.CenterI = 8.0;
  Blob.CenterJ = 4.0;
  Blob.CenterK = 4.0;
  Blob.Sigma = 2.5;
  Blob.Background = 0.0;
  fillGaussian(Solver.stateIn(), Solver.domain(), Blob);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.4, 0.0, 0.0);
  Solver.prepareCoefficients();
  Solver.run(20); // Peak should move by ~8 cells.
  int PeakI = -1;
  double PeakValue = -1.0;
  for (int I = 0; I != N; ++I) {
    double V = Solver.state().at(I, 4, 4);
    if (V > PeakValue) {
      PeakValue = V;
      PeakI = I;
    }
  }
  EXPECT_NEAR(PeakI, 16, 2);
}
