//===- tests/advisor_test.cpp - Plan advisor tests ------------------------===//

#include "mpdata/MpdataProgram.h"
#include "sim/PlanAdvisor.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

struct AdvisorFixture : public ::testing::Test {
  MpdataProgram M = buildMpdataProgram();
  Box3 PaperGrid = Box3::fromExtents(1024, 512, 64);
};

} // namespace

TEST_F(AdvisorFixture, CandidatesSortedFastestFirst) {
  AdvisorReport R =
      adviseBestPlan(M.Program, PaperGrid, makeSgiUv2000(), 14, 50);
  ASSERT_GE(R.Candidates.size(), 4u);
  for (size_t I = 1; I != R.Candidates.size(); ++I)
    EXPECT_LE(R.Candidates[I - 1].Result.TotalSeconds,
              R.Candidates[I].Result.TotalSeconds);
  for (const AdvisorCandidate &C : R.Candidates)
    EXPECT_FALSE(C.Label.empty());
}

TEST_F(AdvisorFixture, PicksIslandsOnTheUv2000) {
  AdvisorReport R =
      adviseBestPlan(M.Program, PaperGrid, makeSgiUv2000(), 14, 50);
  EXPECT_EQ(R.best().Config.Strat, Strategy::IslandsOfCores);
  // And it beats the original by a solid factor (the paper's S_ov ~2.8).
  bool FoundOriginal = false;
  for (size_t I = 0; I != R.Candidates.size(); ++I) {
    if (R.Candidates[I].Config.Strat == Strategy::Original) {
      EXPECT_GT(R.advantageOver(I), 2.0);
      FoundOriginal = true;
    }
  }
  EXPECT_TRUE(FoundOriginal);
}

TEST_F(AdvisorFixture, SingleSocketPrefersBlockingOverOriginal) {
  AdvisorReport R =
      adviseBestPlan(M.Program, PaperGrid, makeSgiUv2000(), 1, 50);
  // At P=1 islands degenerate to (3+1)D; either label is acceptable, but
  // the stage-major original must not win.
  EXPECT_NE(R.best().Config.Strat, Strategy::Original);
}

TEST_F(AdvisorFixture, ManycorePrefersIntraChipIslands) {
  // The paper's future work: islands *within* a manycore CPU. On the KNC
  // model the all-thread barrier is expensive enough that sub-chip
  // islands win.
  AdvisorReport R =
      adviseBestPlan(M.Program, PaperGrid, makeXeonPhiKnc(), 1, 50);
  EXPECT_EQ(R.best().Config.Strat, Strategy::IslandsOfCores);
  EXPECT_GT(R.best().Config.IslandsPerSocket, 1);
}

TEST_F(AdvisorFixture, SkipsInfeasiblePartitions) {
  // A grid with very few planes: high island counts are infeasible and
  // must be skipped, not crash.
  Box3 Tiny = Box3::fromExtents(8, 8, 8);
  AdvisorReport R = adviseBestPlan(M.Program, Tiny, makeSgiUv2000(), 14, 5);
  for (const AdvisorCandidate &C : R.Candidates) {
    if (C.Config.Strat != Strategy::IslandsOfCores)
      continue;
    if (C.Config.GridPartsI > 0) {
      // 2D grids: each axis must fit its dimension.
      EXPECT_LE(C.Config.GridPartsI, 8);
      EXPECT_LE(C.Config.GridPartsJ, 8);
    } else {
      // 1D partitions cannot exceed the split dimension's extent.
      EXPECT_LE(C.Config.Sockets * C.Config.IslandsPerSocket, 8);
    }
  }
}

TEST_F(AdvisorFixture, ReportsConsistentSimResults) {
  AdvisorReport R =
      adviseBestPlan(M.Program, PaperGrid, makeSgiUv2000(), 4, 50);
  for (const AdvisorCandidate &C : R.Candidates) {
    EXPECT_GT(C.Result.TotalSeconds, 0.0);
    EXPECT_GT(C.Result.FlopsPerStep, 0);
    EXPECT_EQ(C.Result.TimeSteps, 50);
  }
}
