//===- tests/boundary_test.cpp - Open-boundary behaviour tests ------------===//

#include "core/PlanBuilder.h"
#include "exec/PlanExecutor.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"

#include <gtest/gtest.h>

using namespace icores;

TEST(BoundaryTest, ZeroGradientFillClampsToEdge) {
  Domain D(4, 4, 4, 2, BoundaryMode::ZeroGradient);
  Array3D A(D.allocBox());
  for (int I = 0; I != 4; ++I)
    for (int J = 0; J != 4; ++J)
      for (int K = 0; K != 4; ++K)
        A.at(I, J, K) = I * 100 + J * 10 + K;
  D.fillHalo(A);
  EXPECT_EQ(A.at(-1, 2, 2), A.at(0, 2, 2));
  EXPECT_EQ(A.at(-2, -2, -2), A.at(0, 0, 0));
  EXPECT_EQ(A.at(5, 3, 3), A.at(3, 3, 3));
  EXPECT_EQ(A.at(2, 5, -1), A.at(2, 3, 0));
}

TEST(BoundaryTest, ModeDispatch) {
  Domain Periodic(4, 4, 4, 1, BoundaryMode::Periodic);
  Domain Open(4, 4, 4, 1, BoundaryMode::ZeroGradient);
  EXPECT_EQ(Periodic.boundaryMode(), BoundaryMode::Periodic);
  EXPECT_EQ(Open.boundaryMode(), BoundaryMode::ZeroGradient);
  Array3D A(Periodic.allocBox());
  A.at(0, 0, 0) = 1.0;
  A.at(3, 3, 3) = 8.0;
  Periodic.fillHalo(A);
  EXPECT_EQ(A.at(-1, -1, -1), 8.0); // Wraps.
  Open.fillHalo(A);
  EXPECT_EQ(A.at(-1, -1, -1), 1.0); // Clamps.
}

TEST(BoundaryTest, OpenBoundaryUniformFieldIsFixedPoint) {
  SolverOptions Opts;
  Opts.Boundary = BoundaryMode::ZeroGradient;
  ReferenceSolver Solver(12, 10, 8, Opts);
  Solver.stateIn().fill(1.5);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, 0.2, 0.1);
  Solver.prepareCoefficients();
  Solver.run(6);
  Box3 Core = Solver.domain().coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        EXPECT_NEAR(Solver.state().at(I, J, K), 1.5, 1e-13);
}

TEST(BoundaryTest, OpenBoundaryStaysPositiveAndBounded) {
  SolverOptions Opts;
  Opts.Boundary = BoundaryMode::ZeroGradient;
  ReferenceSolver Solver(16, 8, 8, Opts);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 19, 0.2, 1.8);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, -0.2, 0.1);
  Solver.prepareCoefficients();
  Solver.run(10);
  Box3 Core = Solver.domain().coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K) {
        EXPECT_GE(Solver.state().at(I, J, K), 0.2 - 1e-12);
        EXPECT_LE(Solver.state().at(I, J, K), 1.8 + 1e-12);
      }
}

TEST(BoundaryTest, StrategiesAgreeUnderOpenBoundaries) {
  // The islands transformation is boundary-agnostic: strategies stay
  // bit-identical with zero-gradient halos too.
  SolverOptions Opts;
  Opts.Boundary = BoundaryMode::ZeroGradient;
  ReferenceSolver Solver(20, 12, 8, Opts);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 23, 0.1, 2.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.25, -0.2, 0.15);
  Solver.prepareCoefficients();
  Solver.run(3);

  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    MachineModel Machine = makeToyMachine();
    Machine.NumSockets = 3;
    MpdataProgram M = buildMpdataProgram();
    Domain Dom(20, 12, 8, mpdataHaloDepth(), BoundaryMode::ZeroGradient);
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = Strat == Strategy::IslandsOfCores ? 3 : 2;
    ExecutionPlan Plan =
        buildPlan(M.Program, Dom.coreBox(), Machine, Config);
    PlanExecutor Exec(Dom, std::move(Plan));
    fillRandomPositive(Exec.stateIn(), Dom, 23, 0.1, 2.0);
    setConstantVelocity(Exec.velocity(0), Exec.velocity(1),
                        Exec.velocity(2), Dom, 0.25, -0.2, 0.15);
    Exec.prepareCoefficients();
    Exec.run(3);
    EXPECT_EQ(Exec.state().maxAbsDiff(Solver.state(), Dom.coreBox()), 0.0)
        << strategyName(Strat);
  }
}

TEST(BoundaryTest, SubSocketIslandsMatchReference) {
  // Islands-per-socket (future work) with periodic boundaries.
  ReferenceSolver Solver(20, 12, 8);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 29, 0.1, 2.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.25, -0.2, 0.15);
  Solver.prepareCoefficients();
  Solver.run(3);

  MachineModel Machine = makeToyMachine(); // 2 sockets x 2 cores.
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(20, 12, 8, mpdataHaloDepth());
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  Config.IslandsPerSocket = 2; // 4 single-thread islands.
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  EXPECT_EQ(Plan.Islands.size(), 4u);
  EXPECT_EQ(Plan.Islands[0].NumThreads, 1);
  EXPECT_EQ(Plan.Islands[3].HomeSocket, 1);

  PlanExecutor Exec(Dom, std::move(Plan));
  fillRandomPositive(Exec.stateIn(), Dom, 29, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Dom, 0.25, -0.2, 0.15);
  Exec.prepareCoefficients();
  Exec.run(3);
  EXPECT_EQ(Exec.state().maxAbsDiff(Solver.state(), Dom.coreBox()), 0.0);
}
