//===- tests/lint_test.cpp - Static-analysis subsystem tests --------------===//
//
// Covers the icores-lint analyses end to end: the Diagnostics findings
// infrastructure (text + icores.lint.v1 JSON golden file), the kernel
// access audit against seeded access-pattern defects, the schedule race
// check against seeded barrier/sub-region defects, the retrofitted plan
// verifier, and the combined suite on the shipped MPDATA application
// (which must be clean — the acceptance bar for every declared window
// being exactly tight).
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "core/PlanVerifier.h"
#include "exec/LintSuite.h"
#include "exec/ScheduleCheck.h"
#include "machine/MachineModel.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/AccessAudit.h"
#include "stencil/KernelTable.h"
#include "support/Diagnostics.h"
#include "support/OStream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

using namespace icores;

namespace {

//===----------------------------------------------------------------------===//
// Diagnostics infrastructure
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsAndQueries) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.report(Severity::Error, "a.b", "first").note("k", "v");
  Diags.report(Severity::Warning, "c.d", "second");
  Diags.report(Severity::Note, "e.f", "third");
  EXPECT_EQ(Diags.numFindings(), 3u);
  EXPECT_EQ(Diags.numErrors(), 1u);
  EXPECT_EQ(Diags.numWarnings(), 1u);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(Diags.hasFinding("c.d"));
  EXPECT_FALSE(Diags.hasFinding("c.e"));
  EXPECT_EQ(Diags.firstErrorMessage(), "first");
  Diags.clear();
  EXPECT_EQ(Diags.numFindings(), 0u);
}

TEST(Diagnostics, TextRendering) {
  DiagnosticEngine Diags;
  Diags.report(Severity::Error, "plan.output.coverage", "half covered")
      .note("array", "xOut")
      .note("plan", "islands");
  std::string Buf;
  StringOStream OS(Buf);
  Diags.printText(OS);
  EXPECT_EQ(Buf, "error: plan.output.coverage: half covered "
                 "[array=xOut, plan=islands]\n");
}

/// Builds the deterministic findings snapshot behind the JSON golden file.
DiagnosticEngine makeGoldenFindings() {
  DiagnosticEngine Diags;
  Diags
      .report(Severity::Error, "access.read.outside-window",
              "stage 'flux1' reads 'xIn' outside its declared window")
      .note("stage", "flux1")
      .note("observed", "[-2,1]x[0,0]x[0,0]");
  Diags
      .report(Severity::Warning, "access.read.window-slack",
              "declared window wider than observed\nline2\t\"quoted\"")
      .note("array", "u1");
  return Diags;
}

TEST(Diagnostics, JsonGoldenFile) {
  DiagnosticEngine Diags = makeGoldenFindings();
  std::string Buf;
  StringOStream OS(Buf);
  Diags.printJson(OS);

  std::string Path = std::string(ICORES_TEST_DATA_DIR) +
                     "/golden/lint_sample.v1.json";
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "missing golden file " << Path;
  std::string Golden;
  char Chunk[4096];
  for (size_t N; (N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0;)
    Golden.append(Chunk, N);
  std::fclose(F);
  EXPECT_EQ(Buf, Golden)
      << "icores.lint.v1 output drifted from the golden file; if the "
         "change is intentional, regenerate tests/golden/lint_sample.v1.json";
}

TEST(Diagnostics, DedupeDropsExactDuplicatesOnly) {
  DiagnosticEngine Diags;
  Diags.report(Severity::Error, "a.b", "msg").note("k", "v");
  Diags.report(Severity::Error, "a.b", "msg").note("k", "v"); // duplicate
  Diags.report(Severity::Error, "a.b", "msg").note("k", "w"); // distinct note
  Diags.report(Severity::Warning, "a.b", "msg").note("k", "v"); // severity
  Diags.report(Severity::Error, "a.c", "msg").note("k", "v"); // distinct id
  EXPECT_EQ(Diags.dedupe(), 1u);
  EXPECT_EQ(Diags.numFindings(), 4u);
  // First-occurrence order is preserved.
  EXPECT_EQ(Diags.finding(0).Notes[0].second, "v");
  EXPECT_EQ(Diags.finding(1).Notes[0].second, "w");
  EXPECT_EQ(Diags.finding(2).Sev, Severity::Warning);
  EXPECT_EQ(Diags.finding(3).Id, "a.c");
  // Idempotent.
  EXPECT_EQ(Diags.dedupe(), 0u);
}

TEST(Diagnostics, JsonEmptyReportIsWellFormed) {
  DiagnosticEngine Diags;
  std::string Buf;
  StringOStream OS(Buf);
  Diags.printJson(OS);
  EXPECT_NE(Buf.find("\"schema\": \"icores.lint.v1\""), std::string::npos);
  EXPECT_NE(Buf.find("\"findings\": []"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Access audit: seeded kernel defects on a tiny synthetic app
//===----------------------------------------------------------------------===//

/// Two-stage chain: s0 computes A from In (window [-1,1] along i), s1
/// copies A into Out. Each test swaps in a deliberately broken kernel or
/// a mis-declared window and asserts the exact finding id.
struct SyntheticApp {
  StencilProgram P;
  ArrayId In, A, Out;
  StageId S0, S1;
};

SyntheticApp makeSynthetic(int DeclMin = -1, int DeclMax = 1) {
  SyntheticApp App;
  App.In = App.P.addArray("in", ArrayRole::StepInput);
  App.A = App.P.addArray("a", ArrayRole::Intermediate);
  App.Out = App.P.addArray("out", ArrayRole::StepOutput);
  StageDef S0;
  S0.Name = "smooth";
  S0.Outputs = {App.A};
  S0.Inputs = {StageInput::alongDim(App.In, 0, DeclMin, DeclMax)};
  S0.FlopsPerPoint = 2;
  App.S0 = App.P.addStage(S0);
  StageDef S1;
  S1.Name = "emit";
  S1.Outputs = {App.Out};
  S1.Inputs = {StageInput::center(App.A)};
  S1.FlopsPerPoint = 0;
  App.S1 = App.P.addStage(S1);
  return App;
}

template <typename Fn> void forRegion(const Box3 &B, Fn &&Body) {
  for (int I = B.Lo[0]; I != B.Hi[0]; ++I)
    for (int J = B.Lo[1]; J != B.Hi[1]; ++J)
      for (int K = B.Lo[2]; K != B.Hi[2]; ++K)
        Body(I, J, K);
}

/// Correct kernels for makeSynthetic(-1, 1).
KernelTable makeGoodKernels(const SyntheticApp &App) {
  KernelTable T(App.P.numStages());
  ArrayId In = App.In, A = App.A, Out = App.Out;
  T.set(App.S0, [In, A](FieldStore &F, const Box3 &R) {
    const Array3D &X = F.get(In);
    Array3D &Y = F.get(A);
    forRegion(R, [&](int I, int J, int K) {
      Y.at(I, J, K) =
          X.at(I - 1, J, K) + X.at(I, J, K) + X.at(I + 1, J, K);
    });
  });
  T.set(App.S1, [A, Out](FieldStore &F, const Box3 &R) {
    const Array3D &X = F.get(A);
    Array3D &Y = F.get(Out);
    forRegion(R, [&](int I, int J, int K) { Y.at(I, J, K) = X.at(I, J, K); });
  });
  return T;
}

TEST(AccessAudit, CleanSyntheticAppHasNoFindings) {
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  DiagnosticEngine Diags;
  EXPECT_TRUE(auditProgramAccess(App.P, T, Diags));
  EXPECT_EQ(Diags.numFindings(), 0u)
      << [&] { std::string B; StringOStream OS(B); Diags.printText(OS);
               return B; }();
}

TEST(AccessAudit, DetectsUnderDeclaredWindow) {
  // Program claims s0 reads only the centre; the kernel reads i +/- 1.
  SyntheticApp App = makeSynthetic(/*DeclMin=*/0, /*DeclMax=*/0);
  KernelTable T = makeGoodKernels(App);
  DiagnosticEngine Diags;
  EXPECT_FALSE(auditStageAccess(App.P, T, App.S0, Diags));
  EXPECT_TRUE(Diags.hasFinding("access.read.outside-window"));
}

TEST(AccessAudit, DetectsOverDeclaredWindow) {
  // Program claims i +/- 2 but the kernel only reads i +/- 1: the slack
  // inflates the Table 2 extra-element budget — a warning, not an error.
  SyntheticApp App = makeSynthetic(/*DeclMin=*/-2, /*DeclMax=*/2);
  KernelTable T = makeGoodKernels(App);
  DiagnosticEngine Diags;
  EXPECT_TRUE(auditStageAccess(App.P, T, App.S0, Diags)); // No *errors*.
  EXPECT_TRUE(Diags.hasFinding("access.read.window-slack"));
  EXPECT_EQ(Diags.numWarnings(), 1u);
}

TEST(AccessAudit, DetectsUndeclaredArrayRead) {
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  ArrayId In = App.In, A = App.A, Out = App.Out;
  // s1 secretly also reads 'in', which its Inputs never mention.
  T.set(App.S1, [In, A, Out](FieldStore &F, const Box3 &R) {
    const Array3D &X = F.get(A);
    const Array3D &Secret = F.get(In);
    Array3D &Y = F.get(Out);
    forRegion(R, [&](int I, int J, int K) {
      Y.at(I, J, K) = X.at(I, J, K) + Secret.at(I, J, K);
    });
  });
  DiagnosticEngine Diags;
  EXPECT_FALSE(auditStageAccess(App.P, T, App.S1, Diags));
  EXPECT_TRUE(Diags.hasFinding("access.read.undeclared-array"));
}

TEST(AccessAudit, DetectsMinMaxMaskedUnderDeclaration) {
  // A max() chain can swallow NaN poison (max picks the finite operand on
  // many code paths), which is exactly why the audit probes with value
  // flips instead. Declared window is the centre; the kernel takes
  // max(A(i), A(i+1)).
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  ArrayId A = App.A, Out = App.Out;
  T.set(App.S1, [A, Out](FieldStore &F, const Box3 &R) {
    const Array3D &X = F.get(A);
    Array3D &Y = F.get(Out);
    forRegion(R, [&](int I, int J, int K) {
      Y.at(I, J, K) = std::max(X.at(I, J, K), X.at(I + 1, J, K));
    });
  });
  DiagnosticEngine Diags;
  EXPECT_FALSE(auditStageAccess(App.P, T, App.S1, Diags));
  EXPECT_TRUE(Diags.hasFinding("access.read.outside-window"));
}

TEST(AccessAudit, DetectsWriteOutsideRegion) {
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  ArrayId A = App.A, Out = App.Out;
  T.set(App.S1, [A, Out](FieldStore &F, const Box3 &R) {
    const Array3D &X = F.get(A);
    Array3D &Y = F.get(Out);
    forRegion(R, [&](int I, int J, int K) { Y.at(I, J, K) = X.at(I, J, K); });
    Y.at(R.Hi[0], R.Lo[1], R.Lo[2]) = 0.0; // One cell past the region.
  });
  DiagnosticEngine Diags;
  EXPECT_FALSE(auditStageAccess(App.P, T, App.S1, Diags));
  EXPECT_TRUE(Diags.hasFinding("access.write.outside-region"));
}

TEST(AccessAudit, DetectsUndeclaredArrayWrite) {
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  ArrayId In = App.In, A = App.A, Out = App.Out;
  // s0 scribbles into 'out', which is not among its outputs.
  T.set(App.S0, [In, A, Out](FieldStore &F, const Box3 &R) {
    const Array3D &X = F.get(In);
    Array3D &Y = F.get(A);
    Array3D &Z = F.get(Out);
    forRegion(R, [&](int I, int J, int K) {
      Y.at(I, J, K) =
          X.at(I - 1, J, K) + X.at(I, J, K) + X.at(I + 1, J, K);
      Z.at(I, J, K) = 1.0;
    });
  });
  DiagnosticEngine Diags;
  EXPECT_FALSE(auditStageAccess(App.P, T, App.S0, Diags));
  EXPECT_TRUE(Diags.hasFinding("access.write.undeclared-array"));
}

TEST(AccessAudit, DetectsUncoveredOutputCells) {
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  ArrayId A = App.A, Out = App.Out;
  // s1 skips the first i-plane of its region.
  T.set(App.S1, [A, Out](FieldStore &F, const Box3 &R) {
    const Array3D &X = F.get(A);
    Array3D &Y = F.get(Out);
    forRegion(R, [&](int I, int J, int K) {
      if (I != R.Lo[0])
        Y.at(I, J, K) = X.at(I, J, K);
    });
  });
  DiagnosticEngine Diags;
  EXPECT_TRUE(auditStageAccess(App.P, T, App.S1, Diags)); // Warning only.
  EXPECT_TRUE(Diags.hasFinding("access.write.region-uncovered"));
}

TEST(AccessAudit, DetectsDeclaredButUnusedInput) {
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  ArrayId A = App.A, Out = App.Out;
  // s1 writes a constant: its declared read of 'a' never happens.
  T.set(App.S1, [A, Out](FieldStore &F, const Box3 &R) {
    (void)A;
    Array3D &Y = F.get(Out);
    forRegion(R, [&](int I, int J, int K) { Y.at(I, J, K) = 1.0; });
  });
  DiagnosticEngine Diags;
  EXPECT_TRUE(auditStageAccess(App.P, T, App.S1, Diags)); // Warning only.
  EXPECT_TRUE(Diags.hasFinding("access.read.declared-unused"));
}

TEST(AccessAudit, DetectsUndeclaredFetch) {
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  ArrayId In = App.In, A = App.A, Out = App.Out;
  // s1 fetches 'in' but never lets its values reach the output: probing
  // cannot see it, the instrumented store can.
  T.set(App.S1, [In, A, Out](FieldStore &F, const Box3 &R) {
    const Array3D &X = F.get(A);
    (void)F.get(In);
    Array3D &Y = F.get(Out);
    forRegion(R, [&](int I, int J, int K) { Y.at(I, J, K) = X.at(I, J, K); });
  });
  DiagnosticEngine Diags;
  EXPECT_TRUE(auditStageAccess(App.P, T, App.S1, Diags)); // Warning only.
  EXPECT_TRUE(Diags.hasFinding("access.fetch.undeclared-array"));
}

TEST(AccessAudit, FootprintReportsObservedHull) {
  SyntheticApp App = makeSynthetic();
  KernelTable T = makeGoodKernels(App);
  StageAccessFootprint FP = probeStageAccess(App.P, T, App.S0);
  const StageAccessFootprint::ReadWindow &W =
      FP.Reads[static_cast<size_t>(App.In)];
  EXPECT_TRUE(W.Declared);
  EXPECT_TRUE(W.Observed);
  EXPECT_EQ(W.ObsMin, (std::array<int, 3>{-1, 0, 0}));
  EXPECT_EQ(W.ObsMax, (std::array<int, 3>{1, 0, 0}));
}

//===----------------------------------------------------------------------===//
// Access audit: the shipped MPDATA kernels (acceptance bar)
//===----------------------------------------------------------------------===//

/// Every one of the 17 declared stage windows must be exactly tight for
/// all kernel variants: no under-declaration (unsound halos) and no
/// over-declaration (inflated Table 2 redundancy). Zero findings, not
/// merely zero errors.
TEST(AccessAudit, MpdataWindowsAreExactlyTightAllVariants) {
  MpdataProgram M = buildMpdataProgram();
  for (KernelVariant Variant :
       {KernelVariant::Reference, KernelVariant::Optimized,
        KernelVariant::Simd}) {
    KernelTable T = buildMpdataKernels(Variant);
    DiagnosticEngine Diags;
    EXPECT_TRUE(auditProgramAccess(M.Program, T, Diags));
    std::string Buf;
    StringOStream OS(Buf);
    Diags.printText(OS);
    EXPECT_EQ(Diags.numFindings(), 0u) << Buf;
  }
}

//===----------------------------------------------------------------------===//
// Schedule race check
//===----------------------------------------------------------------------===//

/// Program for race tests: s0 writes shared 'out' from 'in'; s1 reads
/// 'out' with an i +/- 1 halo into 'out2'. Both outputs are step outputs,
/// so they are shared across islands.
struct RaceApp {
  StencilProgram P;
  ArrayId In, Out, Out2;
  StageId S0, S1;
};

RaceApp makeRaceApp() {
  RaceApp App;
  App.In = App.P.addArray("in", ArrayRole::StepInput);
  App.Out = App.P.addArray("out", ArrayRole::StepOutput);
  App.Out2 = App.P.addArray("out2", ArrayRole::StepOutput);
  StageDef S0;
  S0.Name = "produce";
  S0.Outputs = {App.Out};
  S0.Inputs = {StageInput::center(App.In)};
  App.S0 = App.P.addStage(S0);
  StageDef S1;
  S1.Name = "consume";
  S1.Outputs = {App.Out2};
  S1.Inputs = {StageInput::alongDim(App.Out, 0, -1, 1)};
  App.S1 = App.P.addStage(S1);
  return App;
}

TEST(ScheduleCheck, BarrieredScheduleIsRaceFree) {
  RaceApp App = makeRaceApp();
  Box3 R = Box3::fromExtents(32, 8, 4);
  IslandSchedule S;
  S.NumThreads = 4;
  S.Passes = {{App.S0, R, /*BarrierAfter=*/true},
              {App.S1, R, /*BarrierAfter=*/true}};
  DiagnosticEngine Diags;
  EXPECT_TRUE(checkScheduleRaces(App.P, {S}, Diags));
  EXPECT_EQ(Diags.numFindings(), 0u);
}

TEST(ScheduleCheck, DroppedBarrierIsAReadWriteRace) {
  RaceApp App = makeRaceApp();
  Box3 R = Box3::fromExtents(32, 8, 4);
  IslandSchedule S;
  S.NumThreads = 4;
  // No barrier between producer and consumer: thread 1 may still be
  // writing out[8..16) while thread 0 reads out[-1..9).
  S.Passes = {{App.S0, R, /*BarrierAfter=*/false},
              {App.S1, R, /*BarrierAfter=*/true}};
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkScheduleRaces(App.P, {S}, Diags));
  EXPECT_TRUE(Diags.hasFinding("race.intra.read-write"));
}

TEST(ScheduleCheck, OverlappingSubRegionsAreAWriteWriteRace) {
  RaceApp App = makeRaceApp();
  Box3 R = Box3::fromExtents(32, 8, 4);
  IslandSchedule S;
  S.NumThreads = 4;
  // The same stage runs twice on shifted regions without a barrier: the
  // thread sub-regions of the two passes interleave and collide.
  S.Passes = {{App.S0, R, /*BarrierAfter=*/false},
              {App.S0, R.shifted(4, 0, 0), /*BarrierAfter=*/true}};
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkScheduleRaces(App.P, {S}, Diags));
  EXPECT_TRUE(Diags.hasFinding("race.intra.write-write"));
}

TEST(ScheduleCheck, TemporalRaceIdsEncodeTheEpochStep) {
  // The same dropped-barrier defect replayed at two fused steps must
  // yield two *distinct* stable ids (.step0 / .step1) that both survive
  // deduplication — a temporal plan's step-k finding is not a duplicate
  // of its step-0 twin.
  RaceApp App = makeRaceApp();
  Box3 R = Box3::fromExtents(32, 8, 4);
  IslandSchedule S;
  S.NumThreads = 4;
  S.TemporalDepth = 2;
  S.Passes = {{App.S0, R, /*BarrierAfter=*/false, /*StepInEpoch=*/0},
              {App.S1, R, /*BarrierAfter=*/true, /*StepInEpoch=*/0},
              {App.S0, R, /*BarrierAfter=*/false, /*StepInEpoch=*/1},
              {App.S1, R, /*BarrierAfter=*/true, /*StepInEpoch=*/1}};
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkScheduleRaces(App.P, {S}, Diags));
  EXPECT_TRUE(Diags.hasFinding("race.intra.read-write.step0"));
  EXPECT_TRUE(Diags.hasFinding("race.intra.read-write.step1"));
  EXPECT_FALSE(Diags.hasFinding("race.intra.read-write"));
  EXPECT_EQ(Diags.dedupe(), 0u);
  EXPECT_EQ(Diags.numErrors(), 2u);
}

TEST(ScheduleCheck, SingleThreadTeamNeverRacesIntraIsland) {
  RaceApp App = makeRaceApp();
  Box3 R = Box3::fromExtents(32, 8, 4);
  IslandSchedule S;
  S.NumThreads = 1;
  S.Passes = {{App.S0, R, /*BarrierAfter=*/false},
              {App.S1, R, /*BarrierAfter=*/true}};
  DiagnosticEngine Diags;
  EXPECT_TRUE(checkScheduleRaces(App.P, {S}, Diags));
}

TEST(ScheduleCheck, InterIslandSharedWriteOverlapIsARace) {
  RaceApp App = makeRaceApp();
  IslandSchedule A, B;
  A.Index = 0;
  A.Passes = {{App.S0, Box3::fromExtents(16, 8, 4), true}};
  B.Index = 1;
  B.Passes = {{App.S0, Box3(12, 0, 0, 24, 8, 4), true}};
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkScheduleRaces(App.P, {A, B}, Diags));
  EXPECT_TRUE(Diags.hasFinding("race.inter.write-write"));
  // Exactly one WW finding: the symmetric pair must not be double-counted.
  EXPECT_EQ(Diags.numErrors(), 1u);
}

TEST(ScheduleCheck, InterIslandReadOfForeignWriteIsARace) {
  RaceApp App = makeRaceApp();
  IslandSchedule A, B;
  A.Index = 0;
  A.Passes = {{App.S0, Box3::fromExtents(16, 8, 4), true}};
  // Island 1 writes a disjoint slab of 'out' but its consume halo reads
  // i=15, which island 0 writes — islands never sync within a step.
  B.Index = 1;
  B.Passes = {{App.S1, Box3(16, 0, 0, 32, 8, 4), true}};
  DiagnosticEngine Diags;
  EXPECT_FALSE(checkScheduleRaces(App.P, {A, B}, Diags));
  EXPECT_TRUE(Diags.hasFinding("race.inter.read-write"));
}

TEST(ScheduleCheck, IntermediatesArePerIslandAndNeverRaceAcrossIslands) {
  // Same shapes as the WW test above, but the overlapping array is an
  // Intermediate: each island has its own copy, so no race.
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Mid = P.addArray("mid", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  StageDef S0;
  S0.Name = "mid";
  S0.Outputs = {Mid};
  S0.Inputs = {StageInput::center(In)};
  StageId SMid = P.addStage(S0);
  StageDef S1;
  S1.Name = "fin";
  S1.Outputs = {Out};
  S1.Inputs = {StageInput::center(Mid)};
  StageId SFin = P.addStage(S1);

  IslandSchedule A, B;
  A.Index = 0;
  A.Passes = {{SMid, Box3::fromExtents(20, 8, 4), true},
              {SFin, Box3::fromExtents(16, 8, 4), true}};
  B.Index = 1;
  B.Passes = {{SMid, Box3(12, 0, 0, 32, 8, 4), true},
              {SFin, Box3(16, 0, 0, 32, 8, 4), true}};
  DiagnosticEngine Diags;
  EXPECT_TRUE(checkScheduleRaces(P, {A, B}, Diags)) << [&] {
    std::string Buf;
    StringOStream OS(Buf);
    Diags.printText(OS);
    return Buf;
  }();
}

TEST(ScheduleCheck, BuiltPlansAreRaceFree) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  Box3 Target = Box3::fromExtents(48, 24, 8);
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = 2;
    ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
    std::vector<IslandSchedule> Schedules = buildIslandSchedules(Plan);
    // The executor barriers after every pass; the schedule must say so.
    for (const IslandSchedule &S : Schedules)
      for (const ScheduledPass &Pass : S.Passes) {
        EXPECT_TRUE(Pass.BarrierAfter);
        EXPECT_FALSE(Pass.Region.empty());
      }
    DiagnosticEngine Diags;
    EXPECT_TRUE(checkScheduleRaces(M.Program, Schedules, Diags))
        << strategyName(Strat) << ": " << Diags.firstErrorMessage();
  }
}

//===----------------------------------------------------------------------===//
// Plan verifier (DiagnosticEngine retrofit)
//===----------------------------------------------------------------------===//

TEST(PlanVerifierDiags, ReportsAllFindingsNotJustTheFirst) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  Box3 Target = Box3::fromExtents(48, 24, 8);
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);

  // Seed two independent defects: drop island 1's final output pass
  // (coverage) and push island 0's first pass past the dependence cone.
  BlockTask &Last = Plan.Islands[1].Blocks.back();
  ASSERT_EQ(Last.Passes.back().Stage, M.SOut);
  Last.Passes.pop_back();
  Plan.Islands[0].Blocks[0].Passes[0].Region = Target.grownAll(10);

  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyPlan(Plan, M.Program, Diags));
  EXPECT_TRUE(Diags.hasFinding("plan.pass.exceeds-global"));
  EXPECT_TRUE(Diags.hasFinding("plan.output.coverage"));
  EXPECT_GE(Diags.numErrors(), 2u);
}

TEST(PlanVerifierDiags, EmptyPlanAndInvalidStage) {
  MpdataProgram M = buildMpdataProgram();
  ExecutionPlan Empty;
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyPlan(Empty, M.Program, Diags));
  EXPECT_TRUE(Diags.hasFinding("plan.no-islands"));

  ExecutionPlan Bad;
  Bad.GlobalTarget = Box3::fromExtents(8, 8, 8);
  IslandPlan Island;
  BlockTask Block;
  Block.Passes.push_back({static_cast<StageId>(99), Bad.GlobalTarget});
  Island.Blocks.push_back(Block);
  Bad.Islands.push_back(Island);
  Diags.clear();
  EXPECT_FALSE(verifyPlan(Bad, M.Program, Diags));
  EXPECT_TRUE(Diags.hasFinding("plan.pass.invalid-stage"));
}

//===----------------------------------------------------------------------===//
// Combined suite
//===----------------------------------------------------------------------===//

TEST(LintSuite, ShippedMpdataApplicationIsClean) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  Box3 Target = Box3::fromExtents(48, 24, 8);

  KernelTable Ref = buildMpdataKernels(KernelVariant::Reference);
  KernelTable Opt = buildMpdataKernels(KernelVariant::Optimized);
  KernelTable Simd = buildMpdataKernels(KernelVariant::Simd);

  std::vector<ExecutionPlan> Plans;
  Plans.reserve(3);
  std::vector<LintPlanSet> PlanSets;
  for (auto [Label, Strat] :
       {std::pair<const char *, Strategy>{"original", Strategy::Original},
        {"31d", Strategy::Block31D},
        {"islands", Strategy::IslandsOfCores}}) {
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = 2;
    Plans.push_back(buildPlan(M.Program, Target, Machine, Config));
    PlanSets.push_back({Label, &Plans.back()});
  }

  DiagnosticEngine Diags;
  EXPECT_TRUE(runLintSuite(M.Program,
                           {{"ref", &Ref}, {"opt", &Opt}, {"simd", &Simd}},
                           PlanSets, Diags));
  std::string Buf;
  StringOStream OS(Buf);
  Diags.printText(OS);
  EXPECT_EQ(Diags.numFindings(), 0u) << Buf;
}

TEST(LintSuite, TagsPlanFindingsWithThePlanLabel) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  Box3 Target = Box3::fromExtents(48, 24, 8);
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 1;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  Plan.Islands[0].Blocks[0].Passes[0].Region = Target.grownAll(10);

  DiagnosticEngine Diags;
  LintSuiteOptions Opts;
  Opts.RunAccessAudit = false; // Plan checks only.
  EXPECT_FALSE(
      runLintSuite(M.Program, {}, {{"seeded", &Plan}}, Diags, Opts));
  ASSERT_GE(Diags.numFindings(), 1u);
  bool Tagged = false;
  for (const Finding &F : Diags.findings())
    for (const auto &Note : F.Notes)
      if (Note.first == "plan" && Note.second == "seeded")
        Tagged = true;
  EXPECT_TRUE(Tagged);
}

TEST(LintSuite, TemporalJsonGoldenFile) {
  // Byte-stable icores.lint.v1 snapshot of a seeded-defect temporal
  // (T=4) plan: the flux->upwind barriers are dropped at the first and
  // last fused step of island 0, putting 'flux1' (whose output 'f1' the
  // i-split teams read at offset [0,1] along i) in one barrier-free
  // epoch with 'upwind' — a race at step 0 and step 3, with ids carrying
  // the .step<k> suffix. Set ICORES_UPDATE_GOLDEN=1 to regenerate the
  // fixture after an intentional format change.
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = makeToyMachine();
  Box3 Target = Box3::fromExtents(48, 32, 32);
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  Config.TemporalDepth = 4;
  ExecutionPlan Plan = buildPlan(M.Program, Target, Machine, Config);
  ASSERT_EQ(Plan.TemporalDepth, 4);
  ASSERT_EQ(Plan.Islands[0].Blocks.front().StepInEpoch, 0);
  ASSERT_EQ(Plan.Islands[0].Blocks.back().StepInEpoch, 3);
  for (size_t P = 0; P != 3; ++P) {
    Plan.Islands[0].Blocks.front().Passes[P].BarrierAfter = false;
    Plan.Islands[0].Blocks.back().Passes[P].BarrierAfter = false;
  }

  DiagnosticEngine Diags;
  LintSuiteOptions Opts;
  Opts.RunAccessAudit = false; // Plan checks only: keep the fixture small.
  EXPECT_FALSE(
      runLintSuite(M.Program, {}, {{"islands-T4", &Plan}}, Diags, Opts));
  EXPECT_TRUE(Diags.hasFinding("race.intra.read-write.step0"));
  EXPECT_TRUE(Diags.hasFinding("race.intra.read-write.step3"));
  std::string Buf;
  StringOStream OS(Buf);
  Diags.printJson(OS);

  std::string Path = std::string(ICORES_TEST_DATA_DIR) +
                     "/golden/lint_temporal.v1.json";
  if (std::getenv("ICORES_UPDATE_GOLDEN")) {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr) << "cannot write golden file " << Path;
    std::fwrite(Buf.data(), 1, Buf.size(), F);
    std::fclose(F);
    return;
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "missing golden file " << Path;
  std::string Golden;
  char Chunk[4096];
  for (size_t N; (N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0;)
    Golden.append(Chunk, N);
  std::fclose(F);
  EXPECT_EQ(Buf, Golden)
      << "temporal icores.lint.v1 output drifted from the golden file; "
         "rerun with ICORES_UPDATE_GOLDEN=1 if the change is intentional";
}

TEST(LintSuite, IncompleteKernelTableIsAnError) {
  MpdataProgram M = buildMpdataProgram();
  KernelTable Empty; // Covers nothing.
  DiagnosticEngine Diags;
  EXPECT_FALSE(runLintSuite(M.Program, {{"ref", &Empty}}, {}, Diags));
  EXPECT_TRUE(Diags.hasFinding("access.kernels.incomplete"));
}

} // namespace
