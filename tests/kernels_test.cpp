//===- tests/kernels_test.cpp - MPDATA kernel unit/property tests ---------===//

#include "stencil/FieldStore.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/HaloAnalysis.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace icores;

namespace {

/// Fixture with a small field store where every array covers a generous
/// box around a small target region.
struct KernelFixture : public ::testing::Test {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = Box3::fromExtents(6, 6, 6);
  Box3 Alloc = Target.grownAll(4);
  FieldStore Fields{M.Program.numArrays()};

  void SetUp() override {
    for (unsigned A = 0; A != M.Program.numArrays(); ++A)
      Fields.allocateOwned(static_cast<ArrayId>(A), Alloc);
  }

  void fillAll(ArrayId Id, double Value) { Fields.get(Id).fill(Value); }

  void fillRandom(ArrayId Id, uint64_t Seed, double Lo, double Hi) {
    Array3D &A = Fields.get(Id);
    SplitMix64 Rng(Seed);
    for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I)
      for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J)
        for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K)
          A.at(I, J, K) = Rng.nextInRange(Lo, Hi);
  }
};

} // namespace

TEST_F(KernelFixture, UpwindFluxPositiveVelocityTakesLeftState) {
  fillAll(M.U1, 0.5);
  Array3D &X = Fields.get(M.XIn);
  X.fill(1.0);
  X.at(1, 2, 2) = 4.0; // Left neighbour of (2,2,2).
  runMpdataStage(M, Fields, M.SFlux1, Target);
  // f1(2) = 0.5 * x(1) = 2.0 (donor cell: upwind side).
  EXPECT_DOUBLE_EQ(Fields.get(M.F1).at(2, 2, 2), 0.5 * 4.0);
  // Elsewhere: 0.5 * 1.0.
  EXPECT_DOUBLE_EQ(Fields.get(M.F1).at(4, 4, 4), 0.5);
}

TEST_F(KernelFixture, UpwindFluxNegativeVelocityTakesRightState) {
  fillAll(M.U1, -0.5);
  Array3D &X = Fields.get(M.XIn);
  X.fill(1.0);
  X.at(2, 2, 2) = 4.0;
  runMpdataStage(M, Fields, M.SFlux1, Target);
  // f1(2) = -0.5 * x(2) = -2.0.
  EXPECT_DOUBLE_EQ(Fields.get(M.F1).at(2, 2, 2), -0.5 * 4.0);
}

TEST_F(KernelFixture, ZeroVelocityGivesZeroFlux) {
  fillAll(M.U2, 0.0);
  fillRandom(M.XIn, 1, 0.0, 2.0);
  runMpdataStage(M, Fields, M.SFlux2, Target);
  for (int I = 0; I != 6; ++I)
    for (int J = 0; J != 6; ++J)
      for (int K = 0; K != 6; ++K)
        EXPECT_DOUBLE_EQ(Fields.get(M.F2).at(I, J, K), 0.0);
}

TEST_F(KernelFixture, UpwindUpdateIsFluxDifference) {
  fillRandom(M.F1, 2, -1.0, 1.0);
  fillRandom(M.F2, 3, -1.0, 1.0);
  fillRandom(M.F3, 4, -1.0, 1.0);
  fillAll(M.XIn, 2.0);
  fillAll(M.H, 2.0); // Density divides the divergence.
  runMpdataStage(M, Fields, M.SUpwind, Target);
  const Array3D &F1 = Fields.get(M.F1);
  const Array3D &F2 = Fields.get(M.F2);
  const Array3D &F3 = Fields.get(M.F3);
  double Div = (F1.at(3, 2, 2) - F1.at(2, 2, 2)) +
               (F2.at(2, 3, 2) - F2.at(2, 2, 2)) +
               (F3.at(2, 2, 3) - F3.at(2, 2, 2));
  EXPECT_DOUBLE_EQ(Fields.get(M.Actual).at(2, 2, 2), 2.0 - Div / 2.0);
}

TEST_F(KernelFixture, MinMaxBracketsNeighborhood) {
  fillRandom(M.XIn, 5, 0.0, 1.0);
  fillRandom(M.Actual, 6, 0.0, 1.0);
  runMpdataStage(M, Fields, M.SMinMax, Target);
  const Array3D &Mx = Fields.get(M.Mx);
  const Array3D &Mn = Fields.get(M.Mn);
  const Array3D &X = Fields.get(M.XIn);
  const Array3D &Act = Fields.get(M.Actual);
  for (int I = 0; I != 6; ++I)
    for (int J = 0; J != 6; ++J)
      for (int K = 0; K != 6; ++K) {
        EXPECT_LE(Mn.at(I, J, K), Mx.at(I, J, K));
        EXPECT_LE(Mn.at(I, J, K), X.at(I, J, K));
        EXPECT_LE(Mn.at(I, J, K), Act.at(I, J, K));
        EXPECT_GE(Mx.at(I, J, K), X.at(I, J, K));
        EXPECT_GE(Mx.at(I, J, K), Act.at(I, J, K));
      }
}

TEST_F(KernelFixture, PseudoVelocityVanishesForUniformField) {
  // A constant scalar field has no gradients: the antidiffusive velocity
  // must be exactly zero everywhere.
  fillAll(M.Actual, 3.0);
  fillRandom(M.U1, 7, -0.4, 0.4);
  fillRandom(M.U2, 8, -0.4, 0.4);
  fillRandom(M.U3, 9, -0.4, 0.4);
  for (StageId S : {M.SVel1, M.SVel2, M.SVel3})
    runMpdataStage(M, Fields, S, Target);
  for (ArrayId V : {M.V1, M.V2, M.V3})
    for (int I = 0; I != 6; ++I)
      for (int J = 0; J != 6; ++J)
        for (int K = 0; K != 6; ++K)
          EXPECT_DOUBLE_EQ(Fields.get(V).at(I, J, K), 0.0);
}

TEST_F(KernelFixture, PseudoVelocityVanishesForUnitCourant) {
  // |C|(1-|C|) = 0 at C = 1 and the cross terms vanish without transverse
  // velocity: the corrective step degenerates, making C=1 advection exact.
  fillRandom(M.Actual, 10, 0.5, 1.5);
  fillAll(M.U1, 1.0);
  fillAll(M.U2, 0.0);
  fillAll(M.U3, 0.0);
  runMpdataStage(M, Fields, M.SVel1, Target);
  for (int I = 0; I != 6; ++I)
    for (int J = 0; J != 6; ++J)
      for (int K = 0; K != 6; ++K)
        EXPECT_DOUBLE_EQ(Fields.get(M.V1).at(I, J, K), 0.0);
}

TEST_F(KernelFixture, LimitedVelocityNeverExceedsUnlimited) {
  fillRandom(M.Actual, 11, 0.1, 1.0);
  fillRandom(M.V1, 12, -0.3, 0.3);
  fillRandom(M.Cp, 13, 0.0, 2.0);
  fillRandom(M.Cn, 14, 0.0, 2.0);
  runMpdataStage(M, Fields, M.SLim1, Target);
  for (int I = 0; I != 6; ++I)
    for (int J = 0; J != 6; ++J)
      for (int K = 0; K != 6; ++K) {
        double V = Fields.get(M.V1).at(I, J, K);
        double Vm = Fields.get(M.V1m).at(I, J, K);
        EXPECT_LE(std::fabs(Vm), std::fabs(V) + 1e-15);
        // Limiting never flips the transport direction.
        EXPECT_GE(Vm * V, -1e-30);
      }
}

TEST_F(KernelFixture, EmptyRegionIsANoOp) {
  fillAll(M.F1, 42.0);
  runMpdataStage(M, Fields, M.SFlux1, Box3());
  EXPECT_DOUBLE_EQ(Fields.get(M.F1).at(0, 0, 0), 42.0);
}

namespace {

/// Property test: every kernel's reads stay inside the window declared in
/// the IR, for both kernel variants. All arrays are poisoned with NaN;
/// only the declared read regions get finite values. Any out-of-window
/// read propagates NaN into the output.
///
/// NaN poisoning is a fast smoke test but NOT a complete access check:
/// min/max chains and sign-selected donor-cell branches can mask a NaN,
/// and it cannot see over-declared windows or writes outside the region.
/// The authoritative check is the perturbation-probing audit in
/// stencil/AccessAudit.h (exercised in lint_test.cpp and by the
/// `icores_lint` tool), which this test complements, not replaces.
class StageAccessPattern
    : public ::testing::TestWithParam<std::tuple<int, KernelVariant>> {};

} // namespace

TEST_P(StageAccessPattern, KernelReadsMatchDeclaredWindows) {
  MpdataProgram M = buildMpdataProgram();
  StageId Stage = std::get<0>(GetParam());
  KernelVariant Variant = std::get<1>(GetParam());
  Box3 Target = Box3::fromExtents(5, 5, 5);
  Box3 Alloc = Target.grownAll(4);

  FieldStore Fields(M.Program.numArrays());
  double NaN = std::nan("");
  for (unsigned A = 0; A != M.Program.numArrays(); ++A) {
    Fields.allocateOwned(static_cast<ArrayId>(A), Alloc);
    Fields.get(static_cast<ArrayId>(A)).fill(NaN);
  }

  // Give finite values exactly on the declared read regions.
  SplitMix64 Rng(99);
  for (const StageInput &In : M.Program.stage(Stage).Inputs) {
    Box3 Read = In.readRegion(Target);
    Array3D &A = Fields.get(In.Array);
    for (int I = Read.Lo[0]; I != Read.Hi[0]; ++I)
      for (int J = Read.Lo[1]; J != Read.Hi[1]; ++J)
        for (int K = Read.Lo[2]; K != Read.Hi[2]; ++K)
          A.at(I, J, K) = Rng.nextInRange(0.1, 1.0);
  }

  runMpdataStage(M, Fields, Stage, Target, Variant);

  for (ArrayId Out : M.Program.stage(Stage).Outputs) {
    const Array3D &A = Fields.get(Out);
    for (int I = 0; I != 5; ++I)
      for (int J = 0; J != 5; ++J)
        for (int K = 0; K != 5; ++K)
          EXPECT_TRUE(std::isfinite(A.at(I, J, K)))
              << "stage " << M.Program.stage(Stage).Name
              << " read outside its declared window near (" << I << "," << J
              << "," << K << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStages, StageAccessPattern,
    ::testing::Combine(::testing::Range(0, 17),
                       ::testing::Values(KernelVariant::Reference,
                                         KernelVariant::Optimized,
                                         KernelVariant::Simd)),
    [](const ::testing::TestParamInfo<std::tuple<int, KernelVariant>>
           &Info) {
      MpdataProgram M = buildMpdataProgram();
      return M.Program.stage(std::get<0>(Info.param)).Name + "_" +
             kernelVariantName(std::get<1>(Info.param));
    });
