//===- tests/executor_test.cpp - Strategy equivalence tests ---------------===//
//
// The load-bearing validation of the islands-of-cores transformation: every
// strategy, partitioning and team size must reproduce the serial reference
// solver bit-for-bit (the kernels are pointwise with fixed evaluation
// order, so redundant recomputation is exactly equivalent to halo
// exchange).
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "exec/PlanExecutor.h"
#include "exec/RegionSplit.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

constexpr int GridNI = 20;
constexpr int GridNJ = 14;
constexpr int GridNK = 8;
constexpr int TimeSteps = 3;

/// Runs the reference solver on the shared workload.
Array3D referenceResult() {
  ReferenceSolver Solver(GridNI, GridNJ, GridNK);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 1234, 0.1, 2.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, -0.25, 0.2);
  Solver.prepareCoefficients();
  Solver.run(TimeSteps);
  Array3D Result(Solver.domain().allocBox());
  Result.copyRegionFrom(Solver.state(), Solver.domain().coreBox());
  return Result;
}

/// Runs an executor with the same workload under \p Config.
Array3D executorResult(const PlanConfig &Config, const MachineModel &Machine,
                       KernelVariant Kernels = KernelVariant::Reference) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  PlanExecutor Exec(Dom, std::move(Plan), Kernels);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 1234, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(TimeSteps);
  Array3D Result(Exec.domain().allocBox());
  Result.copyRegionFrom(Exec.state(), Exec.domain().coreBox());
  return Result;
}

Box3 coreBox() { return Box3::fromExtents(GridNI, GridNJ, GridNK); }

/// Parameter: (strategy, sockets, variant, use2D, kernel backend).
struct EquivalenceCase {
  Strategy Strat;
  int Sockets;
  PartitionVariant Variant;
  bool Use2D;
  KernelVariant Kernels = KernelVariant::Reference;
  const char *Name;
};

class StrategyEquivalence
    : public ::testing::TestWithParam<EquivalenceCase> {};

} // namespace

TEST_P(StrategyEquivalence, MatchesReferenceBitExactly) {
  const EquivalenceCase &C = GetParam();
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = C.Sockets; // Enough sockets for the case.

  PlanConfig Config;
  Config.Strat = C.Strat;
  Config.Sockets = C.Sockets;
  Config.Variant = C.Variant;
  if (C.Use2D) {
    auto [Pi, Pj] = factorForGrid(C.Sockets);
    Config.GridPartsI = Pi;
    Config.GridPartsJ = Pj;
  }

  Array3D Reference = referenceResult();
  Array3D Result = executorResult(Config, Machine, C.Kernels);
  EXPECT_EQ(Result.maxAbsDiff(Reference, coreBox()), 0.0)
      << "strategy " << strategyName(C.Strat) << " sockets " << C.Sockets
      << " kernels " << kernelVariantName(C.Kernels);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyEquivalence,
    ::testing::Values(
        EquivalenceCase{Strategy::Original, 1, PartitionVariant::A, false,
                        KernelVariant::Reference, "original_p1"},
        EquivalenceCase{Strategy::Original, 2, PartitionVariant::A, false,
                        KernelVariant::Reference, "original_p2"},
        EquivalenceCase{Strategy::Block31D, 1, PartitionVariant::A, false,
                        KernelVariant::Reference, "block31d_p1"},
        EquivalenceCase{Strategy::Block31D, 3, PartitionVariant::A, false,
                        KernelVariant::Reference, "block31d_p3"},
        EquivalenceCase{Strategy::IslandsOfCores, 1, PartitionVariant::A,
                        false, KernelVariant::Reference, "islands_p1"},
        EquivalenceCase{Strategy::IslandsOfCores, 2, PartitionVariant::A,
                        false, KernelVariant::Reference, "islands_p2_varA"},
        EquivalenceCase{Strategy::IslandsOfCores, 2, PartitionVariant::B,
                        false, KernelVariant::Reference, "islands_p2_varB"},
        EquivalenceCase{Strategy::IslandsOfCores, 4, PartitionVariant::A,
                        false, KernelVariant::Reference, "islands_p4_varA"},
        EquivalenceCase{Strategy::IslandsOfCores, 4, PartitionVariant::B,
                        false, KernelVariant::Reference, "islands_p4_varB"},
        EquivalenceCase{Strategy::IslandsOfCores, 4, PartitionVariant::A,
                        true, KernelVariant::Reference, "islands_p4_grid2x2"},
        EquivalenceCase{Strategy::IslandsOfCores, 6, PartitionVariant::A,
                        true, KernelVariant::Reference, "islands_p6_grid3x2"},
        // Every strategy must also be bit-exact under the Optimized and
        // Simd backends (ISSUE 4: all variants x all strategies).
        EquivalenceCase{Strategy::Original, 2, PartitionVariant::A, false,
                        KernelVariant::Optimized, "original_p2_opt"},
        EquivalenceCase{Strategy::Original, 2, PartitionVariant::A, false,
                        KernelVariant::Simd, "original_p2_simd"},
        EquivalenceCase{Strategy::Block31D, 3, PartitionVariant::A, false,
                        KernelVariant::Optimized, "block31d_p3_opt"},
        EquivalenceCase{Strategy::Block31D, 3, PartitionVariant::A, false,
                        KernelVariant::Simd, "block31d_p3_simd"},
        EquivalenceCase{Strategy::IslandsOfCores, 4, PartitionVariant::B,
                        false, KernelVariant::Optimized,
                        "islands_p4_varB_opt"},
        EquivalenceCase{Strategy::IslandsOfCores, 4, PartitionVariant::B,
                        false, KernelVariant::Simd, "islands_p4_varB_simd"},
        EquivalenceCase{Strategy::IslandsOfCores, 4, PartitionVariant::A,
                        true, KernelVariant::Simd,
                        "islands_p4_grid2x2_simd"}),
    [](const ::testing::TestParamInfo<EquivalenceCase> &Info) {
      return Info.param.Name;
    });

TEST(ExecutorTest, ConservesMass) {
  MachineModel Machine = makeToyMachine();
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  PlanExecutor Exec(Dom, std::move(Plan));
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 77, 0.2, 1.5);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Exec.domain(), 0.2, 0.15, -0.1);
  Exec.prepareCoefficients();
  double Before = Exec.conservedMass();
  Exec.run(5);
  EXPECT_NEAR(Exec.conservedMass(), Before, 1e-10 * Before);
}

TEST(ExecutorTest, SequentialRunsCompose) {
  // run(2) then run(3) must equal run(5).
  MachineModel Machine = makeToyMachine();
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;

  auto makeExec = [&]() {
    ExecutionPlan Plan =
        buildPlan(M.Program, Dom.coreBox(), Machine, Config);
    auto Exec = std::make_unique<PlanExecutor>(Dom, std::move(Plan));
    fillRandomPositive(Exec->stateIn(), Exec->domain(), 55, 0.2, 1.5);
    setConstantVelocity(Exec->velocity(0), Exec->velocity(1),
                        Exec->velocity(2), Exec->domain(), 0.25, 0.1, 0.05);
    Exec->prepareCoefficients();
    return Exec;
  };

  auto Split = makeExec();
  Split->run(2);
  Split->run(3);
  auto Whole = makeExec();
  Whole->run(5);
  EXPECT_EQ(Split->state().maxAbsDiff(Whole->state(), Dom.coreBox()), 0.0);
}

TEST(ExecutorTest, ZeroStepsIsANoOp) {
  MachineModel Machine = makeToyMachine();
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(12, 10, 8, mpdataHaloDepth());
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 1;
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  PlanExecutor Exec(Dom, std::move(Plan));
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 9, 0.2, 1.5);
  Array3D Before(Dom.allocBox());
  Before.copyRegionFrom(Exec.stateIn(), Dom.coreBox());
  Exec.run(0);
  EXPECT_EQ(Exec.state().maxAbsDiff(Before, Dom.coreBox()), 0.0);
}

TEST(RegionSplitTest, CoversRegionDisjointly) {
  Box3 Region(2, 0, 0, 10, 30, 6);
  int Count = 4;
  int64_t Sum = 0;
  for (int T = 0; T != Count; ++T) {
    Box3 Sub = teamSubRegion(Region, T, Count);
    Sum += Sub.numPoints();
    EXPECT_TRUE(Region.containsBox(Sub));
  }
  EXPECT_EQ(Sum, Region.numPoints());
}

TEST(RegionSplitTest, SplitsLongestNonUnitStrideDimension) {
  EXPECT_EQ(teamSplitDim(Box3(0, 0, 0, 10, 30, 6)), 1);
  EXPECT_EQ(teamSplitDim(Box3(0, 0, 0, 50, 30, 6)), 0);
  // Even when k is longest, the split must stay off the unit-stride axis
  // (false sharing; broken contiguous inner loops).
  EXPECT_EQ(teamSplitDim(Box3(0, 0, 0, 5, 5, 9)), 0);
  EXPECT_EQ(teamSplitDim(Box3(0, 0, 0, 3, 5, 64)), 1);
  // Only when both i and j are degenerate may the k axis be cut.
  EXPECT_EQ(teamSplitDim(Box3(0, 0, 0, 1, 1, 9)), 2);
  EXPECT_EQ(teamSplitDim(Box3(0, 0, 0, 1, 4, 9)), 1);
}

TEST(RegionSplitTest, NeverCutsTheKAxisWhenAvoidable) {
  // Sweep k-dominant shapes: no thread boundary may land inside k unless
  // i and j are both degenerate.
  for (int Ni : {1, 2, 7})
    for (int Nj : {1, 3, 8})
      for (int Nk : {16, 33}) {
        Box3 Region = Box3::fromExtents(Ni, Nj, Nk);
        bool MayCutK = Ni <= 1 && Nj <= 1;
        for (int Count : {2, 3, 5})
          for (int T = 0; T != Count; ++T) {
            Box3 Sub = teamSubRegion(Region, T, Count);
            if (Sub.empty() || MayCutK)
              continue;
            EXPECT_EQ(Sub.extent(2), Nk)
                << Ni << "x" << Nj << "x" << Nk << " thread " << T
                << " of " << Count;
          }
      }
}

TEST(RegionSplitTest, MoreThreadsThanCells) {
  Box3 Region(0, 0, 0, 2, 1, 1); // Longest dim extent 2, 5 threads.
  int NonEmpty = 0;
  int64_t Sum = 0;
  for (int T = 0; T != 5; ++T) {
    Box3 Sub = teamSubRegion(Region, T, 5);
    if (!Sub.empty())
      ++NonEmpty;
    Sum += Sub.numPoints();
  }
  EXPECT_EQ(NonEmpty, 2);
  EXPECT_EQ(Sum, Region.numPoints());
}
