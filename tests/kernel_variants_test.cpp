//===- tests/kernel_variants_test.cpp - Kernel backend equivalence --------===//
//
// The optimized strided-pointer kernels and the Simd contiguous-restrict
// kernels must be bit-identical to the reference kernels: same
// floating-point expression order, different loop machinery. Property-
// tested per (stage, variant) over random fields — both unpadded and
// vector-padded storage — and over whole multi-step runs.
//
//===----------------------------------------------------------------------===//

#include "stencil/FieldStore.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "mpdata/Solver.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

/// Builds a field store with every array filled from one random stream.
/// \p B gets vector-padded rows so the comparison also proves padding
/// does not change results.
void makeStores(const MpdataProgram &M, const Box3 &Alloc, uint64_t Seed,
                FieldStore &A, FieldStore &B) {
  SplitMix64 Rng(Seed);
  for (unsigned Id = 0; Id != M.Program.numArrays(); ++Id) {
    A.allocateOwned(static_cast<ArrayId>(Id), Alloc);
    B.allocateOwned(static_cast<ArrayId>(Id), Alloc, Array3D::VectorPadK);
    Array3D &ArrA = A.get(static_cast<ArrayId>(Id));
    Array3D &ArrB = B.get(static_cast<ArrayId>(Id));
    bool IsVelocity = static_cast<ArrayId>(Id) == M.U1 ||
                      static_cast<ArrayId>(Id) == M.U2 ||
                      static_cast<ArrayId>(Id) == M.U3;
    for (int I = Alloc.Lo[0]; I != Alloc.Hi[0]; ++I)
      for (int J = Alloc.Lo[1]; J != Alloc.Hi[1]; ++J)
        for (int K = Alloc.Lo[2]; K != Alloc.Hi[2]; ++K) {
          double V = IsVelocity ? Rng.nextInRange(-0.4, 0.4)
                                : Rng.nextInRange(0.05, 1.5);
          ArrA.at(I, J, K) = V;
          ArrB.at(I, J, K) = V;
        }
  }
}

class KernelVariantEquality
    : public ::testing::TestWithParam<std::tuple<int, KernelVariant>> {};

} // namespace

TEST_P(KernelVariantEquality, MatchesReferenceBitExactly) {
  MpdataProgram M = buildMpdataProgram();
  StageId Stage = std::get<0>(GetParam());
  KernelVariant Variant = std::get<1>(GetParam());
  // Deliberately awkward extents (odd, small) to stress row handling,
  // including partial vector tails in the Simd backend.
  Box3 Target(1, 2, 3, 8, 9, 12);
  Box3 Alloc = Target.grownAll(4);

  FieldStore Ref(M.Program.numArrays());
  FieldStore Var(M.Program.numArrays());
  makeStores(M, Alloc, 0xC0FFEE + static_cast<uint64_t>(Stage), Ref, Var);

  runMpdataStage(M, Ref, Stage, Target, KernelVariant::Reference);
  runMpdataStage(M, Var, Stage, Target, Variant);

  for (ArrayId Out : M.Program.stage(Stage).Outputs) {
    EXPECT_EQ(Var.get(Out).maxAbsDiff(Ref.get(Out), Target), 0.0)
        << "stage " << M.Program.stage(Stage).Name << " variant "
        << kernelVariantName(Variant);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStages, KernelVariantEquality,
    ::testing::Combine(::testing::Range(0, 17),
                       ::testing::Values(KernelVariant::Optimized,
                                         KernelVariant::Simd)),
    [](const ::testing::TestParamInfo<std::tuple<int, KernelVariant>>
           &Info) {
      MpdataProgram M = buildMpdataProgram();
      return M.Program.stage(std::get<0>(Info.param)).Name + "_" +
             kernelVariantName(std::get<1>(Info.param));
    });

TEST(KernelVariantsTest, WholeRunMatchesAcrossVariants) {
  auto runWith = [](KernelVariant Variant) {
    SolverOptions Opts;
    Opts.Kernels = Variant;
    ReferenceSolver Solver(18, 14, 10, Opts);
    fillRandomPositive(Solver.stateIn(), Solver.domain(), 99, 0.1, 2.0);
    setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                        Solver.velocity(2), Solver.domain(), 0.3, -0.2,
                        0.15);
    Solver.prepareCoefficients();
    Solver.run(5);
    Array3D Out(Solver.domain().allocBox());
    Out.copyRegionFrom(Solver.state(), Solver.domain().coreBox());
    return Out;
  };
  Array3D Ref = runWith(KernelVariant::Reference);
  Array3D Opt = runWith(KernelVariant::Optimized);
  Array3D Simd = runWith(KernelVariant::Simd);
  EXPECT_EQ(Opt.maxAbsDiff(Ref, Box3::fromExtents(18, 14, 10)), 0.0);
  EXPECT_EQ(Simd.maxAbsDiff(Ref, Box3::fromExtents(18, 14, 10)), 0.0);
}

TEST(KernelVariantsTest, EmptyRegionIsANoOpForBothVariants) {
  MpdataProgram M = buildMpdataProgram();
  FieldStore Fields(M.Program.numArrays());
  for (unsigned Id = 0; Id != M.Program.numArrays(); ++Id)
    Fields.allocateOwned(static_cast<ArrayId>(Id), Box3::fromExtents(4, 4, 4));
  Fields.get(M.F1).fill(3.0);
  runMpdataStage(M, Fields, M.SFlux1, Box3(), KernelVariant::Optimized);
  EXPECT_EQ(Fields.get(M.F1).at(0, 0, 0), 3.0);
}
