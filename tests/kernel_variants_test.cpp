//===- tests/kernel_variants_test.cpp - Kernel backend equivalence --------===//
//
// The optimized strided-pointer kernels and the Simd contiguous-restrict
// kernels must be bit-identical to the reference kernels: same
// floating-point expression order, different loop machinery. Property-
// tested per (stage, variant) over random fields — both unpadded and
// vector-padded storage (via TestMatrix's fillStorePairRandom) — and over
// whole multi-step runs through the registered workload's serial stepper.
//
//===----------------------------------------------------------------------===//

#include "TestMatrix.h"

#include "apps/Workloads.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"

#include <gtest/gtest.h>

#include <utility>

using namespace icores;

namespace {

class KernelVariantEquality
    : public ::testing::TestWithParam<std::tuple<int, KernelVariant>> {};

} // namespace

TEST_P(KernelVariantEquality, MatchesReferenceBitExactly) {
  MpdataProgram M = buildMpdataProgram();
  StageId Stage = std::get<0>(GetParam());
  KernelVariant Variant = std::get<1>(GetParam());
  // Deliberately awkward extents (odd, small) to stress row handling,
  // including partial vector tails in the Simd backend.
  Box3 Target(1, 2, 3, 8, 9, 12);
  Box3 Alloc = Target.grownAll(4);

  // \p Var gets vector-padded rows so the comparison also proves padding
  // does not change results.
  FieldStore Ref(M.Program.numArrays());
  FieldStore Var(M.Program.numArrays());
  fillStorePairRandom(M.Program, Alloc,
                      0xC0FFEE + static_cast<uint64_t>(Stage), Ref, Var,
                      [&](ArrayId Id) {
                        bool IsVelocity =
                            Id == M.U1 || Id == M.U2 || Id == M.U3;
                        return IsVelocity
                                   ? std::make_pair(-0.4, 0.4)
                                   : std::make_pair(0.05, 1.5);
                      });

  runMpdataStage(M, Ref, Stage, Target, KernelVariant::Reference);
  runMpdataStage(M, Var, Stage, Target, Variant);

  for (ArrayId Out : M.Program.stage(Stage).Outputs) {
    EXPECT_EQ(Var.get(Out).maxAbsDiff(Ref.get(Out), Target), 0.0)
        << "stage " << M.Program.stage(Stage).Name << " variant "
        << kernelVariantName(Variant);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStages, KernelVariantEquality,
    ::testing::Combine(::testing::Range(0, 17),
                       ::testing::Values(KernelVariant::Optimized,
                                         KernelVariant::Simd)),
    [](const ::testing::TestParamInfo<std::tuple<int, KernelVariant>>
           &Info) {
      MpdataProgram M = buildMpdataProgram();
      return M.Program.stage(std::get<0>(Info.param)).Name + "_" +
             kernelVariantName(std::get<1>(Info.param));
    });

TEST(KernelVariantsTest, WholeRunMatchesAcrossVariants) {
  // Every backend a registered workload advertises must agree with its
  // reference backend over a whole seeded multi-step serial run.
  for (const WorkloadSpec &Spec : builtinWorkloads().workloads()) {
    Domain Dom = workloadDomain(Spec, 18, 14, 10);
    auto Ref = serialOracle(Spec, Dom, 5, /*Seed=*/99,
                            KernelVariant::Reference);
    for (KernelVariant V : Spec.Variants) {
      if (V == KernelVariant::Reference)
        continue;
      auto Run = serialOracle(Spec, Dom, 5, /*Seed=*/99, V);
      EXPECT_EQ(
          maxNewestStateDiff(Spec.Program, *Run, *Ref, Dom.coreBox()), 0.0)
          << Spec.Name << " variant " << kernelVariantName(V);
      EXPECT_TRUE(reductionHistoriesMatch(Spec.Program, *Run, *Ref))
          << Spec.Name << " variant " << kernelVariantName(V);
    }
  }
}

TEST(KernelVariantsTest, EmptyRegionIsANoOpForBothVariants) {
  MpdataProgram M = buildMpdataProgram();
  FieldStore Fields(M.Program.numArrays());
  for (unsigned Id = 0; Id != M.Program.numArrays(); ++Id)
    Fields.allocateOwned(static_cast<ArrayId>(Id), Box3::fromExtents(4, 4, 4));
  Fields.get(M.F1).fill(3.0);
  runMpdataStage(M, Fields, M.SFlux1, Box3(), KernelVariant::Optimized);
  EXPECT_EQ(Fields.get(M.F1).at(0, 0, 0), 3.0);
}
