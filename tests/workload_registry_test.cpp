//===- tests/workload_registry_test.cpp - Registry misuse pack ------------===//
//
// Misregistration is a diagnosable event, never a crash: every violation
// of the WorkloadRegistry contract — duplicate names, halo declarations
// inconsistent with the program's dependence cone, reductions without
// combiners, bindings naming no declared reduction, missing or incomplete
// kernel tables, missing seeded init — must surface as a structured
// `registry.*` finding in the caller's DiagnosticEngine, leave the
// registry unchanged, and return false from add(). See DESIGN.md §15.
//
//===----------------------------------------------------------------------===//

#include "apps/Workloads.h"
#include "grid/Array3D.h"
#include "stencil/FieldStore.h"
#include "stencil/WorkloadRegistry.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace icores;

namespace {

/// A minimal valid workload: one stage copying in -> out through a
/// one-deep window along dimension 0, fed back, with a no-op kernel and
/// a constant seeded init.
struct TinyApp {
  StencilProgram Program;
  ArrayId In = 0, Out = 0;
};

TinyApp makeTinyApp() {
  TinyApp A;
  A.In = A.Program.addArray("in", ArrayRole::StepInput);
  A.Out = A.Program.addArray("out", ArrayRole::StepOutput);
  StageDef S;
  S.Name = "copy";
  S.Outputs = {A.Out};
  S.Inputs = {StageInput::alongDim(A.In, 0, -1, 1)};
  S.FlopsPerPoint = 1;
  A.Program.addStage(S);
  A.Program.addFeedback(A.Out, A.In);
  return A;
}

WorkloadSpec makeTinySpec(const std::string &Name = "tiny") {
  TinyApp A = makeTinyApp();
  WorkloadSpec Spec;
  Spec.Name = Name;
  Spec.Description = "minimal registry-contract probe";
  Spec.Program = A.Program;
  Spec.HaloDepth = 1;
  Spec.Variants = {KernelVariant::Reference};
  unsigned NumStages = A.Program.numStages();
  Spec.Kernels = [NumStages](KernelVariant) {
    KernelTable T(NumStages);
    for (unsigned S = 0; S != NumStages; ++S)
      T.set(static_cast<StageId>(S), [](FieldStore &, const Box3 &) {});
    return T;
  };
  ArrayId In = A.In;
  Spec.Init = [In](const WorkloadInitContext &Ctx) {
    Ctx.Array(In).fill(1.0);
  };
  return Spec;
}

/// True when \p Diags carries a finding with exactly this id.
bool hasFinding(const DiagnosticEngine &Diags, const std::string &Id) {
  for (const Finding &F : Diags.findings())
    if (F.Id == Id)
      return true;
  return false;
}

} // namespace

TEST(WorkloadRegistryTest, ValidSpecRegisters) {
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_TRUE(R.add(makeTinySpec(), Diags));
  EXPECT_EQ(Diags.numFindings(), 0u);
  EXPECT_EQ(R.size(), 1u);
  ASSERT_NE(R.find("tiny"), nullptr);
  EXPECT_EQ(R.find("tiny")->Description, "minimal registry-contract probe");
  EXPECT_EQ(R.names(), std::vector<std::string>{"tiny"});
  Domain Dom = workloadDomain(*R.find("tiny"), 8, 6, 4);
  EXPECT_EQ(Dom.ni(), 8);
  EXPECT_EQ(Dom.haloDepth(), 1);
}

TEST(WorkloadRegistryTest, EmptyNameIsAFinding) {
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(makeTinySpec(""), Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.name.empty"));
  EXPECT_EQ(R.size(), 0u);
}

TEST(WorkloadRegistryTest, DuplicateNameIsAFinding) {
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  ASSERT_TRUE(R.add(makeTinySpec(), Diags));
  EXPECT_FALSE(R.add(makeTinySpec(), Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.duplicate-name"));
  EXPECT_EQ(R.size(), 1u) << "the duplicate must not be stored";
}

TEST(WorkloadRegistryTest, HaloShallowerThanTheConeIsAFinding) {
  WorkloadSpec Spec = makeTinySpec();
  Spec.HaloDepth = 0; // The copy stage reads one plane beyond the core.
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.halo.window-exceeds-declared"));
  EXPECT_EQ(R.size(), 0u);
}

TEST(WorkloadRegistryTest, DeeperDeclaredHaloIsAccepted) {
  // Over-declaring the halo wastes memory but reads no unfilled cell;
  // that is the access audit's (warning) territory, not the registry's.
  WorkloadSpec Spec = makeTinySpec();
  Spec.HaloDepth = 3;
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_TRUE(R.add(Spec, Diags));
  EXPECT_EQ(Diags.numFindings(), 0u);
}

TEST(WorkloadRegistryTest, ReductionWithoutCombinerIsAFinding) {
  WorkloadSpec Spec = makeTinySpec();
  Spec.Program.addReduction({"norm", makeTinyApp().Out});
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.reduction.missing-combiner"));
  EXPECT_EQ(R.size(), 0u);
}

TEST(WorkloadRegistryTest, NullCombinerCallbackIsAFinding) {
  // A binding whose std::function is empty is as unusable as no binding.
  WorkloadSpec Spec = makeTinySpec();
  Spec.Program.addReduction({"norm", makeTinyApp().Out});
  Spec.Reductions.push_back({"norm", nullptr, 0.0});
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.reduction.missing-combiner"));
}

TEST(WorkloadRegistryTest, BindingForUndeclaredReductionIsAFinding) {
  WorkloadSpec Spec = makeTinySpec();
  Spec.Reductions.push_back(
      {"ghost", [](double A, double B) { return A > B ? A : B; }, 0.0});
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.reduction.unknown"));
}

TEST(WorkloadRegistryTest, EmptyVariantListIsAFinding) {
  WorkloadSpec Spec = makeTinySpec();
  Spec.Variants.clear();
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.variants.empty"));
}

TEST(WorkloadRegistryTest, MissingKernelFactoryIsAFinding) {
  WorkloadSpec Spec = makeTinySpec();
  Spec.Kernels = nullptr;
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.kernels.missing"));
}

TEST(WorkloadRegistryTest, IncompleteKernelTableIsAFinding) {
  WorkloadSpec Spec = makeTinySpec();
  Spec.Kernels = [](KernelVariant) { return KernelTable(); };
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.kernels.incomplete"));
}

TEST(WorkloadRegistryTest, MissingInitIsAFinding) {
  WorkloadSpec Spec = makeTinySpec();
  Spec.Init = nullptr;
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.init.missing"));
}

TEST(WorkloadRegistryTest, InvalidProgramSurfacesProgramFindings) {
  // A structurally broken program (a stage reading an array no stage
  // produces) is reported through the program.* channel and blocks
  // registration — still no crash.
  WorkloadSpec Spec = makeTinySpec();
  StencilProgram Broken;
  ArrayId In = Broken.addArray("in", ArrayRole::StepInput);
  ArrayId Out = Broken.addArray("out", ArrayRole::StepOutput);
  ArrayId Phantom = Broken.addArray("phantom", ArrayRole::Intermediate);
  StageDef S;
  S.Name = "reads-phantom";
  S.Outputs = {Out};
  S.Inputs = {StageInput::center(Phantom)};
  Broken.addStage(S);
  Broken.addFeedback(Out, In);
  Spec.Program = Broken;
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(Diags.hasErrors());
  bool SawProgramFinding = false;
  for (const Finding &F : Diags.findings())
    SawProgramFinding |= F.Id.compare(0, 8, "program.") == 0;
  EXPECT_TRUE(SawProgramFinding);
  EXPECT_EQ(R.size(), 0u);
}

TEST(WorkloadRegistryTest, AllViolationsAccumulateInOnePass) {
  // One add() reports every problem it can see, so a misregistered
  // workload is fixed in one round trip, not one finding at a time.
  WorkloadSpec Spec = makeTinySpec();
  Spec.HaloDepth = 0;
  Spec.Init = nullptr;
  Spec.Variants.clear();
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  EXPECT_TRUE(hasFinding(Diags, "registry.halo.window-exceeds-declared"));
  EXPECT_TRUE(hasFinding(Diags, "registry.init.missing"));
  EXPECT_TRUE(hasFinding(Diags, "registry.variants.empty"));
  EXPECT_EQ(R.size(), 0u);
}

TEST(WorkloadRegistryTest, FindingsCarryTheWorkloadName) {
  WorkloadSpec Spec = makeTinySpec("culprit");
  Spec.Init = nullptr;
  WorkloadRegistry R;
  DiagnosticEngine Diags;
  EXPECT_FALSE(R.add(Spec, Diags));
  bool Named = false;
  for (const Finding &F : Diags.findings())
    for (const auto &Note : F.Notes)
      Named |= Note.first == "workload" && Note.second == "culprit";
  EXPECT_TRUE(Named);
}

TEST(WorkloadRegistryTest, BuiltinRegistryIsWellFormed) {
  const WorkloadRegistry &R = builtinWorkloads();
  ASSERT_GE(R.size(), 3u);
  std::vector<std::string> Names = R.names();
  EXPECT_NE(std::find(Names.begin(), Names.end(), "mpdata"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "advdiff"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "cfl-advect"),
            Names.end());
  for (const WorkloadSpec &Spec : R.workloads())
    EXPECT_EQ(R.find(Spec.Name), &Spec);
  EXPECT_EQ(R.find("no-such-workload"), nullptr);
}
