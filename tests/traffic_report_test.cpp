//===- tests/traffic_report_test.cpp - Per-array traffic accounting -------===//

#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/Simulator.h"
#include "sim/TrafficReport.h"
#include "support/OStream.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

struct TrafficFixture : public ::testing::Test {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();
  Box3 Grid = Box3::fromExtents(256, 128, 32);

  TrafficReport report(Strategy Strat, int Sockets, int Steps = 10) {
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = Sockets;
    ExecutionPlan Plan = buildPlan(M.Program, Grid, Uv, Config);
    return accountTraffic(Plan, M.Program, Uv, Steps);
  }

  SimResult sim(Strategy Strat, int Sockets, int Steps = 10) {
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = Sockets;
    ExecutionPlan Plan = buildPlan(M.Program, Grid, Uv, Config);
    return simulate(Plan, M.Program, Uv, Steps);
  }
};

} // namespace

TEST_F(TrafficFixture, TotalsMatchSimulatorAccounting) {
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    TrafficReport R = report(Strat, 2);
    SimResult S = sim(Strat, 2);
    EXPECT_NEAR(static_cast<double>(R.totalBytes()),
                static_cast<double>(S.DramBytesPerStep) * 10.0,
                0.01 * static_cast<double>(R.totalBytes()))
        << strategyName(Strat);
  }
}

TEST_F(TrafficFixture, OriginalDominatedByIntermediates) {
  TrafficReport R = report(Strategy::Original, 1);
  EXPECT_GT(R.bytesForRole(ArrayRole::Intermediate),
            R.bytesForRole(ArrayRole::StepInput));
  EXPECT_GT(R.bytesForRole(ArrayRole::Intermediate),
            R.bytesForRole(ArrayRole::StepOutput));
}

TEST_F(TrafficFixture, BlockingSlashesIntermediateTraffic) {
  // Cache blocking keeps intermediates resident: only the spill fraction
  // reaches DRAM, cutting their traffic several-fold vs the original.
  TrafficReport Orig = report(Strategy::Original, 1);
  TrafficReport Blocked = report(Strategy::Block31D, 1);
  EXPECT_LT(Blocked.bytesForRole(ArrayRole::Intermediate),
            0.3 * static_cast<double>(
                      Orig.bytesForRole(ArrayRole::Intermediate)));
  // Input and output traffic stay essentially unchanged (one sweep each).
  EXPECT_NEAR(static_cast<double>(Blocked.bytesForRole(ArrayRole::StepOutput)),
              static_cast<double>(Orig.bytesForRole(ArrayRole::StepOutput)),
              0.01 * static_cast<double>(
                         Orig.bytesForRole(ArrayRole::StepOutput)));
}

TEST_F(TrafficFixture, EveryUsedArrayAppears) {
  TrafficReport R = report(Strategy::Original, 1);
  ASSERT_EQ(R.PerArray.size(), M.Program.numArrays());
  for (const ArrayTraffic &A : R.PerArray)
    EXPECT_GT(A.totalBytes(), 0) << A.Name;
}

TEST_F(TrafficFixture, OutputWrittenExactlyOncePerStep) {
  TrafficReport R = report(Strategy::IslandsOfCores, 4, /*Steps=*/10);
  const ArrayTraffic &Out = R.PerArray[static_cast<size_t>(M.XOut)];
  int64_t Expected = Grid.numPoints() * 8 * 10;
  EXPECT_EQ(Out.WriteBytes, Expected);
  EXPECT_EQ(Out.ReadBytes, 0);
}

TEST_F(TrafficFixture, InputReReadGrowsWithIslands) {
  // More islands re-read more cone margin of the shared inputs.
  TrafficReport R2 = report(Strategy::IslandsOfCores, 2);
  TrafficReport R8 = report(Strategy::IslandsOfCores, 8);
  EXPECT_GT(R8.bytesForRole(ArrayRole::StepInput),
            R2.bytesForRole(ArrayRole::StepInput));
}

TEST_F(TrafficFixture, PrintsAlignedTable) {
  TrafficReport R = report(Strategy::Original, 1);
  std::string Buf;
  StringOStream OS(Buf);
  R.print(OS);
  EXPECT_NE(Buf.find("xIn"), std::string::npos);
  EXPECT_NE(Buf.find("total DRAM traffic"), std::string::npos);
}
