//===- tests/simulator_test.cpp - Performance simulator tests -------------===//

#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <map>

using namespace icores;

namespace {

struct SimFixture : public ::testing::Test {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();
  Box3 PaperGrid = Box3::fromExtents(1024, 512, 64);

  SimResult runSim(Strategy Strat, int Sockets,
                   PagePlacement Placement = PagePlacement::FirstTouch,
                   int Steps = 50) {
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = Sockets;
    Config.Placement = Placement;
    ExecutionPlan Plan = buildPlan(M.Program, PaperGrid, Uv, Config);
    return simulate(Plan, M.Program, Uv, Steps);
  }
};

} // namespace

TEST_F(SimFixture, TimesArePositiveAndFinite) {
  for (Strategy S : {Strategy::Original, Strategy::Block31D,
                     Strategy::IslandsOfCores}) {
    SimResult R = runSim(S, 2);
    EXPECT_GT(R.StepSeconds, 0.0);
    EXPECT_GT(R.TotalSeconds, R.StepSeconds);
    EXPECT_GT(R.FlopsPerStep, 0);
    EXPECT_GT(R.DramBytesPerStep, 0);
  }
}

TEST_F(SimFixture, TotalScalesWithSteps) {
  SimResult R10 = runSim(Strategy::IslandsOfCores, 4,
                         PagePlacement::FirstTouch, 10);
  SimResult R20 = runSim(Strategy::IslandsOfCores, 4,
                         PagePlacement::FirstTouch, 20);
  EXPECT_DOUBLE_EQ(R20.TotalSeconds, 2.0 * R10.TotalSeconds);
  EXPECT_EQ(R10.StepSeconds, R20.StepSeconds);
}

TEST_F(SimFixture, SerialInitOriginalDegradesWithSockets) {
  // Table 1's first row: adding processors makes the serial-init original
  // version *slower*.
  double Prev = runSim(Strategy::Original, 1,
                       PagePlacement::None).TotalSeconds;
  for (int P : {2, 4, 8, 14}) {
    double T = runSim(Strategy::Original, P,
                      PagePlacement::None).TotalSeconds;
    EXPECT_GT(T, Prev) << "P=" << P;
    Prev = T;
  }
}

TEST_F(SimFixture, FirstTouchOriginalScales) {
  // Table 1's second row: with first-touch placement the original version
  // keeps speeding up with P.
  double Prev = runSim(Strategy::Original, 1).TotalSeconds;
  for (int P : {2, 4, 8, 14}) {
    double T = runSim(Strategy::Original, P).TotalSeconds;
    EXPECT_LT(T, Prev) << "P=" << P;
    Prev = T;
  }
}

TEST_F(SimFixture, Pure31DStopsScaling) {
  // Table 1/3: the pure (3+1)D decomposition wins at P=1 but degrades for
  // large P, ending slower than the original.
  double T1 = runSim(Strategy::Block31D, 1).TotalSeconds;
  double TOrig1 = runSim(Strategy::Original, 1).TotalSeconds;
  EXPECT_LT(T1, TOrig1); // 3.37x in the paper.
  double T14 = runSim(Strategy::Block31D, 14).TotalSeconds;
  double TOrig14 = runSim(Strategy::Original, 14).TotalSeconds;
  EXPECT_GT(T14, TOrig14); // ~3.7x slower in the paper.
  EXPECT_GT(T14, T1 / 3.0); // Nowhere near linear scaling.
}

TEST_F(SimFixture, IslandsScaleMonotonically) {
  double Prev = runSim(Strategy::IslandsOfCores, 1).TotalSeconds;
  for (int P = 2; P <= 14; ++P) {
    double T = runSim(Strategy::IslandsOfCores, P).TotalSeconds;
    EXPECT_LT(T, Prev) << "P=" << P;
    Prev = T;
  }
}

TEST_F(SimFixture, IslandsMatch31DAtOneSocket) {
  // With one island the two strategies build the same plan, so the
  // simulated times coincide (Table 3 shows 9.0 s for both).
  SimResult A = runSim(Strategy::Block31D, 1);
  SimResult B = runSim(Strategy::IslandsOfCores, 1);
  EXPECT_DOUBLE_EQ(A.TotalSeconds, B.TotalSeconds);
}

TEST_F(SimFixture, HeadlineSpeedupAtFourteenSockets) {
  // The paper's headline: islands-of-cores accelerates the pure (3+1)D
  // decomposition more than 10x at P=14.
  double T31 = runSim(Strategy::Block31D, 14).TotalSeconds;
  double TIsl = runSim(Strategy::IslandsOfCores, 14).TotalSeconds;
  EXPECT_GT(T31 / TIsl, 8.0);
  EXPECT_LT(T31 / TIsl, 14.0);
}

TEST_F(SimFixture, OverallSpeedupRoughlyConstant) {
  // S_ov (islands vs original) stays near ~2.7-3.0 across P (Table 3).
  for (int P : {2, 6, 10, 14}) {
    double SOv = runSim(Strategy::Original, P).TotalSeconds /
                 runSim(Strategy::IslandsOfCores, P).TotalSeconds;
    EXPECT_GT(SOv, 2.0) << "P=" << P;
    EXPECT_LT(SOv, 4.5) << "P=" << P;
  }
}

TEST_F(SimFixture, UtilizationInPaperBand) {
  // Table 4: ~26-40% of theoretical peak across configurations.
  for (int P : {1, 4, 8, 14}) {
    SimResult R = runSim(Strategy::IslandsOfCores, P);
    double Util = R.sustainedGflops() * 1e9 / Uv.peakFlops(P);
    EXPECT_GT(Util, 0.20) << "P=" << P;
    EXPECT_LT(Util, 0.55) << "P=" << P;
  }
}

TEST_F(SimFixture, BlockedTrafficFarBelowOriginal) {
  // Sect. 3.2: the (3+1)D decomposition cuts main-memory traffic by ~4x
  // (133 GB -> 30 GB on the small grid).
  SimResult Orig = runSim(Strategy::Original, 1);
  SimResult Blocked = runSim(Strategy::Block31D, 1);
  double Ratio = static_cast<double>(Orig.DramBytesPerStep) /
                 static_cast<double>(Blocked.DramBytesPerStep);
  EXPECT_GT(Ratio, 3.0);
  EXPECT_LT(Ratio, 8.0);
}

TEST_F(SimFixture, RemoteTrafficShapes) {
  // Islands exchange nothing within a step except the cold cone margins
  // of the shared inputs; single-island runs exchange nothing at all.
  EXPECT_EQ(runSim(Strategy::IslandsOfCores, 1).RemoteBytesPerStep, 0);
  int64_t Islands = runSim(Strategy::IslandsOfCores, 4).RemoteBytesPerStep;
  EXPECT_GT(Islands, 0);
  // The cone margins are a tiny fraction of the domain.
  SimResult I4 = runSim(Strategy::IslandsOfCores, 4);
  EXPECT_LT(static_cast<double>(I4.RemoteBytesPerStep),
            0.1 * static_cast<double>(I4.DramBytesPerStep));
  EXPECT_GT(runSim(Strategy::Block31D, 4).RemoteBytesPerStep, 0);
  EXPECT_GT(runSim(Strategy::Original, 4).RemoteBytesPerStep, 0);
}

TEST_F(SimFixture, FlopsIncludeRedundantIslandWork) {
  SimResult P1 = runSim(Strategy::IslandsOfCores, 1);
  SimResult P14 = runSim(Strategy::IslandsOfCores, 14);
  EXPECT_GT(P14.FlopsPerStep, P1.FlopsPerStep);
  // But only by a few percent (Table 2: 3.21% at 14 islands).
  double Overhead = static_cast<double>(P14.FlopsPerStep) /
                        static_cast<double>(P1.FlopsPerStep) -
                    1.0;
  EXPECT_LT(Overhead, 0.08);
}

TEST_F(SimFixture, ActiveSocketsReported) {
  EXPECT_EQ(runSim(Strategy::IslandsOfCores, 5).ActiveSockets, 5);
  EXPECT_EQ(runSim(Strategy::Original, 3).ActiveSockets, 3);
}

TEST_F(SimFixture, DefaultKernelVariantIsSimd) {
  // The 4-arg overload models the Simd backend; the calibrated
  // KernelEfficiency corresponds to it (factor 1.0), so every historical
  // simulated number is unchanged by the SimOptions extension.
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 4;
  ExecutionPlan Plan = buildPlan(M.Program, PaperGrid, Uv, Config);
  SimResult Legacy = simulate(Plan, M.Program, Uv, 10);
  SimOptions Opts;
  Opts.Kernels = KernelVariant::Simd;
  SimResult Explicit = simulate(Plan, M.Program, Uv, 10, Opts);
  EXPECT_DOUBLE_EQ(Legacy.TotalSeconds, Explicit.TotalSeconds);
  EXPECT_EQ(Legacy.FlopsPerStep, Explicit.FlopsPerStep);
}

TEST_F(SimFixture, SlowerKernelBackendsCostMoreTime) {
  // The throughput factors come from bench/bench_kernels: ref < opt <
  // simd Gflop/s, so simulated times must order the other way. Traffic
  // and flop counts are layout-independent and stay identical.
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 4;
  ExecutionPlan Plan = buildPlan(M.Program, PaperGrid, Uv, Config);
  SimOptions Opts;
  std::map<KernelVariant, SimResult> R;
  for (KernelVariant V : {KernelVariant::Reference, KernelVariant::Optimized,
                          KernelVariant::Simd}) {
    Opts.Kernels = V;
    R.emplace(V, simulate(Plan, M.Program, Uv, 10, Opts));
  }
  EXPECT_GT(R.at(KernelVariant::Reference).TotalSeconds,
            R.at(KernelVariant::Optimized).TotalSeconds);
  EXPECT_GT(R.at(KernelVariant::Optimized).TotalSeconds,
            R.at(KernelVariant::Simd).TotalSeconds);
  EXPECT_EQ(R.at(KernelVariant::Reference).DramBytesPerStep,
            R.at(KernelVariant::Simd).DramBytesPerStep);
  EXPECT_EQ(R.at(KernelVariant::Reference).FlopsPerStep,
            R.at(KernelVariant::Simd).FlopsPerStep);
}

TEST_F(SimFixture, ThroughputFactorsAreOrderedAndNormalized) {
  double FRef = kernelThroughputFactor(KernelVariant::Reference);
  double FOpt = kernelThroughputFactor(KernelVariant::Optimized);
  double FSimd = kernelThroughputFactor(KernelVariant::Simd);
  EXPECT_LT(FRef, FOpt);
  EXPECT_LT(FOpt, FSimd);
  EXPECT_DOUBLE_EQ(FSimd, 1.0);
}
