//===- tests/workload_conformance_test.cpp - Registry conformance ---------===//
//
// The workload conformance contract (DESIGN.md §15): every workload
// registered in the built-in WorkloadRegistry is swept through the full
// execution matrix — strategies x kernel backends x temporal depths x
// balance policies x stealing — and must
//
//  - reproduce the serial stepper bit-exactly (newest state AND every
//    per-step reduction value),
//  - carry IR access windows the kernel audit finds exactly tight
//    (no under-declared reads, no slack),
//  - pass the lint suite (program validation, audit, plan dataflow
//    verification, schedule race check) for every strategy's plan,
//  - price identically in the simulator and the executor
//    (projectedSharedBytesPerStep == sharedBytesPerStep),
//  - replay deterministically under seeded chaos faults.
//
// The harness is registry-driven: registering a new workload in
// src/apps/Workloads.cpp makes it appear here with zero test-code
// changes. Set ICORES_CONFORMANCE_QUICK=1 to shrink the matrix (reference
// backend, depths 1-2) for smoke CI runs.
//
//===----------------------------------------------------------------------===//

#include "TestMatrix.h"

#include "apps/Workloads.h"
#include "core/BalanceModel.h"
#include "core/PlanVerifier.h"
#include "exec/LintSuite.h"
#include "exec/ScheduleCheck.h"
#include "fault/FaultInjector.h"
#include "sim/Simulator.h"
#include "stencil/AccessAudit.h"
#include "stencil/HaloAnalysis.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace icores;

namespace {

constexpr int NI = 20, NJ = 14, NK = 8;
constexpr int Steps = 4; // Divisible by every swept temporal depth.
constexpr uint64_t Seed = 7;

bool quickMode() {
  const char *E = std::getenv("ICORES_CONFORMANCE_QUICK");
  return E && *E && std::string(E) != "0";
}

std::vector<int> sweepDepths() {
  return quickMode() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
}

const std::vector<Strategy> &allStrategies() {
  static const std::vector<Strategy> S = {
      Strategy::Original, Strategy::Block31D, Strategy::IslandsOfCores};
  return S;
}

/// Workload-name-parameterized fixture; the instantiation below is the
/// only place the registry is enumerated.
class WorkloadConformance : public ::testing::TestWithParam<std::string> {
protected:
  const WorkloadSpec &spec() const {
    const WorkloadSpec *Spec = builtinWorkloads().find(GetParam());
    EXPECT_NE(Spec, nullptr);
    return *Spec;
  }

  std::vector<KernelVariant> sweepVariants() const {
    return quickMode() ? std::vector<KernelVariant>{KernelVariant::Reference}
                       : spec().Variants;
  }

  Domain domain() const { return workloadDomain(spec(), NI, NJ, NK); }
};

} // namespace

TEST_P(WorkloadConformance, RegistrationContractHolds) {
  const WorkloadSpec &Spec = spec();
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.Program.validate(Diags)) << Diags.firstErrorMessage();
  EXPECT_FALSE(Spec.Name.empty());
  EXPECT_FALSE(Spec.Variants.empty());
  ASSERT_TRUE(static_cast<bool>(Spec.Kernels));
  ASSERT_TRUE(static_cast<bool>(Spec.Init));
  for (KernelVariant V : Spec.Variants)
    EXPECT_TRUE(Spec.Kernels(V).coversProgram(Spec.Program))
        << kernelVariantName(V);
  // The declared halo depth covers the program's dependence cone.
  std::array<int, 3> Depth =
      inputHaloDepth(Spec.Program, Box3::fromExtents(8, 8, 8));
  for (int D = 0; D != 3; ++D)
    EXPECT_LE(Depth[D], Spec.HaloDepth) << "dimension " << D;
  // Every declared reduction has a callable combiner bound.
  for (const ReductionDef &Def : Spec.Program.reductions()) {
    bool Bound = false;
    for (const ReductionBinding &B : Spec.Reductions)
      Bound |= B.Name == Def.Name && static_cast<bool>(B.Combine);
    EXPECT_TRUE(Bound) << "reduction " << Def.Name;
  }
}

TEST_P(WorkloadConformance, SerialOracleIsSeedDeterministic) {
  const WorkloadSpec &Spec = spec();
  Domain Dom = domain();
  auto A = serialOracle(Spec, Dom, Steps, Seed);
  auto B = serialOracle(Spec, Dom, Steps, Seed);
  EXPECT_EQ(maxNewestStateDiff(Spec.Program, *A, *B, Dom.coreBox()), 0.0);
  EXPECT_TRUE(reductionHistoriesMatch(Spec.Program, *A, *B));
  // The init actually depends on the seed: a different seed must move
  // the state (otherwise "seeded" determinism is vacuous).
  auto C = serialOracle(Spec, Dom, Steps, Seed + 1);
  EXPECT_GT(maxNewestStateDiff(Spec.Program, *A, *C, Dom.coreBox()), 0.0);
}

TEST_P(WorkloadConformance, ThreadedPlansAreBitExactAcrossTheMatrix) {
  const WorkloadSpec &Spec = spec();
  Domain Dom = domain();
  auto Oracle = serialOracle(Spec, Dom, Steps, Seed);
  for (Strategy Strat : allStrategies())
    for (int T : sweepDepths())
      for (KernelVariant V : sweepVariants()) {
        ExecutionPlan Plan = makeTestPlan(Spec.Program, Dom, Strat, T);
        PlanVerification PV = verifyPlan(Plan, Spec.Program);
        ASSERT_TRUE(PV.Ok) << strategyName(Strat) << " T=" << T << ": "
                           << PV.FirstError;
        DiagnosticEngine Races;
        EXPECT_TRUE(checkPlanRaces(Spec.Program, Plan, Races))
            << strategyName(Strat) << " T=" << T << ": "
            << Races.firstErrorMessage();
        auto Exec =
            makeWorkloadExecutor(Spec, Dom, std::move(Plan), V, {}, Seed);
        Exec->run(Steps);
        EXPECT_EQ(
            maxNewestStateDiff(Spec.Program, *Exec, *Oracle, Dom.coreBox()),
            0.0)
            << strategyName(Strat) << " T=" << T << " variant="
            << kernelVariantName(V);
        EXPECT_TRUE(reductionHistoriesMatch(Spec.Program, *Exec, *Oracle))
            << strategyName(Strat) << " T=" << T << " variant="
            << kernelVariantName(V);
      }
}

TEST_P(WorkloadConformance, ElisionBalanceAndStealingPreserveBitExactness) {
  const WorkloadSpec &Spec = spec();
  Domain Dom = domain();
  auto Oracle = serialOracle(Spec, Dom, Steps, Seed);
  for (int Sockets : {2, 4})
    for (BalancePolicy Balance :
         {BalancePolicy::Uniform, BalancePolicy::Cost})
      for (bool Stealing : {false, true}) {
        ExecutionPlan Plan =
            makeTestPlan(Spec.Program, Dom, Strategy::IslandsOfCores,
                         /*TemporalDepth=*/2, /*ElideBarriers=*/true,
                         Sockets, Balance);
        // Elision must never remove a barrier the race check (including
        // its reduction rule) needs.
        DiagnosticEngine Races;
        EXPECT_TRUE(checkPlanRaces(Spec.Program, Plan, Races))
            << Races.firstErrorMessage();
        ExecutorOptions Opts;
        Opts.Stealing = Stealing;
        auto Exec = makeWorkloadExecutor(Spec, Dom, std::move(Plan),
                                         KernelVariant::Reference, Opts,
                                         Seed);
        Exec->run(Steps);
        EXPECT_EQ(
            maxNewestStateDiff(Spec.Program, *Exec, *Oracle, Dom.coreBox()),
            0.0)
            << "sockets=" << Sockets << " balance="
            << balancePolicyName(Balance) << " stealing=" << Stealing;
        EXPECT_TRUE(reductionHistoriesMatch(Spec.Program, *Exec, *Oracle))
            << "sockets=" << Sockets << " balance="
            << balancePolicyName(Balance) << " stealing=" << Stealing;
      }
}

TEST_P(WorkloadConformance, AccessWindowsAreExactlyTight) {
  // Zero findings, not merely zero errors: slack windows and unused
  // declared inputs are warnings, and the conformance bar is exactness.
  const WorkloadSpec &Spec = spec();
  for (KernelVariant V : sweepVariants()) {
    DiagnosticEngine Diags;
    EXPECT_TRUE(auditProgramAccess(Spec.Program, Spec.Kernels(V), Diags, {},
                                   kernelVariantName(V)));
    EXPECT_EQ(Diags.numFindings(), 0u)
        << kernelVariantName(V) << ": " << Diags.firstErrorMessage();
  }
}

TEST_P(WorkloadConformance, LintSuiteAcceptsEveryStrategy) {
  const WorkloadSpec &Spec = spec();
  Domain Dom = domain();

  std::vector<KernelTable> Tables;
  std::vector<KernelVariant> Variants = sweepVariants();
  Tables.reserve(Variants.size());
  std::vector<LintKernelSet> KernelSets;
  for (KernelVariant V : Variants) {
    Tables.push_back(Spec.Kernels(V));
    KernelSets.push_back({kernelVariantName(V), &Tables.back()});
  }

  std::vector<ExecutionPlan> Plans;
  Plans.reserve(allStrategies().size());
  std::vector<LintPlanSet> PlanSets;
  for (Strategy Strat : allStrategies()) {
    Plans.push_back(makeTestPlan(Spec.Program, Dom, Strat, 2));
    PlanSets.push_back({strategyName(Strat), &Plans.back()});
  }

  DiagnosticEngine Diags;
  EXPECT_TRUE(runLintSuite(Spec.Program, KernelSets, PlanSets, Diags));
  EXPECT_EQ(Diags.numFindings(), 0u) << Diags.firstErrorMessage();
}

TEST_P(WorkloadConformance, SimulatorSharedTrafficMatchesExecutor) {
  // The simulator prices plans without running them; its shared-traffic
  // projection must equal the executor's transfer accounting exactly for
  // every registered program shape.
  const WorkloadSpec &Spec = spec();
  Domain Dom = domain();
  for (Strategy Strat : allStrategies())
    for (int T : sweepDepths()) {
      ExecutionPlan Plan = makeTestPlan(Spec.Program, Dom, Strat, T);
      int64_t Projected = projectedSharedBytesPerStep(Plan, Spec.Program);
      auto Exec = makeWorkloadExecutor(Spec, Dom, std::move(Plan));
      EXPECT_EQ(Projected, Exec->sharedBytesPerStep())
          << strategyName(Strat) << " T=" << T;
    }
}

TEST_P(WorkloadConformance, ChaosReplayIsDeterministic) {
  // Same fault seed + same plan => bit-identical state, identical
  // reduction histories, identical injector counters — and chaos must
  // not perturb the data away from the serial answer.
  const WorkloadSpec &Spec = spec();
  Domain Dom = domain();
  auto run = [&](uint64_t FaultSeed) {
    FaultPlan FP;
    FP.Seed = FaultSeed;
    FP.StallRate = 0.2;
    FP.WakeRate = 0.2;
    FP.MaxStallSeconds = 2e-4;
    FaultInjector Injector(FP);
    ExecutorOptions Opts;
    Opts.Chaos = &Injector;
    auto Exec = makeWorkloadExecutor(
        Spec, Dom,
        makeTestPlan(Spec.Program, Dom, Strategy::IslandsOfCores, 2),
        KernelVariant::Reference, Opts, Seed);
    Exec->run(Steps);
    struct Result {
      std::vector<Array3D> State; // One snapshot per newest-state array.
      std::vector<std::vector<double>> Reductions;
      int64_t Injected = 0;
    };
    Result R;
    for (ArrayId Id : newestStateArrays(Spec.Program)) {
      Array3D Snap(Dom.allocBox());
      Snap.copyRegionFrom(Exec->array(Id), Dom.coreBox());
      R.State.push_back(std::move(Snap));
    }
    for (size_t I = 0; I != Spec.Program.reductions().size(); ++I)
      R.Reductions.push_back(Exec->reductionHistory(I));
    R.Injected = Injector.stats().Injected;
    return R;
  };
  auto A = run(42);
  auto B = run(42);
  ASSERT_EQ(A.State.size(), B.State.size());
  for (size_t I = 0; I != A.State.size(); ++I)
    EXPECT_EQ(A.State[I].maxAbsDiff(B.State[I], Dom.coreBox()), 0.0);
  EXPECT_EQ(A.Reductions, B.Reductions);
  EXPECT_EQ(A.Injected, B.Injected);
  auto Oracle = serialOracle(Spec, Dom, Steps, Seed);
  std::vector<ArrayId> Ids = newestStateArrays(Spec.Program);
  for (size_t I = 0; I != Ids.size(); ++I)
    EXPECT_EQ(A.State[I].maxAbsDiff(Oracle->array(Ids[I]), Dom.coreBox()),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadConformance,
    ::testing::ValuesIn(builtinWorkloads().names()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });
