//===- tests/halo_analysis_test.cpp - Dependence-cone analysis tests ------===//

#include "mpdata/MpdataProgram.h"
#include "stencil/HaloAnalysis.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

/// A chain of \p Depth 1D stages, each reading its producer at {-1,0,+1}
/// along dimension 0 — the paper's Fig. 1 shape generalized in depth.
StencilProgram buildChain(int Depth) {
  StencilProgram P;
  ArrayId Prev = P.addArray("in", ArrayRole::StepInput);
  for (int S = 0; S != Depth; ++S) {
    bool Last = S + 1 == Depth;
    std::string ArrayName = "a";
    ArrayName += std::to_string(S);
    ArrayId Out = P.addArray(std::move(ArrayName),
                             Last ? ArrayRole::StepOutput
                                  : ArrayRole::Intermediate);
    StageDef Def;
    Def.Name = "s";
    Def.Name += std::to_string(S);
    Def.Outputs = {Out};
    Def.Inputs = {StageInput::alongDim(Prev, 0, -1, 1)};
    Def.FlopsPerPoint = 1;
    P.addStage(Def);
    Prev = Out;
  }
  return P;
}

} // namespace

TEST(HaloAnalysis, ChainConeGrowsOnePerStage) {
  // For the Fig. 1 example, producing C on [d, N) requires B on [d-1, N+1)
  // and A on [d-2, N+2): each earlier stage needs one more cell per side.
  StencilProgram P = buildChain(3);
  Box3 Target(4, 0, 0, 10, 1, 1);
  RegionRequirements Req = computeRequirements(P, Target);
  EXPECT_EQ(Req.StageRegion[2], Target);
  EXPECT_EQ(Req.StageRegion[1], Target.grown(0, 1, 1));
  EXPECT_EQ(Req.StageRegion[0], Target.grown(0, 2, 2));
}

TEST(HaloAnalysis, ChainInputHalo) {
  StencilProgram P = buildChain(3);
  Box3 Target(0, 0, 0, 16, 1, 1);
  std::array<int, 3> Depth = inputHaloDepth(P, Target);
  EXPECT_EQ(Depth[0], 3); // Three stages, one cell per stage.
  EXPECT_EQ(Depth[1], 0);
  EXPECT_EQ(Depth[2], 0);
}

TEST(HaloAnalysis, MarginsMonotoneInStageDepth) {
  // Earlier stages never need smaller cones than later ones in a chain.
  StencilProgram P = buildChain(5);
  std::vector<int> Margins = stageMargins(P, 0);
  ASSERT_EQ(Margins.size(), 5u);
  for (size_t S = 1; S != Margins.size(); ++S)
    EXPECT_GE(Margins[S - 1], Margins[S]);
  EXPECT_EQ(Margins[4], 0); // Final stage computes exactly the target.
}

TEST(HaloAnalysis, TotalStagePoints) {
  StencilProgram P = buildChain(2);
  Box3 Target(0, 0, 0, 10, 1, 1);
  RegionRequirements Req = computeRequirements(P, Target);
  // Stage 1: 10 points; stage 0: 12 points.
  EXPECT_EQ(Req.totalStagePoints(), 22);
}

TEST(HaloAnalysis, UnusedStageGetsEmptyRegion) {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Dead = P.addArray("dead", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);

  StageDef DeadStage;
  DeadStage.Name = "dead";
  DeadStage.Outputs = {Dead};
  DeadStage.Inputs = {StageInput::center(In)};
  P.addStage(DeadStage);

  StageDef Live;
  Live.Name = "live";
  Live.Outputs = {Out};
  Live.Inputs = {StageInput::center(In)};
  P.addStage(Live);

  RegionRequirements Req = computeRequirements(P, Box3::fromExtents(4, 4, 4));
  EXPECT_TRUE(Req.StageRegion[0].empty());
  EXPECT_EQ(Req.StageRegion[1], Box3::fromExtents(4, 4, 4));
}

TEST(HaloAnalysis, ClosureProperty) {
  // Every stage's reads are covered by its producers' computed regions:
  // the fundamental invariant the executors rely on.
  MpdataProgram M = buildMpdataProgram();
  Box3 Target(3, 5, 2, 19, 21, 18);
  RegionRequirements Req = computeRequirements(M.Program, Target);
  for (unsigned S = 0; S != M.Program.numStages(); ++S) {
    const Box3 &Region = Req.StageRegion[S];
    if (Region.empty())
      continue;
    for (const StageInput &In : M.Program.stage(S).Inputs) {
      StageId Producer = M.Program.producerOf(In.Array);
      if (Producer == NoStage)
        continue; // Step input: covered by the halo instead.
      EXPECT_TRUE(Req.StageRegion[static_cast<size_t>(Producer)].containsBox(
          In.readRegion(Region)))
          << "stage " << M.Program.stage(S).Name << " reads beyond producer "
          << M.Program.stage(Producer).Name;
    }
  }
}

TEST(HaloAnalysis, MpdataHaloDepthIsThree) {
  MpdataProgram M = buildMpdataProgram();
  std::array<int, 3> Depth =
      inputHaloDepth(M.Program, Box3::fromExtents(32, 32, 32));
  EXPECT_EQ(Depth[0], 3);
  EXPECT_EQ(Depth[1], 3);
  EXPECT_EQ(Depth[2], 3);
}

TEST(HaloAnalysis, MpdataSideMarginsMatchRegions) {
  MpdataProgram M = buildMpdataProgram();
  std::vector<StageSideMargins> Margins = stageSideMargins(M.Program);
  Box3 Target(10, 10, 10, 26, 26, 26);
  RegionRequirements Req = computeRequirements(M.Program, Target);
  for (unsigned S = 0; S != M.Program.numStages(); ++S) {
    const Box3 &R = Req.StageRegion[S];
    ASSERT_FALSE(R.empty());
    for (int D = 0; D != 3; ++D) {
      EXPECT_EQ(Target.Lo[D] - R.Lo[D], Margins[S].Lo[D]);
      EXPECT_EQ(R.Hi[D] - Target.Hi[D], Margins[S].Hi[D]);
    }
  }
}

TEST(HaloAnalysis, MpdataFinalStageHasZeroMargins) {
  MpdataProgram M = buildMpdataProgram();
  std::vector<StageSideMargins> Margins = stageSideMargins(M.Program);
  const StageSideMargins &Out = Margins[static_cast<size_t>(M.SOut)];
  for (int D = 0; D != 3; ++D) {
    EXPECT_EQ(Out.Lo[D], 0);
    EXPECT_EQ(Out.Hi[D], 0);
  }
}

TEST(HaloAnalysis, MarginsIsotropicAcrossDims) {
  // MPDATA's stage chain treats the three dimensions symmetrically, so the
  // total per-dimension margins agree.
  MpdataProgram M = buildMpdataProgram();
  std::vector<int> M0 = stageMargins(M.Program, 0);
  std::vector<int> M1 = stageMargins(M.Program, 1);
  std::vector<int> M2 = stageMargins(M.Program, 2);
  int Sum0 = 0, Sum1 = 0, Sum2 = 0;
  for (unsigned S = 0; S != M.Program.numStages(); ++S) {
    Sum0 += M0[S];
    Sum1 += M1[S];
    Sum2 += M2[S];
  }
  EXPECT_EQ(Sum0, Sum1);
  EXPECT_EQ(Sum1, Sum2);
  // The dependence cone must be non-trivial.
  EXPECT_GT(Sum0, 17);
}
