//===- tests/dist_test.cpp - Distributed (MPI-style) extension tests ------===//

#include "dist/ClusterSim.h"
#include "dist/DistributedSolver.h"
#include "dist/RankComm.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <thread>

using namespace icores;

TEST(RankCommTest, SelfSendReceives) {
  CommWorld World(1);
  RankComm Comm(World, 0);
  double Out[3] = {1.0, 2.0, 3.0};
  double In[3] = {0, 0, 0};
  Comm.send(0, 7, Out, 3);
  Comm.recv(0, 7, In, 3);
  EXPECT_EQ(In[0], 1.0);
  EXPECT_EQ(In[2], 3.0);
}

TEST(RankCommTest, FifoOrderPerChannel) {
  CommWorld World(1);
  RankComm Comm(World, 0);
  for (double V : {1.0, 2.0, 3.0})
    Comm.send(0, 1, &V, 1);
  for (double Expected : {1.0, 2.0, 3.0}) {
    double V = 0.0;
    Comm.recv(0, 1, &V, 1);
    EXPECT_EQ(V, Expected);
  }
}

TEST(RankCommTest, TagsSeparateChannels) {
  CommWorld World(1);
  RankComm Comm(World, 0);
  double A = 1.0, B = 2.0, V = 0.0;
  Comm.send(0, 10, &A, 1);
  Comm.send(0, 20, &B, 1);
  Comm.recv(0, 20, &V, 1);
  EXPECT_EQ(V, 2.0);
  Comm.recv(0, 10, &V, 1);
  EXPECT_EQ(V, 1.0);
}

TEST(RankCommTest, CrossThreadPingPong) {
  CommWorld World(2);
  double Result = 0.0;
  std::thread T1([&] {
    RankComm Comm(World, 0);
    double V = 42.0;
    Comm.send(1, 0, &V, 1);
    Comm.recv(1, 1, &V, 1);
    Result = V;
  });
  std::thread T2([&] {
    RankComm Comm(World, 1);
    double V = 0.0;
    Comm.recv(0, 0, &V, 1);
    V += 1.0;
    Comm.send(0, 1, &V, 1);
  });
  T1.join();
  T2.join();
  EXPECT_EQ(Result, 43.0);
}

TEST(RankCommTest, BarrierSynchronizesAllRanks) {
  const int Ranks = 4;
  CommWorld World(Ranks);
  std::atomic<int> Arrived{0};
  std::atomic<bool> Violated{false};
  std::vector<std::thread> Threads;
  for (int R = 0; R != Ranks; ++R)
    Threads.emplace_back([&, R] {
      RankComm Comm(World, R);
      ++Arrived;
      Comm.barrier();
      if (Arrived.load() != Ranks)
        Violated = true;
      Comm.barrier(); // Reusable.
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_FALSE(Violated.load());
}

namespace {

/// Shared workload for distributed-vs-reference comparisons.
struct DistWorkload {
  int NI = 24, NJ = 10, NK = 6;
  int Steps = 3;

  DistributedInit init() const {
    DistributedInit Init;
    Init.State = [](int I, int J, int K) {
      SplitMix64 Rng(static_cast<uint64_t>(I * 10007 + J * 101 + K));
      return Rng.nextInRange(0.1, 2.0);
    };
    Init.U1 = [](int, int, int) { return 0.3; };
    Init.U2 = [](int, int, int) { return -0.25; };
    Init.U3 = [](int, int, int) { return 0.2; };
    Init.H = [](int, int, int) { return 1.0; };
    return Init;
  }

  Array3D reference() const {
    ReferenceSolver Solver(NI, NJ, NK);
    DistributedInit Init = init();
    Box3 Core = Solver.domain().coreBox();
    for (int I = 0; I != NI; ++I)
      for (int J = 0; J != NJ; ++J)
        for (int K = 0; K != NK; ++K) {
          Solver.stateIn().at(I, J, K) = Init.State(I, J, K);
          Solver.velocity(0).at(I, J, K) = Init.U1(I, J, K);
          Solver.velocity(1).at(I, J, K) = Init.U2(I, J, K);
          Solver.velocity(2).at(I, J, K) = Init.U3(I, J, K);
        }
    Solver.prepareCoefficients();
    Solver.run(Steps);
    Array3D Result(Core);
    Result.copyRegionFrom(Solver.state(), Core);
    return Result;
  }
};

class DistributedEquivalence : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(DistributedEquivalence, MatchesReferenceBitExactly) {
  DistWorkload W;
  int Ranks = GetParam();
  Array3D Reference = W.reference();
  Array3D Result =
      runDistributedMpdata(Ranks, W.NI, W.NJ, W.NK, W.Steps, W.init());
  EXPECT_EQ(Result.maxAbsDiff(Reference,
                              Box3::fromExtents(W.NI, W.NJ, W.NK)),
            0.0)
      << "ranks=" << Ranks;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return "ranks" + std::to_string(Info.param);
                         });

namespace {

class Distributed2DEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};

} // namespace

TEST_P(Distributed2DEquivalence, MatchesReferenceBitExactly) {
  // 2D rank grids (the paper's other future-work item): two-phase halo
  // exchange with corners, cone recomputation in both dimensions.
  auto [PI, PJ] = GetParam();
  DistWorkload W;
  Array3D Reference = W.reference();
  Array3D Result =
      runDistributedMpdata2D(PI, PJ, W.NI, W.NJ, W.NK, W.Steps, W.init());
  EXPECT_EQ(Result.maxAbsDiff(Reference,
                              Box3::fromExtents(W.NI, W.NJ, W.NK)),
            0.0)
      << "grid " << PI << "x" << PJ;
}

INSTANTIATE_TEST_SUITE_P(
    RankGrids, Distributed2DEquivalence,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 2}, std::pair{3, 2},
                      std::pair{4, 2}, std::pair{2, 3}),
    [](const ::testing::TestParamInfo<std::pair<int, int>> &Info) {
      return "grid" + std::to_string(Info.param.first) + "x" +
             std::to_string(Info.param.second);
    });

TEST(ClusterSimTest, TwoDimensionalGridCutsRedundantWork) {
  // At 16 nodes the 1D decomposition makes 224 sliver islands; a 4x4 node
  // grid keeps parts chunkier and must waste fewer redundant flops and
  // run faster.
  MpdataProgram M = buildMpdataProgram();
  ClusterModel Cluster;
  Cluster.Node = makeSgiUv2000();
  Cluster.NumNodes = 16;
  Box3 Grid = Box3::fromExtents(1024, 1024, 64);
  ClusterSimResult R1D = simulateCluster(M.Program, Grid, Cluster, 14, 50);
  ClusterSimResult R2D =
      simulateCluster2D(M.Program, Grid, Cluster, 4, 4, 14, 50);
  EXPECT_LT(R2D.FlopsPerStep, R1D.FlopsPerStep);
  EXPECT_LT(R2D.TotalSeconds, R1D.TotalSeconds);
}

TEST(ClusterSimTest, SingleNodeMatchesLocalIslandsOrder) {
  MpdataProgram M = buildMpdataProgram();
  ClusterModel Cluster;
  Cluster.Node = makeSgiUv2000();
  Cluster.NumNodes = 1;
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  ClusterSimResult R = simulateCluster(M.Program, Grid, Cluster, 14, 50);
  EXPECT_EQ(R.CommSecondsPerStep, 0.0);
  EXPECT_GT(R.TotalSeconds, 0.5);
  EXPECT_LT(R.TotalSeconds, 3.0); // Near the single-machine islands time.
}

TEST(ClusterSimTest, ThroughputGrowsButEfficiencyDecays) {
  MpdataProgram M = buildMpdataProgram();
  ClusterModel Cluster;
  Cluster.Node = makeSgiUv2000();
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  double Prev = 1e300;
  double Gflops1 = 0.0;
  for (int N : {1, 2, 4, 8}) {
    Cluster.NumNodes = N;
    ClusterSimResult R = simulateCluster(M.Program, Grid, Cluster, 14, 50);
    EXPECT_LT(R.TotalSeconds, Prev) << "N=" << N;
    Prev = R.TotalSeconds;
    if (N == 1)
      Gflops1 = R.sustainedGflops();
  }
  Cluster.NumNodes = 8;
  ClusterSimResult R8 = simulateCluster(M.Program, Grid, Cluster, 14, 50);
  // Redundant cone work of 112 thin 1D islands erodes efficiency: well
  // below linear (motivates the 2D decomposition of future work).
  EXPECT_LT(R8.sustainedGflops(), 8.0 * Gflops1);
}

TEST(ClusterSimTest, SlowNetworkAddsCommTime) {
  MpdataProgram M = buildMpdataProgram();
  ClusterModel Fast;
  Fast.Node = makeSgiUv2000();
  Fast.NumNodes = 4;
  ClusterModel Slow = Fast;
  Slow.NetworkBandwidth /= 100.0;
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  ClusterSimResult RF = simulateCluster(M.Program, Grid, Fast, 14, 50);
  ClusterSimResult RS = simulateCluster(M.Program, Grid, Slow, 14, 50);
  EXPECT_GT(RS.CommSecondsPerStep, RF.CommSecondsPerStep * 10.0);
  EXPECT_GT(RS.TotalSeconds, RF.TotalSeconds);
}
