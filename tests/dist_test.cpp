//===- tests/dist_test.cpp - Distributed (MPI-style) extension tests ------===//

#include "dist/ClusterSim.h"
#include "dist/DistributedSolver.h"
#include "dist/RankComm.h"
#include "fault/FaultInjector.h"
#include "fault/Watchdog.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/Error.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace icores;

TEST(RankCommTest, SelfSendReceives) {
  CommWorld World(1);
  RankComm Comm(World, 0);
  double Out[3] = {1.0, 2.0, 3.0};
  double In[3] = {0, 0, 0};
  Comm.send(0, 7, Out, 3);
  Comm.recv(0, 7, In, 3);
  EXPECT_EQ(In[0], 1.0);
  EXPECT_EQ(In[2], 3.0);
}

TEST(RankCommTest, FifoOrderPerChannel) {
  CommWorld World(1);
  RankComm Comm(World, 0);
  for (double V : {1.0, 2.0, 3.0})
    Comm.send(0, 1, &V, 1);
  for (double Expected : {1.0, 2.0, 3.0}) {
    double V = 0.0;
    Comm.recv(0, 1, &V, 1);
    EXPECT_EQ(V, Expected);
  }
}

TEST(RankCommTest, TagsSeparateChannels) {
  CommWorld World(1);
  RankComm Comm(World, 0);
  double A = 1.0, B = 2.0, V = 0.0;
  Comm.send(0, 10, &A, 1);
  Comm.send(0, 20, &B, 1);
  Comm.recv(0, 20, &V, 1);
  EXPECT_EQ(V, 2.0);
  Comm.recv(0, 10, &V, 1);
  EXPECT_EQ(V, 1.0);
}

TEST(RankCommTest, CrossThreadPingPong) {
  CommWorld World(2);
  double Result = 0.0;
  std::thread T1([&] {
    RankComm Comm(World, 0);
    double V = 42.0;
    Comm.send(1, 0, &V, 1);
    Comm.recv(1, 1, &V, 1);
    Result = V;
  });
  std::thread T2([&] {
    RankComm Comm(World, 1);
    double V = 0.0;
    Comm.recv(0, 0, &V, 1);
    V += 1.0;
    Comm.send(0, 1, &V, 1);
  });
  T1.join();
  T2.join();
  EXPECT_EQ(Result, 43.0);
}

TEST(RankCommTest, BarrierSynchronizesAllRanks) {
  const int Ranks = 4;
  CommWorld World(Ranks);
  std::atomic<int> Arrived{0};
  std::atomic<bool> Violated{false};
  std::vector<std::thread> Threads;
  for (int R = 0; R != Ranks; ++R)
    Threads.emplace_back([&, R] {
      RankComm Comm(World, R);
      ++Arrived;
      Comm.barrier();
      if (Arrived.load() != Ranks)
        Violated = true;
      Comm.barrier(); // Reusable.
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_FALSE(Violated.load());
}

namespace {

/// Shared workload for distributed-vs-reference comparisons.
struct DistWorkload {
  int NI = 24, NJ = 10, NK = 6;
  int Steps = 3;

  DistributedInit init() const {
    DistributedInit Init;
    Init.State = [](int I, int J, int K) {
      SplitMix64 Rng(static_cast<uint64_t>(I * 10007 + J * 101 + K));
      return Rng.nextInRange(0.1, 2.0);
    };
    Init.U1 = [](int, int, int) { return 0.3; };
    Init.U2 = [](int, int, int) { return -0.25; };
    Init.U3 = [](int, int, int) { return 0.2; };
    Init.H = [](int, int, int) { return 1.0; };
    return Init;
  }

  Array3D reference() const {
    ReferenceSolver Solver(NI, NJ, NK);
    DistributedInit Init = init();
    Box3 Core = Solver.domain().coreBox();
    for (int I = 0; I != NI; ++I)
      for (int J = 0; J != NJ; ++J)
        for (int K = 0; K != NK; ++K) {
          Solver.stateIn().at(I, J, K) = Init.State(I, J, K);
          Solver.velocity(0).at(I, J, K) = Init.U1(I, J, K);
          Solver.velocity(1).at(I, J, K) = Init.U2(I, J, K);
          Solver.velocity(2).at(I, J, K) = Init.U3(I, J, K);
        }
    Solver.prepareCoefficients();
    Solver.run(Steps);
    Array3D Result(Core);
    Result.copyRegionFrom(Solver.state(), Core);
    return Result;
  }
};

class DistributedEquivalence : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(DistributedEquivalence, MatchesReferenceBitExactly) {
  DistWorkload W;
  int Ranks = GetParam();
  Array3D Reference = W.reference();
  Array3D Result =
      runDistributedMpdata(Ranks, W.NI, W.NJ, W.NK, W.Steps, W.init());
  EXPECT_EQ(Result.maxAbsDiff(Reference,
                              Box3::fromExtents(W.NI, W.NJ, W.NK)),
            0.0)
      << "ranks=" << Ranks;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return "ranks" + std::to_string(Info.param);
                         });

namespace {

class Distributed2DEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};

} // namespace

TEST_P(Distributed2DEquivalence, MatchesReferenceBitExactly) {
  // 2D rank grids (the paper's other future-work item): two-phase halo
  // exchange with corners, cone recomputation in both dimensions.
  auto [PI, PJ] = GetParam();
  DistWorkload W;
  Array3D Reference = W.reference();
  Array3D Result =
      runDistributedMpdata2D(PI, PJ, W.NI, W.NJ, W.NK, W.Steps, W.init());
  EXPECT_EQ(Result.maxAbsDiff(Reference,
                              Box3::fromExtents(W.NI, W.NJ, W.NK)),
            0.0)
      << "grid " << PI << "x" << PJ;
}

INSTANTIATE_TEST_SUITE_P(
    RankGrids, Distributed2DEquivalence,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 2}, std::pair{3, 2},
                      std::pair{4, 2}, std::pair{2, 3}),
    [](const ::testing::TestParamInfo<std::pair<int, int>> &Info) {
      return "grid" + std::to_string(Info.param.first) + "x" +
             std::to_string(Info.param.second);
    });

namespace {

/// Tight retry budget for the directed fault tests: drops are re-fetched
/// from the retransmit log on the first timeout tick.
CommTimeouts tightTimeouts() {
  CommTimeouts T;
  T.InitialBackoffSeconds = 2e-4;
  T.MaxBackoffSeconds = 4e-3;
  T.MaxRetries = 120;
  return T;
}

/// A plan injecting exactly one fault class at rate 1.0 — every message
/// of the run takes that fault, at every protocol boundary the workload
/// crosses (halo exchange, reduction, the paired collective sends).
FaultPlan saturatedPlan(double FaultPlan::*Rate) {
  FaultPlan Plan;
  Plan.Seed = 1;
  Plan.*Rate = 1.0;
  Plan.MaxDelaySeconds = 5e-4;
  return Plan;
}

class DirectedMessageFaults
    : public ::testing::TestWithParam<std::pair<double FaultPlan::*,
                                                const char *>> {};

} // namespace

TEST_P(DirectedMessageFaults, HaloExchangeRecoversBitExactly) {
  // Every message of the halo-exchange protocol suffers this fault class;
  // the run must still match the fault-free result bit for bit.
  auto [Rate, Name] = GetParam();
  Watchdog Dog(60.0, std::string("dist_test: directed ") + Name);
  DistWorkload W;
  Array3D Reference = W.reference();
  FaultInjector Injector(saturatedPlan(Rate));
  DistChaosResult R = runDistributedMpdataChaos(
      2, 1, W.NI, W.NJ, W.NK, W.Steps, W.init(), &Injector,
      tightTimeouts());
  ASSERT_TRUE(R.Ok) << Name << ": " << R.RankErrors.front();
  EXPECT_EQ(R.State.maxAbsDiff(Reference,
                               Box3::fromExtents(W.NI, W.NJ, W.NK)),
            0.0)
      << Name;
  EXPECT_GT(R.Faults.Injected, 0) << Name;
  EXPECT_GT(R.Faults.Recovered, 0) << Name;
}

INSTANTIATE_TEST_SUITE_P(
    FaultClasses, DirectedMessageFaults,
    ::testing::Values(std::pair{&FaultPlan::DropRate, "drop"},
                      std::pair{&FaultPlan::DelayRate, "delay"},
                      std::pair{&FaultPlan::DuplicateRate, "duplicate"},
                      std::pair{&FaultPlan::CorruptRate, "corrupt"}),
    [](const ::testing::TestParamInfo<
        std::pair<double FaultPlan::*, const char *>> &Info) {
      return Info.param.second;
    });

TEST(RankCommFaultTest, AllreduceSurvivesEveryRecoverableFaultClass) {
  // The reduction rides the resilient point-to-point path: saturate each
  // fault class in turn and demand the exact deterministic sum.
  Watchdog Dog(60.0, "dist_test: allreduce under faults");
  for (double FaultPlan::*Rate :
       {&FaultPlan::DropRate, &FaultPlan::DelayRate,
        &FaultPlan::DuplicateRate, &FaultPlan::CorruptRate}) {
    FaultInjector Injector(saturatedPlan(Rate));
    const int Ranks = 3;
    CommWorld World(Ranks);
    World.arm(&Injector);
    World.setTimeouts(tightTimeouts());
    std::vector<double> Sums(Ranks, 0.0);
    std::vector<std::thread> Threads;
    for (int R = 0; R != Ranks; ++R)
      Threads.emplace_back([&, R] {
        RankComm Comm(World, R);
        Sums[static_cast<size_t>(R)] =
            Comm.allreduceSum(static_cast<double>(R + 1) * 1.25);
      });
    for (std::thread &T : Threads)
      T.join();
    for (int R = 0; R != Ranks; ++R)
      EXPECT_EQ(Sums[static_cast<size_t>(R)], 1.25 + 2.5 + 3.75)
          << "rank " << R;
  }
}

TEST(RankCommFaultTest, ZeroPayloadMessagesSurviveFaults) {
  // Zero-length payloads cross the checksum/corruption path (corruption
  // must skip an empty payload) and the retransmit log.
  Watchdog Dog(60.0, "dist_test: zero-payload");
  for (bool Armed : {false, true}) {
    FaultPlan Plan;
    Plan.Seed = 3;
    Plan.DropRate = Armed ? 1.0 : 0.0;
    Plan.CorruptRate = Armed ? 1.0 : 0.0;
    FaultInjector Injector(Plan);
    CommWorld World(1);
    if (Armed) {
      World.arm(&Injector);
      World.setTimeouts(tightTimeouts());
    }
    RankComm Comm(World, 0);
    Comm.send(0, 5, nullptr, 0);
    Comm.recv(0, 5, nullptr, 0);
    double V = 9.0, Out = 0.0;
    Comm.send(0, 6, &V, 1);
    Comm.recv(0, 6, &Out, 1);
    EXPECT_EQ(Out, 9.0) << (Armed ? "armed" : "unarmed");
  }
}

TEST(RankCommFaultTest, SingleRankSelfSendRecoversFromDrops) {
  Watchdog Dog(60.0, "dist_test: single-rank self-send");
  FaultInjector Injector(saturatedPlan(&FaultPlan::DropRate));
  CommWorld World(1);
  World.arm(&Injector);
  World.setTimeouts(tightTimeouts());
  RankComm Comm(World, 0);
  for (double V : {1.5, 2.5, 3.5}) {
    Comm.send(0, 2, &V, 1);
    double Out = 0.0;
    Comm.recv(0, 2, &Out, 1);
    EXPECT_EQ(Out, V);
  }
  EXPECT_EQ(Injector.stats().Injected, 3);
  EXPECT_EQ(Injector.stats().Recovered, 3);
}

TEST(RankCommFaultTest, ChecksumDetectsEveryFlippedBit) {
  double Payload[2] = {1.0, -2.0};
  uint64_t Clean = commChecksum(Payload, 2);
  for (int Bit = 0; Bit != 128; ++Bit) {
    double Copy[2] = {Payload[0], Payload[1]};
    reinterpret_cast<unsigned char *>(Copy)[Bit / 8] ^=
        static_cast<unsigned char>(1u << (Bit % 8));
    EXPECT_NE(commChecksum(Copy, 2), Clean) << "bit " << Bit;
  }
}

TEST(RankCommFaultTest, PoisonedWorldFailsBlockedRecvFast) {
  // The abnormal-exit regression: a peer that dies must not leave a
  // blocked recv() waiting out its full ~30 s default retry budget — the
  // poison broadcast has to wake and fail it immediately.
  Watchdog Dog(60.0, "dist_test: poisoned world");
  CommWorld World(2);
  std::atomic<bool> Failed{false};
  std::atomic<double> WaitedSeconds{0.0};
  std::thread Victim([&] {
    RankComm Comm(World, 1);
    double V = 0.0;
    auto Start = std::chrono::steady_clock::now();
    try {
      Comm.recv(0, 0, &V, 1); // Rank 0 will never send.
    } catch (const Error &E) {
      Failed = E.kind() == Error::Kind::WorldPoisoned;
    }
    WaitedSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  World.poison(0, "rank 0 aborted (test)");
  Victim.join();
  EXPECT_TRUE(Failed.load());
  EXPECT_LT(WaitedSeconds.load(), 10.0); // Far below the retry budget.
  EXPECT_TRUE(World.poisoned());
  EXPECT_NE(World.poisonReason().find("aborted"), std::string::npos);
}

TEST(RankCommFaultTest, PoisonedWorldReleasesBarrierAndBlocksSend) {
  Watchdog Dog(60.0, "dist_test: poisoned barrier");
  CommWorld World(2);
  std::atomic<bool> BarrierThrew{false};
  std::thread Waiter([&] {
    RankComm Comm(World, 1);
    try {
      Comm.barrier(); // Rank 0 never arrives.
    } catch (const Error &E) {
      BarrierThrew = E.kind() == Error::Kind::WorldPoisoned;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  World.poison(0, "rank 0 aborted (test)");
  Waiter.join();
  EXPECT_TRUE(BarrierThrew.load());
  // Later traffic fails fast too.
  RankComm Comm(World, 0);
  double V = 1.0;
  EXPECT_THROW(Comm.send(1, 0, &V, 1), Error);
}

TEST(RankCommFaultTest, GlobalMassIsIdenticalOnEveryRank) {
  Watchdog Dog(60.0, "dist_test: global mass");
  DistWorkload W;
  const int Ranks = 2;
  CommWorld World(Ranks);
  std::vector<double> Masses(Ranks, -1.0);
  std::vector<std::thread> Threads;
  for (int R = 0; R != Ranks; ++R)
    Threads.emplace_back([&, R] {
      RankComm Comm(World, R);
      DistributedRank Rank(Comm, W.NI, W.NJ, W.NK, Ranks, 1, W.init());
      Rank.prepareCoefficients();
      Masses[static_cast<size_t>(R)] = Rank.globalMass();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Masses[0], Masses[1]);
  EXPECT_GT(Masses[0], 0.0);
}

TEST(ClusterSimTest, TwoDimensionalGridCutsRedundantWork) {
  // At 16 nodes the 1D decomposition makes 224 sliver islands; a 4x4 node
  // grid keeps parts chunkier and must waste fewer redundant flops and
  // run faster.
  MpdataProgram M = buildMpdataProgram();
  ClusterModel Cluster;
  Cluster.Node = makeSgiUv2000();
  Cluster.NumNodes = 16;
  Box3 Grid = Box3::fromExtents(1024, 1024, 64);
  ClusterSimResult R1D = simulateCluster(M.Program, Grid, Cluster, 14, 50);
  ClusterSimResult R2D =
      simulateCluster2D(M.Program, Grid, Cluster, 4, 4, 14, 50);
  EXPECT_LT(R2D.FlopsPerStep, R1D.FlopsPerStep);
  EXPECT_LT(R2D.TotalSeconds, R1D.TotalSeconds);
}

TEST(ClusterSimTest, SingleNodeMatchesLocalIslandsOrder) {
  MpdataProgram M = buildMpdataProgram();
  ClusterModel Cluster;
  Cluster.Node = makeSgiUv2000();
  Cluster.NumNodes = 1;
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  ClusterSimResult R = simulateCluster(M.Program, Grid, Cluster, 14, 50);
  EXPECT_EQ(R.CommSecondsPerStep, 0.0);
  EXPECT_GT(R.TotalSeconds, 0.5);
  EXPECT_LT(R.TotalSeconds, 3.0); // Near the single-machine islands time.
}

TEST(ClusterSimTest, ThroughputGrowsButEfficiencyDecays) {
  MpdataProgram M = buildMpdataProgram();
  ClusterModel Cluster;
  Cluster.Node = makeSgiUv2000();
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  double Prev = 1e300;
  double Gflops1 = 0.0;
  for (int N : {1, 2, 4, 8}) {
    Cluster.NumNodes = N;
    ClusterSimResult R = simulateCluster(M.Program, Grid, Cluster, 14, 50);
    EXPECT_LT(R.TotalSeconds, Prev) << "N=" << N;
    Prev = R.TotalSeconds;
    if (N == 1)
      Gflops1 = R.sustainedGflops();
  }
  Cluster.NumNodes = 8;
  ClusterSimResult R8 = simulateCluster(M.Program, Grid, Cluster, 14, 50);
  // Redundant cone work of 112 thin 1D islands erodes efficiency: well
  // below linear (motivates the 2D decomposition of future work).
  EXPECT_LT(R8.sustainedGflops(), 8.0 * Gflops1);
}

TEST(ClusterSimTest, SlowNetworkAddsCommTime) {
  MpdataProgram M = buildMpdataProgram();
  ClusterModel Fast;
  Fast.Node = makeSgiUv2000();
  Fast.NumNodes = 4;
  ClusterModel Slow = Fast;
  Slow.NetworkBandwidth /= 100.0;
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  ClusterSimResult RF = simulateCluster(M.Program, Grid, Fast, 14, 50);
  ClusterSimResult RS = simulateCluster(M.Program, Grid, Slow, 14, 50);
  EXPECT_GT(RS.CommSecondsPerStep, RF.CommSecondsPerStep * 10.0);
  EXPECT_GT(RS.TotalSeconds, RF.TotalSeconds);
}
