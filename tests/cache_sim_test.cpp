//===- tests/cache_sim_test.cpp - Cache-residency validation tests --------===//
//
// Validates the analytic traffic model's central assumption with a
// trace-driven LRU replay: the (3+1)D block schedule keeps intermediates
// cache-resident (DRAM traffic ~ inputs + outputs), the stage-major
// original schedule thrashes (DRAM traffic ~ every sweep), and the
// transition between the regimes follows the cache capacity.
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/CacheSim.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

struct CacheSimFixture : public ::testing::Test {
  MpdataProgram M = buildMpdataProgram();
  Box3 Grid = Box3::fromExtents(256, 64, 32);
  MachineModel Machine = makeSgiUv2000();

  /// Builds the single-island plan for one strategy with the machine's
  /// cache budget driving the block thickness.
  ExecutionPlan makePlan(Strategy Strat, int64_t LlcBytes) {
    MachineModel Tuned = Machine;
    Tuned.LlcBytesPerSocket = LlcBytes;
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = 1;
    return buildPlan(M.Program, Grid, Tuned, Config);
  }

  /// Bytes of one sweep over the grid (one array, core region).
  int64_t sweepBytes() const { return Grid.numPoints() * 8; }
};

} // namespace

TEST_F(CacheSimFixture, BlockedScheduleKeepsIntermediatesResident) {
  const int64_t Llc = 8ll << 20;
  ExecutionPlan Plan = makePlan(Strategy::Block31D, Llc);
  CacheSimResult R =
      replayIslandThroughCache(Plan.Islands[0], M.Program, Llc);
  // Ideal blocked traffic: 5 input sweeps (reads) + 1 output sweep
  // (writeback). The replay measures ~26 sweeps: the ideal plus real
  // LRU spill at block boundaries — the very effect the machine model's
  // CacheSpillFraction stands in for (the analytic model predicts ~17
  // sweeps; the AnalyticModelAgreesWithReplay test pins the two within
  // 2x). Either way, far below the original's ~75 sweeps.
  EXPECT_LT(R.dramBytes(), 35 * sweepBytes());
  EXPECT_GT(R.dramBytes(), 5 * sweepBytes()); // Compulsory input misses.
}

TEST_F(CacheSimFixture, OriginalScheduleThrashes) {
  const int64_t Llc = 8ll << 20;
  ExecutionPlan Plan = makePlan(Strategy::Original, Llc);
  CacheSimResult R =
      replayIslandThroughCache(Plan.Islands[0], M.Program, Llc);
  // Stage-major sweeps evict everything between stages: tens of sweeps.
  EXPECT_GT(R.dramBytes(), 40 * sweepBytes());
}

TEST_F(CacheSimFixture, BlockedBeatsOriginalByTheModeledFactor) {
  const int64_t Llc = 8ll << 20;
  ExecutionPlan Blocked = makePlan(Strategy::Block31D, Llc);
  ExecutionPlan Original = makePlan(Strategy::Original, Llc);
  CacheSimResult RB =
      replayIslandThroughCache(Blocked.Islands[0], M.Program, Llc);
  CacheSimResult RO =
      replayIslandThroughCache(Original.Islands[0], M.Program, Llc);
  double Reduction = static_cast<double>(RO.dramBytes()) /
                     static_cast<double>(RB.dramBytes());
  // The paper's Sect. 3.2 measures ~4.4x; the analytic model says ~4-6x;
  // the trace-driven replay must land in the same regime.
  EXPECT_GT(Reduction, 3.0);
  EXPECT_LT(Reduction, 15.0);
}

TEST_F(CacheSimFixture, TrafficMonotoneInCacheSize) {
  ExecutionPlan Plan = makePlan(Strategy::Block31D, 8ll << 20);
  int64_t Prev = INT64_MAX;
  for (int64_t Llc : {1ll << 20, 4ll << 20, 16ll << 20, 64ll << 20}) {
    CacheSimResult R =
        replayIslandThroughCache(Plan.Islands[0], M.Program, Llc);
    EXPECT_LE(R.dramBytes(), Prev) << "LLC " << Llc;
    Prev = R.dramBytes();
  }
}

TEST_F(CacheSimFixture, UndersizedBlocksSpill) {
  // Replay the blocked schedule through a cache far smaller than the one
  // it was planned for: the intermediates no longer fit and the traffic
  // rises well above the ideal.
  const int64_t PlannedLlc = 8ll << 20;
  ExecutionPlan Plan = makePlan(Strategy::Block31D, PlannedLlc);
  CacheSimResult Fits = replayIslandThroughCache(Plan.Islands[0], M.Program,
                                                 PlannedLlc);
  CacheSimResult Spills = replayIslandThroughCache(Plan.Islands[0],
                                                   M.Program, 256ll << 10);
  EXPECT_GT(Spills.dramBytes(), 3 * Fits.dramBytes());
}

TEST_F(CacheSimFixture, AnalyticModelAgreesWithReplay) {
  // The simulator's per-step DRAM accounting (with its calibrated spill
  // fraction) must sit within ~2x of the trace-driven measurement for the
  // blocked schedule — the spill fraction is a calibrated stand-in, not
  // fiction.
  const int64_t Llc = 8ll << 20;
  MachineModel Tuned = Machine;
  Tuned.LlcBytesPerSocket = Llc;
  PlanConfig Config;
  Config.Strat = Strategy::Block31D;
  Config.Sockets = 1;
  ExecutionPlan Plan = buildPlan(M.Program, Grid, Tuned, Config);
  SimResult Analytic = simulate(Plan, M.Program, Tuned, 1);
  CacheSimResult Replay =
      replayIslandThroughCache(Plan.Islands[0], M.Program, Llc);
  double Ratio = static_cast<double>(Analytic.DramBytesPerStep) /
                 static_cast<double>(Replay.dramBytes());
  EXPECT_GT(Ratio, 0.5);
  EXPECT_LT(Ratio, 2.0);
}

namespace {

/// Synthetic three-stage program touching the same step-input planes with
/// different region widths: stage 0 reads A narrowly, stage 1 re-reads it
/// with a +/-4 j-halo (the same (array, i-plane) slabs, twice the bytes),
/// stage 2 reads it narrowly again.
struct GrowingSlabCase {
  StencilProgram Program;
  ArrayId A;
  IslandPlan Island;
  Box3 Region = Box3::fromExtents(8, 8, 8);

  GrowingSlabCase() {
    A = Program.addArray("a", ArrayRole::StepInput);
    ArrayId B = Program.addArray("b", ArrayRole::StepOutput);
    ArrayId C = Program.addArray("c", ArrayRole::StepOutput);
    ArrayId D = Program.addArray("d", ArrayRole::StepOutput);
    StageDef Narrow;
    Narrow.Name = "narrow";
    Narrow.Outputs = {B};
    Narrow.Inputs = {StageInput::center(A)};
    StageId S0 = Program.addStage(Narrow);
    StageDef Wide;
    Wide.Name = "wide";
    Wide.Outputs = {C};
    Wide.Inputs = {StageInput::alongDim(A, 1, -4, 4)};
    StageId S1 = Program.addStage(Wide);
    StageDef Reread;
    Reread.Name = "reread";
    Reread.Outputs = {D};
    Reread.Inputs = {StageInput::center(A)};
    StageId S2 = Program.addStage(Reread);

    BlockTask Block;
    Block.Target = Region;
    Block.Passes = {{S0, Region}, {S1, Region}, {S2, Region}};
    Island.NumThreads = 1;
    Island.Part = Region;
    Island.Blocks = {Block};
  }
};

} // namespace

TEST(CacheSimGrowingSlab, HitWithLargerRegionChargesTheGrowth) {
  // A narrow touch leaves 512-byte slabs resident; the wide re-read
  // covers 1024 bytes of the same slabs. The 512-byte growth per plane is
  // a real fill and must appear in the miss traffic even though the slab
  // key hits.
  GrowingSlabCase Case;
  CacheSimResult R = replayIslandThroughCache(Case.Island, Case.Program,
                                              /*CacheBytes=*/1ll << 30);
  // 8 planes x 512 B narrow compulsory + 8 planes x 512 B growth.
  EXPECT_EQ(R.ReadMissBytes, 8 * 1024);
}

TEST(CacheSimGrowingSlab, GrowthRechargesCapacityAndEvicts) {
  // 9216 B holds the narrow working set (A + B = 8192 B) but not the
  // grown one; the wide pass must push the cache over capacity, evict,
  // and force re-misses — before the fix the undercounted footprint kept
  // everything "resident" and the replay was optimistic.
  GrowingSlabCase Case;
  CacheSimResult Unbounded = replayIslandThroughCache(
      Case.Island, Case.Program, /*CacheBytes=*/1ll << 30);
  CacheSimResult Tight = replayIslandThroughCache(Case.Island, Case.Program,
                                                  /*CacheBytes=*/9216);
  EXPECT_GT(Tight.ReadMissBytes, Unbounded.ReadMissBytes);
  EXPECT_EQ(Tight.AccessedBytes, Unbounded.AccessedBytes);
}

TEST_F(CacheSimFixture, AccessedBytesIndependentOfCacheSize) {
  ExecutionPlan Plan = makePlan(Strategy::Block31D, 8ll << 20);
  CacheSimResult Small =
      replayIslandThroughCache(Plan.Islands[0], M.Program, 1ll << 20);
  CacheSimResult Large =
      replayIslandThroughCache(Plan.Islands[0], M.Program, 1ll << 30);
  EXPECT_EQ(Small.AccessedBytes, Large.AccessedBytes);
  EXPECT_GT(Small.missRate(), Large.missRate());
}
