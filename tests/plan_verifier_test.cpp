//===- tests/plan_verifier_test.cpp - Static plan checking tests ----------===//

#include "core/PlanBuilder.h"
#include "core/PlanPrinter.h"
#include "core/PlanVerifier.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "support/OStream.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

struct VerifierFixture : public ::testing::Test {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = Box3::fromExtents(48, 24, 8);
  MachineModel Machine = makeToyMachine();

  ExecutionPlan makePlan(Strategy Strat, int Sockets,
                         int IslandsPerSocket = 1) {
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = Sockets;
    Config.IslandsPerSocket = IslandsPerSocket;
    return buildPlan(M.Program, Target, Machine, Config);
  }
};

} // namespace

TEST_F(VerifierFixture, AllBuiltPlansVerify) {
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    ExecutionPlan Plan = makePlan(Strat, 2);
    PlanVerification V = verifyPlan(Plan, M.Program);
    EXPECT_TRUE(V.Ok) << strategyName(Strat) << ": " << V.FirstError;
  }
  ExecutionPlan Sub = makePlan(Strategy::IslandsOfCores, 2, 2);
  PlanVerification V = verifyPlan(Sub, M.Program);
  EXPECT_TRUE(V.Ok) << V.FirstError;
}

TEST_F(VerifierFixture, DetectsMissingOutputCoverage) {
  ExecutionPlan Plan = makePlan(Strategy::IslandsOfCores, 2);
  // Drop the final pass of island 1's last block.
  BlockTask &Last = Plan.Islands[1].Blocks.back();
  ASSERT_EQ(Last.Passes.back().Stage, M.SOut);
  Last.Passes.pop_back();
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.FirstError.find("covers"), std::string::npos);
}

TEST_F(VerifierFixture, DetectsReadBeforeCompute) {
  ExecutionPlan Plan = makePlan(Strategy::Original, 1);
  // Shrink the flux1 pass so the upwind pass reads uncomputed values.
  for (StagePass &Pass : Plan.Islands[0].Blocks[0].Passes)
    if (Pass.Stage == M.SFlux1)
      Pass.Region.Hi[0] -= 2;
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.FirstError.find("before it is computed"), std::string::npos);
}

TEST_F(VerifierFixture, DetectsOverlappingIslandOutputs) {
  ExecutionPlan Plan = makePlan(Strategy::IslandsOfCores, 2);
  // Make island 1 also write part of island 0's output slab. To keep the
  // dataflow check satisfied, grow every pass of island 1 leftward by a
  // lot (the cones then cover the enlarged output too).
  for (BlockTask &Block : Plan.Islands[1].Blocks)
    for (StagePass &Pass : Block.Passes)
      Pass.Region.Lo[0] = Plan.Islands[0].Part.Lo[0];
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
}

TEST_F(VerifierFixture, DetectsRegionBeyondGlobalCone) {
  ExecutionPlan Plan = makePlan(Strategy::Original, 1);
  Plan.Islands[0].Blocks[0].Passes[0].Region =
      Target.grownAll(10); // Way past the dependence cone.
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.FirstError.find("exceeds the global region"),
            std::string::npos);
}

TEST_F(VerifierFixture, DetectsOutOfOrderPasses) {
  ExecutionPlan Plan = makePlan(Strategy::Original, 1);
  auto &Passes = Plan.Islands[0].Blocks[0].Passes;
  std::swap(Passes[0], Passes[1]);
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
}

TEST_F(VerifierFixture, StatsCountWork) {
  ExecutionPlan Plan = makePlan(Strategy::IslandsOfCores, 2);
  PlanStats Stats = computePlanStats(Plan, M.Program);
  EXPECT_EQ(Stats.NumIslands, 2);
  EXPECT_EQ(Stats.TotalThreads, 4);
  EXPECT_GT(Stats.NumBlocks, 2);
  EXPECT_GT(Stats.NumPasses, Stats.NumBlocks);
  EXPECT_GT(Stats.RedundancyFraction, 0.0);
  EXPECT_LT(Stats.RedundancyFraction, 0.2);
  EXPECT_EQ(Stats.TotalFlops, Plan.totalFlops(M.Program));
}

TEST_F(VerifierFixture, OriginalHasZeroRedundancy) {
  ExecutionPlan Plan = makePlan(Strategy::Original, 1);
  PlanStats Stats = computePlanStats(Plan, M.Program);
  EXPECT_DOUBLE_EQ(Stats.RedundancyFraction, 0.0);
}

TEST_F(VerifierFixture, SummaryAndFullDumpRender) {
  ExecutionPlan Plan = makePlan(Strategy::IslandsOfCores, 2);
  std::string Buf;
  StringOStream OS(Buf);
  printPlanSummary(Plan, M.Program, OS);
  EXPECT_NE(Buf.find("islands-of-cores"), std::string::npos);
  EXPECT_NE(Buf.find("redundant"), std::string::npos);
  Buf.clear();
  printPlan(Plan, M.Program, OS);
  EXPECT_NE(Buf.find("island 0"), std::string::npos);
  EXPECT_NE(Buf.find("flux1"), std::string::npos);
  EXPECT_NE(Buf.find("output"), std::string::npos);
}
