//===- tests/stencil_ir_test.cpp - Stencil IR unit tests ------------------===//

#include "stencil/StencilIR.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

/// The paper's Fig. 1 example: three chained 1D stages A -> B -> C, each
/// reading its producer at offsets {-1, 0, +1} along dimension 0.
struct ToyChain {
  StencilProgram Program;
  ArrayId In = 0, A = 0, B = 0, C = 0;
  StageId S1 = 0, S2 = 0, S3 = 0;
};

ToyChain buildToyChain() {
  ToyChain T;
  T.In = T.Program.addArray("in", ArrayRole::StepInput);
  T.A = T.Program.addArray("A", ArrayRole::Intermediate);
  T.B = T.Program.addArray("B", ArrayRole::Intermediate);
  T.C = T.Program.addArray("C", ArrayRole::StepOutput);

  StageDef S1;
  S1.Name = "stage1";
  S1.Outputs = {T.A};
  S1.Inputs = {StageInput::alongDim(T.In, 0, -1, 1)};
  S1.FlopsPerPoint = 2;
  T.S1 = T.Program.addStage(S1);

  StageDef S2;
  S2.Name = "stage2";
  S2.Outputs = {T.B};
  S2.Inputs = {StageInput::alongDim(T.A, 0, -1, 1)};
  S2.FlopsPerPoint = 2;
  T.S2 = T.Program.addStage(S2);

  StageDef S3;
  S3.Name = "stage3";
  S3.Outputs = {T.C};
  S3.Inputs = {StageInput::alongDim(T.B, 0, -1, 1)};
  S3.FlopsPerPoint = 2;
  T.S3 = T.Program.addStage(S3);
  return T;
}

} // namespace

TEST(StencilIR, ToyChainValidates) {
  ToyChain T = buildToyChain();
  std::string Error;
  EXPECT_TRUE(T.Program.validate(Error)) << Error;
  EXPECT_EQ(T.Program.numStages(), 3u);
  EXPECT_EQ(T.Program.numArrays(), 4u);
}

TEST(StencilIR, ProducerTracking) {
  ToyChain T = buildToyChain();
  EXPECT_EQ(T.Program.producerOf(T.In), NoStage);
  EXPECT_EQ(T.Program.producerOf(T.A), T.S1);
  EXPECT_EQ(T.Program.producerOf(T.B), T.S2);
  EXPECT_EQ(T.Program.producerOf(T.C), T.S3);
}

TEST(StencilIR, StepInputAndOutputLists) {
  ToyChain T = buildToyChain();
  EXPECT_EQ(T.Program.stepInputs(), std::vector<ArrayId>{T.In});
  EXPECT_EQ(T.Program.stepOutputs(), std::vector<ArrayId>{T.C});
}

TEST(StencilIR, TotalFlops) {
  ToyChain T = buildToyChain();
  EXPECT_EQ(T.Program.totalFlopsPerPoint(), 6);
}

TEST(StencilIR, ReadRegionExpansion) {
  StageInput In = StageInput::alongDim(0, 1, -2, 3);
  Box3 Out(0, 0, 0, 4, 4, 4);
  EXPECT_EQ(In.readRegion(Out), Box3(0, -2, 0, 4, 7, 4));
}

TEST(StencilIR, CenterAndBoxHelpers) {
  StageInput C = StageInput::center(5);
  EXPECT_EQ(C.Array, 5);
  EXPECT_EQ(C.readRegion(Box3::fromExtents(2, 2, 2)),
            Box3::fromExtents(2, 2, 2));
  StageInput B = StageInput::box1(3);
  EXPECT_EQ(B.readRegion(Box3::fromExtents(2, 2, 2)),
            Box3(-1, -1, -1, 3, 3, 3));
}

TEST(StencilIR, ValidateRejectsTopologicalViolation) {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId A = P.addArray("A", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);

  // Reads A before any stage produces it.
  StageDef Bad;
  Bad.Name = "bad";
  Bad.Outputs = {Out};
  Bad.Inputs = {StageInput::center(A), StageInput::center(In)};
  P.addStage(Bad);

  std::string Error;
  EXPECT_FALSE(P.validate(Error));
  EXPECT_NE(Error.find("before it is produced"), std::string::npos);
}

TEST(StencilIR, ValidateRejectsUnproducedOutput) {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Mid = P.addArray("mid", ArrayRole::Intermediate);
  P.addArray("out", ArrayRole::StepOutput); // Never produced.

  StageDef S;
  S.Name = "s";
  S.Outputs = {Mid};
  S.Inputs = {StageInput::center(In)};
  P.addStage(S);

  std::string Error;
  EXPECT_FALSE(P.validate(Error));
  EXPECT_NE(Error.find("never produced"), std::string::npos);
}

TEST(StencilIR, ValidateRejectsInvertedOffsets) {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  StageDef S;
  S.Name = "s";
  S.Outputs = {Out};
  StageInput Bad = StageInput::center(In);
  Bad.MinOff[1] = 2;
  Bad.MaxOff[1] = -2;
  S.Inputs = {Bad};
  P.addStage(S);

  std::string Error;
  EXPECT_FALSE(P.validate(Error));
  EXPECT_NE(Error.find("inverted"), std::string::npos);
}

TEST(StencilIR, ValidateRejectsDuplicateOutputs) {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  StageDef S;
  S.Name = "s";
  S.Outputs = {Out, Out};
  S.Inputs = {StageInput::center(In)};
  P.addStage(S);

  DiagnosticEngine Diags;
  EXPECT_FALSE(P.validate(Diags));
  EXPECT_TRUE(Diags.hasFinding("program.stage.duplicate-output"));
}

TEST(StencilIR, ValidateRejectsReadWriteOverlap) {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Mid = P.addArray("mid", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);

  StageDef S1;
  S1.Name = "make-mid";
  S1.Outputs = {Mid};
  S1.Inputs = {StageInput::center(In)};
  P.addStage(S1);

  // Reads mid while also writing it: order-dependent under partitioning.
  StageDef S2;
  S2.Name = "in-place";
  S2.Outputs = {Mid, Out};
  S2.Inputs = {StageInput::alongDim(Mid, 0, -1, 1)};
  P.addStage(S2);

  DiagnosticEngine Diags;
  EXPECT_FALSE(P.validate(Diags));
  EXPECT_TRUE(Diags.hasFinding("program.stage.read-write-overlap"));
  // The same stage is also a second producer of mid.
  EXPECT_TRUE(Diags.hasFinding("program.array.multiple-producers"));
}

TEST(StencilIR, ValidateReportsEveryViolationNotJustTheFirst) {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);
  P.addArray("orphan", ArrayRole::StepOutput); // Never produced.

  StageDef S;
  S.Name = "s";
  S.Outputs = {Out, Out}; // Duplicate output.
  StageInput Bad = StageInput::center(In);
  Bad.MinOff[2] = 1;
  Bad.MaxOff[2] = -1; // Inverted window.
  S.Inputs = {Bad};
  P.addStage(S);

  DiagnosticEngine Diags;
  EXPECT_FALSE(P.validate(Diags));
  EXPECT_TRUE(Diags.hasFinding("program.stage.duplicate-output"));
  EXPECT_TRUE(Diags.hasFinding("program.input.inverted-window"));
  EXPECT_TRUE(Diags.hasFinding("program.output.never-produced"));
  EXPECT_GE(Diags.numErrors(), 3u);
}

TEST(StencilIR, MultiOutputStage) {
  StencilProgram P;
  ArrayId In = P.addArray("in", ArrayRole::StepInput);
  ArrayId X = P.addArray("x", ArrayRole::Intermediate);
  ArrayId Y = P.addArray("y", ArrayRole::Intermediate);
  ArrayId Out = P.addArray("out", ArrayRole::StepOutput);

  StageDef Fused;
  Fused.Name = "fused";
  Fused.Outputs = {X, Y};
  Fused.Inputs = {StageInput::center(In)};
  StageId S = P.addStage(Fused);

  StageDef Fin;
  Fin.Name = "final";
  Fin.Outputs = {Out};
  Fin.Inputs = {StageInput::center(X), StageInput::center(Y)};
  P.addStage(Fin);

  std::string Error;
  EXPECT_TRUE(P.validate(Error)) << Error;
  EXPECT_EQ(P.producerOf(X), S);
  EXPECT_EQ(P.producerOf(Y), S);
}
