//===- tests/schedule_optimizer_test.cpp - Barrier elision tests ----------===//
//
// The barrier elision optimizer's contract, end to end: its report agrees
// with the plan's barrier bits and with the simulator's counters, every
// optimized plan still verifies and passes the race check (the safety
// gate), a seeded over-elision is rejected by that same gate, empty-pass
// barriers fold the way the executor runs them, and — the load-bearing
// part — optimized execution stays bit-identical to the serial reference
// for every strategy, team count and kernel variant.
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "core/PlanVerifier.h"
#include "core/ScheduleOptimizer.h"
#include "exec/LintSuite.h"
#include "exec/PlanExecutor.h"
#include "exec/ScheduleCheck.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Kernels.h"
#include "mpdata/Solver.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

using namespace icores;

namespace {

constexpr int GridNI = 20;
constexpr int GridNJ = 14;
constexpr int GridNK = 8;
constexpr int TimeSteps = 3;

MachineModel machineWithSockets(int Sockets) {
  MachineModel M = makeToyMachine();
  M.NumSockets = Sockets;
  return M;
}

ExecutionPlan makePlan(const MpdataProgram &M, Strategy Strat, int Sockets,
                       PartitionVariant Variant = PartitionVariant::A) {
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Sockets;
  Config.Variant = Variant;
  return buildPlan(M.Program, Box3::fromExtents(GridNI, GridNJ, GridNK),
                   machineWithSockets(Sockets), Config);
}

/// The (strategy, sockets) grid most tests sweep.
const std::vector<std::pair<Strategy, int>> kPlanCases = {
    {Strategy::Original, 1},       {Strategy::Original, 2},
    {Strategy::Block31D, 1},       {Strategy::Block31D, 3},
    {Strategy::IslandsOfCores, 2}, {Strategy::IslandsOfCores, 4}};

} // namespace

TEST(ScheduleOptimizerTest, ReportMatchesPlanBits) {
  MpdataProgram M = buildMpdataProgram();
  for (const auto &[Strat, Sockets] : kPlanCases) {
    ExecutionPlan Plan = makePlan(M, Strat, Sockets);
    int64_t Before = Plan.teamBarriersPerStep();
    EXPECT_EQ(Plan.elidedBarriersPerStep(), 0) << "planners emit all bits";
    ScheduleOptimizerReport Report = optimizeBarriers(M.Program, Plan);
    EXPECT_EQ(Report.TotalPasses, Before);
    EXPECT_EQ(Report.ElidedBarriers, Plan.elidedBarriersPerStep());
    EXPECT_EQ(Report.remainingBarriers(), Plan.teamBarriersPerStep());
    EXPECT_GT(Report.ElidedBarriers, 0)
        << strategyName(Strat) << " P=" << Sockets;
    int64_t PerIsland = 0;
    for (const IslandElision &E : Report.Islands)
      PerIsland += E.Elided;
    EXPECT_EQ(PerIsland, Report.ElidedBarriers);
  }
}

TEST(ScheduleOptimizerTest, FinalPassOfEveryIslandKeepsItsBarrier) {
  MpdataProgram M = buildMpdataProgram();
  for (const auto &[Strat, Sockets] : kPlanCases) {
    ExecutionPlan Plan = makePlan(M, Strat, Sockets);
    optimizeBarriers(M.Program, Plan);
    for (const IslandPlan &Island : Plan.Islands) {
      const StagePass *LastLive = nullptr;
      for (const BlockTask &Block : Island.Blocks)
        for (const StagePass &Pass : Block.Passes)
          if (!Pass.Region.empty())
            LastLive = &Pass;
      ASSERT_NE(LastLive, nullptr);
      EXPECT_TRUE(LastLive->BarrierAfter)
          << "step-end rendezvous elided on island " << Island.Index;
    }
  }
}

TEST(ScheduleOptimizerTest, IsIdempotent) {
  MpdataProgram M = buildMpdataProgram();
  ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, 2);
  ScheduleOptimizerReport First = optimizeBarriers(M.Program, Plan);
  std::vector<bool> Bits;
  for (const IslandPlan &Island : Plan.Islands)
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes)
        Bits.push_back(Pass.BarrierAfter);
  ScheduleOptimizerReport Second = optimizeBarriers(M.Program, Plan);
  EXPECT_EQ(Second.TotalPasses, First.TotalPasses);
  EXPECT_EQ(Second.ElidedBarriers, First.ElidedBarriers);
  std::vector<bool> BitsAfter;
  for (const IslandPlan &Island : Plan.Islands)
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes)
        BitsAfter.push_back(Pass.BarrierAfter);
  EXPECT_EQ(BitsAfter, Bits);
}

TEST(ScheduleOptimizerTest, OptimizedPlansPassVerifierAndRaceCheck) {
  MpdataProgram M = buildMpdataProgram();
  for (const auto &[Strat, Sockets] : kPlanCases) {
    ExecutionPlan Plan = makePlan(M, Strat, Sockets);
    optimizeBarriers(M.Program, Plan);
    PlanVerification V = verifyPlan(Plan, M.Program);
    EXPECT_TRUE(V.Ok) << V.FirstError;
    DiagnosticEngine Diags;
    EXPECT_TRUE(checkPlanRaces(M.Program, Plan, Diags))
        << strategyName(Strat) << " P=" << Sockets << ": "
        << Diags.firstErrorMessage();
    EXPECT_EQ(Diags.numErrors(), 0u);
  }
}

TEST(ScheduleOptimizerTest, OptimizedPlansPassLintSuite) {
  // The full suite over every optimized plan shape (the kernel access
  // audit is plan-independent and covered by lint_test, so skipped here).
  MpdataProgram M = buildMpdataProgram();
  KernelTable RefKernels = buildMpdataKernels(KernelVariant::Reference);
  KernelTable OptKernels = buildMpdataKernels(KernelVariant::Optimized);
  std::vector<LintKernelSet> KernelSets = {{"ref", &RefKernels},
                                           {"opt", &OptKernels}};
  std::vector<ExecutionPlan> Plans;
  Plans.reserve(kPlanCases.size());
  std::vector<LintPlanSet> PlanSets;
  for (const auto &[Strat, Sockets] : kPlanCases) {
    Plans.push_back(makePlan(M, Strat, Sockets));
    optimizeBarriers(M.Program, Plans.back());
    PlanSets.push_back(
        {std::string(strategyName(Strat)) + "+elide", &Plans.back()});
  }
  LintSuiteOptions Opts;
  Opts.RunAccessAudit = false;
  DiagnosticEngine Diags;
  EXPECT_TRUE(runLintSuite(M.Program, KernelSets, PlanSets, Diags, Opts))
      << Diags.firstErrorMessage();
  EXPECT_EQ(Diags.numErrors(), 0u);
}

TEST(ScheduleOptimizerTest, SeededOverElisionIsRejected) {
  // Clear one barrier the optimizer insisted on keeping (any kept bit
  // that is not an island's step-end rendezvous): the race check — the
  // optimizer's safety gate — must reject the plan.
  MpdataProgram M = buildMpdataProgram();
  ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, 2);
  optimizeBarriers(M.Program, Plan);

  StagePass *Victim = nullptr;
  for (IslandPlan &Island : Plan.Islands) {
    std::vector<StagePass *> Live;
    for (BlockTask &Block : Island.Blocks)
      for (StagePass &Pass : Block.Passes)
        if (!Pass.Region.empty())
          Live.push_back(&Pass);
    for (size_t I = 0; I + 1 < Live.size() && !Victim; ++I)
      if (Live[I]->BarrierAfter)
        Victim = Live[I];
    if (Victim)
      break;
  }
  ASSERT_NE(Victim, nullptr)
      << "no kept non-final barrier to attack — optimizer elided "
         "everything, which the MPDATA dependence chain forbids";
  Victim->BarrierAfter = false;

  DiagnosticEngine Diags;
  EXPECT_FALSE(checkPlanRaces(M.Program, Plan, Diags));
  EXPECT_TRUE(Diags.hasFinding("race.intra.write-write") ||
              Diags.hasFinding("race.intra.read-write"));
}

TEST(ScheduleOptimizerTest, EmptyPassBarrierFoldsOntoPreviousPass) {
  // Mirror of the executor: an empty pass is skipped but its barrier bit
  // is still honoured, so buildIslandSchedules folds it backwards.
  ExecutionPlan Plan;
  Plan.GlobalTarget = Box3::fromExtents(4, 4, 4);
  IslandPlan Island;
  Island.NumThreads = 2;
  Island.Part = Plan.GlobalTarget;
  BlockTask Block;
  Block.Target = Plan.GlobalTarget;
  Block.Passes.push_back({0, Plan.GlobalTarget, /*BarrierAfter=*/false});
  Block.Passes.push_back({1, Box3(), /*BarrierAfter=*/true});
  Block.Passes.push_back({2, Plan.GlobalTarget, /*BarrierAfter=*/true});
  Island.Blocks.push_back(Block);
  Plan.Islands.push_back(Island);

  std::vector<IslandSchedule> Schedules = buildIslandSchedules(Plan);
  ASSERT_EQ(Schedules.size(), 1u);
  ASSERT_EQ(Schedules[0].Passes.size(), 2u);
  EXPECT_EQ(Schedules[0].Passes[0].Stage, 0);
  EXPECT_TRUE(Schedules[0].Passes[0].BarrierAfter)
      << "the dropped empty pass's barrier belongs to the previous pass";
  EXPECT_EQ(Schedules[0].Passes[1].Stage, 2);

  // A leading empty pass has no predecessor to fold onto; its barrier
  // orders nothing and is simply dropped.
  Plan.Islands[0].Blocks[0].Passes.insert(
      Plan.Islands[0].Blocks[0].Passes.begin(),
      StagePass{3, Box3(), /*BarrierAfter=*/true});
  Schedules = buildIslandSchedules(Plan);
  ASSERT_EQ(Schedules[0].Passes.size(), 2u);
  EXPECT_EQ(Schedules[0].Passes[0].Stage, 0);
  EXPECT_TRUE(Schedules[0].Passes[0].BarrierAfter);
}

TEST(ScheduleOptimizerTest, CountsMatchSimulator) {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Machine = machineWithSockets(2);
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    ExecutionPlan Plain = makePlan(M, Strat, 2);
    SimResult PlainSim = simulate(Plain, M.Program, Machine, TimeSteps);
    EXPECT_EQ(PlainSim.ElidedBarriersPerStep, 0);

    ExecutionPlan Opt = makePlan(M, Strat, 2);
    ScheduleOptimizerReport Report = optimizeBarriers(M.Program, Opt);
    SimResult OptSim = simulate(Opt, M.Program, Machine, TimeSteps);
    EXPECT_EQ(PlainSim.TeamBarriersPerStep, Report.TotalPasses);
    EXPECT_EQ(OptSim.TeamBarriersPerStep, Report.remainingBarriers());
    EXPECT_EQ(OptSim.ElidedBarriersPerStep, Report.ElidedBarriers);
    EXPECT_LE(OptSim.TotalSeconds, PlainSim.TotalSeconds + 1e-12)
        << strategyName(Strat);
  }
}

TEST(ScheduleOptimizerTest, ExecStatsCountElisions) {
  MpdataProgram M = buildMpdataProgram();
  ExecutionPlan Plan = makePlan(M, Strategy::IslandsOfCores, 2);
  ScheduleOptimizerReport Report = optimizeBarriers(M.Program, Plan);
  ASSERT_GT(Report.ElidedBarriers, 0);

  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  PlanExecutor Exec(Dom, std::move(Plan));
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 11, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.enableProfiling(true);
  Exec.run(TimeSteps);
  const ExecStats &Stats = Exec.stats();
  EXPECT_EQ(Stats.barriersElided(), TimeSteps * Report.ElidedBarriers);
  EXPECT_GT(Stats.spinWakes() + Stats.sleepWakes(), 0)
      << "every taken barrier reports a wake kind";
}

//===----------------------------------------------------------------------===//
// Bit-exact equivalence: the acceptance bar for the whole optimization
//===----------------------------------------------------------------------===//

namespace {

struct ElisionCase {
  Strategy Strat;
  int Sockets;
  KernelVariant Kernels;
  PartitionVariant Variant;
  const char *Name;
};

class ScheduleOptimizerEquivalence
    : public ::testing::TestWithParam<ElisionCase> {};

Array3D referenceResult() {
  ReferenceSolver Solver(GridNI, GridNJ, GridNK);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 1234, 0.1, 2.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, -0.25, 0.2);
  Solver.prepareCoefficients();
  Solver.run(TimeSteps);
  Array3D Result(Solver.domain().allocBox());
  Result.copyRegionFrom(Solver.state(), Solver.domain().coreBox());
  return Result;
}

Array3D executorResult(const MpdataProgram &M, const ElisionCase &C,
                       bool Optimize,
                       ExecutorOptions Opts = {}) {
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  ExecutionPlan Plan = makePlan(M, C.Strat, C.Sockets, C.Variant);
  if (Optimize) {
    ScheduleOptimizerReport Report = optimizeBarriers(M.Program, Plan);
    EXPECT_GT(Report.ElidedBarriers, 0) << "nothing elided — the "
                                           "equivalence run proves nothing";
  }
  PlanExecutor Exec(Dom, std::move(Plan), C.Kernels, Opts);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 1234, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(TimeSteps);
  Array3D Result(Exec.domain().allocBox());
  Result.copyRegionFrom(Exec.state(), Exec.domain().coreBox());
  return Result;
}

} // namespace

TEST_P(ScheduleOptimizerEquivalence, OptimizedMatchesReferenceBitExactly) {
  const ElisionCase &C = GetParam();
  MpdataProgram M = buildMpdataProgram();
  Box3 Core = Box3::fromExtents(GridNI, GridNJ, GridNK);
  Array3D Reference = referenceResult();
  Array3D Unoptimized = executorResult(M, C, /*Optimize=*/false);
  Array3D Optimized = executorResult(M, C, /*Optimize=*/true);
  EXPECT_EQ(Unoptimized.maxAbsDiff(Reference, Core), 0.0);
  EXPECT_EQ(Optimized.maxAbsDiff(Reference, Core), 0.0)
      << "elision changed the numerics for " << strategyName(C.Strat)
      << " P=" << C.Sockets;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ScheduleOptimizerEquivalence,
    ::testing::Values(
        ElisionCase{Strategy::Original, 1, KernelVariant::Reference,
                    PartitionVariant::A, "original_p1_ref"},
        ElisionCase{Strategy::Original, 2, KernelVariant::Reference,
                    PartitionVariant::A, "original_p2_ref"},
        ElisionCase{Strategy::Original, 2, KernelVariant::Optimized,
                    PartitionVariant::A, "original_p2_opt"},
        ElisionCase{Strategy::Block31D, 3, KernelVariant::Reference,
                    PartitionVariant::A, "block31d_p3_ref"},
        ElisionCase{Strategy::Block31D, 3, KernelVariant::Optimized,
                    PartitionVariant::A, "block31d_p3_opt"},
        ElisionCase{Strategy::IslandsOfCores, 2, KernelVariant::Reference,
                    PartitionVariant::A, "islands_p2_ref"},
        ElisionCase{Strategy::IslandsOfCores, 2, KernelVariant::Optimized,
                    PartitionVariant::A, "islands_p2_opt"},
        ElisionCase{Strategy::IslandsOfCores, 2, KernelVariant::Reference,
                    PartitionVariant::B, "islands_p2_varB_ref"},
        ElisionCase{Strategy::IslandsOfCores, 4, KernelVariant::Reference,
                    PartitionVariant::A, "islands_p4_ref"},
        ElisionCase{Strategy::IslandsOfCores, 4, KernelVariant::Optimized,
                    PartitionVariant::A, "islands_p4_opt"}),
    [](const ::testing::TestParamInfo<ElisionCase> &Info) {
      return Info.param.Name;
    });

TEST(ScheduleOptimizerEquivalenceTest, HoldsUnderEveryBarrierPolicy) {
  MpdataProgram M = buildMpdataProgram();
  ElisionCase C{Strategy::IslandsOfCores, 2, KernelVariant::Reference,
                PartitionVariant::A, "islands_p2"};
  Box3 Core = Box3::fromExtents(GridNI, GridNJ, GridNK);
  Array3D Reference = referenceResult();
  for (TeamBarrier::WaitPolicy Policy : {TeamBarrier::WaitPolicy::Spin,
                                         TeamBarrier::WaitPolicy::Hybrid,
                                         TeamBarrier::WaitPolicy::Block}) {
    ExecutorOptions Opts;
    Opts.BarrierPolicy = Policy;
    Opts.BarrierSpinLimit = Policy == TeamBarrier::WaitPolicy::Hybrid
                                ? 4 // Force the futex path too.
                                : TeamBarrier::DefaultSpinLimit;
    Array3D Optimized = executorResult(M, C, /*Optimize=*/true, Opts);
    EXPECT_EQ(Optimized.maxAbsDiff(Reference, Core), 0.0)
        << waitPolicyName(Policy);
  }
}
