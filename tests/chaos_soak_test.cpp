//===- tests/chaos_soak_test.cpp - Randomized chaos soak (tier 2) ---------===//
//
// A time-budgeted randomized sweep of the chaos subsystem, built as its
// own executable and labelled `soak` in ctest so tier-1 runs keep it on a
// ~2-second budget while CI's TSan job stretches it to 30 seconds via the
// ICORES_SOAK_SECONDS environment variable.
//
// Each iteration draws a fresh seed and cycles through the cross product
// of plan strategy x kernel backend x barrier wait policy, running the
// threaded executor under stall/wake chaos — and every few iterations a
// distributed run under message chaos — asserting bit-exactness against
// the fault-free result each time. The interesting property is not any
// single configuration but that no (strategy, backend, policy, seed)
// combination deadlocks or diverges under injected faults.
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "dist/DistributedSolver.h"
#include "exec/PlanExecutor.h"
#include "fault/FaultInjector.h"
#include "fault/Watchdog.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

using namespace icores;

namespace {

/// Wall-clock budget: ICORES_SOAK_SECONDS, default 2 (tier-1 friendly).
double soakBudgetSeconds() {
  const char *Env = std::getenv("ICORES_SOAK_SECONDS");
  if (!Env || !*Env)
    return 2.0;
  double Val = std::strtod(Env, nullptr);
  return Val > 0 ? Val : 2.0;
}

constexpr int GridNI = 16, GridNJ = 12, GridNK = 6, TimeSteps = 2;

Array3D referenceResult() {
  ReferenceSolver Solver(GridNI, GridNJ, GridNK);
  fillRandomPositive(Solver.stateIn(), Solver.domain(), 555, 0.1, 2.0);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.3, -0.25,
                      0.2);
  Solver.prepareCoefficients();
  Solver.run(TimeSteps);
  Array3D Result(Solver.domain().allocBox());
  Result.copyRegionFrom(Solver.state(), Solver.domain().coreBox());
  return Result;
}

Array3D chaoticExecutorRun(Strategy Strat, KernelVariant Kernels,
                           TeamBarrier::WaitPolicy Policy,
                           FaultInjector &Injector) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(GridNI, GridNJ, GridNK, mpdataHaloDepth());
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = 2;
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = 2;
  ExecutionPlan Plan =
      buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  ExecutorOptions Opts;
  Opts.BarrierPolicy = Policy;
  Opts.BarrierSpinLimit = 64; // Exercise the sleep path, not just spins.
  Opts.Chaos = &Injector;
  PlanExecutor Exec(Dom, std::move(Plan), Kernels, Opts);
  fillRandomPositive(Exec.stateIn(), Exec.domain(), 555, 0.1, 2.0);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1),
                      Exec.velocity(2), Exec.domain(), 0.3, -0.25, 0.2);
  Exec.prepareCoefficients();
  Exec.run(TimeSteps);
  Array3D Result(Exec.domain().allocBox());
  Result.copyRegionFrom(Exec.state(), Exec.domain().coreBox());
  return Result;
}

} // namespace

TEST(ChaosSoakTest, RandomizedSweepStaysBitExact) {
  using Clock = std::chrono::steady_clock;
  const double Budget = soakBudgetSeconds();
  Watchdog Dog(Budget + 120.0, "chaos_soak_test: randomized sweep");
  const Clock::time_point Start = Clock::now();

  const Strategy Strategies[] = {Strategy::Original, Strategy::Block31D,
                                 Strategy::IslandsOfCores};
  const KernelVariant Backends[] = {KernelVariant::Reference,
                                    KernelVariant::Optimized,
                                    KernelVariant::Simd};
  const TeamBarrier::WaitPolicy Policies[] = {
      TeamBarrier::WaitPolicy::Spin, TeamBarrier::WaitPolicy::Hybrid,
      TeamBarrier::WaitPolicy::Block};

  Array3D Reference = referenceResult();
  Box3 Core = Box3::fromExtents(GridNI, GridNJ, GridNK);

  // Distributed slice shared state (fault-free baseline computed once).
  DistributedInit Init;
  Init.State = [](int I, int J, int K) {
    SplitMix64 Rng(static_cast<uint64_t>(I * 7919 + J * 131 + K));
    return Rng.nextInRange(0.2, 1.8);
  };
  Init.U1 = [](int, int, int) { return 0.3; };
  Init.U2 = [](int, int, int) { return -0.2; };
  Init.U3 = [](int, int, int) { return 0.15; };
  Init.H = [](int, int, int) { return 1.0; };
  DistChaosResult DistBaseline = runDistributedMpdataChaos(
      2, 1, GridNI, GridNJ, GridNK, 1, Init, nullptr, CommTimeouts());
  ASSERT_TRUE(DistBaseline.Ok);
  CommTimeouts Tight;
  Tight.InitialBackoffSeconds = 2e-4;
  Tight.MaxBackoffSeconds = 4e-3;
  Tight.MaxRetries = 120;

  int Iterations = 0;
  int64_t FaultsInjected = 0;
  SplitMix64 SeedRng(0x50a1c0deULL);
  while (std::chrono::duration<double>(Clock::now() - Start).count() <
         Budget) {
    const uint64_t Seed = SeedRng.next();
    const int I = Iterations++;
    Strategy Strat = Strategies[I % 3];
    KernelVariant Kernels = Backends[(I / 3) % 3];
    TeamBarrier::WaitPolicy Policy = Policies[(I / 9) % 3];

    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.StallRate = 0.1;
    Plan.WakeRate = 0.3;
    Plan.MaxStallSeconds = 2e-4;
    Plan.StallTimeoutSeconds = 1e-4;
    FaultInjector Injector(Plan);

    // The clean run of the same backend is the oracle: stall/wake chaos
    // perturbs timing only, so results must agree with the serial
    // reference bit for bit (every backend already does — tier 1).
    Array3D Result = chaoticExecutorRun(Strat, Kernels, Policy, Injector);
    ASSERT_EQ(Result.maxAbsDiff(Reference, Core), 0.0)
        << "seed " << Seed << " strat " << static_cast<int>(Strat)
        << " kernels " << static_cast<int>(Kernels) << " policy "
        << waitPolicyName(Policy);
    FaultsInjected += Injector.stats().Injected;

    if (I % 4 == 3) {
      // Distributed slice: message chaos on a 2-rank run.
      FaultPlan DistPlan;
      DistPlan.Seed = Seed;
      DistPlan.DropRate = 0.1;
      DistPlan.DelayRate = 0.1;
      DistPlan.DuplicateRate = 0.1;
      DistPlan.CorruptRate = 0.1;
      DistPlan.MaxDelaySeconds = 5e-4;
      FaultInjector DistInjector(DistPlan);
      DistChaosResult R = runDistributedMpdataChaos(
          2, 1, GridNI, GridNJ, GridNK, 1, Init, &DistInjector, Tight);
      ASSERT_TRUE(R.Ok) << "seed " << Seed << ": "
                        << R.RankErrors.front();
      ASSERT_EQ(R.State.maxAbsDiff(DistBaseline.State, Core), 0.0)
          << "seed " << Seed;
      FaultsInjected += DistInjector.stats().Injected;
    }
  }

  // A soak that never injected anything tested nothing.
  EXPECT_GT(Iterations, 0);
  EXPECT_GT(FaultsInjected, 0);
  std::printf("chaos soak: %d iterations, %lld faults injected in %.1fs "
              "budget\n",
              Iterations, static_cast<long long>(FaultsInjected), Budget);
}
