//===- tests/generic_runtime_test.cpp - Generic runtime layer tests -------===//
//
// Direct tests of the application-agnostic layer: KernelTable,
// SerialStepper and ProgramExecutor — including running MPDATA through
// the generic path and checking it against the dedicated ReferenceSolver.
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "exec/ProgramExecutor.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Kernels.h"
#include "mpdata/Solver.h"
#include "stencil/FieldStore.h"
#include "stencil/SerialStepper.h"

#include <gtest/gtest.h>

using namespace icores;

TEST(KernelTableTest, CoverageTracking) {
  MpdataProgram M = buildMpdataProgram();
  KernelTable Empty(M.Program.numStages());
  EXPECT_FALSE(Empty.coversProgram(M.Program));
  EXPECT_FALSE(Empty.isSet(0));

  KernelTable Full = buildMpdataKernels();
  EXPECT_TRUE(Full.coversProgram(M.Program));
  for (unsigned S = 0; S != M.Program.numStages(); ++S)
    EXPECT_TRUE(Full.isSet(static_cast<StageId>(S)));

  KernelTable WrongSize(3);
  EXPECT_FALSE(WrongSize.coversProgram(M.Program));
}

TEST(KernelTableTest, EmptyRegionSkipsTheKernel) {
  KernelTable Table(1);
  int Calls = 0;
  Table.set(0, [&Calls](FieldStore &, const Box3 &) { ++Calls; });
  FieldStore Fields(1);
  Table.run(Fields, 0, Box3());
  EXPECT_EQ(Calls, 0);
  Table.run(Fields, 0, Box3::fromExtents(1, 1, 1));
  EXPECT_EQ(Calls, 1);
}

namespace {

/// Initializes an MPDATA workload through the generic array(ArrayId) API.
template <typename Runner>
void initMpdata(Runner &R, const MpdataProgram &M, const Domain &Dom) {
  GaussianBlob Blob;
  Blob.CenterI = Dom.ni() / 3.0;
  Blob.CenterJ = Dom.nj() / 2.0;
  Blob.CenterK = Dom.nk() / 2.0;
  Blob.Sigma = 2.5;
  fillGaussian(R.array(M.XIn), Dom, Blob);
  R.array(M.U1).fill(0.25);
  R.array(M.U2).fill(-0.2);
  R.array(M.U3).fill(0.1);
  R.array(M.H).fill(1.0);
  R.prepareInputs();
}

Array3D mpdataOracle(const Domain &Dom, int Steps) {
  ReferenceSolver Solver(Dom.ni(), Dom.nj(), Dom.nk());
  GaussianBlob Blob;
  Blob.CenterI = Dom.ni() / 3.0;
  Blob.CenterJ = Dom.nj() / 2.0;
  Blob.CenterK = Dom.nk() / 2.0;
  Blob.Sigma = 2.5;
  fillGaussian(Solver.stateIn(), Solver.domain(), Blob);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.25, -0.2, 0.1);
  Solver.prepareCoefficients();
  Solver.run(Steps);
  Array3D Out(Dom.allocBox());
  Out.copyRegionFrom(Solver.state(), Dom.coreBox());
  return Out;
}

} // namespace

TEST(SerialStepperTest, MpdataThroughGenericPathMatchesReferenceSolver) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(18, 12, 8, mpdataHaloDepth());
  SerialStepper Stepper(M.Program, buildMpdataKernels(), Dom);
  initMpdata(Stepper, M, Dom);
  Stepper.run(4);
  Array3D Oracle = mpdataOracle(Dom, 4);
  EXPECT_EQ(Stepper.array(M.XIn).maxAbsDiff(Oracle, Dom.coreBox()), 0.0);
}

TEST(SerialStepperTest, RejectsShallowHalo) {
  MpdataProgram M = buildMpdataProgram();
  Domain Shallow(16, 16, 16, 1); // MPDATA needs 3.
  EXPECT_DEATH(SerialStepper(M.Program, buildMpdataKernels(), Shallow),
               "halo");
}

TEST(SerialStepperTest, RejectsIncompleteKernelTable) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  KernelTable Incomplete(M.Program.numStages()); // Nothing registered.
  EXPECT_DEATH(SerialStepper(M.Program, std::move(Incomplete), Dom),
               "kernel table");
}

TEST(SerialStepperTest, IntermediatesAreNotExposed) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  SerialStepper Stepper(M.Program, buildMpdataKernels(), Dom);
  EXPECT_DEATH(Stepper.array(M.Actual), "not a step input or output");
}

TEST(ProgramExecutorTest, MpdataThroughGenericPathMatchesReferenceSolver) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(18, 12, 8, mpdataHaloDepth());
  MachineModel Machine = makeToyMachine();
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  ProgramExecutor Exec(M.Program, buildMpdataKernels(KernelVariant::Optimized),
                       Dom, std::move(Plan));
  initMpdata(Exec, M, Dom);
  Exec.run(4);
  Array3D Oracle = mpdataOracle(Dom, 4);
  EXPECT_EQ(Exec.array(M.XIn).maxAbsDiff(Oracle, Dom.coreBox()), 0.0);
}

TEST(ProgramExecutorTest, RejectsMismatchedPlanTarget) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  MachineModel Machine = makeToyMachine();
  PlanConfig Config;
  Config.Strat = Strategy::Original;
  Config.Sockets = 1;
  // Plan for a different grid than the domain.
  ExecutionPlan Plan = buildPlan(M.Program, Box3::fromExtents(8, 8, 8),
                                 Machine, Config);
  EXPECT_DEATH(ProgramExecutor(M.Program, buildMpdataKernels(), Dom,
                               std::move(Plan)),
               "plan target");
}

TEST(ProgramExecutorTest, FeedbackLeavesStateInTheTargetArray) {
  // After run(), the newest state must be readable through the feedback
  // target (xIn), and another run() must continue from it.
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  MachineModel Machine = makeToyMachine();
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = 2;

  auto make = [&]() {
    ExecutionPlan Plan =
        buildPlan(M.Program, Dom.coreBox(), Machine, Config);
    auto Exec = std::make_unique<ProgramExecutor>(
        M.Program, buildMpdataKernels(), Dom, std::move(Plan));
    initMpdata(*Exec, M, Dom);
    return Exec;
  };
  auto Split = make();
  Split->run(2);
  Split->run(3);
  auto Whole = make();
  Whole->run(5);
  EXPECT_EQ(Split->array(M.XIn).maxAbsDiff(Whole->array(M.XIn),
                                           Dom.coreBox()),
            0.0);
}
