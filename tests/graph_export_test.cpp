//===- tests/graph_export_test.cpp - Stage-graph export tests -------------===//

#include "mpdata/MpdataProgram.h"
#include "stencil/GraphExport.h"
#include "support/OStream.h"

#include <gtest/gtest.h>

using namespace icores;

namespace {

std::string renderDot() {
  MpdataProgram M = buildMpdataProgram();
  std::string Buf;
  StringOStream OS(Buf);
  exportProgramDot(M.Program, OS);
  return Buf;
}

std::string renderText() {
  MpdataProgram M = buildMpdataProgram();
  std::string Buf;
  StringOStream OS(Buf);
  exportProgramText(M.Program, OS);
  return Buf;
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

TEST(GraphExportTest, DotIsWellFormed) {
  std::string Dot = renderDot();
  EXPECT_EQ(Dot.rfind("digraph stencil_program {", 0), 0u);
  EXPECT_EQ(Dot.back(), '\n');
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(countOccurrences(Dot, "{"), countOccurrences(Dot, "}"));
}

TEST(GraphExportTest, DotContainsEveryStageAndArray) {
  MpdataProgram M = buildMpdataProgram();
  std::string Dot = renderDot();
  for (unsigned S = 0; S != M.Program.numStages(); ++S)
    EXPECT_NE(Dot.find(M.Program.stage(static_cast<StageId>(S)).Name),
              std::string::npos);
  for (unsigned A = 0; A != M.Program.numArrays(); ++A)
    EXPECT_NE(Dot.find("\"" +
                       M.Program.array(static_cast<ArrayId>(A)).Name +
                       "\""),
              std::string::npos);
}

TEST(GraphExportTest, DotColorsRoles) {
  std::string Dot = renderDot();
  EXPECT_EQ(countOccurrences(Dot, "lightblue"), 5u);  // Step inputs.
  EXPECT_EQ(countOccurrences(Dot, "lightgreen"), 1u); // Step output.
}

TEST(GraphExportTest, DotEdgeCountsMatchProgram) {
  MpdataProgram M = buildMpdataProgram();
  size_t ExpectedEdges = 0;
  for (unsigned S = 0; S != M.Program.numStages(); ++S) {
    const StageDef &Stage = M.Program.stage(static_cast<StageId>(S));
    ExpectedEdges += Stage.Inputs.size() + Stage.Outputs.size();
  }
  EXPECT_EQ(countOccurrences(renderDot(), " -> "), ExpectedEdges);
}

TEST(GraphExportTest, TextListsSeventeenStages) {
  std::string Text = renderText();
  EXPECT_EQ(countOccurrences(Text, "\n"), 17u);
  EXPECT_NE(Text.find("S1 flux1"), std::string::npos);
  EXPECT_NE(Text.find("S17 output"), std::string::npos);
  // Offset windows rendered for non-centre reads.
  EXPECT_NE(Text.find("xIn[-1..0, 0, 0]"), std::string::npos);
}
