//===- tests/temporal_test.cpp - Temporal blocking correctness tests ------===//
//
// Bit-exactness and safety of temporally blocked plans (TemporalDepth > 1):
// every strategy x kernel backend x depth must reproduce the serial result
// exactly, barrier elision and the race check must stay green on fused
// plans, the chaos harness must replay deterministically at T > 1, and the
// executor must reject configurations the epoch protocol cannot honour.
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "core/PlanVerifier.h"
#include "core/ScheduleOptimizer.h"
#include "exec/ProgramExecutor.h"
#include "exec/ScheduleCheck.h"
#include "fault/FaultInjector.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "mpdata/Solver.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"
#include "stencil/SerialStepper.h"

#include <gtest/gtest.h>

#include <memory>

using namespace icores;

namespace {

/// Initializes an MPDATA workload through the generic array(ArrayId) API.
template <typename Runner>
void initMpdata(Runner &R, const MpdataProgram &M, const Domain &Dom) {
  GaussianBlob Blob;
  Blob.CenterI = Dom.ni() / 3.0;
  Blob.CenterJ = Dom.nj() / 2.0;
  Blob.CenterK = Dom.nk() / 2.0;
  Blob.Sigma = 2.5;
  fillGaussian(R.array(M.XIn), Dom, Blob);
  R.array(M.U1).fill(0.25);
  R.array(M.U2).fill(-0.2);
  R.array(M.U3).fill(0.1);
  R.array(M.H).fill(1.0);
  R.prepareInputs();
}

/// The serial oracle: same program, same kernels, one step at a time.
Array3D serialOracle(const MpdataProgram &M, const Domain &Dom, int Steps) {
  SerialStepper Stepper(M.Program, buildMpdataKernels(), Dom);
  initMpdata(Stepper, M, Dom);
  Stepper.run(Steps);
  Array3D Out(Dom.allocBox());
  Out.copyRegionFrom(Stepper.array(M.XIn), Dom.coreBox());
  return Out;
}

ExecutionPlan makePlan(const MpdataProgram &M, const Domain &Dom,
                       Strategy Strat, int TemporalDepth,
                       bool ElideBarriers = false) {
  MachineModel Machine = makeToyMachine();
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Strat == Strategy::Original ? 1 : 2;
  Config.TemporalDepth = TemporalDepth;
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  if (ElideBarriers)
    optimizeBarriers(M.Program, Plan);
  return Plan;
}

} // namespace

TEST(TemporalPlanTest, FusedPlansVerifyAndPassTheRaceCheck) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(18, 12, 8, mpdataHaloDepth());
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores})
    for (int T : {1, 2, 4})
      for (bool Elide : {false, true}) {
        ExecutionPlan Plan = makePlan(M, Dom, Strat, T, Elide);
        EXPECT_EQ(Plan.TemporalDepth, T);
        PlanVerification V = verifyPlan(Plan, M.Program);
        EXPECT_TRUE(V.Ok) << strategyName(Strat) << " T=" << T
                          << " elide=" << Elide << ": " << V.FirstError;
        DiagnosticEngine Diags;
        EXPECT_TRUE(checkPlanRaces(M.Program, Plan, Diags))
            << strategyName(Strat) << " T=" << T << " elide=" << Elide
            << ": " << Diags.firstErrorMessage();
      }
}

TEST(TemporalPlanTest, BlocksAreStampedWithIncreasingStepsInEpoch) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(18, 12, 8, mpdataHaloDepth());
  ExecutionPlan Plan = makePlan(M, Dom, Strategy::IslandsOfCores, 4);
  for (const IslandPlan &Island : Plan.Islands) {
    int Cur = 0;
    bool SawFinal = false;
    for (const BlockTask &Block : Island.Blocks) {
      EXPECT_GE(Block.StepInEpoch, Cur);
      EXPECT_LT(Block.StepInEpoch, 4);
      Cur = Block.StepInEpoch;
      SawFinal = SawFinal || Block.StepInEpoch == 3;
    }
    EXPECT_TRUE(SawFinal);
  }
}

TEST(TemporalExecutorTest, BitExactAcrossDepthsStrategiesAndBackends) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(18, 12, 8, mpdataHaloDepth());
  const int Steps = 4;
  Array3D Oracle = serialOracle(M, Dom, Steps);
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores})
    for (int T : {1, 2, 4})
      for (KernelVariant V : {KernelVariant::Reference,
                              KernelVariant::Optimized,
                              KernelVariant::Simd}) {
        ProgramExecutor Exec(M.Program, buildMpdataKernels(V), Dom,
                             makePlan(M, Dom, Strat, T));
        initMpdata(Exec, M, Dom);
        Exec.run(Steps);
        EXPECT_EQ(Exec.array(M.XIn).maxAbsDiff(Oracle, Dom.coreBox()), 0.0)
            << strategyName(Strat) << " T=" << T << " variant="
            << kernelVariantName(V);
      }
}

TEST(TemporalExecutorTest, BitExactUnderBothBarrierPoliciesAndElision) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(18, 12, 8, mpdataHaloDepth());
  const int Steps = 4;
  Array3D Oracle = serialOracle(M, Dom, Steps);
  for (TeamBarrier::WaitPolicy Policy : {TeamBarrier::WaitPolicy::Spin,
                                         TeamBarrier::WaitPolicy::Block})
    for (bool Elide : {false, true}) {
      ExecutorOptions Opts;
      Opts.BarrierPolicy = Policy;
      ProgramExecutor Exec(
          M.Program, buildMpdataKernels(KernelVariant::Optimized), Dom,
          makePlan(M, Dom, Strategy::IslandsOfCores, 2, Elide), Opts);
      initMpdata(Exec, M, Dom);
      Exec.run(Steps);
      EXPECT_EQ(Exec.array(M.XIn).maxAbsDiff(Oracle, Dom.coreBox()), 0.0)
          << "elide=" << Elide;
    }
}

TEST(TemporalExecutorTest, MultipleEpochsMatchOneLongRun) {
  // run(2) + run(4) at T = 2 must equal run(6) at T = 2 and the oracle.
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  auto make = [&]() {
    auto Exec = std::make_unique<ProgramExecutor>(
        M.Program, buildMpdataKernels(), Dom,
        makePlan(M, Dom, Strategy::IslandsOfCores, 2));
    initMpdata(*Exec, M, Dom);
    return Exec;
  };
  auto Split = make();
  Split->run(2);
  Split->run(4);
  auto Whole = make();
  Whole->run(6);
  EXPECT_EQ(Split->array(M.XIn).maxAbsDiff(Whole->array(M.XIn),
                                           Dom.coreBox()),
            0.0);
  Array3D Oracle = serialOracle(M, Dom, 6);
  EXPECT_EQ(Whole->array(M.XIn).maxAbsDiff(Oracle, Dom.coreBox()), 0.0);
}

TEST(TemporalExecutorTest, SharedTrafficPerStepShrinksWithDepth) {
  // The fused-step import cones widen by the halo depth per extra step, so
  // temporal reuse only pays on grids where the core dominates the halo;
  // tiny boxes would make redundant imports outweigh the saved re-reads.
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(64, 48, 48, mpdataHaloDepth());
  auto bytesPerStep = [&](int T) {
    ProgramExecutor Exec(M.Program, buildMpdataKernels(), Dom,
                         makePlan(M, Dom, Strategy::IslandsOfCores, T));
    return Exec.sharedBytesPerStep();
  };
  int64_t B1 = bytesPerStep(1);
  int64_t B2 = bytesPerStep(2);
  int64_t B4 = bytesPerStep(4);
  EXPECT_GT(B1, 0);
  EXPECT_LT(B2, B1);
  EXPECT_LT(B4, B2);
}

TEST(TemporalExecutorTest, SimulatorProjectionMatchesExecutorAccounting) {
  // The simulator prices temporal plans from the plan alone; its shared
  // traffic projection must replicate the executor's transfer accounting
  // exactly — this is what lets PlanAdvisor pick T without running.
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(24, 18, 12, mpdataHaloDepth());
  for (Strategy Strat :
       {Strategy::Original, Strategy::Block31D, Strategy::IslandsOfCores})
    for (int T : {1, 2, 4}) {
      ExecutionPlan Plan = makePlan(M, Dom, Strat, T);
      int64_t Projected = projectedSharedBytesPerStep(Plan, M.Program);
      ProgramExecutor Exec(M.Program, buildMpdataKernels(), Dom,
                           std::move(Plan));
      EXPECT_EQ(Projected, Exec.sharedBytesPerStep())
          << strategyName(Strat) << " T=" << T;
    }
}

TEST(TemporalExecutorTest, ChaosReplayIsDeterministicAtDepthTwo) {
  // Same seed + same plan => bit-identical state and identical injector
  // counters, with temporal blocking active.
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  auto run = [&](uint64_t Seed) {
    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.StallRate = 0.2;
    Plan.WakeRate = 0.2;
    Plan.MaxStallSeconds = 2e-4;
    FaultInjector Injector(Plan);
    ExecutorOptions Opts;
    Opts.Chaos = &Injector;
    ProgramExecutor Exec(M.Program, buildMpdataKernels(), Dom,
                         makePlan(M, Dom, Strategy::IslandsOfCores, 2),
                         Opts);
    initMpdata(Exec, M, Dom);
    Exec.run(4);
    Array3D Out(Dom.allocBox());
    Out.copyRegionFrom(Exec.array(M.XIn), Dom.coreBox());
    return std::make_pair(std::move(Out), Injector.stats().Injected);
  };
  auto A = run(42);
  auto B = run(42);
  EXPECT_EQ(A.first.maxAbsDiff(B.first, Dom.coreBox()), 0.0);
  EXPECT_EQ(A.second, B.second);
  // And chaos must not perturb the data: still the serial answer.
  Array3D Oracle = serialOracle(M, Dom, 4);
  EXPECT_EQ(A.first.maxAbsDiff(Oracle, Dom.coreBox()), 0.0);
}

TEST(TemporalExecutorTest, RejectsPartialEpochs) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  ProgramExecutor Exec(M.Program, buildMpdataKernels(), Dom,
                       makePlan(M, Dom, Strategy::IslandsOfCores, 2));
  initMpdata(Exec, M, Dom);
  EXPECT_DEATH(Exec.run(3), "whole number of temporal epochs");
}

TEST(TemporalExecutorTest, RejectsNonPeriodicBoundaries) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth(), BoundaryMode::ZeroGradient);
  EXPECT_DEATH(ProgramExecutor(M.Program, buildMpdataKernels(), Dom,
                               makePlan(M, Dom, Strategy::IslandsOfCores,
                                        2)),
               "[Pp]eriodic");
}

TEST(TemporalPlanVerifierTest, RejectsOutOfOrderSteps) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  ExecutionPlan Plan = makePlan(M, Dom, Strategy::IslandsOfCores, 2);
  ASSERT_GE(Plan.Islands[0].Blocks.size(), 2u);
  // Swap the first two blocks' step stamps: step order now decreases.
  std::swap(Plan.Islands[0].Blocks.front().StepInEpoch,
            Plan.Islands[0].Blocks.back().StepInEpoch);
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
}

TEST(TemporalPlanVerifierTest, RejectsInvalidDepth) {
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(16, 12, 8, mpdataHaloDepth());
  ExecutionPlan Plan = makePlan(M, Dom, Strategy::IslandsOfCores, 1);
  Plan.TemporalDepth = 0;
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
}
