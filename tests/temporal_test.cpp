//===- tests/temporal_test.cpp - Temporal blocking correctness tests ------===//
//
// Bit-exactness and safety of temporally blocked plans (TemporalDepth > 1):
// every strategy x kernel backend x depth must reproduce the serial result
// exactly, barrier elision and the race check must stay green on fused
// plans, the chaos harness must replay deterministically at T > 1, and the
// executor must reject configurations the epoch protocol cannot honour.
// Runs on the registered MPDATA workload through the shared TestMatrix
// scaffolding; the per-workload generalization of the bit-exactness sweeps
// lives in workload_conformance_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "TestMatrix.h"

#include "apps/Workloads.h"
#include "core/PlanVerifier.h"
#include "exec/ScheduleCheck.h"
#include "fault/FaultInjector.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

using namespace icores;

namespace {

const WorkloadSpec &mpdata() { return *builtinWorkloads().find("mpdata"); }

} // namespace

TEST(TemporalPlanTest, FusedPlansVerifyAndPassTheRaceCheck) {
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 18, 12, 8);
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores})
    for (int T : {1, 2, 4})
      for (bool Elide : {false, true}) {
        ExecutionPlan Plan = makeTestPlan(M.Program, Dom, Strat, T, Elide);
        EXPECT_EQ(Plan.TemporalDepth, T);
        PlanVerification V = verifyPlan(Plan, M.Program);
        EXPECT_TRUE(V.Ok) << strategyName(Strat) << " T=" << T
                          << " elide=" << Elide << ": " << V.FirstError;
        DiagnosticEngine Diags;
        EXPECT_TRUE(checkPlanRaces(M.Program, Plan, Diags))
            << strategyName(Strat) << " T=" << T << " elide=" << Elide
            << ": " << Diags.firstErrorMessage();
      }
}

TEST(TemporalPlanTest, BlocksAreStampedWithIncreasingStepsInEpoch) {
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 18, 12, 8);
  ExecutionPlan Plan =
      makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, 4);
  for (const IslandPlan &Island : Plan.Islands) {
    int Cur = 0;
    bool SawFinal = false;
    for (const BlockTask &Block : Island.Blocks) {
      EXPECT_GE(Block.StepInEpoch, Cur);
      EXPECT_LT(Block.StepInEpoch, 4);
      Cur = Block.StepInEpoch;
      SawFinal = SawFinal || Block.StepInEpoch == 3;
    }
    EXPECT_TRUE(SawFinal);
  }
}

TEST(TemporalExecutorTest, BitExactAcrossDepthsStrategiesAndBackends) {
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 18, 12, 8);
  const int Steps = 4;
  auto Oracle = serialOracle(M, Dom, Steps);
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores})
    for (int T : {1, 2, 4})
      for (KernelVariant V : {KernelVariant::Reference,
                              KernelVariant::Optimized,
                              KernelVariant::Simd}) {
        auto Exec = makeWorkloadExecutor(
            M, Dom, makeTestPlan(M.Program, Dom, Strat, T), V);
        Exec->run(Steps);
        EXPECT_EQ(
            maxNewestStateDiff(M.Program, *Exec, *Oracle, Dom.coreBox()),
            0.0)
            << strategyName(Strat) << " T=" << T << " variant="
            << kernelVariantName(V);
      }
}

TEST(TemporalExecutorTest, BitExactUnderBothBarrierPoliciesAndElision) {
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 18, 12, 8);
  const int Steps = 4;
  auto Oracle = serialOracle(M, Dom, Steps);
  for (TeamBarrier::WaitPolicy Policy : {TeamBarrier::WaitPolicy::Spin,
                                         TeamBarrier::WaitPolicy::Block})
    for (bool Elide : {false, true}) {
      ExecutorOptions Opts;
      Opts.BarrierPolicy = Policy;
      auto Exec = makeWorkloadExecutor(
          M, Dom,
          makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, 2, Elide),
          KernelVariant::Optimized, Opts);
      Exec->run(Steps);
      EXPECT_EQ(
          maxNewestStateDiff(M.Program, *Exec, *Oracle, Dom.coreBox()),
          0.0)
          << "elide=" << Elide;
    }
}

TEST(TemporalExecutorTest, MultipleEpochsMatchOneLongRun) {
  // run(2) + run(4) at T = 2 must equal run(6) at T = 2 and the oracle.
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 16, 12, 8);
  auto make = [&]() {
    return makeWorkloadExecutor(
        M, Dom, makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, 2));
  };
  auto Split = make();
  Split->run(2);
  Split->run(4);
  auto Whole = make();
  Whole->run(6);
  EXPECT_EQ(maxNewestStateDiff(M.Program, *Split, *Whole, Dom.coreBox()),
            0.0);
  auto Oracle = serialOracle(M, Dom, 6);
  EXPECT_EQ(maxNewestStateDiff(M.Program, *Whole, *Oracle, Dom.coreBox()),
            0.0);
}

TEST(TemporalExecutorTest, SharedTrafficPerStepShrinksWithDepth) {
  // The fused-step import cones widen by the halo depth per extra step, so
  // temporal reuse only pays on grids where the core dominates the halo;
  // tiny boxes would make redundant imports outweigh the saved re-reads.
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 64, 48, 48);
  auto bytesPerStep = [&](int T) {
    auto Exec = makeWorkloadExecutor(
        M, Dom, makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, T));
    return Exec->sharedBytesPerStep();
  };
  int64_t B1 = bytesPerStep(1);
  int64_t B2 = bytesPerStep(2);
  int64_t B4 = bytesPerStep(4);
  EXPECT_GT(B1, 0);
  EXPECT_LT(B2, B1);
  EXPECT_LT(B4, B2);
}

TEST(TemporalExecutorTest, SimulatorProjectionMatchesExecutorAccounting) {
  // The simulator prices temporal plans from the plan alone; its shared
  // traffic projection must replicate the executor's transfer accounting
  // exactly — this is what lets PlanAdvisor pick T without running.
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 24, 18, 12);
  for (Strategy Strat :
       {Strategy::Original, Strategy::Block31D, Strategy::IslandsOfCores})
    for (int T : {1, 2, 4}) {
      ExecutionPlan Plan = makeTestPlan(M.Program, Dom, Strat, T);
      int64_t Projected = projectedSharedBytesPerStep(Plan, M.Program);
      auto Exec = makeWorkloadExecutor(M, Dom, std::move(Plan));
      EXPECT_EQ(Projected, Exec->sharedBytesPerStep())
          << strategyName(Strat) << " T=" << T;
    }
}

TEST(TemporalExecutorTest, ChaosReplayIsDeterministicAtDepthTwo) {
  // Same seed + same plan => bit-identical state and identical injector
  // counters, with temporal blocking active.
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 16, 12, 8);
  ArrayId State = newestStateArrays(M.Program).front();
  auto run = [&](uint64_t Seed) {
    FaultPlan Plan;
    Plan.Seed = Seed;
    Plan.StallRate = 0.2;
    Plan.WakeRate = 0.2;
    Plan.MaxStallSeconds = 2e-4;
    FaultInjector Injector(Plan);
    ExecutorOptions Opts;
    Opts.Chaos = &Injector;
    auto Exec = makeWorkloadExecutor(
        M, Dom, makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, 2),
        KernelVariant::Reference, Opts);
    Exec->run(4);
    Array3D Out(Dom.allocBox());
    Out.copyRegionFrom(Exec->array(State), Dom.coreBox());
    return std::make_pair(std::move(Out), Injector.stats().Injected);
  };
  auto A = run(42);
  auto B = run(42);
  EXPECT_EQ(A.first.maxAbsDiff(B.first, Dom.coreBox()), 0.0);
  EXPECT_EQ(A.second, B.second);
  // And chaos must not perturb the data: still the serial answer.
  auto Oracle = serialOracle(M, Dom, 4);
  EXPECT_EQ(A.first.maxAbsDiff(Oracle->array(State), Dom.coreBox()), 0.0);
}

TEST(TemporalExecutorTest, RejectsPartialEpochs) {
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 16, 12, 8);
  auto Exec = makeWorkloadExecutor(
      M, Dom, makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, 2));
  EXPECT_DEATH(Exec->run(3), "whole number of temporal epochs");
}

TEST(TemporalExecutorTest, RejectsNonPeriodicBoundaries) {
  const WorkloadSpec &M = mpdata();
  Domain Dom =
      workloadDomain(M, 16, 12, 8, BoundaryMode::ZeroGradient);
  EXPECT_DEATH(
      makeWorkloadExecutor(
          M, Dom, makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, 2)),
      "[Pp]eriodic");
}

TEST(TemporalPlanVerifierTest, RejectsOutOfOrderSteps) {
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 16, 12, 8);
  ExecutionPlan Plan =
      makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, 2);
  ASSERT_GE(Plan.Islands[0].Blocks.size(), 2u);
  // Swap the first two blocks' step stamps: step order now decreases.
  std::swap(Plan.Islands[0].Blocks.front().StepInEpoch,
            Plan.Islands[0].Blocks.back().StepInEpoch);
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
}

TEST(TemporalPlanVerifierTest, RejectsInvalidDepth) {
  const WorkloadSpec &M = mpdata();
  Domain Dom = workloadDomain(M, 16, 12, 8);
  ExecutionPlan Plan =
      makeTestPlan(M.Program, Dom, Strategy::IslandsOfCores, 1);
  Plan.TemporalDepth = 0;
  PlanVerification V = verifyPlan(Plan, M.Program);
  EXPECT_FALSE(V.Ok);
}
