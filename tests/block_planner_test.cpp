//===- tests/block_planner_test.cpp - (3+1)D block planner tests ----------===//

#include "core/BlockPlanner.h"
#include "core/Partition.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/HaloAnalysis.h"

#include <gtest/gtest.h>

#include <map>

using namespace icores;

namespace {

struct PlannerFixture : public ::testing::Test {
  MpdataProgram M = buildMpdataProgram();
  Box3 Target = Box3::fromExtents(48, 16, 8);
};

/// Expected per-stage regions: island cones clipped to global regions.
std::vector<Box3> expectedRegions(const StencilProgram &P, const Box3 &Part,
                                  const Box3 &Global) {
  RegionRequirements Local = computeRequirements(P, Part);
  RegionRequirements Glob = computeRequirements(P, Global);
  std::vector<Box3> R(P.numStages());
  for (unsigned S = 0; S != P.numStages(); ++S)
    R[S] = Local.StageRegion[S].intersect(Glob.StageRegion[S]);
  return R;
}

} // namespace

TEST_F(PlannerFixture, SingleBlockMatchesRequirements) {
  std::vector<BlockTask> Blocks =
      planSingleBlock(M.Program, Target, Target);
  ASSERT_EQ(Blocks.size(), 1u);
  std::vector<Box3> Expected = expectedRegions(M.Program, Target, Target);
  ASSERT_EQ(Blocks[0].Passes.size(), M.Program.numStages());
  for (const StagePass &Pass : Blocks[0].Passes)
    EXPECT_EQ(Pass.Region, Expected[static_cast<size_t>(Pass.Stage)])
        << "stage " << M.Program.stage(Pass.Stage).Name;
}

TEST_F(PlannerFixture, HwmBlocksTileStageRegionsExactly) {
  // Per stage: pass regions across blocks must be disjoint, consecutive,
  // and union to the island's full stage region — no recomputation within
  // an island (scenario 1 inside, scenario 2 outside).
  for (int Thickness : {1, 3, 7, 48}) {
    std::vector<BlockTask> Blocks =
        planIslandBlocks(M.Program, Target, Target, Thickness);
    std::vector<Box3> Expected = expectedRegions(M.Program, Target, Target);
    std::map<StageId, Box3> Covered;
    std::map<StageId, int> LastEnd;
    for (const BlockTask &Block : Blocks) {
      for (const StagePass &Pass : Block.Passes) {
        ASSERT_FALSE(Pass.Region.empty());
        auto It = LastEnd.find(Pass.Stage);
        if (It != LastEnd.end()) {
          EXPECT_EQ(Pass.Region.Lo[0], It->second) << "gap or overlap";
        }
        LastEnd[Pass.Stage] = Pass.Region.Hi[0];
        Box3 &Un = Covered[Pass.Stage];
        Un = Un.unionWith(Pass.Region);
      }
    }
    for (unsigned S = 0; S != M.Program.numStages(); ++S)
      EXPECT_EQ(Covered[static_cast<StageId>(S)],
                Expected[S])
          << "thickness " << Thickness << " stage "
          << M.Program.stage(static_cast<StageId>(S)).Name;
  }
}

TEST_F(PlannerFixture, HwmRespectsProducerConsumerOrder) {
  // When a pass runs, every producer value it reads must already have been
  // computed by an earlier pass (earlier block, or earlier stage in the
  // same block).
  std::vector<BlockTask> Blocks =
      planIslandBlocks(M.Program, Target, Target, 5);
  std::vector<Box3> Done(M.Program.numStages());
  for (const BlockTask &Block : Blocks) {
    // Within a block passes execute in stage order; track incrementally.
    for (const StagePass &Pass : Block.Passes) {
      for (const StageInput &In : M.Program.stage(Pass.Stage).Inputs) {
        StageId Producer = M.Program.producerOf(In.Array);
        if (Producer == NoStage)
          continue;
        EXPECT_TRUE(Done[static_cast<size_t>(Producer)].containsBox(
            In.readRegion(Pass.Region)))
            << "stage " << M.Program.stage(Pass.Stage).Name
            << " reads not-yet-computed values of "
            << M.Program.stage(Producer).Name;
      }
      Box3 &D = Done[static_cast<size_t>(Pass.Stage)];
      D = D.unionWith(Pass.Region);
    }
  }
}

TEST_F(PlannerFixture, IslandConesIncludedAtPartBoundaries) {
  std::vector<Box3> Parts = partition1D(Target, 3, 0);
  // Middle part: its stage regions must extend beyond the part target on
  // both sides (redundant computation replacing halo exchange).
  std::vector<BlockTask> Blocks =
      planIslandBlocks(M.Program, Parts[1], Target, 4);
  Box3 UpwindUnion;
  for (const BlockTask &Block : Blocks)
    for (const StagePass &Pass : Block.Passes)
      if (Pass.Stage == M.SUpwind)
        UpwindUnion = UpwindUnion.unionWith(Pass.Region);
  EXPECT_LT(UpwindUnion.Lo[0], Parts[1].Lo[0]);
  EXPECT_GT(UpwindUnion.Hi[0], Parts[1].Hi[0]);
}

TEST_F(PlannerFixture, FinalStageCoversExactlyThePart) {
  std::vector<Box3> Parts = partition1D(Target, 3, 0);
  for (const Box3 &Part : Parts) {
    std::vector<BlockTask> Blocks =
        planIslandBlocks(M.Program, Part, Target, 4);
    Box3 OutUnion;
    for (const BlockTask &Block : Blocks)
      for (const StagePass &Pass : Block.Passes)
        if (Pass.Stage == M.SOut)
          OutUnion = OutUnion.unionWith(Pass.Region);
    EXPECT_EQ(OutUnion, Part); // Islands write disjoint output parts.
  }
}

TEST_F(PlannerFixture, BlockThicknessScalesWithBudget) {
  int Thin = blockThickness(M.Program, Target, 1 << 16);
  int Thick = blockThickness(M.Program, Target, 1 << 24);
  EXPECT_GE(Thin, 1);
  EXPECT_GT(Thick, Thin);
}

TEST_F(PlannerFixture, BlockCountMatchesThickness) {
  std::vector<BlockTask> Blocks =
      planIslandBlocks(M.Program, Target, Target, 10);
  EXPECT_EQ(Blocks.size(), 5u); // ceil(48 / 10).
  // Block targets tile the part.
  int Lo = Target.Lo[0];
  for (const BlockTask &Block : Blocks) {
    EXPECT_EQ(Block.Target.Lo[0], Lo);
    Lo = Block.Target.Hi[0];
  }
  EXPECT_EQ(Lo, Target.Hi[0]);
}
