//===- examples/scenario_tradeoff.cpp - The paper's Fig. 1, executable ----===//
//
// Reconstructs the idea of Fig. 1: a chain of three 1D stencil stages run
// by two processors, contrasting
//   scenario 1: exchange halo values between CPUs (transfers + syncs), and
//   scenario 2: recompute the needed values locally (extra elements, no
//               transfers within the step),
// first on the toy chain (counting transfers/extra elements exactly from
// the dependence analysis), then at full MPDATA scale on two machine
// models: the real UV 2000 interconnect and a hypothetically ideal one.
//
//===----------------------------------------------------------------------===//

#include "core/Partition.h"
#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/Simulator.h"
#include "stencil/ExtraElements.h"
#include "stencil/HaloAnalysis.h"

#include <cstdio>

using namespace icores;

namespace {

/// The Fig. 1 chain: in -> A -> B -> C, each stage reading {-1, 0, +1}.
struct ToyChain {
  StencilProgram Program;
  ArrayId In, A, B, C;
};

ToyChain buildToyChain() {
  ToyChain T{};
  T.In = T.Program.addArray("in", ArrayRole::StepInput);
  T.A = T.Program.addArray("A", ArrayRole::Intermediate);
  T.B = T.Program.addArray("B", ArrayRole::Intermediate);
  T.C = T.Program.addArray("C", ArrayRole::StepOutput);
  ArrayId Prev = T.In;
  for (ArrayId Out : {T.A, T.B, T.C}) {
    StageDef S;
    S.Name = T.Program.array(Out).Name;
    S.Outputs = {Out};
    S.Inputs = {StageInput::alongDim(Prev, 0, -1, 1)};
    S.FlopsPerPoint = 2;
    T.Program.addStage(S);
    Prev = Out;
  }
  return T;
}

} // namespace

int main() {
  std::printf("=== Fig. 1: two scenarios for parallelizing a 3-stage "
              "stencil chain ===\n\n");

  // --- Part 1: the toy chain, counted exactly --------------------------
  ToyChain T = buildToyChain();
  Box3 Cells = Box3::fromExtents(16, 1, 1);
  std::vector<Box3> Halves = partition1D(Cells, 2, 0);

  // Scenario 1: each CPU computes only its half of every stage; values
  // crossing the cut must be transferred, and every stage needs a sync.
  RegionRequirements Global = computeRequirements(T.Program, Cells);
  int Transfers = 0;
  for (unsigned S = 0; S != T.Program.numStages(); ++S) {
    for (const StageInput &In : T.Program.stage(S).Inputs) {
      if (T.Program.producerOf(In.Array) == NoStage)
        continue;
      // Values of the producer needed across the cut, per side.
      Transfers += In.MaxOff[0];   // Left CPU needs right CPU's values.
      Transfers += -In.MinOff[0];  // And vice versa.
    }
  }
  std::printf("scenario 1 (exchange): %d element transfers + %u "
              "synchronization points per step\n",
              Transfers, T.Program.numStages());

  // Scenario 2: each CPU grows its regions by the dependence cone.
  ExtraElementsReport Extra = countExtraElements(T.Program, Cells, Halves);
  std::printf("scenario 2 (recompute): %lld extra elements per step, "
              "0 transfers, 0 intra-step syncs\n",
              static_cast<long long>(Extra.extraPoints()));
  std::printf("  (the paper's Fig. 1 counts 3 extra elements for one-sided "
              "dependencies; our symmetric {-1,0,+1} chain needs %lld on "
              "each side of the cut)\n\n",
              static_cast<long long>(Extra.extraPoints()));
  (void)Global;

  // --- Part 2: the same trade-off at MPDATA scale ----------------------
  std::printf("=== The trade-off at MPDATA scale (1024x512x64, P=14) "
              "===\n\n");
  MpdataProgram M = buildMpdataProgram();
  Box3 Grid = Box3::fromExtents(1024, 512, 64);

  auto timeFor = [&](const MachineModel &Machine, Strategy Strat) {
    PlanConfig Config;
    Config.Strat = Strat;
    Config.Sockets = 14;
    ExecutionPlan Plan = buildPlan(M.Program, Grid, Machine, Config);
    return simulate(Plan, M.Program, Machine, 50).TotalSeconds;
  };

  MachineModel Real = makeSgiUv2000();
  MachineModel Ideal = makeSgiUv2000();
  Ideal.Name = "hypothetical UV 2000 with a 50x interconnect";
  Ideal.LinkBandwidth *= 50.0;
  Ideal.BarrierPerSocket /= 50.0;
  Ideal.BarrierQuadratic /= 50.0;

  for (const MachineModel *Machine : {&Real, &Ideal}) {
    double Exchange = timeFor(*Machine, Strategy::Block31D);
    double Recompute = timeFor(*Machine, Strategy::IslandsOfCores);
    std::printf("%s:\n", Machine->Name.c_str());
    std::printf("  scenario 1 ((3+1)D, exchange):      %6.2f s\n", Exchange);
    std::printf("  scenario 2 (islands, recompute):    %6.2f s  -> %s by "
                "%.1fx\n\n",
                Recompute,
                Recompute < Exchange ? "recompute wins" : "exchange wins",
                Recompute < Exchange ? Exchange / Recompute
                                     : Recompute / Exchange);
  }
  std::printf("conclusion (Sect. 4.1): replicated computation suits "
              "powerful CPUs behind a relatively slow interconnect; "
              "exchange suits fast networks — inside one socket the "
              "islands run scenario 1, across sockets scenario 2.\n");
  return 0;
}
