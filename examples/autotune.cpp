//===- examples/autotune.cpp - Model-driven configuration tuning ----------===//
//
// Uses the PlanAdvisor (the paper's future-work performance model) to rank
// every candidate configuration for a given machine and grid, then prints
// the winner's per-array DRAM traffic breakdown (likwid-perfctr style).
//
// Run:  ./autotune [--machine=uv2000|knc|xeon] [--sockets=N]
//                  [--ni=1024 --nj=512 --nk=64 --steps=50]
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/PlanAdvisor.h"
#include "sim/TrafficReport.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;

int main(int Argc, char **Argv) {
  CommandLine CL;
  CL.registerOption("machine", "uv2000 (default), knc, or xeon");
  CL.registerOption("sockets", "sockets to use (default: all)");
  CL.registerOption("ni", "grid cells along i (default 1024)");
  CL.registerOption("nj", "grid cells along j (default 512)");
  CL.registerOption("nk", "grid cells along k (default 64)");
  CL.registerOption("steps", "time steps (default 50)");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n%s", Error.c_str(),
                 CL.helpText().c_str());
    return 1;
  }

  std::string Name = CL.getString("machine", "uv2000");
  MachineModel Machine;
  if (Name == "uv2000") {
    Machine = makeSgiUv2000();
  } else if (Name == "knc") {
    Machine = makeXeonPhiKnc();
  } else if (Name == "xeon") {
    Machine = makeXeonE5_2660v2();
  } else {
    std::fprintf(stderr, "error: unknown machine '%s'\n", Name.c_str());
    return 1;
  }
  int Sockets =
      static_cast<int>(CL.getInt("sockets", Machine.NumSockets));
  int Steps = static_cast<int>(CL.getInt("steps", 50));
  Box3 Grid = Box3::fromExtents(static_cast<int>(CL.getInt("ni", 1024)),
                                static_cast<int>(CL.getInt("nj", 512)),
                                static_cast<int>(CL.getInt("nk", 64)));

  std::printf("autotuning MPDATA on %s (%d sockets), grid %dx%dx%d, %d "
              "steps\n\n",
              Machine.Name.c_str(), Sockets, Grid.extent(0), Grid.extent(1),
              Grid.extent(2), Steps);

  MpdataProgram M = buildMpdataProgram();
  AdvisorReport Report =
      adviseBestPlan(M.Program, Grid, Machine, Sockets, Steps);

  TablePrinter Table({"rank", "configuration", "predicted time",
                      "Gflop/s", "vs best"});
  for (size_t I = 0; I != Report.Candidates.size(); ++I) {
    const AdvisorCandidate &C = Report.Candidates[I];
    Table.addRow({formatString("%zu", I + 1), C.Label,
                  formatSeconds(C.Result.TotalSeconds),
                  formatString("%.1f", C.Result.sustainedGflops()),
                  formatString("%.2fx", C.Result.TotalSeconds /
                                            Report.best()
                                                .Result.TotalSeconds)});
  }
  Table.print(outs());

  std::printf("\npredicted DRAM traffic of the winner (%s):\n\n",
              Report.best().Label.c_str());
  ExecutionPlan BestPlan =
      buildPlan(M.Program, Grid, Machine, Report.best().Config);
  TrafficReport Traffic = accountTraffic(BestPlan, M.Program, Machine, Steps);
  Traffic.print(outs());
  return 0;
}
