//===- examples/scaling_study.cpp - Strategy selection across machines ----===//
//
// A capacity-planning study: for a family of SMP/NUMA machine shapes
// (varying socket counts and interconnect quality), predict the execution
// time of the three MPDATA strategies with the performance model and
// report which one a scheduler should pick. Demonstrates using the
// library's planner + simulator as a what-if tool rather than a
// reproduction harness.
//
// Run:  ./scaling_study [--ni=1024 --nj=512 --nk=64 --steps=50]
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/Simulator.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <cstdio>

using namespace icores;

int main(int Argc, char **Argv) {
  CommandLine CL;
  CL.registerOption("ni", "grid cells along i (default 1024)");
  CL.registerOption("nj", "grid cells along j (default 512)");
  CL.registerOption("nk", "grid cells along k (default 64)");
  CL.registerOption("steps", "time steps (default 50)");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  int NI = static_cast<int>(CL.getInt("ni", 1024));
  int NJ = static_cast<int>(CL.getInt("nj", 512));
  int NK = static_cast<int>(CL.getInt("nk", 64));
  int Steps = static_cast<int>(CL.getInt("steps", 50));
  Box3 Grid = Box3::fromExtents(NI, NJ, NK);

  std::printf("strategy selection study: %dx%dx%d grid, %d steps\n\n", NI,
              NJ, NK, Steps);

  MpdataProgram M = buildMpdataProgram();

  struct MachineCase {
    const char *Label;
    double LinkScale;
    int Sockets;
  };
  const MachineCase Cases[] = {
      {"1-socket workstation", 1.0, 1},
      {"2-socket server", 4.0, 2}, // QPI-class: fast local interconnect.
      {"4-socket server", 2.0, 4},
      {"8-node NUMA (fast links)", 4.0, 8},
      {"8-node NUMA (slow links)", 0.5, 8},
      {"UV 2000 (14 nodes)", 1.0, 14},
  };

  TablePrinter Table({"machine", "original [s]", "(3+1)D [s]",
                      "islands [s]", "best strategy", "vs runner-up"});
  for (const MachineCase &C : Cases) {
    MachineModel Machine = makeSgiUv2000();
    Machine.LinkBandwidth *= C.LinkScale;
    Machine.BarrierPerSocket /= C.LinkScale;
    Machine.BarrierQuadratic /= C.LinkScale;

    double Times[3];
    Strategy Strategies[3] = {Strategy::Original, Strategy::Block31D,
                              Strategy::IslandsOfCores};
    for (int S = 0; S != 3; ++S) {
      PlanConfig Config;
      Config.Strat = Strategies[S];
      Config.Sockets = C.Sockets;
      ExecutionPlan Plan = buildPlan(M.Program, Grid, Machine, Config);
      Times[S] = simulate(Plan, M.Program, Machine, Steps).TotalSeconds;
    }
    int Best = 0;
    for (int S = 1; S != 3; ++S)
      if (Times[S] < Times[Best])
        Best = S;
    double RunnerUp = 1e300;
    for (int S = 0; S != 3; ++S)
      if (S != Best && Times[S] < RunnerUp)
        RunnerUp = Times[S];
    Table.addRow({C.Label, formatString("%.2f", Times[0]),
                  formatString("%.2f", Times[1]),
                  formatString("%.2f", Times[2]),
                  strategyName(Strategies[Best]),
                  formatString("%.2fx", RunnerUp / Times[Best])});
  }
  Table.print(outs());
  std::printf("\nreading: islands-of-cores dominates multi-socket NUMA "
              "shapes; on one socket it degenerates to the (3+1)D "
              "decomposition, which is the right choice there.\n");
  return 0;
}
