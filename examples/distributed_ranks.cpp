//===- examples/distributed_ranks.cpp - MPI-style distributed MPDATA ------===//
//
// Demonstrates the future-work distributed extension: the domain is slab-
// decomposed across ranks (threads standing in for MPI processes), input
// halos travel by explicit messages once per step, and each rank
// recomputes its inter-rank dependence cones — the islands-of-cores idea
// at cluster granularity. Verifies against the serial reference and prints
// the stage dependence graph that drives the cone analysis.
//
// Run:  ./distributed_ranks [--ranks=4 --ni=32 --nj=16 --nk=8 --steps=10]
//                           [--dot]   (print the DOT stage graph instead)
//
//===----------------------------------------------------------------------===//

#include "dist/DistributedSolver.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "stencil/GraphExport.h"
#include "support/CommandLine.h"
#include "support/OStream.h"

#include <cmath>
#include <cstdio>

using namespace icores;

int main(int Argc, char **Argv) {
  CommandLine CL;
  CL.registerOption("ranks", "number of ranks (default 4)");
  CL.registerOption("ni", "grid cells along i (default 32)");
  CL.registerOption("nj", "grid cells along j (default 16)");
  CL.registerOption("nk", "grid cells along k (default 8)");
  CL.registerOption("steps", "time steps (default 10)");
  CL.registerOption("dot", "print the stage graph as Graphviz DOT and exit");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (CL.hasOption("dot")) {
    MpdataProgram M = buildMpdataProgram();
    exportProgramDot(M.Program, outs());
    return 0;
  }

  int Ranks = static_cast<int>(CL.getInt("ranks", 4));
  int NI = static_cast<int>(CL.getInt("ni", 32));
  int NJ = static_cast<int>(CL.getInt("nj", 16));
  int NK = static_cast<int>(CL.getInt("nk", 8));
  int Steps = static_cast<int>(CL.getInt("steps", 10));

  std::printf("distributed MPDATA: %d ranks over a %dx%dx%d grid, %d "
              "steps\n\n",
              Ranks, NI, NJ, NK, Steps);

  std::printf("the 17-stage program each rank executes:\n");
  {
    MpdataProgram M = buildMpdataProgram();
    exportProgramText(M.Program, outs());
  }
  std::printf("\n");

  // A smooth tracer bump plus diagonal wind, expressible pointwise so each
  // rank initializes its slab locally.
  DistributedInit Init;
  Init.State = [NI, NJ, NK](int I, int J, int K) {
    double DI = (I - NI / 2.0) / (NI / 6.0);
    double DJ = (J - NJ / 2.0) / (NJ / 6.0);
    double DK = (K - NK / 2.0) / (NK / 6.0);
    return 0.1 + std::exp(-(DI * DI + DJ * DJ + DK * DK));
  };
  Init.U1 = [](int, int, int) { return 0.3; };
  Init.U2 = [](int, int, int) { return 0.2; };
  Init.U3 = [](int, int, int) { return -0.1; };
  Init.H = [](int, int, int) { return 1.0; };

  Array3D Distributed =
      runDistributedMpdata(Ranks, NI, NJ, NK, Steps, Init);

  // Serial reference for comparison.
  ReferenceSolver Solver(NI, NJ, NK);
  for (int I = 0; I != NI; ++I)
    for (int J = 0; J != NJ; ++J)
      for (int K = 0; K != NK; ++K) {
        Solver.stateIn().at(I, J, K) = Init.State(I, J, K);
        Solver.velocity(0).at(I, J, K) = Init.U1(I, J, K);
        Solver.velocity(1).at(I, J, K) = Init.U2(I, J, K);
        Solver.velocity(2).at(I, J, K) = Init.U3(I, J, K);
      }
  Solver.prepareCoefficients();
  Solver.run(Steps);

  double MaxDiff =
      Distributed.maxAbsDiff(Solver.state(), Box3::fromExtents(NI, NJ, NK));
  std::printf("max |distributed - serial reference| = %.3e %s\n", MaxDiff,
              MaxDiff == 0.0 ? "(bit-exact)" : "");
  std::printf("per step, each rank sent 2 halo messages of %d planes and "
              "recomputed its neighbour cones locally — no other "
              "communication.\n",
              mpdataHaloDepth());
  return MaxDiff == 0.0 ? 0 : 1;
}
