//===- examples/weather_advection.cpp - NWP-style moisture transport ------===//
//
// A scenario shaped like MPDATA's home application (the EULAG dynamic core
// used in numerical weather prediction): a moisture plume carried around a
// cyclonic (solid-body) wind field over many time steps, computed with the
// islands-of-cores executor. Prints conservation/extremum diagnostics and
// an ASCII rendering of a horizontal slice as the plume rotates.
//
// Run:  ./weather_advection [--size=48 --steps=120 --islands=2]
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "exec/PlanExecutor.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/CommandLine.h"

#include <algorithm>
#include <cstdio>

using namespace icores;

namespace {

/// Renders the k-midplane of the field as ASCII shades.
void renderSlice(const Array3D &Field, const Domain &Dom) {
  static const char Shades[] = " .:-=+*#%@";
  int K = Dom.nk() / 2;
  double Max = 0.0;
  for (int I = 0; I != Dom.ni(); ++I)
    for (int J = 0; J != Dom.nj(); ++J)
      Max = std::max(Max, Field.at(I, J, K));
  for (int J = Dom.nj() - 1; J >= 0; J -= 2) { // Halve rows for aspect.
    std::printf("    ");
    for (int I = 0; I != Dom.ni(); ++I) {
      double V = Field.at(I, J, K) / (Max > 0 ? Max : 1.0);
      int Level = std::min(9, static_cast<int>(V * 9.99));
      std::putchar(Shades[Level]);
    }
    std::putchar('\n');
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL;
  CL.registerOption("size", "horizontal grid size (default 48)");
  CL.registerOption("steps", "time steps (default 120)");
  CL.registerOption("islands", "number of islands (default 2)");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  int N = static_cast<int>(CL.getInt("size", 48));
  int Steps = static_cast<int>(CL.getInt("steps", 120));
  int Islands = static_cast<int>(CL.getInt("islands", 2));

  std::printf("moisture plume in a cyclonic wind field: %dx%dx8 grid, %d "
              "steps, %d islands\n\n",
              N, N, Steps, Islands);

  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = Islands;
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(N, N, 8, mpdataHaloDepth());
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = Islands;
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  PlanExecutor Exec(Dom, std::move(Plan));

  // Moisture plume off-centre; cyclone centred mid-domain. Omega is kept
  // small enough that the largest Courant number stays stable.
  GaussianBlob Plume;
  Plume.CenterI = N * 0.5;
  Plume.CenterJ = N * 0.75;
  Plume.Sigma = N / 12.0;
  Plume.CenterK = 4.0;
  Plume.Background = 0.02; // Ambient humidity.
  fillGaussian(Exec.stateIn(), Dom, Plume);
  double Omega = 0.8 / N; // Max Courant ~0.4 at the domain edge.
  setRotationalVelocity(Exec.velocity(0), Exec.velocity(1),
                        Exec.velocity(2), Dom, Omega, N / 2.0, N / 2.0);
  Exec.prepareCoefficients();

  double Mass0 = Exec.conservedMass();
  int Quarter = Steps / 4;
  for (int Leg = 0; Leg != 4; ++Leg) {
    Exec.run(Quarter);
    double Peak = 0.0;
    Box3 Core = Dom.coreBox();
    for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
      for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
        for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
          Peak = std::max(Peak, Exec.state().at(I, J, K));
    std::printf("after %3d steps: mass drift %+.2e, plume peak %.3f\n",
                (Leg + 1) * Quarter,
                (Exec.conservedMass() - Mass0) / Mass0, Peak);
    renderSlice(Exec.state(), Dom);
    std::printf("\n");
  }
  std::printf("mass conserved to round-off; the plume rotates with the "
              "wind while staying positive and bounded\n");
  return 0;
}
