//===- examples/custom_stencil.cpp - Bring your own stencil program -------===//
//
// Shows how a downstream user plugs a NEW set of heterogeneous stencils
// into the islands-of-cores machinery: describe the stages once in the IR,
// register kernels, and every library facility — dependence-cone analysis,
// redundancy accounting, planning, static verification, threaded execution
// and performance prediction — works unchanged. The application here is
// the bundled advection-diffusion RK2 demo (8 stages).
//
// Run:  ./custom_stencil [--islands=2 --steps=30]
//
//===----------------------------------------------------------------------===//

#include "apps/AdvectionDiffusion.h"
#include "core/PlanBuilder.h"
#include "core/PlanPrinter.h"
#include "core/PlanVerifier.h"
#include "exec/ProgramExecutor.h"
#include "machine/MachineModel.h"
#include "sim/Simulator.h"
#include "stencil/GraphExport.h"
#include "stencil/SerialStepper.h"
#include "support/CommandLine.h"
#include "support/OStream.h"

#include <cmath>
#include <cstdio>

using namespace icores;

int main(int Argc, char **Argv) {
  CommandLine CL;
  CL.registerOption("islands", "number of islands (default 2)");
  CL.registerOption("steps", "time steps (default 30)");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  int Islands = static_cast<int>(CL.getInt("islands", 2));
  int Steps = static_cast<int>(CL.getInt("steps", 30));

  // --- 1. The program: 8 heterogeneous stages, described once ----------
  AdvDiffProgram A = buildAdvDiffProgram();
  std::printf("a user-defined 8-stage advection-diffusion program:\n");
  exportProgramText(A.Program, outs());
  std::printf("\ninput halo depth from the dependence-cone analysis: %d\n\n",
              advDiffHaloDepth());

  // --- 2. Plan + verify the islands-of-cores schedule ------------------
  const int N = 48;
  Domain Dom(N, N, 16, advDiffHaloDepth());
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = Islands;
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = Islands;
  ExecutionPlan Plan = buildPlan(A.Program, Dom.coreBox(), Machine, Config);
  PlanVerification V = verifyPlan(Plan, A.Program);
  std::printf("static plan verification: %s\n",
              V.Ok ? "OK" : V.FirstError.c_str());
  printPlanSummary(Plan, A.Program, outs());
  std::printf("\n");

  // --- 3. Execute with threads; check against the serial oracle --------
  auto init = [&](auto &Runner) {
    Box3 Core = Dom.coreBox();
    for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
      for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
        for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K) {
          double DI = (I - N / 3.0) / 6.0, DJ = (J - N / 2.0) / 6.0;
          Runner.array(A.Phi).at(I, J, K) =
              0.1 + std::exp(-(DI * DI + DJ * DJ));
          // Diffusivity varies in space: strong in one half of the domain.
          Runner.array(A.Kappa).at(I, J, K) = I < N / 2 ? 0.02 : 0.10;
        }
    Runner.array(A.U1).fill(0.3);
    Runner.array(A.U2).fill(0.15);
    Runner.array(A.U3).fill(0.0);
    Runner.prepareInputs();
  };

  SerialStepper Oracle(A.Program, buildAdvDiffKernels(), Dom);
  init(Oracle);
  Oracle.run(Steps);

  ProgramExecutor Exec(A.Program, buildAdvDiffKernels(), Dom,
                       std::move(Plan));
  init(Exec);
  Exec.run(Steps);

  double MaxDiff =
      Exec.array(A.Phi).maxAbsDiff(Oracle.array(A.Phi), Dom.coreBox());
  std::printf("max |islands - serial| after %d steps: %.3e %s\n\n", Steps,
              MaxDiff, MaxDiff == 0.0 ? "(bit-exact)" : "");

  // --- 4. Predict paper-scale performance for this program -------------
  MachineModel Uv = makeSgiUv2000();
  Box3 Big = Box3::fromExtents(1024, 512, 64);
  std::printf("predicted times on the UV 2000 model (1024x512x64, 50 "
              "steps):\n");
  for (Strategy Strat : {Strategy::Original, Strategy::Block31D,
                         Strategy::IslandsOfCores}) {
    PlanConfig C;
    C.Strat = Strat;
    C.Sockets = 14;
    ExecutionPlan P = buildPlan(A.Program, Big, Uv, C);
    SimResult R = simulate(P, A.Program, Uv, 50);
    std::printf("  %-18s %7.2f s  (%.0f Gflop/s)\n", strategyName(Strat),
                R.TotalSeconds, R.sustainedGflops());
  }
  std::printf("\nthe same trade-off as MPDATA, at this program's (lower) "
              "arithmetic intensity.\n");
  return MaxDiff == 0.0 ? 0 : 1;
}
