//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Quickstart: advect a Gaussian tracer blob with MPDATA, first with the
// serial reference solver, then with the islands-of-cores executor using
// real threads — and verify the two agree bit-for-bit.
//
// Run:  ./quickstart [--ni=32 --nj=24 --nk=16 --steps=20 --islands=2]
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "exec/PlanExecutor.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Solver.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace icores;

int main(int Argc, char **Argv) {
  CommandLine CL;
  CL.registerOption("ni", "grid cells along i (default 32)");
  CL.registerOption("nj", "grid cells along j (default 24)");
  CL.registerOption("nk", "grid cells along k (default 16)");
  CL.registerOption("steps", "time steps (default 20)");
  CL.registerOption("islands", "number of islands (default 2)");
  CL.registerOption("help", "print this help");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (CL.hasOption("help")) {
    std::printf("quickstart options:\n%s", CL.helpText().c_str());
    return 0;
  }
  int NI = static_cast<int>(CL.getInt("ni", 32));
  int NJ = static_cast<int>(CL.getInt("nj", 24));
  int NK = static_cast<int>(CL.getInt("nk", 16));
  int Steps = static_cast<int>(CL.getInt("steps", 20));
  int Islands = static_cast<int>(CL.getInt("islands", 2));

  std::printf("MPDATA quickstart: %dx%dx%d grid, %d steps, %d islands\n\n",
              NI, NJ, NK, Steps, Islands);

  // The tracer: a Gaussian blob advected by a constant Courant-number
  // velocity field (0.25, 0.15, 0.1).
  GaussianBlob Blob;
  Blob.CenterI = NI / 4.0;
  Blob.CenterJ = NJ / 2.0;
  Blob.CenterK = NK / 2.0;
  Blob.Sigma = NI / 10.0;

  // --- 1. Serial reference run ----------------------------------------
  ReferenceSolver Solver(NI, NJ, NK);
  fillGaussian(Solver.stateIn(), Solver.domain(), Blob);
  setConstantVelocity(Solver.velocity(0), Solver.velocity(1),
                      Solver.velocity(2), Solver.domain(), 0.25, 0.15, 0.1);
  Solver.prepareCoefficients();
  double MassBefore = Solver.conservedMass();
  Solver.run(Steps);
  double MassAfter = Solver.conservedMass();
  std::printf("reference solver: mass %.12f -> %.12f (drift %.2e)\n",
              MassBefore, MassAfter, MassAfter - MassBefore);

  GaussianBlob Moved =
      Blob.translated(0.25 * Steps, 0.15 * Steps, 0.1 * Steps);
  std::printf("L2 error vs analytically translated blob: %.4e\n\n",
              l2ErrorVsBlob(Solver.state(), Solver.domain(), Moved));

  // --- 2. Islands-of-cores run with real threads -----------------------
  MachineModel Machine = makeToyMachine();
  Machine.NumSockets = Islands; // One island per model socket.
  MpdataProgram M = buildMpdataProgram();
  Domain Dom(NI, NJ, NK, mpdataHaloDepth());
  PlanConfig Config;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Sockets = Islands;
  ExecutionPlan Plan = buildPlan(M.Program, Dom.coreBox(), Machine, Config);
  std::printf("islands plan: %zu islands x %d threads, %zu blocks on "
              "island 0\n",
              Plan.Islands.size(), Plan.Islands[0].NumThreads,
              Plan.Islands[0].Blocks.size());

  PlanExecutor Exec(Dom, std::move(Plan));
  fillGaussian(Exec.stateIn(), Dom, Blob);
  setConstantVelocity(Exec.velocity(0), Exec.velocity(1), Exec.velocity(2),
                      Dom, 0.25, 0.15, 0.1);
  Exec.prepareCoefficients();
  Exec.run(Steps);

  double MaxDiff = Exec.state().maxAbsDiff(Solver.state(), Dom.coreBox());
  std::printf("max |islands - reference| over the grid: %.3e %s\n", MaxDiff,
              MaxDiff == 0.0 ? "(bit-exact)" : "");
  return MaxDiff == 0.0 ? 0 : 1;
}
