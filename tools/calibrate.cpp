// Calibration probe: prints simulated vs paper numbers for Tables 1/3/4.
#include "core/PlanBuilder.h"
#include "machine/MachineModel.h"
#include "mpdata/MpdataProgram.h"
#include "sim/Simulator.h"
#include <cstdio>
using namespace icores;

int main() {
  MpdataProgram M = buildMpdataProgram();
  MachineModel Uv = makeSgiUv2000();
  Box3 Grid = Box3::fromExtents(1024, 512, 64);
  const double PaperOrigSerial[] = {30.4,44.5,58.2,61.5,64.3,70.1,71.6,73.7,75.4,77.6,78.4,78.2,80.6,82.2};
  const double PaperOrig[] = {30.4,15.4,10.5,7.87,6.55,5.61,4.95,4.27,4.01,3.58,3.31,3.14,2.95,2.81};
  const double Paper31D[] = {9.0,8.2,7.38,7.98,7.06,7.22,7.26,7.69,9.11,9.48,10.2,10.1,10.3,10.4};
  const double PaperIsl[] = {9.0,5.62,4.17,2.93,2.34,1.97,1.72,1.49,1.36,1.25,1.12,1.06,1.05,1.01};
  auto run = [&](Strategy S, int P, PagePlacement Pl) {
    PlanConfig C; C.Strat = S; C.Sockets = P; C.Placement = Pl;
    ExecutionPlan Plan = buildPlan(M.Program, Grid, Uv, C);
    return simulate(Plan, M.Program, Uv, 50);
  };
  std::printf("P  origSer(p)  orig(p)      31d(p)       isl(p)       islGfl util\n");
  for (int P = 1; P <= 14; ++P) {
    SimResult OS = run(Strategy::Original, P, PagePlacement::None);
    SimResult O = run(Strategy::Original, P, PagePlacement::FirstTouch);
    SimResult B = run(Strategy::Block31D, P, PagePlacement::FirstTouch);
    SimResult I = run(Strategy::IslandsOfCores, P, PagePlacement::FirstTouch);
    std::printf("%2d %5.1f(%5.1f) %5.2f(%5.2f) %5.2f(%5.2f) %5.2f(%5.2f) %6.1f %4.1f%%\n",
        P, OS.TotalSeconds, PaperOrigSerial[P-1], O.TotalSeconds, PaperOrig[P-1],
        B.TotalSeconds, Paper31D[P-1], I.TotalSeconds, PaperIsl[P-1],
        I.sustainedGflops(), 100.0*I.sustainedGflops()*1e9/Uv.peakFlops(P));
  }
  // Traffic study (E5-2660v2, 256x256x64)
  MachineModel Xeon = makeXeonE5_2660v2();
  Box3 Small = Box3::fromExtents(256, 256, 64);
  PlanConfig C; C.Strat = Strategy::Original; C.Sockets = 1;
  ExecutionPlan PO = buildPlan(M.Program, Small, Xeon, C);
  SimResult RO = simulate(PO, M.Program, Xeon, 50);
  C.Strat = Strategy::Block31D;
  ExecutionPlan PB = buildPlan(M.Program, Small, Xeon, C);
  SimResult RB = simulate(PB, M.Program, Xeon, 50);
  std::printf("traffic: orig %.1f GB (paper 133), blocked %.1f GB (paper 30), speedup %.2fx (paper 2.8)\n",
      RO.totalDramBytes()/1e9, RB.totalDramBytes()/1e9, RO.TotalSeconds/RB.TotalSeconds);
  return 0;
}
