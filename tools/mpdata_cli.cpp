//===- tools/mpdata_cli.cpp - Command-line experiment driver --------------===//
//
// A single binary exposing the library's main entry points to the shell:
//
//   mpdata_cli simulate  --strategy=islands --sockets=14 --machine=uv2000
//                        [--ni --nj --nk --steps --variant --placement]
//   mpdata_cli execute   --strategy=islands --islands=2
//                        [--ni --nj --nk --steps --kernels=opt]
//                        [--profile=stats.json --pin]
//                        [--no-elide --barrier=spin|hybrid|block]
//                        [--chaos=SEED[,stall=p,wake=p,...]]
//   mpdata_cli advise    --machine=uv2000 [--sockets --ni --nj --nk --steps]
//   mpdata_cli traffic   --strategy=original [--machine ...]
//   mpdata_cli plan      --strategy=islands [--sockets ...]  (dump the plan)
//   mpdata_cli lint      [--strategy=...] [--json] [--no-audit]
//   mpdata_cli verify    [--out=FILE] [--json]  (plan-space proof suite)
//
// `simulate`, `advise`, `traffic` and `plan` are instantaneous model
// queries; `execute` runs the real threaded numerics on this host and
// verifies them against the serial reference; `lint` (also spelled
// `--lint`) runs the static-analysis suite — see tools/icores_lint.cpp
// for the standalone driver and DESIGN.md §7 for the finding taxonomy.
//
//===----------------------------------------------------------------------===//

#include "apps/Workloads.h"
#include "core/PlanBuilder.h"
#include "core/PlanPrinter.h"
#include "core/PlanVerifier.h"
#include "core/ScheduleOptimizer.h"
#include "exec/Affinity.h"
#include "exec/LintSuite.h"
#include "exec/PlanExecutor.h"
#include "exec/ProgramExecutor.h"
#include "fault/FaultInjector.h"
#include "machine/MachineModel.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Kernels.h"
#include "mpdata/Solver.h"
#include "stencil/SerialStepper.h"
#include "stencil/WorkloadRegistry.h"
#include "sim/PlanAdvisor.h"
#include "sim/Simulator.h"
#include "sim/TrafficReport.h"
#include "support/CommandLine.h"
#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "verify/ProofDriver.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

using namespace icores;

namespace {

void printUsage() {
  std::printf(
      "usage: mpdata_cli <simulate|execute|advise|traffic|plan|lint|verify|"
      "list-workloads> [options]\n"
      "  --workload=NAME             registered workload to drive (default\n"
      "                              mpdata; `mpdata_cli list-workloads`\n"
      "                              prints the manifest). Applies to every\n"
      "                              mode; execute runs the workload's\n"
      "                              program through the generic runtime,\n"
      "                              checks it bit-exact against the serial\n"
      "                              stepper, and reports each declared\n"
      "                              per-step reduction\n"
      "  --seed=N                    seed for the workload's registered\n"
      "                              initial conditions (default 7)\n"
      "  --machine=uv2000|knc|xeon   machine model (default uv2000)\n"
      "  --strategy=original|31d|islands (default islands)\n"
      "  --sockets=N                 sockets to use (default: all)\n"
      "  --islands=N                 alias for --sockets in execute mode\n"
      "  --variant=A|B               1D island mapping (default A)\n"
      "  --balance=uniform|cost      island slab sizing (default uniform):\n"
      "                              cost equalizes predicted per-island\n"
      "                              work (redundant cones + remote bytes)\n"
      "                              via core/BalanceModel. Applies to\n"
      "                              execute, simulate, traffic, plan and\n"
      "                              lint modes\n"
      "  --steal                     execute mode: arm the work-stealing\n"
      "                              block scheduler (per-island chunk\n"
      "                              deques; stealing never crosses an\n"
      "                              island). Results stay bit-exact\n"
      "  --placement=firsttouch|serial (default firsttouch)\n"
      "  --place=none|firsttouch|interleave\n"
      "                              NUMA page placement; supersedes\n"
      "                              --placement. simulate/traffic/plan\n"
      "                              model it; execute mode arms the\n"
      "                              executor's placement init epoch (with\n"
      "                              worker pinning) so the shared arenas\n"
      "                              are first-touched per island\n"
      "  --kernels=ref|opt|simd      kernel variant: execute mode runs\n"
      "                              it, simulate mode scales the model's\n"
      "                              compute term (default: execute ref,\n"
      "                              simulate simd)\n"
      "  --ni --nj --nk              grid (default 1024x512x64; execute\n"
      "                              mode defaults to 32x24x16)\n"
      "  --steps=N                   time steps (default 50; execute: 10)\n"
      "  --temporal=T                fuse T time steps into one\n"
      "                              cache-resident epoch (temporal\n"
      "                              blocking; default 1). steps must be\n"
      "                              a multiple of T; periodic boundaries\n"
      "                              only. Applies to execute, simulate,\n"
      "                              traffic, plan and lint modes\n"
      "  --profile=FILE              execute mode: record per-stage kernel\n"
      "                              and per-pass barrier-wait times and\n"
      "                              write the ExecStats JSON to FILE\n"
      "                              (see README.md for the schema)\n"
      "  --pin                       execute mode: pin worker threads to\n"
      "                              cores (best effort)\n"
      "  --no-elide                  execute mode: keep every team barrier\n"
      "                              (skip the schedule optimizer)\n"
      "  --barrier=spin|hybrid|block execute mode: team-barrier wait\n"
      "                              policy (default hybrid)\n"
      "  --chaos=SEED[,k=v...]       execute mode: arm the deterministic\n"
      "                              fault injector with this seed; keys\n"
      "                              stall=, wake= (rates in [0,1]),\n"
      "                              maxstall= (seconds). A bare seed arms\n"
      "                              a default mixed plan. Results stay\n"
      "                              bit-exact; counters land in the\n"
      "                              --profile JSON (exec_stats v3)\n"
      "  --json                      lint mode: emit icores.lint.v1 JSON\n"
      "  --no-audit                  lint mode: skip the kernel access "
      "audit\n"
      "  --out=FILE                  verify mode: icores.prove.v1 output\n"
      "                              path (default BENCH_prove.json); see\n"
      "                              tools/icores_verify.cpp for the full\n"
      "                              option set\n");
}

bool parseStrategy(const std::string &Name, Strategy &Out) {
  if (Name == "original")
    Out = Strategy::Original;
  else if (Name == "31d" || Name == "3+1d" || Name == "block")
    Out = Strategy::Block31D;
  else if (Name == "islands")
    Out = Strategy::IslandsOfCores;
  else
    return false;
  return true;
}

bool parseMachine(const std::string &Name, MachineModel &Out) {
  if (Name == "uv2000")
    Out = makeSgiUv2000();
  else if (Name == "knc")
    Out = makeXeonPhiKnc();
  else if (Name == "xeon")
    Out = makeXeonE5_2660v2();
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage();
    return 1;
  }
  std::string Mode = Argv[1];
  if (Mode == "--lint") // `mpdata_cli --lint` is an alias for `lint`.
    Mode = "lint";

  CommandLine CL;
  for (const char *Opt : {"machine", "strategy", "sockets", "islands",
                          "variant", "placement", "place", "balance",
                          "steal", "kernels", "ni", "nj", "nk", "steps",
                          "temporal", "profile", "pin", "json", "no-audit",
                          "no-elide", "barrier", "chaos", "out", "workload",
                          "seed", "help"})
    CL.registerOption(Opt, "");
  std::string Error;
  if (!CL.parse(Argc - 1, Argv + 1, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    printUsage();
    return 1;
  }
  if (Mode == "help" || CL.hasOption("help")) {
    printUsage();
    return 0;
  }

  const WorkloadRegistry &Registry = builtinWorkloads();
  if (Mode == "list-workloads" || Mode == "--list-workloads") {
    // The workload manifest: one name per line (first token), then the
    // description. bench/validate_bench_json.py consumes this.
    for (const WorkloadSpec &Spec : Registry.workloads())
      std::printf("%-12s %s\n", Spec.Name.c_str(), Spec.Description.c_str());
    return 0;
  }
  std::string WorkloadName = CL.getString("workload", "mpdata");
  const WorkloadSpec *Workload = Registry.find(WorkloadName);
  if (!Workload) {
    std::fprintf(stderr,
                 "error: unknown workload '%s' (mpdata_cli list-workloads "
                 "prints the manifest)\n",
                 WorkloadName.c_str());
    return 1;
  }

  MachineModel Machine;
  if (!parseMachine(CL.getString("machine", "uv2000"), Machine)) {
    std::fprintf(stderr, "error: unknown machine\n");
    return 1;
  }
  Strategy Strat = Strategy::IslandsOfCores;
  if (!parseStrategy(CL.getString("strategy", "islands"), Strat)) {
    std::fprintf(stderr, "error: unknown strategy\n");
    return 1;
  }

  bool Execute = Mode == "execute";
  int Sockets = static_cast<int>(
      CL.getInt("sockets", CL.getInt("islands",
                                     Execute ? 2 : Machine.NumSockets)));
  int NI = static_cast<int>(CL.getInt("ni", Execute ? 32 : 1024));
  int NJ = static_cast<int>(CL.getInt("nj", Execute ? 24 : 512));
  int NK = static_cast<int>(CL.getInt("nk", Execute ? 16 : 64));
  int Steps = static_cast<int>(CL.getInt("steps", Execute ? 10 : 50));
  int Temporal = static_cast<int>(CL.getInt("temporal", 1));
  if (Temporal < 1) {
    std::fprintf(stderr, "error: --temporal must be at least 1\n");
    return 1;
  }
  bool ModeSteps =
      Mode == "execute" || Mode == "simulate" || Mode == "traffic";
  if (ModeSteps && Steps % Temporal != 0) {
    std::fprintf(stderr,
                 "error: --steps=%d is not a multiple of --temporal=%d "
                 "(epochs fuse exactly T steps)\n",
                 Steps, Temporal);
    return 1;
  }

  const StencilProgram &Prog = Workload->Program;
  Box3 Grid = Box3::fromExtents(NI, NJ, NK);
  PlanConfig Config;
  Config.Strat = Strat;
  Config.Sockets = Sockets;
  Config.TemporalDepth = Temporal;
  Config.Variant = CL.getString("variant", "A") == "B"
                       ? PartitionVariant::B
                       : PartitionVariant::A;
  Config.Placement = CL.getString("placement", "firsttouch") == "serial"
                         ? PagePlacement::None
                         : PagePlacement::FirstTouch;
  // --place supersedes the legacy --placement spelling and additionally
  // arms the executor's placement init epoch in execute mode.
  const bool HavePlace = CL.hasOption("place");
  PlacementPolicy Place = PlacementPolicy::FirstTouch;
  if (HavePlace) {
    if (!parsePlacementPolicy(CL.getString("place", "firsttouch"), Place)) {
      std::fprintf(stderr,
                   "error: unknown placement '%s' (expected none, "
                   "firsttouch or interleave)\n",
                   CL.getString("place", "").c_str());
      return 1;
    }
    Config.Placement = Place;
  }
  std::string BalanceName = CL.getString("balance", "uniform");
  if (BalanceName == "cost") {
    Config.Balance = BalancePolicy::Cost;
  } else if (BalanceName != "uniform") {
    std::fprintf(stderr,
                 "error: unknown balance policy '%s' (expected uniform or "
                 "cost)\n",
                 BalanceName.c_str());
    return 1;
  }

  if (Mode == "lint") {
    // One kernel set per backend the workload advertises.
    std::vector<KernelTable> Tables;
    Tables.reserve(Workload->Variants.size());
    std::vector<LintKernelSet> KernelSets;
    for (KernelVariant V : Workload->Variants) {
      Tables.push_back(Workload->Kernels(V));
      KernelSets.push_back({kernelVariantName(V), &Tables.back()});
    }
    // --kernels=<v> restricts the audit to one backend.
    if (CL.hasOption("kernels")) {
      KernelVariant Only;
      if (!parseKernelVariant(CL.getString("kernels", "ref"), Only)) {
        std::fprintf(stderr, "error: unknown kernel variant\n");
        return 1;
      }
      std::vector<LintKernelSet> Filtered;
      for (const LintKernelSet &Set : KernelSets)
        if (Set.Label == kernelVariantName(Only))
          Filtered.push_back(Set);
      if (Filtered.empty()) {
        std::fprintf(stderr,
                     "error: workload '%s' has no '%s' kernel backend\n",
                     Workload->Name.c_str(), kernelVariantName(Only));
        return 1;
      }
      KernelSets = Filtered;
    }
    // Without an explicit --strategy, lint the plans of all three.
    std::vector<std::pair<std::string, Strategy>> Strategies;
    if (CL.hasOption("strategy"))
      Strategies.push_back({CL.getString("strategy", "islands"), Strat});
    else
      Strategies = {{"original", Strategy::Original},
                    {"31d", Strategy::Block31D},
                    {"islands", Strategy::IslandsOfCores}};
    // Each strategy is linted twice: the stock plan, and a copy with the
    // schedule optimizer's barrier elision applied ("<name>+elide") so
    // the lint suite certifies every plan execution would actually use.
    std::vector<ExecutionPlan> Plans;
    Plans.reserve(Strategies.size() * 2);
    std::vector<LintPlanSet> PlanSets;
    for (const auto &S : Strategies) {
      Config.Strat = S.second;
      Plans.push_back(buildPlan(Prog, Grid, Machine, Config));
      PlanSets.push_back({S.first, &Plans.back()});
      Plans.push_back(Plans.back());
      optimizeBarriers(Prog, Plans.back());
      PlanSets.push_back({S.first + "+elide", &Plans.back()});
    }
    LintSuiteOptions Opts;
    Opts.RunAccessAudit = !CL.hasOption("no-audit");
    DiagnosticEngine Diags;
    runLintSuite(Prog, KernelSets, PlanSets, Diags, Opts);
    if (CL.hasOption("json")) {
      Diags.printJson(outs());
    } else {
      Diags.printText(outs());
      std::printf("lint: %zu findings (%zu errors, %zu warnings)\n",
                  Diags.numFindings(), Diags.numErrors(),
                  Diags.numWarnings());
    }
    return Diags.hasErrors() ? 1 : 0;
  }

  if (Mode == "verify") {
    // The full plan-space proof suite (see tools/icores_verify.cpp for
    // the standalone driver with the complete option set).
    ProofOptions Opts;
    Opts.Space.NI = static_cast<int>(CL.getInt("ni", Opts.Space.NI));
    Opts.Space.NJ = static_cast<int>(CL.getInt("nj", Opts.Space.NJ));
    Opts.Space.NK = static_cast<int>(CL.getInt("nk", Opts.Space.NK));
    if (CL.hasOption("steps"))
      Opts.Space.TimeSteps = Steps;
    if (CL.hasOption("workload"))
      Opts.Space.Workloads = {WorkloadName};
    ProofReport Report = runProofSuite(Opts);
    std::string Out = CL.getString("out", "BENCH_prove.json");
    if (!writeProveJsonFile(Report, Out)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Out.c_str());
      return 1;
    }
    if (CL.hasOption("json"))
      writeProveJson(Report, outs());
    std::printf("verify: %zu plans (%zu proved, %zu pruned, %zu violated), "
                "protocol %s, kill rate %.2f -> %s\n",
                Report.Plans.size(), Report.numWithVerdict("proved"),
                Report.numWithVerdict("pruned"),
                Report.numWithVerdict("violated"),
                Report.protocolOk() ? "ok" : "FAILED", Report.killRate(),
                Out.c_str());
    return Report.ok() ? 0 : 1;
  }

  if (Mode == "simulate" || Mode == "traffic" || Mode == "plan") {
    ExecutionPlan Plan = buildPlan(Prog, Grid, Machine, Config);
    if (Mode == "plan") {
      PlanVerification V = verifyPlan(Plan, Prog);
      std::printf("verification: %s\n",
                  V.Ok ? "OK" : V.FirstError.c_str());
      printPlanSummary(Plan, Prog, outs());
      return V.Ok ? 0 : 1;
    }
    if (Mode == "traffic") {
      accountTraffic(Plan, Prog, Machine, Steps).print(outs());
      return 0;
    }
    SimOptions SimOpts;
    if (!parseKernelVariant(CL.getString("kernels", "simd"),
                            SimOpts.Kernels)) {
      std::fprintf(stderr, "error: unknown kernel variant\n");
      return 1;
    }
    SimResult R = simulate(Plan, Prog, Machine, Steps, SimOpts);
    std::printf("%s on %s, %dx%dx%d, P=%d, %d steps (%s kernels):\n",
                strategyName(Strat), Machine.Name.c_str(), NI, NJ, NK,
                Sockets, Steps, kernelVariantName(SimOpts.Kernels));
    std::printf("  predicted time:      %s\n",
                formatSeconds(R.TotalSeconds).c_str());
    std::printf("  sustained:           %.1f Gflop/s (%.1f%% of peak)\n",
                R.sustainedGflops(),
                R.sustainedGflops() * 1e9 / Machine.peakFlops(Sockets) *
                    100.0);
    std::printf("  DRAM traffic:        %s\n",
                formatBytes(static_cast<uint64_t>(R.totalDramBytes()))
                    .c_str());
    std::printf("  placement:           %s, remote %s/step\n",
                placementPolicyName(Config.Placement),
                formatBytes(static_cast<uint64_t>(
                                R.PlacementRemoteBytesPerStep))
                    .c_str());
    std::printf("  balance:             %s, predicted island skew %.4f\n",
                balancePolicyName(Config.Balance), R.PredictedIslandSkew);
    std::printf("  per-step: compute %s, dram %s, remote %s, barrier %s, "
                "overhead %s\n",
                formatSeconds(R.CriticalIsland.Compute).c_str(),
                formatSeconds(R.CriticalIsland.Dram).c_str(),
                formatSeconds(R.CriticalIsland.Remote).c_str(),
                formatSeconds(R.CriticalIsland.Barrier).c_str(),
                formatSeconds(R.CriticalIsland.Overhead).c_str());
    return 0;
  }

  if (Mode == "advise") {
    AdvisorReport Report =
        adviseBestPlan(Prog, Grid, Machine, Sockets, Steps);
    for (size_t I = 0; I != Report.Candidates.size(); ++I) {
      const AdvisorCandidate &C = Report.Candidates[I];
      std::printf("%2zu. %-28s %10s\n", I + 1, C.Label.c_str(),
                  formatSeconds(C.Result.TotalSeconds).c_str());
    }
    return 0;
  }

  if (Mode == "execute") {
    MachineModel Host = makeToyMachine();
    Host.NumSockets = Sockets;
    ExecutorOptions ExecOpts;
    ExecOpts.Stealing = CL.hasOption("steal");
    // Price the executed plan's predicted island skew with the same
    // machine model the plan was built for, so the --profile JSON's
    // predicted_island_skew matches `simulate` by construction.
    ExecOpts.Machine = &Host;
    std::string BarrierName = CL.getString("barrier", "hybrid");
    if (!parseWaitPolicy(BarrierName, ExecOpts.BarrierPolicy)) {
      std::fprintf(stderr, "error: unknown barrier policy '%s'\n",
                   BarrierName.c_str());
      return 1;
    }
    std::unique_ptr<FaultInjector> Chaos;
    if (CL.hasOption("chaos")) {
      FaultPlan ChaosPlan;
      std::string ChaosErr;
      if (!parseFaultSpec(CL.getString("chaos", ""), ChaosPlan,
                          ChaosErr)) {
        std::fprintf(stderr, "error: bad --chaos spec: %s\n",
                     ChaosErr.c_str());
        return 1;
      }
      // The executor has no message channel, so only the stall/wake
      // classes apply here; the distributed classes are exercised by
      // tools/chaos_runner.
      Chaos = std::make_unique<FaultInjector>(ChaosPlan);
      ExecOpts.Chaos = Chaos.get();
      std::printf("chaos: %s\n", faultPlanSummary(ChaosPlan).c_str());
    }
    ExecutionPlan Plan = buildPlan(Prog, Grid, Host, Config);
    if (!CL.hasOption("no-elide")) {
      ScheduleOptimizerReport Report = optimizeBarriers(Prog, Plan);
      std::printf("barrier elision: %lld of %lld team barriers removed "
                  "per step (use --no-elide to keep all)\n",
                  static_cast<long long>(Report.ElidedBarriers),
                  static_cast<long long>(Report.TotalPasses));
    }
    KernelVariant Kernels = KernelVariant::Reference;
    if (!parseKernelVariant(CL.getString("kernels", "ref"), Kernels)) {
      std::fprintf(stderr, "error: unknown kernel variant\n");
      return 1;
    }

    // With an explicit --workload, drive the registered program through
    // the generic runtime: ProgramExecutor against the SerialStepper
    // oracle, both seeded from the workload's registered init, with every
    // declared per-step reduction checked and reported.
    if (CL.hasOption("workload")) {
      bool HaveVariant = false;
      for (KernelVariant V : Workload->Variants)
        HaveVariant = HaveVariant || V == Kernels;
      if (!HaveVariant) {
        std::fprintf(stderr,
                     "error: workload '%s' has no '%s' kernel backend\n",
                     Workload->Name.c_str(), kernelVariantName(Kernels));
        return 1;
      }
      uint64_t Seed = static_cast<uint64_t>(CL.getInt("seed", 7));
      Domain Dom = workloadDomain(*Workload, NI, NJ, NK);
      if (HavePlace) {
        ExecOpts.Placement = Place;
        if (Place != PlacementPolicy::None)
          ExecOpts.Pinning = computeThreadPlacement(Plan, Host);
      }
      ExecOpts.Reductions = Workload->Reductions;
      ProgramExecutor Exec(Prog, Workload->Kernels(Kernels), Dom,
                           std::move(Plan), ExecOpts);
      if (CL.hasOption("pin"))
        Exec.setThreadPinning(computeThreadPlacement(Exec.plan(), Host));
      std::string ProfilePath = CL.getString("profile", "");
      if (!ProfilePath.empty())
        Exec.enableProfiling(true);
      initWorkload(*Workload, Exec, Seed);
      Exec.run(Steps);

      SerialStepper Oracle(Prog, Workload->Kernels(Kernels), Dom,
                           Workload->Reductions);
      initWorkload(*Workload, Oracle, Seed);
      Oracle.run(Steps);

      // After run() the newest state of a feedback pair lives in its
      // Target array; a step output without feedback keeps its own.
      double Diff = 0.0;
      std::vector<ArrayId> Compare;
      for (const FeedbackPair &FB : Prog.feedbacks())
        Compare.push_back(FB.Target);
      for (ArrayId Out : Prog.stepOutputs()) {
        bool FedBack = false;
        for (const FeedbackPair &FB : Prog.feedbacks())
          FedBack = FedBack || FB.Source == Out;
        if (!FedBack)
          Compare.push_back(Out);
      }
      for (ArrayId Id : Compare)
        Diff = std::max(Diff, Exec.array(Id).maxAbsDiff(Oracle.array(Id),
                                                        Dom.coreBox()));
      std::printf("executed %d steps of %s/%s on %dx%dx%d with %d "
                  "islands\n",
                  Steps, Workload->Name.c_str(), strategyName(Strat), NI,
                  NJ, NK, Sockets);
      for (size_t R = 0; R != Prog.reductions().size(); ++R) {
        const std::vector<double> &Got = Exec.reductionHistory(R);
        const std::vector<double> &Want = Oracle.reductionHistory(R);
        bool Match = Got == Want;
        if (!Match)
          Diff = std::max(Diff, 1.0);
        std::printf("reduction '%s': final %.17g over %zu steps %s\n",
                    Prog.reductions()[R].Name.c_str(),
                    Got.empty() ? 0.0 : Got.back(), Got.size(),
                    Match ? "(bit-exact vs serial)" : "(MISMATCH)");
      }
      std::printf("max diff vs serial reference: %.3e %s\n", Diff,
                  Diff == 0.0 ? "(bit-exact)" : "");
      if (Chaos) {
        FaultStats FS = Chaos->stats();
        std::printf("chaos: %lld faults injected (%lld stall-timeouts "
                    "detected); result %s under fault injection\n",
                    static_cast<long long>(FS.Injected),
                    static_cast<long long>(FS.Timeouts),
                    Diff == 0.0 ? "bit-exact" : "DIVERGED");
      }
      if (!ProfilePath.empty()) {
        const ExecStats &Stats = Exec.stats();
        std::FILE *F = std::fopen(ProfilePath.c_str(), "w");
        if (!F) {
          std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                       ProfilePath.c_str());
          return 1;
        }
        FileOStream OS(F);
        Stats.writeJson(OS);
        std::fclose(F);
        std::printf("profile: stats written to %s\n", ProfilePath.c_str());
      }
      return Diff == 0.0 ? 0 : 1;
    }

    Domain Dom(NI, NJ, NK, mpdataHaloDepth());
    if (HavePlace) {
      // Arm the placement init epoch: workers must already be pinned when
      // they first-touch their arena segments, so the pinning goes in
      // through ExecutorOptions rather than setThreadPinning() (which
      // would only take effect after construction, too late for paging).
      ExecOpts.Placement = Place;
      if (Place != PlacementPolicy::None)
        ExecOpts.Pinning = computeThreadPlacement(Plan, Host);
    }
    PlanExecutor Exec(Dom, std::move(Plan), Kernels, ExecOpts);
    if (CL.hasOption("pin"))
      Exec.setThreadPinning(computeThreadPlacement(Exec.plan(), Host));
    std::string ProfilePath = CL.getString("profile", "");
    if (!ProfilePath.empty())
      Exec.enableProfiling(true);
    fillRandomPositive(Exec.stateIn(), Dom, 7, 0.1, 2.0);
    setConstantVelocity(Exec.velocity(0), Exec.velocity(1),
                        Exec.velocity(2), Dom, 0.25, -0.2, 0.15);
    Exec.prepareCoefficients();
    double MassBefore = Exec.conservedMass();
    if (!ProfilePath.empty() && Steps > Temporal) {
      // Two run() calls on purpose: the profile's pool counters then
      // demonstrate thread reuse (run_calls 2, threads spawned once).
      // Each call still covers whole temporal epochs.
      Exec.run(Temporal);
      Exec.run(Steps - Temporal);
    } else {
      Exec.run(Steps);
    }

    ReferenceSolver Oracle(NI, NJ, NK);
    fillRandomPositive(Oracle.stateIn(), Oracle.domain(), 7, 0.1, 2.0);
    setConstantVelocity(Oracle.velocity(0), Oracle.velocity(1),
                        Oracle.velocity(2), Oracle.domain(), 0.25, -0.2,
                        0.15);
    Oracle.prepareCoefficients();
    Oracle.run(Steps);

    double Diff = Exec.state().maxAbsDiff(Oracle.state(), Dom.coreBox());
    std::printf("executed %d steps of %s on %dx%dx%d with %d islands\n",
                Steps, strategyName(Strat), NI, NJ, NK, Sockets);
    if (Config.Balance == BalancePolicy::Cost || ExecOpts.Stealing) {
      const ExecStats &BS = Exec.stats();
      std::printf("balance: %s cuts, stealing %s, predicted island skew "
                  "%.4f, measured %.4f\n",
                  BS.Balance.c_str(), BS.Stealing ? "on" : "off",
                  BS.PredictedIslandSkew, BS.measuredIslandSkew());
    }
    if (Temporal > 1)
      std::printf("temporal blocking: depth %d (%d fused epochs), shared "
                  "traffic %s/step\n",
                  Temporal, Steps / Temporal,
                  formatBytes(static_cast<uint64_t>(
                                  Exec.executor().sharedBytesPerStep()))
                      .c_str());
    if (HavePlace) {
      const ExecStats &PS = Exec.stats();
      std::printf("placement: %s, remote %s/step (est), %lld pages "
                  "first-touched, %lld pin failures\n",
                  PS.Placement.c_str(),
                  formatBytes(static_cast<uint64_t>(
                                  Exec.executor().remoteBytesPerStep()))
                      .c_str(),
                  static_cast<long long>(PS.PagesFirstTouched),
                  static_cast<long long>(PS.PinFailures));
    }
    std::printf("mass drift: %.2e; max diff vs serial reference: %.3e %s\n",
                Exec.conservedMass() - MassBefore, Diff,
                Diff == 0.0 ? "(bit-exact)" : "");
    if (Chaos) {
      FaultStats FS = Chaos->stats();
      std::printf("chaos: %lld faults injected (%lld stall-timeouts "
                  "detected); result %s under fault injection\n",
                  static_cast<long long>(FS.Injected),
                  static_cast<long long>(FS.Timeouts),
                  Diff == 0.0 ? "bit-exact" : "DIVERGED");
    }
    if (!ProfilePath.empty()) {
      const ExecStats &Stats = Exec.stats();
      std::FILE *F = std::fopen(ProfilePath.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     ProfilePath.c_str());
        return 1;
      }
      FileOStream OS(F);
      Stats.writeJson(OS);
      std::fclose(F);
      std::printf("profile: kernel %s, team barrier %s, global barrier %s "
                  "(barrier share %.1f%%)\n",
                  formatSeconds(Stats.kernelSeconds()).c_str(),
                  formatSeconds(Stats.teamBarrierWaitSeconds()).c_str(),
                  formatSeconds(Stats.GlobalBarrierWaitSeconds).c_str(),
                  Stats.barrierShare() * 100.0);
      std::printf("profile: %lld barriers elided; %lld spin wakes, %lld "
                  "sleep wakes (%s policy)\n",
                  static_cast<long long>(Stats.barriersElided()),
                  static_cast<long long>(Stats.spinWakes()),
                  static_cast<long long>(Stats.sleepWakes()),
                  waitPolicyName(ExecOpts.BarrierPolicy));
      if (Stats.Stealing)
        std::printf("profile: %lld chunks stolen (%lld lost races), idle "
                    "%s across threads\n",
                    static_cast<long long>(Stats.steals()),
                    static_cast<long long>(Stats.stealFailures()),
                    formatSeconds(Stats.idleSeconds()).c_str());
      std::printf("profile: %lld run() calls reused %lld pooled threads; "
                  "stats written to %s\n",
                  static_cast<long long>(Stats.RunCalls),
                  static_cast<long long>(Stats.ThreadsSpawned),
                  ProfilePath.c_str());
    }
    return Diff == 0.0 ? 0 : 1;
  }

  std::fprintf(stderr, "error: unknown mode '%s'\n", Mode.c_str());
  printUsage();
  return 1;
}
