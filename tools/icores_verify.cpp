//===- tools/icores_verify.cpp - Plan-space verification driver -----------===//
//
// Enumerates the reachable ExecutionPlan space (every registered workload
// x all strategies x team counts x temporal depths x barrier elision),
// statically
// proves every feasible plan race- and deadlock-free (PlanVerifier +
// ScheduleCheck + the temporal coverage model), model-checks the
// TeamBarrier and RankComm protocols, and runs the analysis mutation
// suite. Writes the icores.prove.v1 record set to --out (default
// BENCH_prove.json) and exits nonzero unless every plan is proved, every
// protocol exploration is clean, and every mutant class is killed.
//
//   icores_verify [--all] [--out=PATH] [--json] [--steps=N]
//                 [--ni= --nj= --nk=] [--barrier-threads=N]
//                 [--no-mutate] [--workload=NAME]
//
// Without --all a reduced smoke space (teams {1,2}, temporal {1,2}) is
// checked; CI's verify-smoke job runs --all.
//
//===----------------------------------------------------------------------===//

#include "apps/Workloads.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "verify/ProofDriver.h"

#include <cstdio>

using namespace icores;

namespace {

void printUsage() {
  std::printf(
      "usage: icores_verify [options]\n"
      "  --all                 enumerate the full plan space (teams and\n"
      "                        temporal depths {1,2,4}; default is the\n"
      "                        {1,2} smoke subset)\n"
      "  --out=PATH            write icores.prove.v1 JSON (default\n"
      "                        BENCH_prove.json)\n"
      "  --json                also print the JSON document to stdout\n"
      "  --steps=N             time steps per run (default 8)\n"
      "  --ni= --nj= --nk=     plan-space grid (default 48x32x32)\n"
      "  --barrier-threads=N   model the barrier for N threads only\n"
      "                        (default: 2, 3 and 5)\n"
      "  --no-mutate           skip the analysis mutation suite\n"
      "  --workload=NAME       restrict the space to one registered\n"
      "                        workload (repeatable via a comma list;\n"
      "                        default: every workload in the registry —\n"
      "                        `mpdata_cli list-workloads` prints them)\n");
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL;
  for (const char *Opt : {"all", "out", "json", "steps", "ni", "nj", "nk",
                          "barrier-threads", "no-mutate", "workload",
                          "help"})
    CL.registerOption(Opt, "");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    printUsage();
    return 1;
  }
  if (CL.hasOption("help")) {
    printUsage();
    return 0;
  }

  ProofOptions Opts;
  if (!CL.hasOption("all")) {
    Opts.Space.TeamCounts = {1, 2};
    Opts.Space.TemporalDepths = {1, 2};
  }
  Opts.Space.NI = static_cast<int>(CL.getInt("ni", Opts.Space.NI));
  Opts.Space.NJ = static_cast<int>(CL.getInt("nj", Opts.Space.NJ));
  Opts.Space.NK = static_cast<int>(CL.getInt("nk", Opts.Space.NK));
  Opts.Space.TimeSteps =
      static_cast<int>(CL.getInt("steps", Opts.Space.TimeSteps));
  if (CL.hasOption("barrier-threads"))
    Opts.BarrierThreadCounts = {
        static_cast<int>(CL.getInt("barrier-threads", 4))};
  Opts.RunMutation = !CL.hasOption("no-mutate");
  if (CL.hasOption("workload")) {
    // Comma-separated list of registered workload names.
    std::string Names = CL.getString("workload", "");
    size_t Pos = 0;
    while (Pos <= Names.size()) {
      size_t Comma = Names.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = Names.size();
      if (Comma > Pos)
        Opts.Space.Workloads.push_back(Names.substr(Pos, Comma - Pos));
      Pos = Comma + 1;
    }
    if (Opts.Space.Workloads.empty()) {
      std::fprintf(stderr, "error: --workload needs at least one name\n");
      return 1;
    }
    for (const std::string &Name : Opts.Space.Workloads)
      if (!builtinWorkloads().find(Name)) {
        std::fprintf(stderr,
                     "error: unknown workload '%s' (mpdata_cli "
                     "list-workloads prints the manifest)\n",
                     Name.c_str());
        return 1;
      }
  }

  ProofReport Report = runProofSuite(Opts);

  std::string Out = CL.getString("out", "BENCH_prove.json");
  if (!writeProveJsonFile(Report, Out)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Out.c_str());
    return 1;
  }
  if (CL.hasOption("json"))
    writeProveJson(Report, outs());

  outs() << formatString(
      "icores_verify: %zu plans (%zu proved, %zu pruned, %zu violated)\n",
      Report.Plans.size(), Report.numWithVerdict("proved"),
      Report.numWithVerdict("pruned"), Report.numWithVerdict("violated"));
  for (const PlanProofRecord &R : Report.Plans)
    if (R.Verdict == "violated")
      outs() << "  violated: " << R.Point.Label << ": " << R.Witness
             << "\n";
  for (const BarrierProofRecord &R : Report.Barrier)
    outs() << formatString(
        "  barrier model: %d threads x %d crossings: %lld states, %s\n",
        R.Threads, R.Crossings, static_cast<long long>(R.States),
        R.Ok ? "deadlock-free" : "FAILED");
  for (const BarrierMutantRecord &R : Report.BarrierMutants)
    outs() << "  barrier mutant " << R.Mutant << ": "
           << (R.Caught ? "caught" : "MISSED") << "\n";
  for (const CommProofRecord &R : Report.Comm)
    outs() << formatString("  comm %dx%d (%s): %lld ops, %s\n", R.PI, R.PJ,
                           R.Kind.c_str(), static_cast<long long>(R.Ops),
                           R.Ok ? "ok" : "FAILED");
  for (const CommMutantRecord &R : Report.CommMutants)
    outs() << "  comm mutant " << R.Mutant << ": "
           << (R.Caught ? "caught" : "MISSED") << "\n";
  for (const MutationClassRecord &R : Report.Mutation)
    outs() << formatString("  mutation %s: %d/%d killed\n",
                           mutantClassName(R.Class), R.Killed, R.Mutants);
  outs() << formatString("icores_verify: kill rate %.2f, %s\n",
                         Report.killRate(),
                         Report.ok() ? "all proofs hold" : "FAILED");
  outs() << "wrote " << Out << "\n";
  return Report.ok() ? 0 : 1;
}
