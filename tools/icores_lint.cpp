//===- tools/icores_lint.cpp - Stencil static-analysis driver -------------===//
//
// Runs every static analysis over the registered workloads:
//
//   icores_lint [--json] [--strategy=all|original|31d|islands]
//               [--machine=uv2000|knc|xeon] [--sockets=N]
//               [--ni= --nj= --nk=] [--no-audit]
//               [--kernels=all|ref|opt|simd] [--workload=all|NAME]
//
//  - program validation (`program.*` findings),
//  - kernel access audit of every kernel variant against the declared
//    IR windows (`access.*`),
//  - plan dataflow verification (`plan.*`) and schedule race checking
//    (`race.*`) for each selected strategy's plan.
//
// Every workload of the built-in WorkloadRegistry is linted by default;
// kernel sets and plans are labelled "<workload>/<name>" so findings
// name their origin. Prints one finding per line (or the `icores.lint.v1`
// JSON document with --json) and exits nonzero when any error-severity
// finding is reported. CI runs this on every change; see DESIGN.md §7 for
// the finding taxonomy and §15 for the workload registry contract.
//
//===----------------------------------------------------------------------===//

#include "apps/Workloads.h"
#include "core/PlanBuilder.h"
#include "exec/LintSuite.h"
#include "machine/MachineModel.h"
#include "stencil/WorkloadRegistry.h"
#include "support/CommandLine.h"
#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/OStream.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace icores;

namespace {

void printUsage() {
  std::printf(
      "usage: icores_lint [options]\n"
      "  --json                      emit the icores.lint.v1 JSON document\n"
      "  --workload=all|NAME         registered workloads to lint (default\n"
      "                              all; `mpdata_cli list-workloads`\n"
      "                              prints the manifest)\n"
      "  --strategy=all|original|31d|islands  plans to check (default all)\n"
      "  --machine=uv2000|knc|xeon   machine model for planning (default\n"
      "                              uv2000)\n"
      "  --sockets=N                 sockets to plan for (default: all)\n"
      "  --ni= --nj= --nk=           grid (default 1024x512x64)\n"
      "  --no-audit                  skip the kernel access audit\n"
      "  --kernels=all|ref|opt|simd  kernel variants to audit (default:\n"
      "                              all the workload implements)\n");
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL;
  for (const char *Opt : {"json", "strategy", "machine", "sockets", "ni",
                          "nj", "nk", "no-audit", "kernels", "workload",
                          "help"})
    CL.registerOption(Opt, "");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    printUsage();
    return 1;
  }
  if (CL.hasOption("help")) {
    printUsage();
    return 0;
  }

  MachineModel Machine;
  std::string MachineName = CL.getString("machine", "uv2000");
  if (MachineName == "uv2000")
    Machine = makeSgiUv2000();
  else if (MachineName == "knc")
    Machine = makeXeonPhiKnc();
  else if (MachineName == "xeon")
    Machine = makeXeonE5_2660v2();
  else {
    std::fprintf(stderr, "error: unknown machine '%s'\n",
                 MachineName.c_str());
    return 1;
  }

  std::string StratName = CL.getString("strategy", "all");
  std::vector<std::pair<std::string, Strategy>> Strategies;
  if (StratName == "all" || StratName == "original")
    Strategies.push_back({"original", Strategy::Original});
  if (StratName == "all" || StratName == "31d")
    Strategies.push_back({"31d", Strategy::Block31D});
  if (StratName == "all" || StratName == "islands")
    Strategies.push_back({"islands", Strategy::IslandsOfCores});
  if (Strategies.empty()) {
    std::fprintf(stderr, "error: unknown strategy '%s'\n",
                 StratName.c_str());
    return 1;
  }

  const WorkloadRegistry &Registry = builtinWorkloads();
  std::string WorkloadName = CL.getString("workload", "all");
  std::vector<const WorkloadSpec *> Workloads;
  if (WorkloadName == "all") {
    for (const WorkloadSpec &Spec : Registry.workloads())
      Workloads.push_back(&Spec);
  } else if (const WorkloadSpec *Spec = Registry.find(WorkloadName)) {
    Workloads.push_back(Spec);
  } else {
    std::fprintf(stderr,
                 "error: unknown workload '%s' (mpdata_cli list-workloads "
                 "prints the manifest)\n",
                 WorkloadName.c_str());
    return 1;
  }

  std::string KernelsName = CL.getString("kernels", "all");
  KernelVariant OnlyVariant = KernelVariant::Reference;
  if (KernelsName != "all" &&
      !parseKernelVariant(KernelsName, OnlyVariant)) {
    std::fprintf(stderr, "error: unknown kernel variant '%s'\n",
                 KernelsName.c_str());
    return 1;
  }

  int NI = static_cast<int>(CL.getInt("ni", 1024));
  int NJ = static_cast<int>(CL.getInt("nj", 512));
  int NK = static_cast<int>(CL.getInt("nk", 64));
  int Sockets =
      static_cast<int>(CL.getInt("sockets", Machine.NumSockets));
  Box3 Grid = Box3::fromExtents(NI, NJ, NK);

  LintSuiteOptions Opts;
  Opts.RunAccessAudit = !CL.hasOption("no-audit");
  DiagnosticEngine Diags;

  for (const WorkloadSpec *Spec : Workloads) {
    // Lint each workload's program against its own kernel backends and
    // the plans of every selected strategy. Labels carry the workload
    // name only when several are linted, keeping single-workload output
    // (and the lint tests that parse it) stable.
    std::string Prefix =
        Workloads.size() > 1 ? Spec->Name + "/" : std::string();

    std::vector<KernelTable> Tables;
    Tables.reserve(Spec->Variants.size());
    std::vector<std::string> SetNames;
    SetNames.reserve(Spec->Variants.size());
    std::vector<LintKernelSet> KernelSets;
    for (KernelVariant V : Spec->Variants) {
      if (KernelsName != "all" && V != OnlyVariant)
        continue;
      Tables.push_back(Spec->Kernels(V));
      SetNames.push_back(Prefix + kernelVariantName(V));
      KernelSets.push_back({SetNames.back(), &Tables.back()});
    }
    if (KernelsName != "all" && KernelSets.empty())
      // The workload does not implement the requested backend; nothing
      // to audit, but the plans below are still checked.
      Opts.RunAccessAudit = false;

    std::vector<ExecutionPlan> Plans;
    Plans.reserve(Strategies.size());
    std::vector<std::string> PlanNames;
    PlanNames.reserve(Strategies.size());
    std::vector<LintPlanSet> PlanSets;
    for (const auto &S : Strategies) {
      PlanConfig Config;
      Config.Strat = S.second;
      Config.Sockets = Sockets;
      Plans.push_back(buildPlan(Spec->Program, Grid, Machine, Config));
      PlanNames.push_back(Prefix + S.first);
      PlanSets.push_back({PlanNames.back(), &Plans.back()});
    }

    runLintSuite(Spec->Program, KernelSets, PlanSets, Diags, Opts);
    Opts.RunAccessAudit = !CL.hasOption("no-audit");
  }

  if (CL.hasOption("json")) {
    Diags.printJson(outs());
  } else {
    Diags.printText(outs());
    outs() << formatString(
        "icores_lint: %zu findings (%zu errors, %zu warnings)\n",
        Diags.numFindings(), Diags.numErrors(), Diags.numWarnings());
  }
  return Diags.hasErrors() ? 1 : 0;
}
