//===- tools/icores_lint.cpp - Stencil static-analysis driver -------------===//
//
// Runs every static analysis over the shipped MPDATA application:
//
//   icores_lint [--json] [--strategy=all|original|31d|islands]
//               [--machine=uv2000|knc|xeon] [--sockets=N]
//               [--ni= --nj= --nk=] [--no-audit]
//               [--kernels=all|ref|opt|simd]
//
//  - program validation (`program.*` findings),
//  - kernel access audit of every kernel variant against the declared
//    IR windows (`access.*`),
//  - plan dataflow verification (`plan.*`) and schedule race checking
//    (`race.*`) for each selected strategy's plan.
//
// Prints one finding per line (or the `icores.lint.v1` JSON document with
// --json) and exits nonzero when any error-severity finding is reported.
// CI runs this on every change; see DESIGN.md §7 for the finding taxonomy.
//
//===----------------------------------------------------------------------===//

#include "core/PlanBuilder.h"
#include "exec/LintSuite.h"
#include "machine/MachineModel.h"
#include "mpdata/Kernels.h"
#include "mpdata/MpdataProgram.h"
#include "support/CommandLine.h"
#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/OStream.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace icores;

namespace {

void printUsage() {
  std::printf(
      "usage: icores_lint [options]\n"
      "  --json                      emit the icores.lint.v1 JSON document\n"
      "  --strategy=all|original|31d|islands  plans to check (default all)\n"
      "  --machine=uv2000|knc|xeon   machine model for planning (default\n"
      "                              uv2000)\n"
      "  --sockets=N                 sockets to plan for (default: all)\n"
      "  --ni= --nj= --nk=           grid (default 1024x512x64)\n"
      "  --no-audit                  skip the kernel access audit\n"
      "  --kernels=all|ref|opt|simd  kernel variants to audit (default "
      "all)\n");
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL;
  for (const char *Opt : {"json", "strategy", "machine", "sockets", "ni",
                          "nj", "nk", "no-audit", "kernels", "help"})
    CL.registerOption(Opt, "");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    printUsage();
    return 1;
  }
  if (CL.hasOption("help")) {
    printUsage();
    return 0;
  }

  MachineModel Machine;
  std::string MachineName = CL.getString("machine", "uv2000");
  if (MachineName == "uv2000")
    Machine = makeSgiUv2000();
  else if (MachineName == "knc")
    Machine = makeXeonPhiKnc();
  else if (MachineName == "xeon")
    Machine = makeXeonE5_2660v2();
  else {
    std::fprintf(stderr, "error: unknown machine '%s'\n",
                 MachineName.c_str());
    return 1;
  }

  std::string StratName = CL.getString("strategy", "all");
  std::vector<std::pair<std::string, Strategy>> Strategies;
  if (StratName == "all" || StratName == "original")
    Strategies.push_back({"original", Strategy::Original});
  if (StratName == "all" || StratName == "31d")
    Strategies.push_back({"31d", Strategy::Block31D});
  if (StratName == "all" || StratName == "islands")
    Strategies.push_back({"islands", Strategy::IslandsOfCores});
  if (Strategies.empty()) {
    std::fprintf(stderr, "error: unknown strategy '%s'\n",
                 StratName.c_str());
    return 1;
  }

  int NI = static_cast<int>(CL.getInt("ni", 1024));
  int NJ = static_cast<int>(CL.getInt("nj", 512));
  int NK = static_cast<int>(CL.getInt("nk", 64));
  int Sockets =
      static_cast<int>(CL.getInt("sockets", Machine.NumSockets));

  MpdataProgram M = buildMpdataProgram();
  Box3 Grid = Box3::fromExtents(NI, NJ, NK);

  KernelTable RefKernels = buildMpdataKernels(KernelVariant::Reference);
  KernelTable OptKernels = buildMpdataKernels(KernelVariant::Optimized);
  KernelTable SimdKernels = buildMpdataKernels(KernelVariant::Simd);
  std::vector<LintKernelSet> KernelSets = {{"ref", &RefKernels},
                                           {"opt", &OptKernels},
                                           {"simd", &SimdKernels}};
  std::string KernelsName = CL.getString("kernels", "all");
  if (KernelsName != "all") {
    KernelVariant Only;
    if (!parseKernelVariant(KernelsName, Only)) {
      std::fprintf(stderr, "error: unknown kernel variant '%s'\n",
                   KernelsName.c_str());
      return 1;
    }
    KernelSets = {KernelSets[static_cast<size_t>(Only)]};
  }

  std::vector<ExecutionPlan> Plans;
  Plans.reserve(Strategies.size());
  std::vector<LintPlanSet> PlanSets;
  for (const auto &S : Strategies) {
    PlanConfig Config;
    Config.Strat = S.second;
    Config.Sockets = Sockets;
    Plans.push_back(buildPlan(M.Program, Grid, Machine, Config));
    PlanSets.push_back({S.first, &Plans.back()});
  }

  LintSuiteOptions Opts;
  Opts.RunAccessAudit = !CL.hasOption("no-audit");

  DiagnosticEngine Diags;
  runLintSuite(M.Program, KernelSets, PlanSets, Diags, Opts);

  if (CL.hasOption("json")) {
    Diags.printJson(outs());
  } else {
    Diags.printText(outs());
    outs() << formatString(
        "icores_lint: %zu findings (%zu errors, %zu warnings)\n",
        Diags.numFindings(), Diags.numErrors(), Diags.numWarnings());
  }
  return Diags.hasErrors() ? 1 : 0;
}
