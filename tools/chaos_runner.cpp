//===- tools/chaos_runner.cpp - Seed-sweeping chaos harness ---------------===//
//
// Sweeps seeds through the deterministic fault injector and asserts, for
// every seed, the chaos subsystem's two contracts:
//
//   1. Recoverable plans (drop/delay/duplicate/corrupt/stall/wake) end in
//      a result bit-identical to the fault-free run, and replaying the
//      same seed injects the identical fault multiset.
//   2. Lethal plans (nonzero lose rate — modelling peer death) end in a
//      structured icores::Error naming the injected fault, never in a
//      deadlock; a per-seed watchdog aborts the process otherwise.
//
//   chaos_runner [--seeds=N] [--lethal-every=K] [--pi --pj --ni --nj
//                 --nk --steps] [--verbose]
//
// Exit status 0 iff every seed upholds its contract. CI runs
// `chaos_runner --seeds=16` (the chaos-smoke job); the PR gate is
// `--seeds=64` locally.
//
//===----------------------------------------------------------------------===//

#include "dist/DistributedSolver.h"
#include "fault/FaultInjector.h"
#include "fault/Watchdog.h"
#include "support/CommandLine.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace icores;

namespace {

/// Smooth, index-deterministic initial data (identical on every rank, as
/// in a real MPI deployment).
DistributedInit makeInit() {
  DistributedInit Init;
  Init.State = [](int I, int J, int K) {
    return 1.0 + 0.5 * std::sin(0.37 * I) * std::cos(0.23 * J) +
           0.25 * std::sin(0.51 * K + 0.1);
  };
  Init.U1 = [](int I, int J, int K) {
    return 0.2 * std::cos(0.11 * I + 0.07 * J + 0.05 * K);
  };
  Init.U2 = [](int I, int J, int K) {
    return -0.15 * std::sin(0.09 * I - 0.13 * J + 0.03 * K);
  };
  Init.U3 = [](int I, int J, int K) {
    return 0.1 * std::cos(0.05 * I + 0.17 * K - 0.02 * J);
  };
  Init.H = [](int I, int J, int K) {
    return 1.0 + 0.1 * std::cos(0.19 * I) * std::cos(0.29 * J) *
                     std::cos(0.07 * K);
  };
  return Init;
}

/// Derives a mixed recoverable plan from one sweep seed: every rate is a
/// pure function of the seed, so the whole sweep is reproducible.
FaultPlan planForSeed(uint64_t Seed, bool Lethal) {
  FaultPlan Plan;
  Plan.Seed = Seed;
  SplitMix64 Rng(Seed ^ 0xc4a5e51dULL);
  auto rate = [&Rng](double Max) {
    return static_cast<double>(Rng.next() >> 11) * 0x1.0p-53 * Max;
  };
  Plan.DropRate = rate(0.15);
  Plan.DelayRate = rate(0.15);
  Plan.DuplicateRate = rate(0.15);
  Plan.CorruptRate = rate(0.15);
  Plan.MaxDelaySeconds = 1e-3;
  if (Lethal)
    Plan.LoseRate = 0.25; // Dense enough that some message always dies.
  return Plan;
}

std::vector<std::string> sortedTrace(const FaultInjector &Injector) {
  std::vector<std::string> T = Injector.trace();
  std::sort(T.begin(), T.end());
  return T;
}

bool traceMentions(const std::vector<std::string> &Trace,
                   const char *What) {
  for (const std::string &Entry : Trace)
    if (Entry.find(What) != std::string::npos)
      return true;
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL;
  for (const char *Opt : {"seeds", "lethal-every", "pi", "pj", "ni", "nj",
                          "nk", "steps", "verbose", "help"})
    CL.registerOption(Opt, "");
  std::string Error;
  if (!CL.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (CL.hasOption("help")) {
    std::printf("usage: chaos_runner [--seeds=N] [--lethal-every=K]\n"
                "                    [--pi --pj --ni --nj --nk --steps]\n"
                "                    [--verbose]\n");
    return 0;
  }
  const int Seeds = static_cast<int>(CL.getInt("seeds", 16));
  const int LethalEvery = static_cast<int>(CL.getInt("lethal-every", 8));
  const int PI = static_cast<int>(CL.getInt("pi", 2));
  const int PJ = static_cast<int>(CL.getInt("pj", 1));
  const int NI = static_cast<int>(CL.getInt("ni", 20));
  const int NJ = static_cast<int>(CL.getInt("nj", 12));
  const int NK = static_cast<int>(CL.getInt("nk", 6));
  const int Steps = static_cast<int>(CL.getInt("steps", 2));
  const bool Verbose = CL.hasOption("verbose");

  DistributedInit Init = makeInit();
  Box3 Core = Box3::fromExtents(NI, NJ, NK);

  // Chaos runs retry aggressively: the retransmit log satisfies a
  // re-request on the first timeout tick, so small backoffs keep the
  // sweep fast while the generous retry count keeps recoverable runs
  // far from a spurious exhaustion.
  CommTimeouts Tight;
  Tight.InitialBackoffSeconds = 2e-4;
  Tight.MaxBackoffSeconds = 4e-3;
  Tight.MaxRetries = 120;

  DistChaosResult Baseline;
  {
    Watchdog Dog(60.0, "chaos_runner: fault-free baseline");
    Baseline = runDistributedMpdataChaos(PI, PJ, NI, NJ, NK, Steps, Init,
                                         /*Injector=*/nullptr,
                                         CommTimeouts());
  }
  if (!Baseline.Ok) {
    std::fprintf(stderr, "FAIL: fault-free baseline failed: %s\n",
                 Baseline.RankErrors.front().c_str());
    return 1;
  }

  int Recovered = 0, Failed = 0, Violations = 0;
  int64_t TotalInjected = 0, TotalRetries = 0, TotalRepaired = 0;
  for (int S = 0; S != Seeds; ++S) {
    uint64_t Seed = 0x5eedULL + static_cast<uint64_t>(S) * 7919;
    bool Lethal = LethalEvery > 0 && S % LethalEvery == LethalEvery - 1;
    FaultPlan Plan = planForSeed(Seed, Lethal);

    auto runOnce = [&](FaultInjector &Injector) {
      Watchdog Dog(60.0, ("chaos_runner: seed " + std::to_string(Seed) +
                          (Lethal ? " (lethal)" : ""))
                             .c_str());
      return runDistributedMpdataChaos(PI, PJ, NI, NJ, NK, Steps, Init,
                                       &Injector, Tight);
    };
    FaultInjector Run1(Plan);
    DistChaosResult R1 = runOnce(Run1);
    FaultInjector Run2(Plan);
    DistChaosResult R2 = runOnce(Run2);

    TotalInjected += R1.Faults.Injected;
    TotalRetries += R1.Faults.Retries;
    TotalRepaired += R1.Faults.Recovered;

    auto violation = [&](const std::string &Why) {
      ++Violations;
      std::fprintf(stderr, "FAIL seed %llu (%s): %s\n",
                   static_cast<unsigned long long>(Seed),
                   Lethal ? "lethal" : "recoverable", Why.c_str());
    };

    if (Lethal) {
      // Contract 2: a structured, seed-reproducible error naming the
      // fault — and both replays agree that the run dies.
      if (R1.Ok || R2.Ok)
        violation("lose-armed run completed instead of failing");
      else if (R1.ErrorTrace.empty() ||
               !traceMentions(R1.ErrorTrace, "lose"))
        violation("structured error does not name the lost message");
      else
        ++Failed;
    } else {
      if (!R1.Ok || !R2.Ok) {
        violation("recoverable plan failed: " +
                  (R1.Ok ? R2 : R1).RankErrors.front());
      } else if (R1.State.maxAbsDiff(Baseline.State, Core) != 0.0 ||
                 R2.State.maxAbsDiff(Baseline.State, Core) != 0.0) {
        violation("recovered state is not bit-identical to fault-free");
      } else if (sortedTrace(Run1) != sortedTrace(Run2)) {
        violation("same seed injected a different fault multiset");
      } else {
        ++Recovered;
      }
    }
    if (Verbose)
      std::printf("seed %llu: %s, %lld faults, %lld retries, %lld "
                  "repaired\n",
                  static_cast<unsigned long long>(Seed),
                  Lethal ? "lethal" : "recovered",
                  static_cast<long long>(R1.Faults.Injected),
                  static_cast<long long>(R1.Faults.Retries),
                  static_cast<long long>(R1.Faults.Recovered));
  }

  std::printf("chaos_runner: %d seeds on %dx%d ranks, %dx%dx%d, %d steps\n",
              Seeds, PI, PJ, NI, NJ, NK, Steps);
  std::printf("  recovered bit-exactly: %d\n", Recovered);
  std::printf("  failed structurally:   %d (lose-armed, by design)\n",
              Failed);
  std::printf("  contract violations:   %d\n", Violations);
  std::printf("  faults injected %lld, retries %lld, repaired %lld\n",
              static_cast<long long>(TotalInjected),
              static_cast<long long>(TotalRetries),
              static_cast<long long>(TotalRepaired));
  return Violations == 0 ? 0 : 1;
}
