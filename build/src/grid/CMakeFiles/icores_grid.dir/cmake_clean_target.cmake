file(REMOVE_RECURSE
  "libicores_grid.a"
)
