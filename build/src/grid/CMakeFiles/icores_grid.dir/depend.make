# Empty dependencies file for icores_grid.
# This may be replaced when dependencies are built.
