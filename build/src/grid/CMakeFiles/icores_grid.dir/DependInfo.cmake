
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/Array3D.cpp" "src/grid/CMakeFiles/icores_grid.dir/Array3D.cpp.o" "gcc" "src/grid/CMakeFiles/icores_grid.dir/Array3D.cpp.o.d"
  "/root/repo/src/grid/Box3.cpp" "src/grid/CMakeFiles/icores_grid.dir/Box3.cpp.o" "gcc" "src/grid/CMakeFiles/icores_grid.dir/Box3.cpp.o.d"
  "/root/repo/src/grid/Domain.cpp" "src/grid/CMakeFiles/icores_grid.dir/Domain.cpp.o" "gcc" "src/grid/CMakeFiles/icores_grid.dir/Domain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icores_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
