file(REMOVE_RECURSE
  "CMakeFiles/icores_grid.dir/Array3D.cpp.o"
  "CMakeFiles/icores_grid.dir/Array3D.cpp.o.d"
  "CMakeFiles/icores_grid.dir/Box3.cpp.o"
  "CMakeFiles/icores_grid.dir/Box3.cpp.o.d"
  "CMakeFiles/icores_grid.dir/Domain.cpp.o"
  "CMakeFiles/icores_grid.dir/Domain.cpp.o.d"
  "libicores_grid.a"
  "libicores_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
