
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/Affinity.cpp" "src/exec/CMakeFiles/icores_exec.dir/Affinity.cpp.o" "gcc" "src/exec/CMakeFiles/icores_exec.dir/Affinity.cpp.o.d"
  "/root/repo/src/exec/PlanExecutor.cpp" "src/exec/CMakeFiles/icores_exec.dir/PlanExecutor.cpp.o" "gcc" "src/exec/CMakeFiles/icores_exec.dir/PlanExecutor.cpp.o.d"
  "/root/repo/src/exec/ProgramExecutor.cpp" "src/exec/CMakeFiles/icores_exec.dir/ProgramExecutor.cpp.o" "gcc" "src/exec/CMakeFiles/icores_exec.dir/ProgramExecutor.cpp.o.d"
  "/root/repo/src/exec/RegionSplit.cpp" "src/exec/CMakeFiles/icores_exec.dir/RegionSplit.cpp.o" "gcc" "src/exec/CMakeFiles/icores_exec.dir/RegionSplit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icores_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpdata/CMakeFiles/icores_mpdata.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/icores_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icores_support.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/icores_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/icores_stencil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
