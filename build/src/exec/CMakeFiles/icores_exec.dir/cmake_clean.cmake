file(REMOVE_RECURSE
  "CMakeFiles/icores_exec.dir/Affinity.cpp.o"
  "CMakeFiles/icores_exec.dir/Affinity.cpp.o.d"
  "CMakeFiles/icores_exec.dir/PlanExecutor.cpp.o"
  "CMakeFiles/icores_exec.dir/PlanExecutor.cpp.o.d"
  "CMakeFiles/icores_exec.dir/ProgramExecutor.cpp.o"
  "CMakeFiles/icores_exec.dir/ProgramExecutor.cpp.o.d"
  "CMakeFiles/icores_exec.dir/RegionSplit.cpp.o"
  "CMakeFiles/icores_exec.dir/RegionSplit.cpp.o.d"
  "libicores_exec.a"
  "libicores_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
