file(REMOVE_RECURSE
  "libicores_exec.a"
)
