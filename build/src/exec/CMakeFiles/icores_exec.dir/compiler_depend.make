# Empty compiler generated dependencies file for icores_exec.
# This may be replaced when dependencies are built.
