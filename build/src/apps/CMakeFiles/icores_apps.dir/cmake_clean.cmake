file(REMOVE_RECURSE
  "CMakeFiles/icores_apps.dir/AdvectionDiffusion.cpp.o"
  "CMakeFiles/icores_apps.dir/AdvectionDiffusion.cpp.o.d"
  "libicores_apps.a"
  "libicores_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
