# Empty compiler generated dependencies file for icores_apps.
# This may be replaced when dependencies are built.
