file(REMOVE_RECURSE
  "libicores_apps.a"
)
