
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stencil/ExtraElements.cpp" "src/stencil/CMakeFiles/icores_stencil.dir/ExtraElements.cpp.o" "gcc" "src/stencil/CMakeFiles/icores_stencil.dir/ExtraElements.cpp.o.d"
  "/root/repo/src/stencil/FieldStore.cpp" "src/stencil/CMakeFiles/icores_stencil.dir/FieldStore.cpp.o" "gcc" "src/stencil/CMakeFiles/icores_stencil.dir/FieldStore.cpp.o.d"
  "/root/repo/src/stencil/GraphExport.cpp" "src/stencil/CMakeFiles/icores_stencil.dir/GraphExport.cpp.o" "gcc" "src/stencil/CMakeFiles/icores_stencil.dir/GraphExport.cpp.o.d"
  "/root/repo/src/stencil/HaloAnalysis.cpp" "src/stencil/CMakeFiles/icores_stencil.dir/HaloAnalysis.cpp.o" "gcc" "src/stencil/CMakeFiles/icores_stencil.dir/HaloAnalysis.cpp.o.d"
  "/root/repo/src/stencil/KernelTable.cpp" "src/stencil/CMakeFiles/icores_stencil.dir/KernelTable.cpp.o" "gcc" "src/stencil/CMakeFiles/icores_stencil.dir/KernelTable.cpp.o.d"
  "/root/repo/src/stencil/SerialStepper.cpp" "src/stencil/CMakeFiles/icores_stencil.dir/SerialStepper.cpp.o" "gcc" "src/stencil/CMakeFiles/icores_stencil.dir/SerialStepper.cpp.o.d"
  "/root/repo/src/stencil/StencilIR.cpp" "src/stencil/CMakeFiles/icores_stencil.dir/StencilIR.cpp.o" "gcc" "src/stencil/CMakeFiles/icores_stencil.dir/StencilIR.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/icores_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icores_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
