# Empty dependencies file for icores_stencil.
# This may be replaced when dependencies are built.
