file(REMOVE_RECURSE
  "libicores_stencil.a"
)
