file(REMOVE_RECURSE
  "CMakeFiles/icores_stencil.dir/ExtraElements.cpp.o"
  "CMakeFiles/icores_stencil.dir/ExtraElements.cpp.o.d"
  "CMakeFiles/icores_stencil.dir/FieldStore.cpp.o"
  "CMakeFiles/icores_stencil.dir/FieldStore.cpp.o.d"
  "CMakeFiles/icores_stencil.dir/GraphExport.cpp.o"
  "CMakeFiles/icores_stencil.dir/GraphExport.cpp.o.d"
  "CMakeFiles/icores_stencil.dir/HaloAnalysis.cpp.o"
  "CMakeFiles/icores_stencil.dir/HaloAnalysis.cpp.o.d"
  "CMakeFiles/icores_stencil.dir/KernelTable.cpp.o"
  "CMakeFiles/icores_stencil.dir/KernelTable.cpp.o.d"
  "CMakeFiles/icores_stencil.dir/SerialStepper.cpp.o"
  "CMakeFiles/icores_stencil.dir/SerialStepper.cpp.o.d"
  "CMakeFiles/icores_stencil.dir/StencilIR.cpp.o"
  "CMakeFiles/icores_stencil.dir/StencilIR.cpp.o.d"
  "libicores_stencil.a"
  "libicores_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
