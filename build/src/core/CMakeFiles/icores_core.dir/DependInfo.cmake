
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/BlockPlanner.cpp" "src/core/CMakeFiles/icores_core.dir/BlockPlanner.cpp.o" "gcc" "src/core/CMakeFiles/icores_core.dir/BlockPlanner.cpp.o.d"
  "/root/repo/src/core/ExecutionPlan.cpp" "src/core/CMakeFiles/icores_core.dir/ExecutionPlan.cpp.o" "gcc" "src/core/CMakeFiles/icores_core.dir/ExecutionPlan.cpp.o.d"
  "/root/repo/src/core/Partition.cpp" "src/core/CMakeFiles/icores_core.dir/Partition.cpp.o" "gcc" "src/core/CMakeFiles/icores_core.dir/Partition.cpp.o.d"
  "/root/repo/src/core/PlanBuilder.cpp" "src/core/CMakeFiles/icores_core.dir/PlanBuilder.cpp.o" "gcc" "src/core/CMakeFiles/icores_core.dir/PlanBuilder.cpp.o.d"
  "/root/repo/src/core/PlanPrinter.cpp" "src/core/CMakeFiles/icores_core.dir/PlanPrinter.cpp.o" "gcc" "src/core/CMakeFiles/icores_core.dir/PlanPrinter.cpp.o.d"
  "/root/repo/src/core/PlanVerifier.cpp" "src/core/CMakeFiles/icores_core.dir/PlanVerifier.cpp.o" "gcc" "src/core/CMakeFiles/icores_core.dir/PlanVerifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stencil/CMakeFiles/icores_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/icores_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/icores_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icores_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
