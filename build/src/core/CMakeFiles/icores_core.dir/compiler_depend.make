# Empty compiler generated dependencies file for icores_core.
# This may be replaced when dependencies are built.
