file(REMOVE_RECURSE
  "CMakeFiles/icores_core.dir/BlockPlanner.cpp.o"
  "CMakeFiles/icores_core.dir/BlockPlanner.cpp.o.d"
  "CMakeFiles/icores_core.dir/ExecutionPlan.cpp.o"
  "CMakeFiles/icores_core.dir/ExecutionPlan.cpp.o.d"
  "CMakeFiles/icores_core.dir/Partition.cpp.o"
  "CMakeFiles/icores_core.dir/Partition.cpp.o.d"
  "CMakeFiles/icores_core.dir/PlanBuilder.cpp.o"
  "CMakeFiles/icores_core.dir/PlanBuilder.cpp.o.d"
  "CMakeFiles/icores_core.dir/PlanPrinter.cpp.o"
  "CMakeFiles/icores_core.dir/PlanPrinter.cpp.o.d"
  "CMakeFiles/icores_core.dir/PlanVerifier.cpp.o"
  "CMakeFiles/icores_core.dir/PlanVerifier.cpp.o.d"
  "libicores_core.a"
  "libicores_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
