file(REMOVE_RECURSE
  "libicores_core.a"
)
