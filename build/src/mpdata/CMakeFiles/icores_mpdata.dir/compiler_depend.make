# Empty compiler generated dependencies file for icores_mpdata.
# This may be replaced when dependencies are built.
