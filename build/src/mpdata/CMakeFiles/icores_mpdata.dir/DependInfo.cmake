
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpdata/InitialConditions.cpp" "src/mpdata/CMakeFiles/icores_mpdata.dir/InitialConditions.cpp.o" "gcc" "src/mpdata/CMakeFiles/icores_mpdata.dir/InitialConditions.cpp.o.d"
  "/root/repo/src/mpdata/Kernels.cpp" "src/mpdata/CMakeFiles/icores_mpdata.dir/Kernels.cpp.o" "gcc" "src/mpdata/CMakeFiles/icores_mpdata.dir/Kernels.cpp.o.d"
  "/root/repo/src/mpdata/KernelsOptimized.cpp" "src/mpdata/CMakeFiles/icores_mpdata.dir/KernelsOptimized.cpp.o" "gcc" "src/mpdata/CMakeFiles/icores_mpdata.dir/KernelsOptimized.cpp.o.d"
  "/root/repo/src/mpdata/MpdataProgram.cpp" "src/mpdata/CMakeFiles/icores_mpdata.dir/MpdataProgram.cpp.o" "gcc" "src/mpdata/CMakeFiles/icores_mpdata.dir/MpdataProgram.cpp.o.d"
  "/root/repo/src/mpdata/Solver.cpp" "src/mpdata/CMakeFiles/icores_mpdata.dir/Solver.cpp.o" "gcc" "src/mpdata/CMakeFiles/icores_mpdata.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stencil/CMakeFiles/icores_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/icores_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icores_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
