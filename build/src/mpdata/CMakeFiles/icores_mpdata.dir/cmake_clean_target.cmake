file(REMOVE_RECURSE
  "libicores_mpdata.a"
)
