file(REMOVE_RECURSE
  "CMakeFiles/icores_mpdata.dir/InitialConditions.cpp.o"
  "CMakeFiles/icores_mpdata.dir/InitialConditions.cpp.o.d"
  "CMakeFiles/icores_mpdata.dir/Kernels.cpp.o"
  "CMakeFiles/icores_mpdata.dir/Kernels.cpp.o.d"
  "CMakeFiles/icores_mpdata.dir/KernelsOptimized.cpp.o"
  "CMakeFiles/icores_mpdata.dir/KernelsOptimized.cpp.o.d"
  "CMakeFiles/icores_mpdata.dir/MpdataProgram.cpp.o"
  "CMakeFiles/icores_mpdata.dir/MpdataProgram.cpp.o.d"
  "CMakeFiles/icores_mpdata.dir/Solver.cpp.o"
  "CMakeFiles/icores_mpdata.dir/Solver.cpp.o.d"
  "libicores_mpdata.a"
  "libicores_mpdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_mpdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
