# Empty dependencies file for icores_machine.
# This may be replaced when dependencies are built.
