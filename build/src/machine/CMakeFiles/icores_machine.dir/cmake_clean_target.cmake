file(REMOVE_RECURSE
  "libicores_machine.a"
)
