file(REMOVE_RECURSE
  "CMakeFiles/icores_machine.dir/MachineModel.cpp.o"
  "CMakeFiles/icores_machine.dir/MachineModel.cpp.o.d"
  "libicores_machine.a"
  "libicores_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
