file(REMOVE_RECURSE
  "libicores_sim.a"
)
