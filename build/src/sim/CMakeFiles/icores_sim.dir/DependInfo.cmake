
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/CacheSim.cpp" "src/sim/CMakeFiles/icores_sim.dir/CacheSim.cpp.o" "gcc" "src/sim/CMakeFiles/icores_sim.dir/CacheSim.cpp.o.d"
  "/root/repo/src/sim/PlanAdvisor.cpp" "src/sim/CMakeFiles/icores_sim.dir/PlanAdvisor.cpp.o" "gcc" "src/sim/CMakeFiles/icores_sim.dir/PlanAdvisor.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/sim/CMakeFiles/icores_sim.dir/Simulator.cpp.o" "gcc" "src/sim/CMakeFiles/icores_sim.dir/Simulator.cpp.o.d"
  "/root/repo/src/sim/TrafficReport.cpp" "src/sim/CMakeFiles/icores_sim.dir/TrafficReport.cpp.o" "gcc" "src/sim/CMakeFiles/icores_sim.dir/TrafficReport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icores_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/icores_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/icores_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icores_support.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/icores_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
