# Empty dependencies file for icores_sim.
# This may be replaced when dependencies are built.
