file(REMOVE_RECURSE
  "CMakeFiles/icores_sim.dir/CacheSim.cpp.o"
  "CMakeFiles/icores_sim.dir/CacheSim.cpp.o.d"
  "CMakeFiles/icores_sim.dir/PlanAdvisor.cpp.o"
  "CMakeFiles/icores_sim.dir/PlanAdvisor.cpp.o.d"
  "CMakeFiles/icores_sim.dir/Simulator.cpp.o"
  "CMakeFiles/icores_sim.dir/Simulator.cpp.o.d"
  "CMakeFiles/icores_sim.dir/TrafficReport.cpp.o"
  "CMakeFiles/icores_sim.dir/TrafficReport.cpp.o.d"
  "libicores_sim.a"
  "libicores_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
