file(REMOVE_RECURSE
  "CMakeFiles/icores_support.dir/CommandLine.cpp.o"
  "CMakeFiles/icores_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/icores_support.dir/Error.cpp.o"
  "CMakeFiles/icores_support.dir/Error.cpp.o.d"
  "CMakeFiles/icores_support.dir/Format.cpp.o"
  "CMakeFiles/icores_support.dir/Format.cpp.o.d"
  "CMakeFiles/icores_support.dir/OStream.cpp.o"
  "CMakeFiles/icores_support.dir/OStream.cpp.o.d"
  "CMakeFiles/icores_support.dir/Table.cpp.o"
  "CMakeFiles/icores_support.dir/Table.cpp.o.d"
  "libicores_support.a"
  "libicores_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
