# Empty dependencies file for icores_support.
# This may be replaced when dependencies are built.
