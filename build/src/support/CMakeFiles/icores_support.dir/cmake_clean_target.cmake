file(REMOVE_RECURSE
  "libicores_support.a"
)
