file(REMOVE_RECURSE
  "CMakeFiles/icores_dist.dir/ClusterSim.cpp.o"
  "CMakeFiles/icores_dist.dir/ClusterSim.cpp.o.d"
  "CMakeFiles/icores_dist.dir/DistributedSolver.cpp.o"
  "CMakeFiles/icores_dist.dir/DistributedSolver.cpp.o.d"
  "CMakeFiles/icores_dist.dir/RankComm.cpp.o"
  "CMakeFiles/icores_dist.dir/RankComm.cpp.o.d"
  "libicores_dist.a"
  "libicores_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
