# Empty compiler generated dependencies file for icores_dist.
# This may be replaced when dependencies are built.
