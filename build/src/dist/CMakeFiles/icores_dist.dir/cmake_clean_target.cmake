file(REMOVE_RECURSE
  "libicores_dist.a"
)
