file(REMOVE_RECURSE
  "../bench/bench_ablation_partition"
  "../bench/bench_ablation_partition.pdb"
  "CMakeFiles/bench_ablation_partition.dir/bench_ablation_partition.cpp.o"
  "CMakeFiles/bench_ablation_partition.dir/bench_ablation_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
