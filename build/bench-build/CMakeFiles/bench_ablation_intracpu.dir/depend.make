# Empty dependencies file for bench_ablation_intracpu.
# This may be replaced when dependencies are built.
