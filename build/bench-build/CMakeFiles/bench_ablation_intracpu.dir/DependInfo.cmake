
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_intracpu.cpp" "bench-build/CMakeFiles/bench_ablation_intracpu.dir/bench_ablation_intracpu.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation_intracpu.dir/bench_ablation_intracpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/icores_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/icores_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icores_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/icores_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpdata/CMakeFiles/icores_mpdata.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/icores_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/icores_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/icores_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icores_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
