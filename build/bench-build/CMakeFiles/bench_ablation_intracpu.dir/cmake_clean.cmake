file(REMOVE_RECURSE
  "../bench/bench_ablation_intracpu"
  "../bench/bench_ablation_intracpu.pdb"
  "CMakeFiles/bench_ablation_intracpu.dir/bench_ablation_intracpu.cpp.o"
  "CMakeFiles/bench_ablation_intracpu.dir/bench_ablation_intracpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intracpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
