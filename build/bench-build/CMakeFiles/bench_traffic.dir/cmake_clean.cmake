file(REMOVE_RECURSE
  "../bench/bench_traffic"
  "../bench/bench_traffic.pdb"
  "CMakeFiles/bench_traffic.dir/bench_traffic.cpp.o"
  "CMakeFiles/bench_traffic.dir/bench_traffic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
