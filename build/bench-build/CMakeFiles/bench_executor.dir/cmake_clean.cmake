file(REMOVE_RECURSE
  "../bench/bench_executor"
  "../bench/bench_executor.pdb"
  "CMakeFiles/bench_executor.dir/bench_executor.cpp.o"
  "CMakeFiles/bench_executor.dir/bench_executor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
