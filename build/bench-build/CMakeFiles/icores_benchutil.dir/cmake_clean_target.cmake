file(REMOVE_RECURSE
  "libicores_benchutil.a"
)
