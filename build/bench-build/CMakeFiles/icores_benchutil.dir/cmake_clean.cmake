file(REMOVE_RECURSE
  "CMakeFiles/icores_benchutil.dir/BenchUtil.cpp.o"
  "CMakeFiles/icores_benchutil.dir/BenchUtil.cpp.o.d"
  "libicores_benchutil.a"
  "libicores_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icores_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
