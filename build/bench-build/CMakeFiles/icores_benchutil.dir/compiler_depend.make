# Empty compiler generated dependencies file for icores_benchutil.
# This may be replaced when dependencies are built.
