file(REMOVE_RECURSE
  "../bench/bench_cluster"
  "../bench/bench_cluster.pdb"
  "CMakeFiles/bench_cluster.dir/bench_cluster.cpp.o"
  "CMakeFiles/bench_cluster.dir/bench_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
