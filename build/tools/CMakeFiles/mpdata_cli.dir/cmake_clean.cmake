file(REMOVE_RECURSE
  "CMakeFiles/mpdata_cli.dir/mpdata_cli.cpp.o"
  "CMakeFiles/mpdata_cli.dir/mpdata_cli.cpp.o.d"
  "mpdata_cli"
  "mpdata_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdata_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
