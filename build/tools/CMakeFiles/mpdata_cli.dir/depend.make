# Empty dependencies file for mpdata_cli.
# This may be replaced when dependencies are built.
