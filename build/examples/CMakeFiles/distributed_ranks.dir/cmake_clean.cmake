file(REMOVE_RECURSE
  "CMakeFiles/distributed_ranks.dir/distributed_ranks.cpp.o"
  "CMakeFiles/distributed_ranks.dir/distributed_ranks.cpp.o.d"
  "distributed_ranks"
  "distributed_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
