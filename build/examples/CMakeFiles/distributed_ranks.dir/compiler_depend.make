# Empty compiler generated dependencies file for distributed_ranks.
# This may be replaced when dependencies are built.
