# Empty dependencies file for scenario_tradeoff.
# This may be replaced when dependencies are built.
