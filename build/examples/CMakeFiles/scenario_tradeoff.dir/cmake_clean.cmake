file(REMOVE_RECURSE
  "CMakeFiles/scenario_tradeoff.dir/scenario_tradeoff.cpp.o"
  "CMakeFiles/scenario_tradeoff.dir/scenario_tradeoff.cpp.o.d"
  "scenario_tradeoff"
  "scenario_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
