file(REMOVE_RECURSE
  "CMakeFiles/weather_advection.dir/weather_advection.cpp.o"
  "CMakeFiles/weather_advection.dir/weather_advection.cpp.o.d"
  "weather_advection"
  "weather_advection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_advection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
