# Empty dependencies file for weather_advection.
# This may be replaced when dependencies are built.
