# Empty compiler generated dependencies file for weather_advection.
# This may be replaced when dependencies are built.
