
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advdiff_test.cpp" "tests/CMakeFiles/icores_tests.dir/advdiff_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/advdiff_test.cpp.o.d"
  "/root/repo/tests/advisor_test.cpp" "tests/CMakeFiles/icores_tests.dir/advisor_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/advisor_test.cpp.o.d"
  "/root/repo/tests/affinity_test.cpp" "tests/CMakeFiles/icores_tests.dir/affinity_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/affinity_test.cpp.o.d"
  "/root/repo/tests/block_planner_test.cpp" "tests/CMakeFiles/icores_tests.dir/block_planner_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/block_planner_test.cpp.o.d"
  "/root/repo/tests/boundary_test.cpp" "tests/CMakeFiles/icores_tests.dir/boundary_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/boundary_test.cpp.o.d"
  "/root/repo/tests/cache_sim_test.cpp" "tests/CMakeFiles/icores_tests.dir/cache_sim_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/cache_sim_test.cpp.o.d"
  "/root/repo/tests/dist_test.cpp" "tests/CMakeFiles/icores_tests.dir/dist_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/dist_test.cpp.o.d"
  "/root/repo/tests/executor_test.cpp" "tests/CMakeFiles/icores_tests.dir/executor_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/executor_test.cpp.o.d"
  "/root/repo/tests/extra_elements_test.cpp" "tests/CMakeFiles/icores_tests.dir/extra_elements_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/extra_elements_test.cpp.o.d"
  "/root/repo/tests/generic_runtime_test.cpp" "tests/CMakeFiles/icores_tests.dir/generic_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/generic_runtime_test.cpp.o.d"
  "/root/repo/tests/graph_export_test.cpp" "tests/CMakeFiles/icores_tests.dir/graph_export_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/graph_export_test.cpp.o.d"
  "/root/repo/tests/grid_test.cpp" "tests/CMakeFiles/icores_tests.dir/grid_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/grid_test.cpp.o.d"
  "/root/repo/tests/halo_analysis_test.cpp" "tests/CMakeFiles/icores_tests.dir/halo_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/halo_analysis_test.cpp.o.d"
  "/root/repo/tests/kernel_variants_test.cpp" "tests/CMakeFiles/icores_tests.dir/kernel_variants_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/kernel_variants_test.cpp.o.d"
  "/root/repo/tests/kernels_test.cpp" "tests/CMakeFiles/icores_tests.dir/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/kernels_test.cpp.o.d"
  "/root/repo/tests/machine_test.cpp" "tests/CMakeFiles/icores_tests.dir/machine_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/machine_test.cpp.o.d"
  "/root/repo/tests/mpdata_program_test.cpp" "tests/CMakeFiles/icores_tests.dir/mpdata_program_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/mpdata_program_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/icores_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/physics_convergence_test.cpp" "tests/CMakeFiles/icores_tests.dir/physics_convergence_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/physics_convergence_test.cpp.o.d"
  "/root/repo/tests/plan_builder_test.cpp" "tests/CMakeFiles/icores_tests.dir/plan_builder_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/plan_builder_test.cpp.o.d"
  "/root/repo/tests/plan_verifier_test.cpp" "tests/CMakeFiles/icores_tests.dir/plan_verifier_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/plan_verifier_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/icores_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/simulator_test.cpp" "tests/CMakeFiles/icores_tests.dir/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/solver_test.cpp" "tests/CMakeFiles/icores_tests.dir/solver_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/solver_test.cpp.o.d"
  "/root/repo/tests/stencil_ir_test.cpp" "tests/CMakeFiles/icores_tests.dir/stencil_ir_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/stencil_ir_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/icores_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/traffic_report_test.cpp" "tests/CMakeFiles/icores_tests.dir/traffic_report_test.cpp.o" "gcc" "tests/CMakeFiles/icores_tests.dir/traffic_report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/icores_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/icores_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/icores_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icores_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/icores_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpdata/CMakeFiles/icores_mpdata.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/icores_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/icores_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/icores_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icores_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
