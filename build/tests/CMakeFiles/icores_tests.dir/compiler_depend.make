# Empty compiler generated dependencies file for icores_tests.
# This may be replaced when dependencies are built.
