//===- machine/MachineModel.h - SMP/NUMA machine description ----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MachineModel captures the SMP/NUMA parameters the paper's effects hinge
/// on: per-socket compute peak, last-level cache capacity, local DRAM
/// bandwidth, the inter-node (NUMAlink-style) interconnect, and the costs
/// of cross-socket coherence and synchronization. The performance simulator
/// (src/sim) charges every schedule against these parameters.
///
/// Calibration note: the *structural* parameters (sockets, cores, GHz,
/// cache, bandwidths) come from published SGI UV 2000 / Xeon specs; the
/// *behavioural* coefficients (kernel efficiency, barrier costs, home-node
/// contention curve, cache spill fraction) are calibrated once against the
/// paper's single-socket measurements and scaling curves, and are then held
/// fixed across all strategies and experiments.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_MACHINE_MACHINEMODEL_H
#define ICORES_MACHINE_MACHINEMODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace icores {

/// Parameters of one SMP/NUMA machine.
struct MachineModel {
  std::string Name;

  // --- Structure -------------------------------------------------------
  int NumSockets = 1;        ///< NUMA nodes (one multicore CPU each).
  int CoresPerSocket = 8;    ///< Physical cores per socket.
  double FreqGHz = 3.3;      ///< Core clock.
  int FlopsPerCyclePerCore = 4; ///< Peak DP flops/cycle/core (AVX mul+add
                                ///< balance as counted by the paper).
  int64_t LlcBytesPerSocket = 16ll << 20; ///< Shared L3 per socket.

  // --- Bandwidths ------------------------------------------------------
  double DramBandwidthPerSocket = 38e9; ///< Sustained local stream, B/s.
  double LinkBandwidth = 6.7e9; ///< Interconnect per direction per link, B/s.
  /// Fraction of LinkBandwidth cache-to-cache (halo) transfers achieve
  /// after latency, directory lookups and line granularity.
  double RemoteAccessEfficiency = 0.30;
  /// Fraction of on-demand remote halo transfer time hidden under compute
  /// by hardware prefetch and out-of-order execution.
  double RemoteOverlapFactor = 0.95;
  /// Extra derating of the remote stream rate when the pages live two
  /// topology hops away (across the backplane rather than within a
  /// blade): longer NUMAlink path, one more router. Applied on top of
  /// RemoteAccessEfficiency by remoteStreamBandwidth().
  double RemoteHop2Factor = 0.85;

  // --- Behavioural coefficients (calibrated, see class comment) --------
  /// Fraction of per-socket peak the in-cache MPDATA kernels sustain.
  double KernelEfficiency = 0.55;
  /// Team barrier: Base + PerSocket*(S-1) + Quadratic*S^2 seconds for a
  /// barrier spanning S sockets. The quadratic term models the coherence
  /// line bouncing across the directory under contention.
  double BarrierBase = 0.4e-6;
  double BarrierPerSocket = 6.9e-6;
  double BarrierQuadratic = 0.43e-6;
  /// Additional barrier cost per participating thread (dominant on
  /// manycore parts like the Xeon Phi, where 60+ threads synchronize).
  double BarrierPerThread = 3.0e-8;
  /// Home-node contention for serial-initialized pages: the effective
  /// service rate of one node's memory controller under P-socket load is
  /// Dram / (1 + Max*(P-1)/((P-1)+HalfP)) (saturating curve).
  double HomeContentionMax = 2.2;
  double HomeContentionHalfP = 3.8;
  /// Fraction of intermediate-array sweep traffic that still reaches DRAM
  /// in cache-blocked execution (conflict misses, TLB, LRU imperfection).
  double CacheSpillFraction = 0.20;
  /// Fraction of the LLC the block planner may budget for block state.
  double CacheBudgetFraction = 0.5;
  /// Fixed per-time-step cost (halo refresh, scheduler turnover), seconds.
  double StepOverheadSeconds = 2.0e-3;
  /// True when stores bypass the cache (no write-allocate read traffic).
  bool NonTemporalStores = true;

  // --- Derived ---------------------------------------------------------
  double peakFlopsPerCore() const { return FreqGHz * 1e9 * FlopsPerCyclePerCore; }
  double peakFlopsPerSocket() const {
    return peakFlopsPerCore() * CoresPerSocket;
  }
  double peakFlops(int Sockets) const {
    return peakFlopsPerSocket() * Sockets;
  }
  int totalCores() const { return NumSockets * CoresPerSocket; }

  /// Effective DRAM rate of one home node serving \p Sockets sockets'
  /// demand (serial-init placement; saturating contention).
  double homeNodeBandwidth(int Sockets) const;

  /// Topology hop count between two sockets: 0 (same), 1 (same blade),
  /// 2 (via backplane). The UV 2000 packs two sockets per blade.
  int topologyDistance(int SocketA, int SocketB) const;

  /// Sustained rate (B/s) at which a team on \p SocketA streams pages
  /// homed on \p SocketB: full local DRAM bandwidth at hop 0, the
  /// latency-derated link rate at hop 1, and hop 2 further derated by
  /// RemoteHop2Factor. On single-node machines (LinkBandwidth == 0) every
  /// page is local, so the local rate is returned — the graceful
  /// single-node fallback of the placement model.
  double remoteStreamBandwidth(int SocketA, int SocketB) const;

  /// Effective stream rate a team on \p Home sees with its pages
  /// interleaved round-robin across \p Sockets nodes (1/S of every stream
  /// local, the rest paying the per-pair remote rate): the harmonic
  /// pipeline rate of the per-slice rates.
  double interleaveStreamBandwidth(int Home,
                                   const std::vector<int> &Sockets) const;

  /// Team barrier cost for a barrier spanning \p Sockets sockets.
  /// The two-argument form adds the per-thread fan-in term for a team of
  /// \p Threads threads; the one-argument form assumes full sockets.
  double barrierCost(int Sockets) const;
  double barrierCost(int Sockets, int Threads) const;
};

/// The paper's evaluation platform: SGI UV 2000, 14 x Xeon E5-4627v2
/// (8 cores, 3.3 GHz), 16 MB L3, NUMAlink 6 (6.7 GB/s per direction).
/// Theoretical peak 105.6 Gflop/s per socket, 1478.4 Gflop/s total.
MachineModel makeSgiUv2000();

/// The single-socket platform of the paper's Sect. 3.2 traffic study:
/// Xeon E5-2660v2 (10 cores, 2.2 GHz, 25 MB L3).
MachineModel makeXeonE5_2660v2();

/// The first-generation Intel Xeon Phi (Knights Corner) coprocessor the
/// paper's earlier MPDATA work targeted: one socket of 60 weak cores with
/// an expensive all-thread barrier — the regime where applying
/// islands-of-cores *within* the chip (the paper's future work) pays off.
MachineModel makeXeonPhiKnc();

/// A deliberately small toy machine for unit tests (2 sockets x 2 cores).
MachineModel makeToyMachine();

} // namespace icores

#endif // ICORES_MACHINE_MACHINEMODEL_H
