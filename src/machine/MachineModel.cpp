//===- machine/MachineModel.cpp - SMP/NUMA machine description -----------===//

#include "machine/MachineModel.h"

#include "support/Error.h"

using namespace icores;

double MachineModel::homeNodeBandwidth(int Sockets) const {
  ICORES_CHECK(Sockets >= 1 && Sockets <= NumSockets,
               "socket count out of range");
  double P = static_cast<double>(Sockets - 1);
  double Slowdown = 1.0 + HomeContentionMax * P / (P + HomeContentionHalfP);
  return DramBandwidthPerSocket / Slowdown;
}

int MachineModel::topologyDistance(int SocketA, int SocketB) const {
  ICORES_CHECK(SocketA >= 0 && SocketA < NumSockets && SocketB >= 0 &&
                   SocketB < NumSockets,
               "socket id out of range");
  if (SocketA == SocketB)
    return 0;
  // Two sockets per blade, blades connected through the backplane.
  return (SocketA / 2 == SocketB / 2) ? 1 : 2;
}

double MachineModel::remoteStreamBandwidth(int SocketA, int SocketB) const {
  if (SocketA == SocketB || LinkBandwidth <= 0.0)
    return DramBandwidthPerSocket;
  double Rate = LinkBandwidth * RemoteAccessEfficiency;
  if (topologyDistance(SocketA, SocketB) >= 2)
    Rate *= RemoteHop2Factor;
  return Rate;
}

double MachineModel::interleaveStreamBandwidth(
    int Home, const std::vector<int> &Sockets) const {
  if (Sockets.size() <= 1)
    return DramBandwidthPerSocket;
  // 1/S of the stream comes from each node; slices are consumed in page
  // order, so the rates pipeline harmonically.
  double SecondsPerByte = 0.0;
  double Share = 1.0 / static_cast<double>(Sockets.size());
  for (int S : Sockets)
    SecondsPerByte += Share / remoteStreamBandwidth(Home, S);
  return 1.0 / SecondsPerByte;
}

double MachineModel::barrierCost(int Sockets) const {
  return barrierCost(Sockets, Sockets * CoresPerSocket);
}

double MachineModel::barrierCost(int Sockets, int Threads) const {
  ICORES_CHECK(Sockets >= 1, "barrier must span at least one socket");
  ICORES_CHECK(Threads >= 1, "barrier must have at least one thread");
  double S = static_cast<double>(Sockets);
  return BarrierBase + BarrierPerSocket * (S - 1.0) +
         BarrierQuadratic * S * S + BarrierPerThread * Threads;
}

MachineModel icores::makeSgiUv2000() {
  MachineModel M;
  M.Name = "SGI UV 2000 (14x Xeon E5-4627v2)";
  M.NumSockets = 14;
  M.CoresPerSocket = 8;
  M.FreqGHz = 3.3;
  M.FlopsPerCyclePerCore = 4; // 105.6 Gflop/s per socket as in Table 4.
  M.LlcBytesPerSocket = 16ll << 20;
  M.DramBandwidthPerSocket = 34e9;
  M.LinkBandwidth = 6.7e9; // NUMAlink 6, per direction.
  return M;
}

MachineModel icores::makeXeonE5_2660v2() {
  MachineModel M;
  M.Name = "Intel Xeon E5-2660v2 (single socket)";
  M.NumSockets = 1;
  M.CoresPerSocket = 10;
  M.FreqGHz = 2.2;
  M.FlopsPerCyclePerCore = 4;
  M.LlcBytesPerSocket = 25ll << 20;
  M.DramBandwidthPerSocket = 42e9;
  M.LinkBandwidth = 0.0; // Single socket: no interconnect.
  return M;
}

MachineModel icores::makeXeonPhiKnc() {
  MachineModel M;
  M.Name = "Intel Xeon Phi 5110P (Knights Corner)";
  M.NumSockets = 1;
  M.CoresPerSocket = 60;
  M.FreqGHz = 1.053;
  M.FlopsPerCyclePerCore = 16; // 512-bit FMA.
  M.LlcBytesPerSocket = 30ll << 20; // 60 x 512 KiB coherent L2 ring.
  M.DramBandwidthPerSocket = 150e9;  // GDDR5, sustained stream.
  M.LinkBandwidth = 0.0;
  M.KernelEfficiency = 0.18; // In-order cores; hard to saturate.
  // The coherent ring makes all-thread barriers expensive; per-thread
  // fan-in dominates.
  M.BarrierPerThread = 2.0e-7;
  return M;
}

MachineModel icores::makeToyMachine() {
  MachineModel M;
  M.Name = "toy 2x2";
  M.NumSockets = 2;
  M.CoresPerSocket = 2;
  M.FreqGHz = 1.0;
  M.FlopsPerCyclePerCore = 2;
  M.LlcBytesPerSocket = 1ll << 20;
  M.DramBandwidthPerSocket = 10e9;
  M.LinkBandwidth = 2e9;
  return M;
}
