//===- support/Random.h - Deterministic PRNG --------------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64 pseudo-random generator. Workload generators and property
/// tests need reproducible streams independent of the standard library
/// implementation, so we ship our own.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_RANDOM_H
#define ICORES_SUPPORT_RANDOM_H

#include <cstdint>

namespace icores {

/// SplitMix64: tiny, fast, and statistically solid for test workloads.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns a double uniformly distributed in [Lo, Hi).
  double nextInRange(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Returns an integer uniformly distributed in [0, Bound).
  uint64_t nextBounded(uint64_t Bound) {
    // Bound == 0 would be a caller bug; map it to 0 deterministically.
    return Bound == 0 ? 0 : next() % Bound;
  }

private:
  uint64_t State;
};

} // namespace icores

#endif // ICORES_SUPPORT_RANDOM_H
