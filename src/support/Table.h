//===- support/Table.h - ASCII/CSV table rendering --------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TablePrinter renders the paper-style result tables (Tables 1-4) either as
/// aligned ASCII or as CSV. Benchmarks build one row per configuration and
/// print to stdout so runs can be diffed against EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_TABLE_H
#define ICORES_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace icores {

class OStream;

/// Accumulates rows of cells and renders them with aligned columns.
class TablePrinter {
public:
  /// Creates a table with the given column \p Headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: starts an empty row to be filled with appendCell().
  void startRow();

  /// Appends one cell to the row opened by startRow().
  void appendCell(std::string Cell);

  unsigned numRows() const { return static_cast<unsigned>(Rows.size()); }
  unsigned numColumns() const { return static_cast<unsigned>(Headers.size()); }

  /// Renders as aligned ASCII with a header separator line.
  void print(OStream &OS) const;

  /// Renders as CSV (no alignment padding), quoting per RFC 4180: fields
  /// containing commas, quotes or line breaks are double-quoted with
  /// embedded quotes doubled, so cells round-trip through any compliant
  /// parser.
  void printCsv(OStream &OS) const;

  /// Renders to a string using print().
  std::string toString() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace icores

#endif // ICORES_SUPPORT_TABLE_H
