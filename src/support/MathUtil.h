//===- support/MathUtil.h - Small integer math helpers ----------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer helpers shared by partitioners and the block planner.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_MATHUTIL_H
#define ICORES_SUPPORT_MATHUTIL_H

#include <cassert>
#include <cstdint>

namespace icores {

/// Returns ceil(A / B) for positive integers.
constexpr int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0 && "ceilDiv by non-positive divisor");
  return (A + B - 1) / B;
}

/// Rounds \p A up to the next multiple of \p B.
constexpr int64_t roundUpTo(int64_t A, int64_t B) { return ceilDiv(A, B) * B; }

/// Splits \p Total into \p Parts nearly equal chunks; returns the size of
/// chunk \p Index (first Total % Parts chunks get one extra element).
constexpr int64_t chunkSize(int64_t Total, int64_t Parts, int64_t Index) {
  assert(Parts > 0 && Index >= 0 && Index < Parts && "bad chunk request");
  int64_t Base = Total / Parts;
  int64_t Extra = Total % Parts;
  return Base + (Index < Extra ? 1 : 0);
}

/// Returns the start offset of chunk \p Index under chunkSize() splitting.
constexpr int64_t chunkBegin(int64_t Total, int64_t Parts, int64_t Index) {
  assert(Parts > 0 && Index >= 0 && Index <= Parts && "bad chunk request");
  int64_t Base = Total / Parts;
  int64_t Extra = Total % Parts;
  return Base * Index + (Index < Extra ? Index : Extra);
}

} // namespace icores

#endif // ICORES_SUPPORT_MATHUTIL_H
