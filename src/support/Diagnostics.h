//===- support/Diagnostics.h - Severity-tagged analysis findings -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Findings infrastructure shared by the static analyses (program
/// validation, plan verification, access audit, schedule race check) and
/// the `icores_lint` driver. A Finding carries a stable machine-readable
/// id ("access.read.outside-window"), a severity, a human-readable message
/// and ordered key/value context notes. A DiagnosticEngine accumulates
/// findings — analyses report everything they see instead of stopping at
/// the first error — and renders them as text or as `icores.lint.v1` JSON.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_DIAGNOSTICS_H
#define ICORES_SUPPORT_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace icores {

class OStream;

/// How bad a finding is. Errors make `icores_lint` exit nonzero; warnings
/// flag quantified inefficiencies (e.g. over-declared windows inflating the
/// Table 2 redundancy budget); notes are informational.
enum class Severity {
  Note,
  Warning,
  Error,
};

/// Lowercase severity name ("error", "warning", "note").
const char *severityName(Severity Sev);

/// One finding of one analysis.
struct Finding {
  /// Stable dotted identifier, e.g. "race.intra.read-write". Tests and
  /// downstream tooling match on this, never on the message text.
  std::string Id;
  Severity Sev = Severity::Error;
  /// Human-readable one-line description.
  std::string Message;
  /// Ordered context notes (stage/array/island names, regions, counts).
  std::vector<std::pair<std::string, std::string>> Notes;

  /// Appends a context note; returns *this for chaining.
  Finding &note(std::string Key, std::string Value);
};

/// Accumulates findings across analyses and renders them.
class DiagnosticEngine {
public:
  /// Records a finding and returns a reference for adding notes. The
  /// reference is invalidated by the next report() call.
  Finding &report(Severity Sev, std::string Id, std::string Message);

  const std::vector<Finding> &findings() const { return Findings; }
  size_t numFindings() const { return Findings.size(); }

  /// Mutable access to an already-reported finding (drivers use this to
  /// attach context notes — e.g. the plan label — after an analysis ran).
  Finding &finding(size_t Index) { return Findings.at(Index); }
  size_t count(Severity Sev) const;
  size_t numErrors() const { return count(Severity::Error); }
  size_t numWarnings() const { return count(Severity::Warning); }
  bool hasErrors() const { return numErrors() != 0; }

  /// True when any finding carries the given stable id.
  bool hasFinding(const std::string &Id) const;

  /// Message of the first finding with severity Error, or "" when clean.
  std::string firstErrorMessage() const;

  /// Drops exact duplicate findings (same id, severity, message and
  /// notes), keeping the first occurrence and the overall order. Analyses
  /// that replay a schedule — e.g. each fused step of a temporal plan —
  /// can report the same defect once per replay; drivers dedupe before
  /// rendering so a finding appears once per distinct id+context. Returns
  /// the number of findings removed.
  size_t dedupe();

  /// Drops all findings.
  void clear() { Findings.clear(); }

  /// Renders one finding per line: "error: <id>: <message> [k=v, ...]".
  void printText(OStream &OS) const;

  /// Renders the `icores.lint.v1` JSON document (see DESIGN.md §7).
  void printJson(OStream &OS) const;

private:
  std::vector<Finding> Findings;
};

} // namespace icores

#endif // ICORES_SUPPORT_DIAGNOSTICS_H
