//===- support/Error.h - Fatal-error and unreachable helpers ---*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for reporting programmatic errors. Invariant violations (caller
/// bugs) abort with a diagnostic, mirroring the LLVM convention of
/// assert/llvm_unreachable. Recoverable *runtime* failures of the
/// distributed layer — a peer that stopped responding, a poisoned world —
/// are different: they depend on external conditions, not on caller
/// correctness, so they are reported as structured icores::Error
/// exceptions carrying the machine-readable failure kind and, under fault
/// injection, the trace of the faults that caused them.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_ERROR_H
#define ICORES_SUPPORT_ERROR_H

#include <exception>
#include <string>
#include <vector>

namespace icores {

/// Prints \p Msg (with file/line context) to stderr and aborts. Used for
/// invariant violations that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   int Line);

/// A structured, recoverable runtime failure. Thrown by the distributed
/// substrate (dist/RankComm.h) when a receive exhausts its retry budget or
/// the world has been poisoned by a failing peer; never thrown for caller
/// bugs (those abort via ICORES_CHECK). The fault trace names the
/// injected faults that provoked the failure, so a seeded chaos run can
/// assert *which* fault it died of.
class Error : public std::exception {
public:
  enum class Kind {
    RecvTimeout,   ///< recv() exhausted its retry/backoff budget.
    WorldPoisoned, ///< A peer rank failed; the world is unusable.
    Generic,       ///< Other structured runtime failure.
  };

  Error(Kind K, std::string Message,
        std::vector<std::string> FaultTrace = {})
      : K(K), Message(std::move(Message)), Trace(std::move(FaultTrace)) {}

  const char *what() const noexcept override { return Message.c_str(); }

  Kind kind() const { return K; }
  const std::string &message() const { return Message; }

  /// The injected faults (as recorded by fault/FaultInjector.h) relevant
  /// to this failure; empty when no fault plan was armed.
  const std::vector<std::string> &faultTrace() const { return Trace; }

  static const char *kindName(Kind K);

private:
  Kind K;
  std::string Message;
  std::vector<std::string> Trace;
};

} // namespace icores

/// Aborts with a message; marks code paths that must never be reached.
#define ICORES_UNREACHABLE(MSG)                                                \
  ::icores::reportFatalError(MSG, __FILE__, __LINE__)

/// Release-mode-checked invariant: unlike assert, this fires in all build
/// configurations. Use for cheap checks guarding memory safety.
#define ICORES_CHECK(COND, MSG)                                                \
  do {                                                                         \
    if (!(COND))                                                               \
      ::icores::reportFatalError(MSG, __FILE__, __LINE__);                     \
  } while (false)

#endif // ICORES_SUPPORT_ERROR_H
