//===- support/Error.h - Fatal-error and unreachable helpers ---*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for reporting programmatic errors. Library code in this project
/// never throws; invariant violations abort with a diagnostic, mirroring the
/// LLVM convention of assert/llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_ERROR_H
#define ICORES_SUPPORT_ERROR_H

namespace icores {

/// Prints \p Msg (with file/line context) to stderr and aborts. Used for
/// invariant violations that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   int Line);

} // namespace icores

/// Aborts with a message; marks code paths that must never be reached.
#define ICORES_UNREACHABLE(MSG)                                                \
  ::icores::reportFatalError(MSG, __FILE__, __LINE__)

/// Release-mode-checked invariant: unlike assert, this fires in all build
/// configurations. Use for cheap checks guarding memory safety.
#define ICORES_CHECK(COND, MSG)                                                \
  do {                                                                         \
    if (!(COND))                                                               \
      ::icores::reportFatalError(MSG, __FILE__, __LINE__);                     \
  } while (false)

#endif // ICORES_SUPPORT_ERROR_H
