//===- support/Diagnostics.cpp - Severity-tagged analysis findings --------===//

#include "support/Diagnostics.h"

#include "support/OStream.h"

using namespace icores;

const char *icores::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

Finding &Finding::note(std::string Key, std::string Value) {
  Notes.emplace_back(std::move(Key), std::move(Value));
  return *this;
}

Finding &DiagnosticEngine::report(Severity Sev, std::string Id,
                                  std::string Message) {
  Finding F;
  F.Id = std::move(Id);
  F.Sev = Sev;
  F.Message = std::move(Message);
  Findings.push_back(std::move(F));
  return Findings.back();
}

size_t DiagnosticEngine::count(Severity Sev) const {
  size_t N = 0;
  for (const Finding &F : Findings)
    if (F.Sev == Sev)
      ++N;
  return N;
}

bool DiagnosticEngine::hasFinding(const std::string &Id) const {
  for (const Finding &F : Findings)
    if (F.Id == Id)
      return true;
  return false;
}

size_t DiagnosticEngine::dedupe() {
  // Quadratic over the findings of one run — lint runs report dozens of
  // findings, not thousands, and this keeps first-occurrence order
  // without imposing an ordering or hash on Finding.
  std::vector<Finding> Unique;
  Unique.reserve(Findings.size());
  for (Finding &F : Findings) {
    bool Seen = false;
    for (const Finding &U : Unique)
      Seen |= U.Id == F.Id && U.Sev == F.Sev && U.Message == F.Message &&
              U.Notes == F.Notes;
    if (!Seen)
      Unique.push_back(std::move(F));
  }
  size_t Removed = Findings.size() - Unique.size();
  Findings = std::move(Unique);
  return Removed;
}

std::string DiagnosticEngine::firstErrorMessage() const {
  for (const Finding &F : Findings)
    if (F.Sev == Severity::Error)
      return F.Message;
  return std::string();
}

void DiagnosticEngine::printText(OStream &OS) const {
  for (const Finding &F : Findings) {
    OS << severityName(F.Sev) << ": " << F.Id << ": " << F.Message;
    if (!F.Notes.empty()) {
      OS << " [";
      for (size_t N = 0; N != F.Notes.size(); ++N) {
        if (N != 0)
          OS << ", ";
        OS << F.Notes[N].first << "=" << F.Notes[N].second;
      }
      OS << "]";
    }
    OS << "\n";
  }
}

namespace {

/// Writes \p S as a JSON string literal (quotes included).
void writeJsonString(OStream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        const char *Hex = "0123456789abcdef";
        char Buf[7] = {'\\', 'u', '0', '0', Hex[(C >> 4) & 0xf],
                       Hex[C & 0xf], 0};
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

} // namespace

void DiagnosticEngine::printJson(OStream &OS) const {
  OS << "{\n";
  OS << "  \"schema\": \"icores.lint.v1\",\n";
  OS << "  \"errors\": " << static_cast<unsigned long long>(numErrors())
     << ",\n";
  OS << "  \"warnings\": " << static_cast<unsigned long long>(numWarnings())
     << ",\n";
  OS << "  \"notes\": " << static_cast<unsigned long long>(count(Severity::Note))
     << ",\n";
  OS << "  \"findings\": [";
  for (size_t I = 0; I != Findings.size(); ++I) {
    const Finding &F = Findings[I];
    OS << (I == 0 ? "\n" : ",\n");
    OS << "    {\"id\": ";
    writeJsonString(OS, F.Id);
    OS << ", \"severity\": \"" << severityName(F.Sev) << "\", \"message\": ";
    writeJsonString(OS, F.Message);
    OS << ",\n     \"notes\": {";
    for (size_t N = 0; N != F.Notes.size(); ++N) {
      if (N != 0)
        OS << ", ";
      writeJsonString(OS, F.Notes[N].first);
      OS << ": ";
      writeJsonString(OS, F.Notes[N].second);
    }
    OS << "}}";
  }
  OS << (Findings.empty() ? "]\n" : "\n  ]\n");
  OS << "}\n";
}
