//===- support/OStream.h - Lightweight output streams ----------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal raw_ostream-style output abstraction. The project follows the
/// LLVM convention of avoiding <iostream> in library code; these streams
/// provide formatted output to FILE* handles and std::string buffers.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_OSTREAM_H
#define ICORES_SUPPORT_OSTREAM_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace icores {

/// Abstract byte-oriented output stream with operator<< conveniences.
///
/// Deliberately tiny: concrete sinks override a single write() hook. The
/// class carries a vtable, so it provides an out-of-line anchor.
class OStream {
public:
  virtual ~OStream();

  /// Writes \p Size bytes starting at \p Data to the underlying sink.
  virtual void write(const char *Data, size_t Size) = 0;

  OStream &operator<<(std::string_view S) {
    write(S.data(), S.size());
    return *this;
  }
  OStream &operator<<(const char *S) { return *this << std::string_view(S); }
  OStream &operator<<(const std::string &S) {
    return *this << std::string_view(S);
  }
  OStream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  OStream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  OStream &operator<<(long long N);
  OStream &operator<<(unsigned long long N);
  OStream &operator<<(int N) { return *this << static_cast<long long>(N); }
  OStream &operator<<(unsigned N) {
    return *this << static_cast<unsigned long long>(N);
  }
  OStream &operator<<(long N) { return *this << static_cast<long long>(N); }
  OStream &operator<<(unsigned long N) {
    return *this << static_cast<unsigned long long>(N);
  }
  OStream &operator<<(double D);
};

/// Stream sink writing to a stdio FILE handle (not owned).
class FileOStream : public OStream {
public:
  explicit FileOStream(std::FILE *F) : File(F) {}

  void write(const char *Data, size_t Size) override;

private:
  std::FILE *File;
};

/// Stream sink appending to a caller-owned std::string.
class StringOStream : public OStream {
public:
  explicit StringOStream(std::string &Buf) : Buffer(Buf) {}

  void write(const char *Data, size_t Size) override;

  const std::string &str() const { return Buffer; }

private:
  std::string &Buffer;
};

/// Returns a process-wide stream bound to stdout.
OStream &outs();

/// Returns a process-wide stream bound to stderr.
OStream &errs();

} // namespace icores

#endif // ICORES_SUPPORT_OSTREAM_H
