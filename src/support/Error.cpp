//===- support/Error.cpp - Fatal-error and unreachable helpers -----------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void icores::reportFatalError(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "icores fatal error: %s (%s:%d)\n", Msg, File, Line);
  std::abort();
}

const char *icores::Error::kindName(Kind K) {
  switch (K) {
  case Kind::RecvTimeout:
    return "recv-timeout";
  case Kind::WorldPoisoned:
    return "world-poisoned";
  case Kind::Generic:
    return "generic";
  }
  ICORES_UNREACHABLE("unknown error kind");
}
