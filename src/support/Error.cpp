//===- support/Error.cpp - Fatal-error and unreachable helpers -----------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void icores::reportFatalError(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "icores fatal error: %s (%s:%d)\n", Msg, File, Line);
  std::abort();
}
