//===- support/Format.h - String formatting helpers ------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus a few numeric-presentation
/// helpers shared by the table printer and the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_FORMAT_H
#define ICORES_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace icores {

/// Formats like printf, returning the result as a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders \p Value with \p Decimals digits after the decimal point.
std::string formatFixed(double Value, int Decimals);

/// Renders \p Value as a percentage with \p Decimals fractional digits,
/// e.g. formatPercent(0.254, 1) == "25.4".
std::string formatPercent(double Fraction, int Decimals);

/// Renders a byte count using binary units, e.g. "1.5 GiB".
std::string formatBytes(uint64_t Bytes);

/// Renders seconds with adaptive precision (e.g. "9.00 s", "3.1 ms").
std::string formatSeconds(double Seconds);

} // namespace icores

#endif // ICORES_SUPPORT_FORMAT_H
