//===- support/CommandLine.h - Tiny option parser ---------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small --key=value command-line parser used by the examples and the
/// benchmark drivers. Unknown options are reported and cause failure so that
/// typos in experiment sweeps never pass silently.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SUPPORT_COMMANDLINE_H
#define ICORES_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace icores {

/// Parses "--key=value" and bare "--flag" arguments.
class CommandLine {
public:
  /// Parses argv; returns false (and fills \p Error) on malformed input.
  bool parse(int Argc, const char *const *Argv, std::string &Error);

  /// Registers a known option with a help string; parse() rejects options
  /// that were never registered.
  void registerOption(const std::string &Name, const std::string &Help);

  bool hasOption(const std::string &Name) const;
  std::string getString(const std::string &Name,
                        const std::string &Default) const;
  int64_t getInt(const std::string &Name, int64_t Default) const;
  double getDouble(const std::string &Name, double Default) const;
  bool getBool(const std::string &Name, bool Default) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string> &positionalArgs() const { return Positional; }

  /// Renders a help listing of registered options.
  std::string helpText() const;

private:
  std::map<std::string, std::string> Values;
  std::map<std::string, std::string> Registered;
  std::vector<std::string> Positional;
};

} // namespace icores

#endif // ICORES_SUPPORT_COMMANDLINE_H
