//===- support/Format.cpp - String formatting helpers --------------------===//

#include "support/Format.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

using namespace icores;

std::string icores::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Needed >= 0 && "invalid format string");

  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string icores::formatFixed(double Value, int Decimals) {
  return formatString("%.*f", Decimals, Value);
}

std::string icores::formatPercent(double Fraction, int Decimals) {
  return formatString("%.*f", Decimals, Fraction * 100.0);
}

std::string icores::formatBytes(uint64_t Bytes) {
  static const char *const Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit + 1 < sizeof(Units) / sizeof(Units[0])) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return formatString("%llu B", static_cast<unsigned long long>(Bytes));
  return formatString("%.2f %s", Value, Units[Unit]);
}

std::string icores::formatSeconds(double Seconds) {
  if (Seconds >= 1.0)
    return formatString("%.2f s", Seconds);
  if (Seconds >= 1e-3)
    return formatString("%.2f ms", Seconds * 1e3);
  if (Seconds >= 1e-6)
    return formatString("%.2f us", Seconds * 1e6);
  return formatString("%.0f ns", Seconds * 1e9);
}
