//===- support/Table.cpp - ASCII/CSV table rendering ---------------------===//

#include "support/Table.h"

#include "support/Error.h"
#include "support/OStream.h"

#include <algorithm>
#include <cassert>

using namespace icores;

TablePrinter::TablePrinter(std::vector<std::string> Hdrs)
    : Headers(std::move(Hdrs)) {
  ICORES_CHECK(!Headers.empty(), "table must have at least one column");
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  ICORES_CHECK(Cells.size() == Headers.size(),
               "row width does not match header count");
  Rows.push_back(std::move(Cells));
}

void TablePrinter::startRow() { Rows.emplace_back(); }

void TablePrinter::appendCell(std::string Cell) {
  ICORES_CHECK(!Rows.empty(), "appendCell() before startRow()");
  ICORES_CHECK(Rows.back().size() < Headers.size(), "row is already full");
  Rows.back().push_back(std::move(Cell));
}

void TablePrinter::print(OStream &OS) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t Col = 0; Col != Headers.size(); ++Col)
    Widths[Col] = Headers[Col].size();
  for (const auto &Row : Rows)
    for (size_t Col = 0; Col != Row.size(); ++Col)
      Widths[Col] = std::max(Widths[Col], Row[Col].size());

  auto printRow = [&](const std::vector<std::string> &Cells) {
    for (size_t Col = 0; Col != Headers.size(); ++Col) {
      std::string Cell = Col < Cells.size() ? Cells[Col] : std::string();
      OS << (Col == 0 ? "| " : " ");
      Cell.resize(Widths[Col], ' ');
      OS << Cell << " |";
    }
    OS << '\n';
  };

  printRow(Headers);
  for (size_t Col = 0; Col != Headers.size(); ++Col) {
    OS << (Col == 0 ? "|-" : "-");
    OS << std::string(Widths[Col], '-') << "-|";
  }
  OS << '\n';
  for (const auto &Row : Rows)
    printRow(Row);
}

void TablePrinter::printCsv(OStream &OS) const {
  // RFC 4180 quoting: a field containing a comma, a double quote or a
  // line break is wrapped in double quotes, with embedded quotes doubled.
  // Without this, cells like a plan label "islands, 2 per socket" used to
  // shift every following column of the row.
  auto printField = [&](const std::string &Cell) {
    if (Cell.find_first_of(",\"\r\n") == std::string::npos) {
      OS << Cell;
      return;
    }
    OS << '"';
    for (char C : Cell) {
      if (C == '"')
        OS << '"';
      OS << C;
    }
    OS << '"';
  };
  auto printRow = [&](const std::vector<std::string> &Cells) {
    for (size_t Col = 0; Col != Cells.size(); ++Col) {
      if (Col)
        OS << ',';
      printField(Cells[Col]);
    }
    OS << '\n';
  };
  printRow(Headers);
  for (const auto &Row : Rows)
    printRow(Row);
}

std::string TablePrinter::toString() const {
  std::string Buf;
  StringOStream OS(Buf);
  print(OS);
  return Buf;
}
