//===- support/OStream.cpp - Lightweight output streams ------------------===//

#include "support/OStream.h"

#include <cinttypes>

using namespace icores;

OStream::~OStream() = default;

OStream &OStream::operator<<(long long N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%lld", N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(unsigned long long N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%llu", N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(double D) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

void FileOStream::write(const char *Data, size_t Size) {
  std::fwrite(Data, 1, Size, File);
}

void StringOStream::write(const char *Data, size_t Size) {
  Buffer.append(Data, Size);
}

OStream &icores::outs() {
  static FileOStream Stream(stdout);
  return Stream;
}

OStream &icores::errs() {
  static FileOStream Stream(stderr);
  return Stream;
}
