//===- support/CommandLine.cpp - Tiny option parser ----------------------===//

#include "support/CommandLine.h"

#include <cstdlib>

using namespace icores;

void CommandLine::registerOption(const std::string &Name,
                                 const std::string &Help) {
  Registered[Name] = Help;
}

bool CommandLine::parse(int Argc, const char *const *Argv,
                        std::string &Error) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    std::string Key = Body;
    std::string Value = "1"; // Bare flags behave as booleans.
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Key = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
    }
    if (Key.empty()) {
      Error = "empty option name in '" + Arg + "'";
      return false;
    }
    if (!Registered.empty() && !Registered.count(Key)) {
      Error = "unknown option '--" + Key + "'";
      return false;
    }
    Values[Key] = Value;
  }
  return true;
}

bool CommandLine::hasOption(const std::string &Name) const {
  return Values.count(Name) != 0;
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  auto It = Values.find(Name);
  return It == Values.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  auto It = Values.find(Name);
  return It == Values.end() ? Default : std::strtoll(It->second.c_str(),
                                                     nullptr, 10);
}

double CommandLine::getDouble(const std::string &Name, double Default) const {
  auto It = Values.find(Name);
  return It == Values.end() ? Default
                            : std::strtod(It->second.c_str(), nullptr);
}

bool CommandLine::getBool(const std::string &Name, bool Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  return It->second != "0" && It->second != "false" && It->second != "no";
}

std::string CommandLine::helpText() const {
  std::string Out;
  for (const auto &[Name, Help] : Registered) {
    Out += "  --";
    Out += Name;
    Out += "\n      ";
    Out += Help;
    Out += '\n';
  }
  return Out;
}
