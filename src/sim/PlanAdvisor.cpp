//===- sim/PlanAdvisor.cpp - Model-driven strategy selection ---------------===//

#include "sim/PlanAdvisor.h"

#include "core/Partition.h"
#include "stencil/HaloAnalysis.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>

using namespace icores;

namespace {

/// Whether fusing \p Depth steps is worth pricing on this grid: the
/// widened step-0 dependence cone must not dwarf the grid itself (beyond
/// 2x per dimension the redundant overlap work certainly loses), and the
/// run must consist of whole epochs.
bool temporalDepthFeasible(const StencilProgram &Program, const Box3 &Grid,
                           int Depth, int TimeSteps) {
  if (TimeSteps % Depth != 0)
    return false;
  Box3 Widest = temporalStepTargets(Program, Grid, Depth).front();
  for (int D = 0; D != 3; ++D)
    if (Widest.extent(D) > 2 * Grid.extent(D))
      return false;
  return true;
}

/// Temporal depths worth pricing for this run: every divisor of
/// \p TimeSteps (runs consist of whole epochs only) that survives the
/// cone-blowup prune, in increasing order, 1 first. Derived from the
/// actual step count rather than a hard-coded {1, 2, 4} so e.g.
/// --steps=6 prices depths 2 and 3 and --steps=7 prices 7 (if feasible)
/// instead of nothing beyond 1.
std::vector<int> temporalDepthCandidates(const StencilProgram &Program,
                                         const Box3 &Grid, int TimeSteps) {
  std::vector<int> Depths;
  for (int Depth = 1; Depth <= TimeSteps; ++Depth) {
    if (TimeSteps % Depth != 0)
      continue;
    if (!temporalDepthFeasible(Program, Grid, Depth, TimeSteps))
      break; // The cone only widens with depth; deeper cannot pass.
    Depths.push_back(Depth);
  }
  if (Depths.empty())
    Depths.push_back(1);
  return Depths;
}

/// Adds one candidate if it is feasible on this grid/machine.
void tryCandidate(std::vector<AdvisorCandidate> &Out,
                  const StencilProgram &Program, const Box3 &Grid,
                  const MachineModel &Machine, int TimeSteps,
                  const PlanConfig &Config, std::string Label) {
  // Feasibility: enough planes along each partitioned dimension.
  int Islands = Config.Sockets * Config.IslandsPerSocket;
  if (Config.Strat == Strategy::IslandsOfCores) {
    if (Config.GridPartsI > 0) {
      if (Config.GridPartsI > Grid.extent(0) ||
          Config.GridPartsJ > Grid.extent(1))
        return;
    } else if (Islands > Grid.extent(partitionDim(Config.Variant))) {
      return;
    }
    if (Machine.CoresPerSocket % Config.IslandsPerSocket != 0)
      return;
  }
  ExecutionPlan Plan = buildPlan(Program, Grid, Machine, Config);
  AdvisorCandidate Candidate;
  Candidate.Config = Config;
  Candidate.Result = simulate(Plan, Program, Machine, TimeSteps);
  Candidate.Label = std::move(Label);
  Out.push_back(std::move(Candidate));
}

} // namespace

AdvisorReport icores::adviseBestPlan(const StencilProgram &Program,
                                     const Box3 &Grid,
                                     const MachineModel &Machine, int Sockets,
                                     int TimeSteps) {
  ICORES_CHECK(Sockets >= 1 && Sockets <= Machine.NumSockets,
               "socket count exceeds the machine");
  AdvisorReport Report;

  PlanConfig Base;
  Base.Sockets = Sockets;

  PlanConfig Config = Base;
  Config.Strat = Strategy::Original;
  tryCandidate(Report.Candidates, Program, Grid, Machine, TimeSteps, Config,
               "original (stage-major)");

  Config = Base;
  Config.Strat = Strategy::Block31D;
  tryCandidate(Report.Candidates, Program, Grid, Machine, TimeSteps, Config,
               "pure (3+1)D decomposition");

  // Islands: both 1D variants, a near-square 2D grid, and sub-socket
  // island counts (powers of two dividing the cores). The cache-blocked
  // strategies are also priced with fused temporal epochs — the depth
  // trades redundant cone compute against amortised DRAM streams and
  // global barriers, so the winner is grid- and machine-dependent. The
  // depths priced are the feasible divisors of the requested step count
  // (temporalDepthCandidates), not a fixed set. Each multi-island 1D
  // candidate is priced under both balance policies: cost-balanced cuts
  // shrink the predicted island skew on skewed configurations at the
  // price of wider interior cones.
  const std::vector<int> Depths =
      temporalDepthCandidates(Program, Grid, TimeSteps);
  for (PartitionVariant Variant :
       {PartitionVariant::A, PartitionVariant::B})
    for (int Depth : Depths)
      for (BalancePolicy Balance :
           {BalancePolicy::Uniform, BalancePolicy::Cost}) {
        if (Balance == BalancePolicy::Cost &&
            Sockets * Base.IslandsPerSocket < 2)
          continue; // One island: nothing to balance.
        Config = Base;
        Config.Strat = Strategy::IslandsOfCores;
        Config.Variant = Variant;
        Config.TemporalDepth = Depth;
        Config.Balance = Balance;
        std::string Label =
            formatString("islands 1D variant %c",
                         Variant == PartitionVariant::A ? 'A' : 'B');
        if (Depth > 1)
          Label += formatString(", temporal depth %d", Depth);
        if (Balance == BalancePolicy::Cost)
          Label += ", cost-balanced";
        tryCandidate(Report.Candidates, Program, Grid, Machine, TimeSteps,
                     Config, std::move(Label));
      }
  for (int Depth : Depths) {
    if (Depth == 1)
      continue; // Depth-1 pure (3+1)D was priced above.
    Config = Base;
    Config.Strat = Strategy::Block31D;
    Config.TemporalDepth = Depth;
    tryCandidate(Report.Candidates, Program, Grid, Machine, TimeSteps,
                 Config,
                 formatString("pure (3+1)D, temporal depth %d", Depth));
  }
  if (Sockets > 1) {
    auto [Pi, Pj] = factorForGrid(Sockets);
    if (Pj > 1) {
      Config = Base;
      Config.Strat = Strategy::IslandsOfCores;
      Config.GridPartsI = Pi;
      Config.GridPartsJ = Pj;
      tryCandidate(Report.Candidates, Program, Grid, Machine, TimeSteps,
                   Config, formatString("islands 2D grid %dx%d", Pi, Pj));
    }
  }
  for (int PerSocket = 2; PerSocket <= Machine.CoresPerSocket;
       PerSocket *= 2) {
    if (Machine.CoresPerSocket % PerSocket != 0)
      break;
    Config = Base;
    Config.Strat = Strategy::IslandsOfCores;
    Config.IslandsPerSocket = PerSocket;
    tryCandidate(Report.Candidates, Program, Grid, Machine, TimeSteps,
                 Config,
                 formatString("islands, %d per socket", PerSocket));
  }

  // Placement alternatives: the serial-init original (Table 1's first
  // row) prices what first-touch placement buys on this machine, and
  // page-interleaved islands are the OS-level middle ground when
  // per-island first-touch arenas are not available. Ties against the
  // first-touch twin keep insertion order (stable sort), so the
  // first-touch candidate stays ranked ahead.
  Config = Base;
  Config.Strat = Strategy::Original;
  Config.Placement = PagePlacement::None;
  tryCandidate(Report.Candidates, Program, Grid, Machine, TimeSteps, Config,
               "original (serial init)");
  Config = Base;
  Config.Strat = Strategy::IslandsOfCores;
  Config.Placement = PagePlacement::Interleave;
  tryCandidate(Report.Candidates, Program, Grid, Machine, TimeSteps, Config,
               "islands 1D variant A, interleaved pages");

  ICORES_CHECK(!Report.Candidates.empty(), "no feasible candidate plan");
  std::stable_sort(Report.Candidates.begin(), Report.Candidates.end(),
                   [](const AdvisorCandidate &A, const AdvisorCandidate &B) {
                     return A.Result.TotalSeconds < B.Result.TotalSeconds;
                   });
  return Report;
}
