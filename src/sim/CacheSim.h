//===- sim/CacheSim.h - Trace-driven cache residency check ------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven LRU cache simulator that replays a plan's access stream
/// at i-plane granularity (one "line" = one (array, i-plane) slab — the
/// natural reuse unit of the i-blocked schedules). It exists to *validate*
/// the analytic traffic model's central assumption: that the (3+1)D block
/// schedule keeps all intermediate planes cache-resident, so main-memory
/// traffic collapses to the step inputs/outputs plus a small spill term,
/// while the stage-major original schedule thrashes and streams everything.
///
/// Semantics: read of a non-resident plane charges a miss (read traffic);
/// writes make a plane dirty-resident; evicting or flushing a dirty plane
/// charges a writeback. Final dirty planes are flushed.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SIM_CACHESIM_H
#define ICORES_SIM_CACHESIM_H

#include "core/ExecutionPlan.h"
#include "core/PlacementMap.h"
#include "stencil/StencilIR.h"

#include <cstdint>

namespace icores {

/// Traffic measured by replaying one island's schedule through the cache.
struct CacheSimResult {
  int64_t AccessedBytes = 0;  ///< All bytes touched (hit or miss).
  int64_t ReadMissBytes = 0;  ///< Fills from main memory.
  int64_t WritebackBytes = 0; ///< Dirty evictions + final flush.
  /// The slice of ReadMissBytes filled from pages a placement map homes
  /// on another socket (zero without a map). Only shared-array fills can
  /// be remote: island-private import/scratch buffers are first-touched
  /// by the owning team, so their misses always fill locally.
  int64_t RemoteMissBytes = 0;

  int64_t dramBytes() const { return ReadMissBytes + WritebackBytes; }
  double missRate() const {
    return AccessedBytes > 0 ? static_cast<double>(ReadMissBytes) /
                                   static_cast<double>(AccessedBytes)
                             : 0.0;
  }
};

/// Replays the per-step access stream of \p Island (pass by pass, in
/// schedule order) through a fully-associative LRU cache of
/// \p CacheBytes. Step inputs start non-resident (compulsory misses).
///
/// \p TemporalDepth > 1 replays one fused epoch: a feedback pair then
/// alternates between the Target's import buffer (even fused steps) and
/// the Source's scratch buffer (odd ones), exactly as the executor
/// rebinds them, so the pair's planes are tracked per physical buffer —
/// the Target's id names the import buffer, the Source's the scratch —
/// and the final fused step's shared-array writes are keyed separately
/// (they stream out rather than revisit a resident buffer).
///
/// With a non-null \p Placement map, each shared-array read-miss fill is
/// additionally classified local/remote by the plane's page ownership
/// (proportional split when a plane straddles arena segments) into
/// RemoteMissBytes. Only T == 1 step-input fills qualify: temporal epochs
/// read through the island-private import buffers, which the placement
/// init epoch homes locally.
CacheSimResult replayIslandThroughCache(const IslandPlan &Island,
                                        const StencilProgram &Program,
                                        int64_t CacheBytes,
                                        int TemporalDepth = 1,
                                        const PlacementMap *Placement =
                                            nullptr);

} // namespace icores

#endif // ICORES_SIM_CACHESIM_H
