//===- sim/CacheSim.cpp - Trace-driven cache residency check --------------===//

#include "sim/CacheSim.h"

#include "support/Error.h"

#include <list>
#include <map>

using namespace icores;

namespace {

/// One cached unit: an (array, i-plane) slab.
struct PlaneKey {
  ArrayId Array;
  int Plane;

  bool operator<(const PlaneKey &O) const {
    return Array != O.Array ? Array < O.Array : Plane < O.Plane;
  }
};

/// Fully-associative LRU of plane slabs with byte-based capacity.
class LruCache {
public:
  LruCache(int64_t CapacityBytes, CacheSimResult &Stats)
      : Capacity(CapacityBytes), Stats(Stats) {}

  /// Touches a plane of \p Bytes; charges a read miss when absent and
  /// \p IsWrite marks it dirty. Returns the bytes filled from main memory
  /// by this access (0 on a clean hit or a write allocation) so the
  /// caller can classify the fill's page locality.
  int64_t access(PlaneKey Key, int64_t Bytes, bool IsWrite) {
    Stats.AccessedBytes += Bytes;
    auto It = Index.find(Key);
    if (It != Index.end()) {
      // Hit: move to the front, update dirtiness. The same slab can be
      // touched with different region sizes (halo reads are wider than
      // interior writes); the resident footprint is the largest touch, and
      // the growth is a fill plus a capacity re-charge — without it Used
      // undercounts and the residency check turns optimistic.
      Lru.splice(Lru.begin(), Lru, It->second);
      It->second->Dirty = It->second->Dirty || IsWrite;
      if (Bytes > It->second->Bytes) {
        int64_t Growth = Bytes - It->second->Bytes;
        if (!IsWrite)
          Stats.ReadMissBytes += Growth;
        It->second->Bytes = Bytes;
        Used += Growth;
        evictToCapacity();
        return IsWrite ? 0 : Growth;
      }
      return 0;
    }
    // Miss. Writes of full planes allocate without a fill (the schedules
    // only ever write whole pass rows); reads fill from memory.
    if (!IsWrite)
      Stats.ReadMissBytes += Bytes;
    Lru.push_front(Entry{Key, Bytes, IsWrite});
    Index[Key] = Lru.begin();
    Used += Bytes;
    evictToCapacity();
    return IsWrite ? 0 : Bytes;
  }

  /// Flushes remaining dirty planes (end of run).
  void flush() {
    for (const Entry &E : Lru)
      if (E.Dirty)
        Stats.WritebackBytes += E.Bytes;
    Lru.clear();
    Index.clear();
    Used = 0;
  }

private:
  struct Entry {
    PlaneKey Key;
    int64_t Bytes;
    bool Dirty;
  };

  /// Evicts LRU victims until the resident bytes fit the capacity.
  void evictToCapacity() {
    while (Used > Capacity && !Lru.empty()) {
      Entry &Victim = Lru.back();
      if (Victim.Dirty)
        Stats.WritebackBytes += Victim.Bytes;
      Used -= Victim.Bytes;
      Index.erase(Victim.Key);
      Lru.pop_back();
    }
  }

  int64_t Capacity;
  CacheSimResult &Stats;
  int64_t Used = 0;
  std::list<Entry> Lru;
  std::map<PlaneKey, std::list<Entry>::iterator> Index;
};

/// Points of \p Region whose pages \p Map homes away from \p HomeSocket.
int64_t remotePoints(const PlacementMap &Map, const Box3 &Region,
                     int HomeSocket) {
  int64_t Total = Region.numPoints();
  if (Total == 0)
    return 0;
  switch (Map.Policy) {
  case PlacementPolicy::FirstTouch:
    return Total - Map.localPoints(Region, HomeSocket);
  case PlacementPolicy::None:
    return HomeSocket != Map.HomeNode ? Total : 0;
  case PlacementPolicy::Interleave: {
    int64_t Sockets = static_cast<int64_t>(Map.ActiveSockets.size());
    return Sockets > 1 ? Total - Total / Sockets : 0;
  }
  }
  return 0;
}

} // namespace

CacheSimResult
icores::replayIslandThroughCache(const IslandPlan &Island,
                                 const StencilProgram &Program,
                                 int64_t CacheBytes, int TemporalDepth,
                                 const PlacementMap *Placement) {
  ICORES_CHECK(CacheBytes > 0, "cache capacity must be positive");
  ICORES_CHECK(TemporalDepth >= 1, "temporal depth must be at least 1");
  CacheSimResult Stats;
  LruCache Cache(CacheBytes, Stats);

  // Physical-storage identity of a fed-back array at one fused step: the
  // Target's id names the pair's import buffer, the Source's its scratch
  // buffer (the executor's even/odd rebind alternation), and ids past
  // numArrays() name the shared output arrays the final fused step
  // streams to.
  auto storageKey = [&](ArrayId Id, int Step, bool IsWrite) {
    if (TemporalDepth == 1)
      return Id;
    bool Even = Step % 2 == 0;
    bool Final = Step == TemporalDepth - 1;
    for (const FeedbackPair &FB : Program.feedbacks()) {
      if (Id == FB.Target)
        return Even ? FB.Target : FB.Source;
      if (Id == FB.Source)
        return Final && IsWrite
                   ? static_cast<ArrayId>(Program.numArrays() + Id)
                   : (Even ? FB.Source : FB.Target);
    }
    if (Program.array(Id).Role == ArrayRole::StepOutput && Final && IsWrite)
      return static_cast<ArrayId>(Program.numArrays() + Id);
    return Id;
  };

  for (const BlockTask &Block : Island.Blocks) {
    for (const StagePass &Pass : Block.Passes) {
      if (Pass.Region.empty())
        continue;
      const StageDef &Stage = Program.stage(Pass.Stage);
      // Reads: every input plane the pass touches, in i order. Shared
      // step-input fills (T == 1 only; temporal epochs read the private
      // import buffers) are split local/remote by the plane's page
      // ownership under the placement map.
      for (const StageInput &In : Stage.Inputs) {
        Box3 Read = In.readRegion(Pass.Region);
        int64_t PlaneBytes = static_cast<int64_t>(Read.extent(1)) *
                             Read.extent(2) *
                             Program.array(In.Array).ElementBytes;
        ArrayId Key = storageKey(In.Array, Block.StepInEpoch,
                                 /*IsWrite=*/false);
        bool SharedFill =
            Placement && TemporalDepth == 1 &&
            Program.array(In.Array).Role == ArrayRole::StepInput;
        for (int I = Read.Lo[0]; I != Read.Hi[0]; ++I) {
          int64_t Fill = Cache.access({Key, I}, PlaneBytes,
                                      /*IsWrite=*/false);
          if (Fill > 0 && SharedFill) {
            Box3 Plane = Read;
            Plane.Lo[0] = I;
            Plane.Hi[0] = I + 1;
            int64_t Total = Plane.numPoints();
            if (Total > 0)
              Stats.RemoteMissBytes +=
                  Fill * remotePoints(*Placement, Plane, Island.HomeSocket) /
                  Total;
          }
        }
      }
      // Writes: every output plane of the pass region.
      for (ArrayId Out : Stage.Outputs) {
        int64_t PlaneBytes = static_cast<int64_t>(Pass.Region.extent(1)) *
                             Pass.Region.extent(2) *
                             Program.array(Out).ElementBytes;
        ArrayId Key = storageKey(Out, Block.StepInEpoch, /*IsWrite=*/true);
        for (int I = Pass.Region.Lo[0]; I != Pass.Region.Hi[0]; ++I)
          Cache.access({Key, I}, PlaneBytes, /*IsWrite=*/true);
      }
    }
  }
  Cache.flush();
  return Stats;
}
