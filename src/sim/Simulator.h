//===- sim/Simulator.h - NUMA performance simulator -------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mechanistic cost simulator for ExecutionPlans on SMP/NUMA machines.
/// This substitutes for the paper's SGI UV 2000 measurements (see
/// DESIGN.md §2): it charges the *same schedules* the executor runs with
/// compute, DRAM-stream, remote-interconnect, barrier and turnover costs
/// derived from the stencil IR and the MachineModel.
///
/// Cost structure per time step (all islands run concurrently; the step
/// takes the slowest island plus shared per-step costs):
///
///  - compute: pass points x stage flops / (team cores x peak x kernel
///    efficiency);
///  - DRAM: per block, streamed bytes / team stream rate, overlapped with
///    that block's compute (max, not sum). Original streams every array
///    every pass; blocked strategies stream step inputs once per block
///    plus a calibrated spill fraction of the intermediate sweeps.
///    Serial-init placement funnels all traffic through the home node's
///    saturating contention curve (Table 1's first row);
///  - remote: for teams spanning >1 socket, the per-link halo planes
///    between adjacent sockets' sub-regions of each pass, at the
///    interconnect's cache-to-cache efficiency (partially overlapped for
///    cache-resident data);
///  - barrier: one team barrier per pass whose BarrierAfter bit is set,
///    cost growing with the socket span — the term that sinks the pure
///    (3+1)D decomposition. Plans transformed by the barrier-elision
///    optimizer (core/ScheduleOptimizer.h) are charged only for the
///    barriers that remain, so predicted barrier share tracks the
///    optimization;
///  - overhead: per-step turnover plus the global end-of-step barrier.
///
/// Temporal blocking (ExecutionPlan::TemporalDepth T > 1) is charged the
/// way the executor runs it: all T fused steps' passes are accumulated
/// per epoch and divided by T. Step-input reads and intermediate-step
/// output writes are served by the island-private import/scratch buffers
/// (cache-resident for the blocked strategies, so they pay only the
/// calibrated spill fraction); the DRAM stream is the once-per-epoch
/// import gather plus the final fused step's shared writes; the global
/// step barrier and turnover amortise over the epoch; and the executor's
/// structural rebind barriers (one prologue plus two per fused-step
/// boundary) are charged at team-barrier cost.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SIM_SIMULATOR_H
#define ICORES_SIM_SIMULATOR_H

#include "core/ExecutionPlan.h"
#include "machine/MachineModel.h"
#include "stencil/KernelTable.h"
#include "stencil/StencilIR.h"

#include <cstdint>

namespace icores {

/// Per-step seconds attributed to each cost source along the critical
/// (slowest-island) path.
struct SimBreakdown {
  double Compute = 0.0;
  double Dram = 0.0;
  double Remote = 0.0;
  double Barrier = 0.0;
  double Overhead = 0.0;

  double total() const { return Compute + Dram + Remote + Barrier + Overhead; }
};

/// Result of simulating a plan for a number of homogeneous time steps.
struct SimResult {
  int TimeSteps = 0;
  double StepSeconds = 0.0;  ///< Critical-path seconds per step.
  double TotalSeconds = 0.0; ///< StepSeconds * TimeSteps.
  SimBreakdown CriticalIsland; ///< Cost split on the slowest island.

  int64_t FlopsPerStep = 0;      ///< Includes redundant island work.
  int64_t DramBytesPerStep = 0;  ///< Main-memory traffic, all islands
                                 ///< (likwid-perfctr analogue).
  int64_t RemoteBytesPerStep = 0; ///< Interconnect halo traffic.

  /// Team-barrier crossings charged per step across all islands (empty
  /// passes are skipped, like the rest of the cost model). For temporal
  /// plans this is the per-epoch count (pass barriers of all fused steps
  /// plus the structural rebind barriers) divided by the depth.
  int64_t TeamBarriersPerStep = 0;
  /// Non-empty passes whose barrier the plan elides (not charged).
  int64_t ElidedBarriersPerStep = 0;

  /// Projected logical traffic between the islands and the shared arrays
  /// per time step, by the same formula the executor measures
  /// (ProgramExecutor::sharedBytesPerStep): per-epoch import reads plus
  /// final-step output writes, divided by the temporal depth.
  int64_t SharedBytesPerStep = 0;

  /// Projected remote-DRAM bytes per step under the plan's placement
  /// policy, from core/PlacementMap.h — the same function that feeds the
  /// executor's ExecStats remote_bytes_est, so projection and measurement
  /// agree exactly by construction (the placement analogue of
  /// SharedBytesPerStep).
  int64_t PlacementRemoteBytesPerStep = 0;

  /// Predicted island skew (max over islands of predicted seconds over
  /// the mean) from core/BalanceModel.h's predictedIslandSkew() — the
  /// SAME function the executor stamps into ExecStats, so the simulator
  /// and the executor agree on the predicted skew by construction. 1.0
  /// for single-island plans; cost-balanced partitions drive it toward
  /// 1.0 on skewed configurations.
  double PredictedIslandSkew = 1.0;

  int ActiveSockets = 0;

  double sustainedGflops() const {
    return StepSeconds > 0.0
               ? static_cast<double>(FlopsPerStep) / StepSeconds / 1e9
               : 0.0;
  }

  int64_t totalDramBytes() const { return DramBytesPerStep * TimeSteps; }
};

/// Simulation knobs beyond the machine model.
struct SimOptions {
  /// Which kernel backend the modelled run uses. The machine's
  /// KernelEfficiency is calibrated against the Simd backend (factor
  /// 1.0); the others are scaled by kernelThroughputFactor().
  KernelVariant Kernels = KernelVariant::Simd;
};

/// Relative per-core kernel throughput of \p Variant, normalized to the
/// Simd backend (= 1.0). Calibrated from bench/bench_kernels aggregate
/// hot-cache Gflop/s on the dev host; scales MachineModel's
/// KernelEfficiency in the compute term.
double kernelThroughputFactor(KernelVariant Variant);

/// The simulator's projection of ProgramExecutor::sharedBytesPerStep()
/// for \p Plan: logical bytes each island exchanges with the shared
/// arrays per time step, averaged over a temporal epoch. Pure plan
/// geometry — no machine model involved — computed with the executor's
/// own footprint formula so benches can compare projected against
/// measured directly.
int64_t projectedSharedBytesPerStep(const ExecutionPlan &Plan,
                                    const StencilProgram &Program);

/// Simulates \p TimeSteps homogeneous steps of \p Plan on \p Machine.
SimResult simulate(const ExecutionPlan &Plan, const StencilProgram &Program,
                   const MachineModel &Machine, int TimeSteps,
                   const SimOptions &Options = {});

} // namespace icores

#endif // ICORES_SIM_SIMULATOR_H
