//===- sim/TrafficReport.h - Per-array DRAM traffic accounting --*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A likwid-perfctr-style breakdown of main-memory traffic per array for
/// one plan: which arrays stream from DRAM, which stay cache-resident, and
/// how much each contributes. The paper's Sect. 3.2 uses exactly this kind
/// of measurement (133 GB -> 30 GB) to motivate the (3+1)D decomposition.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SIM_TRAFFICREPORT_H
#define ICORES_SIM_TRAFFICREPORT_H

#include "core/ExecutionPlan.h"
#include "machine/MachineModel.h"
#include "stencil/StencilIR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace icores {

class OStream;

/// DRAM traffic attributed to one array over a whole run.
struct ArrayTraffic {
  std::string Name;
  ArrayRole Role = ArrayRole::Intermediate;
  int64_t ReadBytes = 0;
  int64_t WriteBytes = 0;
  /// The slice of this array's traffic served from pages the plan's
  /// placement policy homes on a different socket than the accessing
  /// island (core/PlacementMap.h). Zero for intermediates — they are
  /// island-private. Printed as its own column when any array has one.
  int64_t RemoteBytes = 0;

  int64_t totalBytes() const { return ReadBytes + WriteBytes; }
};

/// Whole-run traffic report.
struct TrafficReport {
  std::vector<ArrayTraffic> PerArray; ///< Indexed by ArrayId.
  int TimeSteps = 0;

  int64_t totalBytes() const;
  int64_t bytesForRole(ArrayRole Role) const;
  /// Whole-run remote bytes across all arrays (see
  /// ArrayTraffic::RemoteBytes).
  int64_t remoteBytes() const;

  /// Renders an aligned table, largest contributors first.
  void print(OStream &OS) const;
};

/// Accounts the DRAM traffic of running \p Plan for \p TimeSteps steps,
/// using the same model as the simulator (blocked strategies keep
/// intermediates cache-resident up to the machine's spill fraction).
TrafficReport accountTraffic(const ExecutionPlan &Plan,
                             const StencilProgram &Program,
                             const MachineModel &Machine, int TimeSteps);

} // namespace icores

#endif // ICORES_SIM_TRAFFICREPORT_H
