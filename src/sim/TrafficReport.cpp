//===- sim/TrafficReport.cpp - Per-array DRAM traffic accounting ----------===//

#include "sim/TrafficReport.h"

#include "core/PlacementMap.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/OStream.h"
#include "support/Table.h"

#include <algorithm>
#include <map>
#include <numeric>

using namespace icores;

int64_t TrafficReport::totalBytes() const {
  int64_t Total = 0;
  for (const ArrayTraffic &A : PerArray)
    Total += A.totalBytes();
  return Total;
}

int64_t TrafficReport::bytesForRole(ArrayRole Role) const {
  int64_t Total = 0;
  for (const ArrayTraffic &A : PerArray)
    if (A.Role == Role)
      Total += A.totalBytes();
  return Total;
}

int64_t TrafficReport::remoteBytes() const {
  int64_t Total = 0;
  for (const ArrayTraffic &A : PerArray)
    Total += A.RemoteBytes;
  return Total;
}

void TrafficReport::print(OStream &OS) const {
  std::vector<size_t> Order(PerArray.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return PerArray[A].totalBytes() > PerArray[B].totalBytes();
  });

  bool ShowRemote = remoteBytes() > 0;
  std::vector<std::string> Columns = {"array", "role", "read", "written",
                                      "total"};
  if (ShowRemote)
    Columns.push_back("remote");
  TablePrinter Table(Columns);
  auto roleName = [](ArrayRole Role) {
    switch (Role) {
    case ArrayRole::StepInput:
      return "input";
    case ArrayRole::Intermediate:
      return "intermediate";
    case ArrayRole::StepOutput:
      return "output";
    }
    ICORES_UNREACHABLE("unknown array role");
  };
  for (size_t Index : Order) {
    const ArrayTraffic &A = PerArray[Index];
    if (A.totalBytes() == 0)
      continue;
    std::vector<std::string> Row = {
        A.Name, roleName(A.Role),
        formatBytes(static_cast<uint64_t>(A.ReadBytes)),
        formatBytes(static_cast<uint64_t>(A.WriteBytes)),
        formatBytes(static_cast<uint64_t>(A.totalBytes()))};
    if (ShowRemote)
      Row.push_back(formatBytes(static_cast<uint64_t>(A.RemoteBytes)));
    Table.addRow(Row);
  }
  Table.print(OS);
  OS << "total DRAM traffic over " << TimeSteps << " steps: "
     << formatBytes(static_cast<uint64_t>(totalBytes()));
  if (ShowRemote)
    OS << " (remote: " << formatBytes(static_cast<uint64_t>(remoteBytes()))
       << ')';
  OS << '\n';
}

TrafficReport icores::accountTraffic(const ExecutionPlan &Plan,
                                     const StencilProgram &Program,
                                     const MachineModel &Machine,
                                     int TimeSteps) {
  ICORES_CHECK(TimeSteps >= 1, "need at least one time step");
  TrafficReport Report;
  Report.TimeSteps = TimeSteps;
  Report.PerArray.resize(Program.numArrays());
  for (unsigned A = 0; A != Program.numArrays(); ++A) {
    Report.PerArray[A].Name = Program.array(static_cast<ArrayId>(A)).Name;
    Report.PerArray[A].Role = Program.array(static_cast<ArrayId>(A)).Role;
  }

  bool Blocked = Plan.Strat != Strategy::Original;
  double WriteFactor = Machine.NonTemporalStores ? 1.0 : 2.0;

  for (const IslandPlan &Island : Plan.Islands) {
    std::map<ArrayId, Box3> StepInputReads;
    for (const BlockTask &Block : Island.Blocks) {
      for (const StagePass &Pass : Block.Passes) {
        const StageDef &Stage = Program.stage(Pass.Stage);
        int64_t Points = Pass.Region.numPoints();
        if (Points == 0)
          continue;
        for (const StageInput &In : Stage.Inputs) {
          const ArrayInfo &Info = Program.array(In.Array);
          int64_t ReadBytes =
              In.readRegion(Pass.Region).numPoints() * Info.ElementBytes;
          ArrayTraffic &T = Report.PerArray[static_cast<size_t>(In.Array)];
          if (Blocked && Info.Role == ArrayRole::StepInput) {
            Box3 &U = StepInputReads[In.Array];
            U = U.unionWith(In.readRegion(Pass.Region));
          } else if (Blocked) {
            // Cache-resident: only the spill fraction reaches DRAM.
            T.ReadBytes += static_cast<int64_t>(
                Machine.CacheSpillFraction * static_cast<double>(ReadBytes));
          } else {
            T.ReadBytes += ReadBytes;
          }
        }
        for (ArrayId Out : Stage.Outputs) {
          const ArrayInfo &Info = Program.array(Out);
          int64_t WriteBytes = static_cast<int64_t>(
              static_cast<double>(Points * Info.ElementBytes) * WriteFactor);
          ArrayTraffic &T = Report.PerArray[static_cast<size_t>(Out)];
          if (Blocked && Info.Role == ArrayRole::Intermediate)
            T.WriteBytes += static_cast<int64_t>(
                Machine.CacheSpillFraction *
                static_cast<double>(WriteBytes));
          else
            T.WriteBytes += WriteBytes;
        }
      }
    }
    for (const auto &[Array, Region] : StepInputReads)
      Report.PerArray[static_cast<size_t>(Array)].ReadBytes +=
          Region.numPoints() * Program.array(Array).ElementBytes;
  }

  // Remote slice of the shared-array traffic under the plan's placement
  // policy, from the same per-array split the executor and simulator use.
  PlacementMap PMap = buildPlacementMap(Plan, Plan.Placement);
  const int Depth = std::max(1, Plan.TemporalDepth);
  for (const IslandPlan &Island : Plan.Islands) {
    IslandRemoteTraffic RT =
        estimateIslandRemoteEpochTraffic(Island, Plan, Program, PMap);
    for (const auto &[Array, Bytes] : RT.BytesByArray)
      Report.PerArray[static_cast<size_t>(Array)].RemoteBytes +=
          Bytes / Depth;
  }

  for (ArrayTraffic &A : Report.PerArray) {
    A.ReadBytes *= TimeSteps;
    A.WriteBytes *= TimeSteps;
    A.RemoteBytes *= TimeSteps;
  }
  return Report;
}
