//===- sim/ModelCompare.h - Predicted-vs-measured comparison ----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the loop between the mechanistic simulator and the real threaded
/// executor: given a simulated per-step cost breakdown and the aggregate
/// kernel/barrier-wait seconds the executor measured (exec/ExecStats), it
/// reports the predicted and observed shares of barrier time and the model
/// error between them. The Table 3/4 benches print this so drift between
/// the model and the runtime is visible in every run, in the spirit of the
/// hardware-counter validations of the temporal-blocking literature.
///
/// Term mapping: the executor's team-barrier waits correspond to the
/// simulator's Barrier term; its kernel time covers Compute + Dram +
/// Remote (the kernels both compute and stream); the global end-of-step
/// barrier corresponds to Overhead and is excluded from both shares.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SIM_MODELCOMPARE_H
#define ICORES_SIM_MODELCOMPARE_H

#include "sim/Simulator.h"

#include <string>
#include <vector>

namespace icores {

class OStream;

/// Predicted vs measured share of barrier time for one configuration.
struct BarrierShareComparison {
  double PredictedShare = 0.0; ///< Barrier / (Compute+Dram+Remote+Barrier).
  double MeasuredShare = 0.0;  ///< Barrier wait / (kernel + barrier wait).

  /// Model error in percentage points (positive: model over-predicts).
  double errorPoints() const {
    return (PredictedShare - MeasuredShare) * 100.0;
  }
};

/// Builds the comparison from a simulated critical-island breakdown and
/// the executor's measured aggregate seconds.
BarrierShareComparison
compareBarrierShare(const SimBreakdown &Predicted,
                    double MeasuredKernelSeconds,
                    double MeasuredBarrierWaitSeconds);

/// One labelled row of a model-error report.
struct ModelCompareRow {
  std::string Label;
  BarrierShareComparison Comparison;
};

/// Renders rows as a table: label, predicted %, measured %, error points.
void printModelCompareTable(const std::vector<ModelCompareRow> &Rows,
                            OStream &OS);

} // namespace icores

#endif // ICORES_SIM_MODELCOMPARE_H
