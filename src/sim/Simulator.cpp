//===- sim/Simulator.cpp - NUMA performance simulator ---------------------===//

#include "sim/Simulator.h"

#include "core/BalanceModel.h"
#include "core/PlacementMap.h"
#include "support/Error.h"

#include <algorithm>
#include <map>

using namespace icores;

namespace {

/// The dimension a work team splits a pass along (matches the executor's
/// teamSplitDim policy): the longer of i and j, never the unit-stride k
/// axis unless both are degenerate.
int splitDim(const Box3 &Region) {
  int Best = Region.extent(0) >= Region.extent(1) ? 0 : 1;
  if (Region.extent(Best) <= 1 && Region.extent(2) > 1)
    return 2;
  return Best;
}

/// Sum of halo plane depths (both sides) the pass's inputs read along
/// \p Dim: the number of planes that cross a thread-boundary when the
/// region is split along Dim.
int haloDepthAlong(const StencilProgram &Program, const StagePass &Pass,
                   int Dim) {
  int Depth = 0;
  for (const StageInput &In : Program.stage(Pass.Stage).Inputs)
    Depth += (-In.MinOff[Dim]) + In.MaxOff[Dim];
  return Depth;
}

/// Per-island accumulated costs for one step.
struct IslandCosts {
  SimBreakdown Breakdown;
  int64_t Flops = 0;
  int64_t DramBytes = 0;
  int64_t RemoteBytes = 0;
  int64_t Barriers = 0; ///< Team barriers charged.
  int64_t Elided = 0;   ///< Pass barriers skipped via BarrierAfter=false.
};

/// Simulates one island's step under the given stream rate (bytes/s
/// available to this island's team for main-memory traffic).
IslandCosts simulateIsland(const IslandPlan &Island,
                           const ExecutionPlan &Plan,
                           const StencilProgram &Program,
                           const MachineModel &Machine, double StreamRate,
                           bool MultipleIslands, const PlacementMap &Map,
                           const IslandRemoteTraffic &RemoteTraffic,
                           double KernelThroughput) {
  IslandCosts Costs;
  bool Blocked = Plan.Strat != Strategy::Original;
  const int Depth = std::max(1, Plan.TemporalDepth);
  double TeamFlopRate = static_cast<double>(Island.NumThreads) *
                        Machine.peakFlopsPerCore() *
                        Machine.KernelEfficiency * KernelThroughput;
  double WriteFactor = Machine.NonTemporalStores ? 1.0 : 2.0;
  double RemoteRate = Machine.LinkBandwidth * Machine.RemoteAccessEfficiency;
  // Cache-resident halo lines prefetch well; cold DRAM-backed halos
  // (Original) do not.
  double RemoteVisible = Blocked ? (1.0 - Machine.RemoteOverlapFactor) : 1.0;

  // Step inputs are streamed once per island and step: consecutive blocks
  // overlap only in cone margins that stay cache-resident, so the charge
  // is the union of the read regions (one sweep plus the island's cones).
  std::map<ArrayId, Box3> StepInputReads;
  double ComputeTotal = 0.0;

  for (const BlockTask &Block : Island.Blocks) {
    double BlockCompute = 0.0;
    int64_t BlockDramBytes = 0;

    for (const StagePass &Pass : Block.Passes) {
      const StageDef &Stage = Program.stage(Pass.Stage);
      int64_t Points = Pass.Region.numPoints();
      if (Points == 0)
        continue;

      Costs.Flops += Points * Stage.FlopsPerPoint;
      BlockCompute +=
          static_cast<double>(Points * Stage.FlopsPerPoint) / TeamFlopRate;

      // --- Main-memory traffic ----------------------------------------
      int64_t IntermediateBytes = 0;
      for (const StageInput &In : Stage.Inputs) {
        const ArrayInfo &Info = Program.array(In.Array);
        int64_t ReadBytes =
            In.readRegion(Pass.Region).numPoints() * Info.ElementBytes;
        if (Info.Role == ArrayRole::StepInput) {
          if (Depth > 1) {
            // Temporal epochs read step inputs from the island-private
            // import buffer (gathered once per epoch, charged at island
            // level below); the per-pass re-reads are cache hits for the
            // blocked strategies, full streams for Original.
            Box3 &U = StepInputReads[In.Array];
            U = U.unionWith(In.readRegion(Pass.Region));
            if (Blocked)
              IntermediateBytes += ReadBytes;
            else
              BlockDramBytes += ReadBytes;
          } else if (Blocked) {
            Box3 &U = StepInputReads[In.Array];
            U = U.unionWith(In.readRegion(Pass.Region));
          } else {
            BlockDramBytes += ReadBytes;
          }
        } else if (Blocked) {
          IntermediateBytes += ReadBytes;
        } else {
          BlockDramBytes += ReadBytes;
        }
      }
      bool FinalStep = Block.StepInEpoch == Depth - 1;
      for (ArrayId Out : Stage.Outputs) {
        const ArrayInfo &Info = Program.array(Out);
        int64_t WriteBytes = static_cast<int64_t>(
            static_cast<double>(Points * Info.ElementBytes) * WriteFactor);
        if (Info.Role == ArrayRole::Intermediate && Blocked)
          IntermediateBytes += WriteBytes;
        else if (Depth > 1 && !FinalStep && Blocked)
          // Intermediate fused steps write the island-private scratch
          // buffer, not the shared array: cache-resident for blocked
          // strategies, so it spills rather than streams.
          IntermediateBytes += WriteBytes;
        else
          BlockDramBytes += WriteBytes;
      }
      if (Blocked)
        BlockDramBytes += static_cast<int64_t>(
            Machine.CacheSpillFraction *
            static_cast<double>(IntermediateBytes));

      // --- Remote (interconnect) halo traffic --------------------------
      if (Island.NumSockets > 1) {
        int Dim = splitDim(Pass.Region);
        int Depth = haloDepthAlong(Program, Pass, Dim);
        int64_t CrossSection = Points / std::max(1, Pass.Region.extent(Dim));
        // Each adjacent socket pair exchanges over its own link; links
        // operate concurrently, so the visible cost is per link.
        int64_t PerLinkBytes =
            CrossSection * Depth * static_cast<int64_t>(sizeof(double));
        Costs.RemoteBytes += PerLinkBytes * (Island.NumSockets - 1);
        if (RemoteRate > 0.0)
          Costs.Breakdown.Remote += static_cast<double>(PerLinkBytes) /
                                    RemoteRate * RemoteVisible;
      }

      // --- Team barrier, honouring the plan's barrier bits --------------
      if (Pass.BarrierAfter) {
        Costs.Breakdown.Barrier +=
            Machine.barrierCost(Island.NumSockets, Island.NumThreads);
        ++Costs.Barriers;
      } else {
        ++Costs.Elided;
      }
    }

    Costs.DramBytes += BlockDramBytes;
    double BlockDram = StreamRate > 0.0
                           ? static_cast<double>(BlockDramBytes) / StreamRate
                           : 0.0;
    // Within a block, streaming overlaps compute; the block takes the
    // larger of the two.
    ComputeTotal += BlockCompute;
    if (BlockDram > BlockCompute) {
      Costs.Breakdown.Dram += BlockDram - BlockCompute;
      Costs.Breakdown.Compute += BlockCompute;
    } else {
      Costs.Breakdown.Compute += BlockCompute;
    }
  }

  // Temporal epochs gather each step input into a private buffer whose
  // box is the feedback-paired union the executor allocates (a fed-back
  // input's buffer doubles as the pair's scratch, so it also covers the
  // source's write union); that gather is the island's per-epoch input
  // stream.
  if (Depth > 1) {
    std::map<ArrayId, Box3> WriteUnions;
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes)
        for (ArrayId Out : Program.stage(Pass.Stage).Outputs)
          if (Program.array(Out).Role == ArrayRole::StepOutput) {
            Box3 &U = WriteUnions[Out];
            U = U.unionWith(Pass.Region);
          }
    for (const FeedbackPair &FB : Program.feedbacks()) {
      auto In = StepInputReads.find(FB.Target);
      auto Out = WriteUnions.find(FB.Source);
      if (In == StepInputReads.end() || Out == WriteUnions.end())
        continue;
      In->second = In->second.unionWith(Out->second);
    }
  }

  // Charge the island-wide step-input streams, overlapped with whatever
  // compute headroom the per-block accounting left unused. Under
  // FirstTouch, the slice of the union outside the island's own arena
  // segment lives on neighbor islands' first-touch pages (phase 1 of the
  // algorithm shares all inputs): the placement map splits those cone
  // margins out as cold remote DRAM reads, priced per home socket at the
  // hop-aware remote stream rate. None's remoteness is priced by the
  // home-node funnel StreamRate and Interleave's by the harmonic
  // interleave StreamRate, so neither charges a separate remote term.
  int64_t InputBytes = 0;
  int64_t RemoteInputBytes = 0;
  bool FirstTouchMargins = Map.Policy == PlacementPolicy::FirstTouch &&
                           Island.NumSockets == 1 && MultipleIslands;
  for (const auto &[Array, Region] : StepInputReads)
    InputBytes += Region.numPoints() * Program.array(Array).ElementBytes;
  if (FirstTouchMargins)
    RemoteInputBytes = std::min(RemoteTraffic.ReadBytes, InputBytes);
  Costs.DramBytes += InputBytes;
  Costs.RemoteBytes += RemoteInputBytes;
  double InputSeconds =
      StreamRate > 0.0
          ? static_cast<double>(InputBytes - RemoteInputBytes) / StreamRate
          : 0.0;
  double Headroom = ComputeTotal - Costs.Breakdown.Dram;
  if (InputSeconds > Headroom)
    Costs.Breakdown.Dram += InputSeconds - std::max(0.0, Headroom);
  if (FirstTouchMargins)
    for (const auto &[Socket, Bytes] : RemoteTraffic.BytesBySocket) {
      double Rate = Machine.remoteStreamBandwidth(Island.HomeSocket, Socket);
      if (Rate > 0.0)
        Costs.Breakdown.Remote += static_cast<double>(Bytes) / Rate;
    }

  // Temporal epochs: the executor brackets the epoch prologue with one
  // team barrier and every fused-step rebind with two, and everything
  // accumulated above covers all Depth fused steps — average it back to
  // per-step costs.
  if (Depth > 1) {
    int Structural = 1 + 2 * (Depth - 1);
    Costs.Breakdown.Barrier +=
        Structural * Machine.barrierCost(Island.NumSockets,
                                         Island.NumThreads);
    Costs.Barriers += Structural;
    double Inv = 1.0 / static_cast<double>(Depth);
    Costs.Breakdown.Compute *= Inv;
    Costs.Breakdown.Dram *= Inv;
    Costs.Breakdown.Remote *= Inv;
    Costs.Breakdown.Barrier *= Inv;
    Costs.Breakdown.Overhead *= Inv;
    Costs.Flops /= Depth;
    Costs.DramBytes /= Depth;
    Costs.RemoteBytes /= Depth;
    Costs.Barriers /= Depth;
    Costs.Elided /= Depth;
  }
  return Costs;
}

/// Replicates ProgramExecutor's shared-traffic footprint computation for
/// one island: import-buffer reads per epoch (feedback-paired boxes for
/// T > 1, plain read unions for T == 1) plus final-step output writes.
int64_t islandSharedBytesPerEpoch(const IslandPlan &Island,
                                  const ExecutionPlan &Plan,
                                  const StencilProgram &Program) {
  const int Depth = std::max(1, Plan.TemporalDepth);
  std::vector<Box3> ReadUnion(Program.numArrays());
  std::vector<Box3> WriteUnion(Program.numArrays());
  for (const BlockTask &Block : Island.Blocks)
    for (const StagePass &Pass : Block.Passes) {
      const StageDef &Stage = Program.stage(Pass.Stage);
      for (const StageInput &In : Stage.Inputs)
        if (Program.array(In.Array).Role == ArrayRole::StepInput) {
          Box3 &Un = ReadUnion[static_cast<size_t>(In.Array)];
          Un = Un.unionWith(In.readRegion(Pass.Region));
        }
      for (ArrayId Out : Stage.Outputs)
        if (Program.array(Out).Role == ArrayRole::StepOutput) {
          Box3 &Un = WriteUnion[static_cast<size_t>(Out)];
          Un = Un.unionWith(Pass.Region);
        }
    }

  int64_t Bytes = 0;
  if (Depth > 1) {
    std::vector<Box3> BufBox(Program.numArrays());
    for (ArrayId In : Program.stepInputs())
      BufBox[static_cast<size_t>(In)] = ReadUnion[static_cast<size_t>(In)];
    for (ArrayId Out : Program.stepOutputs())
      BufBox[static_cast<size_t>(Out)] =
          WriteUnion[static_cast<size_t>(Out)];
    for (const FeedbackPair &FB : Program.feedbacks()) {
      Box3 Paired = BufBox[static_cast<size_t>(FB.Target)].unionWith(
          BufBox[static_cast<size_t>(FB.Source)]);
      BufBox[static_cast<size_t>(FB.Target)] = Paired;
      BufBox[static_cast<size_t>(FB.Source)] = Paired;
    }
    for (ArrayId In : Program.stepInputs())
      Bytes += BufBox[static_cast<size_t>(In)].numPoints() *
               Program.array(In).ElementBytes;
  } else {
    for (ArrayId In : Program.stepInputs())
      Bytes += ReadUnion[static_cast<size_t>(In)].numPoints() *
               Program.array(In).ElementBytes;
  }
  for (ArrayId Out : Program.stepOutputs()) {
    Box3 FinalOut;
    for (const BlockTask &Block : Island.Blocks) {
      if (Block.StepInEpoch != Depth - 1)
        continue;
      for (const StagePass &Pass : Block.Passes)
        if (Pass.Stage == Program.producerOf(Out))
          FinalOut = FinalOut.unionWith(Pass.Region);
    }
    Bytes += FinalOut.numPoints() * Program.array(Out).ElementBytes;
  }
  return Bytes;
}

} // namespace

double icores::kernelThroughputFactor(KernelVariant Variant) {
  // Normalized aggregate hot-cache Gflop/s from bench/bench_kernels on
  // the dev host (see EXPERIMENTS.md): the machine models' calibrated
  // KernelEfficiency corresponds to the Simd backend.
  switch (Variant) {
  case KernelVariant::Reference:
    return 0.12;
  case KernelVariant::Optimized:
    return 0.58;
  case KernelVariant::Simd:
    return 1.0;
  }
  return 1.0;
}

int64_t
icores::projectedSharedBytesPerStep(const ExecutionPlan &Plan,
                                    const StencilProgram &Program) {
  int64_t PerEpoch = 0;
  for (const IslandPlan &Island : Plan.Islands)
    PerEpoch += islandSharedBytesPerEpoch(Island, Plan, Program);
  return PerEpoch / std::max(1, Plan.TemporalDepth);
}

SimResult icores::simulate(const ExecutionPlan &Plan,
                           const StencilProgram &Program,
                           const MachineModel &Machine, int TimeSteps,
                           const SimOptions &Options) {
  ICORES_CHECK(TimeSteps >= 1, "need at least one time step");
  ICORES_CHECK(!Plan.Islands.empty(), "plan has no islands");

  // Distinct sockets touched by any island (sub-socket islands share a
  // home socket), plus per-socket island counts for bandwidth sharing.
  std::map<int, int> IslandsPerSocket;
  for (const IslandPlan &Island : Plan.Islands)
    for (int S = 0; S != Island.NumSockets; ++S)
      ++IslandsPerSocket[Island.HomeSocket + S];
  int ActiveSockets = static_cast<int>(IslandsPerSocket.size());
  ICORES_CHECK(ActiveSockets <= Machine.NumSockets,
               "plan uses more sockets than the machine has");

  SimResult Result;
  Result.TimeSteps = TimeSteps;
  Result.ActiveSockets = ActiveSockets;
  Result.SharedBytesPerStep = projectedSharedBytesPerStep(Plan, Program);
  Result.PredictedIslandSkew = predictedIslandSkew(Plan, Program, Machine);

  // The plan-derived page-ownership map under the plan's policy: the
  // remote-byte projection it yields matches the executor's
  // remote_bytes_est exactly (same function), and FirstTouch islands'
  // cone-margin remoteness is priced from its per-socket split.
  PlacementMap PMap = buildPlacementMap(Plan, Plan.Placement);
  Result.PlacementRemoteBytesPerStep =
      estimateRemoteBytesPerStep(Plan, Program, Plan.Placement);

  double WorstIslandSeconds = 0.0;
  for (const IslandPlan &Island : Plan.Islands) {
    double StreamRate;
    if (Plan.Placement == PagePlacement::None) {
      // Every island's traffic funnels through the home node, shared
      // among all concurrently streaming islands.
      StreamRate = Machine.homeNodeBandwidth(ActiveSockets) /
                   static_cast<double>(Plan.Islands.size());
    } else if (Plan.Placement == PagePlacement::Interleave) {
      // Pages round-robin over the active sockets: every stream is a
      // pipeline of 1/S-local, rest-remote slices (harmonic mean rate),
      // shared like the first-touch case among the socket's islands.
      int Sharers = IslandsPerSocket[Island.HomeSocket];
      StreamRate = Machine.interleaveStreamBandwidth(Island.HomeSocket,
                                                     PMap.ActiveSockets) *
                   Island.NumSockets / std::max(1, Sharers);
    } else {
      // FirstTouch: sub-socket islands share their home socket's memory
      // bandwidth.
      int Sharers = IslandsPerSocket[Island.HomeSocket];
      StreamRate = Machine.DramBandwidthPerSocket * Island.NumSockets /
                   std::max(1, Sharers);
    }
    IslandCosts Costs = simulateIsland(
        Island, Plan, Program, Machine, StreamRate, Plan.Islands.size() > 1,
        PMap, estimateIslandRemoteEpochTraffic(Island, Plan, Program, PMap),
        kernelThroughputFactor(Options.Kernels));
    Result.FlopsPerStep += Costs.Flops;
    Result.DramBytesPerStep += Costs.DramBytes;
    Result.RemoteBytesPerStep += Costs.RemoteBytes;
    Result.TeamBarriersPerStep += Costs.Barriers;
    Result.ElidedBarriersPerStep += Costs.Elided;
    double Seconds = Costs.Breakdown.total();
    if (Seconds > WorstIslandSeconds) {
      WorstIslandSeconds = Seconds;
      Result.CriticalIsland = Costs.Breakdown;
    }
  }

  // Shared per-step costs: end-of-step barrier across every active socket
  // plus the fixed turnover (halo refresh, scheduler). Temporal epochs
  // cross the global barrier once per epoch, so both amortise over the
  // fused steps.
  double Shared =
      (Machine.barrierCost(ActiveSockets) + Machine.StepOverheadSeconds) /
      static_cast<double>(std::max(1, Plan.TemporalDepth));
  Result.CriticalIsland.Overhead += Shared;

  Result.StepSeconds = WorstIslandSeconds + Shared;
  Result.TotalSeconds = Result.StepSeconds * TimeSteps;
  return Result;
}
