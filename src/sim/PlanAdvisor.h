//===- sim/PlanAdvisor.h - Model-driven strategy selection ------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future work asks for "performance models and methods for
/// modeling and management of the correlation between computation and
/// communication costs" so that "the optimal trade-off ... should be
/// determined on this basis". PlanAdvisor is that component: it enumerates
/// candidate configurations (strategy, partition variant, island grids,
/// islands-per-socket, page-placement policies), prices each with the
/// simulator, and returns them ranked.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_SIM_PLANADVISOR_H
#define ICORES_SIM_PLANADVISOR_H

#include "core/PlanBuilder.h"
#include "sim/Simulator.h"

#include <string>
#include <vector>

namespace icores {

/// One evaluated configuration.
struct AdvisorCandidate {
  PlanConfig Config;
  SimResult Result;
  std::string Label; ///< Human-readable description of the configuration.
};

/// All evaluated configurations, fastest first.
struct AdvisorReport {
  std::vector<AdvisorCandidate> Candidates;

  const AdvisorCandidate &best() const { return Candidates.front(); }

  /// Predicted speedup of the best candidate over configuration \p Index.
  double advantageOver(size_t Index) const {
    return Candidates[Index].Result.TotalSeconds /
           best().Result.TotalSeconds;
  }
};

/// Enumerates and prices candidate plans for running \p TimeSteps steps of
/// \p Program over \p Grid on \p Sockets sockets of \p Machine. Invalid
/// candidates (e.g. more parts than grid planes) are skipped silently.
AdvisorReport adviseBestPlan(const StencilProgram &Program, const Box3 &Grid,
                             const MachineModel &Machine, int Sockets,
                             int TimeSteps);

} // namespace icores

#endif // ICORES_SIM_PLANADVISOR_H
