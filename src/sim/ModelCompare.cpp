//===- sim/ModelCompare.cpp - Predicted-vs-measured comparison ------------===//

#include "sim/ModelCompare.h"

#include "support/Format.h"
#include "support/Table.h"

using namespace icores;

BarrierShareComparison
icores::compareBarrierShare(const SimBreakdown &Predicted,
                            double MeasuredKernelSeconds,
                            double MeasuredBarrierWaitSeconds) {
  BarrierShareComparison C;
  double PredictedTotal = Predicted.Compute + Predicted.Dram +
                          Predicted.Remote + Predicted.Barrier;
  if (PredictedTotal > 0.0)
    C.PredictedShare = Predicted.Barrier / PredictedTotal;
  double MeasuredTotal = MeasuredKernelSeconds + MeasuredBarrierWaitSeconds;
  if (MeasuredTotal > 0.0)
    C.MeasuredShare = MeasuredBarrierWaitSeconds / MeasuredTotal;
  return C;
}

void icores::printModelCompareTable(const std::vector<ModelCompareRow> &Rows,
                                    OStream &OS) {
  TablePrinter Table({"Configuration", "Predicted barrier [%]",
                      "Measured barrier [%]", "Model error [pts]"});
  for (const ModelCompareRow &Row : Rows)
    Table.addRow(
        {Row.Label,
         formatFixed(Row.Comparison.PredictedShare * 100.0, 2),
         formatFixed(Row.Comparison.MeasuredShare * 100.0, 2),
         formatFixed(Row.Comparison.errorPoints(), 2)});
  Table.print(OS);
}
