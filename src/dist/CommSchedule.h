//===- dist/CommSchedule.h - Static rank communication schedules -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static side of the distributed halo protocol: the per-rank ordered
/// send/recv/barrier schedules DistributedRank executes, extracted without
/// running any rank. The peer, tag, and payload-shape computations here
/// are the *same functions* DistributedSolver.cpp calls at runtime
/// (rankOwnedBox, planDimExchange), so the extracted schedule cannot
/// drift from the executed one. The protocol model checker
/// (verify/ProtocolCheck.h) consumes these schedules to prove the
/// exchange deadlock- and orphan-free, including under rank-death
/// poisoning.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_DIST_COMMSCHEDULE_H
#define ICORES_DIST_COMMSCHEDULE_H

#include "grid/Box3.h"

#include <cstdint>
#include <vector>

namespace icores {

/// One communication action of one rank, in program order. Sends are
/// buffered (they complete immediately); recvs block until the matching
/// message arrives; barriers block until every live rank arrives.
struct CommOp {
  enum class Kind { Send, Recv, Barrier };
  Kind K = Kind::Barrier;
  int Peer = -1;     ///< Destination (Send) or source (Recv) rank.
  int Tag = 0;       ///< Mailbox tag (Send/Recv).
  int64_t Count = 0; ///< Payload doubles (Send/Recv).

  static CommOp send(int Peer, int Tag, int64_t Count) {
    return {Kind::Send, Peer, Tag, Count};
  }
  static CommOp recv(int Peer, int Tag, int64_t Count) {
    return {Kind::Recv, Peer, Tag, Count};
  }
  static CommOp barrier() { return {Kind::Barrier, -1, 0, 0}; }
};

struct RankCommSchedule {
  int Rank = 0;
  std::vector<CommOp> Ops;
};

/// The core box rank \p Rank owns in a PI x PJ decomposition of an
/// NI x NJ x NK grid (the same balanced chunking DistributedRank uses).
Box3 rankOwnedBox(int Rank, int PI, int PJ, int NI, int NJ, int NK);

/// The four slab transfers of one dimension's halo exchange: who the
/// wrapped minus/plus neighbors are and which sub-boxes travel. Sends use
/// tags TagBase + 0 (to minus) and TagBase + 1 (to plus); the matching
/// recvs take TagBase + 1 (from minus) and TagBase + 0 (from plus).
struct DimExchange {
  int Minus = -1;
  int Plus = -1;
  Box3 SendLow, SendHigh, RecvLow, RecvHigh;
};
DimExchange planDimExchange(int Rank, int PI, int PJ, const Box3 &Owned,
                            int Halo, int Dim, const Box3 &Slab);

/// The MPDATA halo depth the distributed solver exchanges (from the
/// program's input dependence cones, as DistributedRank computes it).
int mpdataCommHaloDepth();

/// The full communication schedule of runDistributedMpdata2D's rank loop:
/// prepareCoefficients (four array exchanges at tag base 100), \p Steps
/// state exchanges at tag base 0, and the closing barrier.
std::vector<RankCommSchedule> buildMpdataCommSchedule(int PI, int PJ, int NI,
                                                      int NJ, int NK,
                                                      int Steps);

} // namespace icores

#endif // ICORES_DIST_COMMSCHEDULE_H
