//===- dist/ClusterSim.cpp - Multi-node performance model -----------------===//

#include "dist/ClusterSim.h"

#include "core/PlanBuilder.h"
#include "core/Partition.h"
#include "stencil/HaloAnalysis.h"
#include "support/Error.h"

#include <cmath>

using namespace icores;

namespace {

/// Shared machinery: per-part local simulation plus per-step message
/// costs along the given set of exchange dimensions.
ClusterSimResult simulateParts(const StencilProgram &Program,
                               const Box3 &Grid,
                               const ClusterModel &Cluster,
                               const std::vector<Box3> &Parts,
                               const std::vector<int> &ExchangeDims,
                               int SocketsPerNode, int TimeSteps);

} // namespace

ClusterSimResult icores::simulateCluster(const StencilProgram &Program,
                                         const Box3 &Grid,
                                         const ClusterModel &Cluster,
                                         int SocketsPerNode, int TimeSteps) {
  ICORES_CHECK(Cluster.NumNodes >= 1, "cluster needs at least one node");
  ICORES_CHECK(Cluster.NumNodes <= Grid.extent(0),
               "more nodes than grid planes");
  std::vector<Box3> Parts = partition1D(Grid, Cluster.NumNodes, 0);
  std::vector<int> Dims;
  if (Cluster.NumNodes > 1)
    Dims.push_back(0);
  return simulateParts(Program, Grid, Cluster, Parts, Dims, SocketsPerNode,
                       TimeSteps);
}

ClusterSimResult icores::simulateCluster2D(const StencilProgram &Program,
                                           const Box3 &Grid,
                                           const ClusterModel &Cluster,
                                           int NodesI, int NodesJ,
                                           int SocketsPerNode,
                                           int TimeSteps) {
  ICORES_CHECK(NodesI * NodesJ == Cluster.NumNodes,
               "node grid must match the cluster size");
  std::vector<Box3> Parts = partition2D(Grid, NodesI, NodesJ);
  std::vector<int> Dims;
  if (NodesI > 1)
    Dims.push_back(0);
  if (NodesJ > 1)
    Dims.push_back(1);
  return simulateParts(Program, Grid, Cluster, Parts, Dims, SocketsPerNode,
                       TimeSteps);
}

namespace {

ClusterSimResult simulateParts(const StencilProgram &Program,
                               const Box3 &Grid,
                               const ClusterModel &Cluster,
                               const std::vector<Box3> &Slabs,
                               const std::vector<int> &ExchangeDims,
                               int SocketsPerNode, int TimeSteps) {
  (void)Grid;
  ClusterSimResult Result;
  Result.TimeSteps = TimeSteps;

  // Per-node local step: simulate every node's plan (slab sizes differ by
  // at most one plane, but redundant cone work differs between edge and
  // middle slabs); the critical path is the slowest node.
  double WorstNode = 0.0;
  for (const Box3 &Slab : Slabs) {
    PlanConfig Config;
    Config.Strat = SocketsPerNode == 1 ? Strategy::Block31D
                                       : Strategy::IslandsOfCores;
    Config.Sockets = SocketsPerNode;
    ExecutionPlan Plan = buildPlan(Program, Slab, Cluster.Node, Config);
    SimResult Node = simulate(Plan, Program, Cluster.Node, TimeSteps);
    Result.FlopsPerStep += Node.FlopsPerStep;
    WorstNode = std::max(WorstNode, Node.StepSeconds);
  }
  Result.NodeSecondsPerStep = WorstNode;

  // Halo messages: each node sends/receives the input-array dependence
  // cone (halo depth planes) in both directions of every exchanged
  // dimension once per step (the 2D case runs two phases).
  if (!ExchangeDims.empty()) {
    int Depth = inputHaloDepth(Program, Box3::fromExtents(64, 64, 64))[0];
    const Box3 &Part = Slabs.front();
    for (int Dim : ExchangeDims) {
      int64_t CrossPoints = Part.numPoints() / Part.extent(Dim);
      int64_t MessageBytes = static_cast<int64_t>(Depth) * CrossPoints *
                             static_cast<int64_t>(sizeof(double));
      double PerMessage = Cluster.NetworkLatency +
                          static_cast<double>(MessageBytes) /
                              Cluster.NetworkBandwidth;
      Result.CommSecondsPerStep += 2.0 * PerMessage;
    }
    Result.CommSecondsPerStep +=
        Cluster.NetworkLatency *
        std::ceil(std::log2(static_cast<double>(Cluster.NumNodes)));
  }

  Result.StepSeconds = Result.NodeSecondsPerStep + Result.CommSecondsPerStep;
  Result.TotalSeconds = Result.StepSeconds * TimeSteps;
  return Result;
}

} // namespace
