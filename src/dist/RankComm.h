//===- dist/RankComm.h - In-process message-passing substrate ---*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small message-passing substrate emulating the MPI subset the
/// distributed MPDATA driver needs: point-to-point tagged sends/receives
/// of double buffers, an allreduce-sum and a world barrier, between ranks
/// running as threads of one process. The paper's future work plans an MPI
/// extension of the islands-of-cores approach; this substrate lets the
/// repository implement and *test* that extension without an MPI
/// installation — swapping RankComm for real MPI is mechanical.
///
/// The transport is resilient, not just happy-path: every message carries
/// a per-channel sequence number and a payload checksum, and recv() runs a
/// timeout + bounded-exponential-backoff retry protocol. Duplicates are
/// discarded by sequence number, corruption is detected by checksum, and
/// dropped or late messages are re-fetched from the sender's retransmit
/// log — so a run under the fault injector (fault/FaultInjector.h, armed
/// via CommWorld::arm) either recovers bit-exactly or, when a fault is
/// unrecoverable, raises a structured icores::Error naming the injected
/// fault after the retry budget is exhausted. A rank that fails poisons
/// the world (CommWorld::poison) so peers blocked in recv()/barrier()
/// fail fast instead of deadlocking. Unarmed runs pay one branch per
/// call; no fault bookkeeping is kept.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_DIST_RANKCOMM_H
#define ICORES_DIST_RANKCOMM_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace icores {

class FaultInjector;

/// recv()'s retry protocol knobs: an exponential backoff from
/// InitialBackoffSeconds doubling up to MaxBackoffSeconds, for at most
/// MaxRetries timeout ticks before the structured error is raised. The
/// defaults budget roughly half a minute of silence — generous enough
/// that only a genuinely dead peer exhausts them; chaos tests tighten
/// them to fail in milliseconds.
struct CommTimeouts {
  double InitialBackoffSeconds = 1e-3;
  double MaxBackoffSeconds = 0.25;
  int MaxRetries = 140;
};

/// Shared mailbox state for one group of ranks. Create one World per
/// distributed run and hand each rank a RankComm view of it.
class CommWorld {
public:
  explicit CommWorld(int NumRanks);

  int numRanks() const { return NumRanks; }

  /// Arms fault injection for every message of this world. Call before
  /// any traffic; pass nullptr to disarm. Not owned.
  void arm(FaultInjector *Injector);

  /// Replaces the retry protocol's timeout/backoff budget.
  void setTimeouts(const CommTimeouts &T);

  /// Marks the world dead on behalf of \p Rank: every rank currently
  /// blocked in recv()/barrier() (and every later call) raises a
  /// structured icores::Error instead of waiting for a peer that will
  /// never answer. Idempotent; the first reason wins.
  void poison(int Rank, const std::string &Reason);

  bool poisoned() const;
  std::string poisonReason() const;

private:
  friend class RankComm;

  using Clock = std::chrono::steady_clock;

  struct Message {
    std::vector<double> Payload;
    uint64_t Seq = 0;
    uint64_t Checksum = 0;
    Clock::time_point VisibleAt; ///< Delayed delivery (injected faults).
  };

  /// Key: (source, destination, tag).
  using MailboxKey = std::tuple<int, int, int>;

  mutable std::mutex Mutex;
  std::condition_variable Cond;
  std::map<MailboxKey, std::deque<Message>> Mailboxes;

  /// Ground-truth copies of sent-but-unconsumed messages, kept only when
  /// a fault plan is armed: the receiver's re-request path reads from
  /// here, modelling MPI-level retransmission without a live sender.
  std::map<MailboxKey, std::deque<Message>> SendLog;

  /// Per-channel next sequence numbers (sender side / receiver side).
  std::map<MailboxKey, uint64_t> NextSendSeq;
  std::map<MailboxKey, uint64_t> NextRecvSeq;

  // Sense-reversing barrier state.
  int BarrierCount = 0;
  int BarrierGeneration = 0;

  bool Poisoned = false;
  int PoisonedBy = -1;
  std::string PoisonReasonText;

  FaultInjector *Injector = nullptr;
  CommTimeouts Timeouts;

  int NumRanks;
};

/// One rank's endpoint: MPI_Comm_rank/size, send, recv, allreduce,
/// barrier.
class RankComm {
public:
  RankComm(CommWorld &World, int Rank);

  int rank() const { return Rank; }
  int numRanks() const { return World.numRanks(); }

  /// Blocking tagged send of \p Count doubles to \p Destination. The data
  /// is copied; the call returns immediately after enqueueing (buffered
  /// send semantics, like MPI_Bsend). Throws icores::Error if the world
  /// is poisoned.
  void send(int Destination, int Tag, const double *Data, size_t Count);

  /// Blocking tagged receive from \p Source; waits until a matching,
  /// checksum-valid, in-sequence message arrives and fills exactly
  /// \p Count doubles. Retries with bounded exponential backoff; throws
  /// a structured icores::Error (kind RecvTimeout, carrying the fault
  /// trace) when the budget is exhausted, or kind WorldPoisoned when a
  /// peer rank has failed.
  void recv(int Source, int Tag, double *Data, size_t Count);

  /// Deterministic global sum (rank-0 gather + broadcast over the
  /// resilient transport); identical bit pattern on every rank.
  /// Collective.
  double allreduceSum(double Value);

  /// Blocks until every rank of the world has entered the barrier.
  /// Throws icores::Error if the world is poisoned while waiting.
  void barrier();

private:
  CommWorld &World;
  int Rank;
};

/// Checksum used by the message protocol (FNV-1a over the payload bytes);
/// exposed for tests.
uint64_t commChecksum(const double *Data, size_t Count);

} // namespace icores

#endif // ICORES_DIST_RANKCOMM_H
