//===- dist/RankComm.h - In-process message-passing substrate ---*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small message-passing substrate emulating the MPI subset the
/// distributed MPDATA driver needs: point-to-point tagged sends/receives
/// of double buffers and a world barrier, between ranks running as threads
/// of one process. The paper's future work plans an MPI extension of the
/// islands-of-cores approach; this substrate lets the repository implement
/// and *test* that extension without an MPI installation — swapping
/// RankComm for real MPI is mechanical.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_DIST_RANKCOMM_H
#define ICORES_DIST_RANKCOMM_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace icores {

/// Shared mailbox state for one group of ranks. Create one World per
/// distributed run and hand each rank a RankComm view of it.
class CommWorld {
public:
  explicit CommWorld(int NumRanks);

  int numRanks() const { return NumRanks; }

private:
  friend class RankComm;

  struct Message {
    std::vector<double> Payload;
  };

  /// Key: (source, destination, tag).
  using MailboxKey = std::tuple<int, int, int>;

  std::mutex Mutex;
  std::condition_variable Cond;
  std::map<MailboxKey, std::vector<Message>> Mailboxes;

  // Sense-reversing barrier state.
  int BarrierCount = 0;
  int BarrierGeneration = 0;

  int NumRanks;
};

/// One rank's endpoint: MPI_Comm_rank/size, send, recv, barrier.
class RankComm {
public:
  RankComm(CommWorld &World, int Rank);

  int rank() const { return Rank; }
  int numRanks() const { return World.numRanks(); }

  /// Blocking tagged send of \p Count doubles to \p Destination. The data
  /// is copied; the call returns immediately after enqueueing (buffered
  /// send semantics, like MPI_Bsend).
  void send(int Destination, int Tag, const double *Data, size_t Count);

  /// Blocking tagged receive from \p Source; waits until a matching
  /// message arrives and fills exactly \p Count doubles.
  void recv(int Source, int Tag, double *Data, size_t Count);

  /// Blocks until every rank of the world has entered the barrier.
  void barrier();

private:
  CommWorld &World;
  int Rank;
};

} // namespace icores

#endif // ICORES_DIST_RANKCOMM_H
