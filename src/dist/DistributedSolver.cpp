//===- dist/DistributedSolver.cpp - MPI-style distributed MPDATA ----------===//

#include "dist/DistributedSolver.h"

#include "dist/CommSchedule.h"
#include "grid/Domain.h"
#include "mpdata/Kernels.h"
#include "support/Error.h"
#include "support/MathUtil.h"

#include <mutex>
#include <thread>
#include <utility>

using namespace icores;

namespace {

/// Copies \p Region of \p A into \p Buf in (i, j, k) order.
void packBox(const Array3D &A, const Box3 &Region, std::vector<double> &Buf) {
  Buf.resize(static_cast<size_t>(Region.numPoints()));
  size_t Pos = 0;
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        Buf[Pos++] = A.at(I, J, K);
}

/// Writes \p Buf back into \p Region of \p A.
void unpackBox(Array3D &A, const Box3 &Region,
               const std::vector<double> &Buf) {
  ICORES_CHECK(Buf.size() == static_cast<size_t>(Region.numPoints()),
               "halo payload does not match the region");
  size_t Pos = 0;
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        A.at(I, J, K) = Buf[Pos++];
}

} // namespace

DistributedRank::DistributedRank(RankComm &Comm, int NI, int NJ, int NK,
                                 int PI, int PJ,
                                 const DistributedInit &Init)
    : Comm(Comm), M(buildMpdataProgram()), NI(NI), NJ(NJ), NK(NK), PI(PI),
      PJ(PJ), Fields(0) {
  ICORES_CHECK(PI >= 1 && PJ >= 1 && PI * PJ == Comm.numRanks(),
               "rank grid does not match the world size");
  std::array<int, 3> Depth =
      inputHaloDepth(M.Program, Box3::fromExtents(64, 64, 64));
  Halo = Depth[0];

  Owned = rankOwnedBox(Comm.rank(), PI, PJ, NI, NJ, NK);
  ICORES_CHECK(Owned.extent(0) >= Halo && Owned.extent(1) >= Halo,
               "rank part thinner than the halo depth");
  LocalAlloc = Owned.grownAll(Halo);

  // Requirements: this rank's dependence cones, clipped to what the
  // single-machine original would compute (identical accounting to the
  // shared-memory islands).
  Box3 GlobalCore = Box3::fromExtents(NI, NJ, NK);
  RegionRequirements Local = computeRequirements(M.Program, Owned);
  RegionRequirements Global = computeRequirements(M.Program, GlobalCore);
  Req = Local;
  for (unsigned S = 0; S != M.Program.numStages(); ++S)
    Req.StageRegion[S] =
        Local.StageRegion[S].intersect(Global.StageRegion[S]);

  State.reset(LocalAlloc);
  Next.reset(LocalAlloc);
  Dens.reset(LocalAlloc);
  for (Array3D &Vel : U)
    Vel.reset(LocalAlloc);

  // Evaluate the initializers on the owned part only — the halos travel
  // by message.
  auto fillOwned = [&](Array3D &A,
                       const std::function<double(int, int, int)> &Fn,
                       double Default) {
    for (int I = Owned.Lo[0]; I != Owned.Hi[0]; ++I)
      for (int J = Owned.Lo[1]; J != Owned.Hi[1]; ++J)
        for (int K = 0; K != NK; ++K)
          A.at(I, J, K) = Fn ? Fn(I, J, K) : Default;
  };
  fillOwned(State, Init.State, 0.0);
  fillOwned(U[0], Init.U1, 0.0);
  fillOwned(U[1], Init.U2, 0.0);
  fillOwned(U[2], Init.U3, 0.0);
  fillOwned(Dens, Init.H, 1.0);

  Fields = FieldStore(M.Program.numArrays());
  Fields.bindExternal(M.XIn, &State);
  Fields.bindExternal(M.U1, &U[0]);
  Fields.bindExternal(M.U2, &U[1]);
  Fields.bindExternal(M.U3, &U[2]);
  Fields.bindExternal(M.H, &Dens);
  Fields.bindExternal(M.XOut, &Next);
  for (unsigned A = 0; A != M.Program.numArrays(); ++A)
    if (M.Program.array(static_cast<ArrayId>(A)).Role ==
        ArrayRole::Intermediate)
      Fields.allocateOwned(static_cast<ArrayId>(A), LocalAlloc);
}

void DistributedRank::exchangeAlongDim(Array3D &A, int Dim,
                                       const Box3 &Slab, int TagBase) {
  // Peers, tags, and slab boxes come from the same planner the protocol
  // model checker verifies (dist/CommSchedule.h), so the schedule proved
  // deadlock-free is the schedule executed here.
  DimExchange Ex =
      planDimExchange(Comm.rank(), PI, PJ, Owned, Halo, Dim, Slab);

  std::vector<double> Buf;
  packBox(A, Ex.SendLow, Buf);
  Comm.send(Ex.Minus, TagBase + 0, Buf.data(), Buf.size());
  packBox(A, Ex.SendHigh, Buf);
  Comm.send(Ex.Plus, TagBase + 1, Buf.data(), Buf.size());

  Buf.resize(static_cast<size_t>(Ex.RecvLow.numPoints()));
  Comm.recv(Ex.Minus, TagBase + 1, Buf.data(), Buf.size());
  unpackBox(A, Ex.RecvLow, Buf);
  Buf.resize(static_cast<size_t>(Ex.RecvHigh.numPoints()));
  Comm.recv(Ex.Plus, TagBase + 0, Buf.data(), Buf.size());
  unpackBox(A, Ex.RecvHigh, Buf);
}

void DistributedRank::exchangeHalo(Array3D &A, int TagBase) {
  // Phase 1: dimension 0, core j/k cross-section.
  Box3 Slab0 = Owned;
  exchangeAlongDim(A, 0, Slab0, TagBase);
  // Phase 2: dimension 1 over the *extended* i-range — this forwards the
  // freshly received corner values too.
  Box3 Slab1 = Owned;
  Slab1.Lo[0] -= Halo;
  Slab1.Hi[0] += Halo;
  exchangeAlongDim(A, 1, Slab1, TagBase + 2);
  // Phase 3: k is not decomposed; wrap it locally everywhere.
  fillLocalKHalo(A);
}

void DistributedRank::fillLocalKHalo(Array3D &A) {
  for (int I = LocalAlloc.Lo[0]; I != LocalAlloc.Hi[0]; ++I)
    for (int J = LocalAlloc.Lo[1]; J != LocalAlloc.Hi[1]; ++J)
      for (int K = LocalAlloc.Lo[2]; K != LocalAlloc.Hi[2]; ++K) {
        if (K >= 0 && K < NK)
          continue;
        A.at(I, J, K) = A.at(I, J, Domain::wrapIndex(K, NK));
      }
}

void DistributedRank::prepareCoefficients() {
  for (Array3D *A : {&U[0], &U[1], &U[2], &Dens})
    exchangeHalo(*A, /*TagBase=*/100);
}

void DistributedRank::step() {
  exchangeHalo(State, /*TagBase=*/0);
  for (unsigned S = 0; S != M.Program.numStages(); ++S)
    runMpdataStage(M, Fields, static_cast<StageId>(S), Req.StageRegion[S]);
  std::swap(State, Next);
}

void DistributedRank::run(int Steps) {
  for (int S = 0; S != Steps; ++S)
    step();
  Comm.barrier();
}

double DistributedRank::localMass() const {
  double Mass = 0.0;
  for (int I = Owned.Lo[0]; I != Owned.Hi[0]; ++I)
    for (int J = Owned.Lo[1]; J != Owned.Hi[1]; ++J)
      for (int K = 0; K != NK; ++K)
        Mass += Dens.at(I, J, K) * State.at(I, J, K);
  return Mass;
}

double DistributedRank::globalMass() const {
  return Comm.allreduceSum(localMass());
}

DistChaosResult icores::runDistributedMpdataChaos(
    int PI, int PJ, int NI, int NJ, int NK, int Steps,
    const DistributedInit &Init, FaultInjector *Injector,
    const CommTimeouts &Timeouts) {
  CommWorld World(PI * PJ);
  World.arm(Injector);
  World.setTimeouts(Timeouts);

  DistChaosResult Result;
  Result.State.reset(Box3::fromExtents(NI, NJ, NK));
  std::mutex GatherMutex;

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(PI) * PJ);
  for (int R = 0; R != PI * PJ; ++R) {
    Threads.emplace_back([&, R] {
      try {
        RankComm Comm(World, R);
        DistributedRank Rank(Comm, NI, NJ, NK, PI, PJ, Init);
        Rank.prepareCoefficients();
        Rank.run(Steps);
        std::lock_guard<std::mutex> Lock(GatherMutex);
        Result.State.copyRegionFrom(Rank.state(), Rank.ownedBox());
      } catch (const Error &E) {
        // Graceful degradation: poison the world *first* so peers
        // blocked on this rank's messages or in the barrier fail fast,
        // then record the structured failure.
        World.poison(R, E.message());
        std::lock_guard<std::mutex> Lock(GatherMutex);
        Result.RankErrors.push_back(
            "rank " + std::to_string(R) + ": " + E.message());
        if (Result.ErrorTrace.empty() && !E.faultTrace().empty())
          Result.ErrorTrace = E.faultTrace();
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Result.Ok = Result.RankErrors.empty();
  if (Injector)
    Result.Faults = Injector->stats();
  return Result;
}

Array3D icores::runDistributedMpdata2D(int PI, int PJ, int NI, int NJ,
                                       int NK, int Steps,
                                       const DistributedInit &Init) {
  DistChaosResult Result = runDistributedMpdataChaos(
      PI, PJ, NI, NJ, NK, Steps, Init, /*Injector=*/nullptr,
      CommTimeouts());
  // No faults are injected here, so a failure means a genuinely dead
  // peer or a protocol bug; surface it instead of returning garbage.
  if (!Result.Ok)
    reportFatalError(Result.RankErrors.front().c_str(), __FILE__,
                     __LINE__);
  return std::move(Result.State);
}

Array3D icores::runDistributedMpdata(int NumRanks, int NI, int NJ, int NK,
                                     int Steps,
                                     const DistributedInit &Init) {
  return runDistributedMpdata2D(NumRanks, 1, NI, NJ, NK, Steps, Init);
}
