//===- dist/CommSchedule.cpp - Static rank communication schedules --------===//

#include "dist/CommSchedule.h"

#include "mpdata/MpdataProgram.h"
#include "stencil/HaloAnalysis.h"
#include "support/MathUtil.h"

using namespace icores;

Box3 icores::rankOwnedBox(int Rank, int PI, int PJ, int NI, int NJ,
                          int NK) {
  int Pi = Rank / PJ;
  int Pj = Rank % PJ;
  return Box3(static_cast<int>(chunkBegin(NI, PI, Pi)),
              static_cast<int>(chunkBegin(NJ, PJ, Pj)), 0,
              static_cast<int>(chunkBegin(NI, PI, Pi + 1)),
              static_cast<int>(chunkBegin(NJ, PJ, Pj + 1)), NK);
}

DimExchange icores::planDimExchange(int Rank, int PI, int PJ,
                                    const Box3 &Owned, int Halo, int Dim,
                                    const Box3 &Slab) {
  int Pi = Rank / PJ;
  int Pj = Rank % PJ;
  int Parts = Dim == 0 ? PI : PJ;
  int Pos = Dim == 0 ? Pi : Pj;
  auto rankAt = [&](int P) {
    P = (P % Parts + Parts) % Parts;
    return Dim == 0 ? P * PJ + Pj : Pi * PJ + P;
  };

  DimExchange Ex;
  Ex.Minus = rankAt(Pos - 1);
  Ex.Plus = rankAt(Pos + 1);
  Ex.SendLow = Ex.SendHigh = Ex.RecvLow = Ex.RecvHigh = Slab;
  Ex.SendLow.Lo[Dim] = Owned.Lo[Dim];
  Ex.SendLow.Hi[Dim] = Owned.Lo[Dim] + Halo;
  Ex.SendHigh.Lo[Dim] = Owned.Hi[Dim] - Halo;
  Ex.SendHigh.Hi[Dim] = Owned.Hi[Dim];
  Ex.RecvLow.Lo[Dim] = Owned.Lo[Dim] - Halo;
  Ex.RecvLow.Hi[Dim] = Owned.Lo[Dim];
  Ex.RecvHigh.Lo[Dim] = Owned.Hi[Dim];
  Ex.RecvHigh.Hi[Dim] = Owned.Hi[Dim] + Halo;
  return Ex;
}

int icores::mpdataCommHaloDepth() {
  MpdataProgram M = buildMpdataProgram();
  return inputHaloDepth(M.Program, Box3::fromExtents(64, 64, 64))[0];
}

namespace {

/// Appends one dimension's exchange in DistributedRank::exchangeAlongDim
/// order: both sends first (buffered), then both recvs.
void appendDimExchange(std::vector<CommOp> &Ops, const DimExchange &Ex,
                       int TagBase) {
  Ops.push_back(CommOp::send(Ex.Minus, TagBase + 0, Ex.SendLow.numPoints()));
  Ops.push_back(CommOp::send(Ex.Plus, TagBase + 1, Ex.SendHigh.numPoints()));
  Ops.push_back(CommOp::recv(Ex.Minus, TagBase + 1, Ex.RecvLow.numPoints()));
  Ops.push_back(CommOp::recv(Ex.Plus, TagBase + 0, Ex.RecvHigh.numPoints()));
}

/// One full exchangeHalo: dimension 0 over the owned slab, then dimension
/// 1 over the i-extended slab (corner forwarding). The local k wrap has
/// no communication.
void appendHaloExchange(std::vector<CommOp> &Ops, int Rank, int PI, int PJ,
                        const Box3 &Owned, int Halo, int TagBase) {
  appendDimExchange(Ops, planDimExchange(Rank, PI, PJ, Owned, Halo, 0, Owned),
                    TagBase);
  Box3 Slab1 = Owned;
  Slab1.Lo[0] -= Halo;
  Slab1.Hi[0] += Halo;
  appendDimExchange(Ops, planDimExchange(Rank, PI, PJ, Owned, Halo, 1, Slab1),
                    TagBase + 2);
}

} // namespace

std::vector<RankCommSchedule> icores::buildMpdataCommSchedule(int PI, int PJ,
                                                              int NI, int NJ,
                                                              int NK,
                                                              int Steps) {
  int Halo = mpdataCommHaloDepth();
  std::vector<RankCommSchedule> Schedules;
  Schedules.reserve(static_cast<size_t>(PI) * PJ);
  for (int R = 0; R != PI * PJ; ++R) {
    RankCommSchedule S;
    S.Rank = R;
    Box3 Owned = rankOwnedBox(R, PI, PJ, NI, NJ, NK);
    // prepareCoefficients: U1, U2, U3, Dens in turn, all at tag base 100.
    for (int Coeff = 0; Coeff != 4; ++Coeff)
      appendHaloExchange(S.Ops, R, PI, PJ, Owned, Halo, /*TagBase=*/100);
    for (int Step = 0; Step != Steps; ++Step)
      appendHaloExchange(S.Ops, R, PI, PJ, Owned, Halo, /*TagBase=*/0);
    S.Ops.push_back(CommOp::barrier());
    Schedules.push_back(std::move(S));
  }
  return Schedules;
}
