//===- dist/ClusterSim.h - Multi-node performance model ---------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Performance model for the distributed (MPI-style) extension: a cluster
/// of SMP/NUMA nodes, each running the islands-of-cores schedule on its
/// slab, with explicit per-step halo messages between slab neighbours.
/// Extends the single-machine simulator with network latency/bandwidth
/// terms — the modeling groundwork the paper's future work calls for.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_DIST_CLUSTERSIM_H
#define ICORES_DIST_CLUSTERSIM_H

#include "machine/MachineModel.h"
#include "sim/Simulator.h"

namespace icores {

/// A homogeneous cluster of SMP/NUMA nodes.
struct ClusterModel {
  MachineModel Node;          ///< Per-node machine (e.g. one UV 2000 IRU).
  int NumNodes = 1;
  double NetworkBandwidth = 6.0e9; ///< Per direction per link, B/s.
  double NetworkLatency = 1.5e-6;  ///< Per message, seconds.
};

/// Result of simulating a distributed run.
struct ClusterSimResult {
  int TimeSteps = 0;
  double StepSeconds = 0.0;
  double TotalSeconds = 0.0;
  double CommSecondsPerStep = 0.0; ///< Halo messages + step barrier.
  double NodeSecondsPerStep = 0.0; ///< Critical node's local step.
  int64_t FlopsPerStep = 0;        ///< Whole cluster, redundancy included.

  double sustainedGflops() const {
    return StepSeconds > 0.0
               ? static_cast<double>(FlopsPerStep) / StepSeconds / 1e9
               : 0.0;
  }
};

/// Simulates \p TimeSteps steps of the program over \p Grid on
/// \p Cluster, using \p SocketsPerNode sockets of every node. The domain
/// is decomposed into per-node slabs along dimension 0; each node runs
/// the islands-of-cores strategy internally and exchanges halo planes of
/// the input arrays' dependence cones once per step.
ClusterSimResult simulateCluster(const StencilProgram &Program,
                                 const Box3 &Grid,
                                 const ClusterModel &Cluster,
                                 int SocketsPerNode, int TimeSteps);

/// 2D variant (future work): nodes arranged in a NodesI x NodesJ grid
/// over dimensions 0 and 1 (NodesI * NodesJ == Cluster.NumNodes). Each
/// node exchanges halos in both dimensions (two-phase, corners included)
/// and partitions its own part across islands along dimension 0. Cures
/// the sliver problem of large 1D decompositions.
ClusterSimResult simulateCluster2D(const StencilProgram &Program,
                                   const Box3 &Grid,
                                   const ClusterModel &Cluster, int NodesI,
                                   int NodesJ, int SocketsPerNode,
                                   int TimeSteps);

} // namespace icores

#endif // ICORES_DIST_CLUSTERSIM_H
