//===- dist/RankComm.cpp - In-process message-passing substrate -----------===//

#include "dist/RankComm.h"

#include "support/Error.h"

using namespace icores;

CommWorld::CommWorld(int NumRanks) : NumRanks(NumRanks) {
  ICORES_CHECK(NumRanks >= 1, "world needs at least one rank");
}

RankComm::RankComm(CommWorld &World, int Rank) : World(World), Rank(Rank) {
  ICORES_CHECK(Rank >= 0 && Rank < World.numRanks(), "rank out of range");
}

void RankComm::send(int Destination, int Tag, const double *Data,
                    size_t Count) {
  ICORES_CHECK(Destination >= 0 && Destination < World.numRanks(),
               "send destination out of range");
  CommWorld::Message Msg;
  Msg.Payload.assign(Data, Data + Count);
  {
    std::lock_guard<std::mutex> Lock(World.Mutex);
    World.Mailboxes[{Rank, Destination, Tag}].push_back(std::move(Msg));
  }
  World.Cond.notify_all();
}

void RankComm::recv(int Source, int Tag, double *Data, size_t Count) {
  ICORES_CHECK(Source >= 0 && Source < World.numRanks(),
               "recv source out of range");
  std::unique_lock<std::mutex> Lock(World.Mutex);
  CommWorld::MailboxKey Key{Source, Rank, Tag};
  World.Cond.wait(Lock, [&] {
    auto It = World.Mailboxes.find(Key);
    return It != World.Mailboxes.end() && !It->second.empty();
  });
  auto It = World.Mailboxes.find(Key);
  CommWorld::Message Msg = std::move(It->second.front());
  It->second.erase(It->second.begin());
  ICORES_CHECK(Msg.Payload.size() == Count,
               "message size does not match the receive request");
  std::copy(Msg.Payload.begin(), Msg.Payload.end(), Data);
}

void RankComm::barrier() {
  std::unique_lock<std::mutex> Lock(World.Mutex);
  int MyGeneration = World.BarrierGeneration;
  if (++World.BarrierCount == World.numRanks()) {
    World.BarrierCount = 0;
    ++World.BarrierGeneration;
    World.Cond.notify_all();
    return;
  }
  World.Cond.wait(Lock,
                  [&] { return World.BarrierGeneration != MyGeneration; });
}
