//===- dist/RankComm.cpp - In-process message-passing substrate -----------===//

#include "dist/RankComm.h"

#include "fault/FaultInjector.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cstring>

using namespace icores;

namespace {

/// Retransmit-log cap per channel; lockstep halo traffic keeps a handful
/// of messages in flight, so this never truncates in practice.
constexpr size_t SendLogCap = 128;

/// Tags at or above this are reserved for collectives (allreduceSum).
constexpr int CollectiveTagBase = 1 << 20;

} // namespace

uint64_t icores::commChecksum(const double *Data, size_t Count) {
  // FNV-1a over the payload bytes: cheap, order-sensitive, and any
  // single flipped bit changes the digest.
  uint64_t H = 0xcbf29ce484222325ULL;
  const unsigned char *Bytes = reinterpret_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Count * sizeof(double); ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

CommWorld::CommWorld(int NumRanks) : NumRanks(NumRanks) {
  ICORES_CHECK(NumRanks >= 1, "world needs at least one rank");
}

void CommWorld::arm(FaultInjector *AInjector) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Injector = AInjector;
}

void CommWorld::setTimeouts(const CommTimeouts &T) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Timeouts = T;
}

void CommWorld::poison(int Rank, const std::string &Reason) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Poisoned) {
      Poisoned = true;
      PoisonedBy = Rank;
      PoisonReasonText = Reason;
    }
  }
  Cond.notify_all();
}

bool CommWorld::poisoned() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Poisoned;
}

std::string CommWorld::poisonReason() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return PoisonReasonText;
}

RankComm::RankComm(CommWorld &World, int Rank) : World(World), Rank(Rank) {
  ICORES_CHECK(Rank >= 0 && Rank < World.numRanks(), "rank out of range");
}

namespace {

[[noreturn]] void throwPoisoned(int Rank, int By, const std::string &Why) {
  throw Error(Error::Kind::WorldPoisoned,
              formatString("rank %d: world poisoned by rank %d: %s", Rank,
                           By, Why.c_str()));
}

} // namespace

void RankComm::send(int Destination, int Tag, const double *Data,
                    size_t Count) {
  ICORES_CHECK(Destination >= 0 && Destination < World.numRanks(),
               "send destination out of range");
  CommWorld::Message Msg;
  Msg.Payload.assign(Data, Data + Count);
  Msg.Checksum = commChecksum(Data, Count);
  Msg.VisibleAt = CommWorld::Clock::now();
  {
    std::lock_guard<std::mutex> Lock(World.Mutex);
    if (World.Poisoned)
      throwPoisoned(Rank, World.PoisonedBy, World.PoisonReasonText);
    CommWorld::MailboxKey Key{Rank, Destination, Tag};
    Msg.Seq = World.NextSendSeq[Key]++;
    if (!World.Injector) {
      World.Mailboxes[Key].push_back(std::move(Msg));
    } else {
      MessageFaultDecision D =
          World.Injector->onMessage(Rank, Destination, Tag, Msg.Seq, Count);
      if (D.Lose)
        return; // Unrecoverable: neither delivered nor logged.
      // Ground truth for the re-request path, pruned on delivery.
      std::deque<CommWorld::Message> &Log = World.SendLog[Key];
      Log.push_back(Msg);
      if (Log.size() > SendLogCap)
        Log.pop_front();
      if (D.Drop)
        return; // In-flight loss; the log still has it.
      if (D.DelaySeconds > 0)
        Msg.VisibleAt += std::chrono::duration_cast<
            CommWorld::Clock::duration>(
            std::chrono::duration<double>(D.DelaySeconds));
      if (D.CorruptBit >= 0) {
        // Flip one bit of the in-flight copy; the checksum still covers
        // the original bytes, so the receiver detects the mismatch.
        unsigned char *Bytes =
            reinterpret_cast<unsigned char *>(Msg.Payload.data());
        Bytes[static_cast<size_t>(D.CorruptBit) / 8] ^=
            static_cast<unsigned char>(1u << (D.CorruptBit % 8));
      }
      std::deque<CommWorld::Message> &Box = World.Mailboxes[Key];
      if (D.Duplicate)
        Box.push_back(Msg);
      Box.push_back(std::move(Msg));
    }
  }
  World.Cond.notify_all();
}

void RankComm::recv(int Source, int Tag, double *Data, size_t Count) {
  ICORES_CHECK(Source >= 0 && Source < World.numRanks(),
               "recv source out of range");
  CommWorld::MailboxKey Key{Source, Rank, Tag};
  std::unique_lock<std::mutex> Lock(World.Mutex);

  // Copies a verified payload out; the world mutex is held.
  auto deliverLocked = [Data, Count](CommWorld::Message &&Msg) {
    ICORES_CHECK(Msg.Payload.size() == Count,
                 "message size does not match the receive request");
    std::copy(Msg.Payload.begin(), Msg.Payload.end(), Data);
  };

  // Re-fetches the expected message from the retransmit log (the
  // recovery path for drops, losses-in-mailbox and corruption). Returns
  // true after delivering; assumes the lock is held.
  auto recoverFromLog = [&]() -> bool {
    uint64_t Expected = World.NextRecvSeq[Key];
    auto LogIt = World.SendLog.find(Key);
    if (LogIt == World.SendLog.end())
      return false;
    for (CommWorld::Message &Logged : LogIt->second) {
      if (Logged.Seq != Expected)
        continue;
      CommWorld::Message Copy = Logged;
      World.NextRecvSeq[Key] = Expected + 1;
      while (!LogIt->second.empty() &&
             LogIt->second.front().Seq <= Expected)
        LogIt->second.pop_front();
      if (World.Injector)
        World.Injector->countRecovered();
      deliverLocked(std::move(Copy));
      return true;
    }
    return false;
  };

  int Retries = 0;
  double Backoff = World.Timeouts.InitialBackoffSeconds;
  for (;;) {
    if (World.Poisoned)
      throwPoisoned(Rank, World.PoisonedBy, World.PoisonReasonText);
    uint64_t Expected = World.NextRecvSeq[Key];
    bool Progress = false;
    auto MB = World.Mailboxes.find(Key);
    if (MB != World.Mailboxes.end()) {
      std::deque<CommWorld::Message> &Q = MB->second;
      CommWorld::Clock::time_point Now = CommWorld::Clock::now();
      for (size_t M = 0; M < Q.size();) {
        if (Q[M].VisibleAt > Now) {
          ++M; // Injected delay: not deliverable yet.
          continue;
        }
        if (Q[M].Seq < Expected) {
          // Duplicate (or a late copy of a message already recovered
          // from the log): detected by sequence number, discarded.
          Q.erase(Q.begin() + static_cast<long>(M));
          if (World.Injector)
            World.Injector->countRecovered();
          Progress = true;
          continue;
        }
        if (Q[M].Seq > Expected) {
          // Sequence gap: the expected message was dropped or is still
          // delayed. Leave the future message queued; the retry path
          // re-fetches the missing one.
          ++M;
          continue;
        }
        CommWorld::Message Msg = std::move(Q[M]);
        Q.erase(Q.begin() + static_cast<long>(M));
        if (commChecksum(Msg.Payload.data(), Msg.Payload.size()) !=
            Msg.Checksum) {
          // Bit corruption detected in flight: discard the bad copy and
          // re-request the original.
          if (recoverFromLog())
            return;
          Progress = true;
          continue;
        }
        World.NextRecvSeq[Key] = Expected + 1;
        auto LogIt = World.SendLog.find(Key);
        if (LogIt != World.SendLog.end())
          while (!LogIt->second.empty() &&
                 LogIt->second.front().Seq <= Expected)
            LogIt->second.pop_front();
        deliverLocked(std::move(Msg));
        return;
      }
    }
    if (Progress)
      continue; // Rescan without burning a retry tick.

    std::cv_status Status = World.Cond.wait_for(
        Lock, std::chrono::duration<double>(Backoff));
    if (World.Poisoned)
      throwPoisoned(Rank, World.PoisonedBy, World.PoisonReasonText);
    if (Status != std::cv_status::timeout)
      continue; // Woken by a send or a spurious wake: rescan.

    // Timeout tick: count a retry, try the retransmit path, then back
    // off exponentially up to the cap.
    ++Retries;
    if (World.Injector)
      World.Injector->countRetry();
    if (recoverFromLog())
      return;
    if (Retries >= World.Timeouts.MaxRetries) {
      // The message quotes the faults injected on *this* channel; the
      // structured trace carries the injector's full record, because the
      // root cause of a stuck channel is often upstream (the peer is
      // itself blocked on a message lost on some other channel).
      std::vector<std::string> Channel, Trace;
      if (World.Injector) {
        Channel = World.Injector->traceForChannel(Source, Rank, Tag);
        Trace = World.Injector->trace();
      }
      std::string Msg = formatString(
          "rank %d: recv from rank %d (tag %d) exhausted %d retries "
          "waiting for seq %llu",
          Rank, Source, Tag, Retries,
          static_cast<unsigned long long>(Expected));
      if (!Channel.empty()) {
        Msg += "; injected faults on this channel:";
        size_t Shown = 0;
        for (const std::string &Entry : Channel) {
          if (++Shown > 8) {
            Msg += formatString(" (+%zu more)", Channel.size() - 8);
            break;
          }
          Msg += " [" + Entry + "]";
        }
      }
      throw Error(Error::Kind::RecvTimeout, Msg, std::move(Trace));
    }
    Backoff = std::min(Backoff * 2.0, World.Timeouts.MaxBackoffSeconds);
  }
}

double RankComm::allreduceSum(double Value) {
  // Rank-0 gather + broadcast in rank order: deterministic association,
  // so every rank sees the identical bit pattern. Rides the resilient
  // point-to-point protocol, hence inherits its fault recovery.
  const int NR = numRanks();
  if (NR == 1)
    return Value;
  if (Rank == 0) {
    double Sum = Value;
    for (int R = 1; R != NR; ++R) {
      double V = 0.0;
      recv(R, CollectiveTagBase + R, &V, 1);
      Sum += V;
    }
    for (int R = 1; R != NR; ++R)
      send(R, CollectiveTagBase + NR + R, &Sum, 1);
    return Sum;
  }
  send(0, CollectiveTagBase + Rank, &Value, 1);
  double Sum = 0.0;
  recv(0, CollectiveTagBase + NR + Rank, &Sum, 1);
  return Sum;
}

void RankComm::barrier() {
  std::unique_lock<std::mutex> Lock(World.Mutex);
  if (World.Poisoned)
    throwPoisoned(Rank, World.PoisonedBy, World.PoisonReasonText);
  int MyGeneration = World.BarrierGeneration;
  if (++World.BarrierCount == World.numRanks()) {
    World.BarrierCount = 0;
    ++World.BarrierGeneration;
    World.Cond.notify_all();
    return;
  }
  World.Cond.wait(Lock, [&] {
    return World.Poisoned || World.BarrierGeneration != MyGeneration;
  });
  if (World.BarrierGeneration == MyGeneration)
    throwPoisoned(Rank, World.PoisonedBy, World.PoisonReasonText);
}
