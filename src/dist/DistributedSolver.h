//===- dist/DistributedSolver.h - MPI-style distributed MPDATA --*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future work: "we plan to study the usage of MPI for
/// extending the scalability of our approach for much larger system
/// configurations". This module implements that extension over the
/// RankComm substrate: the global domain is decomposed into a PI x PJ
/// grid of rank parts (one rank = one SMP/NUMA machine). Ranks exchange
/// input-array halos explicitly once per time step — a two-phase exchange
/// (first dimension, then second dimension over the extended range, which
/// carries the corners) — and then run the whole step *independently*,
/// recomputing their inter-rank dependence cones: the islands-of-cores
/// idea lifted to distributed memory. A 1D decomposition is the PJ = 1
/// special case; the 2D grids are the paper's other future-work item and
/// cure the sliver problem the cluster benchmark exposes at scale.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_DIST_DISTRIBUTEDSOLVER_H
#define ICORES_DIST_DISTRIBUTEDSOLVER_H

#include "dist/RankComm.h"
#include "fault/FaultInjector.h"
#include "grid/Array3D.h"
#include "grid/Box3.h"
#include "mpdata/MpdataProgram.h"
#include "stencil/FieldStore.h"
#include "stencil/HaloAnalysis.h"

#include <functional>
#include <string>
#include <vector>

namespace icores {

/// Global initial data supplied per rank as index-to-value callbacks (in
/// a real MPI deployment each rank evaluates these locally; nothing is
/// broadcast).
struct DistributedInit {
  std::function<double(int, int, int)> State;
  std::function<double(int, int, int)> U1;
  std::function<double(int, int, int)> U2;
  std::function<double(int, int, int)> U3;
  std::function<double(int, int, int)> H;
};

/// One rank of the distributed MPDATA run. Periodic global boundaries;
/// PI x PJ grid decomposition over dimensions 0 and 1 (rank r sits at
/// grid position (r / PJ, r % PJ)).
class DistributedRank {
public:
  DistributedRank(RankComm &Comm, int NI, int NJ, int NK, int PI, int PJ,
                  const DistributedInit &Init);

  /// Global index box owned by this rank.
  const Box3 &ownedBox() const { return Owned; }

  /// Exchanges coefficient halos (velocities, density). Call once, before
  /// the first step, collectively on every rank.
  void prepareCoefficients();

  /// Advances \p Steps time steps (collective).
  void run(int Steps);

  /// Local view of the state; valid on ownedBox().
  const Array3D &state() const { return State; }

  /// This rank's contribution to the global conserved sum of h * psi.
  double localMass() const;

  /// Global conserved mass via allreduceSum: deterministic, identical on
  /// every rank. Collective.
  double globalMass() const;

private:
  void exchangeHalo(Array3D &A, int TagBase);
  void exchangeAlongDim(Array3D &A, int Dim, const Box3 &Slab, int TagBase);
  void fillLocalKHalo(Array3D &A);
  void step();

  RankComm &Comm;
  MpdataProgram M;
  int NI, NJ, NK;
  int PI, PJ;
  int Halo;
  Box3 Owned;
  Box3 LocalAlloc;
  RegionRequirements Req;

  Array3D State;
  Array3D Next;
  Array3D U[3];
  Array3D Dens;
  FieldStore Fields;
};

/// Convenience driver: runs a PI x PJ rank grid on threads for \p Steps
/// steps and gathers the global state into the returned array (covering
/// the full core box). Intended for tests and examples.
Array3D runDistributedMpdata2D(int PI, int PJ, int NI, int NJ, int NK,
                               int Steps, const DistributedInit &Init);

/// 1D (slab) decomposition: runDistributedMpdata2D with PJ = 1.
Array3D runDistributedMpdata(int NumRanks, int NI, int NJ, int NK, int Steps,
                             const DistributedInit &Init);

/// Outcome of a distributed run under (optional) fault injection.
struct DistChaosResult {
  /// Gathered global state; meaningful only when Ok.
  Array3D State;
  bool Ok = false;
  /// One "rank R: <message>" entry per failing rank, in completion order.
  std::vector<std::string> RankErrors;
  /// The fault trace of the first structured error (empty if none).
  std::vector<std::string> ErrorTrace;
  /// Injector counters after the run (zero when unarmed).
  FaultStats Faults;
};

/// Like runDistributedMpdata2D, but degrades gracefully instead of
/// deadlocking: the world is armed with \p Injector (may be null) and
/// \p Timeouts, a rank whose transport raises a structured icores::Error
/// poisons the world so its peers fail fast, and every per-rank error is
/// collected into the result rather than propagated. The driver for the
/// chaos harness (tests/fault_injection_test.cpp, tools/chaos_runner).
DistChaosResult runDistributedMpdataChaos(int PI, int PJ, int NI, int NJ,
                                          int NK, int Steps,
                                          const DistributedInit &Init,
                                          FaultInjector *Injector,
                                          const CommTimeouts &Timeouts);

} // namespace icores

#endif // ICORES_DIST_DISTRIBUTEDSOLVER_H
