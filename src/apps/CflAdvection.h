//===- apps/CflAdvection.h - Reduction-carrying advection app ---*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Donor-cell advection of a scalar with a spatially varying velocity
/// field, instrumented with two per-step global reductions: the grid CFL
/// number (max over cells of |u1| + |u2| + |u3|) and the max norm of the
/// advected scalar. One time step is 5 heterogeneous stages:
///
///   S1..S3  f1,f2,f3   donor-cell fluxes of q through the lower faces
///   S4      courant    per-cell Courant sum |u1| + |u2| + |u3|
///   S5      qOut       divergence update q - div(f)
///
/// The workload exists to stress the reduction path of the runtime stack:
/// `courant` is a step output no stage ever reads, so barrier elision
/// would happily drop the barrier after S4 — except that the declared
/// `cfl` reduction makes that pass an all-threads dependence (the
/// runtime's fold reads the whole pass region on the team's thread 0),
/// which ScheduleCheck must flag and the optimizer must respect. Both
/// reductions use duplicate-tolerant max-style combiners, so every plan
/// shape — islands, temporal epochs with overlapping cones, stealing —
/// reproduces the serial stepper's canonical scan bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_APPS_CFLADVECTION_H
#define ICORES_APPS_CFLADVECTION_H

#include "stencil/KernelTable.h"
#include "stencil/StencilIR.h"

#include <vector>

namespace icores {

/// The CFL-instrumented advection program plus named handles.
struct CflAdvectionProgram {
  StencilProgram Program;

  // Step inputs: the scalar and the face Courant numbers.
  ArrayId Q = 0, U1 = 0, U2 = 0, U3 = 0;

  // Intermediates.
  ArrayId F1 = 0, F2 = 0, F3 = 0;

  // Step outputs: the advected scalar (feeds back into Q) and the
  // per-cell Courant sum the `cfl` reduction folds.
  ArrayId QOut = 0, Courant = 0;

  // Stages in execution order.
  StageId SFlux1 = 0, SFlux2 = 0, SFlux3 = 0;
  StageId SCourant = 0;
  StageId SOut = 0;

  // Indices of the declared reductions in Program.reductions().
  size_t CflReduction = 0;
  size_t MaxNormReduction = 1;
};

/// Builds and validates the 5-stage program with its two reductions.
CflAdvectionProgram buildCflAdvectionProgram();

/// Builds the kernel table (reference scalar kernels; pointwise with
/// fixed evaluation order, so bit-stable under any partitioning).
KernelTable buildCflAdvectionKernels();

/// Combiner bindings for the program's `cfl` and `maxnorm` reductions
/// (max and max-of-absolute-value; both duplicate tolerant).
std::vector<ReductionBinding> cflAdvectionReductions();

/// Input-array halo depth required by the program's dependence cone.
int cflAdvectionHaloDepth();

} // namespace icores

#endif // ICORES_APPS_CFLADVECTION_H
