//===- apps/CflAdvection.cpp - Reduction-carrying advection app -----------===//

#include "apps/CflAdvection.h"

#include "stencil/FieldStore.h"
#include "stencil/HaloAnalysis.h"
#include "support/Error.h"

#include <algorithm>
#include <cmath>
#include <memory>

using namespace icores;

CflAdvectionProgram icores::buildCflAdvectionProgram() {
  CflAdvectionProgram A;
  StencilProgram &P = A.Program;

  A.Q = P.addArray("q", ArrayRole::StepInput);
  A.U1 = P.addArray("u1", ArrayRole::StepInput);
  A.U2 = P.addArray("u2", ArrayRole::StepInput);
  A.U3 = P.addArray("u3", ArrayRole::StepInput);

  A.F1 = P.addArray("f1", ArrayRole::Intermediate);
  A.F2 = P.addArray("f2", ArrayRole::Intermediate);
  A.F3 = P.addArray("f3", ArrayRole::Intermediate);

  A.QOut = P.addArray("qOut", ArrayRole::StepOutput);
  A.Courant = P.addArray("courant", ArrayRole::StepOutput);

  // Donor-cell flux of q through the lower face along Dim.
  auto addFluxStage = [&](const char *Name, ArrayId Out, ArrayId Vel,
                          int Dim) {
    StageDef S;
    S.Name = Name;
    S.Outputs = {Out};
    S.Inputs = {StageInput::alongDim(A.Q, Dim, -1, 0),
                StageInput::center(Vel)};
    S.FlopsPerPoint = 5;
    return P.addStage(std::move(S));
  };

  A.SFlux1 = addFluxStage("flux1", A.F1, A.U1, 0);
  A.SFlux2 = addFluxStage("flux2", A.F2, A.U2, 1);
  A.SFlux3 = addFluxStage("flux3", A.F3, A.U3, 2);

  // Per-cell Courant sum. No stage reads `courant`: without the declared
  // `cfl` reduction below this pass would be a barrier-elision candidate,
  // yet the runtime's cross-thread fold of the pass region makes the
  // missing barrier a real race. ScheduleOptimizer must pin it and
  // ScheduleCheck must flag its absence.
  {
    StageDef S;
    S.Name = "courant";
    S.Outputs = {A.Courant};
    S.Inputs = {StageInput::center(A.U1), StageInput::center(A.U2),
                StageInput::center(A.U3)};
    S.FlopsPerPoint = 5;
    A.SCourant = P.addStage(std::move(S));
  }

  // Divergence update: qOut = q - div(f).
  {
    StageDef S;
    S.Name = "update";
    S.Outputs = {A.QOut};
    S.Inputs = {StageInput::center(A.Q), StageInput::alongDim(A.F1, 0, 0, 1),
                StageInput::alongDim(A.F2, 1, 0, 1),
                StageInput::alongDim(A.F3, 2, 0, 1)};
    S.FlopsPerPoint = 7;
    A.SOut = P.addStage(std::move(S));
  }

  P.addFeedback(A.QOut, A.Q);

  P.addReduction({"cfl", A.Courant});
  P.addReduction({"maxnorm", A.QOut});
  A.CflReduction = 0;
  A.MaxNormReduction = 1;

  std::string Error;
  ICORES_CHECK(P.validate(Error), "cfl-advection program invalid");
  ICORES_CHECK(P.numStages() == 5, "cfl-advection must have 5 stages");
  return A;
}

namespace {

/// Donor-cell flux through the lower face along \p Dim over \p Region.
void kernelFlux(const Array3D &Q, const Array3D &U, Array3D &F, int Dim,
                const Box3 &Region) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K) {
        int IL = Dim == 0 ? I - 1 : I;
        int JL = Dim == 1 ? J - 1 : J;
        int KL = Dim == 2 ? K - 1 : K;
        double Vel = U.at(I, J, K);
        F.at(I, J, K) = std::max(Vel, 0.0) * Q.at(IL, JL, KL) +
                        std::min(Vel, 0.0) * Q.at(I, J, K);
      }
}

/// Per-cell Courant sum over \p Region.
void kernelCourant(const Array3D &U1, const Array3D &U2, const Array3D &U3,
                   Array3D &C, const Box3 &Region) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K)
        C.at(I, J, K) = std::fabs(U1.at(I, J, K)) + std::fabs(U2.at(I, J, K)) +
                        std::fabs(U3.at(I, J, K));
}

/// Divergence update over \p Region.
void kernelUpdate(const Array3D &Q, const Array3D &F1, const Array3D &F2,
                  const Array3D &F3, Array3D &Out, const Box3 &Region) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K) {
        double Div = F1.at(I + 1, J, K) - F1.at(I, J, K) +
                     F2.at(I, J + 1, K) - F2.at(I, J, K) +
                     F3.at(I, J, K + 1) - F3.at(I, J, K);
        Out.at(I, J, K) = Q.at(I, J, K) - Div;
      }
}

} // namespace

KernelTable icores::buildCflAdvectionKernels() {
  auto A =
      std::make_shared<const CflAdvectionProgram>(buildCflAdvectionProgram());
  KernelTable Table(A->Program.numStages());

  auto setFlux = [&](StageId Stage, ArrayId Out, ArrayId Vel, int Dim) {
    Table.set(Stage, [A, Out, Vel, Dim](FieldStore &F, const Box3 &Region) {
      kernelFlux(F.get(A->Q), F.get(Vel), F.get(Out), Dim, Region);
    });
  };
  setFlux(A->SFlux1, A->F1, A->U1, 0);
  setFlux(A->SFlux2, A->F2, A->U2, 1);
  setFlux(A->SFlux3, A->F3, A->U3, 2);

  Table.set(A->SCourant, [A](FieldStore &F, const Box3 &Region) {
    kernelCourant(F.get(A->U1), F.get(A->U2), F.get(A->U3), F.get(A->Courant),
                  Region);
  });
  Table.set(A->SOut, [A](FieldStore &F, const Box3 &Region) {
    kernelUpdate(F.get(A->Q), F.get(A->F1), F.get(A->F2), F.get(A->F3),
                 F.get(A->QOut), Region);
  });
  return Table;
}

std::vector<ReductionBinding> icores::cflAdvectionReductions() {
  // Both combiners are max-style: associative, commutative, and duplicate
  // tolerant, so the redundant cone cells of islands/temporal plans (which
  // hold bit-identical periodic images) fold to the exact serial result.
  std::vector<ReductionBinding> Bindings;
  Bindings.push_back(
      {"cfl", [](double Acc, double V) { return std::max(Acc, V); }, 0.0});
  Bindings.push_back({"maxnorm",
                      [](double Acc, double V) {
                        // Partials are maxima of absolute values, so
                        // re-applying fabs when combining them is a no-op
                        // and partial-combining stays exact.
                        return std::max(Acc, std::fabs(V));
                      },
                      0.0});
  return Bindings;
}

int icores::cflAdvectionHaloDepth() {
  CflAdvectionProgram A = buildCflAdvectionProgram();
  std::array<int, 3> Depth =
      inputHaloDepth(A.Program, Box3::fromExtents(64, 64, 64));
  return std::max({Depth[0], Depth[1], Depth[2]});
}
