//===- apps/AdvectionDiffusion.cpp - Second heterogeneous stencil app -----===//

#include "apps/AdvectionDiffusion.h"

#include "stencil/FieldStore.h"
#include "stencil/HaloAnalysis.h"
#include "support/Error.h"

#include <algorithm>
#include <memory>

using namespace icores;

AdvDiffProgram icores::buildAdvDiffProgram() {
  AdvDiffProgram A;
  StencilProgram &P = A.Program;

  A.Phi = P.addArray("phi", ArrayRole::StepInput);
  A.U1 = P.addArray("u1", ArrayRole::StepInput);
  A.U2 = P.addArray("u2", ArrayRole::StepInput);
  A.U3 = P.addArray("u3", ArrayRole::StepInput);
  A.Kappa = P.addArray("kappa", ArrayRole::StepInput);

  A.F1 = P.addArray("f1", ArrayRole::Intermediate);
  A.F2 = P.addArray("f2", ArrayRole::Intermediate);
  A.F3 = P.addArray("f3", ArrayRole::Intermediate);
  A.Half = P.addArray("half", ArrayRole::Intermediate);
  A.G1 = P.addArray("g1", ArrayRole::Intermediate);
  A.G2 = P.addArray("g2", ArrayRole::Intermediate);
  A.G3 = P.addArray("g3", ArrayRole::Intermediate);

  A.PhiOut = P.addArray("phiOut", ArrayRole::StepOutput);

  // Flux stage: donor-cell advective flux plus Fickian diffusive flux
  // through the lower face along Dim, using the face-averaged kappa.
  auto addFluxStage = [&](const char *Name, ArrayId State, ArrayId Out,
                          ArrayId Vel, int Dim) {
    StageDef S;
    S.Name = Name;
    S.Outputs = {Out};
    S.Inputs = {StageInput::alongDim(State, Dim, -1, 0),
                StageInput::center(Vel),
                StageInput::alongDim(A.Kappa, Dim, -1, 0)};
    S.FlopsPerPoint = 10;
    return P.addStage(std::move(S));
  };

  // Divergence update: Out = phi - Scale * div(F).
  auto addUpdateStage = [&](const char *Name, ArrayId Out, ArrayId FF1,
                            ArrayId FF2, ArrayId FF3) {
    StageDef S;
    S.Name = Name;
    S.Outputs = {Out};
    S.Inputs = {StageInput::center(A.Phi),
                StageInput::alongDim(FF1, 0, 0, 1),
                StageInput::alongDim(FF2, 1, 0, 1),
                StageInput::alongDim(FF3, 2, 0, 1)};
    S.FlopsPerPoint = 7;
    return P.addStage(std::move(S));
  };

  A.SFlux1 = addFluxStage("flux1", A.Phi, A.F1, A.U1, 0);
  A.SFlux2 = addFluxStage("flux2", A.Phi, A.F2, A.U2, 1);
  A.SFlux3 = addFluxStage("flux3", A.Phi, A.F3, A.U3, 2);
  A.SHalf = addUpdateStage("midpoint", A.Half, A.F1, A.F2, A.F3);
  A.SGFlux1 = addFluxStage("gflux1", A.Half, A.G1, A.U1, 0);
  A.SGFlux2 = addFluxStage("gflux2", A.Half, A.G2, A.U2, 1);
  A.SGFlux3 = addFluxStage("gflux3", A.Half, A.G3, A.U3, 2);
  A.SOut = addUpdateStage("output", A.PhiOut, A.G1, A.G2, A.G3);

  P.addFeedback(A.PhiOut, A.Phi);

  std::string Error;
  ICORES_CHECK(P.validate(Error), "advection-diffusion program invalid");
  ICORES_CHECK(P.numStages() == 8, "advection-diffusion must have 8 stages");
  return A;
}

namespace {

/// Computes one flux stage over \p Region.
void kernelFlux(const Array3D &State, const Array3D &U, const Array3D &Kappa,
                Array3D &F, int Dim, const Box3 &Region) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K) {
        int IL = Dim == 0 ? I - 1 : I;
        int JL = Dim == 1 ? J - 1 : J;
        int KL = Dim == 2 ? K - 1 : K;
        double L = State.at(IL, JL, KL);
        double R = State.at(I, J, K);
        double Vel = U.at(I, J, K);
        double KFace = 0.5 * (Kappa.at(IL, JL, KL) + Kappa.at(I, J, K));
        F.at(I, J, K) = std::max(Vel, 0.0) * L + std::min(Vel, 0.0) * R -
                        KFace * (R - L);
      }
}

/// Computes one divergence update over \p Region.
void kernelUpdate(const Array3D &Phi, const Array3D &F1, const Array3D &F2,
                  const Array3D &F3, double Scale, Array3D &Out,
                  const Box3 &Region) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K) {
        double Div = F1.at(I + 1, J, K) - F1.at(I, J, K) +
                     F2.at(I, J + 1, K) - F2.at(I, J, K) +
                     F3.at(I, J, K + 1) - F3.at(I, J, K);
        Out.at(I, J, K) = Phi.at(I, J, K) - Scale * Div;
      }
}

} // namespace

KernelTable icores::buildAdvDiffKernels() {
  auto A = std::make_shared<const AdvDiffProgram>(buildAdvDiffProgram());
  KernelTable Table(A->Program.numStages());

  auto setFlux = [&](StageId Stage, ArrayId State, ArrayId Out, ArrayId Vel,
                     int Dim) {
    Table.set(Stage, [A, State, Out, Vel, Dim](FieldStore &F,
                                               const Box3 &Region) {
      kernelFlux(F.get(State), F.get(Vel), F.get(A->Kappa), F.get(Out), Dim,
                 Region);
    });
  };
  auto setUpdate = [&](StageId Stage, ArrayId Out, ArrayId FF1, ArrayId FF2,
                       ArrayId FF3, double Scale) {
    Table.set(Stage, [A, Out, FF1, FF2, FF3, Scale](FieldStore &F,
                                                    const Box3 &Region) {
      kernelUpdate(F.get(A->Phi), F.get(FF1), F.get(FF2), F.get(FF3), Scale,
                   F.get(Out), Region);
    });
  };

  setFlux(A->SFlux1, A->Phi, A->F1, A->U1, 0);
  setFlux(A->SFlux2, A->Phi, A->F2, A->U2, 1);
  setFlux(A->SFlux3, A->Phi, A->F3, A->U3, 2);
  setUpdate(A->SHalf, A->Half, A->F1, A->F2, A->F3, 0.5);
  setFlux(A->SGFlux1, A->Half, A->G1, A->U1, 0);
  setFlux(A->SGFlux2, A->Half, A->G2, A->U2, 1);
  setFlux(A->SGFlux3, A->Half, A->G3, A->U3, 2);
  setUpdate(A->SOut, A->PhiOut, A->G1, A->G2, A->G3, 1.0);
  return Table;
}

int icores::advDiffHaloDepth() {
  AdvDiffProgram A = buildAdvDiffProgram();
  std::array<int, 3> Depth =
      inputHaloDepth(A.Program, Box3::fromExtents(64, 64, 64));
  return std::max({Depth[0], Depth[1], Depth[2]});
}
