//===- apps/Hotspot.h - Thermal diffusion workload --------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hotspot-style thermal simulation: explicit diffusion of a temperature
/// field driven by a static per-cell power map, with Newtonian cooling
/// toward the ambient. One time step is 4 heterogeneous stages:
///
///   S1..S3  g1,g2,g3  conductive heat flux through the lower face
///                     along each dimension (g = T - T_lower)
///   S4      tOut      T + Cd * div(g) + Cp * P + Cr * (Tamb - T)
///
/// The face-flux formulation makes div(g) the exact 7-point Laplacian
/// (g(i+1) - g(i) telescopes to the directional second difference) while
/// giving the update stage spatially offset reads of the g arrays, so the
/// producer/consumer barriers are genuine cross-thread dependences the
/// elision proofs must keep. The dependence cone is one cell deep — the
/// shallowest of the registered workloads — which exercises the halo
/// machinery at its minimum and makes temporal epochs cheap.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_APPS_HOTSPOT_H
#define ICORES_APPS_HOTSPOT_H

#include "stencil/KernelTable.h"
#include "stencil/StencilIR.h"

namespace icores {

/// The hotspot thermal program plus named handles.
struct HotspotProgram {
  StencilProgram Program;

  // Step inputs: the temperature field and the static power map.
  ArrayId T = 0, Power = 0;

  // Intermediates: lower-face conductive fluxes per dimension.
  ArrayId G1 = 0, G2 = 0, G3 = 0;

  // Step output: the updated temperature (feeds back into T).
  ArrayId TOut = 0;

  // Stages in execution order.
  StageId SGrad1 = 0, SGrad2 = 0, SGrad3 = 0;
  StageId SOut = 0;
};

/// Model coefficients; chosen inside the explicit-Euler stability region
/// (diffusion number Cd < 1/6 for the 3D 7-point Laplacian).
constexpr double HotspotCd = 0.12;   ///< Diffusion number.
constexpr double HotspotCp = 0.05;   ///< Power-injection coefficient.
constexpr double HotspotCr = 0.01;   ///< Newtonian cooling coefficient.
constexpr double HotspotTamb = 25.0; ///< Ambient temperature.

/// Builds and validates the 4-stage program.
HotspotProgram buildHotspotProgram();

/// Builds the kernel table (reference scalar kernels; pointwise with
/// fixed evaluation order, so bit-stable under any partitioning).
KernelTable buildHotspotKernels();

/// Input-array halo depth required by the program's dependence cone.
int hotspotHaloDepth();

} // namespace icores

#endif // ICORES_APPS_HOTSPOT_H
