//===- apps/AdvectionDiffusion.h - Second heterogeneous stencil app -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second application built on the library's public API: advection of a
/// scalar with spatially varying diffusivity, advanced with a two-stage
/// (midpoint) Runge-Kutta scheme. One time step is 8 heterogeneous
/// stencil stages:
///
///   S1..S3  f1,f2,f3   combined donor-cell + diffusive fluxes of phi
///   S4      half       midpoint state phi - dt/2 * div(f)
///   S5..S7  g1,g2,g3   fluxes re-evaluated at the midpoint state
///   S8      phiOut     full update phi - dt * div(g)
///
/// The program exists to prove that the islands-of-cores machinery —
/// dependence-cone analysis, planners, executors, verifier, simulator —
/// is application-agnostic: nothing in this module touches MPDATA.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_APPS_ADVECTIONDIFFUSION_H
#define ICORES_APPS_ADVECTIONDIFFUSION_H

#include "stencil/KernelTable.h"
#include "stencil/StencilIR.h"

namespace icores {

/// The advection-diffusion stencil program plus named handles.
struct AdvDiffProgram {
  StencilProgram Program;

  // Step inputs: the scalar, face Courant numbers, and the cell-centred
  // nondimensional diffusivity (kappa = D * dt / dx^2).
  ArrayId Phi = 0, U1 = 0, U2 = 0, U3 = 0, Kappa = 0;

  // Intermediates.
  ArrayId F1 = 0, F2 = 0, F3 = 0;
  ArrayId Half = 0;
  ArrayId G1 = 0, G2 = 0, G3 = 0;

  // Step output (feeds back into Phi).
  ArrayId PhiOut = 0;

  // Stages in execution order.
  StageId SFlux1 = 0, SFlux2 = 0, SFlux3 = 0;
  StageId SHalf = 0;
  StageId SGFlux1 = 0, SGFlux2 = 0, SGFlux3 = 0;
  StageId SOut = 0;
};

/// Builds and validates the 8-stage program.
AdvDiffProgram buildAdvDiffProgram();

/// Builds the kernel table for the program (reference scalar kernels;
/// pointwise with fixed evaluation order, so bit-stable under any
/// partitioning).
KernelTable buildAdvDiffKernels();

/// Input-array halo depth required by the program's dependence cone.
int advDiffHaloDepth();

} // namespace icores

#endif // ICORES_APPS_ADVECTIONDIFFUSION_H
