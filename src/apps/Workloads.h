//===- apps/Workloads.h - Built-in workload registrations -------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registration of the repository's built-in workloads into a
/// WorkloadRegistry. This is the only place that knows the full roster;
/// planners, runtimes, CLIs and tests enumerate the registry instead of
/// naming apps. Adding a workload means adding its program/kernels under
/// src/apps (or another app library) and one registration entry here —
/// nothing under src/exec, src/core or src/sim changes.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_APPS_WORKLOADS_H
#define ICORES_APPS_WORKLOADS_H

#include "stencil/WorkloadRegistry.h"

namespace icores {

class DiagnosticEngine;

/// Registers every built-in workload (mpdata, advdiff, cfl-advect, ...)
/// into \p R. Registration failures surface as `registry.*` findings in
/// \p Diags; returns true when all built-ins registered cleanly.
bool registerBuiltinWorkloads(WorkloadRegistry &R, DiagnosticEngine &Diags);

/// The process-wide registry of built-in workloads, built on first use.
/// Built-ins are maintained in-tree, so a registration failure here is a
/// programming error and fatal.
const WorkloadRegistry &builtinWorkloads();

} // namespace icores

#endif // ICORES_APPS_WORKLOADS_H
