//===- apps/Workloads.cpp - Built-in workload registrations ---------------===//

#include "apps/Workloads.h"

#include "apps/AdvectionDiffusion.h"
#include "apps/CflAdvection.h"
#include "apps/Hotspot.h"
#include "grid/Array3D.h"
#include "mpdata/InitialConditions.h"
#include "mpdata/Kernels.h"
#include "mpdata/Solver.h"
#include "support/Diagnostics.h"
#include "support/Error.h"
#include "support/Random.h"

#include <utility>

using namespace icores;

namespace {

/// Fills the core region of \p A with deterministic values in [Lo, Hi);
/// unlike fillRandomPositive, the range may include negative values
/// (velocity components).
void fillRandomSigned(Array3D &A, const Domain &D, uint64_t Seed, double Lo,
                      double Hi) {
  SplitMix64 Rng(Seed);
  Box3 Core = D.coreBox();
  for (int I = Core.Lo[0]; I != Core.Hi[0]; ++I)
    for (int J = Core.Lo[1]; J != Core.Hi[1]; ++J)
      for (int K = Core.Lo[2]; K != Core.Hi[2]; ++K)
        A.at(I, J, K) = Rng.nextInRange(Lo, Hi);
}

bool registerMpdata(WorkloadRegistry &R, DiagnosticEngine &Diags) {
  MpdataProgram M = buildMpdataProgram();
  WorkloadSpec Spec;
  Spec.Name = "mpdata";
  Spec.Description =
      "17-stage positive-definite MPDATA advection (upwind + antidiffusive "
      "corrector with nonoscillatory limiters)";
  Spec.HaloDepth = mpdataHaloDepth();
  Spec.Variants = {KernelVariant::Reference, KernelVariant::Optimized,
                   KernelVariant::Simd};
  Spec.Kernels = [](KernelVariant V) { return buildMpdataKernels(V); };
  ArrayId XIn = M.XIn, U1 = M.U1, U2 = M.U2, U3 = M.U3, H = M.H;
  Spec.Init = [XIn, U1, U2, U3, H](const WorkloadInitContext &Ctx) {
    const Domain &D = Ctx.Dom;
    // A Gaussian tracer blob advected by a constant sub-CFL velocity;
    // the seed jitters the blob's periodic center so distinct seeds give
    // distinct (still positive) fields.
    SplitMix64 Rng(Ctx.Seed ^ 0x6d70646174610001ULL);
    GaussianBlob Blob;
    Blob.CenterI = D.ni() / 3.0 + Rng.nextInRange(-1.5, 1.5);
    Blob.CenterJ = D.nj() / 2.0 + Rng.nextInRange(-1.5, 1.5);
    Blob.CenterK = D.nk() / 2.0 + Rng.nextInRange(-1.5, 1.5);
    Blob.Sigma = 2.5;
    fillGaussian(Ctx.Array(XIn), D, Blob);
    Ctx.Array(U1).fill(0.25);
    Ctx.Array(U2).fill(-0.2);
    Ctx.Array(U3).fill(0.1);
    Ctx.Array(H).fill(1.0);
  };
  Spec.Program = std::move(M.Program);
  return R.add(std::move(Spec), Diags);
}

bool registerAdvDiff(WorkloadRegistry &R, DiagnosticEngine &Diags) {
  AdvDiffProgram A = buildAdvDiffProgram();
  WorkloadSpec Spec;
  Spec.Name = "advdiff";
  Spec.Description = "8-stage RK2 advection-diffusion (donor-cell advective "
                     "plus Fickian diffusive fluxes, midpoint update)";
  Spec.HaloDepth = advDiffHaloDepth();
  Spec.Variants = {KernelVariant::Reference};
  Spec.Kernels = [](KernelVariant) { return buildAdvDiffKernels(); };
  ArrayId Phi = A.Phi, U1 = A.U1, U2 = A.U2, U3 = A.U3, Kappa = A.Kappa;
  Spec.Init = [Phi, U1, U2, U3, Kappa](const WorkloadInitContext &Ctx) {
    const Domain &D = Ctx.Dom;
    fillRandomPositive(Ctx.Array(Phi), D, Ctx.Seed ^ 0x6164760000000001ULL,
                       0.5, 1.5);
    fillRandomPositive(Ctx.Array(Kappa), D, Ctx.Seed ^ 0x6164760000000002ULL,
                       0.02, 0.08);
    Ctx.Array(U1).fill(0.2);
    Ctx.Array(U2).fill(-0.15);
    Ctx.Array(U3).fill(0.1);
  };
  Spec.Program = std::move(A.Program);
  return R.add(std::move(Spec), Diags);
}

bool registerCflAdvection(WorkloadRegistry &R, DiagnosticEngine &Diags) {
  CflAdvectionProgram A = buildCflAdvectionProgram();
  WorkloadSpec Spec;
  Spec.Name = "cfl-advect";
  Spec.Description = "5-stage donor-cell advection carrying per-step global "
                     "CFL and max-norm reductions";
  Spec.HaloDepth = cflAdvectionHaloDepth();
  Spec.Variants = {KernelVariant::Reference};
  Spec.Kernels = [](KernelVariant) { return buildCflAdvectionKernels(); };
  Spec.Reductions = cflAdvectionReductions();
  ArrayId Q = A.Q, U1 = A.U1, U2 = A.U2, U3 = A.U3;
  Spec.Init = [Q, U1, U2, U3](const WorkloadInitContext &Ctx) {
    const Domain &D = Ctx.Dom;
    fillRandomPositive(Ctx.Array(Q), D, Ctx.Seed ^ 0x63666c0000000001ULL, 0.5,
                       1.5);
    // Spatially varying velocities; |u1|+|u2|+|u3| stays below 0.9, so
    // the reported CFL is meaningful for a unit-timestep donor scheme.
    fillRandomSigned(Ctx.Array(U1), D, Ctx.Seed ^ 0x63666c0000000002ULL, -0.3,
                     0.3);
    fillRandomSigned(Ctx.Array(U2), D, Ctx.Seed ^ 0x63666c0000000003ULL, -0.3,
                     0.3);
    fillRandomSigned(Ctx.Array(U3), D, Ctx.Seed ^ 0x63666c0000000004ULL, -0.3,
                     0.3);
  };
  Spec.Program = std::move(A.Program);
  return R.add(std::move(Spec), Diags);
}

bool registerHotspot(WorkloadRegistry &R, DiagnosticEngine &Diags) {
  HotspotProgram A = buildHotspotProgram();
  WorkloadSpec Spec;
  Spec.Name = "hotspot";
  Spec.Description = "4-stage explicit thermal diffusion (face-flux 7-point "
                     "Laplacian, static power map, Newtonian cooling)";
  Spec.HaloDepth = hotspotHaloDepth();
  Spec.Variants = {KernelVariant::Reference};
  Spec.Kernels = [](KernelVariant) { return buildHotspotKernels(); };
  ArrayId T = A.T, Power = A.Power;
  Spec.Init = [T, Power](const WorkloadInitContext &Ctx) {
    const Domain &D = Ctx.Dom;
    // A die that starts near ambient with seed-jittered spatial noise,
    // heated by a static random power map (a few hot cells on a cool
    // background, like a floorplan's active blocks).
    fillRandomPositive(Ctx.Array(T), D, Ctx.Seed ^ 0x686f740000000001ULL,
                       HotspotTamb - 2.0, HotspotTamb + 2.0);
    fillRandomPositive(Ctx.Array(Power), D,
                       Ctx.Seed ^ 0x686f740000000002ULL, 0.0, 2.0);
  };
  Spec.Program = std::move(A.Program);
  return R.add(std::move(Spec), Diags);
}

} // namespace

bool icores::registerBuiltinWorkloads(WorkloadRegistry &R,
                                      DiagnosticEngine &Diags) {
  bool Ok = registerMpdata(R, Diags);
  Ok = registerAdvDiff(R, Diags) && Ok;
  Ok = registerCflAdvection(R, Diags) && Ok;
  Ok = registerHotspot(R, Diags) && Ok;
  return Ok;
}

const WorkloadRegistry &icores::builtinWorkloads() {
  static WorkloadRegistry Registry = [] {
    WorkloadRegistry R;
    DiagnosticEngine Diags;
    bool Ok = registerBuiltinWorkloads(R, Diags);
    ICORES_CHECK(Ok, "built-in workload failed registration");
    return R;
  }();
  return Registry;
}
