//===- apps/Hotspot.cpp - Thermal diffusion workload ----------------------===//

#include "apps/Hotspot.h"

#include "stencil/FieldStore.h"
#include "stencil/HaloAnalysis.h"
#include "support/Error.h"

#include <algorithm>
#include <memory>

using namespace icores;

HotspotProgram icores::buildHotspotProgram() {
  HotspotProgram A;
  StencilProgram &P = A.Program;

  A.T = P.addArray("t", ArrayRole::StepInput);
  A.Power = P.addArray("power", ArrayRole::StepInput);

  A.G1 = P.addArray("g1", ArrayRole::Intermediate);
  A.G2 = P.addArray("g2", ArrayRole::Intermediate);
  A.G3 = P.addArray("g3", ArrayRole::Intermediate);

  A.TOut = P.addArray("tOut", ArrayRole::StepOutput);

  // Conductive flux through the lower face along Dim: g = T - T_lower.
  auto addGradStage = [&](const char *Name, ArrayId Out, int Dim) {
    StageDef S;
    S.Name = Name;
    S.Outputs = {Out};
    S.Inputs = {StageInput::alongDim(A.T, Dim, -1, 0)};
    S.FlopsPerPoint = 1;
    return P.addStage(std::move(S));
  };

  A.SGrad1 = addGradStage("grad1", A.G1, 0);
  A.SGrad2 = addGradStage("grad2", A.G2, 1);
  A.SGrad3 = addGradStage("grad3", A.G3, 2);

  // Flux-divergence update: g(i+1) - g(i) telescopes to the directional
  // second difference, so div(g) is the 7-point Laplacian of T.
  {
    StageDef S;
    S.Name = "update";
    S.Outputs = {A.TOut};
    S.Inputs = {StageInput::center(A.T), StageInput::center(A.Power),
                StageInput::alongDim(A.G1, 0, 0, 1),
                StageInput::alongDim(A.G2, 1, 0, 1),
                StageInput::alongDim(A.G3, 2, 0, 1)};
    S.FlopsPerPoint = 12;
    A.SOut = P.addStage(std::move(S));
  }

  P.addFeedback(A.TOut, A.T);

  std::string Error;
  ICORES_CHECK(P.validate(Error), "hotspot program invalid");
  ICORES_CHECK(P.numStages() == 4, "hotspot must have 4 stages");
  return A;
}

namespace {

/// Lower-face temperature difference along \p Dim over \p Region.
void kernelGrad(const Array3D &T, Array3D &G, int Dim, const Box3 &Region) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K) {
        int IL = Dim == 0 ? I - 1 : I;
        int JL = Dim == 1 ? J - 1 : J;
        int KL = Dim == 2 ? K - 1 : K;
        G.at(I, J, K) = T.at(I, J, K) - T.at(IL, JL, KL);
      }
}

/// Thermal update over \p Region.
void kernelUpdate(const Array3D &T, const Array3D &Power, const Array3D &G1,
                  const Array3D &G2, const Array3D &G3, Array3D &Out,
                  const Box3 &Region) {
  for (int I = Region.Lo[0]; I != Region.Hi[0]; ++I)
    for (int J = Region.Lo[1]; J != Region.Hi[1]; ++J)
      for (int K = Region.Lo[2]; K != Region.Hi[2]; ++K) {
        double Div = G1.at(I + 1, J, K) - G1.at(I, J, K) +
                     G2.at(I, J + 1, K) - G2.at(I, J, K) +
                     G3.at(I, J, K + 1) - G3.at(I, J, K);
        Out.at(I, J, K) = T.at(I, J, K) + HotspotCd * Div +
                          HotspotCp * Power.at(I, J, K) +
                          HotspotCr * (HotspotTamb - T.at(I, J, K));
      }
}

} // namespace

KernelTable icores::buildHotspotKernels() {
  auto A = std::make_shared<const HotspotProgram>(buildHotspotProgram());
  KernelTable Table(A->Program.numStages());

  auto setGrad = [&](StageId Stage, ArrayId Out, int Dim) {
    Table.set(Stage, [A, Out, Dim](FieldStore &F, const Box3 &Region) {
      kernelGrad(F.get(A->T), F.get(Out), Dim, Region);
    });
  };
  setGrad(A->SGrad1, A->G1, 0);
  setGrad(A->SGrad2, A->G2, 1);
  setGrad(A->SGrad3, A->G3, 2);

  Table.set(A->SOut, [A](FieldStore &F, const Box3 &Region) {
    kernelUpdate(F.get(A->T), F.get(A->Power), F.get(A->G1), F.get(A->G2),
                 F.get(A->G3), F.get(A->TOut), Region);
  });
  return Table;
}

int icores::hotspotHaloDepth() {
  HotspotProgram A = buildHotspotProgram();
  std::array<int, 3> Depth =
      inputHaloDepth(A.Program, Box3::fromExtents(64, 64, 64));
  return std::max({Depth[0], Depth[1], Depth[2]});
}
