//===- fault/Watchdog.cpp - Deadlock watchdog for chaos runs --------------===//

#include "fault/Watchdog.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

using namespace icores;

struct Watchdog::State {
  std::mutex Mutex;
  std::condition_variable Cond;
  bool Disarmed = false;
  std::thread Thread;
};

Watchdog::Watchdog(double BudgetSeconds, std::string What) : S(new State) {
  S->Thread = std::thread([State = S, BudgetSeconds,
                           What = std::move(What)] {
    std::unique_lock<std::mutex> Lock(State->Mutex);
    bool Disarmed = State->Cond.wait_for(
        Lock, std::chrono::duration<double>(BudgetSeconds),
        [State] { return State->Disarmed; });
    if (Disarmed)
      return;
    std::fprintf(stderr,
                 "icores watchdog: '%s' still running after %.1fs — "
                 "deadlock; aborting\n",
                 What.c_str(), BudgetSeconds);
    std::abort();
  });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Disarmed = true;
  }
  S->Cond.notify_all();
  S->Thread.join();
  delete S;
}
