//===- fault/FaultInjector.h - Armed fault-injection runtime ----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of the chaos subsystem: a FaultInjector wraps a
/// FaultPlan with thread-safe counters and a bounded trace of every fault
/// it injected. Hook points in dist/RankComm.h, exec/ProgramExecutor.h
/// and exec/TeamBarrier.h are compiled in unconditionally but gate on a
/// single `Injector != nullptr` test, so an unarmed run pays one
/// predictable branch per hook and nothing else.
///
/// The trace is the forensic record: when a receive exhausts its retries,
/// the structured icores::Error it raises carries the trace entries of
/// the channel that failed, so a chaos test can assert the run died of
/// the fault that was injected — not of an unrelated hang.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_FAULT_FAULTINJECTOR_H
#define ICORES_FAULT_FAULTINJECTOR_H

#include "fault/FaultPlan.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace icores {

/// Snapshot of the injector's counters (ExecStats schema v3 mirrors
/// these as faults_injected / retries / timeouts / recovered).
struct FaultStats {
  int64_t Injected = 0;  ///< Faults actually applied at hook points.
  int64_t Retries = 0;   ///< recv() timeout ticks that triggered a retry.
  int64_t Timeouts = 0;  ///< Stalled-team timeouts detected at barriers.
  int64_t Recovered = 0; ///< Faults detected and repaired (dup discard,
                         ///< checksum re-fetch, retransmit-log re-fetch).
};

/// Thread-safe armed instance of one FaultPlan.
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan &Plan) : Plan(Plan) {}

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  const FaultPlan &plan() const { return Plan; }

  /// Decides, counts and traces the faults for one message. Call exactly
  /// once per sent message (decisions are pure, but counting is not).
  MessageFaultDecision onMessage(int Src, int Dst, int Tag, uint64_t Seq,
                                 size_t CountDoubles);

  /// Stall decision for one worker pass; counts and traces when nonzero.
  double onWorkerPass(int Island, int Thread, int Step, int PassIndex);

  /// Spurious-wakeup decision for one barrier crossing; counts and
  /// traces when true.
  bool onBarrierCrossing(uint64_t Site, int Thread, uint64_t Crossing);

  void countRetry() { Retries.fetch_add(1, std::memory_order_relaxed); }
  void countTimeout() { Timeouts.fetch_add(1, std::memory_order_relaxed); }
  void countRecovered() {
    Recovered.fetch_add(1, std::memory_order_relaxed);
  }

  FaultStats stats() const;

  /// Every trace entry so far, in injection order (bounded; the cap is
  /// generous for test workloads). Ordering across threads follows the
  /// actual interleaving; compare traces as sorted multisets.
  std::vector<std::string> trace() const;

  /// The trace entries whose site matches channel (\p Src -> \p Dst,
  /// \p Tag) — what a structured recv error attaches as its fault trace.
  std::vector<std::string> traceForChannel(int Src, int Dst,
                                           int Tag) const;

private:
  void record(std::string Entry);

  FaultPlan Plan;
  std::atomic<int64_t> Injected{0};
  std::atomic<int64_t> Retries{0};
  std::atomic<int64_t> Timeouts{0};
  std::atomic<int64_t> Recovered{0};

  static constexpr size_t TraceCap = 65536;
  mutable std::mutex TraceMutex;
  std::vector<std::string> Trace;
};

} // namespace icores

#endif // ICORES_FAULT_FAULTINJECTOR_H
