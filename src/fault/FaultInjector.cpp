//===- fault/FaultInjector.cpp - Armed fault-injection runtime ------------===//

#include "fault/FaultInjector.h"

#include "support/Format.h"

using namespace icores;

namespace {

/// Channel prefix shared by message trace entries and traceForChannel(),
/// so the structured error can find the faults of the failing channel.
std::string channelPrefix(int Src, int Dst, int Tag) {
  return formatString("msg src=%d dst=%d tag=%d", Src, Dst, Tag);
}

} // namespace

MessageFaultDecision FaultInjector::onMessage(int Src, int Dst, int Tag,
                                              uint64_t Seq,
                                              size_t CountDoubles) {
  MessageFaultDecision D =
      Plan.messageFaults(Src, Dst, Tag, Seq, CountDoubles);
  if (!D.any())
    return D;
  Injected.fetch_add(1, std::memory_order_relaxed);
  const char *What = D.Lose        ? "lose"
                     : D.Drop      ? "drop"
                     : D.Duplicate ? "duplicate"
                     : D.CorruptBit >= 0 ? "corrupt"
                                         : "delay";
  record(formatString("%s seq=%llu: %s",
                      channelPrefix(Src, Dst, Tag).c_str(),
                      static_cast<unsigned long long>(Seq), What));
  return D;
}

double FaultInjector::onWorkerPass(int Island, int Thread, int Step,
                                   int PassIndex) {
  double Stall = Plan.workerStall(Island, Thread, Step, PassIndex);
  if (Stall <= 0.0)
    return 0.0;
  Injected.fetch_add(1, std::memory_order_relaxed);
  record(formatString("stall island=%d thread=%d step=%d pass=%d: %.0fus",
                      Island, Thread, Step, PassIndex, Stall * 1e6));
  return Stall;
}

bool FaultInjector::onBarrierCrossing(uint64_t Site, int Thread,
                                      uint64_t Crossing) {
  if (!Plan.spuriousWake(Site, Thread, Crossing))
    return false;
  Injected.fetch_add(1, std::memory_order_relaxed);
  record(formatString("wake barrier=%llu thread=%d crossing=%llu",
                      static_cast<unsigned long long>(Site), Thread,
                      static_cast<unsigned long long>(Crossing)));
  return true;
}

FaultStats FaultInjector::stats() const {
  FaultStats S;
  S.Injected = Injected.load(std::memory_order_relaxed);
  S.Retries = Retries.load(std::memory_order_relaxed);
  S.Timeouts = Timeouts.load(std::memory_order_relaxed);
  S.Recovered = Recovered.load(std::memory_order_relaxed);
  return S;
}

std::vector<std::string> FaultInjector::trace() const {
  std::lock_guard<std::mutex> Lock(TraceMutex);
  return Trace;
}

std::vector<std::string> FaultInjector::traceForChannel(int Src, int Dst,
                                                        int Tag) const {
  std::string Prefix = channelPrefix(Src, Dst, Tag) + " ";
  std::vector<std::string> Out;
  std::lock_guard<std::mutex> Lock(TraceMutex);
  for (const std::string &Entry : Trace)
    if (Entry.compare(0, Prefix.size(), Prefix) == 0)
      Out.push_back(Entry);
  return Out;
}

void FaultInjector::record(std::string Entry) {
  std::lock_guard<std::mutex> Lock(TraceMutex);
  if (Trace.size() < TraceCap)
    Trace.push_back(std::move(Entry));
}
