//===- fault/FaultPlan.cpp - Seeded deterministic fault plan --------------===//

#include "fault/FaultPlan.h"

#include "support/Format.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

using namespace icores;

namespace {

/// Mixes one site coordinate into a running hash. SplitMix64's finalizer
/// scrambles each step, so nearby sites (seq, seq+1) land far apart.
uint64_t mix(uint64_t H, uint64_t V) {
  SplitMix64 Rng(H ^ (V + 0x9e3779b97f4a7c15ULL));
  return Rng.next();
}

/// Maps a hash to a uniform double in [0, 1).
double unit(uint64_t H) {
  return static_cast<double>(H >> 11) * 0x1.0p-53;
}

/// Per-fault-class salts keep the decision streams independent: a site
/// that drops under one rate must not force a correlated duplicate.
enum : uint64_t {
  SaltDrop = 0xd509,
  SaltDelay = 0xde1a,
  SaltDuplicate = 0xd0b1,
  SaltCorrupt = 0xc0bb,
  SaltLose = 0x10fe,
  SaltStall = 0x57a1,
  SaltWake = 0x3a4e,
  SaltMagnitude = 0x3a61, ///< Secondary stream for delay/stall lengths.
};

uint64_t messageSite(uint64_t Seed, uint64_t Salt, int Src, int Dst,
                     int Tag, uint64_t Seq) {
  uint64_t H = mix(Seed, Salt);
  H = mix(H, static_cast<uint64_t>(Src));
  H = mix(H, static_cast<uint64_t>(Dst));
  H = mix(H, static_cast<uint64_t>(Tag));
  return mix(H, Seq);
}

} // namespace

bool FaultPlan::active() const {
  return DropRate > 0 || DelayRate > 0 || DuplicateRate > 0 ||
         CorruptRate > 0 || LoseRate > 0 || StallRate > 0 || WakeRate > 0;
}

MessageFaultDecision FaultPlan::messageFaults(int Src, int Dst, int Tag,
                                              uint64_t Seq,
                                              size_t CountDoubles) const {
  MessageFaultDecision D;
  // Fixed precedence: an unrecoverable loss preempts everything, and the
  // remaining classes are mutually exclusive per message so each fault's
  // detection path is exercised in isolation.
  if (LoseRate > 0 &&
      unit(messageSite(Seed, SaltLose, Src, Dst, Tag, Seq)) < LoseRate) {
    D.Lose = true;
    return D;
  }
  if (DropRate > 0 &&
      unit(messageSite(Seed, SaltDrop, Src, Dst, Tag, Seq)) < DropRate) {
    D.Drop = true;
    return D;
  }
  if (CorruptRate > 0 && CountDoubles > 0 &&
      unit(messageSite(Seed, SaltCorrupt, Src, Dst, Tag, Seq)) <
          CorruptRate) {
    uint64_t H = messageSite(Seed, SaltCorrupt ^ SaltMagnitude, Src, Dst,
                             Tag, Seq);
    D.CorruptBit = static_cast<int>(H % (CountDoubles * 64));
    return D;
  }
  if (DuplicateRate > 0 &&
      unit(messageSite(Seed, SaltDuplicate, Src, Dst, Tag, Seq)) <
          DuplicateRate) {
    D.Duplicate = true;
    return D;
  }
  if (DelayRate > 0 &&
      unit(messageSite(Seed, SaltDelay, Src, Dst, Tag, Seq)) < DelayRate) {
    uint64_t H =
        messageSite(Seed, SaltDelay ^ SaltMagnitude, Src, Dst, Tag, Seq);
    D.DelaySeconds = unit(H) * MaxDelaySeconds;
  }
  return D;
}

double FaultPlan::workerStall(int Island, int Thread, int Step,
                              int PassIndex) const {
  if (StallRate <= 0)
    return 0.0;
  uint64_t H = mix(Seed, SaltStall);
  H = mix(H, static_cast<uint64_t>(Island));
  H = mix(H, static_cast<uint64_t>(Thread));
  H = mix(H, static_cast<uint64_t>(Step));
  H = mix(H, static_cast<uint64_t>(PassIndex));
  if (unit(H) >= StallRate)
    return 0.0;
  return unit(mix(H, SaltMagnitude)) * MaxStallSeconds;
}

bool FaultPlan::spuriousWake(uint64_t Site, int Thread,
                             uint64_t Crossing) const {
  if (WakeRate <= 0)
    return false;
  uint64_t H = mix(Seed, SaltWake);
  H = mix(H, Site);
  H = mix(H, static_cast<uint64_t>(Thread));
  H = mix(H, Crossing);
  return unit(H) < WakeRate;
}

bool icores::parseFaultSpec(const std::string &Spec, FaultPlan &Out,
                            std::string &Err) {
  if (Spec.empty()) {
    Err = "empty --chaos spec";
    return false;
  }
  FaultPlan Plan;
  size_t Pos = Spec.find(',');
  std::string SeedPart = Spec.substr(0, Pos);
  char *End = nullptr;
  Plan.Seed = std::strtoull(SeedPart.c_str(), &End, 0);
  if (End == SeedPart.c_str() || *End != '\0') {
    Err = "bad seed '" + SeedPart + "' (want an unsigned integer)";
    return false;
  }
  // Only these keys arm the plan; maxdelay/maxstall merely bound the
  // injected latencies. A spec that sets no rate key falls back to the
  // default mixed plan below — previously any key (even maxstall alone)
  // counted as "a rate was given", leaving every rate at zero, so the run
  // reported chaos enabled while injecting nothing.
  bool AnyRate = false;
  std::vector<std::string> Seen;
  while (Pos != std::string::npos) {
    size_t Begin = Pos + 1;
    Pos = Spec.find(',', Begin);
    std::string Field = Spec.substr(
        Begin, Pos == std::string::npos ? std::string::npos : Pos - Begin);
    size_t Eq = Field.find('=');
    if (Eq == std::string::npos) {
      Err = "bad chaos field '" + Field + "' (want key=value)";
      return false;
    }
    std::string Key = Field.substr(0, Eq);
    std::string ValStr = Field.substr(Eq + 1);
    char *VEnd = nullptr;
    double Val = std::strtod(ValStr.c_str(), &VEnd);
    if (VEnd == ValStr.c_str() || *VEnd != '\0' || Val < 0.0) {
      Err = "bad value for chaos field '" + Key + "'";
      return false;
    }
    bool IsRate = true;
    if (Key == "drop")
      Plan.DropRate = Val;
    else if (Key == "delay")
      Plan.DelayRate = Val;
    else if (Key == "dup")
      Plan.DuplicateRate = Val;
    else if (Key == "corrupt")
      Plan.CorruptRate = Val;
    else if (Key == "lose")
      Plan.LoseRate = Val;
    else if (Key == "stall")
      Plan.StallRate = Val;
    else if (Key == "wake")
      Plan.WakeRate = Val;
    else if (Key == "maxdelay") {
      Plan.MaxDelaySeconds = Val;
      IsRate = false;
    } else if (Key == "maxstall") {
      Plan.MaxStallSeconds = Val;
      IsRate = false;
    } else {
      Err = "unknown chaos field '" + Key +
            "' (known: drop, delay, dup, corrupt, lose, stall, wake, "
            "maxdelay, maxstall)";
      return false;
    }
    if (std::find(Seen.begin(), Seen.end(), Key) != Seen.end()) {
      // Last-wins would silently disarm an earlier rate (e.g.
      // "1,drop=0.5,drop=0"); make conflicting intent an error instead.
      Err = "duplicate chaos field '" + Key + "'";
      return false;
    }
    Seen.push_back(Key);
    if (IsRate && Val > 1.0) {
      Err = "chaos rate '" + Key + "' outside [0, 1]";
      return false;
    }
    AnyRate = AnyRate || IsRate;
  }
  if (!AnyRate) {
    // A bare seed (possibly with maxdelay/maxstall bounds) arms a
    // moderate mixed plan of every *recoverable* fault class, so
    // `--chaos=SEED` alone is a meaningful smoke test.
    Plan.DropRate = 0.05;
    Plan.DelayRate = 0.05;
    Plan.DuplicateRate = 0.05;
    Plan.CorruptRate = 0.05;
    Plan.StallRate = 0.05;
    Plan.WakeRate = 0.05;
  }
  Out = Plan;
  return true;
}

std::string icores::faultPlanSummary(const FaultPlan &Plan) {
  return formatString(
      "seed=%llu drop=%.3g delay=%.3g dup=%.3g corrupt=%.3g lose=%.3g "
      "stall=%.3g wake=%.3g",
      static_cast<unsigned long long>(Plan.Seed), Plan.DropRate,
      Plan.DelayRate, Plan.DuplicateRate, Plan.CorruptRate, Plan.LoseRate,
      Plan.StallRate, Plan.WakeRate);
}
