//===- fault/FaultPlan.h - Seeded deterministic fault plan ------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FaultPlan is the *pure* half of the chaos subsystem: a single uint64
/// seed plus per-fault-class rates, from which every injection decision is
/// derived as a pure hash of (seed, injection site). A site is the stable
/// coordinate of the hook point — (src, dst, tag, seq) for a message,
/// (island, thread, step, pass) for a worker stall, (barrier, thread,
/// crossing) for a spurious wakeup — so the same seed replays the
/// identical fault *set* no matter how the OS interleaves threads. That
/// determinism is what makes the chaos/property harness
/// (tests/fault_injection_test.cpp, tools/chaos_runner.cpp) possible: a
/// failing seed is a complete, replayable reproducer.
///
/// The runtime half (counters, trace, thread safety) lives in
/// fault/FaultInjector.h. See DESIGN.md §10 for the fault model.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_FAULT_FAULTPLAN_H
#define ICORES_FAULT_FAULTPLAN_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace icores {

/// What a plan may do to one RankComm message. At most one of the
/// mutually-destructive classes (lose/drop/corrupt/duplicate/delay) is
/// chosen per message, by fixed precedence, so a fault never masks the
/// detection of another at the same site.
struct MessageFaultDecision {
  bool Lose = false;      ///< Permanently lost: not delivered, not logged.
  bool Drop = false;      ///< Dropped in flight; recoverable by re-request.
  bool Duplicate = false; ///< Delivered twice with the same sequence number.
  int CorruptBit = -1;    ///< Payload bit index to flip, or -1.
  double DelaySeconds = 0.0; ///< Delivery made visible only after this.

  bool any() const {
    return Lose || Drop || Duplicate || CorruptBit >= 0 || DelaySeconds > 0;
  }
};

/// Seeded description of which faults to inject and how often. Rates are
/// probabilities in [0, 1] evaluated independently per site.
struct FaultPlan {
  uint64_t Seed = 0;

  // Message faults (dist/RankComm.h hook points).
  double DropRate = 0.0;      ///< Transient loss; retransmit log recovers.
  double DelayRate = 0.0;     ///< Late delivery within MaxDelaySeconds.
  double DuplicateRate = 0.0; ///< Same message enqueued twice.
  double CorruptRate = 0.0;   ///< One payload bit flipped in flight.
  double LoseRate = 0.0;      ///< Unrecoverable loss (models peer death).

  // Executor faults (exec/ProgramExecutor.h, exec/TeamBarrier.h hooks).
  double StallRate = 0.0; ///< Worker sleeps before a pass.
  double WakeRate = 0.0;  ///< Spurious wakeup forced at a team barrier.

  double MaxDelaySeconds = 2e-3; ///< Upper bound of an injected delay.
  double MaxStallSeconds = 2e-3; ///< Upper bound of an injected stall.

  /// A barrier wait exceeding this is reported as a stalled-team timeout
  /// through ExecStats (detection threshold, not a deadline — the wait
  /// continues and the run still completes bit-exactly).
  double StallTimeoutSeconds = 1e-3;

  /// True if any rate is nonzero (an all-zero plan injects nothing).
  bool active() const;

  /// Decision for message \p Seq of channel (\p Src, \p Dst, \p Tag) with
  /// \p CountDoubles payload doubles. Pure: depends only on the plan and
  /// the arguments.
  MessageFaultDecision messageFaults(int Src, int Dst, int Tag,
                                     uint64_t Seq,
                                     size_t CountDoubles) const;

  /// Seconds worker (\p Island, \p Thread) must stall before pass
  /// \p PassIndex of step \p Step; 0 means no stall.
  double workerStall(int Island, int Thread, int Step, int PassIndex) const;

  /// Whether to force a spurious wakeup when \p Thread makes its
  /// \p Crossing-th crossing of barrier \p Site.
  bool spuriousWake(uint64_t Site, int Thread, uint64_t Crossing) const;
};

/// Parses the `--chaos=` spec: `<seed>[,drop=p][,delay=p][,dup=p]
/// [,corrupt=p][,lose=p][,stall=p][,wake=p]`. A bare seed arms a default
/// mixed plan (moderate rates of every recoverable fault class). Returns
/// false and fills \p Err on malformed input.
bool parseFaultSpec(const std::string &Spec, FaultPlan &Out,
                    std::string &Err);

/// Renders the plan compactly (for logs and error messages).
std::string faultPlanSummary(const FaultPlan &Plan);

} // namespace icores

#endif // ICORES_FAULT_FAULTPLAN_H
