//===- fault/Watchdog.h - Deadlock watchdog for chaos runs ------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scoped watchdog for chaos tests and tools/chaos_runner: arm it
/// before a run that must not hang; if the scope is still alive when the
/// budget expires, the watchdog prints what it was guarding and aborts
/// the process. An abort is the *correct* failure mode here — a deadlock
/// cannot be unwound, and a test harness that silently waits forever is
/// worse than one that dies loudly with a named culprit.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_FAULT_WATCHDOG_H
#define ICORES_FAULT_WATCHDOG_H

#include <string>

namespace icores {

/// Aborts the process if not destroyed within the budget.
class Watchdog {
public:
  Watchdog(double BudgetSeconds, std::string What);
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

private:
  struct State;
  State *S;
};

} // namespace icores

#endif // ICORES_FAULT_WATCHDOG_H
