//===- core/PlacementMap.cpp - Page-placement map and remote bytes --------===//

#include "core/PlacementMap.h"

#include "support/Error.h"

#include <algorithm>

using namespace icores;

namespace {

/// Sentinel half-extent for the outward extension of boundary parts. Any
/// region box the estimator or the executor ever intersects a segment with
/// is bounded by the domain plus a few halo cells, so "effectively
/// unbounded" just needs to dominate those; keeping it modest also keeps
/// Box3's int extents far from overflow.
constexpr int SentinelSpan = 1 << 20;

} // namespace

/// Extends \p Part outward on every face it shares with \p Target, so the
/// adjacent halo slabs (and any wider temporal cone margin) belong to the
/// nearest island. Interior faces are left alone, which makes the extended
/// parts pairwise disjoint and a tiling of all of space whenever the parts
/// tile the target.
Box3 icores::extendPartToHalo(const Box3 &Part, const Box3 &Target) {
  if (Part.empty())
    return Part;
  Box3 R = Part;
  for (int D = 0; D != 3; ++D) {
    if (Part.Lo[D] == Target.Lo[D])
      R.Lo[D] = Target.Lo[D] - SentinelSpan;
    if (Part.Hi[D] == Target.Hi[D])
      R.Hi[D] = Target.Hi[D] + SentinelSpan;
  }
  return R;
}

int64_t PlacementMap::localPoints(const Box3 &Region, int Socket) const {
  int64_t Points = 0;
  for (const PlacementSegment &Seg : Segments)
    if (Seg.HomeSocket == Socket)
      Points += Region.intersect(Seg.Extended).numPoints();
  return Points;
}

Box3 PlacementMap::arenaSegment(int Island, const Box3 &AllocBox) const {
  ICORES_CHECK(Island >= 0 &&
                   Island < static_cast<int>(Segments.size()),
               "arenaSegment island out of range");
  return Segments[static_cast<size_t>(Island)].Extended.intersect(AllocBox);
}

PlacementMap icores::buildPlacementMap(const ExecutionPlan &Plan,
                                       PlacementPolicy Policy) {
  ICORES_CHECK(!Plan.Islands.empty(), "plan has no islands");
  PlacementMap Map;
  Map.Policy = Policy;
  Map.HomeNode = Plan.Islands.front().HomeSocket;
  for (const IslandPlan &Island : Plan.Islands) {
    Map.Segments.push_back({Island.Index, Island.HomeSocket,
                            extendPartToHalo(Island.Part, Plan.GlobalTarget)});
    for (int S = 0; S != Island.NumSockets; ++S)
      Map.ActiveSockets.push_back(Island.HomeSocket + S);
  }
  std::sort(Map.ActiveSockets.begin(), Map.ActiveSockets.end());
  Map.ActiveSockets.erase(
      std::unique(Map.ActiveSockets.begin(), Map.ActiveSockets.end()),
      Map.ActiveSockets.end());
  return Map;
}

IslandRemoteTraffic icores::estimateIslandRemoteEpochTraffic(
    const IslandPlan &Island, const ExecutionPlan &Plan,
    const StencilProgram &Program, const PlacementMap &Map) {
  const int Depth = std::max(1, Plan.TemporalDepth);
  IslandRemoteTraffic Traffic;

  // Classify one shared-array box against the map and accumulate its
  // remote slice. Mirrors the residency rules in the file comment.
  auto charge = [&](ArrayId Id, const Box3 &Box, bool IsWrite) {
    if (Box.empty())
      return;
    const int64_t ElementBytes = Program.array(Id).ElementBytes;
    const int64_t TotalPoints = Box.numPoints();
    int64_t RemoteBytes = 0;
    switch (Map.Policy) {
    case PlacementPolicy::FirstTouch:
      for (const PlacementSegment &Seg : Map.Segments) {
        if (Seg.HomeSocket == Island.HomeSocket)
          continue;
        int64_t Bytes =
            Box.intersect(Seg.Extended).numPoints() * ElementBytes;
        if (Bytes == 0)
          continue;
        RemoteBytes += Bytes;
        Traffic.BytesBySocket[Seg.HomeSocket] += Bytes;
      }
      break;
    case PlacementPolicy::None:
      // Serial init homes everything on the home node; islands living
      // elsewhere stream the whole box over the interconnect.
      if (Island.HomeSocket != Map.HomeNode) {
        RemoteBytes = TotalPoints * ElementBytes;
        Traffic.BytesBySocket[Map.HomeNode] += RemoteBytes;
      }
      break;
    case PlacementPolicy::Interleave: {
      const int64_t Sockets =
          static_cast<int64_t>(Map.ActiveSockets.size());
      if (Sockets <= 1)
        break;
      // A 1/S page slice of any region is local; the rest is spread
      // evenly across the other sockets.
      int64_t RemotePoints = TotalPoints - TotalPoints / Sockets;
      RemoteBytes = RemotePoints * ElementBytes;
      int64_t Share = RemoteBytes / (Sockets - 1);
      int64_t Rest = RemoteBytes - Share * (Sockets - 1);
      for (int S : Map.ActiveSockets) {
        if (S == Island.HomeSocket)
          continue;
        Traffic.BytesBySocket[S] += Share + Rest;
        Rest = 0;
      }
      break;
    }
    }
    if (RemoteBytes == 0)
      return;
    Traffic.BytesByArray[Id] += RemoteBytes;
    (IsWrite ? Traffic.WriteBytes : Traffic.ReadBytes) += RemoteBytes;
  };

  // Replicate the executor's per-epoch footprint boxes: read unions and
  // write unions from the actual pass regions, feedback-paired into the
  // import-buffer boxes for temporal plans.
  std::vector<Box3> ReadUnion(Program.numArrays());
  std::vector<Box3> WriteUnion(Program.numArrays());
  for (const BlockTask &Block : Island.Blocks)
    for (const StagePass &Pass : Block.Passes) {
      const StageDef &Stage = Program.stage(Pass.Stage);
      for (const StageInput &In : Stage.Inputs)
        if (Program.array(In.Array).Role == ArrayRole::StepInput) {
          Box3 &Un = ReadUnion[static_cast<size_t>(In.Array)];
          Un = Un.unionWith(In.readRegion(Pass.Region));
        }
      for (ArrayId Out : Stage.Outputs)
        if (Program.array(Out).Role == ArrayRole::StepOutput) {
          Box3 &Un = WriteUnion[static_cast<size_t>(Out)];
          Un = Un.unionWith(Pass.Region);
        }
    }

  if (Depth > 1) {
    std::vector<Box3> BufBox(Program.numArrays());
    for (ArrayId In : Program.stepInputs())
      BufBox[static_cast<size_t>(In)] = ReadUnion[static_cast<size_t>(In)];
    for (ArrayId Out : Program.stepOutputs())
      BufBox[static_cast<size_t>(Out)] =
          WriteUnion[static_cast<size_t>(Out)];
    for (const FeedbackPair &FB : Program.feedbacks()) {
      Box3 Paired = BufBox[static_cast<size_t>(FB.Target)].unionWith(
          BufBox[static_cast<size_t>(FB.Source)]);
      BufBox[static_cast<size_t>(FB.Target)] = Paired;
      BufBox[static_cast<size_t>(FB.Source)] = Paired;
    }
    for (ArrayId In : Program.stepInputs())
      charge(In, BufBox[static_cast<size_t>(In)], /*IsWrite=*/false);
  } else {
    for (ArrayId In : Program.stepInputs())
      charge(In, ReadUnion[static_cast<size_t>(In)], /*IsWrite=*/false);
  }
  for (ArrayId Out : Program.stepOutputs()) {
    Box3 FinalOut;
    for (const BlockTask &Block : Island.Blocks) {
      if (Block.StepInEpoch != Depth - 1)
        continue;
      for (const StagePass &Pass : Block.Passes)
        if (Pass.Stage == Program.producerOf(Out))
          FinalOut = FinalOut.unionWith(Pass.Region);
    }
    charge(Out, FinalOut, /*IsWrite=*/true);
  }
  return Traffic;
}

int64_t icores::estimateRemoteBytesPerStep(const ExecutionPlan &Plan,
                                           const StencilProgram &Program,
                                           PlacementPolicy Policy) {
  PlacementMap Map = buildPlacementMap(Plan, Policy);
  int64_t PerEpoch = 0;
  for (const IslandPlan &Island : Plan.Islands)
    PerEpoch +=
        estimateIslandRemoteEpochTraffic(Island, Plan, Program, Map).total();
  return PerEpoch / std::max(1, Plan.TemporalDepth);
}
