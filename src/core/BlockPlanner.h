//===- core/BlockPlanner.h - (3+1)D block construction ----------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the ordered (3+1)D block tasks for one island part. Blocks are
/// slabs along the first dimension, sized so the intermediate working set
/// fits the team's cache budget. Within an island the planner uses a
/// skewed high-water-mark schedule: stage s of block b runs exactly from
/// where block b-1 left that stage to the block's target end plus the
/// stage's forward dependence margin. Consecutive blocks therefore share
/// intermediate planes through (cache) memory — the paper's scenario 1 —
/// and no point of any stage is ever computed twice *within* an island.
/// Redundant computation (scenario 2) happens only across island
/// boundaries, where the island's stage regions include the full
/// dependence cone of its part.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_BLOCKPLANNER_H
#define ICORES_CORE_BLOCKPLANNER_H

#include "core/ExecutionPlan.h"
#include "grid/Box3.h"
#include "stencil/StencilIR.h"

#include <cstdint>
#include <vector>

namespace icores {

/// Slab thickness (cells along dimension 0) whose full working set —
/// every program array over the slab cross-section — fits in
/// \p CacheBudgetBytes. At least 1.
int blockThickness(const StencilProgram &Program, const Box3 &Part,
                   int64_t CacheBudgetBytes);

/// Builds the block tasks for \p Part. Stage regions are the island's
/// dependence cones clipped to the global stage regions of
/// \p GlobalTarget. \p Thickness is the target slab thickness along
/// dimension 0 (use blockThickness()).
std::vector<BlockTask> planIslandBlocks(const StencilProgram &Program,
                                        const Box3 &Part,
                                        const Box3 &GlobalTarget,
                                        int Thickness);

/// A single block covering the entire part: the Original strategy's
/// stage-major sweep expressed in plan form.
std::vector<BlockTask> planSingleBlock(const StencilProgram &Program,
                                       const Box3 &Part,
                                       const Box3 &GlobalTarget);

} // namespace icores

#endif // ICORES_CORE_BLOCKPLANNER_H
