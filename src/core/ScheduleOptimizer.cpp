//===- core/ScheduleOptimizer.cpp - Barrier elision post-pass -------------===//

#include "core/ScheduleOptimizer.h"

#include "exec/ScheduleCheck.h"

#include <algorithm>

using namespace icores;

ScheduleOptimizerReport icores::optimizeBarriers(const StencilProgram &Program,
                                                 ExecutionPlan &Plan) {
  ScheduleOptimizerReport Report;
  for (IslandPlan &Island : Plan.Islands) {
    const int N = std::max(1, Island.NumThreads);
    IslandElision E;
    E.Island = Island.Index;

    // Barrier bits are recomputed from scratch (input bits are ignored),
    // which makes the pass idempotent and repairs over-aggressive
    // hand-elided plans. An empty pass's barrier is always redundant: the
    // pass runs no kernel, so any ordering its barrier provided is either
    // provided by the decision on the previous live pass or not needed.
    std::vector<std::pair<StagePass *, int>> Live; // pass, step-in-epoch
    for (BlockTask &Block : Island.Blocks)
      for (StagePass &Pass : Block.Passes) {
        if (Pass.Region.empty()) {
          Pass.BarrierAfter = false;
          E.Passes += 1;
          E.Elided += 1;
          continue;
        }
        Live.push_back({&Pass, Block.StepInEpoch});
      }

    // Grow barrier-free epochs greedily: the barrier after pass I is
    // elided when pass I+1 has no cross-thread conflict with any pass of
    // the epoch being grown. Each pass is checked against every earlier
    // epoch member when it joins, so the final epochs are pairwise
    // conflict-free — exactly the property checkScheduleRaces() verifies.
    // Elision never crosses a fused-step boundary (TemporalDepth > 1
    // plans): the executor rebinds the feedback buffers there under a
    // structural barrier, so each fused step's final pass keeps its
    // barrier, just like the island's final pass keeps the step-end
    // rendezvous that makes island lockstep independent of the executor's
    // global step barrier.
    size_t EpochBegin = 0;
    for (size_t I = 0; I != Live.size(); ++I) {
      E.Passes += 1;
      if (I + 1 == Live.size() || Live[I + 1].second != Live[I].second) {
        Live[I].first->BarrierAfter = true;
        EpochBegin = I + 1;
        continue;
      }
      // A pass producing a reduced array must keep its barrier in a
      // multi-thread team: the executor folds the whole pass region on
      // thread 0 right after the pass, reading every teammate's
      // sub-region — an all-threads dependence no pass-pair conflict
      // query sees (the reduced array may have no in-step reader at
      // all). ScheduleCheck enforces the same rule as its safety gate.
      if (N > 1 && Program.stageWritesReduced(Live[I].first->Stage)) {
        Live[I].first->BarrierAfter = true;
        EpochBegin = I + 1;
        continue;
      }
      ScheduledPass Next{Live[I + 1].first->Stage, Live[I + 1].first->Region,
                         true, Live[I + 1].second};
      bool Conflict = false;
      for (size_t A = EpochBegin; A <= I && !Conflict; ++A) {
        ScheduledPass Prev{Live[A].first->Stage, Live[A].first->Region,
                           false, Live[A].second};
        PassConflict C;
        Conflict = findPassPairConflict(Program, Prev, Next, N, C);
      }
      Live[I].first->BarrierAfter = Conflict;
      if (Conflict) {
        EpochBegin = I + 1;
      } else {
        E.Elided += 1;
      }
    }

    Report.TotalPasses += E.Passes;
    Report.ElidedBarriers += E.Elided;
    Report.Islands.push_back(E);
  }
  return Report;
}
