//===- core/PlanBuilder.cpp - Strategy plan construction ------------------===//

#include "core/PlanBuilder.h"

#include "core/BalanceModel.h"
#include "core/BlockPlanner.h"
#include "machine/MachineModel.h"
#include "stencil/HaloAnalysis.h"
#include "support/Error.h"

using namespace icores;

namespace {

/// Cache budget available to a team spanning \p Sockets sockets.
int64_t teamCacheBudget(const MachineModel &Machine, int Sockets) {
  return static_cast<int64_t>(static_cast<double>(Machine.LlcBytesPerSocket) *
                              Sockets * Machine.CacheBudgetFraction);
}

/// Emits one island's blocks for every fused step of the epoch: step t's
/// blocks cover the island's t-th widened target clipped against the t-th
/// global cone, stamped with StepInEpoch = t. \p Thickness <= 0 selects
/// the Original strategy's single full-region block per step.
std::vector<BlockTask> planTemporalBlocks(const StencilProgram &Program,
                                          const std::vector<Box3> &StepTargets,
                                          const std::vector<Box3> &GlobalSteps,
                                          int Thickness) {
  std::vector<BlockTask> Blocks;
  for (size_t T = 0; T != StepTargets.size(); ++T) {
    std::vector<BlockTask> Step =
        Thickness > 0
            ? planIslandBlocks(Program, StepTargets[T], GlobalSteps[T],
                               Thickness)
            : planSingleBlock(Program, StepTargets[T], GlobalSteps[T]);
    for (BlockTask &Block : Step) {
      Block.StepInEpoch = static_cast<int>(T);
      Blocks.push_back(std::move(Block));
    }
  }
  return Blocks;
}

} // namespace

ExecutionPlan icores::buildPlan(const StencilProgram &Program,
                                const Box3 &GlobalTarget,
                                const MachineModel &Machine,
                                const PlanConfig &Config) {
  ICORES_CHECK(Config.Sockets >= 1 && Config.Sockets <= Machine.NumSockets,
               "socket count exceeds the machine");
  ICORES_CHECK(Config.TemporalDepth >= 1,
               "temporal depth must be at least 1");

  ExecutionPlan Plan;
  Plan.Strat = Config.Strat;
  Plan.Placement = Config.Placement;
  Plan.Balance = Config.Balance;
  Plan.GlobalTarget = GlobalTarget;
  Plan.TemporalDepth = Config.TemporalDepth;

  // Per-step global cones; for TemporalDepth == 1 this is {GlobalTarget}.
  std::vector<Box3> GlobalSteps =
      temporalStepTargets(Program, GlobalTarget, Config.TemporalDepth);

  if (Config.Strat == Strategy::Original ||
      Config.Strat == Strategy::Block31D) {
    // One team: all participating sockets cooperate on every pass.
    IslandPlan Island;
    Island.Index = 0;
    Island.HomeSocket = 0;
    Island.NumSockets = Config.Sockets;
    Island.NumThreads = Config.Sockets * Machine.CoresPerSocket;
    Island.Part = GlobalTarget;
    int Thickness =
        Config.Strat == Strategy::Original
            ? 0
            : blockThickness(Program, GlobalTarget,
                             teamCacheBudget(Machine, Config.Sockets));
    Island.Blocks =
        planTemporalBlocks(Program, GlobalSteps, GlobalSteps, Thickness);
    Plan.Islands.push_back(std::move(Island));
    return Plan;
  }

  // Islands-of-cores: IslandsPerSocket islands per socket (one by
  // default); neighbor parts land on adjacent islands, and thus on
  // adjacent sockets (affinity-aware placement along NUMAlink).
  ICORES_CHECK(Config.IslandsPerSocket >= 1 &&
                   Machine.CoresPerSocket % Config.IslandsPerSocket == 0,
               "islands per socket must divide the cores per socket");
  int NumIslands = Config.Sockets * Config.IslandsPerSocket;
  int ThreadsPerIsland = Machine.CoresPerSocket / Config.IslandsPerSocket;
  std::vector<Box3> Parts;
  if (Config.GridPartsI > 0 && Config.GridPartsJ > 0) {
    ICORES_CHECK(Config.GridPartsI * Config.GridPartsJ == NumIslands,
                 "2D island grid must use exactly the configured islands");
    // Cost balancing sizes 1D cut planes; 2D grids keep uniform cuts.
    Parts = partition2D(GlobalTarget, Config.GridPartsI, Config.GridPartsJ);
  } else if (Config.Balance == BalancePolicy::Cost) {
    // Size the slabs so predicted per-island seconds are equal: serial
    // init homes pages on island 0's socket, and the interleave slice is
    // over the sockets this plan activates.
    std::vector<bool> OnHome;
    OnHome.reserve(static_cast<size_t>(NumIslands));
    for (int P = 0; P != NumIslands; ++P)
      OnHome.push_back(P / Config.IslandsPerSocket == 0);
    Parts = partitionCostBalanced(
        Program, GlobalTarget, NumIslands, partitionDim(Config.Variant),
        Config.TemporalDepth, ThreadsPerIsland, Machine, Config.Placement,
        Config.Sockets, OnHome);
  } else {
    Parts =
        partition1D(GlobalTarget, NumIslands, partitionDim(Config.Variant));
  }

  int64_t IslandBudget =
      teamCacheBudget(Machine, 1) / Config.IslandsPerSocket;
  for (int P = 0; P != NumIslands; ++P) {
    IslandPlan Island;
    Island.Index = P;
    Island.HomeSocket = P / Config.IslandsPerSocket;
    Island.NumSockets = 1;
    Island.NumThreads = ThreadsPerIsland;
    Island.Part = Parts[static_cast<size_t>(P)];
    int Thickness = blockThickness(Program, Island.Part, IslandBudget);
    Island.Blocks = planTemporalBlocks(
        Program,
        temporalStepTargets(Program, Island.Part, Config.TemporalDepth),
        GlobalSteps, Thickness);
    Plan.Islands.push_back(std::move(Island));
  }
  return Plan;
}
