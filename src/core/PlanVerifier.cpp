//===- core/PlanVerifier.cpp - Static plan correctness checks -------------===//

#include "core/PlanVerifier.h"

#include "stencil/HaloAnalysis.h"
#include "support/Format.h"

using namespace icores;

namespace {

/// Fails the verification with a formatted message (keeps the first).
void fail(PlanVerification &V, std::string Message) {
  if (!V.Ok)
    return;
  V.Ok = false;
  V.FirstError = std::move(Message);
}

} // namespace

PlanVerification icores::verifyPlan(const ExecutionPlan &Plan,
                                    const StencilProgram &Program) {
  PlanVerification V;
  if (Plan.Islands.empty()) {
    fail(V, "plan has no islands");
    return V;
  }

  RegionRequirements Global =
      computeRequirements(Program, Plan.GlobalTarget);

  // --- Per-island dataflow order and clipping -------------------------
  for (const IslandPlan &Island : Plan.Islands) {
    std::vector<Box3> Done(Program.numStages());
    for (size_t B = 0; B != Island.Blocks.size(); ++B) {
      const BlockTask &Block = Island.Blocks[B];
      int LastStage = -1;
      for (const StagePass &Pass : Block.Passes) {
        if (Pass.Region.empty())
          continue;
        if (Pass.Stage <= LastStage) {
          fail(V, formatString(
                      "island %d block %zu: passes not in stage order",
                      Island.Index, B));
          return V;
        }
        LastStage = Pass.Stage;

        const Box3 &GlobalRegion =
            Global.StageRegion[static_cast<size_t>(Pass.Stage)];
        if (!GlobalRegion.containsBox(Pass.Region)) {
          fail(V, formatString("island %d: stage '%s' pass %s exceeds the "
                               "global region %s",
                               Island.Index,
                               Program.stage(Pass.Stage).Name.c_str(),
                               Pass.Region.str().c_str(),
                               GlobalRegion.str().c_str()));
          return V;
        }

        for (const StageInput &In : Program.stage(Pass.Stage).Inputs) {
          StageId Producer = Program.producerOf(In.Array);
          if (Producer == NoStage)
            continue; // Step input: valid everywhere after halo refresh.
          Box3 Needed = In.readRegion(Pass.Region);
          if (!Done[static_cast<size_t>(Producer)].containsBox(Needed)) {
            fail(V,
                 formatString(
                     "island %d: stage '%s' reads %s of '%s' before it is "
                     "computed (island-local coverage %s)",
                     Island.Index, Program.stage(Pass.Stage).Name.c_str(),
                     Needed.str().c_str(),
                     Program.array(In.Array).Name.c_str(),
                     Done[static_cast<size_t>(Producer)].str().c_str()));
            return V;
          }
        }
        Box3 &D = Done[static_cast<size_t>(Pass.Stage)];
        // The union of consecutive slabs must stay a box for containment
        // reasoning to be exact; the HWM planner guarantees this.
        D = D.unionWith(Pass.Region);
      }
    }
  }

  // --- Output coverage and disjointness -------------------------------
  for (ArrayId Out : Program.stepOutputs()) {
    StageId Producer = Program.producerOf(Out);
    int64_t CoveredPoints = 0;
    Box3 CoveredBox;
    for (const IslandPlan &Island : Plan.Islands) {
      Box3 IslandOut;
      for (const BlockTask &Block : Island.Blocks)
        for (const StagePass &Pass : Block.Passes)
          if (Pass.Stage == Producer)
            IslandOut = IslandOut.unionWith(Pass.Region);
      // Disjointness across islands (pairwise against what was covered).
      for (const IslandPlan &Other : Plan.Islands) {
        if (Other.Index >= Island.Index)
          break;
        // Recompute the other island's output union.
        Box3 OtherOut;
        for (const BlockTask &Block : Other.Blocks)
          for (const StagePass &Pass : Block.Passes)
            if (Pass.Stage == Producer)
              OtherOut = OtherOut.unionWith(Pass.Region);
        if (!IslandOut.intersect(OtherOut).empty()) {
          fail(V, formatString("islands %d and %d both write output '%s'",
                               Island.Index, Other.Index,
                               Program.array(Out).Name.c_str()));
          return V;
        }
      }
      CoveredPoints += IslandOut.numPoints();
      CoveredBox = CoveredBox.unionWith(IslandOut);
    }
    if (CoveredBox != Plan.GlobalTarget ||
        CoveredPoints != Plan.GlobalTarget.numPoints()) {
      fail(V, formatString("output '%s' covers %lld points of %lld",
                           Program.array(Out).Name.c_str(),
                           static_cast<long long>(CoveredPoints),
                           static_cast<long long>(
                               Plan.GlobalTarget.numPoints())));
      return V;
    }
  }
  return V;
}
