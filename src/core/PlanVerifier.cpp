//===- core/PlanVerifier.cpp - Static plan correctness checks -------------===//

#include "core/PlanVerifier.h"

#include "core/BalanceModel.h"
#include "stencil/HaloAnalysis.h"
#include "support/Diagnostics.h"
#include "support/Format.h"

using namespace icores;

bool icores::verifyPlan(const ExecutionPlan &Plan,
                        const StencilProgram &Program,
                        DiagnosticEngine &Diags) {
  size_t ErrorsBefore = Diags.numErrors();
  if (Plan.Islands.empty()) {
    Diags.report(Severity::Error, "plan.no-islands", "plan has no islands");
    return false;
  }

  if (Plan.TemporalDepth < 1) {
    Diags.report(Severity::Error, "plan.temporal.invalid-depth",
                 formatString("temporal depth %d is not positive",
                              Plan.TemporalDepth));
    return false;
  }

  // Per-fused-step global cones: the clipping bound for step t's passes.
  // For TemporalDepth == 1 this is the classic single global cone.
  std::vector<RegionRequirements> GlobalStep;
  for (const Box3 &G : temporalStepTargets(Program, Plan.GlobalTarget,
                                           Plan.TemporalDepth))
    GlobalStep.push_back(computeRequirements(Program, G));

  // --- Partition geometry ---------------------------------------------
  // Island parts must tile the global target exactly — no gaps, no
  // overlaps — whichever balance policy placed the cuts, and every part
  // must keep at least MinIslandPlanes planes per dimension (a thinner
  // island could not own a single output plane).
  {
    int64_t PartPoints = 0;
    for (const IslandPlan &Island : Plan.Islands) {
      if (!Plan.GlobalTarget.containsBox(Island.Part))
        Diags
            .report(Severity::Error, "plan.partition.escapes-target",
                    formatString("island %d part %s escapes the global "
                                 "target %s",
                                 Island.Index, Island.Part.str().c_str(),
                                 Plan.GlobalTarget.str().c_str()))
            .note("island", formatString("%d", Island.Index));
      for (int D = 0; D != 3; ++D)
        if (Island.Part.extent(D) < MinIslandPlanes)
          Diags
              .report(Severity::Error, "plan.partition.min-extent",
                      formatString("island %d part %s is thinner than %d "
                                   "plane(s) in dimension %d",
                                   Island.Index, Island.Part.str().c_str(),
                                   MinIslandPlanes, D))
              .note("island", formatString("%d", Island.Index));
      for (const IslandPlan &Other : Plan.Islands) {
        if (Other.Index >= Island.Index)
          break;
        if (!Island.Part.intersect(Other.Part).empty())
          Diags
              .report(Severity::Error, "plan.partition.overlap",
                      formatString("island parts %d and %d overlap",
                                   Other.Index, Island.Index))
              .note("islands",
                    formatString("%d,%d", Other.Index, Island.Index));
      }
      PartPoints += Island.Part.numPoints();
    }
    if (PartPoints != Plan.GlobalTarget.numPoints())
      Diags.report(Severity::Error, "plan.partition.gap",
                   formatString("island parts cover %lld points of %lld",
                                static_cast<long long>(PartPoints),
                                static_cast<long long>(
                                    Plan.GlobalTarget.numPoints())));
  }

  // --- Per-island dataflow order and clipping -------------------------
  for (const IslandPlan &Island : Plan.Islands) {
    std::vector<Box3> Done(Program.numStages());
    int CurStep = 0;
    for (size_t B = 0; B != Island.Blocks.size(); ++B) {
      const BlockTask &Block = Island.Blocks[B];
      if (Block.StepInEpoch < 0 ||
          Block.StepInEpoch >= Plan.TemporalDepth ||
          Block.StepInEpoch < CurStep) {
        Diags
            .report(Severity::Error, "plan.temporal.step-order",
                    formatString("island %d block %zu: step-in-epoch %d "
                                 "out of order or range (depth %d)",
                                 Island.Index, B, Block.StepInEpoch,
                                 Plan.TemporalDepth))
            .note("island", formatString("%d", Island.Index));
        continue;
      }
      if (Block.StepInEpoch > CurStep) {
        // Fused-step boundary: the feedback buffers are swapped and every
        // stage recomputes over the next step's regions from scratch.
        CurStep = Block.StepInEpoch;
        Done.assign(Program.numStages(), Box3());
      }
      const RegionRequirements &Global =
          GlobalStep[static_cast<size_t>(CurStep)];
      int LastStage = -1;
      for (const StagePass &Pass : Block.Passes) {
        if (Pass.Region.empty())
          continue;
        if (Pass.Stage < 0 ||
            static_cast<unsigned>(Pass.Stage) >= Program.numStages()) {
          Diags
              .report(Severity::Error, "plan.pass.invalid-stage",
                      formatString("island %d block %zu: pass references "
                                   "unknown stage %d",
                                   Island.Index, B, Pass.Stage))
              .note("island", formatString("%d", Island.Index));
          continue;
        }
        if (Pass.Stage <= LastStage)
          Diags
              .report(Severity::Error, "plan.pass.out-of-order",
                      formatString(
                          "island %d block %zu: passes not in stage order",
                          Island.Index, B))
              .note("island", formatString("%d", Island.Index))
              .note("stage", Program.stage(Pass.Stage).Name);
        LastStage = Pass.Stage;

        const Box3 &GlobalRegion =
            Global.StageRegion[static_cast<size_t>(Pass.Stage)];
        if (!GlobalRegion.containsBox(Pass.Region))
          Diags
              .report(Severity::Error, "plan.pass.exceeds-global",
                      formatString("island %d: stage '%s' pass %s exceeds "
                                   "the global region %s",
                                   Island.Index,
                                   Program.stage(Pass.Stage).Name.c_str(),
                                   Pass.Region.str().c_str(),
                                   GlobalRegion.str().c_str()))
              .note("island", formatString("%d", Island.Index))
              .note("stage", Program.stage(Pass.Stage).Name);

        for (const StageInput &In : Program.stage(Pass.Stage).Inputs) {
          StageId Producer = Program.producerOf(In.Array);
          if (Producer == NoStage)
            continue; // Step input: valid everywhere after halo refresh.
          Box3 Needed = In.readRegion(Pass.Region);
          if (!Done[static_cast<size_t>(Producer)].containsBox(Needed))
            Diags
                .report(
                    Severity::Error, "plan.pass.read-before-compute",
                    formatString(
                        "island %d: stage '%s' reads %s of '%s' before it is "
                        "computed (island-local coverage %s)",
                        Island.Index, Program.stage(Pass.Stage).Name.c_str(),
                        Needed.str().c_str(),
                        Program.array(In.Array).Name.c_str(),
                        Done[static_cast<size_t>(Producer)].str().c_str()))
                .note("island", formatString("%d", Island.Index))
                .note("stage", Program.stage(Pass.Stage).Name)
                .note("array", Program.array(In.Array).Name);
        }
        Box3 &D = Done[static_cast<size_t>(Pass.Stage)];
        // The union of consecutive slabs must stay a box for containment
        // reasoning to be exact; the HWM planner guarantees this.
        D = D.unionWith(Pass.Region);
      }
    }
  }

  // --- Output coverage and disjointness -------------------------------
  // Only the *final* fused step's output passes write the shared arrays
  // (earlier steps land in island-private feedback buffers), so coverage
  // and disjointness are judged on the final step alone.
  auto finalStepOutputUnion = [&](const IslandPlan &Island,
                                  StageId Producer) {
    Box3 Out;
    for (const BlockTask &Block : Island.Blocks) {
      if (Block.StepInEpoch != Plan.TemporalDepth - 1)
        continue;
      for (const StagePass &Pass : Block.Passes)
        if (Pass.Stage == Producer)
          Out = Out.unionWith(Pass.Region);
    }
    return Out;
  };
  for (ArrayId Out : Program.stepOutputs()) {
    StageId Producer = Program.producerOf(Out);
    int64_t CoveredPoints = 0;
    Box3 CoveredBox;
    for (const IslandPlan &Island : Plan.Islands) {
      Box3 IslandOut = finalStepOutputUnion(Island, Producer);
      // Disjointness across islands (pairwise against what was covered).
      for (const IslandPlan &Other : Plan.Islands) {
        if (Other.Index >= Island.Index)
          break;
        // Recompute the other island's output union.
        Box3 OtherOut = finalStepOutputUnion(Other, Producer);
        if (!IslandOut.intersect(OtherOut).empty())
          Diags
              .report(Severity::Error, "plan.output.islands-overlap",
                      formatString(
                          "islands %d and %d both write output '%s'",
                          Island.Index, Other.Index,
                          Program.array(Out).Name.c_str()))
              .note("islands",
                    formatString("%d,%d", Other.Index, Island.Index))
              .note("array", Program.array(Out).Name);
      }
      CoveredPoints += IslandOut.numPoints();
      CoveredBox = CoveredBox.unionWith(IslandOut);
    }
    if (CoveredBox != Plan.GlobalTarget ||
        CoveredPoints != Plan.GlobalTarget.numPoints())
      Diags
          .report(Severity::Error, "plan.output.coverage",
                  formatString("output '%s' covers %lld points of %lld",
                               Program.array(Out).Name.c_str(),
                               static_cast<long long>(CoveredPoints),
                               static_cast<long long>(
                                   Plan.GlobalTarget.numPoints())))
          .note("array", Program.array(Out).Name);
  }
  return Diags.numErrors() == ErrorsBefore;
}

PlanVerification icores::verifyPlan(const ExecutionPlan &Plan,
                                    const StencilProgram &Program) {
  DiagnosticEngine Diags;
  PlanVerification V;
  V.Ok = verifyPlan(Plan, Program, Diags);
  if (!V.Ok)
    V.FirstError = Diags.firstErrorMessage();
  return V;
}
