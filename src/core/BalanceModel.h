//===- core/BalanceModel.h - Cost-balanced island partitioning --*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The island partition's load model. Under the islands transformation the
/// per-island work is *not* proportional to slab width: interior islands
/// evaluate two-sided dependence-cone overlaps (growing superlinearly with
/// the temporal depth T) while edge islands evaluate one, and under a
/// serial-init or interleaved page placement some islands also stream more
/// remote bytes than others. Equal-width cuts therefore skew the one-
/// barrier-per-step critical path toward the interior islands.
///
/// This header prices that skew with ONE formula, used by three consumers:
///
///  - partitionCostBalanced() places the cut planes so every slab's
///    predicted seconds are equal (monotone bisection on a cost ceiling);
///  - the simulator reports SimResult::PredictedIslandSkew;
///  - the executor stamps the same predicted skew into ExecStats next to
///    the measured one.
///
/// Because simulator and executor call the same predictedIslandSkew() on
/// the same plan, their predicted skews agree exactly by construction —
/// the balance analogue of projectedSharedBytesPerStep() and
/// estimateRemoteBytesPerStep().
///
/// The per-part cost is pure plan geometry plus the machine model:
///
///   seconds(Part) = coneFlops(Part) / (Threads x peak/core x KernelEff)
///                 + remoteEpochBytes(Part) / remote stream rate
///
/// where coneFlops is the exact ExtraElements-style count (per-fused-step
/// cones clipped to the per-step global cones) weighted by each stage's
/// FlopsPerPoint, and remoteEpochBytes prices the part's step-input
/// footprint against the placement policy (first-touch pays only for the
/// margin outside the part's arena segment; serial init pays the full
/// stream on off-home islands; interleave pays the 1-1/S slice).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_BALANCEMODEL_H
#define ICORES_CORE_BALANCEMODEL_H

#include "core/ExecutionPlan.h"

#include <cstdint>
#include <vector>

namespace icores {

struct MachineModel;

/// Minimum slab extent (planes along the cut dimension) the cost
/// partitioner guarantees every island, and PlanVerifier enforces on
/// every islands plan: an island must own at least one output plane or
/// its blocks would be empty.
inline constexpr int MinIslandPlanes = 1;

/// Exact flops of one part's fused-epoch cones: for each fused step t the
/// part's stage regions (from temporalStepTargets) are clipped to the
/// per-step global cones \p GlobalSteps — the same clipping
/// countExtraElements() applies — and weighted by StageDef::FlopsPerPoint.
int64_t partConeFlops(const StencilProgram &Program, const Box3 &Part,
                      const std::vector<Box3> &GlobalSteps);

/// Remote-DRAM bytes one island streams per epoch for \p Part under
/// \p Placement, from part geometry alone (no neighbor list needed:
/// first-touch arena segments tile space, so everything outside the
/// part's own extended segment is remote regardless of who owns it).
/// \p OnHomeNode marks the island living on the serial-init home node;
/// \p ActiveSockets is the S of the interleave model.
int64_t partRemoteEpochBytes(const StencilProgram &Program, const Box3 &Part,
                             const Box3 &GlobalTarget,
                             const std::vector<Box3> &GlobalSteps,
                             PagePlacement Placement, bool OnHomeNode,
                             int ActiveSockets);

/// The shared per-part cost: predicted seconds one island of
/// \p NumThreads cores spends on one fused epoch of \p Part (see the file
/// comment for the formula). Deterministic plan geometry + machine model.
double predictedPartSeconds(const StencilProgram &Program, const Box3 &Part,
                            const Box3 &GlobalTarget,
                            const std::vector<Box3> &GlobalSteps,
                            int NumThreads, const MachineModel &Machine,
                            PagePlacement Placement, bool OnHomeNode,
                            int ActiveSockets);

/// predictedPartSeconds() for every island of a built plan, in plan order.
std::vector<double> predictedIslandSeconds(const ExecutionPlan &Plan,
                                           const StencilProgram &Program,
                                           const MachineModel &Machine);

/// Predicted island skew of \p Plan: max over islands of
/// predictedPartSeconds divided by the mean. 1.0 for perfectly balanced
/// plans and for single-island plans; always >= 1.0. This is THE skew
/// formula — simulator and executor both report it, so they agree
/// exactly by construction.
double predictedIslandSkew(const ExecutionPlan &Plan,
                           const StencilProgram &Program,
                           const MachineModel &Machine);

/// Splits \p Target into \p Parts slabs along \p Dim so the per-slab
/// predictedPartSeconds() are equalized, via monotone bisection: an outer
/// binary search on the per-island cost ceiling, an inner binary search
/// per cut plane (cost is monotone in slab width, so each search is
/// exact). The cuts tile \p Target exactly by construction and every slab
/// keeps at least MinIslandPlanes planes. Requires
/// Parts <= extent(Dim) / MinIslandPlanes.
///
/// \p OnHomeNodeByPart says, per island index, whether that island lives
/// on the serial-init home node (only consulted under
/// PagePlacement::None); pass an empty vector to mark island 0 as home.
std::vector<Box3> partitionCostBalanced(
    const StencilProgram &Program, const Box3 &Target, int Parts, int Dim,
    int TemporalDepth, int NumThreads, const MachineModel &Machine,
    PagePlacement Placement, int ActiveSockets,
    const std::vector<bool> &OnHomeNodeByPart = {});

} // namespace icores

#endif // ICORES_CORE_BALANCEMODEL_H
