//===- core/BalanceModel.cpp - Cost-balanced island partitioning ----------===//

#include "core/BalanceModel.h"

#include "core/PlacementMap.h"
#include "machine/MachineModel.h"
#include "stencil/HaloAnalysis.h"
#include "support/Error.h"

#include <algorithm>

using namespace icores;

namespace {

/// Per-step global cone requirements, computed once and shared across the
/// many per-slab cost evaluations the bisection makes.
std::vector<RegionRequirements>
globalStepRequirements(const StencilProgram &Program,
                       const std::vector<Box3> &GlobalSteps) {
  std::vector<RegionRequirements> Req;
  Req.reserve(GlobalSteps.size());
  for (const Box3 &G : GlobalSteps)
    Req.push_back(computeRequirements(Program, G));
  return Req;
}

int64_t coneFlopsImpl(const StencilProgram &Program, const Box3 &Part,
                      const std::vector<RegionRequirements> &GlobalReq) {
  const int Depth = static_cast<int>(GlobalReq.size());
  std::vector<Box3> StepTargets = temporalStepTargets(Program, Part, Depth);
  int64_t Flops = 0;
  for (int T = 0; T != Depth; ++T) {
    RegionRequirements Local =
        computeRequirements(Program, StepTargets[static_cast<size_t>(T)]);
    const RegionRequirements &Bound = GlobalReq[static_cast<size_t>(T)];
    for (unsigned S = 0; S != Program.numStages(); ++S)
      Flops += Local.StageRegion[S].intersect(Bound.StageRegion[S])
                   .numPoints() *
               Program.stage(static_cast<StageId>(S)).FlopsPerPoint;
  }
  return Flops;
}

int64_t remoteEpochBytesImpl(const StencilProgram &Program, const Box3 &Part,
                             const Box3 &GlobalTarget,
                             const std::vector<RegionRequirements> &GlobalReq,
                             PagePlacement Placement, bool OnHomeNode,
                             int ActiveSockets) {
  if (Part.empty())
    return 0;
  const int Depth = static_cast<int>(GlobalReq.size());
  // The import footprint: the widest (first) fused step's step-input read
  // regions, clipped to the global cone's read regions (nothing outside
  // them ever holds valid data), plus the final-step output writes (the
  // part itself).
  std::vector<Box3> StepTargets = temporalStepTargets(Program, Part, Depth);
  RegionRequirements First = computeRequirements(Program, StepTargets[0]);
  const RegionRequirements &Bound = GlobalReq[0];

  const Box3 Extended = extendPartToHalo(Part, GlobalTarget);
  int64_t Remote = 0;
  auto charge = [&](ArrayId Id, const Box3 &Box) {
    if (Box.empty())
      return;
    const int64_t Bytes = Box.numPoints() * Program.array(Id).ElementBytes;
    switch (Placement) {
    case PlacementPolicy::FirstTouch:
      // Arena segments tile space, so everything outside this part's own
      // extended segment lives on some other island's socket.
      Remote +=
          Bytes - Box.intersect(Extended).numPoints() *
                      Program.array(Id).ElementBytes;
      break;
    case PlacementPolicy::None:
      // Serial init homes every page on the home node; off-home islands
      // stream the whole box over the interconnect.
      if (!OnHomeNode)
        Remote += Bytes;
      break;
    case PlacementPolicy::Interleave: {
      if (ActiveSockets <= 1)
        break;
      const int64_t Points = Box.numPoints();
      Remote += (Points - Points / ActiveSockets) *
                Program.array(Id).ElementBytes;
      break;
    }
    }
  };
  for (ArrayId In : Program.stepInputs())
    charge(In, First.ArrayRegion[static_cast<size_t>(In)].intersect(
                   Bound.ArrayRegion[static_cast<size_t>(In)]));
  for (ArrayId Out : Program.stepOutputs())
    charge(Out, Part);
  return Remote;
}

double partSecondsImpl(const StencilProgram &Program, const Box3 &Part,
                       const Box3 &GlobalTarget,
                       const std::vector<RegionRequirements> &GlobalReq,
                       int NumThreads, const MachineModel &Machine,
                       PagePlacement Placement, bool OnHomeNode,
                       int ActiveSockets) {
  const double Throughput = std::max(1.0, NumThreads *
                                              Machine.peakFlopsPerCore() *
                                              Machine.KernelEfficiency);
  double Seconds =
      static_cast<double>(coneFlopsImpl(Program, Part, GlobalReq)) /
      Throughput;
  const double RemoteRate =
      Machine.LinkBandwidth * Machine.RemoteAccessEfficiency;
  if (RemoteRate > 0.0)
    Seconds += static_cast<double>(remoteEpochBytesImpl(
                   Program, Part, GlobalTarget, GlobalReq, Placement,
                   OnHomeNode, ActiveSockets)) /
               RemoteRate;
  return Seconds;
}

} // namespace

int64_t icores::partConeFlops(const StencilProgram &Program, const Box3 &Part,
                              const std::vector<Box3> &GlobalSteps) {
  return coneFlopsImpl(Program, Part,
                       globalStepRequirements(Program, GlobalSteps));
}

int64_t icores::partRemoteEpochBytes(const StencilProgram &Program,
                                     const Box3 &Part,
                                     const Box3 &GlobalTarget,
                                     const std::vector<Box3> &GlobalSteps,
                                     PagePlacement Placement, bool OnHomeNode,
                                     int ActiveSockets) {
  return remoteEpochBytesImpl(Program, Part, GlobalTarget,
                              globalStepRequirements(Program, GlobalSteps),
                              Placement, OnHomeNode, ActiveSockets);
}

double icores::predictedPartSeconds(const StencilProgram &Program,
                                    const Box3 &Part, const Box3 &GlobalTarget,
                                    const std::vector<Box3> &GlobalSteps,
                                    int NumThreads,
                                    const MachineModel &Machine,
                                    PagePlacement Placement, bool OnHomeNode,
                                    int ActiveSockets) {
  return partSecondsImpl(Program, Part, GlobalTarget,
                         globalStepRequirements(Program, GlobalSteps),
                         NumThreads, Machine, Placement, OnHomeNode,
                         ActiveSockets);
}

std::vector<double>
icores::predictedIslandSeconds(const ExecutionPlan &Plan,
                               const StencilProgram &Program,
                               const MachineModel &Machine) {
  ICORES_CHECK(!Plan.Islands.empty(), "plan has no islands");
  std::vector<Box3> GlobalSteps = temporalStepTargets(
      Program, Plan.GlobalTarget, std::max(1, Plan.TemporalDepth));
  std::vector<RegionRequirements> GlobalReq =
      globalStepRequirements(Program, GlobalSteps);

  // Active sockets, the S of the interleave model (matches
  // buildPlacementMap: sub-socket islands collapse).
  std::vector<int> Sockets;
  for (const IslandPlan &Island : Plan.Islands)
    for (int S = 0; S != Island.NumSockets; ++S)
      Sockets.push_back(Island.HomeSocket + S);
  std::sort(Sockets.begin(), Sockets.end());
  Sockets.erase(std::unique(Sockets.begin(), Sockets.end()), Sockets.end());
  const int ActiveSockets = static_cast<int>(Sockets.size());
  const int HomeNode = Plan.Islands.front().HomeSocket;

  std::vector<double> Seconds;
  Seconds.reserve(Plan.Islands.size());
  for (const IslandPlan &Island : Plan.Islands)
    Seconds.push_back(partSecondsImpl(
        Program, Island.Part, Plan.GlobalTarget, GlobalReq,
        Island.NumThreads, Machine, Plan.Placement,
        Island.HomeSocket == HomeNode, ActiveSockets));
  return Seconds;
}

double icores::predictedIslandSkew(const ExecutionPlan &Plan,
                                   const StencilProgram &Program,
                                   const MachineModel &Machine) {
  std::vector<double> Seconds =
      predictedIslandSeconds(Plan, Program, Machine);
  if (Seconds.size() < 2)
    return 1.0;
  double Max = 0.0, Sum = 0.0;
  for (double S : Seconds) {
    Max = std::max(Max, S);
    Sum += S;
  }
  const double Mean = Sum / static_cast<double>(Seconds.size());
  return Mean > 0.0 ? Max / Mean : 1.0;
}

std::vector<Box3> icores::partitionCostBalanced(
    const StencilProgram &Program, const Box3 &Target, int Parts, int Dim,
    int TemporalDepth, int NumThreads, const MachineModel &Machine,
    PagePlacement Placement, int ActiveSockets,
    const std::vector<bool> &OnHomeNodeByPart) {
  ICORES_CHECK(Parts >= 1, "need at least one part");
  ICORES_CHECK(Dim >= 0 && Dim < 3, "dimension out of range");
  ICORES_CHECK(TemporalDepth >= 1, "temporal depth must be at least 1");
  const int Extent = Target.extent(Dim);
  ICORES_CHECK(Parts * MinIslandPlanes <= Extent,
               "more parts than minimum-extent slabs along the split "
               "dimension");
  ICORES_CHECK(OnHomeNodeByPart.empty() ||
                   static_cast<int>(OnHomeNodeByPart.size()) == Parts,
               "home-node flags must match the part count");
  if (Parts == 1)
    return {Target};

  std::vector<Box3> GlobalSteps =
      temporalStepTargets(Program, Target, TemporalDepth);
  std::vector<RegionRequirements> GlobalReq =
      globalStepRequirements(Program, GlobalSteps);

  auto onHome = [&](int Index) {
    return OnHomeNodeByPart.empty() ? Index == 0
                                    : OnHomeNodeByPart[static_cast<size_t>(
                                          Index)];
  };
  auto slabCost = [&](int LoPlane, int HiPlane, int Index) {
    Box3 Slab = Target;
    Slab.Lo[Dim] = Target.Lo[Dim] + LoPlane;
    Slab.Hi[Dim] = Target.Lo[Dim] + HiPlane;
    return partSecondsImpl(Program, Slab, Target, GlobalReq, NumThreads,
                           Machine, Placement, onHome(Index), ActiveSockets);
  };

  // Greedy left-to-right cut placement for a cost ceiling Tau: each island
  // takes the widest slab whose cost stays under the ceiling (inner binary
  // search — slab cost is monotone non-decreasing in width, since wider
  // slabs have nested, therefore larger, clipped cones). Later islands
  // reserve MinIslandPlanes planes each, so no searched slab ever reaches
  // the domain face (where the first-touch margin would vanish and break
  // monotonicity). Returns whether the leftover last slab also fits.
  auto placeCuts = [&](double Tau, std::vector<int> &Cuts) {
    Cuts.clear();
    int Lo = 0;
    for (int P = 0; P != Parts - 1; ++P) {
      const int HiMin = Lo + MinIslandPlanes;
      const int HiMax = Extent - (Parts - 1 - P) * MinIslandPlanes;
      if (HiMin > HiMax || slabCost(Lo, HiMin, P) > Tau)
        return false;
      int Good = HiMin, Bad = HiMax + 1;
      while (Bad - Good > 1) {
        const int Mid = Good + (Bad - Good) / 2;
        (slabCost(Lo, Mid, P) <= Tau ? Good : Bad) = Mid;
      }
      Cuts.push_back(Good);
      Lo = Good;
    }
    return slabCost(Lo, Extent, Parts - 1) <= Tau;
  };

  // Outer bisection on the ceiling. The starting ceiling must be feasible
  // for EVERY part index, and no whole-domain cost works as a bound: a
  // remote part pays a per-point premium under serial-init placement, and
  // under first-touch the halo-import bytes are a *boundary* measure — a
  // one-plane interior slab can cost more than the entire domain. The one
  // layout the greedy always reaches is its own Tau=infinity answer
  // (island 0 maximal, every later island at MinIslandPlanes); pricing
  // that layout gives a ceiling the greedy can meet by construction,
  // needing only the width-monotonicity the inner search already
  // assumes. 60 halvings pin Tau to machine precision.
  double LoTau = 0.0, HiTau = 0.0;
  {
    int Lo = 0;
    for (int P = 0; P != Parts; ++P) {
      const int Hi =
          P == Parts - 1 ? Extent : Extent - (Parts - 1 - P) * MinIslandPlanes;
      HiTau = std::max(HiTau, slabCost(Lo, Hi, P));
      Lo = Hi;
    }
  }
  std::vector<int> Cuts, BestCuts;
  ICORES_CHECK(placeCuts(HiTau, BestCuts),
               "cost-balanced partition: upper ceiling infeasible");
  for (int Iter = 0; Iter != 60; ++Iter) {
    const double Mid = 0.5 * (LoTau + HiTau);
    if (placeCuts(Mid, Cuts)) {
      HiTau = Mid;
      BestCuts = Cuts;
    } else {
      LoTau = Mid;
    }
  }

  // Materialize the slabs; they tile the target exactly by construction
  // (cut plane P ends slab P and begins slab P+1).
  std::vector<Box3> Result;
  Result.reserve(static_cast<size_t>(Parts));
  int Lo = 0;
  for (int P = 0; P != Parts; ++P) {
    const int Hi =
        P == Parts - 1 ? Extent : BestCuts[static_cast<size_t>(P)];
    Box3 Slab = Target;
    Slab.Lo[Dim] = Target.Lo[Dim] + Lo;
    Slab.Hi[Dim] = Target.Lo[Dim] + Hi;
    Result.push_back(Slab);
    Lo = Hi;
  }
  return Result;
}
