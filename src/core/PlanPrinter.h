//===- core/PlanPrinter.h - Plan dumps and summary statistics ---*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable rendering of ExecutionPlans (for debugging transformed
/// schedules) and aggregate statistics (for reports and examples).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_PLANPRINTER_H
#define ICORES_CORE_PLANPRINTER_H

#include "core/ExecutionPlan.h"
#include "stencil/StencilIR.h"

#include <cstdint>
#include <string>

namespace icores {

class OStream;

/// Aggregate statistics of one plan.
struct PlanStats {
  int NumIslands = 0;
  int TotalThreads = 0;
  int64_t NumBlocks = 0;
  int64_t NumPasses = 0;
  int64_t TotalPoints = 0;   ///< Points computed, redundancy included.
  int64_t TotalFlops = 0;    ///< Per step.
  double RedundancyFraction = 0.0; ///< Extra points vs the target's cone.
};

/// Computes aggregate statistics for \p Plan.
PlanStats computePlanStats(const ExecutionPlan &Plan,
                           const StencilProgram &Program);

/// Renders a one-paragraph summary (strategy, islands, blocks, points,
/// redundancy).
void printPlanSummary(const ExecutionPlan &Plan,
                      const StencilProgram &Program, OStream &OS);

/// Renders the full plan: every island, block and pass with its region.
/// Verbose — intended for small plans and debugging.
void printPlan(const ExecutionPlan &Plan, const StencilProgram &Program,
               OStream &OS);

} // namespace icores

#endif // ICORES_CORE_PLANPRINTER_H
