//===- core/ScheduleOptimizer.h - Barrier elision post-pass -----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A planner post-pass that removes provably redundant team barriers from
/// an ExecutionPlan. The executor historically barriers the island team
/// after *every* stage pass — 17 barriers per (3+1)D block — but a barrier
/// is only needed when some later pass of the same barrier-free run would
/// otherwise touch cells another thread is still producing or consuming.
///
/// The optimizer walks each island's flattened pass sequence in order,
/// greedily growing barrier-free epochs: the barrier after pass i is
/// elided when the next pass has no cross-thread conflict (write-write or
/// window-expanded read-write, under the exact teamSubRegion() split the
/// executor uses) with *any* pass of the current epoch. The dependence
/// query is findPassPairConflict() from exec/ScheduleCheck.h — the same
/// query the race checker uses, so `checkPlanRaces`/`LintSuite` certify
/// every optimized plan by construction (and are run on it in tests as the
/// safety gate). The barrier after each island's final pass is always
/// kept: it is the step-end rendezvous that makes island lockstep
/// independent of the executor's global barrier.
///
/// See DESIGN.md §8 for the soundness argument.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_SCHEDULEOPTIMIZER_H
#define ICORES_CORE_SCHEDULEOPTIMIZER_H

#include "core/ExecutionPlan.h"
#include "stencil/StencilIR.h"

#include <cstdint>
#include <vector>

namespace icores {

/// Elision outcome for one island.
struct IslandElision {
  int Island = 0;
  int64_t Passes = 0; ///< Non-empty passes (candidate barriers).
  int64_t Elided = 0; ///< Barrier bits cleared on this island.
};

/// What optimizeBarriers() did to a plan.
struct ScheduleOptimizerReport {
  int64_t TotalPasses = 0;    ///< Candidate barriers before optimization.
  int64_t ElidedBarriers = 0; ///< Barrier bits cleared across all islands.
  std::vector<IslandElision> Islands;

  /// Barriers remaining per step after optimization.
  int64_t remainingBarriers() const { return TotalPasses - ElidedBarriers; }

  /// Fraction of barriers removed, in [0, 1].
  double elidedFraction() const {
    return TotalPasses == 0
               ? 0.0
               : static_cast<double>(ElidedBarriers) /
                     static_cast<double>(TotalPasses);
  }
};

/// Clears the BarrierAfter bit of every pass in \p Plan whose barrier is
/// provably redundant for \p Program, in place, and reports what changed.
/// Empty passes are treated exactly as buildIslandSchedules() treats them:
/// their barrier (if any) belongs to the previous non-empty pass.
/// Idempotent; safe on any plan that verifies.
ScheduleOptimizerReport optimizeBarriers(const StencilProgram &Program,
                                         ExecutionPlan &Plan);

} // namespace icores

#endif // ICORES_CORE_SCHEDULEOPTIMIZER_H
