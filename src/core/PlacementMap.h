//===- core/PlacementMap.h - Page-placement map and remote bytes -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The placement map says, for every cell of the shared field arrays, which
/// socket its page is homed on under a PlacementPolicy, derived purely from
/// the plan's island partition:
///
///  - FirstTouch: each island owns an *arena segment* — its partition part
///    extended outward to cover the adjacent halo slabs (so every halo
///    page belongs to the nearest island). Segments tile the allocation,
///    and the executor's init epoch has each island's pinned team zero its
///    segment so the kernel homes those pages on the island's socket.
///  - None: every page sits on the serially-initializing thread's node
///    (modeled as island 0's home socket).
///  - Interleave: pages round-robin across the active sockets, so a 1/S
///    slice of any region is local to each socket.
///
/// On top of the map, estimateIslandRemoteEpochTraffic() replicates the
/// executor's shared-traffic footprint (per-epoch import reads with the
/// feedback-paired boxes for T > 1, final-step output writes) and splits
/// it into local and remote bytes, attributed per remote socket (so the
/// simulator can price each NUMA hop) and per array (so TrafficReport can
/// print a remote column). The executor's ExecStats remote_bytes_est and
/// the simulator's projection both come from this one function, so they
/// agree exactly by construction — the same contract as
/// projectedSharedBytesPerStep().
///
/// Everything here is pure plan geometry: no machine model, no syscalls.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_PLACEMENTMAP_H
#define ICORES_CORE_PLACEMENTMAP_H

#include "core/ExecutionPlan.h"
#include "grid/Placement.h"

#include <cstdint>
#include <map>
#include <vector>

namespace icores {

/// One island's arena: the part it owns, extended outward wherever the
/// part touches the global target so boundary halo slabs have an owner.
struct PlacementSegment {
  int Island = 0;
  int HomeSocket = 0;
  Box3 Extended; ///< Unbounded-ish (sentinel) box; intersect before use.
};

/// The plan-derived page-ownership map (see file comment).
struct PlacementMap {
  PlacementPolicy Policy = PlacementPolicy::None;
  std::vector<PlacementSegment> Segments; ///< One per island, plan order.
  /// Distinct sockets spanned by any island (sub-socket islands collapse),
  /// sorted ascending. |ActiveSockets| is the S of the interleave model.
  std::vector<int> ActiveSockets;
  /// The socket serial initialization homes every page on (island 0's
  /// home socket) — where all traffic funnels under PlacementPolicy::None.
  int HomeNode = 0;

  /// Points of \p Region whose pages are homed on \p Socket under
  /// FirstTouch (sums the segments of all islands on that socket).
  int64_t localPoints(const Box3 &Region, int Socket) const;

  /// The slab of \p AllocBox island \p Island must first-touch: its
  /// extended part clipped to the allocation. Segments tile AllocBox.
  Box3 arenaSegment(int Island, const Box3 &AllocBox) const;
};

/// Builds the map for \p Plan under \p Policy.
PlacementMap buildPlacementMap(const ExecutionPlan &Plan,
                               PlacementPolicy Policy);

/// The arena-segment geometry: \p Part extended outward (by a large
/// sentinel span) on every face it shares with \p Target, so adjacent
/// halo slabs belong to the nearest island. Exposed so the balance model
/// (core/BalanceModel.h) prices first-touch remote margins with exactly
/// the segment shapes the executor's init epoch touches.
Box3 extendPartToHalo(const Box3 &Part, const Box3 &Target);

/// One island's per-epoch remote traffic against a placement map.
struct IslandRemoteTraffic {
  int64_t ReadBytes = 0;  ///< Epoch input reads off remote pages.
  int64_t WriteBytes = 0; ///< Final-step output writes to remote pages.
  /// Remote bytes by the socket the pages live on (read + write), for
  /// hop-aware pricing. Keys never include the island's own home socket.
  std::map<int, int64_t> BytesBySocket;
  /// Remote bytes by shared array (read + write), for TrafficReport.
  std::map<ArrayId, int64_t> BytesByArray;

  int64_t total() const { return ReadBytes + WriteBytes; }
};

/// Splits one island's per-epoch shared-array footprint into remote bytes
/// under \p Map. The footprint replicates ProgramExecutor's accounting:
/// feedback-paired import boxes for temporal plans, plain read unions for
/// T == 1, and the final-fused-step output unions for writes.
IslandRemoteTraffic
estimateIslandRemoteEpochTraffic(const IslandPlan &Island,
                                 const ExecutionPlan &Plan,
                                 const StencilProgram &Program,
                                 const PlacementMap &Map);

/// Plan-wide remote bytes per time step under \p Policy: the per-epoch
/// island totals summed and divided by the temporal depth. This is the
/// single source of both ExecStats::RemoteBytesEst and the simulator's
/// SimResult::PlacementRemoteBytesPerStep.
int64_t estimateRemoteBytesPerStep(const ExecutionPlan &Plan,
                                   const StencilProgram &Program,
                                   PlacementPolicy Policy);

} // namespace icores

#endif // ICORES_CORE_PLACEMENTMAP_H
