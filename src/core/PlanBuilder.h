//===- core/PlanBuilder.h - Strategy plan construction ----------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a complete ExecutionPlan for one of the paper's three strategies
/// on a given machine configuration. This is where the islands-of-cores
/// policy decisions live: one island per socket, neighbor parts on adjacent
/// sockets, per-socket cache budgets, and the choice of partition variant.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_PLANBUILDER_H
#define ICORES_CORE_PLANBUILDER_H

#include "core/ExecutionPlan.h"
#include "core/Partition.h"

namespace icores {

struct MachineModel;

/// Configuration of one planned run.
struct PlanConfig {
  Strategy Strat = Strategy::IslandsOfCores;
  /// Number of processors (sockets) participating; 1..machine sockets.
  int Sockets = 1;
  PagePlacement Placement = PagePlacement::FirstTouch;
  /// How island slabs are sized: equal extents (the paper's cuts) or
  /// equal predicted cost (core/BalanceModel.h — interior islands'
  /// superlinear cone overlap shrinks their slabs so every island
  /// reaches the step barrier together). Cost applies to the 1D island
  /// partition; 2D island grids and the single-team strategies keep
  /// uniform cuts.
  BalancePolicy Balance = BalancePolicy::Uniform;
  /// 1D mapping variant for islands (Table 2's A or B).
  PartitionVariant Variant = PartitionVariant::A;
  /// When both are > 0, use a GridPartsI x GridPartsJ 2D island grid
  /// instead of the 1D variant (the paper's future work; must multiply to
  /// the total island count).
  int GridPartsI = 0;
  int GridPartsJ = 0;
  /// Islands per socket (the paper's future work of applying the approach
  /// *within* each multicore CPU). Must divide the cores per socket; the
  /// total island count becomes Sockets * IslandsPerSocket.
  int IslandsPerSocket = 1;
  /// Fused time steps per epoch (temporal blocking); see
  /// ExecutionPlan::TemporalDepth. Must be >= 1. For T > 1 each island's
  /// blocks are emitted once per fused step over the widened per-step
  /// cones of temporalStepTargets(), ordered by step.
  int TemporalDepth = 1;
};

/// Builds the per-time-step plan for \p Config over \p GlobalTarget.
ExecutionPlan buildPlan(const StencilProgram &Program,
                        const Box3 &GlobalTarget, const MachineModel &Machine,
                        const PlanConfig &Config);

} // namespace icores

#endif // ICORES_CORE_PLANBUILDER_H
