//===- core/ExecutionPlan.cpp - Strategy-agnostic execution plans --------===//

#include "core/ExecutionPlan.h"

#include "support/Error.h"

using namespace icores;

const char *icores::strategyName(Strategy S) {
  switch (S) {
  case Strategy::Original:
    return "original";
  case Strategy::Block31D:
    return "(3+1)D";
  case Strategy::IslandsOfCores:
    return "islands-of-cores";
  }
  ICORES_UNREACHABLE("unknown strategy");
}

const char *icores::balancePolicyName(BalancePolicy P) {
  switch (P) {
  case BalancePolicy::Uniform:
    return "uniform";
  case BalancePolicy::Cost:
    return "cost";
  }
  ICORES_UNREACHABLE("unknown balance policy");
}

int64_t IslandPlan::passPoints() const {
  int64_t Total = 0;
  for (const BlockTask &Block : Blocks)
    for (const StagePass &Pass : Block.Passes)
      Total += Pass.Region.numPoints();
  return Total;
}

int64_t ExecutionPlan::totalPassPoints() const {
  int64_t Total = 0;
  for (const IslandPlan &Island : Islands)
    Total += Island.passPoints();
  return Total;
}

int64_t ExecutionPlan::teamBarriersPerStep() const {
  int64_t Total = 0;
  for (const IslandPlan &Island : Islands)
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes)
        Total += Pass.BarrierAfter ? 1 : 0;
  return Total;
}

int64_t ExecutionPlan::elidedBarriersPerStep() const {
  int64_t Total = 0;
  for (const IslandPlan &Island : Islands)
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes)
        Total += Pass.BarrierAfter ? 0 : 1;
  return Total;
}

int64_t ExecutionPlan::totalFlops(const StencilProgram &Program) const {
  int64_t Total = 0;
  for (const IslandPlan &Island : Islands)
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes)
        Total += Pass.Region.numPoints() *
                 Program.stage(Pass.Stage).FlopsPerPoint;
  return Total;
}
