//===- core/BlockPlanner.cpp - (3+1)D block construction ------------------===//

#include "core/BlockPlanner.h"

#include "stencil/HaloAnalysis.h"
#include "support/Error.h"
#include "support/MathUtil.h"

#include <algorithm>

using namespace icores;

namespace {

/// Stage regions of \p Part clipped to the global stage regions: nothing
/// outside what the original version computes is ever produced.
std::vector<Box3> clippedStageRegions(const StencilProgram &Program,
                                      const Box3 &Part,
                                      const Box3 &GlobalTarget) {
  RegionRequirements Local = computeRequirements(Program, Part);
  RegionRequirements Global = computeRequirements(Program, GlobalTarget);
  std::vector<Box3> Regions(Program.numStages());
  for (unsigned S = 0; S != Program.numStages(); ++S)
    Regions[S] = Local.StageRegion[S].intersect(Global.StageRegion[S]);
  return Regions;
}

} // namespace

int icores::blockThickness(const StencilProgram &Program, const Box3 &Part,
                           int64_t CacheBudgetBytes) {
  ICORES_CHECK(CacheBudgetBytes > 0, "cache budget must be positive");
  // Cross-section: the slab area in the j-k plane, conservatively grown by
  // the widest stage cone.
  std::vector<StageSideMargins> Margins = stageSideMargins(Program);
  int GrowJ = 0;
  int GrowK = 0;
  for (const StageSideMargins &M : Margins) {
    GrowJ = std::max(GrowJ, M.Lo[1] + M.Hi[1]);
    GrowK = std::max(GrowK, M.Lo[2] + M.Hi[2]);
  }
  int64_t CrossSection = static_cast<int64_t>(Part.extent(1) + GrowJ) *
                         (Part.extent(2) + GrowK);
  int64_t BytesPerPlane = 0;
  for (unsigned A = 0; A != Program.numArrays(); ++A)
    BytesPerPlane += CrossSection * Program.array(static_cast<ArrayId>(A))
                                        .ElementBytes;
  ICORES_CHECK(BytesPerPlane > 0, "degenerate cross-section");
  int Thickness = static_cast<int>(CacheBudgetBytes / BytesPerPlane);
  return std::max(1, Thickness);
}

std::vector<BlockTask>
icores::planIslandBlocks(const StencilProgram &Program, const Box3 &Part,
                         const Box3 &GlobalTarget, int Thickness) {
  ICORES_CHECK(!Part.empty(), "cannot plan blocks for an empty part");
  ICORES_CHECK(Thickness >= 1, "block thickness must be at least 1");

  std::vector<Box3> Regions = clippedStageRegions(Program, Part, GlobalTarget);
  std::vector<StageSideMargins> Margins = stageSideMargins(Program);

  int NumBlocks = static_cast<int>(
      ceilDiv(Part.extent(0), static_cast<int64_t>(Thickness)));
  std::vector<BlockTask> Blocks;
  Blocks.reserve(static_cast<size_t>(NumBlocks));

  // Per-stage high-water marks along dimension 0.
  std::vector<int> Hwm(Program.numStages());
  for (unsigned S = 0; S != Program.numStages(); ++S)
    Hwm[S] = Regions[S].Lo[0];

  for (int B = 0; B != NumBlocks; ++B) {
    BlockTask Block;
    Block.Target = Part;
    Block.Target.Lo[0] = Part.Lo[0] + B * Thickness;
    Block.Target.Hi[0] = std::min(Part.Hi[0], Block.Target.Lo[0] + Thickness);
    bool Last = B + 1 == NumBlocks;

    for (unsigned S = 0; S != Program.numStages(); ++S) {
      const Box3 &R = Regions[S];
      if (R.empty())
        continue;
      int End = Last ? R.Hi[0]
                     : std::clamp(Block.Target.Hi[0] + Margins[S].Hi[0],
                                  R.Lo[0], R.Hi[0]);
      if (End <= Hwm[S])
        continue; // Nothing new for this stage in this block.
      StagePass Pass;
      Pass.Stage = static_cast<StageId>(S);
      Pass.Region = R;
      Pass.Region.Lo[0] = Hwm[S];
      Pass.Region.Hi[0] = End;
      Hwm[S] = End;
      Block.Passes.push_back(Pass);
    }
    Blocks.push_back(std::move(Block));
  }

  // Every stage must end exactly at its region's upper bound.
  for (unsigned S = 0; S != Program.numStages(); ++S)
    ICORES_CHECK(Regions[S].empty() || Hwm[S] == Regions[S].Hi[0],
                 "high-water-mark schedule did not cover a stage region");
  return Blocks;
}

std::vector<BlockTask>
icores::planSingleBlock(const StencilProgram &Program, const Box3 &Part,
                        const Box3 &GlobalTarget) {
  std::vector<Box3> Regions = clippedStageRegions(Program, Part, GlobalTarget);
  BlockTask Block;
  Block.Target = Part;
  for (unsigned S = 0; S != Program.numStages(); ++S) {
    if (Regions[S].empty())
      continue;
    StagePass Pass;
    Pass.Stage = static_cast<StageId>(S);
    Pass.Region = Regions[S];
    Block.Passes.push_back(Pass);
  }
  std::vector<BlockTask> Result;
  Result.push_back(std::move(Block));
  return Result;
}
