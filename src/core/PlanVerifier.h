//===- core/PlanVerifier.h - Static plan correctness checks -----*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies an ExecutionPlan against the dataflow semantics of its stencil
/// program *before* anything runs: every value read must have been
/// computed earlier (within the island — islands never see each other's
/// intermediates), the step outputs must be covered exactly once across
/// islands, and no pass may stray outside what the original version would
/// compute. The executor asserts these invariants dynamically through its
/// results; the verifier turns them into a fast static check usable on any
/// hand-built or transformed plan.
///
/// The DiagnosticEngine overload reports *every* violation as a stable
/// `plan.*` finding (see DESIGN.md §7); the PlanVerification form is a
/// first-error convenience wrapper kept for callers that only need a
/// go/no-go answer.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_PLANVERIFIER_H
#define ICORES_CORE_PLANVERIFIER_H

#include "core/ExecutionPlan.h"
#include "stencil/StencilIR.h"

#include <string>

namespace icores {

class DiagnosticEngine;

/// Result of verifying one plan.
struct PlanVerification {
  bool Ok = true;
  std::string FirstError; ///< Empty when Ok.
};

/// Statically checks \p Plan against \p Program:
///  1. pass order: every producer value a pass reads was computed by an
///     earlier pass of the same island (step inputs are exempt — they are
///     globally valid after the halo refresh);
///  2. output coverage: the union of the final-stage passes across all
///     islands covers Plan.GlobalTarget, and islands write disjoint parts;
///  3. clipping: no pass exceeds the global dependence-cone region of its
///     stage (nothing the original version would not compute).
///
/// Reports every violation into \p Diags under the `plan.*` id namespace.
/// Returns true when no error was added.
bool verifyPlan(const ExecutionPlan &Plan, const StencilProgram &Program,
                DiagnosticEngine &Diags);

/// First-error convenience wrapper over the DiagnosticEngine overload.
PlanVerification verifyPlan(const ExecutionPlan &Plan,
                            const StencilProgram &Program);

} // namespace icores

#endif // ICORES_CORE_PLANVERIFIER_H
