//===- core/PlanPrinter.cpp - Plan dumps and summary statistics -----------===//

#include "core/PlanPrinter.h"

#include "stencil/HaloAnalysis.h"
#include "support/Format.h"
#include "support/OStream.h"

using namespace icores;

PlanStats icores::computePlanStats(const ExecutionPlan &Plan,
                                   const StencilProgram &Program) {
  PlanStats Stats;
  Stats.NumIslands = static_cast<int>(Plan.Islands.size());
  for (const IslandPlan &Island : Plan.Islands) {
    Stats.TotalThreads += Island.NumThreads;
    Stats.NumBlocks += static_cast<int64_t>(Island.Blocks.size());
    for (const BlockTask &Block : Island.Blocks)
      Stats.NumPasses += static_cast<int64_t>(Block.Passes.size());
  }
  Stats.TotalPoints = Plan.totalPassPoints();
  Stats.TotalFlops = Plan.totalFlops(Program);

  RegionRequirements Global =
      computeRequirements(Program, Plan.GlobalTarget);
  int64_t Baseline = Global.totalStagePoints();
  if (Baseline > 0)
    Stats.RedundancyFraction =
        static_cast<double>(Stats.TotalPoints - Baseline) /
        static_cast<double>(Baseline);
  return Stats;
}

void icores::printPlanSummary(const ExecutionPlan &Plan,
                              const StencilProgram &Program, OStream &OS) {
  PlanStats Stats = computePlanStats(Plan, Program);
  OS << strategyName(Plan.Strat) << " plan over "
     << Plan.GlobalTarget.str() << ": " << Stats.NumIslands << " island(s), "
     << Stats.TotalThreads << " thread(s), " << Stats.NumBlocks
     << " block(s), " << Stats.NumPasses << " pass(es), "
     << Stats.TotalPoints << " points ("
     << formatPercent(Stats.RedundancyFraction, 2)
     << "% redundant), " << Stats.TotalFlops << " flops/step\n";
}

void icores::printPlan(const ExecutionPlan &Plan,
                       const StencilProgram &Program, OStream &OS) {
  printPlanSummary(Plan, Program, OS);
  for (const IslandPlan &Island : Plan.Islands) {
    OS << "island " << Island.Index << " (socket " << Island.HomeSocket
       << ", " << Island.NumThreads << " threads): part "
       << Island.Part.str() << '\n';
    for (size_t B = 0; B != Island.Blocks.size(); ++B) {
      const BlockTask &Block = Island.Blocks[B];
      OS << "  block " << static_cast<uint64_t>(B) << " target "
         << Block.Target.str() << '\n';
      for (const StagePass &Pass : Block.Passes)
        OS << "    " << Program.stage(Pass.Stage).Name << " over "
           << Pass.Region.str() << '\n';
    }
  }
}
