//===- core/Partition.cpp - Island domain partitioning --------------------===//

#include "core/Partition.h"

#include "support/Error.h"
#include "support/MathUtil.h"

using namespace icores;

int icores::partitionDim(PartitionVariant Variant) {
  return Variant == PartitionVariant::A ? 0 : 1;
}

std::vector<Box3> icores::partition1D(const Box3 &Target, int Parts,
                                      int Dim) {
  ICORES_CHECK(Parts >= 1, "need at least one part");
  ICORES_CHECK(Dim >= 0 && Dim < 3, "dimension out of range");
  ICORES_CHECK(Parts <= Target.extent(Dim),
               "more parts than cells along the split dimension");
  std::vector<Box3> Result;
  Result.reserve(static_cast<size_t>(Parts));
  int Extent = Target.extent(Dim);
  for (int P = 0; P != Parts; ++P) {
    Box3 Part = Target;
    Part.Lo[Dim] =
        Target.Lo[Dim] + static_cast<int>(chunkBegin(Extent, Parts, P));
    Part.Hi[Dim] =
        Target.Lo[Dim] + static_cast<int>(chunkBegin(Extent, Parts, P + 1));
    Result.push_back(Part);
  }
  return Result;
}

std::vector<Box3> icores::partition2D(const Box3 &Target, int PartsI,
                                      int PartsJ) {
  ICORES_CHECK(PartsI >= 1 && PartsJ >= 1, "need at least one part per dim");
  std::vector<Box3> Rows = partition1D(Target, PartsI, 0);
  std::vector<Box3> Result;
  Result.reserve(static_cast<size_t>(PartsI) * PartsJ);
  for (const Box3 &Row : Rows)
    for (const Box3 &Cell : partition1D(Row, PartsJ, 1))
      Result.push_back(Cell);
  return Result;
}

std::pair<int, int> icores::factorForGrid(int Parts) {
  ICORES_CHECK(Parts >= 1, "need at least one part");
  int Best = 1;
  for (int F = 1; F * F <= Parts; ++F)
    if (Parts % F == 0)
      Best = F;
  // Best is the largest factor <= sqrt(Parts); put the larger cofactor on
  // dimension 0 where cone margins are cheapest.
  return {Parts / Best, Best};
}
