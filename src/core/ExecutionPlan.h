//===- core/ExecutionPlan.h - Strategy-agnostic execution plans -*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionPlan is the common currency between the planners (core), the
/// threaded executor (exec) and the performance simulator (sim). One plan
/// describes one MPDATA *time step*: a set of islands running concurrently,
/// each processing an ordered list of blocks, each block an ordered list of
/// stage passes. The three strategies of the paper reduce to three plan
/// shapes:
///
///  - Original:        1 island (all sockets), 1 block, 17 full-domain
///                     passes; intermediates live in main memory.
///  - (3+1)D:          1 island (all sockets), many cache-sized blocks.
///  - Islands-of-cores: P islands (1 socket each), per-island blocks;
///                     island pass regions include the inter-island
///                     dependence cones (redundant computation).
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_EXECUTIONPLAN_H
#define ICORES_CORE_EXECUTIONPLAN_H

#include "grid/Box3.h"
#include "grid/Placement.h"
#include "stencil/StencilIR.h"

#include <cstdint>
#include <vector>

namespace icores {

/// The three execution strategies the paper compares.
enum class Strategy {
  Original,       ///< Stage-major over the full domain.
  Block31D,       ///< The pure (3+1)D decomposition.
  IslandsOfCores, ///< The paper's contribution.
};

/// Returns a human-readable strategy name.
const char *strategyName(Strategy S);

/// Where the pages of the shared arrays live. Historically a simulator-only
/// two-value knob (Table 1 contrasts serial init vs first touch for the
/// Original strategy); now an alias for the grid-level PlacementPolicy the
/// executor also enforces (grid/Placement.h adds Interleave; the old
/// SerialInit is spelled PlacementPolicy::None).
using PagePlacement = PlacementPolicy;

/// How the island partition sizes its slabs (core/BalanceModel.h prices
/// the Cost policy; the plan records the choice so every consumer —
/// executor, simulator, verifier, printers — can see how the cuts were
/// made).
enum class BalancePolicy {
  Uniform, ///< Equal-extent slabs (the paper's partitioning).
  Cost,    ///< Slabs sized so per-island predicted work is equal.
};

/// Returns the CLI spelling of a balance policy ("uniform" / "cost").
const char *balancePolicyName(BalancePolicy P);

/// One stage evaluated over one region by one island's work team. The team
/// splits the region among its threads and, when BarrierAfter is set,
/// barriers afterwards.
struct StagePass {
  StageId Stage = 0;
  Box3 Region; ///< Empty passes are skipped.
  /// Whether the team barriers after this pass. Planners emit true for
  /// every pass (the executor's historical lockstep behaviour); the
  /// schedule optimizer (core/ScheduleOptimizer.h) clears bits it can
  /// prove redundant, and the executor and simulator both honour them.
  bool BarrierAfter = true;
};

/// One (3+1)D block: the passes completing one slab of the step output.
struct BlockTask {
  Box3 Target; ///< The slab of the island part this block finishes.
  std::vector<StagePass> Passes;
  /// Which fused time step of a temporally blocked epoch this block
  /// belongs to, 0 .. ExecutionPlan::TemporalDepth-1. Always 0 in plain
  /// (TemporalDepth == 1) plans. Blocks are ordered by step: the executor
  /// inserts a structural team barrier plus a feedback-buffer rebind at
  /// every step boundary.
  int StepInEpoch = 0;
};

/// One island: a work team of contiguous sockets processing one part of
/// the domain independently within the time step.
struct IslandPlan {
  int Index = 0;
  int HomeSocket = 0; ///< First socket of the team (affinity anchor).
  int NumSockets = 1; ///< Sockets spanned by the team.
  int NumThreads = 1; ///< Total threads (cores) in the team.
  Box3 Part;          ///< Target part of the step output.
  std::vector<BlockTask> Blocks;

  /// Points computed by this island's passes in one step.
  int64_t passPoints() const;
};

/// A complete single-time-step plan.
struct ExecutionPlan {
  Strategy Strat = Strategy::Original;
  PagePlacement Placement = PagePlacement::FirstTouch;
  BalancePolicy Balance = BalancePolicy::Uniform;
  Box3 GlobalTarget;
  /// Fused time steps per epoch (temporal blocking). 1 means the classic
  /// one-step plan. For T > 1 each island's block list covers T fused
  /// steps (BlockTask::StepInEpoch), island overlap regions are widened to
  /// the T-step dependence cones, and the executor runs the whole epoch
  /// between global barriers: step inputs are imported into island-private
  /// buffers once per epoch and only the final fused step writes the
  /// shared output arrays. Requires periodic boundaries (the widened cones
  /// are exact under wrapping; see DESIGN.md §11).
  int TemporalDepth = 1;
  std::vector<IslandPlan> Islands;

  /// Total points computed across all islands (redundant work included).
  int64_t totalPassPoints() const;

  /// Total flops per step given per-stage flop weights from \p Program.
  int64_t totalFlops(const StencilProgram &Program) const;

  /// Team-barrier crossings per step: passes whose BarrierAfter bit is
  /// set, summed over all islands.
  int64_t teamBarriersPerStep() const;

  /// Passes whose team barrier has been elided (BarrierAfter cleared).
  int64_t elidedBarriersPerStep() const;
};

} // namespace icores

#endif // ICORES_CORE_EXECUTIONPLAN_H
