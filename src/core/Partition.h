//===- core/Partition.h - Island domain partitioning ------------*- C++ -*-===//
//
// Part of the icores project: islands-of-cores for heterogeneous stencils.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitioning of the MPDATA domain into island parts. The paper evaluates
/// 1D partitionings along the first (variant A) and second (variant B)
/// dimensions; 2D partitionings are its stated future work and are provided
/// here for the ablation benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef ICORES_CORE_PARTITION_H
#define ICORES_CORE_PARTITION_H

#include "grid/Box3.h"

#include <vector>

namespace icores {

/// The paper's 1D mapping variants.
enum class PartitionVariant {
  A, ///< Split across the first (i) dimension.
  B, ///< Split across the second (j) dimension.
};

/// Dimension split by a 1D variant.
int partitionDim(PartitionVariant Variant);

/// Splits \p Target into \p Parts nearly equal slabs along \p Dim.
/// Parts may exceed the extent; surplus parts come back empty-free: the
/// call requires Parts <= extent(Dim).
std::vector<Box3> partition1D(const Box3 &Target, int Parts, int Dim);

/// Splits \p Target into a PartsI x PartsJ grid of boxes over dimensions
/// 0 and 1 (row-major order: part (a, b) at index a * PartsJ + b).
std::vector<Box3> partition2D(const Box3 &Target, int PartsI, int PartsJ);

/// Chooses a near-square 2D factorization (Pi, Pj) of \p Parts for
/// partition2D, preferring more parts along dimension 0 (cheaper cones,
/// cf. Table 2). Returns {Parts, 1} when Parts is prime.
std::pair<int, int> factorForGrid(int Parts);

} // namespace icores

#endif // ICORES_CORE_PARTITION_H
