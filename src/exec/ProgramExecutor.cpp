//===- exec/ProgramExecutor.cpp - Generic threaded plan execution ---------===//

#include "exec/ProgramExecutor.h"

#include "exec/Affinity.h"
#include "exec/RegionSplit.h"
#include "fault/FaultInjector.h"
#include "support/Error.h"

#include <chrono>
#include <thread>
#include <utility>

using namespace icores;

namespace {

using ProfileClock = std::chrono::steady_clock;

double secondsSince(ProfileClock::time_point Start,
                    ProfileClock::time_point End) {
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

/// Island-private execution state: the field store (intermediates owned,
/// step inputs/outputs bound to the shared arrays) and the team barrier.
struct ProgramExecutor::IslandState {
  FieldStore Store;
  TeamBarrier Team;

  IslandState(unsigned NumArrays, int TeamSize, const ExecutorOptions &Opts)
      : Store(NumArrays),
        Team(TeamSize, Opts.BarrierPolicy, Opts.BarrierSpinLimit) {}
};

namespace {

/// Shared state of one run() invocation.
struct RunControl {
  TeamBarrier GlobalBarrier;

  RunControl(int TotalThreads, const ExecutorOptions &Opts)
      : GlobalBarrier(TotalThreads, Opts.BarrierPolicy,
                      Opts.BarrierSpinLimit) {}
};

} // namespace

ProgramExecutor::ProgramExecutor(StencilProgram AProgram,
                                 KernelTable AKernels, const Domain &ADom,
                                 ExecutionPlan APlan, ExecutorOptions AOpts)
    : Program(std::move(AProgram)), Kernels(std::move(AKernels)), Dom(ADom),
      Plan(std::move(APlan)), Opts(AOpts) {
  ICORES_CHECK(Plan.GlobalTarget == Dom.coreBox(),
               "plan target does not match the domain");
  ICORES_CHECK(!Plan.Islands.empty(), "plan has no islands");
  ICORES_CHECK(Kernels.coversProgram(Program),
               "kernel table does not cover the program");

  Box3 Alloc = Dom.allocBox();
  for (unsigned A = 0; A != Program.numArrays(); ++A) {
    ArrayId Id = static_cast<ArrayId>(A);
    if (Program.array(Id).Role != ArrayRole::Intermediate)
      External.emplace(Id, Array3D(Alloc, Opts.PadKRows));
  }

  for (const IslandPlan &Island : Plan.Islands) {
    auto IS = std::make_unique<IslandState>(Program.numArrays(),
                                            Island.NumThreads, Opts);
    for (auto &[Id, Arr] : External)
      IS->Store.bindExternal(Id, &Arr);

    // Allocate the island's private intermediates over the union of the
    // regions its passes compute each stage on.
    std::vector<Box3> StageUnion(Program.numStages());
    for (const BlockTask &Block : Island.Blocks)
      for (const StagePass &Pass : Block.Passes) {
        Box3 &Un = StageUnion[static_cast<size_t>(Pass.Stage)];
        Un = Un.unionWith(Pass.Region);
      }
    for (unsigned S = 0; S != Program.numStages(); ++S) {
      if (StageUnion[S].empty())
        continue;
      for (ArrayId Out : Program.stage(static_cast<StageId>(S)).Outputs)
        if (Program.array(Out).Role == ArrayRole::Intermediate &&
            !IS->Store.isBound(Out))
          IS->Store.allocateOwned(Out, StageUnion[S], Opts.PadKRows);
    }
    IslandStates.push_back(std::move(IS));
  }

  // Chaos site 0 is the run's global barrier; islands take 1..N.
  if (Opts.Chaos)
    for (size_t Isl = 0; Isl != IslandStates.size(); ++Isl)
      IslandStates[Isl]->Team.armChaos(Opts.Chaos, Isl + 1);

  for (size_t Isl = 0; Isl != Plan.Islands.size(); ++Isl)
    for (int T = 0; T != Plan.Islands[Isl].NumThreads; ++T)
      WorkerCoords.emplace_back(static_cast<int>(Isl), T);
  Pool = std::make_unique<WorkerPool>(static_cast<int>(WorkerCoords.size()));
  Stats.initLayout(Plan, Program.numStages());
}

ProgramExecutor::~ProgramExecutor() = default;

Array3D &ProgramExecutor::array(ArrayId Id) {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

const Array3D &ProgramExecutor::array(ArrayId Id) const {
  auto It = External.find(Id);
  ICORES_CHECK(It != External.end(),
               "array is not a step input or output");
  return It->second;
}

void ProgramExecutor::prepareInputs() {
  for (ArrayId In : Program.stepInputs())
    Dom.fillHalo(array(In));
}

void ProgramExecutor::enableProfiling(bool On) {
  Profiling = On;
  Stats.Enabled = On;
}

void ProgramExecutor::setThreadPinning(
    const std::vector<ThreadPlacement> &Placements) {
  std::vector<int> Cores;
  Cores.reserve(Placements.size());
  for (const ThreadPlacement &P : Placements)
    Cores.push_back(P.GlobalCore);
  Pool->setPinning(std::move(Cores));
}

void ProgramExecutor::threadMain(int Worker, int Island, int ThreadInTeam,
                                 int Steps, void *ControlPtr) {
  RunControl &Control = *static_cast<RunControl *>(ControlPtr);
  const IslandPlan &IslandP =
      this->Plan.Islands[static_cast<size_t>(Island)];
  IslandState &IS = *IslandStates[static_cast<size_t>(Island)];

  const bool Prof = Profiling;
  ExecThreadAccum Accum(Prof ? Program.numStages() : 0);
  auto countWake = [&Accum](TeamBarrier::Wake W) {
    if (W == TeamBarrier::Wake::Sleep)
      ++Accum.SleepWakes;
    else
      ++Accum.SpinWakes;
  };

  for (int Step = 0; Step != Steps; ++Step) {
    if (Prof) {
      ProfileClock::time_point T0 = ProfileClock::now();
      countWake(Control.GlobalBarrier.arriveAndWait(Worker));
      Accum.GlobalBarrierWaitSeconds +=
          secondsSince(T0, ProfileClock::now());
    } else {
      Control.GlobalBarrier.arriveAndWait(Worker);
    }
    if (Island == 0 && ThreadInTeam == 0) {
      if (Step != 0)
        for (const FeedbackPair &FB : Program.feedbacks())
          std::swap(array(FB.Source), array(FB.Target));
      for (const FeedbackPair &FB : Program.feedbacks())
        Dom.fillHalo(array(FB.Target));
    }
    if (Prof) {
      ProfileClock::time_point T0 = ProfileClock::now();
      countWake(Control.GlobalBarrier.arriveAndWait(Worker));
      Accum.GlobalBarrierWaitSeconds +=
          secondsSince(T0, ProfileClock::now());
    } else {
      Control.GlobalBarrier.arriveAndWait(Worker);
    }

    int PassIndex = 0;
    for (const BlockTask &Block : IslandP.Blocks) {
      for (const StagePass &Pass : Block.Passes) {
        if (Opts.Chaos) {
          double Stall = Opts.Chaos->onWorkerPass(Island, ThreadInTeam,
                                                  Step, PassIndex);
          if (Stall > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(Stall));
        }
        ++PassIndex;
        Box3 Sub =
            teamSubRegion(Pass.Region, ThreadInTeam, IslandP.NumThreads);
        if (Prof) {
          size_t Stage = static_cast<size_t>(Pass.Stage);
          ProfileClock::time_point T0 = ProfileClock::now();
          Kernels.run(IS.Store, Pass.Stage, Sub);
          ProfileClock::time_point T1 = ProfileClock::now();
          if (Pass.BarrierAfter) {
            countWake(IS.Team.arriveAndWait(ThreadInTeam));
            Accum.StageBarrierWaitSeconds[Stage] +=
                secondsSince(T1, ProfileClock::now());
          } else {
            ++Accum.StageBarriersElided[Stage];
          }
          Accum.StageKernelSeconds[Stage] += secondsSince(T0, T1);
          ++Accum.StagePasses[Stage];
        } else {
          Kernels.run(IS.Store, Pass.Stage, Sub);
          if (Pass.BarrierAfter)
            IS.Team.arriveAndWait(ThreadInTeam);
        }
      }
    }
  }

  if (Prof) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Stats.mergeThread(Island, ThreadInTeam, Accum);
  }
}

void ProgramExecutor::run(int Steps) {
  ICORES_CHECK(Steps >= 0, "negative step count");
  if (Steps == 0)
    return;

  RunControl Control(static_cast<int>(WorkerCoords.size()), Opts);
  if (Opts.Chaos)
    Control.GlobalBarrier.armChaos(Opts.Chaos, /*Site=*/0);
  ProfileClock::time_point Start;
  if (Profiling)
    Start = ProfileClock::now();
  Pool->runOnAll([&](int Worker) {
    auto [Island, ThreadInTeam] = WorkerCoords[static_cast<size_t>(Worker)];
    threadMain(Worker, Island, ThreadInTeam, Steps, &Control);
  });
  if (Profiling) {
    Stats.WallSeconds += secondsSince(Start, ProfileClock::now());
    Stats.StepsRun += Steps;
  }
  ++Stats.RunCalls;
  Stats.ThreadsSpawned = Pool->spawnedThreads();
  Stats.PoolDispatches = Pool->dispatches();
  if (Opts.Chaos) {
    FaultStats FS = Opts.Chaos->stats();
    Stats.FaultsInjected = FS.Injected;
    Stats.FaultRetries = FS.Retries;
    Stats.FaultTimeouts = FS.Timeouts;
    Stats.FaultsRecovered = FS.Recovered;
  }

  // The last step left the results in the Source arrays; expose them
  // through the feedback Targets.
  for (const FeedbackPair &FB : Program.feedbacks())
    std::swap(array(FB.Source), array(FB.Target));
}
